package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable1_DatasetCollection-8   	       1	512345678 ns/op	       1910 contracts	      87077 profit-txs
BenchmarkPipelineConcurrency/workers=1-8         	       1	900000000 ns/op	      87077 profit-txs
BenchmarkPipelineConcurrency/workers=16-8        	       1	120000000 ns/op	      87077 profit-txs
BenchmarkLoadgenSource-8   	       5	  31234567 ns/op	       123.4 p50-us	       456.7 p99-us	     64321 achieved-ops-s
PASS
ok  	repro	3.456s
`

func TestParseGoBench(t *testing.T) {
	entries, err := ParseGoBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries, want 4: %+v", len(entries), entries)
	}
	// -8 cpu suffix stripped, subtests kept distinct.
	if entries[0].Name != "BenchmarkTable1_DatasetCollection" {
		t.Errorf("name = %q (cpu suffix not stripped?)", entries[0].Name)
	}
	if entries[1].Name != "BenchmarkPipelineConcurrency/workers=1" {
		t.Errorf("subtest name = %q", entries[1].Name)
	}
	// Units sanitized: ns/op -> ns_op, profit-txs -> profit_txs.
	e := entries[0]
	if e.Metrics["ns_op"] != 512345678 {
		t.Errorf("ns_op = %g", e.Metrics["ns_op"])
	}
	if e.Metrics["profit_txs"] != 87077 || e.Metrics["contracts"] != 1910 {
		t.Errorf("custom metrics = %v", e.Metrics)
	}
	lg := entries[3]
	if lg.Metrics["p99_us"] != 456.7 || lg.Metrics["achieved_ops_s"] != 64321 {
		t.Errorf("loadgen metrics = %v", lg.Metrics)
	}
	if lg.Iterations != 5 {
		t.Errorf("iterations = %d", lg.Iterations)
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]metricClass{
		"ns_op":          lowerBetter,
		"B_op":           lowerBetter,
		"allocs_op":      lowerBetter,
		"p99_us":         lowerBetter,
		"build_p50_ms":   lowerBetter,
		"lag_p99_us":     lowerBetter,
		"achieved_ops_s": higherBetter,
		"MB_s":           higherBetter,
		"profit_txs":     shape,
		"contracts":      shape,
	}
	for unit, want := range cases {
		if got := classify(unit); got != want {
			t.Errorf("classify(%q) = %v, want %v", unit, got, want)
		}
	}
}

func bench(name string, metrics map[string]float64) Entry {
	return Entry{Name: name, Iterations: 1, Metrics: metrics}
}

func file(entries ...Entry) *File {
	return &File{Schema: SchemaVersion, Suite: "test", Entries: entries}
}

// TestGateInjectedSlowdown: the gate demonstrably fails when a timing
// metric regresses beyond tolerance — a 10x slowdown against a 2x
// tolerance must be caught.
func TestGateInjectedSlowdown(t *testing.T) {
	base := file(bench("BenchmarkPipeline", map[string]float64{"ns_op": 1e8, "p99_us": 500}))
	slow := file(bench("BenchmarkPipeline", map[string]float64{"ns_op": 1e9, "p99_us": 500}))
	regs := Compare(slow, base, 2, 0.01)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the ns_op slowdown", regs)
	}
	if regs[0].Metric != "ns_op" || !strings.Contains(regs[0].Reason, "10.00x slower") {
		t.Errorf("regression = %+v", regs[0])
	}
}

func TestGateWithinTolerance(t *testing.T) {
	base := file(bench("BenchmarkPipeline", map[string]float64{"ns_op": 1e8}))
	ok := file(bench("BenchmarkPipeline", map[string]float64{"ns_op": 3e8}))
	if regs := Compare(ok, base, 5, 0.01); len(regs) != 0 {
		t.Errorf("3x slowdown under 5x tolerance flagged: %+v", regs)
	}
	// Faster is never a regression.
	fast := file(bench("BenchmarkPipeline", map[string]float64{"ns_op": 1e6}))
	if regs := Compare(fast, base, 5, 0.01); len(regs) != 0 {
		t.Errorf("speedup flagged: %+v", regs)
	}
}

// TestGateShapeDrift: deterministic counts get a tight two-sided gate —
// both growth and shrinkage are regressions.
func TestGateShapeDrift(t *testing.T) {
	base := file(bench("BenchmarkPipeline", map[string]float64{"profit_txs": 87077}))
	for _, cur := range []float64{80000, 95000} {
		f := file(bench("BenchmarkPipeline", map[string]float64{"profit_txs": cur}))
		if regs := Compare(f, base, 5, 0.01); len(regs) != 1 {
			t.Errorf("shape drift to %g not flagged: %+v", cur, regs)
		}
	}
	exact := file(bench("BenchmarkPipeline", map[string]float64{"profit_txs": 87077}))
	if regs := Compare(exact, base, 5, 0.01); len(regs) != 0 {
		t.Errorf("exact shape flagged: %+v", regs)
	}
}

func TestGateThroughput(t *testing.T) {
	base := file(bench("BenchmarkRPC", map[string]float64{"achieved_ops_s": 50000}))
	slow := file(bench("BenchmarkRPC", map[string]float64{"achieved_ops_s": 5000}))
	regs := Compare(slow, base, 2, 0.01)
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "less throughput") {
		t.Errorf("throughput collapse not flagged: %+v", regs)
	}
	ok := file(bench("BenchmarkRPC", map[string]float64{"achieved_ops_s": 30000}))
	if regs := Compare(ok, base, 2, 0.01); len(regs) != 0 {
		t.Errorf("within-tolerance throughput flagged: %+v", regs)
	}
}

// TestGateMissingBenchmark: silently deleting a benchmark must fail the
// gate, not pass it.
func TestGateMissingBenchmark(t *testing.T) {
	base := file(
		bench("BenchmarkA", map[string]float64{"ns_op": 1}),
		bench("BenchmarkB", map[string]float64{"ns_op": 1}),
	)
	cur := file(bench("BenchmarkA", map[string]float64{"ns_op": 1}))
	regs := Compare(cur, base, 5, 0.01)
	if len(regs) != 1 || regs[0].Benchmark != "BenchmarkB" {
		t.Errorf("missing benchmark not flagged: %+v", regs)
	}
	// A new benchmark in current (absent from baseline) passes.
	grown := file(
		bench("BenchmarkA", map[string]float64{"ns_op": 1}),
		bench("BenchmarkB", map[string]float64{"ns_op": 1}),
		bench("BenchmarkC", map[string]float64{"ns_op": 999}),
	)
	if regs := Compare(grown, base, 5, 0.01); len(regs) != 0 {
		t.Errorf("new benchmark flagged: %+v", regs)
	}
}

// TestRunGateEndToEnd exercises the CLI surface: bootstrap, pass,
// injected regression, and -update.
func TestRunGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	curPath := filepath.Join(dir, "current.json")
	basePath := filepath.Join(dir, "baseline.json")

	write := func(path string, f *File) {
		t.Helper()
		b, err := jsonMarshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(curPath, file(bench("BenchmarkX", map[string]float64{"ns_op": 1e8})))

	// 1. No baseline: bootstrap and pass.
	var out bytes.Buffer
	if err := runGate([]string{"-current", curPath, "-baseline", basePath}, &out); err != nil {
		t.Fatalf("bootstrap gate failed: %v", err)
	}
	if _, err := os.Stat(basePath); err != nil {
		t.Fatalf("baseline not bootstrapped: %v", err)
	}

	// 2. Same results: pass.
	if err := runGate([]string{"-current", curPath, "-baseline", basePath}, &out); err != nil {
		t.Fatalf("identical gate failed: %v", err)
	}

	// 3. Injected 10x slowdown: fail.
	write(curPath, file(bench("BenchmarkX", map[string]float64{"ns_op": 1e9})))
	out.Reset()
	err := runGate([]string{"-current", curPath, "-baseline", basePath, "-tolerance", "2"}, &out)
	if err == nil {
		t.Fatal("injected slowdown passed the gate")
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("gate output missing REGRESSION line: %q", out.String())
	}

	// 4. -update accepts the new numbers; the gate then passes.
	if err := runGate([]string{"-current", curPath, "-baseline", basePath, "-update"}, &out); err != nil {
		t.Fatalf("update failed: %v", err)
	}
	if err := runGate([]string{"-current", curPath, "-baseline", basePath, "-tolerance", "2"}, &out); err != nil {
		t.Fatalf("gate after update failed: %v", err)
	}
}

// TestRunGateZeroOverlap: gating a brand-new suite against a stale or
// foreign baseline must fail with the explicit -update bootstrap
// command naming both paths, not a pile of "missing from current
// results" regressions.
func TestRunGateZeroOverlap(t *testing.T) {
	dir := t.TempDir()
	curPath := filepath.Join(dir, "BENCH_screen.json")
	basePath := filepath.Join(dir, "BENCH_screen.baseline.json")
	write := func(path string, f *File) {
		t.Helper()
		b, err := jsonMarshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(curPath, file(bench("BenchmarkScreenBatch", map[string]float64{"ns_op": 1e6})))
	write(basePath, file(bench("BenchmarkSomethingElse", map[string]float64{"ns_op": 1e6})))

	var out bytes.Buffer
	err := runGate([]string{"-current", curPath, "-baseline", basePath}, &out)
	if err == nil {
		t.Fatal("zero-overlap gate passed")
	}
	if !strings.Contains(err.Error(), "no benchmark overlap") {
		t.Errorf("error = %v, want overlap diagnosis", err)
	}
	for _, want := range []string{"-update", curPath, basePath, "bootstrap"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("gate output missing %q:\n%s", want, out.String())
		}
	}

	// Partial overlap still gates normally: the missing benchmark is a
	// real regression, not a bootstrap case.
	write(basePath, file(
		bench("BenchmarkScreenBatch", map[string]float64{"ns_op": 1e6}),
		bench("BenchmarkSomethingElse", map[string]float64{"ns_op": 1e6}),
	))
	out.Reset()
	err = runGate([]string{"-current", curPath, "-baseline", basePath}, &out)
	if err == nil || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("partial overlap did not gate: err=%v out=%q", err, out.String())
	}

	// The suggested command works: -update rewrites the baseline and
	// the gate passes.
	if err := runGate([]string{"-current", curPath, "-baseline", basePath, "-update"}, &out); err != nil {
		t.Fatalf("bootstrap -update failed: %v", err)
	}
	if err := runGate([]string{"-current", curPath, "-baseline", basePath}, &out); err != nil {
		t.Fatalf("gate after bootstrap failed: %v", err)
	}
}

func jsonMarshal(f *File) ([]byte, error) {
	return json.Marshal(f)
}
