// Command benchdiff turns `go test -bench` output into a stable JSON
// artifact and gates new results against a committed baseline.
//
//	go test -bench . -benchtime 1x | benchdiff emit -suite pipeline -o BENCH_pipeline.json
//	benchdiff gate -current BENCH_pipeline.json -baseline scripts/bench/BENCH_pipeline.baseline.json -tolerance 5
//
// emit parses benchmark lines (including b.ReportMetric custom units
// like p99-us or profit-txs) into a daas-bench/v1 file. gate compares
// a current file against a baseline and exits non-zero on regression:
//
//   - time-like metrics (ns_op, B_op, allocs_op, *_s/_ms/_us/_ns) are
//     lower-is-better, gated at baseline*tolerance;
//   - throughput metrics (*ops_s) are higher-is-better, gated at
//     baseline/tolerance;
//   - everything else is a shape metric — deterministic counts such as
//     profit-txs — gated two-sided at a tight tolerance, because any
//     drift there is a correctness bug, not timing noise;
//   - a benchmark present in the baseline but missing from the current
//     file is a regression (a silently deleted benchmark must not pass).
//
// A missing baseline file is bootstrapped: the current results are
// written there and the gate passes, so the first CI run on a new
// machine self-seeds. Intentional performance changes are recorded
// with -update, which rewrites the baseline and passes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the artifact format.
const SchemaVersion = "daas-bench/v1"

// Entry is one benchmark's parsed results.
type Entry struct {
	// Name is the benchmark name with the trailing -N GOMAXPROCS
	// suffix stripped, so baselines survive machines with different
	// core counts.
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps sanitized unit names (ns/op -> ns_op, p99-us ->
	// p99_us) to values.
	Metrics map[string]float64 `json:"metrics"`
}

// File is the emitted artifact.
type File struct {
	Schema  string  `json:"schema"`
	Suite   string  `json:"suite"`
	Entries []Entry `json:"entries"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "emit":
		err = runEmit(os.Args[2:])
	case "gate":
		err = runGate(os.Args[2:], os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchdiff emit -suite NAME [-o FILE] [input files | stdin]
  benchdiff gate -current FILE -baseline FILE [-tolerance X] [-shape-tolerance X] [-update]`)
}

func runEmit(args []string) error {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	suite := fs.String("suite", "", "suite name recorded in the artifact")
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" {
		return fmt.Errorf("emit: -suite is required")
	}
	var readers []io.Reader
	if fs.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		readers = append(readers, f)
	}
	entries, err := ParseGoBench(io.MultiReader(readers...))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("emit: no benchmark lines found in input")
	}
	file := &File{Schema: SchemaVersion, Suite: *suite, Entries: entries}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// benchLine matches "BenchmarkName-8   123   456 ns/op   7 B/op ..."
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.*)$`)

// cpuSuffix strips the trailing -N GOMAXPROCS marker.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// unitSan maps unit characters outside [A-Za-z0-9_] to underscores, so
// ns/op, p99-us, and MB/s become stable JSON keys.
var unitSan = regexp.MustCompile(`[^A-Za-z0-9_]`)

// ParseGoBench parses `go test -bench` output into entries, merging
// repeated runs of the same benchmark by keeping the last occurrence
// (matching go test's own behaviour of reporting each run separately —
// for gating, one representative run is enough).
func ParseGoBench(r io.Reader) ([]Entry, error) {
	byName := make(map[string]*Entry)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			continue
		}
		metrics := make(map[string]float64, len(fields)/2)
		ok := true
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			metrics[unitSan.ReplaceAllString(fields[i+1], "_")] = v
		}
		if !ok || len(metrics) == 0 {
			continue
		}
		e, seen := byName[name]
		if !seen {
			e = &Entry{Name: name, Metrics: make(map[string]float64)}
			byName[name] = e
			order = append(order, name)
		}
		e.Iterations = iters
		for k, v := range metrics {
			e.Metrics[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}

// metricClass classifies a sanitized unit for gating.
type metricClass int

const (
	lowerBetter  metricClass = iota // latency, allocations
	higherBetter                    // throughput
	shape                           // deterministic counts
)

func classify(unit string) metricClass {
	switch unit {
	case "ns_op", "B_op", "allocs_op", "MB_s":
		if unit == "MB_s" {
			return higherBetter
		}
		return lowerBetter
	}
	if strings.HasSuffix(unit, "ops_s") {
		return higherBetter
	}
	for _, suf := range []string{"_s", "_ms", "_us", "_ns"} {
		if strings.HasSuffix(unit, suf) {
			return lowerBetter
		}
	}
	return shape
}

// Regression describes one gate failure.
type Regression struct {
	Benchmark string
	Metric    string
	Baseline  float64
	Current   float64
	Reason    string
}

func (r Regression) String() string {
	if r.Metric == "" {
		return fmt.Sprintf("%s: %s", r.Benchmark, r.Reason)
	}
	return fmt.Sprintf("%s %s: baseline %g, current %g (%s)", r.Benchmark, r.Metric, r.Baseline, r.Current, r.Reason)
}

// Compare gates current against baseline. tolerance is the allowed
// ratio for timing metrics (e.g. 5 = current may be up to 5x slower);
// shapeTol is the allowed relative drift for shape metrics (e.g. 0.01
// = ±1%). New benchmarks and new metrics in current pass silently —
// they gate once they reach the baseline.
func Compare(current, baseline *File, tolerance, shapeTol float64) []Regression {
	var regs []Regression
	curByName := make(map[string]Entry, len(current.Entries))
	for _, e := range current.Entries {
		curByName[e.Name] = e
	}
	for _, base := range baseline.Entries {
		cur, ok := curByName[base.Name]
		if !ok {
			regs = append(regs, Regression{Benchmark: base.Name, Reason: "benchmark missing from current results"})
			continue
		}
		metrics := make([]string, 0, len(base.Metrics))
		for unit := range base.Metrics {
			metrics = append(metrics, unit)
		}
		sort.Strings(metrics)
		for _, unit := range metrics {
			bv := base.Metrics[unit]
			cv, ok := cur.Metrics[unit]
			if !ok {
				regs = append(regs, Regression{Benchmark: base.Name, Metric: unit, Baseline: bv, Reason: "metric missing from current results"})
				continue
			}
			switch classify(unit) {
			case lowerBetter:
				if bv > 0 && cv > bv*tolerance {
					regs = append(regs, Regression{base.Name, unit, bv, cv,
						fmt.Sprintf("%.2fx slower than baseline (tolerance %gx)", cv/bv, tolerance)})
				}
			case higherBetter:
				if bv > 0 && cv < bv/tolerance {
					regs = append(regs, Regression{base.Name, unit, bv, cv,
						fmt.Sprintf("%.2fx less throughput than baseline (tolerance %gx)", bv/cv, tolerance)})
				}
			case shape:
				lo, hi := bv*(1-shapeTol), bv*(1+shapeTol)
				if bv < 0 {
					lo, hi = hi, lo
				}
				if cv < lo || cv > hi {
					regs = append(regs, Regression{base.Name, unit, bv, cv,
						fmt.Sprintf("shape metric drifted beyond ±%g%% — deterministic output changed", shapeTol*100)})
				}
			}
		}
	}
	return regs
}

func runGate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	curPath := fs.String("current", "", "current results file (from benchdiff emit)")
	basePath := fs.String("baseline", "", "committed baseline file")
	tolerance := fs.Float64("tolerance", 5, "allowed slowdown ratio for timing metrics")
	shapeTol := fs.Float64("shape-tolerance", 0.01, "allowed relative drift for shape metrics")
	update := fs.Bool("update", false, "rewrite the baseline from current results and pass (intentional change)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *curPath == "" || *basePath == "" {
		return fmt.Errorf("gate: -current and -baseline are required")
	}
	cur, err := readFile(*curPath)
	if err != nil {
		return err
	}
	if *update {
		if err := writeBaseline(*basePath, cur); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchdiff: baseline %s updated from %s\n", *basePath, *curPath)
		return nil
	}
	base, err := readFile(*basePath)
	if os.IsNotExist(err) {
		// Bootstrap: first run on this machine seeds the baseline.
		if err := writeBaseline(*basePath, cur); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchdiff: no baseline at %s — bootstrapped from current results\n", *basePath)
		return nil
	}
	if err != nil {
		return err
	}
	// A baseline that shares no benchmark with the current file is not
	// a regression — it is a stale or foreign baseline gating a
	// brand-new suite (every entry would report "missing from current
	// results", a uselessly misleading failure). Name the bootstrap
	// path explicitly instead.
	if len(cur.Entries) > 0 && overlapCount(cur, base) == 0 {
		fmt.Fprintf(w, "benchdiff: baseline %s shares no benchmarks with %s (suite %s)\n", *basePath, *curPath, cur.Suite)
		fmt.Fprintf(w, "benchdiff: if this suite is brand new, bootstrap its baseline with:\n")
		fmt.Fprintf(w, "  go run ./cmd/benchdiff gate -current %s -baseline %s -update\n", *curPath, *basePath)
		return fmt.Errorf("gate: baseline %s has no benchmark overlap with current results", *basePath)
	}
	regs := Compare(cur, base, *tolerance, *shapeTol)
	if len(regs) == 0 {
		fmt.Fprintf(w, "benchdiff: %s ok against %s (%d benchmarks, tolerance %gx)\n",
			cur.Suite, *basePath, len(base.Entries), *tolerance)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %s\n", r)
	}
	return fmt.Errorf("gate: %d regression(s) in suite %s", len(regs), cur.Suite)
}

// overlapCount reports how many benchmark names appear in both files.
func overlapCount(cur, base *File) int {
	names := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		names[e.Name] = true
	}
	n := 0
	for _, e := range base.Entries {
		if names[e.Name] {
			n++
		}
	}
	return n
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, SchemaVersion)
	}
	return &f, nil
}

func writeBaseline(path string, f *File) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
