// Command repro regenerates every table and figure of the paper and
// prints paper-reported versus measured values side by side. Its
// output is the source of EXPERIMENTS.md.
//
//	repro -scale 0.1 -sites 3300
//
// Scale 1.0 reproduces the full population (87,077 profit-sharing
// transactions, 32,819 phishing websites); smaller scales keep the
// same shapes with proportionally smaller counts.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"repro/daas"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/ct"
	"repro/internal/ethtypes"
	"repro/internal/flowgraph"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runreport"
	"repro/internal/screen"
	"repro/internal/sitehunt"
	"repro/internal/toolkit"
	"repro/internal/website"
	"repro/internal/worldgen"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 1910, "world seed")
		scale       = flag.Float64("scale", 0.1, "on-chain population scale (1.0 = paper scale)")
		nSites      = flag.Int("sites", 3300, "phishing websites for the §8.2 experiment (paper: 32,819)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address for the duration of the run")
		traceRun    = flag.Bool("trace", false, "record tracing spans and structured progress logs (stderr); prints the span tree at the end")
		concurrency = flag.Int("concurrency", 1, "parallel frontier scanners for the dataset build (output is identical at any setting)")
		cacheSize   = flag.Int("cache-size", 0, "entries in the sharded tx+receipt fetch cache (0 = disabled)")
		checkpoint  = flag.String("checkpoint", "", "persist dataset-build state to this file at iteration boundaries (resume with -resume)")
		resume      = flag.Bool("resume", false, "resume the dataset build from -checkpoint when the file exists; the result is byte-identical to an uninterrupted run")
		strict      = flag.Bool("strict", false, "exit non-zero when the integrity layer quarantined anything (the dataset itself is unaffected)")
		maxQuar     = flag.Int64("max-quarantine", 0, "abort the run after this many quarantined records (0 = unlimited)")
		runReport   = flag.String("run-report", "", "write the machine-readable run report (stage wall times, latency quantiles, metric snapshot, span tree, integrity manifest) to this JSON file")
		screenSnap  = flag.String("screen-snapshot", "", "compile the run's outputs (dataset accounts, family clusters, detected phishing domains) into a screening snapshot and write its deterministic bytes to this file (serve with daasctl serve-screen -snapshot)")
	)
	flag.Parse()
	w := os.Stdout

	reg := obs.Default()
	var spans *obs.Recorder
	var logger *obs.Logger
	if *traceRun {
		spans = obs.NewRecorder()
		logger = obs.New(os.Stderr, obs.LevelDebug)
	}
	var rep *runreport.Builder
	if *runReport != "" {
		rep = runreport.New("repro", reg, spans)
		rep.SetSeed(*seed)
	}
	if *metricsAddr != "" {
		srv, addr, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		// Graceful drain: a collector scraping the end-of-run numbers
		// gets to finish instead of a torn-down connection.
		defer func() {
			if err := obs.Shutdown(srv, 2*time.Second); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		fmt.Fprintf(w, "[obs] serving http://%s/metrics (+ /debug/vars, /debug/pprof)\n", addr)
	}

	fmt.Fprintf(w, "DaaS reproduction harness — seed %d, chain scale %.2f, %d phishing sites\n",
		*seed, *scale, *nSites)
	fmt.Fprintf(w, "Paper-scale counts shrink proportionally with scale; shapes (percentages,\nratios, orderings) are scale-invariant and are the comparison targets.\n\n")

	// ----- Chain-side experiments -----
	cfg := worldgen.DefaultConfig(*seed)
	cfg.Scale = *scale
	start := time.Now()
	endStage := rep.Stage("worldgen")
	world, err := worldgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	endStage()
	fmt.Fprintf(w, "[world] %d transactions in %s\n\n", world.Chain.TxCount(), time.Since(start).Round(time.Millisecond))

	client := daas.New(core.LocalSource{Chain: world.Chain}, world.Labels, world.Oracle)
	client.Metrics = reg
	client.Logger = logger
	client.Spans = spans
	client.Concurrency = *concurrency
	client.CacheSize = *cacheSize
	client.CheckpointPath = *checkpoint
	client.Resume = *resume
	client.MaxQuarantine = *maxQuar
	start = time.Now()
	endStage = rep.Stage("study")
	study, err := client.StudyWith(daas.StudyOptions{
		DatasetEnd:         worldgen.DatasetEnd,
		PrimaryContractTxs: int(float64(measure.MinPrimaryTxs)**scale) + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	endStage()
	fmt.Fprintf(w, "[study] pipeline + analyses in %s\n\n", time.Since(start).Round(time.Millisecond))

	sectionTable1(w, study, *scale)
	sectionSec52(w, study, *scale)
	sectionFig6(w, study)
	sectionSec61(w, study)
	sectionSec62(w, study)
	sectionFig7(w, study)
	sectionSec63(w, study)
	sectionSec43(w, study)
	sectionTable2(w, study, *scale)
	sectionTable3(w, world, study)
	sectionSec81(w, study)
	sectionLaundering(w, world)
	endStage = rep.Stage("sitehunt")
	siteRep := sectionSec82AndTable4(w, *seed, *nSites, reg, logger)
	endStage()

	if *screenSnap != "" {
		snap := screen.Compile(study.Dataset, study.Families, siteRep.PhishingDomains())
		data, err := snap.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*screenSnap, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "[screen] snapshot (%d accounts, %d domains) written to %s\n",
			snap.Len(), snap.DomainCount(), *screenSnap)
	}

	if *metricsAddr != "" || *traceRun {
		sectionObservability(w, reg, spans)
	}

	manifest := client.Manifest(study)
	h(w, "Data Integrity")
	report.RenderManifest(w, manifest)
	fmt.Fprintln(w)
	rep.SetManifest(manifest)
	// Write the artifact before any strict-mode exit: os.Exit skips
	// defers, and a run that fails the gate is exactly the run whose
	// report matters most.
	if err := rep.WriteFile(*runReport); err != nil {
		log.Fatal(err)
	}
	if *runReport != "" {
		fmt.Fprintf(w, "[obs] run report written to %s\n", *runReport)
	}
	if *strict && !manifest.Clean() {
		fmt.Fprintln(os.Stderr, "strict mode: the integrity layer quarantined records during this run")
		if err := client.Quarantine().Summarize(os.Stderr); err != nil {
			log.Fatal(err)
		}
		os.Exit(1)
	}
}

// sectionObservability prints the end-of-run metrics summary — the
// same numbers /metrics serves — and the recorded span tree.
func sectionObservability(w *os.File, reg *obs.Registry, spans *obs.Recorder) {
	h(w, "Observability: End-of-run Metrics Summary")
	if err := reg.WriteSummary(w); err != nil {
		log.Fatal(err)
	}
	if spans != nil {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "recorded spans:")
		if err := spans.WriteTree(w); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintln(w)
}

// sectionLaundering quantifies the §8.1 cash-out observation with the
// fund-flow tracer: reported (labeled) accounts route through mixing
// services, unlabeled ones still deposit at exchanges.
func sectionLaundering(w *os.File, world *worldgen.World) {
	h(w, "§8.1 extension: Fund-flow Tracing of Cash-outs")
	tr := &flowgraph.Tracer{
		Source: core.LocalSource{Chain: world.Chain},
		Labels: world.Labels,
	}
	origins := make([]ethtypes.Address, 0, len(world.Truth.CashoutRoute))
	for origin := range world.Truth.CashoutRoute {
		origins = append(origins, origin)
	}
	rep, err := tr.Survey(origins)
	if err != nil {
		log.Fatal(err)
	}
	row(w, "cashed-out DaaS accounts traced", "—", fmt.Sprintf("%d", rep.Origins))
	row(w, "dominant sink: mixing service", "labeled accounts launder via mixers",
		fmt.Sprintf("%d accounts", rep.ViaMixer))
	row(w, "dominant sink: centralized exchange", "unlabeled accounts still reach CEXs",
		fmt.Sprintf("%d accounts", rep.ViaExchange))
	row(w, "labeled accounts routing via mixers", "\"unable to directly withdraw through CEXs\"",
		fmt.Sprintf("%.1f%%", 100*rep.LabeledViaMixerFraction))
	fmt.Fprintln(w)
}

func h(w *os.File, title string) { fmt.Fprintf(w, "== %s ==\n", title) }

func row(w *os.File, name, paper, measured string) {
	fmt.Fprintf(w, "  %-44s paper: %-16s measured: %s\n", name, paper, measured)
}

func sectionTable1(w *os.File, study *daas.Study, scale float64) {
	h(w, "Table 1: Dataset Collection Results")
	s, e := study.Dataset.SeedStats, study.Dataset.Stats()
	row(w, "profit-sharing contracts (seed → expanded)",
		fmt.Sprintf("391 → 1,910"), fmt.Sprintf("%d → %d", s.Contracts, e.Contracts))
	row(w, "operator accounts", "48 → 56", fmt.Sprintf("%d → %d", s.Operators, e.Operators))
	row(w, "affiliate accounts", "3,970 → 6,087", fmt.Sprintf("%d → %d", s.Affiliates, e.Affiliates))
	row(w, "profit-sharing transactions", "49,837 → 87,077", fmt.Sprintf("%d → %d", s.ProfitTxs, e.ProfitTxs))
	row(w, "expansion factor (contracts)", "4.9x",
		fmt.Sprintf("%.1fx", float64(e.Contracts)/float64(max(1, s.Contracts))))
	fmt.Fprintf(w, "  (counts scale with -scale=%.2f; the seed≪expanded shape is the target)\n\n", scale)
}

func sectionSec52(w *os.File, study *daas.Study, scale float64) {
	h(w, "§5.2: Totals and Validation")
	row(w, "operator profits", "$23.1M (at scale 1.0)", fmt.Sprintf("$%.1fM (scale %.2f)", study.Totals.OperatorUSD/1e6, scale))
	row(w, "affiliate profits", "$111.9M", fmt.Sprintf("$%.1fM", study.Totals.AffiliateUSD/1e6))
	row(w, "operator share of all profits", "17.1%",
		fmt.Sprintf("%.1f%%", 100*study.Totals.OperatorUSD/(study.Totals.OperatorUSD+study.Totals.AffiliateUSD)))
	row(w, "victim accounts", "76,582", fmt.Sprintf("%d", study.Totals.Victims))
	if study.Validation != nil {
		row(w, "validation false positives", "0",
			fmt.Sprintf("%d (reviewed %d txs, %.1f%%)", len(study.Validation.FalsePositives),
				study.Validation.TxReviewed, 100*study.Validation.ReviewedFraction))
	}
	fmt.Fprintln(w)
}

func sectionFig6(w *os.File, study *daas.Study) {
	h(w, "Figure 6: Victim Loss Distribution")
	paper := []string{"50.9%", "32.6%", "10.9%", "5.6%"}
	for i, b := range study.Victims.LossBuckets {
		row(w, b.Label, paper[i], fmt.Sprintf("%.1f%% (%d victims)", 100*b.Fraction, b.Count))
	}
	row(w, "losses below $1,000", "83.5%", fmt.Sprintf("%.1f%%", 100*study.Victims.Under1000Fraction))
	fmt.Fprintln(w)
}

func sectionSec61(w *os.File, study *daas.Study) {
	h(w, "§6.1: Victims")
	v := study.Victims
	row(w, "victims per day (average)", ">100", fmt.Sprintf("%.1f (%d days over 100)", v.AvgDailyVictims, v.DaysOver100))
	row(w, "multi-phished victims", "8,856 (11.6%)",
		fmt.Sprintf("%d (%.1f%%)", v.MultiPhished, 100*float64(v.MultiPhished)/float64(max(1, v.Victims))))
	row(w, "signed multiple phishing txs simultaneously", "78.1%", fmt.Sprintf("%.1f%%", 100*v.SimultaneousFraction))
	row(w, "never revoked approvals", "28.6%", fmt.Sprintf("%.1f%%", 100*v.UnrevokedFraction))
	fmt.Fprintln(w)
}

func sectionSec62(w *os.File, study *daas.Study) {
	h(w, "§6.2: Operators")
	o := study.Operators
	row(w, "top 25% of operators' profit share", "75.7% (14 accounts)",
		fmt.Sprintf("%.1f%% (%d accounts)", 100*o.TopQuartileShare, o.TopQuartileCount))
	row(w, "top operator account earnings", "$3.0M",
		fmt.Sprintf("$%.2fM", o.TopEarnerUSD/1e6))
	if o.InactiveCount > 0 {
		row(w, "inactive-operator lifecycles", "2 – 383 days",
			fmt.Sprintf("%.0f – %.0f days (%d inactive)", o.MinLifecycleDays, o.MaxLifecycleDays, o.InactiveCount))
	}
	fmt.Fprintln(w)
}

func sectionFig7(w *os.File, study *daas.Study) {
	h(w, "Figure 7: Affiliate Profit Distribution")
	a := study.Affiliates
	for _, b := range a.ProfitBuckets {
		row(w, b.Label, "—", fmt.Sprintf("%.1f%% (%d affiliates)", 100*b.Fraction, b.Count))
	}
	row(w, "affiliates earning over $1,000", "50.2%", fmt.Sprintf("%.1f%%", 100*a.Over1000Fraction))
	row(w, "affiliates earning over $10,000", "22.0%", fmt.Sprintf("%.1f%%", 100*a.Over10000Fraction))
	fmt.Fprintln(w)
}

func sectionSec63(w *os.File, study *daas.Study) {
	h(w, "§6.3: Affiliates")
	a := study.Affiliates
	row(w, "affiliates with >10 victims", "26.1%", fmt.Sprintf("%.1f%%", 100*a.Over10VictimsFraction))
	row(w, "affiliates tied to a single operator", "60.4%", fmt.Sprintf("%.1f%%", 100*a.SingleOperatorFraction))
	row(w, "affiliates tied to at most 3 operators", "90.2%", fmt.Sprintf("%.1f%%", 100*a.UpToThreeFraction))
	fmt.Fprintln(w)
}

func sectionSec43(w *os.File, study *daas.Study) {
	h(w, "§4.3: Profit-sharing Ratio Distribution")
	paper := map[int64]string{200: "46.0%", 150: "19.3%", 175: "9.2%"}
	for _, rs := range study.Ratios {
		ref := "—"
		if p, ok := paper[rs.PerMille]; ok {
			ref = p
		}
		row(w, fmt.Sprintf("operator share %.1f%%", float64(rs.PerMille)/10), ref,
			fmt.Sprintf("%.1f%% of txs", 100*rs.Fraction))
	}
	fmt.Fprintln(w)
}

func sectionTable2(w *os.File, study *daas.Study, scale float64) {
	h(w, "Table 2: DaaS Family Overview")
	paperVictims := map[string]string{
		"Angel Drainer": "37,755", "Inferno Drainer": "32,740", "Pink Drainer": "2,814",
		"Ace Drainer": "1,879", "Pussy Drainer": "537", "Venom Drainer": "491",
		"Medusa Drainer": "306", "0x0000b6": "43", "Spawn Drainer": "17",
	}
	paperProfit := map[string]string{
		"Angel Drainer": "$53.1M", "Inferno Drainer": "$59.0M", "Pink Drainer": "$14.7M",
		"Ace Drainer": "$3.1M", "Pussy Drainer": "$1.1M", "Venom Drainer": "$1.3M",
		"Medusa Drainer": "$2.5M", "0x0000b6": "$0.1M", "Spawn Drainer": "$0.01M",
	}
	row(w, "number of families", "9", fmt.Sprintf("%d", len(study.FamilyRows)))
	for _, fr := range study.FamilyRows {
		pv, pp := paperVictims[fr.Name], paperProfit[fr.Name]
		row(w, fr.Name,
			fmt.Sprintf("%s victims, %s", pv, pp),
			fmt.Sprintf("%d victims, $%.2fM (%d contracts, %d ops, %d affs)",
				fr.Victims, fr.ProfitUSD/1e6, fr.Contracts, fr.Operators, fr.Affiliates))
	}
	row(w, "top-3 families' profit share", "93.9%",
		fmt.Sprintf("%.1f%%", 100*measure.TopFamiliesProfitShare(study.FamilyRows, 3)))
	// §7.2 primary-contract lifecycles (paper: Angel 102.3, Inferno
	// 198.6, Pink 96.8 days; our primaries track their operators'
	// windows, so absolute spans run longer — the rotation-vs-primary
	// shape is the comparison).
	paperLife := map[string]string{
		"Angel Drainer": "102.3 days", "Inferno Drainer": "198.6 days", "Pink Drainer": "96.8 days",
	}
	for _, fr := range study.FamilyRows {
		if ref, ok := paperLife[fr.Name]; ok && fr.PrimaryLifecycleDays > 0 {
			row(w, fr.Name+" primary-contract lifecycle", ref,
				fmt.Sprintf("%.1f days", fr.PrimaryLifecycleDays))
		}
	}
	fmt.Fprintln(w)
	report.Table2(w, study.FamilyRows)
	fmt.Fprintln(w)
}

func sectionTable3(w *os.File, world *worldgen.World, study *daas.Study) {
	h(w, "Table 3: Contract Implementations of Dominant Families")
	paper := map[string]string{
		"Angel Drainer":   "payable Claim + multicall",
		"Inferno Drainer": "payable fallback + multicall",
		"Pink Drainer":    "payable networkMerge + multicall",
	}
	read := func(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash { return world.Chain.StorageAt(a, k) }
	var rows []report.Table3Row
	for _, fam := range study.Families {
		if _, dominant := paper[fam.Name]; !dominant {
			continue
		}
		// Decompile the family's most active contract.
		var best ethtypes.Address
		bestTxs := -1
		for _, con := range fam.Contracts {
			if rec := study.Dataset.Contracts[con]; rec != nil && rec.TxCount > bestTxs {
				best, bestTxs = con, rec.TxCount
			}
		}
		an := contracts.Decompile(world.Chain.CodeAt(best), best, read)
		rows = append(rows, report.Table3Row{Family: fam.Name, Analysis: an})
		row(w, fam.Name, paper[fam.Name],
			fmt.Sprintf("%s + %s (operator %.1f%%)", an.ETHFunction, an.TokenFunction, float64(an.OperatorPerMille)/10))
	}
	fmt.Fprintln(w)
	report.Table3(w, rows)
	fmt.Fprintln(w)
}

func sectionSec81(w *os.File, study *daas.Study) {
	h(w, "§8.1: Etherscan Label Coverage")
	row(w, "DaaS accounts labeled on Etherscan", "10.8%", fmt.Sprintf("%.1f%%", 100*study.EtherscanCoverage))
	fmt.Fprintln(w)
}

func sectionSec82AndTable4(w *os.File, seed uint64, nSites int, reg *obs.Registry, logger *obs.Logger) *sitehunt.Report {
	h(w, "§8.2 + Table 4: Toolkit-based Website Detection")
	fleet := website.GenerateFleet(website.FleetConfig{
		Seed: seed, Phishing: nSites, Benign: nSites / 3, Bait: nSites / 20,
	})
	hostSrv := httptest.NewServer(website.NewHost(fleet))
	defer hostSrv.Close()
	ctLog, err := ct.NewLog()
	if err != nil {
		log.Fatal(err)
	}
	detectable := 0
	for _, s := range fleet {
		if !s.HTTPS {
			continue
		}
		if _, err := ctLog.Issue([]string{s.Domain}, s.Issued); err != nil {
			log.Fatal(err)
		}
		if s.Phishing {
			detectable++
		}
	}
	ctSrv := httptest.NewServer(ctLog.Handler())
	defer ctSrv.Close()

	ctClient := ct.NewClient(ctSrv.URL)
	ctClient.Metrics = reg
	detector := &sitehunt.Detector{
		CT:      ctClient,
		Crawler: crawler.New(hostSrv.URL),
		Corpus:  toolkit.BuildCorpus(seed, 867),
		Metrics: reg,
		Logger:  logger,
	}
	start := time.Now()
	rep, err := detector.Run()
	if err != nil {
		log.Fatal(err)
	}
	row(w, "toolkit fingerprints", "867", fmt.Sprintf("%d", detector.Corpus.Len()))
	row(w, "phishing websites detected", "32,819 (at paper scale)",
		fmt.Sprintf("%d of %d CT-visible (%.1f%%) in %s", rep.Detected(), detectable,
			100*float64(rep.Detected())/float64(max(1, detectable)), time.Since(start).Round(time.Millisecond)))
	falsePos := 0
	truth := make(map[string]bool)
	for _, s := range fleet {
		truth[s.Domain] = s.Phishing
	}
	for _, det := range rep.Detections {
		if !truth[det.Domain] {
			falsePos++
		}
	}
	row(w, "false positives", "0 reported", fmt.Sprintf("%d", falsePos))
	fmt.Fprintln(w)

	paperTLD := map[string]string{
		"com": "30.0%", "dev": "13.6%", "app": "11.6%", "xyz": "7.5%", "net": "5.6%",
		"org": "3.8%", "network": "2.4%", "io": "2.0%", "top": "1.6%", "online": "1.4%",
	}
	for i, share := range rep.TLDs {
		if i >= 10 {
			break
		}
		ref := "—"
		if p, ok := paperTLD[share.TLD]; ok {
			ref = p
		}
		row(w, "."+share.TLD, ref, fmt.Sprintf("%.1f%% (%d domains)", 100*share.Fraction, share.Count))
	}
	fmt.Fprintln(w)
	report.Table4(w, rep.TLDs, 10)
	return rep
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
