// Command chainsim generates a synthetic DaaS world (paper-scale by
// default) and serves it over JSON-RPC, playing the role of the
// Ethereum archive node the measurement pipeline collects from.
//
// Usage:
//
//	chainsim -listen :8545 -seed 1910 -scale 0.05
//	chainsim -oneshot -scale 0.01        # generate, print stats, exit
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/rpc"
	"repro/internal/worldgen"
)

func main() {
	var (
		listen  = flag.String("listen", ":8545", "JSON-RPC listen address")
		seed    = flag.Uint64("seed", 1910, "world generation seed")
		scale   = flag.Float64("scale", 0.05, "population scale (1.0 = paper scale, 87k profit-sharing txs)")
		oneshot = flag.Bool("oneshot", false, "generate the world, print statistics, and exit")
	)
	flag.Parse()

	cfg := worldgen.DefaultConfig(*seed)
	cfg.Scale = *scale

	log.Printf("generating world: seed=%d scale=%.3f ...", *seed, *scale)
	start := time.Now()
	world, err := worldgen.Generate(cfg)
	if err != nil {
		log.Fatalf("generating world: %v", err)
	}
	log.Printf("world ready in %s: %d transactions, %d blocks, %d planted profit-sharing txs",
		time.Since(start).Round(time.Millisecond),
		world.Chain.TxCount(), world.Chain.BlockCount(), len(world.Truth.ProfitTxs))

	fmt.Printf("planted families: %d\n", len(world.Plan.Families))
	for _, fam := range world.Plan.Families {
		fmt.Printf("  %-10s %4d contracts %3d operators %5d affiliates\n",
			fam.Params.Key, len(fam.Contracts), len(fam.Operators), len(fam.Affiliates))
	}
	fmt.Printf("public phishing reports: %d addresses\n", len(world.Labels.AllPhishing()))

	if *oneshot {
		os.Exit(0)
	}

	server := rpc.NewServer(world.Chain, world.Labels)
	log.Printf("serving JSON-RPC on %s (methods: eth_*, repro_*)", *listen)
	if err := http.ListenAndServe(*listen, server); err != nil {
		log.Fatalf("rpc server: %v", err)
	}
}
