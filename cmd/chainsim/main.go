// Command chainsim generates a synthetic DaaS world (paper-scale by
// default) and serves it over JSON-RPC, playing the role of the
// Ethereum archive node the measurement pipeline collects from.
//
// Usage:
//
//	chainsim -listen :8545 -seed 1910 -scale 0.05
//	chainsim -oneshot -scale 0.01        # generate, print stats, exit
//	chainsim -grow 2s                    # serve a live head: one block per interval
//	chainsim -grow 1s -reorg-every 50    # live head with a staged reorg every 50 blocks
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/chain"
	"repro/internal/rpc"
	"repro/internal/worldgen"
)

func main() {
	var (
		listen     = flag.String("listen", ":8545", "JSON-RPC listen address")
		seed       = flag.Uint64("seed", 1910, "world generation seed")
		scale      = flag.Float64("scale", 0.05, "population scale (1.0 = paper scale, 87k profit-sharing txs)")
		oneshot    = flag.Bool("oneshot", false, "generate the world, print statistics, and exit")
		grow       = flag.Duration("grow", 0, "serve a live head: start at genesis and advance one block per interval (0 = serve the fully mined chain)")
		reorgEvery = flag.Int("reorg-every", 0, "with -grow, stage a reorg every Nth block: mine an orphan, then heal back onto the canonical chain on the next tick")
	)
	flag.Parse()

	cfg := worldgen.DefaultConfig(*seed)
	cfg.Scale = *scale

	log.Printf("generating world: seed=%d scale=%.3f ...", *seed, *scale)
	start := time.Now()
	world, err := worldgen.Generate(cfg)
	if err != nil {
		log.Fatalf("generating world: %v", err)
	}
	log.Printf("world ready in %s: %d transactions, %d blocks, %d planted profit-sharing txs",
		time.Since(start).Round(time.Millisecond),
		world.Chain.TxCount(), world.Chain.BlockCount(), len(world.Truth.ProfitTxs))

	fmt.Printf("planted families: %d\n", len(world.Plan.Families))
	for _, fam := range world.Plan.Families {
		fmt.Printf("  %-10s %4d contracts %3d operators %5d affiliates\n",
			fam.Params.Key, len(fam.Contracts), len(fam.Operators), len(fam.Affiliates))
	}
	fmt.Printf("public phishing reports: %d addresses\n", len(world.Labels.AllPhishing()))

	if *oneshot {
		os.Exit(0)
	}

	served := world.Chain
	if *grow > 0 {
		// Serve a follower chain whose head advances on a timer, so a
		// radar daemon pointed here sees blocks arrive live. Staged
		// reorgs (orphan, then heal) exercise its rollback path.
		f := chain.NewFollower(world.Chain)
		served = f.Chain()
		go func() {
			tick := time.NewTicker(*grow)
			defer tick.Stop()
			mined, orphaned := 0, false
			for range tick.C {
				if orphaned {
					f.Heal()
					orphaned = false
					log.Printf("grow: healed reorg, head back on the canonical chain at %d", served.BlockCount()-1)
					continue
				}
				blk, ok := f.Advance()
				if !ok {
					log.Printf("grow: caught up with the generated chain at block %d", served.BlockCount()-1)
					return
				}
				mined++
				if *reorgEvery > 0 && mined%*reorgEvery == 0 {
					orphan := f.MineOrphan(blk.Timestamp.Add(7 * time.Second))
					orphaned = true
					log.Printf("grow: staged reorg — mined orphan block %d", orphan.Number)
				}
			}
		}()
		log.Printf("grow: head advancing every %s (reorg every %d blocks)", *grow, *reorgEvery)
	}

	server := rpc.NewServer(served, world.Labels)
	log.Printf("serving JSON-RPC on %s (methods: eth_*, repro_*, daas_*)", *listen)
	if err := http.ListenAndServe(*listen, server); err != nil {
		log.Fatalf("rpc server: %v", err)
	}
}
