package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/integrity"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/radar"
	"repro/internal/retry"
	"repro/internal/rpc"
	"repro/internal/screen"
	"repro/internal/worldgen"
)

// radarOptions carries the flags the radar subcommand consumes.
type radarOptions struct {
	RPCURL      string
	Seed        uint64
	Scale       float64
	Listen      string
	DomainsPath string
	Checkpoint  string
	Resume      bool
	Poll        time.Duration
	ReorgWindow int
	Verbose     bool
	Limits      rpc.Limits
}

// runRadar stands up the live detection daemon (§8.1 monitoring
// path): follow the chain head — a remote node over JSON-RPC or a
// locally generated world — through the integrity-pinned source stack,
// classify arriving transactions, keep the dataset and §7.1 families
// current, and hot-swap the screening snapshot per update batch. The
// same endpoint serves daas_screen* off the live engine and
// daas_radarStatus/daas_radarUpdates off the daemon, until
// SIGINT/SIGTERM.
func runRadar(reg *obs.Registry, opts radarOptions) error {
	var (
		base   core.ChainSource
		blocks radar.BlockSource
		lbls   *labels.Directory
	)
	if opts.RPCURL != "" {
		rc := rpc.NewClient(opts.RPCURL)
		rc.Metrics = reg
		rc.Retry = &retry.Policy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, Metrics: reg}
		dir, err := rc.FetchLabels()
		if err != nil {
			return fmt.Errorf("fetching labels from %s: %w", opts.RPCURL, err)
		}
		lbls = dir
		base = rc
		blocks = rpc.ClientBlocks{Client: rc}
		log.Printf("radar: following %s (%d phishing reports ingested)", opts.RPCURL, len(lbls.AllPhishing()))
	} else {
		cfg := worldgen.DefaultConfig(opts.Seed)
		cfg.Scale = opts.Scale
		world, err := worldgen.Generate(cfg)
		if err != nil {
			return fmt.Errorf("generating world: %w", err)
		}
		lbls = world.Labels
		base = core.LocalSource{Chain: world.Chain}
		blocks = radar.ChainBlocks{Chain: world.Chain}
		log.Printf("radar: following local world seed=%d scale=%.3f (%d blocks)",
			opts.Seed, opts.Scale, world.Chain.BlockCount())
	}

	// The integrity layer pins every record the radar admits; on a
	// reorg the daemon releases the pins above the fork, so rolled-back
	// evidence cannot linger in the cache or quarantine ledger.
	src := integrity.Wrap(base, integrity.NewQuarantine(reg), reg)

	var confirmed []string
	if opts.DomainsPath != "" {
		var err error
		if confirmed, err = readDomainList(opts.DomainsPath); err != nil {
			return err
		}
	}

	level := obs.LevelInfo
	if opts.Verbose {
		level = obs.LevelDebug
	}
	eng := screen.NewEngine(reg)
	r, err := radar.New(radar.Config{
		Source:         src,
		Blocks:         blocks,
		Labels:         lbls,
		Engine:         eng,
		Domains:        confirmed,
		PollInterval:   opts.Poll,
		ReorgWindow:    opts.ReorgWindow,
		CheckpointPath: opts.Checkpoint,
		Resume:         opts.Resume,
		Pins:           src,
		Metrics:        reg,
		Logger:         obs.New(os.Stderr, level),
	})
	if err != nil {
		return err
	}
	st := r.Status()
	log.Printf("radar: starting at cursor %d (resume=%v checkpoint=%q)", st.Cursor, opts.Resume, opts.Checkpoint)

	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		if err := r.Run(runCtx); err != nil && err != context.Canceled {
			log.Printf("radar: run loop: %v", err)
		}
	}()

	handler := &rpc.Server{Screen: eng, Radar: r, Labels: lbls, Metrics: reg, Limits: opts.Limits}
	srv := handler.HTTPServer(opts.Listen)
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("radar: serving daas_radarStatus/daas_radarUpdates + daas_screen* on %s", opts.Listen)

	// Graceful drain, daemon first: on SIGINT/SIGTERM stop stepping (the
	// in-flight step finishes and checkpoints at its block boundary),
	// then let in-flight RPC requests complete before the listener goes
	// away.
	serveCtx, serveCancel := context.WithCancel(context.Background())
	go func() {
		defer serveCancel()
		<-sigCtx.Done()
		log.Printf("radar: received shutdown signal, draining")
		cancelRun()
		<-runDone
		fin := r.Status()
		log.Printf("radar: stopped at cursor %d (%d contracts, %d families, %d swaps, %d reorgs)",
			fin.Cursor, fin.Stats.Contracts, fin.Families, fin.Swaps, fin.Reorgs)
	}()
	return rpc.GracefulServe(serveCtx, srv, 5*time.Second)
}
