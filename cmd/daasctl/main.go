// Command daasctl runs the DaaS measurement pipeline: it builds the
// dataset by snowball sampling, validates it, clusters families, and
// prints the paper's tables.
//
// It can consume a remote chain served by chainsim, or generate a
// local world:
//
//	daasctl -rpc http://localhost:8545 study
//	daasctl -seed 1910 -scale 0.02 study
//	daasctl -scale 0.02 dataset -o dataset.json
//	daasctl -scale 0.02 validate
//
// It can also serve the screening engine over JSON-RPC, compiled from
// a fresh pipeline build or a precompiled snapshot:
//
//	daasctl -scale 0.02 -listen :8546 serve-screen
//	daasctl -snapshot screen.snap -listen :8546 serve-screen
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/daas"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rpc"
	"repro/internal/runreport"
	"repro/internal/worldgen"
)

func main() {
	var (
		rpcURL      = flag.String("rpc", "", "chainsim JSON-RPC endpoint (empty = generate a local world)")
		seed        = flag.Uint64("seed", 1910, "local world seed")
		scale       = flag.Float64("scale", 0.02, "local world scale")
		outPath     = flag.String("o", "", "output path for dataset export (dataset subcommand)")
		asCSV       = flag.Bool("csv", false, "export the dataset as CSV instead of JSON")
		verbose     = flag.Bool("v", false, "trace pipeline progress")
		concurrency = flag.Int("concurrency", 1, "parallel frontier scanners for the dataset build (output is identical at any setting)")
		cacheSize   = flag.Int("cache-size", 0, "entries in the sharded tx+receipt fetch cache (0 = disabled)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address for the duration of the run")
		traceRun    = flag.Bool("trace", false, "record tracing spans and structured progress logs (stderr); prints span tree and metrics summary at the end")
		checkpoint  = flag.String("checkpoint", "", "persist dataset-build state to this file at iteration boundaries (resume with -resume)")
		resume      = flag.Bool("resume", false, "resume the dataset build from -checkpoint when the file exists; the result is byte-identical to an uninterrupted run")
		strict      = flag.Bool("strict", false, "exit non-zero when the integrity layer quarantined anything (the dataset itself is unaffected)")
		maxQuar     = flag.Int64("max-quarantine", 0, "abort the run after this many quarantined records (0 = unlimited)")
		runReport   = flag.String("run-report", "", "write the machine-readable run report (stage wall times, latency quantiles, metric snapshot, span tree, integrity manifest) to this JSON file")
		listenAddr  = flag.String("listen", ":8546", "serve-screen/radar: listen address for the JSON-RPC endpoint")
		domainsFile = flag.String("domains", "", "serve-screen/radar: newline-delimited confirmed phishing domains to compile into the snapshot")
		screenSnap  = flag.String("snapshot", "", "serve-screen: serve this precompiled screening snapshot (repro -screen-snapshot output) instead of building the pipeline")
		pollIvl     = flag.Duration("poll", time.Second, "radar: head poll interval")
		reorgWindow = flag.Int("reorg-window", 32, "radar: maximum reorg depth the daemon can roll back without a full resync")
		maxInFlight = flag.Int("max-in-flight", 0, "serve-screen/radar: concurrent requests admitted before shedding with -32005 (0 = default 256, negative = unlimited)")
		reqTimeout  = flag.Duration("request-timeout", 0, "serve-screen/radar: per-request deadline (0 = default 10s, negative = none)")
		maxBody     = flag.Int64("max-body-bytes", 0, "serve-screen/radar: request body cap in bytes (0 = default 4MiB, negative = unlimited)")
		readyMaxLag = flag.Uint64("ready-max-lag", 0, "radar: /readyz reports not-ready when the cursor lags the head by more than this many blocks (0 = default 64)")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "study"
	}

	reg := obs.Default()
	var spans *obs.Recorder
	if *traceRun {
		spans = obs.NewRecorder()
	}
	var runRep *runreport.Builder
	if *runReport != "" {
		runRep = runreport.New("daasctl "+cmd, reg, spans)
		runRep.SetSeed(*seed)
	}
	// flushReport writes the artifact; called both on the normal path
	// and before strict-mode exits (os.Exit skips defers).
	flushReport := func() {
		if err := runRep.WriteFile(*runReport); err != nil {
			log.Fatal(err)
		}
	}
	defer flushReport()
	if *metricsAddr != "" {
		srv, addr, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		// Graceful drain: let an in-flight scrape of the final numbers
		// complete before the process goes away.
		defer func() {
			if err := obs.Shutdown(srv, 2*time.Second); err != nil {
				log.Print(err)
			}
		}()
		log.Printf("obs: serving http://%s/metrics (+ /debug/vars, /debug/pprof)", addr)
	}

	// inspect and diff work offline from exported files, and
	// serve-screen with a precompiled snapshot needs no chain either;
	// everything else does.
	var client *daas.Client
	var primaryTxs int
	// radar builds its own source stack (it needs the integrity layer's
	// per-tx pins for reorg rollback), so it skips the shared client too.
	offline := cmd == "inspect" || cmd == "diff" || cmd == "radar" || (cmd == "serve-screen" && *screenSnap != "")
	if !offline {
		var err error
		client, primaryTxs, err = buildClient(*rpcURL, *seed, *scale)
		if err != nil {
			log.Fatal(err)
		}
		client.Metrics = reg
		client.Spans = spans
		client.Concurrency = *concurrency
		client.CacheSize = *cacheSize
		client.CheckpointPath = *checkpoint
		client.Resume = *resume
		client.MaxQuarantine = *maxQuar
		if *verbose || *traceRun {
			client.Logger = obs.New(os.Stderr, obs.LevelDebug)
		}
		// Remote sources additionally report wire-level latency.
		if rc, ok := client.Source().(*rpc.Client); ok {
			rc.Metrics = reg
		}
	}
	defer func() {
		if *metricsAddr == "" && !*traceRun {
			return
		}
		fmt.Println("\n== Observability summary ==")
		if err := reg.WriteSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if spans != nil {
			fmt.Println("\nrecorded spans:")
			if err := spans.WriteTree(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}()

	switch cmd {
	case "dataset":
		ds, err := client.BuildDataset()
		if err != nil {
			log.Fatalf("building dataset: %v", err)
		}
		report.Table1(os.Stdout, ds.SeedStats, ds.Stats())
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if *asCSV {
				err = ds.WriteCSV(f)
			} else {
				err = ds.WriteJSON(f)
			}
			if err != nil {
				log.Fatalf("exporting dataset: %v", err)
			}
			fmt.Printf("dataset written to %s\n", *outPath)
		}
		integrityEpilogue(client, nil, *strict, runRep, flushReport)

	case "validate":
		ds, err := client.BuildDataset()
		if err != nil {
			log.Fatalf("building dataset: %v", err)
		}
		rep, err := client.Validate(ds)
		if err != nil {
			log.Fatalf("validating: %v", err)
		}
		report.Validation(os.Stdout, rep)
		integrityEpilogue(client, nil, *strict, runRep, flushReport)
		if len(rep.FalsePositives) > 0 {
			flushReport()
			os.Exit(1)
		}

	case "study":
		study, err := client.StudyWith(daas.StudyOptions{PrimaryContractTxs: primaryTxs})
		if err != nil {
			log.Fatalf("study: %v", err)
		}
		printStudy(study)
		integrityEpilogue(client, study, *strict, runRep, flushReport)

	case "inspect":
		// Offline inspection of a previously exported dataset.
		if *outPath == "" {
			log.Fatal("inspect needs -o <dataset.json> (the file to read)")
		}
		ds, err := readDataset(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		report.Table1(os.Stdout, ds.SeedStats, ds.Stats())
		ratios := make(map[int64]int)
		for _, splits := range ds.Splits {
			seen := map[int64]bool{}
			for _, sp := range splits {
				if !seen[sp.RatioPM] {
					seen[sp.RatioPM] = true
					ratios[sp.RatioPM]++
				}
			}
		}
		fmt.Println()
		fmt.Println("operator-share ratios across profit-sharing transactions:")
		for _, pm := range core.DefaultRatiosPM {
			if n := ratios[pm]; n > 0 {
				fmt.Printf("  %5.1f%%  %6d txs (%.1f%%)\n",
					float64(pm)/10, n, 100*float64(n)/float64(len(ds.Splits)))
			}
		}

	case "diff":
		// Compare two exported dataset snapshots (monitoring workflow:
		// operators keep deploying new contracts, §8.1).
		oldPath, newPath := flag.Arg(1), flag.Arg(2)
		if oldPath == "" || newPath == "" {
			log.Fatal("diff needs two dataset.json paths: daasctl diff old.json new.json")
		}
		older, err := readDataset(oldPath)
		if err != nil {
			log.Fatal(err)
		}
		newer, err := readDataset(newPath)
		if err != nil {
			log.Fatal(err)
		}
		core.Diff(older, newer).Render(os.Stdout)

	case "disasm":
		// Decompile and disassemble a profit-sharing contract.
		addrHex := flag.Arg(1)
		if addrHex == "" {
			log.Fatal("disasm needs a contract address argument")
		}
		addr, err := ethtypes.HexToAddress(addrHex)
		if err != nil {
			log.Fatal(err)
		}
		code, read, _, err := contractCode(client, *rpcURL, addr)
		if err != nil {
			log.Fatal(err)
		}
		if len(code) == 0 {
			log.Fatalf("no code at %s", addr)
		}
		an := contracts.Decompile(code, addr, read)
		fmt.Printf("contract %s\n  ETH theft: %s\n  token theft: %s\n  operator share: %.1f%%\n\n",
			addr, an.ETHFunction, an.TokenFunction, float64(an.OperatorPerMille)/10)
		fmt.Print(contracts.FormatDisassembly(code))

	case "serve-screen":
		lim := rpc.Limits{MaxInFlight: *maxInFlight, RequestTimeout: *reqTimeout, MaxBodyBytes: *maxBody}
		if err := runServeScreen(client, reg, *listenAddr, *domainsFile, *screenSnap, lim); err != nil {
			log.Fatal(err)
		}

	case "radar":
		err := runRadar(reg, radarOptions{
			RPCURL:      *rpcURL,
			Seed:        *seed,
			Scale:       *scale,
			Listen:      *listenAddr,
			DomainsPath: *domainsFile,
			Checkpoint:  *checkpoint,
			Resume:      *resume,
			Poll:        *pollIvl,
			ReorgWindow: *reorgWindow,
			Verbose:     *verbose || *traceRun,
			Limits: rpc.Limits{
				MaxInFlight:    *maxInFlight,
				RequestTimeout: *reqTimeout,
				MaxBodyBytes:   *maxBody,
				ReadyMaxLag:    *readyMaxLag,
			},
		})
		if err != nil {
			log.Fatal(err)
		}

	case "analyze":
		// Analyze a contract: dynamic probing cross-validated against the
		// static pass, or the static pass alone with --static.
		if err := runAnalyze(client, *rpcURL, flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}

	default:
		log.Fatalf("unknown subcommand %q (want dataset, validate, study, inspect, diff, disasm, analyze, serve-screen, or radar)", cmd)
	}
}

// integrityEpilogue prints the completeness manifest for a chain-backed
// run and enforces -strict: any quarantined evidence turns the exit
// code non-zero, with a reason-coded summary on stderr. The exported
// dataset is never affected — strict mode only refuses to call a run
// with known gaps a success. The run report (if requested) is flushed
// before any exit so the failing run still leaves its artifact.
func integrityEpilogue(client *daas.Client, study *daas.Study, strict bool, runRep *runreport.Builder, flushReport func()) {
	m := client.Manifest(study)
	fmt.Println()
	report.RenderManifest(os.Stdout, m)
	runRep.SetManifest(m)
	if strict && !m.Clean() {
		flushReport()
		fmt.Fprintln(os.Stderr, "strict mode: the integrity layer quarantined records during this run")
		if err := client.Quarantine().Summarize(os.Stderr); err != nil {
			log.Fatal(err)
		}
		os.Exit(1)
	}
}

// runAnalyze implements the analyze subcommand.
func runAnalyze(client *daas.Client, rpcURL string, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	staticOnly := fs.Bool("static", false, "static analysis only: never execute the bytecode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrHex := fs.Arg(0)
	if addrHex == "" {
		return fmt.Errorf("analyze needs a contract address argument")
	}
	addr, err := ethtypes.HexToAddress(addrHex)
	if err != nil {
		return err
	}
	code, read, resolve, err := contractCode(client, rpcURL, addr)
	if err != nil {
		return err
	}
	if len(code) == 0 {
		return fmt.Errorf("no code at %s", addr)
	}

	// Resolve proxy chains so the fingerprint verdict judges the code
	// that actually runs, under this contract's storage.
	st := evmstatic.AnalyzeResolved(code, contracts.StaticStorage(addr, read), resolve)
	fmt.Printf("contract %s — static analysis\n%s", addr, st.Summary())
	if st.ProxyResolved {
		fmt.Printf("  proxy implementation: %s\n", st.ProxyImpl)
	}

	statFams := toSet(evmstatic.FamilyNames(st.Fingerprints))
	if *staticOnly {
		fmt.Println("\nfingerprint verdicts (static only)")
		for _, fam := range allFamilies() {
			fmt.Printf("  %-18s %s\n", fam, yesNo(statFams[fam]))
		}
		return nil
	}

	an := contracts.DecompileChecked(code, addr, read)
	fmt.Printf("\ndynamic probe\n  ETH theft: %s\n  token theft: %s\n  operator share: %.1f%%\n",
		an.ETHFunction, an.TokenFunction, float64(an.OperatorPerMille)/10)

	dynFams := toSet(contracts.ProbeFamilies(code, addr, read))
	fmt.Println("\nfingerprint verdicts")
	for _, fam := range allFamilies() {
		fmt.Printf("  %-18s static=%-3s dynamic=%s\n", fam, yesNo(statFams[fam]), yesNo(dynFams[fam]))
	}

	if len(an.Warnings) == 0 {
		fmt.Println("\nstatic and dynamic analyses agree")
		return nil
	}
	fmt.Println("\nstatic/dynamic disagreements:")
	for _, w := range an.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
	return nil
}

// allFamilies lists the fingerprint families in display order.
func allFamilies() []string {
	return []string{
		string(evmstatic.FamilyApprovalPhish),
		string(evmstatic.FamilyProxy),
		string(evmstatic.FamilyPyramid),
	}
}

func toSet(list []string) map[string]bool {
	set := make(map[string]bool, len(list))
	for _, s := range list {
		set[s] = true
	}
	return set
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// readDataset loads an exported dataset snapshot.
func readDataset(path string) (*core.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadJSON(f)
}

// contractCode fetches bytecode, a storage reader, and a proxy-chain
// code resolver, locally or over RPC.
func contractCode(client *daas.Client, rpcURL string, addr ethtypes.Address) ([]byte, contracts.StorageReader, evmstatic.CodeResolver, error) {
	if rpcURL != "" {
		rc := rpc.NewClient(rpcURL)
		code, err := rc.Code(addr)
		if err != nil {
			return nil, nil, nil, err
		}
		read := func(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
			v, err := rc.StorageAt(a, k)
			if err != nil {
				return ethtypes.Hash{}
			}
			return v
		}
		return code, read, rc.Code, nil
	}
	local, ok := client.Source().(core.LocalSource)
	if !ok {
		return nil, nil, nil, fmt.Errorf("disasm: no local chain available")
	}
	read := func(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
		return local.Chain.StorageAt(a, k)
	}
	resolve := func(a ethtypes.Address) ([]byte, error) {
		return local.Chain.CodeAt(a), nil
	}
	return local.Chain.CodeAt(addr), read, resolve, nil
}

// buildClient returns a remote client or generates a local world.
func buildClient(rpcURL string, seed uint64, scale float64) (*daas.Client, int, error) {
	primary := int(float64(measure.MinPrimaryTxs)*scale) + 1
	if rpcURL != "" {
		client, err := daas.Dial(rpcURL)
		if err != nil {
			return nil, 0, err
		}
		// Remote worlds carry their own token set; USD valuation of
		// ERC-20/NFT thefts then requires quote registration, which the
		// operator does via the oracle. ETH valuations work out of the
		// box.
		return client, measure.MinPrimaryTxs, nil
	}
	cfg := worldgen.DefaultConfig(seed)
	cfg.Scale = scale
	world, err := worldgen.Generate(cfg)
	if err != nil {
		return nil, 0, err
	}
	return daas.New(core.LocalSource{Chain: world.Chain}, world.Labels, world.Oracle), primary, nil
}

func printStudy(study *daas.Study) {
	w := os.Stdout
	report.Table1(w, study.Dataset.SeedStats, study.Dataset.Stats())
	fmt.Fprintln(w)
	report.Totals(w, study.Totals)
	if study.Validation != nil {
		report.Validation(w, study.Validation)
	}
	fmt.Fprintln(w)
	report.Figure6(w, study.Victims)
	report.VictimFindings(w, study.Victims)
	fmt.Fprintln(w)
	report.OperatorFindings(w, study.Operators)
	fmt.Fprintln(w)
	report.Figure7(w, study.Affiliates)
	report.AffiliateFindings(w, study.Affiliates)
	fmt.Fprintln(w)
	report.RatioTable(w, study.Ratios)
	fmt.Fprintln(w)
	report.Table2(w, study.FamilyRows)
	fmt.Fprintf(w, "\nEtherscan label coverage of DaaS accounts: %.1f%% (§8.1)\n",
		study.EtherscanCoverage*100)
}
