package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/daas"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/screen"
)

// runServeScreen stands up the account-screening service (§8.1 serving
// path): compile a snapshot from the pipeline's outputs — or load a
// precompiled one — install it in the zero-lock engine, and serve the
// daas_screen/daas_screenBatch/daas_screenDomain JSON-RPC methods
// until SIGINT/SIGTERM. The endpoint is the hardened front door: body
// and batch caps, per-request deadlines, admission-gated shedding, and
// /healthz + /readyz probes.
func runServeScreen(client *daas.Client, reg *obs.Registry, listen, domainsPath, snapshotPath string, lim rpc.Limits) error {
	var snap *screen.Snapshot
	if snapshotPath != "" {
		data, err := os.ReadFile(snapshotPath)
		if err != nil {
			return err
		}
		if snap, err = screen.UnmarshalSnapshot(data); err != nil {
			return fmt.Errorf("loading snapshot %s: %w", snapshotPath, err)
		}
	} else {
		ds, err := client.BuildDataset()
		if err != nil {
			return fmt.Errorf("building dataset: %w", err)
		}
		fams, err := client.Cluster(ds)
		if err != nil {
			return fmt.Errorf("clustering: %w", err)
		}
		var confirmed []string
		if domainsPath != "" {
			if confirmed, err = readDomainList(domainsPath); err != nil {
				return err
			}
		}
		snap = screen.Compile(ds, fams, confirmed)
	}

	eng := screen.NewEngine(reg)
	eng.Swap(snap)
	log.Printf("screen: snapshot installed (%d accounts, %d domains)", snap.Len(), snap.DomainCount())

	handler := &rpc.Server{Screen: eng, Metrics: reg, Limits: lim}
	srv := handler.HTTPServer(listen)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("screen: serving daas_screen/daas_screenBatch/daas_screenDomain on %s", listen)
	// Graceful drain on SIGINT/SIGTERM: in-flight screening requests
	// finish before the process goes away.
	return rpc.GracefulServe(ctx, srv, 5*time.Second)
}

// readDomainList loads a newline-delimited domain file (the §8.2
// detector's confirmed phishing domains); blank lines and #-comments
// are skipped. Normalization happens at snapshot compile time.
func readDomainList(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}
