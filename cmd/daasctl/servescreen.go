package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/daas"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/screen"
)

// runServeScreen stands up the account-screening service (§8.1 serving
// path): compile a snapshot from the pipeline's outputs — or load a
// precompiled one — install it in the zero-lock engine, and serve the
// daas_screen/daas_screenBatch/daas_screenDomain JSON-RPC methods
// until SIGINT/SIGTERM.
func runServeScreen(client *daas.Client, reg *obs.Registry, listen, domainsPath, snapshotPath string) error {
	var snap *screen.Snapshot
	if snapshotPath != "" {
		data, err := os.ReadFile(snapshotPath)
		if err != nil {
			return err
		}
		if snap, err = screen.UnmarshalSnapshot(data); err != nil {
			return fmt.Errorf("loading snapshot %s: %w", snapshotPath, err)
		}
	} else {
		ds, err := client.BuildDataset()
		if err != nil {
			return fmt.Errorf("building dataset: %w", err)
		}
		fams, err := client.Cluster(ds)
		if err != nil {
			return fmt.Errorf("clustering: %w", err)
		}
		var confirmed []string
		if domainsPath != "" {
			if confirmed, err = readDomainList(domainsPath); err != nil {
				return err
			}
		}
		snap = screen.Compile(ds, fams, confirmed)
	}

	eng := screen.NewEngine(reg)
	eng.Swap(snap)
	log.Printf("screen: snapshot installed (%d accounts, %d domains)", snap.Len(), snap.DomainCount())

	srv := &http.Server{Addr: listen, Handler: &rpc.Server{Screen: eng, Metrics: reg}}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	log.Printf("screen: serving daas_screen/daas_screenBatch/daas_screenDomain on %s", listen)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		// Graceful drain: in-flight screening requests finish before the
		// process goes away.
		log.Printf("screen: received %s, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// readDomainList loads a newline-delimited domain file (the §8.2
// detector's confirmed phishing domains); blank lines and #-comments
// are skipped. Normalization happens at snapshot compile time.
func readDomainList(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}
