// Command ctwatch runs the §8.2 toolkit-based phishing-website
// detection pipeline end to end: it generates a website fleet, issues
// certificates into a local Certificate Transparency log, serves both
// over HTTP, and then hunts — extracting suspicious domains from newly
// issued certificates and confirming drainer deployments by crawling.
//
//	ctwatch -sites 2000 -benign 800 -bait 150 -fingerprints 867
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/domains"

	"repro/internal/crawler"
	"repro/internal/ct"
	"repro/internal/report"
	"repro/internal/sitehunt"
	"repro/internal/toolkit"
	"repro/internal/website"
)

func main() {
	var (
		seed         = flag.Uint64("seed", 1910, "fleet generation seed")
		nPhish       = flag.Int("sites", 2000, "phishing sites to deploy")
		nBenign      = flag.Int("benign", 800, "benign sites")
		nBait        = flag.Int("bait", 150, "benign sites with suspicious domains")
		fingerprints = flag.Int("fingerprints", 867, "toolkit fingerprint corpus size (paper: 867)")
		verbose      = flag.Bool("v", false, "log each detection")
		follow       = flag.Duration("follow", 0, "keep watching the CT log at this interval (0 = one-shot)")
	)
	flag.Parse()

	log.Printf("deploying fleet: %d phishing, %d benign, %d bait ...", *nPhish, *nBenign, *nBait)
	fleet := website.GenerateFleet(website.FleetConfig{
		Seed: *seed, Phishing: *nPhish, Benign: *nBenign, Bait: *nBait,
	})
	hostSrv := httptest.NewServer(website.NewHost(fleet))
	defer hostSrv.Close()

	ctLog, err := ct.NewLog()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	issued := 0
	for _, s := range fleet {
		if !s.HTTPS {
			continue
		}
		if _, err := ctLog.Issue([]string{s.Domain}, s.Issued); err != nil {
			log.Fatalf("issuing cert for %s: %v", s.Domain, err)
		}
		issued++
	}
	log.Printf("issued %d certificates into the CT log in %s", issued, time.Since(start).Round(time.Millisecond))
	ctSrv := httptest.NewServer(ctLog.Handler())
	defer ctSrv.Close()

	detector := &sitehunt.Detector{
		CT:      ct.NewClient(ctSrv.URL),
		Crawler: crawler.New(hostSrv.URL),
		Corpus:  toolkit.BuildCorpus(*seed, *fingerprints),
	}
	if *verbose {
		detector.Trace = func(format string, args ...any) { log.Printf(format, args...) }
	}

	if *follow > 0 {
		// Live monitoring: new certificates keep arriving (here from a
		// feeder goroutine standing in for the global CT firehose).
		go feedMoreSites(ctLog, *seed+1, *follow)
		ctx, cancel := signalContext()
		defer cancel()
		err := detector.Watch(ctx, *follow, func(rep *sitehunt.Report) {
			log.Printf("batch: %d new certs, %d detections", rep.CertsSeen, rep.Detected())
		})
		log.Printf("watch ended: %v", err)
		return
	}

	start = time.Now()
	rep, err := detector.Run()
	if err != nil {
		log.Fatalf("detector: %v", err)
	}
	log.Printf("hunt finished in %s", time.Since(start).Round(time.Millisecond))

	fmt.Println()
	report.SiteHunt(os.Stdout, rep)
	fmt.Println()
	report.Table4(os.Stdout, rep.TLDs, 10)

	// Score against ground truth.
	var truePhishing, detectable int
	detected := make(map[string]bool)
	for _, det := range rep.Detections {
		detected[det.Domain] = true
	}
	var falsePositives int
	for _, s := range fleet {
		if s.Phishing {
			truePhishing++
			if s.HTTPS {
				detectable++
			}
		} else if detected[s.Domain] {
			falsePositives++
		}
	}
	fmt.Printf("\nGround truth: %d phishing sites deployed, %d visible in CT (HTTPS).\n", truePhishing, detectable)
	fmt.Printf("Detected %d (%.1f%% of CT-visible), %d false positives.\n",
		rep.Detected(), 100*float64(rep.Detected())/float64(detectable), falsePositives)
}

// feedMoreSites drips fresh phishing certificates into the log so
// -follow mode has something to find.
func feedMoreSites(ctLog *ct.Log, seed uint64, every time.Duration) {
	gen := domains.NewGenerator(seed)
	for {
		time.Sleep(every)
		if _, err := ctLog.Issue([]string{gen.Phishing()}, time.Now()); err != nil {
			return
		}
	}
}

// signalContext cancels on SIGINT/SIGTERM.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
