// Command reprolint enforces this repository's house rules on Go
// source, using only the standard library's go/ast, go/parser, and
// go/types:
//
//   - no panic in non-test code under internal/ — library code returns
//     errors;
//   - no fmt.Print/Printf/Println outside cmd/ and examples/ — library
//     code does not write to stdout;
//   - fmt.Errorf calls that pass an error argument must wrap it with
//     %w, not stringify it with %v/%s/%q — otherwise errors.Is/As
//     cannot see through the wrap;
//   - no direct progress logging in internal/ packages outside
//     internal/obs: fmt.Fprint* to os.Stdout/os.Stderr and any use of
//     the std log package must route through obs.Logger instead, so
//     every progress line carries structure and honors the configured
//     sink. (Writing tables to a caller-provided io.Writer is fine —
//     the rule only fires on the process-global streams.)
//   - internal/core must not call ChainSource.Transaction or
//     ChainSource.Receipt directly: record fetches go through the
//     SourceTransaction/SourceReceipt helpers, which honor context
//     cancellation and keep quarantine semantics uniform. The helpers
//     themselves (source.go) are the single allowed call site.
//   - packages whose exports must be deterministic (internal/core,
//     internal/cluster, internal/measure, internal/report,
//     internal/evmstatic) must not call time.Now/time.Since or anything
//     from math/rand: a wall-clock or PRNG read there can leak
//     nondeterminism into exported datasets and reports. Latency
//     instrumentation routes through obs.Now/obs.Since instead, which
//     keeps the clock visibly observability-only.
//
// Usage: go run ./cmd/reprolint ./...
//
// Exit status is 1 when any violation is found.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// listedPackage is the subset of `go list -json` output the linter
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct {
		Path string
		Dir  string
	}
}

// run lints the packages matched by patterns and returns the findings
// in deterministic order.
func run(patterns []string) ([]string, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, for type-checking imports.
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var findings []string
	for _, p := range pkgs {
		if p.Standard || p.Module == nil {
			continue
		}
		fs, err := lintPackage(p, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// goList runs `go list -deps -export -json` over the patterns. -deps
// pulls in every transitive dependency so the importer can resolve any
// import; -export makes the build cache produce export data.
func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w: %s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// lintPackage parses, type-checks, and lints one module package.
func lintPackage(p *listedPackage, imp types.Importer) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: imp}
	if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}

	rel := p.ImportPath
	if p.Module != nil {
		rel = strings.TrimPrefix(strings.TrimPrefix(p.ImportPath, p.Module.Path), "/")
	}
	l := &linter{
		fset:           fset,
		info:           info,
		banPanic:       strings.HasPrefix(rel, "internal/"),
		banPrinting:    !strings.HasPrefix(rel, "cmd/") && !strings.HasPrefix(rel, "examples/"),
		banProgress:    strings.HasPrefix(rel, "internal/") && rel != "internal/obs",
		banDirectFetch: rel == "internal/core",
		banClock:       deterministicPackages[rel],
	}
	for _, f := range files {
		ast.Inspect(f, l.inspect)
	}
	return l.findings, nil
}

// deterministicPackages lists the packages whose exported artifacts
// (datasets, clusters, tables, static analyses, load-generator
// schedules) must be reproducible byte-for-byte; rule 6 bans
// wall-clock and PRNG reads there. internal/loadgen qualifies because
// its op schedule is part of the determinism contract: timing flows
// through obs.Now/obs.Since and randomness through its own seeded
// generator, never the process clock or PRNG.
var deterministicPackages = map[string]bool{
	"internal/core":      true,
	"internal/cluster":   true,
	"internal/measure":   true,
	"internal/report":    true,
	"internal/evmstatic": true,
	"internal/loadgen":   true,
	"internal/screen":    true,
}

// linter walks one package's ASTs applying the rules.
type linter struct {
	fset           *token.FileSet
	info           *types.Info
	banPanic       bool
	banPrinting    bool
	banProgress    bool
	banDirectFetch bool
	banClock       bool
	findings       []string
}

func (l *linter) reportf(pos token.Pos, format string, args ...any) {
	l.findings = append(l.findings, fmt.Sprintf("%s: %s", l.fset.Position(pos), fmt.Sprintf(format, args...)))
}

func (l *linter) inspect(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}

	// Rule 1: no panic in internal/ packages.
	if l.banPanic {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			if _, builtin := l.info.Uses[id].(*types.Builtin); builtin {
				l.reportf(call.Pos(), "panic in internal package: return an error instead")
			}
		}
	}

	// Rule 5: in internal/core, record fetches must go through the
	// SourceTransaction/SourceReceipt helpers; a direct interface call
	// bypasses context cancellation and quarantine handling. source.go
	// hosts the helpers and is the one allowed call site.
	if l.banDirectFetch {
		l.checkDirectFetch(call)
	}

	fn, pkg := l.calledFunc(call)

	// Rule 6: no wall-clock or PRNG reads in deterministic-export
	// packages. time.Now and time.Since leak the wall clock; anything
	// from math/rand leaks the process PRNG. Instrumentation goes
	// through obs.Now/obs.Since.
	if l.banClock {
		if pkg == "time" && (fn == "Now" || fn == "Since") {
			l.reportf(call.Pos(), "time.%s in deterministic-export package: route instrumentation through obs.%s", fn, fn)
		}
		if pkg == "math/rand" || pkg == "math/rand/v2" {
			l.reportf(call.Pos(), "%s.%s in deterministic-export package: derive randomness from seeded inputs, not the process PRNG", pkg, fn)
		}
	}

	// Rule 4: no progress logging in internal/ outside internal/obs —
	// fmt.Fprint* aimed at the process-global streams, or the std log
	// package (which writes to stderr), must go through obs.Logger.
	if l.banProgress {
		if pkg == "log" {
			l.reportf(call.Pos(), "log.%s in internal package: route progress logging through internal/obs (obs.Logger)", fn)
		}
		if pkg == "fmt" && len(call.Args) > 0 {
			switch fn {
			case "Fprint", "Fprintf", "Fprintln":
				if stream := l.stdStream(call.Args[0]); stream != "" {
					l.reportf(call.Pos(), "fmt.%s to os.%s in internal package: route progress logging through internal/obs (obs.Logger)", fn, stream)
				}
			}
		}
	}

	if pkg != "fmt" {
		return true
	}

	// Rule 2: no fmt printing to stdout outside cmd/ and examples/.
	if l.banPrinting {
		switch fn {
		case "Print", "Printf", "Println":
			l.reportf(call.Pos(), "fmt.%s outside cmd/ or examples/: library code must not write to stdout", fn)
		}
	}

	// Rule 3: fmt.Errorf must wrap error arguments with %w.
	if fn == "Errorf" {
		l.checkErrorf(call)
	}
	return true
}

// checkDirectFetch flags method calls whose static receiver is the
// core.ChainSource interface and whose name is Transaction or Receipt,
// outside source.go.
func (l *linter) checkDirectFetch(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := l.info.Uses[sel.Sel].(*types.Func)
	if !ok || (fn.Name() != "Transaction" && fn.Name() != "Receipt") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	named, ok := sig.Recv().Type().(*types.Named)
	if !ok || named.Obj().Name() != "ChainSource" ||
		named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/core") {
		return
	}
	// source.go hosts the helpers; obsource.go is a forwarding
	// decorator whose whole job is the direct call it instruments.
	switch filepath.Base(l.fset.Position(call.Pos()).Filename) {
	case "source.go", "obsource.go":
		return
	}
	l.reportf(call.Pos(), "direct ChainSource.%s call in internal/core: use core.Source%s so context and quarantine semantics apply", fn.Name(), fn.Name())
}

// stdStream reports whether the expression is os.Stdout or os.Stderr,
// returning the variable name ("" otherwise).
func (l *linter) stdStream(e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := l.info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return ""
	}
	if name := obj.Name(); name == "Stdout" || name == "Stderr" {
		return name
	}
	return ""
}

// calledFunc resolves a call to (function name, defining package name)
// when the callee is a package-level selector like fmt.Errorf.
func (l *linter) calledFunc(call *ast.CallExpr) (name, pkg string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := l.info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Name(), fn.Pkg().Path()
}

// checkErrorf flags error-typed arguments formatted with a stringifying
// verb instead of %w.
func (l *linter) checkErrorf(call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := parseVerbs(format)
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		switch verb {
		case 'v', 's', 'q':
			if l.isError(args[i]) {
				l.reportf(args[i].Pos(), "fmt.Errorf stringifies an error with %%%c: use %%w so errors.Is/As can unwrap it", verb)
			}
		}
	}
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isError reports whether the expression's type implements error.
func (l *linter) isError(e ast.Expr) bool {
	tv, ok := l.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorType) ||
		types.Implements(types.NewPointer(tv.Type), errorType)
}

// parseVerbs extracts the verb letter consuming each successive
// argument of a format string. A '*' width or precision consumes an
// argument of its own and is recorded as '*'.
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Flags, width, precision — '*' consumes an argument slot.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", rune(c)) {
				i++
				continue
			}
			break
		}
		// Explicit argument indexes like %[1]d are rare enough here to
		// skip: bail on the whole format string to avoid misattribution.
		if i < len(format) && format[i] == '[' {
			return nil
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
