// Profitsharing walks through the anatomy of a single profit-sharing
// transaction (the paper's Figures 1 and 4): it deploys a real
// profit-sharing contract on the simulated chain, lets a victim sign
// the phishing transaction, and dissects the resulting fund flow with
// the classifier and the decompiler.
//
//	go run ./examples/profitsharing
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/ethtypes"
)

func main() {
	var (
		operator  = ethtypes.Addr("0x00006deacd9ad19db3d81f8410ea2bd5ea570000")
		affiliate = ethtypes.Addr("0x71f1917711917711917711917711917711164677")
		victim    = ethtypes.Addr("0x1c71e00000000000000000000000000000000001")
	)
	c := chain.New(time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC))
	c.Fund(victim, ethtypes.Ether(30))
	c.Fund(operator, ethtypes.Ether(1))

	// The operator deploys an Angel-style profit-sharing contract: a
	// payable Claim(address) splitting 30/70 (the Figure 1 ratio).
	initcode, err := contracts.Deploy(contracts.Spec{
		Style:            contracts.StyleClaim,
		Operator:         operator,
		OperatorPerMille: 300,
		Authorized:       operator,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, rs := c.Mine(time.Date(2023, 6, 2, 0, 0, 0, 0, time.UTC),
		&chain.Transaction{From: operator, Data: initcode})
	contractAddr := rs[0].ContractAddress
	fmt.Printf("profit-sharing contract deployed at %s\n\n", contractAddr)

	// The victim, lured by a phishing website, signs the transaction
	// that "claims rewards" — in reality transferring 9.13 ETH into the
	// contract, which instantly splits it.
	data, err := contracts.ClaimData("Claim(address)", affiliate)
	if err != nil {
		log.Fatal(err)
	}
	value := ethtypes.Ether(9).Add(ethtypes.GWei(130_000_000)) // 9.13 ETH
	_, rs = c.Mine(time.Date(2023, 6, 3, 10, 0, 0, 0, time.UTC), &chain.Transaction{
		From: victim, To: &contractAddr, Value: value, Data: data,
	})
	r := rs[0]
	if !r.Status {
		log.Fatalf("phishing tx failed: %s", r.Err)
	}

	fmt.Printf("phishing transaction %s\n", r.TxHash)
	fmt.Println("fund flow (trace_transaction equivalent):")
	for i, tr := range r.Transfers {
		fmt.Printf("  %d. depth %d  %s -> %s  %.4f ETH\n",
			i+1, tr.Depth, name(tr.From, operator, affiliate, victim, contractAddr),
			name(tr.To, operator, affiliate, victim, contractAddr), tr.Amount.EtherFloat())
	}

	// The classifier recognizes the two fixed-proportion transfers.
	cl := core.Classifier{}
	tx, _ := c.Transaction(r.TxHash)
	splits := cl.Classify(tx, r)
	if len(splits) != 1 {
		log.Fatalf("expected one split, got %d", len(splits))
	}
	sp := splits[0]
	fmt.Printf("\nclassified as profit-sharing: operator share %.1f%%\n", float64(sp.RatioPM)/10)
	fmt.Printf("  operator  %s received %.4f ETH\n", sp.Operator, sp.OperatorAmount.EtherFloat())
	fmt.Printf("  affiliate %s received %.4f ETH\n", sp.Affiliate, sp.AffiliateAmount.EtherFloat())

	// The decompiler recovers the Table 3 shape from deployed bytecode.
	an := contracts.Decompile(c.CodeAt(contractAddr), contractAddr,
		func(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash { return c.StorageAt(a, k) })
	fmt.Printf("\ndecompiled contract: steals ETH via %s; tokens via %s\n",
		an.ETHFunction, an.TokenFunction)
}

func name(a, op, aff, victim, contract ethtypes.Address) string {
	switch a {
	case op:
		return "operator "
	case aff:
		return "affiliate"
	case victim:
		return "victim   "
	case contract:
		return "contract "
	default:
		return a.Short()
	}
}
