// Walletguard demonstrates the paper's §9 countermeasures end to end:
// build the DaaS dataset with the measurement pipeline, load it into a
// wallet guard as a blacklist, and screen pending transactions with
// pre-signing simulation — the protection loop the paper advocates.
//
//	go run ./examples/walletguard
package main

import (
	"fmt"
	"log"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/walletguard"
	"repro/internal/worldgen"
)

func main() {
	// Build the measurement dataset over a small world.
	cfg := worldgen.DefaultConfig(9)
	cfg.Scale = 0.01
	world, err := worldgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipeline := &core.Pipeline{Source: core.LocalSource{Chain: world.Chain}, Labels: world.Labels}
	ds, err := pipeline.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Feed every recovered DaaS account into the wallet guard.
	guard := walletguard.New(world.Chain)
	guard.LoadDataset(ds)
	fmt.Printf("guard armed with %d blacklisted DaaS accounts\n\n", guard.BlacklistSize())

	// A user is about to sign a transaction on a phishing site: sending
	// 5 ETH to a recovered profit-sharing contract.
	var phishingContract ethtypes.Address
	for addr := range ds.Contracts {
		phishingContract = addr
		break
	}
	user := ethtypes.Addr("0x5e77000000000000000000000000000000000001")
	world.Chain.Fund(user, ethtypes.Ether(5))
	data, _ := contracts.ClaimData("Claim(address)",
		ethtypes.Addr("0xaf00000000000000000000000000000000000099"))

	verdict := guard.Screen(&chain.Transaction{
		From: user, To: &phishingContract, Value: ethtypes.Ether(5), Data: data,
	}, "pepe-claim-official.dev")

	fmt.Println("screening a pending signature request from pepe-claim-official.dev:")
	for _, w := range verdict.Warnings {
		fmt.Printf("  [%s] %s: %s\n", w.Severity, w.Code, w.Detail)
	}
	if verdict.Block {
		fmt.Println("=> signature BLOCKED")
	}

	// The same user paying a friend sails through.
	friend := ethtypes.Addr("0xf100000000000000000000000000000000000002")
	ok := guard.Screen(&chain.Transaction{From: user, To: &friend, Value: ethtypes.Ether(1)}, "")
	fmt.Printf("\nscreening an ordinary 1 ETH payment: block=%v, %d warnings\n",
		ok.Block, len(ok.Warnings))
}
