// Quickstart: generate a small DaaS world, run the full measurement
// study through the public daas API, and print the headline results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/daas"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/worldgen"
)

func main() {
	// 1. Generate a synthetic Ethereum history with nine planted DaaS
	//    families (1% of the paper's population for a fast demo).
	cfg := worldgen.DefaultConfig(1910)
	cfg.Scale = 0.01
	world, err := worldgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d transactions, %d public phishing reports\n\n",
		world.Chain.TxCount(), len(world.Labels.AllPhishing()))

	// 2. Point a daas.Client at it. Against a real deployment this
	//    would be daas.Dial("http://node:8545") instead.
	client := daas.New(core.LocalSource{Chain: world.Chain}, world.Labels, world.Oracle)

	// 3. Run the complete study: snowball dataset construction (§5),
	//    validation (§5.2), family clustering (§7), measurements (§6).
	study, err := client.StudyWith(daas.StudyOptions{
		DatasetEnd:         worldgen.DatasetEnd,
		PrimaryContractTxs: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Print the paper's tables.
	report.Table1(os.Stdout, study.Dataset.SeedStats, study.Dataset.Stats())
	fmt.Println()
	report.Totals(os.Stdout, study.Totals)
	report.Validation(os.Stdout, study.Validation)
	fmt.Println()
	report.Table2(os.Stdout, study.FamilyRows)
}
