// Familyreport demonstrates the clustering half of the study: it
// builds the dataset, groups it into DaaS families (§7.1), and prints
// a Table 2-style report plus a per-family contract decompilation
// (Table 3) — the workflow of an analyst attributing a new campaign.
//
//	go run ./examples/familyreport
package main

import (
	"fmt"
	"log"
	"os"

	"repro/daas"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/report"
	"repro/internal/worldgen"
)

func main() {
	cfg := worldgen.DefaultConfig(77)
	cfg.Scale = 0.02
	world, err := worldgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	client := daas.New(core.LocalSource{Chain: world.Chain}, world.Labels, world.Oracle)

	study, err := client.StudyWith(daas.StudyOptions{
		DatasetEnd:         worldgen.DatasetEnd,
		PrimaryContractTxs: 2,
		SkipValidation:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	report.Table2(os.Stdout, study.FamilyRows)
	fmt.Println()

	// Decompile the busiest contract of each dominant family.
	read := func(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
		return world.Chain.StorageAt(a, k)
	}
	var rows []report.Table3Row
	for _, fam := range study.Families {
		switch fam.Name {
		case "Angel Drainer", "Inferno Drainer", "Pink Drainer":
		default:
			continue
		}
		var best ethtypes.Address
		bestTxs := -1
		for _, con := range fam.Contracts {
			if rec := study.Dataset.Contracts[con]; rec != nil && rec.TxCount > bestTxs {
				best, bestTxs = con, rec.TxCount
			}
		}
		an := contracts.Decompile(world.Chain.CodeAt(best), best, read)
		rows = append(rows, report.Table3Row{Family: fam.Name, Analysis: an})
	}
	report.Table3(os.Stdout, rows)

	// Show the family-membership detail an analyst would export.
	fmt.Println()
	for _, fam := range study.Families[:3] {
		fmt.Printf("%s: %d operators, first operator %s\n",
			fam.Name, len(fam.Operators), fam.Operators[0])
	}
}
