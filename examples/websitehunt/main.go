// Websitehunt runs the §8.2 detection pipeline end to end over live
// HTTP: deploy a mixed fleet of phishing and benign websites, feed
// their certificates into a Certificate Transparency log, then hunt —
// CT polling, suspicious-domain extraction, crawling, and toolkit
// fingerprint matching.
//
//	go run ./examples/websitehunt
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/crawler"
	"repro/internal/ct"
	"repro/internal/report"
	"repro/internal/sitehunt"
	"repro/internal/toolkit"
	"repro/internal/website"
)

func main() {
	// Deploy 120 phishing sites, 60 benign sites, and 20 "bait" sites
	// (benign content behind suspicious-looking domains).
	fleet := website.GenerateFleet(website.FleetConfig{
		Seed: 2024, Phishing: 120, Benign: 60, Bait: 20,
	})
	hosting := httptest.NewServer(website.NewHost(fleet))
	defer hosting.Close()

	// Every HTTPS site's certificate lands in the CT log.
	ctLog, err := ct.NewLog()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range fleet {
		if s.HTTPS {
			if _, err := ctLog.Issue([]string{s.Domain}, s.Issued); err != nil {
				log.Fatal(err)
			}
		}
	}
	ctServer := httptest.NewServer(ctLog.Handler())
	defer ctServer.Close()
	fmt.Printf("fleet: %d sites hosted at %s; CT log at %s\n\n",
		len(fleet), hosting.URL, ctServer.URL)

	// The hunter: 87 toolkit fingerprints, 0.8 similarity threshold.
	detector := &sitehunt.Detector{
		CT:      ct.NewClient(ctServer.URL),
		Crawler: crawler.New(hosting.URL),
		Corpus:  toolkit.BuildCorpus(2024, 87),
		Trace: func(format string, args ...any) {
			// Print the first few detections as they happen.
		},
	}
	rep, err := detector.Run()
	if err != nil {
		log.Fatal(err)
	}

	report.SiteHunt(os.Stdout, rep)
	fmt.Println()
	report.Table4(os.Stdout, rep.TLDs, 10)

	// Show a couple of concrete detections.
	fmt.Println("\nsample detections:")
	for i, det := range rep.Detections {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-40s %-16s (keyword %q)\n", det.Domain, det.Family, det.Keyword)
	}
}
