package ethtypes

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestHexToAddressRoundTrip(t *testing.T) {
	in := "0xfcaeaa5aac84d00f1c5854113581881b42bda745"
	a, err := HexToAddress(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hex() != in {
		t.Errorf("Hex() = %s, want %s", a.Hex(), in)
	}
	if a.Short() != "0xfcaeaa" {
		t.Errorf("Short() = %s, want 0xfcaeaa", a.Short())
	}
}

func TestHexToAddressErrors(t *testing.T) {
	for _, bad := range []string{"", "0x", "0x1234", "zzzz", "0x" + strings.Repeat("f", 39), "0x" + strings.Repeat("g", 40)} {
		if _, err := HexToAddress(bad); err == nil {
			t.Errorf("HexToAddress(%q) succeeded, want error", bad)
		}
	}
}

func TestHexToHash(t *testing.T) {
	in := "0x86a5fc45f8e3c174fcbcdb04132a259d1af488db760befbdc0fbec4bfa6fba6d"
	h, err := HexToHash(in)
	if err != nil {
		t.Fatal(err)
	}
	if h.Hex() != in {
		t.Errorf("Hex() = %s, want %s", h.Hex(), in)
	}
	if h.IsZero() {
		t.Error("non-zero hash reported IsZero")
	}
}

// EIP-55 reference vectors from the EIP itself.
func TestChecksumKnownAnswers(t *testing.T) {
	vectors := []string{
		"0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed",
		"0xfB6916095ca1df60bB79Ce92cE3Ea74c37c5d359",
		"0xdbF03B407c01E7cD3CBea99509d93f8DDDC8C6FB",
		"0xD1220A0cf47c7B9Be7A2E6BA89F429762e7b9aDb",
	}
	for _, v := range vectors {
		a := Addr(v)
		if got := a.Checksum(); got != v {
			t.Errorf("Checksum(%s) = %s", v, got)
		}
		if _, ok := VerifyChecksum(v); !ok {
			t.Errorf("VerifyChecksum(%s) = false", v)
		}
	}
}

func TestVerifyChecksumRejectsBadCasing(t *testing.T) {
	// Flip the case of one letter in a valid checksummed address.
	bad := "0x5AAeb6053F3E94C9b9A09f33669435E7Ef1BeAed"
	if _, ok := VerifyChecksum(bad); ok {
		t.Error("VerifyChecksum accepted corrupted casing")
	}
	// All-lowercase is always accepted per EIP-55.
	if _, ok := VerifyChecksum("0x5aaeb6053f3e94c9b9a09f33669435e7ef1beaed"); !ok {
		t.Error("VerifyChecksum rejected all-lowercase form")
	}
}

func TestBytesToAddressPadding(t *testing.T) {
	a := BytesToAddress([]byte{0xab, 0xcd})
	want := "0x" + strings.Repeat("0", 36) + "abcd"
	if a.Hex() != want {
		t.Errorf("got %s, want %s", a.Hex(), want)
	}
	// Longer than 20 bytes keeps the last 20 (CREATE address rule).
	long := make([]byte, 32)
	long[12] = 0x99 // first byte of the trailing 20
	if got := BytesToAddress(long); got[0] != 0x99 {
		t.Errorf("truncation kept wrong bytes: %s", got.Hex())
	}
}

func TestWeiArithmetic(t *testing.T) {
	v := Ether(9).Add(GWei(130_000_000)) // 9.13 ETH
	op := v.MulDiv(30, 100)
	af := v.MulDiv(70, 100)
	if got := op.Add(af).Cmp(v); got > 0 {
		t.Errorf("split exceeds input")
	}
	if op.EtherFloat() < 2.73 || op.EtherFloat() > 2.75 {
		t.Errorf("operator share = %f ETH, want ~2.74", op.EtherFloat())
	}
	if af.EtherFloat() < 6.38 || af.EtherFloat() > 6.40 {
		t.Errorf("affiliate share = %f ETH, want ~6.39", af.EtherFloat())
	}
}

func TestWeiImmutability(t *testing.T) {
	a := Ether(1)
	b := a.Add(Ether(2))
	if a.Cmp(Ether(1)) != 0 {
		t.Error("Add mutated its receiver")
	}
	if b.Cmp(Ether(3)) != 0 {
		t.Error("Add produced wrong sum")
	}
	big := a.Big()
	big.SetInt64(0)
	if a.IsZero() {
		t.Error("Big() aliases internal state")
	}
}

func TestWeiFromBigNil(t *testing.T) {
	if w := WeiFromBig(nil); !w.IsZero() {
		t.Errorf("WeiFromBig(nil) = %s, want 0", w)
	}
	src := big.NewInt(42)
	w := WeiFromBig(src)
	src.SetInt64(99)
	if w.Uint64() != 42 {
		t.Error("WeiFromBig aliases its argument")
	}
}

// Property: MulDiv(p, 100) + MulDiv(100-p, 100) never exceeds the input
// and falls short by at most 1 wei of rounding dust — the invariant the
// profit-sharing classifier's tolerance depends on.
func TestQuickSplitConservation(t *testing.T) {
	f := func(amount uint32, pct uint8) bool {
		p := int64(pct%39) + 1 // 1..39
		v := NewWei(int64(amount))
		lo := v.MulDiv(p, 100)
		hi := v.MulDiv(100-p, 100)
		total := lo.Add(hi)
		if total.Cmp(v) > 0 {
			return false
		}
		dust := v.Sub(total)
		return dust.Cmp(NewWei(2)) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: checksum round-trips for arbitrary addresses.
func TestQuickChecksumRoundTrip(t *testing.T) {
	f := func(raw [20]byte) bool {
		a := Address(raw)
		got, ok := VerifyChecksum(a.Checksum())
		return ok && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValues(t *testing.T) {
	var a Address
	if !a.IsZero() {
		t.Error("zero Address not IsZero")
	}
	var w Wei
	if !w.IsZero() || w.String() != "0" {
		t.Error("zero Wei not usable")
	}
	if w.Add(Ether(1)).Cmp(Ether(1)) != 0 {
		t.Error("zero Wei not additive identity")
	}
}
