// Package ethtypes defines the primitive Ethereum value types shared by
// every substrate in this repository: 20-byte addresses, 32-byte hashes,
// and arbitrary-precision Wei amounts, together with hex encoding and
// EIP-55 checksumming.
package ethtypes

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/keccak"
)

// AddressLength is the byte length of an Ethereum account address.
const AddressLength = 20

// HashLength is the byte length of a Keccak-256 hash.
const HashLength = 32

// Address is a 20-byte Ethereum account address. The zero value is the
// zero address, which the chain treats as "no recipient" (contract
// creation) in transactions.
type Address [AddressLength]byte

// Hash is a 32-byte Keccak-256 digest used for transaction and block
// identities and event topics.
type Hash [HashLength]byte

// ZeroAddress is the all-zero address.
var ZeroAddress Address

var errBadHex = errors.New("ethtypes: malformed hex input")

// HexToAddress parses a 0x-prefixed or bare 40-hex-digit string. It
// returns an error for any other shape; checksum casing is not enforced.
func HexToAddress(s string) (Address, error) {
	var a Address
	b, err := decodeHex(s, AddressLength)
	if err != nil {
		return a, fmt.Errorf("address %q: %w", s, err)
	}
	copy(a[:], b)
	return a, nil
}

// Addr converts a hex string to an Address the way go-ethereum's
// HexToAddress does: lenient, no error path. Invalid hex digits decode
// as far as possible and the result is right-aligned per the
// BytesToAddress truncation rule. Use HexToAddress when the input is
// untrusted and malformed strings must be rejected.
func Addr(s string) Address {
	s = strings.TrimPrefix(s, "0x")
	if len(s)%2 == 1 {
		s = "0" + s
	}
	b, _ := hex.DecodeString(s)
	return BytesToAddress(b)
}

// HexToHash parses a 0x-prefixed or bare 64-hex-digit string.
func HexToHash(s string) (Hash, error) {
	var h Hash
	b, err := decodeHex(s, HashLength)
	if err != nil {
		return h, fmt.Errorf("hash %q: %w", s, err)
	}
	copy(h[:], b)
	return h, nil
}

func decodeHex(s string, want int) ([]byte, error) {
	s = strings.TrimPrefix(s, "0x")
	if len(s) != want*2 {
		return nil, fmt.Errorf("%w: got %d hex digits, want %d", errBadHex, len(s), want*2)
	}
	return hex.DecodeString(s)
}

// BytesToAddress returns the address formed by the last 20 bytes of b,
// left-padding with zeros when b is short. This matches Ethereum's
// truncation rule for CREATE-derived addresses.
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > AddressLength {
		b = b[len(b)-AddressLength:]
	}
	copy(a[AddressLength-len(b):], b)
	return a
}

// BytesToHash returns the hash formed by the last 32 bytes of b.
func BytesToHash(b []byte) Hash {
	var h Hash
	if len(b) > HashLength {
		b = b[len(b)-HashLength:]
	}
	copy(h[HashLength-len(b):], b)
	return h
}

// Hex returns the lowercase 0x-prefixed representation.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String renders the EIP-55 checksummed form, the canonical display
// format used throughout reports.
func (a Address) String() string { return a.Checksum() }

// Short returns the abbreviated 0x-prefixed first-3-byte form the paper
// uses to name accounts (e.g. "0xfcaeaa").
func (a Address) Short() string { return "0x" + hex.EncodeToString(a[:3]) }

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Checksum returns the EIP-55 mixed-case checksummed representation.
func (a Address) Checksum() string {
	lower := hex.EncodeToString(a[:])
	sum := keccak.Sum256([]byte(lower))
	out := []byte("0x" + lower)
	for i, c := range lower {
		if c >= 'a' && c <= 'f' {
			// Uppercase when the corresponding checksum nibble >= 8.
			nibble := sum[i/2]
			if i%2 == 0 {
				nibble >>= 4
			}
			if nibble&0x0f >= 8 {
				out[2+i] = byte(c) - 'a' + 'A'
			}
		}
	}
	return string(out)
}

// VerifyChecksum reports whether s is a validly checksummed (or
// all-lowercase / all-uppercase, which EIP-55 treats as unchecked)
// rendering of some address, returning that address.
func VerifyChecksum(s string) (Address, bool) {
	a, err := HexToAddress(s)
	if err != nil {
		return Address{}, false
	}
	body := strings.TrimPrefix(s, "0x")
	if body == strings.ToLower(body) || body == strings.ToUpper(body) {
		return a, true
	}
	return a, "0x"+body == a.Checksum()
}

// Hex returns the lowercase 0x-prefixed representation.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer.
func (h Hash) String() string { return h.Hex() }

// IsZero reports whether h is the zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// Wei is an arbitrary-precision token amount in the chain's smallest
// unit. Wei values are immutable: every arithmetic method returns a new
// value and never aliases its operands' internals.
type Wei struct {
	i big.Int
}

// NewWei returns a Wei holding v.
func NewWei(v int64) Wei {
	var w Wei
	w.i.SetInt64(v)
	return w
}

// WeiFromBig copies b into a Wei. A nil b yields zero.
func WeiFromBig(b *big.Int) Wei {
	var w Wei
	if b != nil {
		w.i.Set(b)
	}
	return w
}

// Ether returns whole ether expressed in wei (1e18 wei per ether).
func Ether(n int64) Wei {
	w := NewWei(n)
	return w.Mul64(1_000_000_000_000_000_000)
}

// GWei returns n gigawei.
func GWei(n int64) Wei {
	w := NewWei(n)
	return w.Mul64(1_000_000_000)
}

// Big returns a fresh copy of the underlying integer.
func (w Wei) Big() *big.Int { return new(big.Int).Set(&w.i) }

// Add returns w + v.
func (w Wei) Add(v Wei) Wei {
	var out Wei
	out.i.Add(&w.i, &v.i)
	return out
}

// Sub returns w - v.
func (w Wei) Sub(v Wei) Wei {
	var out Wei
	out.i.Sub(&w.i, &v.i)
	return out
}

// Mul64 returns w * n.
func (w Wei) Mul64(n int64) Wei {
	var out Wei
	out.i.Mul(&w.i, big.NewInt(n))
	return out
}

// Div64 returns w / n using truncated integer division.
func (w Wei) Div64(n int64) Wei {
	var out Wei
	out.i.Div(&w.i, big.NewInt(n))
	return out
}

// MulDiv returns w * num / den in one step, avoiding intermediate
// truncation; this is how profit-sharing contracts compute percentage
// splits (msg.value * 20 / 100).
func (w Wei) MulDiv(num, den int64) Wei {
	var out Wei
	out.i.Mul(&w.i, big.NewInt(num))
	out.i.Div(&out.i, big.NewInt(den))
	return out
}

// Cmp compares w and v, returning -1, 0 or +1.
func (w Wei) Cmp(v Wei) int { return w.i.Cmp(&v.i) }

// Sign returns -1, 0 or +1 for negative, zero, positive.
func (w Wei) Sign() int { return w.i.Sign() }

// IsZero reports whether w is exactly zero.
func (w Wei) IsZero() bool { return w.i.Sign() == 0 }

// Float64 returns an approximate float representation (used only for
// reporting ratios, never for accounting).
func (w Wei) Float64() float64 {
	f, _ := new(big.Float).SetInt(&w.i).Float64()
	return f
}

// EtherFloat returns the amount in ether as a float, for display.
func (w Wei) EtherFloat() float64 { return w.Float64() / 1e18 }

// String renders the amount in wei.
func (w Wei) String() string { return w.i.String() }

// Bytes returns the big-endian byte representation without leading zeros.
func (w Wei) Bytes() []byte { return w.i.Bytes() }

// Uint64 returns the low 64 bits; callers must know the value fits.
func (w Wei) Uint64() uint64 { return w.i.Uint64() }
