package retry

import (
	"context"
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
)

// Source decorates a core.ChainSource with the retry policy, so the
// snowball pipeline survives transient source faults (a gateway 5xx, a
// dropped connection) without aborting a multi-hour build. It forwards
// every optional source capability — batching, bytecode, and
// context-aware fetches — so wrapping never hides them from the
// pipeline's capability detection.
type Source struct {
	src    core.ChainSource
	policy *Policy
}

// WrapSource returns src wrapped in the policy; a nil policy returns
// src unchanged.
func WrapSource(src core.ChainSource, p *Policy) core.ChainSource {
	if p == nil {
		return src
	}
	return &Source{src: src, policy: p}
}

// Unwrap returns the wrapped source.
func (s *Source) Unwrap() core.ChainSource { return s.src }

// TransactionsOf implements core.ChainSource.
func (s *Source) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	var out []ethtypes.Hash
	err := s.policy.Do(context.Background(), "TransactionsOf", func() error {
		var err error
		out, err = s.src.TransactionsOf(addr)
		return err
	})
	return out, err
}

// Transaction implements core.ChainSource.
func (s *Source) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	return s.TransactionContext(context.Background(), h)
}

// Receipt implements core.ChainSource.
func (s *Source) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	return s.ReceiptContext(context.Background(), h)
}

// TransactionContext implements core.ContextSource, retrying under ctx.
func (s *Source) TransactionContext(ctx context.Context, h ethtypes.Hash) (*chain.Transaction, error) {
	var out *chain.Transaction
	err := s.policy.Do(ctx, "Transaction", func() error {
		var err error
		out, err = core.SourceTransaction(ctx, s.src, h)
		return err
	})
	return out, err
}

// ReceiptContext implements core.ContextSource, retrying under ctx.
func (s *Source) ReceiptContext(ctx context.Context, h ethtypes.Hash) (*chain.Receipt, error) {
	var out *chain.Receipt
	err := s.policy.Do(ctx, "Receipt", func() error {
		var err error
		out, err = core.SourceReceipt(ctx, s.src, h)
		return err
	})
	return out, err
}

// IsContract implements core.ChainSource.
func (s *Source) IsContract(addr ethtypes.Address) (bool, error) {
	var out bool
	err := s.policy.Do(context.Background(), "IsContract", func() error {
		var err error
		out, err = s.src.IsContract(addr)
		return err
	})
	return out, err
}

// Code implements core.CodeSource when the wrapped source does.
func (s *Source) Code(addr ethtypes.Address) ([]byte, error) {
	cs, ok := s.src.(core.CodeSource)
	if !ok {
		return nil, fmt.Errorf("retry: source %T does not serve bytecode", s.src)
	}
	var out []byte
	err := s.policy.Do(context.Background(), "Code", func() error {
		var err error
		out, err = cs.Code(addr)
		return err
	})
	return out, err
}

// BatchTransactions implements core.BatchSource, degrading to per-item
// fetches when the wrapped source cannot batch. Retrying the whole
// batch is safe: batch reads are idempotent, and the fetch cache (when
// layered above) never caches failures, so a retried batch re-fetches
// exactly the hashes that failed.
func (s *Source) BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error) {
	bs, ok := s.src.(core.BatchSource)
	if !ok {
		out := make([]*chain.Transaction, len(hs))
		for i, h := range hs {
			tx, err := s.Transaction(h)
			if err != nil {
				return nil, err
			}
			out[i] = tx
		}
		return out, nil
	}
	var out []*chain.Transaction
	err := s.policy.Do(context.Background(), "BatchTransactions", func() error {
		var err error
		out, err = bs.BatchTransactions(hs)
		return err
	})
	return out, err
}

// BatchReceipts implements core.BatchSource; see BatchTransactions.
func (s *Source) BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error) {
	bs, ok := s.src.(core.BatchSource)
	if !ok {
		out := make([]*chain.Receipt, len(hs))
		for i, h := range hs {
			rec, err := s.Receipt(h)
			if err != nil {
				return nil, err
			}
			out[i] = rec
		}
		return out, nil
	}
	var out []*chain.Receipt
	err := s.policy.Do(context.Background(), "BatchReceipts", func() error {
		var err error
		out, err = bs.BatchReceipts(hs)
		return err
	})
	return out, err
}
