package retry

import (
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a circuit breaker state.
type State int

// Breaker states, ordered so the exported gauge reads naturally:
// 0 = healthy, 2 = fully open.
const (
	StateClosed State = iota
	StateHalfOpen
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned by Allow while the breaker is open (and by a
// half-open breaker that already admitted its probe). It classifies as
// fatal, so policies fail fast instead of backing off against a
// breaker that will refuse them anyway.
var ErrOpen = errors.New("retry: circuit breaker open")

// Breaker is a consecutive-failure circuit breaker. Closed, it admits
// everything; Threshold consecutive transient failures open it; after
// Cooldown it half-opens and admits a single probe, whose outcome
// closes or re-opens it. Safe for concurrent use. A nil *Breaker
// admits everything.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// probe (default 30s).
	Cooldown time.Duration
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
	// Metrics, when set, exports daas_breaker_state{scope} (0 closed,
	// 1 half-open, 2 open) and daas_breaker_transitions_total{scope,to}.
	Metrics *obs.Registry
	// Scope labels the breaker's metrics (e.g. "rpc", "ct", "crawler").
	Scope string

	mu       sync.Mutex
	state    State
	fails    int
	openedAt time.Time
	probing  bool

	metricsOnce sync.Once
	bm          breakerMetrics
}

type breakerMetrics struct {
	state       *obs.Gauge
	transitions *obs.CounterVec
}

var noopBreakerMetrics breakerMetrics

func (b *Breaker) metrics() *breakerMetrics {
	// Nil guard before the once, so late Metrics assignment is not
	// latched into no-ops.
	if b.Metrics == nil {
		return &noopBreakerMetrics
	}
	b.metricsOnce.Do(func() {
		b.bm = breakerMetrics{
			state:       b.Metrics.GaugeVec("daas_breaker_state", "circuit breaker state (0 closed, 1 half-open, 2 open)", "scope").With(b.Scope),
			transitions: b.Metrics.CounterVec("daas_breaker_transitions_total", "circuit breaker state transitions", "scope", "to"),
		}
	})
	return &b.bm
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 30 * time.Second
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// transition must be called with b.mu held.
func (b *Breaker) transition(to State) {
	if b.state == to {
		return
	}
	b.state = to
	bm := b.metrics()
	bm.state.Set(int64(to))
	bm.transitions.With(b.Scope, to.String()).Inc()
}

// State reports the current state, applying the cooldown (an open
// breaker past its cooldown reads half-open).
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cooldown() {
		b.transition(StateHalfOpen)
	}
	return b.state
}

// Allow reports whether a call may proceed: nil when admitted, ErrOpen
// (wrapped) when the breaker is open or its half-open probe slot is
// taken. A nil breaker admits everything.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return nil
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown() {
			return ErrOpen
		}
		b.transition(StateHalfOpen)
		b.probing = true
		return nil
	default: // StateHalfOpen
		if b.probing {
			return ErrOpen
		}
		b.probing = true
		return nil
	}
}

// Record reports one admitted call's outcome. Only transient
// (infrastructure) failures count toward opening: an application-level
// error proves the backend is responsive.
func (b *Breaker) Record(transientFailure bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if transientFailure {
		b.fails++
		switch {
		case b.state == StateHalfOpen:
			// The probe failed: back to a full cooldown.
			b.probing = false
			b.openedAt = b.now()
			b.transition(StateOpen)
		case b.state == StateClosed && b.fails >= b.threshold():
			b.openedAt = b.now()
			b.transition(StateOpen)
		}
		return
	}
	b.fails = 0
	b.probing = false
	if b.state != StateClosed {
		b.transition(StateClosed)
	}
}
