// Package retry implements the resilience layer of the measurement
// infrastructure: a deterministic exponential-backoff retry policy
// with per-error classification, an optional shared retry budget, and
// a circuit breaker.
//
// The live counterparts of this repository's substituted inputs are
// flaky by nature — public RPC gateways rate-limit and shed load, CT
// log frontends return 5xx under bursts, and phishing sites vanish
// mid-crawl — so a single transient fault must never abort a
// multi-hour snowball build or wedge the CT→crawl funnel. Every
// network-facing client (internal/rpc, internal/ct, internal/crawler)
// and, optionally, the pipeline's ChainSource accept a *Policy and
// route their calls through Do.
//
// Backoff is deterministic (no jitter): given the same fault schedule
// the retry sequence is identical run to run, which keeps the
// fault-injection tests (internal/faults) reproducible and lets the
// pipeline's byte-identical-output guarantee extend to faulted runs.
package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
)

// Class is the retry classification of an error.
type Class int

// Error classes.
const (
	// ClassFatal errors are returned immediately: the request is
	// malformed, the response is a definitive application-level answer
	// (JSON-RPC error object, HTTP 4xx other than 429), or the caller
	// cancelled.
	ClassFatal Class = iota
	// ClassTransient errors are worth retrying: timeouts, connection
	// resets, HTTP 5xx and 429, truncated response bodies.
	ClassTransient
)

func (c Class) String() string {
	if c == ClassTransient {
		return "transient"
	}
	return "fatal"
}

// HTTPError carries an HTTP status code through error wrapping, so the
// classifier can distinguish a retryable 503 from a definitive 404
// regardless of which client produced it.
type HTTPError struct {
	Status int
}

func (e *HTTPError) Error() string { return fmt.Sprintf("http %d", e.Status) }

// markedError pins a classification onto a wrapped error, overriding
// the default classifier.
type markedError struct {
	err   error
	class Class
}

func (m *markedError) Error() string { return m.err.Error() }
func (m *markedError) Unwrap() error { return m.err }

// Transient marks err as retryable regardless of its shape.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &markedError{err: err, class: ClassTransient}
}

// Fatal marks err as non-retryable regardless of its shape.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return &markedError{err: err, class: ClassFatal}
}

// Classify is the default classifier: explicit marks win, then HTTP
// status (5xx and 429 are transient), then transport-level signals
// (timeouts, connection resets/refusals, truncated bodies). Everything
// unrecognized is fatal — retrying an error we cannot attribute to
// infrastructure risks hammering a server with a request it already
// rejected for cause.
func Classify(err error) Class {
	if err == nil {
		return ClassFatal
	}
	var marked *markedError
	if errors.As(err, &marked) {
		return marked.class
	}
	var httpErr *HTTPError
	if errors.As(err, &httpErr) {
		if httpErr.Status == 429 || httpErr.Status >= 500 {
			return ClassTransient
		}
		return ClassFatal
	}
	// A caller-initiated cancel is final. Deadline expiry falls through
	// to the net.Error timeout check: an HTTP client timeout surfaces
	// as a *url.Error that is both a deadline and a timeout, and a
	// timed-out attempt is exactly what backoff exists for.
	if errors.Is(err, context.Canceled) {
		return ClassFatal
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return ClassTransient
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ClassTransient
	}
	return ClassFatal
}

// Budget caps the total number of retries (attempts beyond each
// operation's first try) a group of operations may spend, preventing
// retry amplification when a whole backend goes down: once the budget
// is exhausted every operation gets exactly one try. The zero value
// has no budget to spend; share one *Budget across policies to bound a
// subsystem.
type Budget struct {
	// Max is the total number of retries the budget grants.
	Max int64

	used atomic.Int64
}

// take consumes one retry from the budget, reporting whether one was
// available. A nil budget is unlimited.
func (b *Budget) take() bool {
	if b == nil {
		return true
	}
	for {
		u := b.used.Load()
		if u >= b.Max {
			return false
		}
		if b.used.CompareAndSwap(u, u+1) {
			return true
		}
	}
}

// Used reports how many retries the budget has granted so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Policy is a deterministic exponential-backoff retry policy. The zero
// value (and a nil *Policy) performs no retries; Default returns the
// production configuration. Policies are safe for concurrent use.
type Policy struct {
	// MaxAttempts bounds the total tries per operation, first try
	// included (default 4: one try plus three retries).
	MaxAttempts int
	// BaseDelay is the sleep before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Classify decides which errors are worth retrying (default
	// Classify).
	Classify func(error) Class
	// Budget, when set, bounds total retries across every operation
	// sharing it.
	Budget *Budget
	// Breaker, when set, short-circuits calls while the backend is
	// failing hard (see Breaker).
	Breaker *Breaker
	// Metrics, when set, records daas_retry_attempts_total{op},
	// daas_retry_retries_total{op}, and daas_retry_giveups_total{op}.
	Metrics *obs.Registry
	// Logger, when set, receives one Debug event per retry.
	Logger *obs.Logger
	// Sleep is the backoff sleeper, injectable for tests. The default
	// honors ctx cancellation. It never runs with a zero or negative
	// duration.
	Sleep func(ctx context.Context, d time.Duration) error

	metricsOnce sync.Once
	pm          policyMetrics
}

// policyMetrics caches the policy's instruments; all nil (no-op) when
// Metrics is unset.
type policyMetrics struct {
	attempts *obs.CounterVec
	retries  *obs.CounterVec
	giveups  *obs.CounterVec
}

var noopPolicyMetrics policyMetrics

func (p *Policy) metrics() *policyMetrics {
	// The nil guard precedes the once: a policy used before Metrics is
	// assigned must not latch no-op instruments forever (the latch bug
	// fixed in rpc.Client and ct.Client).
	if p.Metrics == nil {
		return &noopPolicyMetrics
	}
	p.metricsOnce.Do(func() {
		p.pm = policyMetrics{
			attempts: p.Metrics.CounterVec("daas_retry_attempts_total", "tries per retryable operation (first try included)", "op"),
			retries:  p.Metrics.CounterVec("daas_retry_retries_total", "retries performed after transient failures", "op"),
			giveups:  p.Metrics.CounterVec("daas_retry_giveups_total", "operations abandoned with attempts or budget exhausted", "op"),
		}
	})
	return &p.pm
}

// Default returns the production retry policy: 4 attempts, 50ms base
// delay doubling to a 5s cap.
func Default() *Policy {
	return &Policy{}
}

func (p *Policy) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 4
}

func (p *Policy) baseDelay() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return 50 * time.Millisecond
}

func (p *Policy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 5 * time.Second
}

func (p *Policy) multiplier() float64 {
	if p.Multiplier > 1 {
		return p.Multiplier
	}
	return 2
}

func (p *Policy) classify(err error) Class {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return Classify(err)
}

// Delay returns the deterministic backoff before retry number retry
// (1-based): BaseDelay·Multiplier^(retry-1), capped at MaxDelay.
func (p *Policy) Delay(retry int) time.Duration {
	d := float64(p.baseDelay())
	mul := p.multiplier()
	for i := 1; i < retry; i++ {
		d *= mul
		if d >= float64(p.maxDelay()) {
			return p.maxDelay()
		}
	}
	if d >= float64(p.maxDelay()) {
		return p.maxDelay()
	}
	return time.Duration(d)
}

func (p *Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn under the policy: transient failures are retried with
// exponential backoff until success, a fatal error, attempt
// exhaustion, budget exhaustion, an open breaker, or ctx cancellation.
// The returned error is fn's last error (or the breaker's / context's
// refusal), never a new synthetic one, so callers' error wrapping and
// inspection work unchanged. A nil policy runs fn exactly once.
func (p *Policy) Do(ctx context.Context, op string, fn func() error) error {
	if p == nil {
		return fn()
	}
	pm := p.metrics()
	max := p.maxAttempts()
	for attempt := 1; ; attempt++ {
		if err := p.Breaker.Allow(); err != nil {
			pm.giveups.With(op).Inc()
			return fmt.Errorf("retry: %s: %w", op, err)
		}
		pm.attempts.With(op).Inc()
		err := fn()
		if err == nil {
			p.Breaker.Record(false)
			return nil
		}
		class := p.classify(err)
		p.Breaker.Record(class == ClassTransient)
		if class != ClassTransient {
			return err
		}
		if attempt >= max || ctx.Err() != nil || !p.Budget.take() {
			pm.giveups.With(op).Inc()
			return err
		}
		pm.retries.With(op).Inc()
		delay := p.Delay(attempt)
		p.Logger.Debug("retrying after transient failure",
			"op", op, "attempt", attempt, "delay", delay.String(), "err", err.Error())
		if serr := p.sleep(ctx, delay); serr != nil {
			return err
		}
	}
}
