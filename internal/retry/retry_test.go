package retry_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
)

// recordedSleeps swaps the policy's sleeper for an instant recorder.
func recordedSleeps(p *retry.Policy) *[]time.Duration {
	var sleeps []time.Duration
	p.Sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return nil
	}
	return &sleeps
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	p := &retry.Policy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond}
	sleeps := recordedSleeps(p)
	calls := 0
	err := p.Do(context.Background(), "op", func() error {
		calls++
		if calls < 3 {
			return retry.Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(*sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", *sleeps, want)
	}
	for i, d := range want {
		if (*sleeps)[i] != d {
			t.Errorf("sleep %d = %v, want %v (deterministic backoff)", i, (*sleeps)[i], d)
		}
	}
}

func TestDoStopsOnFatal(t *testing.T) {
	p := &retry.Policy{}
	recordedSleeps(p)
	calls := 0
	fatal := errors.New("definitive rejection")
	err := p.Do(context.Background(), "op", func() error {
		calls++
		return fatal
	})
	if !errors.Is(err, fatal) {
		t.Fatalf("Do = %v, want the fatal error", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no retry on fatal)", calls)
	}
}

func TestDoBoundedAttempts(t *testing.T) {
	reg := obs.NewRegistry()
	p := &retry.Policy{MaxAttempts: 3, Metrics: reg}
	recordedSleeps(p)
	calls := 0
	base := errors.New("still down")
	err := p.Do(context.Background(), "op", func() error {
		calls++
		return retry.Transient(base)
	})
	if !errors.Is(err, base) {
		t.Fatalf("Do = %v, want last error", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want MaxAttempts=3", calls)
	}
	if got := reg.CounterVec("daas_retry_attempts_total", "", "op").With("op").Value(); got != 3 {
		t.Errorf("attempts counter = %d, want 3", got)
	}
	if got := reg.CounterVec("daas_retry_giveups_total", "", "op").With("op").Value(); got != 1 {
		t.Errorf("giveups counter = %d, want 1", got)
	}
}

func TestDelayCapsAtMaxDelay(t *testing.T) {
	p := &retry.Policy{BaseDelay: time.Second, MaxDelay: 3 * time.Second}
	if d := p.Delay(1); d != time.Second {
		t.Errorf("Delay(1) = %v", d)
	}
	if d := p.Delay(2); d != 2*time.Second {
		t.Errorf("Delay(2) = %v", d)
	}
	if d := p.Delay(3); d != 3*time.Second {
		t.Errorf("Delay(3) = %v, want capped 3s", d)
	}
	if d := p.Delay(20); d != 3*time.Second {
		t.Errorf("Delay(20) = %v, want capped 3s", d)
	}
}

func TestNilPolicyRunsOnce(t *testing.T) {
	var p *retry.Policy
	calls := 0
	err := p.Do(context.Background(), "op", func() error {
		calls++
		return retry.Transient(errors.New("flaky"))
	})
	if err == nil || calls != 1 {
		t.Errorf("nil policy: calls = %d, err = %v; want 1 call, error through", calls, err)
	}
}

func TestBudgetBoundsRetriesAcrossOps(t *testing.T) {
	budget := &retry.Budget{Max: 2}
	p := &retry.Policy{MaxAttempts: 10, Budget: budget}
	recordedSleeps(p)
	totalCalls := 0
	for i := 0; i < 3; i++ {
		_ = p.Do(context.Background(), "op", func() error {
			totalCalls++
			return retry.Transient(errors.New("down"))
		})
	}
	// 3 first tries plus the 2 budgeted retries.
	if totalCalls != 5 {
		t.Errorf("total calls = %d, want 5 (budget caps retries at 2)", totalCalls)
	}
	if budget.Used() != 2 {
		t.Errorf("budget used = %d, want 2", budget.Used())
	}
}

func TestDoRespectsContextCancellation(t *testing.T) {
	p := &retry.Policy{MaxAttempts: 100}
	recordedSleeps(p)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	base := errors.New("down")
	err := p.Do(ctx, "op", func() error {
		calls++
		if calls == 2 {
			cancel()
		}
		return retry.Transient(base)
	})
	if !errors.Is(err, base) {
		t.Fatalf("Do = %v", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (cancel stops the retry loop)", calls)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want retry.Class
	}{
		{"http 503", &retry.HTTPError{Status: 503}, retry.ClassTransient},
		{"http 429", &retry.HTTPError{Status: 429}, retry.ClassTransient},
		{"http 404", &retry.HTTPError{Status: 404}, retry.ClassFatal},
		{"wrapped http 500", fmt.Errorf("rpc: call: %w", &retry.HTTPError{Status: 500}), retry.ClassTransient},
		{"conn reset", fmt.Errorf("read: %w", syscall.ECONNRESET), retry.ClassTransient},
		{"conn refused", syscall.ECONNREFUSED, retry.ClassTransient},
		{"truncated body", io.ErrUnexpectedEOF, retry.ClassTransient},
		{"net timeout", &net.DNSError{IsTimeout: true}, retry.ClassTransient},
		{"context canceled", context.Canceled, retry.ClassFatal},
		{"plain error", errors.New("no such method"), retry.ClassFatal},
		{"marked transient", retry.Transient(errors.New("anything")), retry.ClassTransient},
		{"marked fatal", retry.Fatal(&retry.HTTPError{Status: 503}), retry.ClassFatal},
	}
	for _, tc := range cases {
		if got := retry.Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	now := time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC)
	reg := obs.NewRegistry()
	b := &retry.Breaker{
		Threshold: 2,
		Cooldown:  10 * time.Second,
		Now:       func() time.Time { return now },
		Metrics:   reg,
		Scope:     "test",
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	b.Record(true)
	b.Record(true) // threshold reached → open
	if got := b.State(); got != retry.StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("open breaker admitted a call (err = %v)", err)
	}
	// Cooldown elapses → half-open, exactly one probe admitted.
	now = now.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("half-open breaker admitted a second probe (err = %v)", err)
	}
	// Probe fails → open again for a full cooldown.
	b.Record(true)
	if got := b.State(); got != retry.StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	now = now.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	// Probe succeeds → closed.
	b.Record(false)
	if got := b.State(); got != retry.StateClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	if got := reg.GaugeVec("daas_breaker_state", "", "scope").With("test").Value(); got != int64(retry.StateClosed) {
		t.Errorf("daas_breaker_state = %d, want %d", got, retry.StateClosed)
	}
}

func TestPolicyFailsFastWhileBreakerOpen(t *testing.T) {
	now := time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC)
	b := &retry.Breaker{Threshold: 1, Cooldown: time.Hour, Now: func() time.Time { return now }}
	p := &retry.Policy{MaxAttempts: 10, Breaker: b}
	recordedSleeps(p)
	calls := 0
	_ = p.Do(context.Background(), "op", func() error {
		calls++
		return retry.Transient(errors.New("down"))
	})
	// First transient failure trips the Threshold=1 breaker; the retry
	// loop's next Allow refuses, so only one call lands.
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (breaker opened mid-retry)", calls)
	}
	err := p.Do(context.Background(), "op", func() error {
		calls++
		return nil
	})
	if !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("Do under open breaker = %v, want ErrOpen", err)
	}
	if calls != 1 {
		t.Errorf("open breaker still admitted a call")
	}
}

func TestLateMetricsAssignmentIsNotLatched(t *testing.T) {
	p := &retry.Policy{MaxAttempts: 2}
	recordedSleeps(p)
	// First use without metrics must not latch no-op instruments.
	_ = p.Do(context.Background(), "op", func() error { return nil })
	reg := obs.NewRegistry()
	p.Metrics = reg
	_ = p.Do(context.Background(), "op", func() error { return nil })
	if got := reg.CounterVec("daas_retry_attempts_total", "", "op").With("op").Value(); got != 1 {
		t.Errorf("attempts after late assignment = %d, want 1", got)
	}
}
