package sitehunt_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/ct"
	"repro/internal/sitehunt"
	"repro/internal/toolkit"
	"repro/internal/website"
)

// rig spins up the full §8.2 environment: a site fleet, its hosting
// server, a CT log fed with the HTTPS sites' certificates, and a
// detector.
type rig struct {
	fleet    []*website.Site
	hostSrv  *httptest.Server
	ctSrv    *httptest.Server
	detector *sitehunt.Detector
}

func newRig(t *testing.T, cfg website.FleetConfig) *rig {
	t.Helper()
	fleet := website.GenerateFleet(cfg)
	host := website.NewHost(fleet)
	hostSrv := httptest.NewServer(host)
	t.Cleanup(hostSrv.Close)

	log, err := ct.NewLog()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fleet {
		if !s.HTTPS {
			continue // no certificate, never appears in CT
		}
		if _, err := log.Issue([]string{s.Domain}, s.Issued); err != nil {
			t.Fatal(err)
		}
	}
	ctSrv := httptest.NewServer(log.Handler())
	t.Cleanup(ctSrv.Close)

	return &rig{
		fleet:   fleet,
		hostSrv: hostSrv,
		ctSrv:   ctSrv,
		detector: &sitehunt.Detector{
			CT:      ct.NewClient(ctSrv.URL),
			Crawler: crawler.New(hostSrv.URL),
			Corpus:  toolkit.BuildCorpus(9, 87),
		},
	}
}

func defaultCfg() website.FleetConfig {
	return website.FleetConfig{
		Seed:     1910,
		Phishing: 60,
		Benign:   40,
		Bait:     15,
		Start:    time.Date(2023, 12, 1, 0, 0, 0, 0, time.UTC),
	}
}

func TestDetectorEndToEnd(t *testing.T) {
	r := newRig(t, defaultCfg())
	report, err := r.detector.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: HTTPS phishing sites whose domain passes the filter
	// are detectable; everything else must not be flagged.
	truth := make(map[string]*website.Site)
	var detectable int
	for _, s := range r.fleet {
		truth[s.Domain] = s
		if s.Phishing && s.HTTPS {
			detectable++
		}
	}
	if report.Detected() == 0 {
		t.Fatal("no detections")
	}
	for _, det := range report.Detections {
		site := truth[det.Domain]
		if site == nil {
			t.Fatalf("detected unknown domain %s", det.Domain)
		}
		if !site.Phishing {
			t.Errorf("false positive: benign site %s flagged as %s", det.Domain, det.Family)
		}
		if det.Family != site.Family {
			t.Errorf("family misattribution for %s: got %s, want %s", det.Domain, det.Family, site.Family)
		}
	}
	// Recall: nearly all detectable sites found (a small number of
	// typo-domains legitimately fall below the similarity threshold).
	if report.Detected() < detectable*90/100 {
		t.Errorf("detected %d of %d detectable phishing sites", report.Detected(), detectable)
	}
	// Bait sites were crawled but not flagged: the crawl count must
	// exceed detections.
	if report.Crawled <= report.Detected() {
		t.Errorf("crawled %d ≤ detected %d; bait sites skipped the crawl stage?", report.Crawled, report.Detected())
	}
	// HTTP-only phishing sites are invisible to the CT stage.
	if report.Detected() >= len(filterPhishing(r.fleet)) {
		t.Errorf("detector claims more than CT can see")
	}
}

func TestDetectorTLDDistribution(t *testing.T) {
	cfg := defaultCfg()
	cfg.Phishing = 400
	cfg.Benign = 30
	cfg.Bait = 10
	r := newRig(t, cfg)
	report, err := r.detector.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.TLDs) == 0 {
		t.Fatal("no TLD distribution")
	}
	if report.TLDs[0].TLD != "com" {
		t.Errorf("top TLD = %s, want com (Table 4)", report.TLDs[0].TLD)
	}
	if report.TLDs[0].Fraction < 0.2 || report.TLDs[0].Fraction > 0.4 {
		t.Errorf(".com share %.3f, want ≈ 0.30", report.TLDs[0].Fraction)
	}
}

func TestDetectorIncrementalPolling(t *testing.T) {
	r := newRig(t, defaultCfg())
	first, err := r.detector.Run()
	if err != nil {
		t.Fatal(err)
	}
	// A second run with the same client sees no new certificates.
	second, err := r.detector.Run()
	if err != nil {
		t.Fatal(err)
	}
	if second.CertsSeen != 0 || second.Detected() != 0 {
		t.Errorf("re-run saw %d certs, %d detections; cursor not advancing", second.CertsSeen, second.Detected())
	}
	if first.CertsSeen == 0 {
		t.Error("first run saw no certs")
	}
}

func TestDetectorConfigValidation(t *testing.T) {
	d := &sitehunt.Detector{}
	if _, err := d.Run(); err == nil {
		t.Error("empty detector ran")
	}
}

func filterPhishing(fleet []*website.Site) []*website.Site {
	var out []*website.Site
	for _, s := range fleet {
		if s.Phishing {
			out = append(out, s)
		}
	}
	return out
}

func TestDetectorWatchStreamsIncrementally(t *testing.T) {
	cfg := defaultCfg()
	cfg.Phishing = 10
	cfg.Benign = 5
	fleet := website.GenerateFleet(cfg)
	host := website.NewHost(fleet)
	hostSrv := httptest.NewServer(host)
	t.Cleanup(hostSrv.Close)

	log, err := ct.NewLog()
	if err != nil {
		t.Fatal(err)
	}
	// Start with only the first half of the fleet certified.
	half := len(fleet) / 2
	issue := func(sites []*website.Site) {
		for _, s := range sites {
			if s.HTTPS {
				if _, err := log.Issue([]string{s.Domain}, s.Issued); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	issue(fleet[:half])
	ctSrv := httptest.NewServer(log.Handler())
	t.Cleanup(ctSrv.Close)

	det := &sitehunt.Detector{
		CT:      ct.NewClient(ctSrv.URL),
		Crawler: crawler.New(hostSrv.URL),
		Corpus:  toolkit.BuildCorpus(9, 60),
	}
	var mu sync.Mutex
	var batches []*sitehunt.Report
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- det.Watch(ctx, 20*time.Millisecond, func(r *sitehunt.Report) {
			mu.Lock()
			defer mu.Unlock()
			batches = append(batches, r)
			if len(batches) == 2 {
				cancel()
			}
		})
	}()
	// After the first batch lands, certify the remaining sites.
	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		n := len(batches)
		mu.Unlock()
		if n >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("first watch batch never arrived")
		case <-time.After(10 * time.Millisecond):
		}
	}
	issue(fleet[half:])
	if err := <-done; err != context.Canceled {
		t.Fatalf("watch returned %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) < 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	total := batches[0].Detected() + batches[1].Detected()
	if total == 0 {
		t.Error("watch detected nothing")
	}
}
