// Package sitehunt composes the toolkit-based phishing-website
// detection pipeline of the paper's §8.2: poll Certificate
// Transparency for newly issued certificates, extract suspicious
// domains by keyword and Levenshtein similarity, crawl the live
// candidates, and match their files against the drainer-toolkit
// fingerprint corpus.
package sitehunt

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/crawler"
	"repro/internal/ct"
	"repro/internal/domains"
	"repro/internal/obs"
	"repro/internal/toolkit"
)

// Detection is one confirmed phishing website.
type Detection struct {
	Domain  string
	Family  string
	Match   toolkit.Match
	Keyword string
}

// Report summarizes one detector run.
type Report struct {
	CertsSeen       int
	BadCerts        int
	DomainsSeen     int
	SuspiciousCount int
	Crawled         int
	CrawlFailures   int
	Detections      []Detection
	// TLDs is the Table 4 distribution over detected phishing domains.
	TLDs []domains.TLDShare
}

// Detected returns the number of confirmed phishing sites.
func (r *Report) Detected() int { return len(r.Detections) }

// PhishingDomains returns the confirmed phishing domains, sorted and
// deduplicated — the feed a screening snapshot compiles in
// (screen.Compile) so wallets can refuse signatures requested by
// detected drainer deployments.
func (r *Report) PhishingDomains() []string {
	seen := make(map[string]bool, len(r.Detections))
	out := make([]string, 0, len(r.Detections))
	for _, d := range r.Detections {
		if !seen[d.Domain] {
			seen[d.Domain] = true
			out = append(out, d.Domain)
		}
	}
	sort.Strings(out)
	return out
}

// Detector wires the pipeline stages together.
type Detector struct {
	CT      *ct.Client
	Crawler *crawler.Crawler
	Corpus  *toolkit.Corpus
	// SimilarityThreshold defaults to domains.SimilarityThreshold.
	SimilarityThreshold float64
	// Logger receives structured progress events. When nil, the legacy
	// Trace callback (if any) is adapted, so existing Trace users keep
	// working unchanged.
	Logger *obs.Logger
	// Metrics, when set, receives the §8.2 funnel counters
	// (daas_funnel_* metric names): every stage from CT certificate
	// ingestion down to confirmed toolkit matches.
	Metrics *obs.Registry
	// Trace, when set, receives progress lines. Deprecated shim: new
	// code should set Logger.
	Trace func(format string, args ...any)

	traceOnce sync.Once
	traceLog  *obs.Logger
}

// funnelMetrics caches the detector's instruments; all nil (no-op)
// when Metrics is unset.
type funnelMetrics struct {
	certs      *obs.Counter
	badCerts   *obs.Counter
	domains    *obs.Counter
	suspicious *obs.Counter
	crawled    *obs.Counter
	crawlFails *obs.Counter
	matches    *obs.CounterVec
	detections *obs.Counter
}

func newFunnelMetrics(r *obs.Registry) funnelMetrics {
	return funnelMetrics{
		certs:      r.Counter("daas_funnel_ct_certs_total", "certificates ingested from CT (§8.2 step 1)"),
		badCerts:   r.Counter("daas_funnel_bad_certs_total", "CT entries skipped because their certificate would not parse"),
		domains:    r.Counter("daas_funnel_domains_total", "unique domains extracted from certificates"),
		suspicious: r.Counter("daas_funnel_suspicious_total", "domains passing the keyword/similarity filter"),
		crawled:    r.Counter("daas_funnel_crawled_total", "suspicious domains successfully crawled (§8.2 step 2)"),
		crawlFails: r.Counter("daas_funnel_crawl_failures_total", "suspicious domains that failed to crawl"),
		matches:    r.CounterVec("daas_funnel_toolkit_matches_total", "toolkit fingerprint matches per drainer family (§8.2 step 3)", "family"),
		detections: r.Counter("daas_funnel_detections_total", "confirmed phishing websites"),
	}
}

// logger returns the structured logger, adapting the legacy Trace
// callback when no Logger is set.
func (d *Detector) logger() *obs.Logger {
	if d.Logger != nil {
		return d.Logger
	}
	if d.Trace == nil {
		return nil
	}
	d.traceOnce.Do(func() { d.traceLog = obs.NewCallback(d.Trace) })
	return d.traceLog
}

// Run drains the CT log and processes every new certificate, returning
// the cumulative report for this invocation.
func (d *Detector) Run() (*Report, error) {
	if d.CT == nil || d.Crawler == nil || d.Corpus == nil {
		return nil, fmt.Errorf("sitehunt: Detector needs CT, Crawler, and Corpus")
	}
	fm := newFunnelMetrics(d.Metrics)
	threshold := d.SimilarityThreshold
	if threshold == 0 {
		threshold = domains.SimilarityThreshold
	}
	report := &Report{}
	var phishingDomains []string
	seen := make(map[string]bool)

	for {
		entries, err := d.CT.Poll()
		if err != nil {
			return nil, fmt.Errorf("sitehunt: polling CT: %w", err)
		}
		if len(entries) == 0 {
			break
		}
		report.CertsSeen += len(entries)
		fm.certs.Add(uint64(len(entries)))
		for _, e := range entries {
			names, err := e.Domains()
			if err != nil {
				// One unparseable certificate must not kill a run that
				// monitors a live log; skip it and keep the count.
				report.BadCerts++
				fm.badCerts.Inc()
				d.logger().Debug("skipping unparseable certificate", "index", e.Index, "err", err.Error())
				continue
			}
			for _, domain := range names {
				if seen[domain] {
					continue
				}
				seen[domain] = true
				report.DomainsSeen++
				fm.domains.Inc()
				match, suspicious := domains.Suspicious(domain, threshold)
				if !suspicious {
					continue
				}
				report.SuspiciousCount++
				fm.suspicious.Inc()
				page, err := d.Crawler.Fetch(domain)
				if err != nil {
					report.CrawlFailures++
					fm.crawlFails.Inc()
					continue
				}
				report.Crawled++
				fm.crawled.Inc()
				verdict, hit := d.Corpus.MatchSite(page.Files)
				if !hit {
					continue
				}
				fm.matches.With(verdict.Family).Inc()
				fm.detections.Inc()
				report.Detections = append(report.Detections, Detection{
					Domain:  domain,
					Family:  verdict.Family,
					Match:   verdict,
					Keyword: match.Keyword,
				})
				phishingDomains = append(phishingDomains, domain)
				d.logger().Info("phishing website detected",
					"domain", domain, "family", verdict.Family, "keyword", match.Keyword)
			}
		}
	}
	report.TLDs = domains.TLDDistribution(phishingDomains)
	return report, nil
}

// Watch runs the detector continuously: every interval it polls the CT
// log for newly issued certificates and processes them, passing each
// non-empty incremental report to sink. It returns when ctx is
// cancelled (with ctx.Err()) or on the first pipeline error — live
// phishing monitoring, the deployment mode of §8.2 ("between December
// 2023 and April 2025 we detected and reported 32,819 websites").
func (d *Detector) Watch(ctx context.Context, interval time.Duration, sink func(*Report)) error {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		rep, err := d.Run()
		if err != nil {
			return err
		}
		if rep.CertsSeen > 0 && sink != nil {
			sink(rep)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
