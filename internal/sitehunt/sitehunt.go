// Package sitehunt composes the toolkit-based phishing-website
// detection pipeline of the paper's §8.2: poll Certificate
// Transparency for newly issued certificates, extract suspicious
// domains by keyword and Levenshtein similarity, crawl the live
// candidates, and match their files against the drainer-toolkit
// fingerprint corpus.
package sitehunt

import (
	"context"
	"fmt"
	"time"

	"repro/internal/crawler"
	"repro/internal/ct"
	"repro/internal/domains"
	"repro/internal/toolkit"
)

// Detection is one confirmed phishing website.
type Detection struct {
	Domain  string
	Family  string
	Match   toolkit.Match
	Keyword string
}

// Report summarizes one detector run.
type Report struct {
	CertsSeen       int
	DomainsSeen     int
	SuspiciousCount int
	Crawled         int
	CrawlFailures   int
	Detections      []Detection
	// TLDs is the Table 4 distribution over detected phishing domains.
	TLDs []domains.TLDShare
}

// Detected returns the number of confirmed phishing sites.
func (r *Report) Detected() int { return len(r.Detections) }

// Detector wires the pipeline stages together.
type Detector struct {
	CT      *ct.Client
	Crawler *crawler.Crawler
	Corpus  *toolkit.Corpus
	// SimilarityThreshold defaults to domains.SimilarityThreshold.
	SimilarityThreshold float64
	// Trace, when set, receives progress lines.
	Trace func(format string, args ...any)
}

// Run drains the CT log and processes every new certificate, returning
// the cumulative report for this invocation.
func (d *Detector) Run() (*Report, error) {
	if d.CT == nil || d.Crawler == nil || d.Corpus == nil {
		return nil, fmt.Errorf("sitehunt: Detector needs CT, Crawler, and Corpus")
	}
	threshold := d.SimilarityThreshold
	if threshold == 0 {
		threshold = domains.SimilarityThreshold
	}
	report := &Report{}
	var phishingDomains []string
	seen := make(map[string]bool)

	for {
		entries, err := d.CT.Poll()
		if err != nil {
			return nil, fmt.Errorf("sitehunt: polling CT: %w", err)
		}
		if len(entries) == 0 {
			break
		}
		report.CertsSeen += len(entries)
		for _, e := range entries {
			names, err := e.Domains()
			if err != nil {
				return nil, err
			}
			for _, domain := range names {
				if seen[domain] {
					continue
				}
				seen[domain] = true
				report.DomainsSeen++
				match, suspicious := domains.Suspicious(domain, threshold)
				if !suspicious {
					continue
				}
				report.SuspiciousCount++
				page, err := d.Crawler.Fetch(domain)
				if err != nil {
					report.CrawlFailures++
					continue
				}
				report.Crawled++
				verdict, hit := d.Corpus.MatchSite(page.Files)
				if !hit {
					continue
				}
				report.Detections = append(report.Detections, Detection{
					Domain:  domain,
					Family:  verdict.Family,
					Match:   verdict,
					Keyword: match.Keyword,
				})
				phishingDomains = append(phishingDomains, domain)
				d.tracef("detected %s (%s via %s)", domain, verdict.Family, match.Keyword)
			}
		}
	}
	report.TLDs = domains.TLDDistribution(phishingDomains)
	return report, nil
}

func (d *Detector) tracef(format string, args ...any) {
	if d.Trace != nil {
		d.Trace(format, args...)
	}
}

// Watch runs the detector continuously: every interval it polls the CT
// log for newly issued certificates and processes them, passing each
// non-empty incremental report to sink. It returns when ctx is
// cancelled (with ctx.Err()) or on the first pipeline error — live
// phishing monitoring, the deployment mode of §8.2 ("between December
// 2023 and April 2025 we detected and reported 32,819 websites").
func (d *Detector) Watch(ctx context.Context, interval time.Duration, sink func(*Report)) error {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		rep, err := d.Run()
		if err != nil {
			return err
		}
		if rep.CertsSeen > 0 && sink != nil {
			sink(rep)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
