package tokens

import (
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
)

var (
	admin    = ethtypes.Addr("0xad0000000000000000000000000000000000000d")
	victim   = ethtypes.Addr("0x1c00000000000000000000000000000000000001")
	operator = ethtypes.Addr("0x0e00000000000000000000000000000000000002")
	drainer  = ethtypes.Addr("0xd000000000000000000000000000000000000003")
	usdcAddr = ethtypes.Addr("0xa0b86991c6218b36c1d19d4a2e9eb0ce3606eb48")
	nftAddr  = ethtypes.Addr("0xbc4ca0eda7647a8ab7c2061c2e118a18a936f13d")
	mktAddr  = ethtypes.Addr("0x000000000000ad05ccc4f10045630fb830b95127")
)

func ts() time.Time { return time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC) }

func to(a ethtypes.Address) *ethtypes.Address { return &a }

func newWorld(t *testing.T) *chain.Chain {
	if t != nil {
		t.Helper()
	}
	c := chain.New(ts())
	c.RegisterNative(usdcAddr, NewERC20(usdcAddr, "USDC", admin))
	c.RegisterNative(nftAddr, NewERC721(nftAddr, "BAYC", admin))
	c.RegisterNative(mktAddr, NewMarketplace(mktAddr, 50))
	c.Fund(mktAddr, ethtypes.Ether(1000))
	c.Fund(victim, ethtypes.Ether(10))
	c.Fund(admin, ethtypes.Ether(10))
	c.Fund(drainer, ethtypes.Ether(10))
	return c
}

func call(t *testing.T, c *chain.Chain, from, target ethtypes.Address, sig string, types []ethabi.Type, args []any) *chain.Receipt {
	t.Helper()
	data, err := ethabi.EncodeCall(sig, types, args)
	if err != nil {
		t.Fatal(err)
	}
	_, rs := c.Mine(ts(), &chain.Transaction{From: from, To: to(target), Data: data})
	return rs[0]
}

func mustSucceed(t *testing.T, r *chain.Receipt) *chain.Receipt {
	t.Helper()
	if !r.Status {
		t.Fatalf("tx failed: %s", r.Err)
	}
	return r
}

func TestERC20MintTransferBalances(t *testing.T) {
	c := newWorld(t)
	mustSucceed(t, call(t, c, admin, usdcAddr, "mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{victim, big.NewInt(1000)}))

	r := mustSucceed(t, call(t, c, victim, usdcAddr, "transfer(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{operator, big.NewInt(400)}))

	if len(r.Transfers) != 1 {
		t.Fatalf("transfers = %d, want 1", len(r.Transfers))
	}
	tr := r.Transfers[0]
	if tr.Asset.Kind != chain.AssetERC20 || tr.Asset.Token != usdcAddr {
		t.Errorf("asset = %+v", tr.Asset)
	}
	if tr.From != victim || tr.To != operator || tr.Amount.Uint64() != 400 {
		t.Errorf("edge = %+v", tr)
	}
	if len(r.Logs) != 1 || r.Logs[0].Topics[0] != TopicTransfer {
		t.Error("missing Transfer event log")
	}

	// Overdraft fails and rolls back.
	r = call(t, c, victim, usdcAddr, "transfer(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{operator, big.NewInt(10_000)})
	if r.Status {
		t.Error("overdraft transfer succeeded")
	}
}

func TestERC20ApproveTransferFrom(t *testing.T) {
	c := newWorld(t)
	mustSucceed(t, call(t, c, admin, usdcAddr, "mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{victim, big.NewInt(1000)}))

	// The phishing approval: victim grants the drainer EOA.
	r := mustSucceed(t, call(t, c, victim, usdcAddr, "approve(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{drainer, big.NewInt(600)}))
	if len(r.Approvals) != 1 || r.Approvals[0].Spender != drainer || r.Approvals[0].Owner != victim {
		t.Fatalf("approvals = %+v", r.Approvals)
	}

	// Drainer pulls within allowance.
	r = mustSucceed(t, call(t, c, drainer, usdcAddr, "transferFrom(address,address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{victim, operator, big.NewInt(500)}))
	if r.Transfers[0].From != victim || r.Transfers[0].To != operator {
		t.Errorf("pull edge = %+v", r.Transfers[0])
	}

	// Exceeding the remaining allowance fails.
	r = call(t, c, drainer, usdcAddr, "transferFrom(address,address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{victim, operator, big.NewInt(500)})
	if r.Status {
		t.Error("transferFrom beyond allowance succeeded")
	}
}

func TestERC20MintRestricted(t *testing.T) {
	c := newWorld(t)
	r := call(t, c, drainer, usdcAddr, "mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{drainer, big.NewInt(1)})
	if r.Status {
		t.Error("non-admin mint succeeded")
	}
}

func TestERC721MintTransferApproval(t *testing.T) {
	c := newWorld(t)
	mustSucceed(t, call(t, c, admin, nftAddr, "mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{victim, big.NewInt(42)}))

	// Double mint of the same id fails.
	if r := call(t, c, admin, nftAddr, "mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{operator, big.NewInt(42)}); r.Status {
		t.Error("double mint succeeded")
	}

	// Unauthorized transferFrom fails.
	if r := call(t, c, drainer, nftAddr, "transferFrom(address,address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{victim, drainer, big.NewInt(42)}); r.Status {
		t.Error("unauthorized NFT pull succeeded")
	}

	// Victim signs the phishing approval, then the drainer pulls.
	r := mustSucceed(t, call(t, c, victim, nftAddr, "approve(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{drainer, big.NewInt(42)}))
	if len(r.Approvals) != 1 || r.Approvals[0].Kind != chain.AssetERC721 {
		t.Fatalf("approvals = %+v", r.Approvals)
	}
	r = mustSucceed(t, call(t, c, drainer, nftAddr, "transferFrom(address,address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{victim, drainer, big.NewInt(42)}))
	tr := r.Transfers[0]
	if tr.Asset.Kind != chain.AssetERC721 || tr.Asset.TokenID != 42 || tr.To != drainer {
		t.Errorf("NFT edge = %+v", tr)
	}

	// Per-token approval was cleared by the transfer: victim cannot be
	// re-drained via the stale approval after reacquiring.
	if r := call(t, c, victim, nftAddr, "transferFrom(address,address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{drainer, victim, big.NewInt(42)}); r.Status {
		t.Error("non-owner moved token back")
	}
}

func TestERC721SetApprovalForAll(t *testing.T) {
	c := newWorld(t)
	for id := int64(1); id <= 3; id++ {
		mustSucceed(t, call(t, c, admin, nftAddr, "mint(address,uint256)",
			[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{victim, big.NewInt(id)}))
	}
	r := mustSucceed(t, call(t, c, victim, nftAddr, "setApprovalForAll(address,bool)",
		[]ethabi.Type{ethabi.AddressT, ethabi.BoolT}, []any{drainer, true}))
	if len(r.Approvals) != 1 || !r.Approvals[0].All {
		t.Fatalf("approvals = %+v", r.Approvals)
	}
	// Drainer can now sweep the whole collection.
	for id := int64(1); id <= 3; id++ {
		mustSucceed(t, call(t, c, drainer, nftAddr, "transferFrom(address,address,uint256)",
			[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
			[]any{victim, drainer, big.NewInt(id)}))
	}
}

func TestMarketplaceSale(t *testing.T) {
	c := newWorld(t)
	mustSucceed(t, call(t, c, admin, nftAddr, "mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{drainer, big.NewInt(7)}))
	mustSucceed(t, call(t, c, drainer, nftAddr, "approve(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{mktAddr, big.NewInt(7)}))

	before := c.BalanceOf(drainer)
	price := ethtypes.Ether(4)
	r := mustSucceed(t, call(t, c, drainer, mktAddr, "sell(address,uint256,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T, ethabi.Uint256T},
		[]any{nftAddr, big.NewInt(7), price.Big()}))

	// Fund flow: NFT to marketplace, ETH payout to seller.
	var sawNFT, sawETH bool
	for _, tr := range r.Transfers {
		if tr.Asset.Kind == chain.AssetERC721 && tr.To == mktAddr {
			sawNFT = true
		}
		if tr.Asset.Kind == chain.AssetETH && tr.To == drainer {
			sawETH = true
		}
	}
	if !sawNFT || !sawETH {
		t.Errorf("fund flow incomplete: %+v", r.Transfers)
	}
	payout := price.MulDiv(9950, 10_000)
	if got := c.BalanceOf(drainer).Sub(before); got.Cmp(payout) != 0 {
		t.Errorf("payout = %s, want %s", got, payout)
	}
}

func TestMarketplaceWithoutApprovalFails(t *testing.T) {
	c := newWorld(t)
	mustSucceed(t, call(t, c, admin, nftAddr, "mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{drainer, big.NewInt(9)}))
	r := call(t, c, drainer, mktAddr, "sell(address,uint256,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T, ethabi.Uint256T},
		[]any{nftAddr, big.NewInt(9), ethtypes.Ether(1).Big()})
	if r.Status {
		t.Error("sale without approval succeeded")
	}
	// The NFT must still be with the seller (rollback).
	r = mustSucceed(t, call(t, c, drainer, nftAddr, "approve(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{mktAddr, big.NewInt(9)}))
}

func TestUnknownSelectorRejected(t *testing.T) {
	c := newWorld(t)
	_, rs := c.Mine(ts(), &chain.Transaction{From: victim, To: to(usdcAddr), Data: []byte{1, 2, 3, 4}})
	if rs[0].Status {
		t.Error("unknown selector accepted")
	}
	_, rs = c.Mine(ts(), &chain.Transaction{From: victim, To: to(usdcAddr), Value: ethtypes.Ether(1)})
	if rs[0].Status {
		t.Error("plain ETH send to token accepted")
	}
}

// Property: ERC-20 total balance is conserved by any transfer sequence
// among three parties.
func TestQuickERC20Conservation(t *testing.T) {
	f := func(moves []uint16) bool {
		c := newWorld(nil2())
		parties := []ethtypes.Address{victim, operator, drainer}
		data, _ := ethabi.EncodeCall("mint(address,uint256)",
			[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{victim, big.NewInt(10_000)})
		c.Mine(ts(), &chain.Transaction{From: admin, To: to(usdcAddr), Data: data})
		for _, mv := range moves {
			from := parties[int(mv)%3]
			dst := parties[int(mv>>2)%3]
			amt := big.NewInt(int64(mv % 997))
			data, _ := ethabi.EncodeCall("transfer(address,uint256)",
				[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{dst, amt})
			c.Mine(ts(), &chain.Transaction{From: from, To: to(usdcAddr), Data: data})
		}
		// Sum balances via storage probes: replay transfers of full
		// balance to a sink and count — instead, use the chain's receipt
		// history: every successful transfer conserved balance by
		// construction of move(); here we assert the sink invariant by
		// draining everything to one party and checking the total.
		total := big.NewInt(0)
		for _, p := range parties {
			total.Add(total, erc20BalanceOf(c, p))
		}
		return total.Int64() == 10_000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// nil2 lets newWorld be reused from a property function without a *testing.T.
func nil2() *testing.T { return nil }

// erc20BalanceOf reads an ERC-20 balance through the public call
// interface using a probe EVM execution.
func erc20BalanceOf(c *chain.Chain, owner ethtypes.Address) *big.Int {
	data, _ := ethabi.EncodeCall("balanceOf(address)", []ethabi.Type{ethabi.AddressT}, []any{owner})
	ret, err := c.StaticCall(usdcAddr, data)
	if err != nil {
		return big.NewInt(-1)
	}
	return new(big.Int).SetBytes(ret)
}

// TestERC20PermitPhishing exercises the paper's §7.2 "ERC20 permit
// phishing" scheme: the victim signs an off-chain permit, so the
// drainer's multicall obtains the allowance and drains in one
// transaction — the victim never sends an on-chain approval.
func TestERC20PermitPhishing(t *testing.T) {
	c := newWorld(t)
	mustSucceed(t, call(t, c, admin, usdcAddr, "mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{victim, big.NewInt(900)}))

	// The drainer presents the harvested permit and pulls in the same
	// breath. The victim's account history gains no approval tx of its
	// own.
	r := mustSucceed(t, call(t, c, drainer, usdcAddr, "permit(address,address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{victim, drainer, big.NewInt(900)}))
	if len(r.Approvals) != 1 || r.Approvals[0].Owner != victim || r.Approvals[0].Spender != drainer {
		t.Fatalf("permit approvals = %+v", r.Approvals)
	}
	// The approval's transaction was signed by the drainer, not the
	// victim — the defining trait of permit phishing.
	tx, err := c.Transaction(r.TxHash)
	if err != nil {
		t.Fatal(err)
	}
	if tx.From != drainer {
		t.Errorf("permit tx sender = %s, want drainer", tx.From.Short())
	}

	r = mustSucceed(t, call(t, c, drainer, usdcAddr, "transferFrom(address,address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{victim, operator, big.NewInt(900)}))
	if r.Transfers[0].From != victim || r.Transfers[0].Amount.Uint64() != 900 {
		t.Errorf("permit drain edge = %+v", r.Transfers[0])
	}
}
