// Package tokens provides the native (Go-implemented) contracts of the
// simulated chain: ERC-20 fungible tokens, ERC-721 NFTs, and an NFT
// marketplace. They dispatch on standard 4-byte selectors, keep all
// state in chain storage (so transaction rollback works), emit standard
// event logs, and record fund-flow entries the classifier consumes —
// covering the three profit-sharing scenarios of the paper's Fig. 3.
package tokens

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/chain"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/keccak"
)

// Token-contract errors.
var (
	ErrUnknownSelector = errors.New("tokens: unknown function selector")
	ErrBalance         = errors.New("tokens: insufficient balance")
	ErrAllowance       = errors.New("tokens: insufficient allowance")
	ErrNotOwner        = errors.New("tokens: caller does not own token")
	ErrNotAuthorized   = errors.New("tokens: caller not authorized")
	ErrBadCalldata     = errors.New("tokens: malformed calldata")
)

// Standard event topics.
var (
	TopicTransfer       = ethabi.EventTopic("Transfer(address,address,uint256)")
	TopicApproval       = ethabi.EventTopic("Approval(address,address,uint256)")
	TopicApprovalForAll = ethabi.EventTopic("ApprovalForAll(address,address,bool)")
)

// ERC-20 selectors.
var (
	SelTransfer     = ethabi.Selector("transfer(address,uint256)")
	SelTransferFrom = ethabi.Selector("transferFrom(address,address,uint256)")
	SelApprove      = ethabi.Selector("approve(address,uint256)")
	SelBalanceOf    = ethabi.Selector("balanceOf(address)")
	SelAllowance    = ethabi.Selector("allowance(address,address)")
	SelMint         = ethabi.Selector("mint(address,uint256)")
	// SelPermit is the gasless-approval entry (EIP-2612 shape,
	// signature parameters elided — the simulated chain carries no
	// transaction signatures, so the off-chain consent a drainer
	// harvests from the victim is represented by the call itself).
	// Permit phishing is one of the three phishing schemes the paper's
	// §7.2 lists; it lets the drainer obtain the allowance without the
	// victim ever sending an on-chain transaction.
	SelPermit = ethabi.Selector("permit(address,address,uint256)")
)

// ERC20 is a native fungible-token contract. All balances and
// allowances live in chain storage under hashed keys so that failed
// transactions roll back.
type ERC20 struct {
	Addr   ethtypes.Address
	Symbol string
	Admin  ethtypes.Address // only account allowed to mint
}

// NewERC20 returns the native contract; callers register it with
// chain.RegisterNative.
func NewERC20(addr ethtypes.Address, symbol string, admin ethtypes.Address) *ERC20 {
	return &ERC20{Addr: addr, Symbol: symbol, Admin: admin}
}

func balanceKey(owner ethtypes.Address) ethtypes.Hash {
	return ethtypes.Hash(keccak.Sum256([]byte("bal"), owner[:]))
}

func allowanceKey(owner, spender ethtypes.Address) ethtypes.Hash {
	return ethtypes.Hash(keccak.Sum256([]byte("alw"), owner[:], spender[:]))
}

func weiToWord(v ethtypes.Wei) ethtypes.Hash {
	var h ethtypes.Hash
	v.Big().FillBytes(h[:])
	return h
}

func wordToWei(h ethtypes.Hash) ethtypes.Wei {
	return ethtypes.WeiFromBig(new(big.Int).SetBytes(h[:]))
}

func boolReturn(ok bool) []byte {
	out := make([]byte, 32)
	if ok {
		out[31] = 1
	}
	return out
}

// Run implements chain.NativeContract.
func (t *ERC20) Run(env *chain.CallEnv) ([]byte, error) {
	if len(env.Input) < 4 {
		// Plain ETH sends to a token contract are rejected, as most
		// real token contracts do.
		return nil, fmt.Errorf("%w: empty calldata", ErrUnknownSelector)
	}
	var sel [4]byte
	copy(sel[:], env.Input[:4])
	switch sel {
	case SelTransfer:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		to := args[0].(ethtypes.Address)
		amount := ethtypes.WeiFromBig(args[1].(*big.Int))
		if err := t.move(env, env.Caller, to, amount); err != nil {
			return nil, err
		}
		return boolReturn(true), nil

	case SelTransferFrom:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		from := args[0].(ethtypes.Address)
		to := args[1].(ethtypes.Address)
		amount := ethtypes.WeiFromBig(args[2].(*big.Int))
		if from != env.Caller {
			ak := allowanceKey(from, env.Caller)
			allowed := wordToWei(env.StorageGet(ak))
			if allowed.Cmp(amount) < 0 {
				return nil, fmt.Errorf("%w: %s allows %s, need %s", ErrAllowance, from.Short(), allowed, amount)
			}
			env.StorageSet(ak, weiToWord(allowed.Sub(amount)))
		}
		if err := t.move(env, from, to, amount); err != nil {
			return nil, err
		}
		return boolReturn(true), nil

	case SelApprove:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		spender := args[0].(ethtypes.Address)
		amount := ethtypes.WeiFromBig(args[1].(*big.Int))
		word := weiToWord(amount)
		env.StorageSet(allowanceKey(env.Caller, spender), word)
		env.EmitLog([]ethtypes.Hash{TopicApproval, addrTopic(env.Caller), addrTopic(spender)}, word[:])
		env.RecordApproval(chain.Approval{
			Token: t.Addr, Kind: chain.AssetERC20,
			Owner: env.Caller, Spender: spender, Amount: amount,
		})
		return boolReturn(true), nil

	case SelPermit:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		owner := args[0].(ethtypes.Address)
		spender := args[1].(ethtypes.Address)
		amount := ethtypes.WeiFromBig(args[2].(*big.Int))
		word := weiToWord(amount)
		env.StorageSet(allowanceKey(owner, spender), word)
		env.EmitLog([]ethtypes.Hash{TopicApproval, addrTopic(owner), addrTopic(spender)}, word[:])
		env.RecordApproval(chain.Approval{
			Token: t.Addr, Kind: chain.AssetERC20,
			Owner: owner, Spender: spender, Amount: amount,
		})
		return boolReturn(true), nil

	case SelBalanceOf:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		bal := env.StorageGet(balanceKey(args[0].(ethtypes.Address)))
		return bal[:], nil

	case SelAllowance:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.AddressT}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		al := env.StorageGet(allowanceKey(args[0].(ethtypes.Address), args[1].(ethtypes.Address)))
		return al[:], nil

	case SelMint:
		if env.Caller != t.Admin {
			return nil, fmt.Errorf("%w: mint by %s", ErrNotAuthorized, env.Caller.Short())
		}
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		to := args[0].(ethtypes.Address)
		amount := ethtypes.WeiFromBig(args[1].(*big.Int))
		bk := balanceKey(to)
		env.StorageSet(bk, weiToWord(wordToWei(env.StorageGet(bk)).Add(amount)))
		return boolReturn(true), nil

	default:
		return nil, fmt.Errorf("%w: %x", ErrUnknownSelector, sel)
	}
}

// move debits from and credits to, emitting the standard event and
// recording the fund-flow edge.
func (t *ERC20) move(env *chain.CallEnv, from, to ethtypes.Address, amount ethtypes.Wei) error {
	fk := balanceKey(from)
	bal := wordToWei(env.StorageGet(fk))
	if bal.Cmp(amount) < 0 {
		return fmt.Errorf("%w: %s has %s %s, need %s", ErrBalance, from.Short(), bal, t.Symbol, amount)
	}
	env.StorageSet(fk, weiToWord(bal.Sub(amount)))
	tk := balanceKey(to)
	env.StorageSet(tk, weiToWord(wordToWei(env.StorageGet(tk)).Add(amount)))
	var data [32]byte
	amount.Big().FillBytes(data[:])
	env.EmitLog([]ethtypes.Hash{TopicTransfer, addrTopic(from), addrTopic(to)}, data[:])
	env.RecordTokenTransfer(chain.Asset{Kind: chain.AssetERC20, Token: t.Addr}, from, to, amount)
	return nil
}

func addrTopic(a ethtypes.Address) ethtypes.Hash {
	var h ethtypes.Hash
	copy(h[12:], a[:])
	return h
}
