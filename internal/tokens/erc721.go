package tokens

import (
	"fmt"
	"math/big"

	"repro/internal/chain"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/keccak"
)

// ERC-721 selectors (transferFrom/approve share their ERC-20 shapes
// with different argument meaning, as in the real standards).
var (
	SelOwnerOf           = ethabi.Selector("ownerOf(uint256)")
	SelSetApprovalForAll = ethabi.Selector("setApprovalForAll(address,bool)")
	SelIsApprovedForAll  = ethabi.Selector("isApprovedForAll(address,address)")
	SelMint721           = ethabi.Selector("mint(address,uint256)")
)

// ERC721 is a native NFT contract.
type ERC721 struct {
	Addr   ethtypes.Address
	Symbol string
	Admin  ethtypes.Address
}

// NewERC721 returns the native contract.
func NewERC721(addr ethtypes.Address, symbol string, admin ethtypes.Address) *ERC721 {
	return &ERC721{Addr: addr, Symbol: symbol, Admin: admin}
}

func ownerKey(id uint64) ethtypes.Hash {
	var idb [8]byte
	for i := 0; i < 8; i++ {
		idb[7-i] = byte(id >> (8 * i))
	}
	return ethtypes.Hash(keccak.Sum256([]byte("own"), idb[:]))
}

func tokenApprovalKey(id uint64) ethtypes.Hash {
	var idb [8]byte
	for i := 0; i < 8; i++ {
		idb[7-i] = byte(id >> (8 * i))
	}
	return ethtypes.Hash(keccak.Sum256([]byte("apr"), idb[:]))
}

func operatorKey(owner, op ethtypes.Address) ethtypes.Hash {
	return ethtypes.Hash(keccak.Sum256([]byte("all"), owner[:], op[:]))
}

func addrWord(a ethtypes.Address) ethtypes.Hash {
	var h ethtypes.Hash
	copy(h[12:], a[:])
	return h
}

func wordAddr(h ethtypes.Hash) ethtypes.Address {
	return ethtypes.BytesToAddress(h[:])
}

// Run implements chain.NativeContract.
func (t *ERC721) Run(env *chain.CallEnv) ([]byte, error) {
	if len(env.Input) < 4 {
		return nil, fmt.Errorf("%w: empty calldata", ErrUnknownSelector)
	}
	var sel [4]byte
	copy(sel[:], env.Input[:4])
	switch sel {
	case SelOwnerOf:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		owner := env.StorageGet(ownerKey(args[0].(*big.Int).Uint64()))
		return owner[:], nil

	case SelTransferFrom:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		from := args[0].(ethtypes.Address)
		to := args[1].(ethtypes.Address)
		id := args[2].(*big.Int).Uint64()
		owner := wordAddr(env.StorageGet(ownerKey(id)))
		if owner != from {
			return nil, fmt.Errorf("%w: token %d owned by %s, not %s", ErrNotOwner, id, owner.Short(), from.Short())
		}
		if !t.authorized(env, owner, env.Caller, id) {
			return nil, fmt.Errorf("%w: %s moving token %d of %s", ErrNotAuthorized, env.Caller.Short(), id, owner.Short())
		}
		env.StorageSet(ownerKey(id), addrWord(to))
		env.StorageSet(tokenApprovalKey(id), ethtypes.Hash{}) // clear per-token approval
		var data [32]byte
		new(big.Int).SetUint64(id).FillBytes(data[:])
		env.EmitLog([]ethtypes.Hash{TopicTransfer, addrTopic(from), addrTopic(to)}, data[:])
		env.RecordTokenTransfer(chain.Asset{Kind: chain.AssetERC721, Token: t.Addr, TokenID: id},
			from, to, ethtypes.NewWei(1))
		return nil, nil

	case SelApprove:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		spender := args[0].(ethtypes.Address)
		id := args[1].(*big.Int).Uint64()
		owner := wordAddr(env.StorageGet(ownerKey(id)))
		if owner != env.Caller {
			return nil, fmt.Errorf("%w: approve of token %d by non-owner %s", ErrNotAuthorized, id, env.Caller.Short())
		}
		env.StorageSet(tokenApprovalKey(id), addrWord(spender))
		env.RecordApproval(chain.Approval{
			Token: t.Addr, Kind: chain.AssetERC721,
			Owner: owner, Spender: spender, Amount: ethtypes.NewWei(1),
		})
		return nil, nil

	case SelSetApprovalForAll:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.BoolT}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		op := args[0].(ethtypes.Address)
		approved := args[1].(bool)
		var val ethtypes.Hash
		if approved {
			val[31] = 1
		}
		env.StorageSet(operatorKey(env.Caller, op), val)
		env.EmitLog([]ethtypes.Hash{TopicApprovalForAll, addrTopic(env.Caller), addrTopic(op)}, val[:])
		env.RecordApproval(chain.Approval{
			Token: t.Addr, Kind: chain.AssetERC721,
			Owner: env.Caller, Spender: op, All: approved,
		})
		return nil, nil

	case SelIsApprovedForAll:
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.AddressT}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		v := env.StorageGet(operatorKey(args[0].(ethtypes.Address), args[1].(ethtypes.Address)))
		return v[:], nil

	case SelMint721:
		if env.Caller != t.Admin {
			return nil, fmt.Errorf("%w: mint by %s", ErrNotAuthorized, env.Caller.Short())
		}
		args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, env.Input[4:])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
		}
		to := args[0].(ethtypes.Address)
		id := args[1].(*big.Int).Uint64()
		if owner := wordAddr(env.StorageGet(ownerKey(id))); !owner.IsZero() {
			return nil, fmt.Errorf("tokens: token %d already minted to %s", id, owner.Short())
		}
		env.StorageSet(ownerKey(id), addrWord(to))
		return nil, nil

	default:
		return nil, fmt.Errorf("%w: %x", ErrUnknownSelector, sel)
	}
}

// authorized reports whether caller may move token id owned by owner.
func (t *ERC721) authorized(env *chain.CallEnv, owner, caller ethtypes.Address, id uint64) bool {
	if caller == owner {
		return true
	}
	if wordAddr(env.StorageGet(tokenApprovalKey(id))) == caller {
		return true
	}
	v := env.StorageGet(operatorKey(owner, caller))
	return v[31] == 1
}
