package tokens

import (
	"fmt"
	"math/big"

	"repro/internal/chain"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
)

// Marketplace selectors.
var (
	// SelSell is sell(address,uint256,uint256): sell an NFT (token,
	// tokenID) for the given ETH price. The marketplace takes custody of
	// the NFT and pays the seller from its liquidity pool, mirroring how
	// drainers liquidate stolen NFTs on Blur/OpenSea before splitting
	// proceeds (paper §4.2).
	SelSell = ethabi.Selector("sell(address,uint256,uint256)")
)

// Marketplace is a native NFT marketplace with an ETH liquidity pool
// (fund its address to provide buy-side liquidity).
type Marketplace struct {
	Addr ethtypes.Address
	// FeeBps is the marketplace fee in basis points deducted from the
	// sale price.
	FeeBps int64
}

// NewMarketplace returns the native contract.
func NewMarketplace(addr ethtypes.Address, feeBps int64) *Marketplace {
	return &Marketplace{Addr: addr, FeeBps: feeBps}
}

// Run implements chain.NativeContract.
func (m *Marketplace) Run(env *chain.CallEnv) ([]byte, error) {
	if len(env.Input) < 4 {
		return nil, fmt.Errorf("%w: empty calldata", ErrUnknownSelector)
	}
	var sel [4]byte
	copy(sel[:], env.Input[:4])
	if sel != SelSell {
		return nil, fmt.Errorf("%w: %x", ErrUnknownSelector, sel)
	}
	args, err := ethabi.Decode([]ethabi.Type{ethabi.AddressT, ethabi.Uint256T, ethabi.Uint256T}, env.Input[4:])
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadCalldata, err)
	}
	token := args[0].(ethtypes.Address)
	id := args[1].(*big.Int)
	price := ethtypes.WeiFromBig(args[2].(*big.Int))

	// Pull the NFT from the seller; requires prior approval of the
	// marketplace (or operator approval), exactly like a real listing.
	pull, err := ethabi.EncodeCall("transferFrom(address,address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{env.Caller, m.Addr, id})
	if err != nil {
		return nil, err
	}
	if _, err := env.Call(token, ethtypes.Wei{}, pull); err != nil {
		return nil, fmt.Errorf("tokens: marketplace pull failed: %w", err)
	}

	// Pay the seller price minus fee from the liquidity pool.
	payout := price.MulDiv(10_000-m.FeeBps, 10_000)
	if env.Balance(m.Addr).Cmp(payout) < 0 {
		return nil, fmt.Errorf("%w: marketplace liquidity %s below payout %s",
			ErrBalance, env.Balance(m.Addr), payout)
	}
	if _, err := env.Call(env.Caller, payout, nil); err != nil {
		return nil, fmt.Errorf("tokens: marketplace payout failed: %w", err)
	}
	return nil, nil
}
