package worldgen

import (
	"math/rand/v2"
	"time"

	"repro/internal/contracts"
	"repro/internal/ethtypes"
)

// This file plans the scam-shape populations the static fingerprint
// engine is evaluated against: one sub-population per detection family
// (approval-phishing relays, Forsage-style payout pyramids, EIP-1167
// drainer clones) plus the adversarial negatives that differ from each
// family in exactly the leg its fingerprint tests (benign payment
// routers, allowance helpers whose spender comes from calldata,
// owner-gated airdrops, and clones of a benign implementation). These
// populations are disjoint from the profit-sharing incident timeline —
// they exist so StaticScreen's precision and recall can be scored
// against planted ground truth.

// ScamPlan collects the fingerprint-family populations.
type ScamPlan struct {
	Phishers  []PhisherPlan
	Pyramids  []PyramidPlan
	Clones    []ClonePlan
	Negatives []NegativePlan
	// DrainerFactory deploys the shared drainer implementation behind
	// the malicious clones; BenignFactory the benign one.
	DrainerFactory ethtypes.Address
	BenignFactory  ethtypes.Address
}

// PhisherPlan is one approval-phishing relay contract (paper §6.1):
// the operator deploys it with the cash-out receiver baked in, then
// replays harvested victim consent through drain().
type PhisherPlan struct {
	Operator ethtypes.Address
	Receiver ethtypes.Address
	// Sink is the forwarded allowance-consuming signature — rotated
	// over the sinks a relay can actually monetize (transferFrom spends
	// an on-chain approval, permit mints the allowance in-flight).
	Sink   string
	Start  time.Time
	Drains []DrainPlan
}

// DrainPlan is one victim drained through a phisher relay.
type DrainPlan struct {
	Victim   ethtypes.Address
	TokenIdx int
	LossUSD  float64
	Time     time.Time
}

// PyramidPlan is one payout pyramid: join() fans each deposit over a
// fixed payee matrix with level-indexed constant amounts.
type PyramidPlan struct {
	Creator ethtypes.Address
	Payees  []ethtypes.Address
	// AmountsGwei are the per-level payouts; at least two are distinct,
	// which is the leg separating a pyramid from an equal-amount
	// airdrop.
	AmountsGwei []int64
	Start       time.Time
	Joins       []JoinPlan
}

// JoinPlan is one pyramid deposit.
type JoinPlan struct {
	Joiner ethtypes.Address
	Time   time.Time
}

// ClonePlan is one EIP-1167 clone. Malicious clones point at the
// shared drainer implementation and carry their own
// operator/affiliate/ratio in clone storage; benign clones point at a
// benign splitter implementation and are planted as proxy-family
// negatives.
type ClonePlan struct {
	Deployer  ethtypes.Address
	Operator  ethtypes.Address
	Affiliate ethtypes.Address
	RatioPM   int64
	Benign    bool
	Start     time.Time
	Payments  []PaymentPlan
}

// PaymentPlan is one user transaction against a planted contract.
type PaymentPlan struct {
	From ethtypes.Address
	USD  float64
	Time time.Time
}

// Negative look-alike kinds recorded in GroundTruth.NegativeContracts.
const (
	NegativeRouter          = "router"
	NegativeAllowanceHelper = "allowance-helper"
	NegativeAirdrop         = "airdrop"
	NegativeBenignProxy     = "benign-proxy"
)

// NegativePlan is one benign look-alike contract with its traffic
// (benign clones ride in ClonePlan instead).
type NegativePlan struct {
	Kind       string
	Owner      ethtypes.Address
	Recipients []ethtypes.Address // airdrop payout list
	AmountGwei int64              // airdrop per-recipient amount
	Start      time.Time
	Users      []PaymentPlan
}

// monetizableSinks are the forwarded signatures a relay contract can
// actually profit from on-chain; the remaining sink variants are
// covered by the contract-level agreement tests.
var monetizableSinks = []string{
	"transferFrom(address,address,uint256)",
	"permit(address,address,uint256)",
}

// planScam draws the scam-shape populations. It runs after every other
// planning stage so the extra rng draws leave the existing plan
// byte-for-byte unchanged.
func (p *Plan) planScam(rng *rand.Rand) {
	cfg := p.Config
	deployEnd := DatasetEnd.Add(-30 * 24 * time.Hour)

	for i := 0; i < cfg.scaled(cfg.ApprovalPhishers); i++ {
		ph := PhisherPlan{
			Operator: randomAddr(rng),
			Receiver: randomAddr(rng),
			Sink:     monetizableSinks[i%len(monetizableSinks)],
			Start:    randTimeIn(rng, DatasetStart, deployEnd),
		}
		for j := 0; j < 2+rng.IntN(5); j++ {
			ph.Drains = append(ph.Drains, DrainPlan{
				Victim:   randomAddr(rng),
				TokenIdx: rng.IntN(len(p.Tokens)),
				LossUSD:  logUniform(rng, 50, 20_000),
				Time:     randTimeIn(rng, ph.Start.Add(24*time.Hour), DatasetEnd),
			})
		}
		p.Scam.Phishers = append(p.Scam.Phishers, ph)
	}

	for i := 0; i < cfg.scaled(cfg.Pyramids); i++ {
		levels := 3 + rng.IntN(3)
		py := PyramidPlan{
			Creator: randomAddr(rng),
			Start:   randTimeIn(rng, DatasetStart, deployEnd),
		}
		base := int64(1+rng.IntN(5)) * 2_000_000 // gwei
		for l := 0; l < levels; l++ {
			py.Payees = append(py.Payees, randomAddr(rng))
			// Forsage-style halving schedule: every level distinct.
			py.AmountsGwei = append(py.AmountsGwei, base>>l)
		}
		for j := 0; j < 3+rng.IntN(6); j++ {
			py.Joins = append(py.Joins, JoinPlan{
				Joiner: randomAddr(rng),
				Time:   randTimeIn(rng, py.Start.Add(12*time.Hour), DatasetEnd),
			})
		}
		p.Scam.Pyramids = append(p.Scam.Pyramids, py)
	}

	p.Scam.DrainerFactory = randomAddr(rng)
	p.Scam.BenignFactory = randomAddr(rng)
	nClones := cfg.scaled(cfg.DrainerClones)
	nBenignClones := cfg.scaled(cfg.BenignLookalikes)
	drainerRatios := []int64{100, 200, 150, 300}
	for i := 0; i < nClones+nBenignClones; i++ {
		benign := i >= nClones
		cl := ClonePlan{
			Deployer:  randomAddr(rng),
			Operator:  randomAddr(rng),
			Affiliate: randomAddr(rng),
			RatioPM:   drainerRatios[i%len(drainerRatios)],
			Benign:    benign,
			Start:     randTimeIn(rng, DatasetStart, deployEnd),
		}
		if benign {
			cl.RatioPM = 500 // the 50/50 idiom of honest splitters
		}
		for j := 0; j < 1+rng.IntN(4); j++ {
			cl.Payments = append(cl.Payments, PaymentPlan{
				From: randomAddr(rng),
				USD:  logUniform(rng, 100, 10_000),
				Time: randTimeIn(rng, cl.Start.Add(6*time.Hour), DatasetEnd),
			})
		}
		p.Scam.Clones = append(p.Scam.Clones, cl)
	}

	for _, kind := range []string{NegativeRouter, NegativeAllowanceHelper, NegativeAirdrop} {
		for i := 0; i < cfg.scaled(cfg.BenignLookalikes); i++ {
			np := NegativePlan{
				Kind:  kind,
				Owner: randomAddr(rng),
				Start: randTimeIn(rng, DatasetStart, deployEnd),
			}
			if kind == NegativeAirdrop {
				for r := 0; r < 3+rng.IntN(4); r++ {
					np.Recipients = append(np.Recipients, randomAddr(rng))
				}
				np.AmountGwei = int64(1+rng.IntN(10)) * 5_000_000
			}
			for j := 0; j < 2+rng.IntN(4); j++ {
				np.Users = append(np.Users, PaymentPlan{
					From: randomAddr(rng),
					USD:  logUniform(rng, 20, 2_000),
					Time: randTimeIn(rng, np.Start.Add(6*time.Hour), DatasetEnd),
				})
			}
			p.Scam.Negatives = append(p.Scam.Negatives, np)
		}
	}
}

// pyramidSpec converts a plan row into the contract template's spec.
func (py *PyramidPlan) pyramidSpec() contracts.PyramidSpec {
	spec := contracts.PyramidSpec{}
	for i, payee := range py.Payees {
		spec.Levels = append(spec.Levels, contracts.PyramidLevel{
			Payee:  payee,
			Amount: ethtypes.GWei(py.AmountsGwei[i]).Big(),
		})
	}
	return spec
}
