package worldgen

import (
	"fmt"
	"math/big"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/prices"
	"repro/internal/tokens"
)

// World is a fully generated environment: the chain with every theft
// executed, the public label directory, the price oracle, and the
// planted ground truth the pipeline is evaluated against.
type World struct {
	Plan   *Plan
	Chain  *chain.Chain
	Oracle *prices.Oracle
	Labels *labels.Directory
	Truth  *GroundTruth

	TokenAddrs  []ethtypes.Address
	NFTAddrs    []ethtypes.Address
	Marketplace ethtypes.Address
	Exchange    ethtypes.Address
	Mixer       ethtypes.Address
	Admin       ethtypes.Address
}

// GroundTruth records what was planted, for precision/recall scoring.
type GroundTruth struct {
	// ContractAddrs maps [family][contract index] to the deployed
	// address.
	ContractAddrs [][]ethtypes.Address
	// ContractFamily, OperatorFamily, AffiliateFamily map DaaS accounts
	// to their family index.
	ContractFamily  map[ethtypes.Address]int
	OperatorFamily  map[ethtypes.Address]int
	AffiliateFamily map[ethtypes.Address]int
	// VictimLossUSD accumulates each victim's total loss.
	VictimLossUSD map[ethtypes.Address]float64
	// VictimIncidents counts thefts per victim.
	VictimIncidents map[ethtypes.Address]int
	// ProfitTxs maps every true profit-sharing transaction to its
	// incident.
	ProfitTxs map[ethtypes.Hash]*Incident
	// BenignSplitTxs are split-shaped transactions of benign splitter
	// contracts (the classifier negatives).
	BenignSplitTxs map[ethtypes.Hash]bool
	// CollidingSplitters are benign contracts whose ratio collides with
	// the drainer set.
	CollidingSplitters []ethtypes.Address
	// SharedPhishingEOAs are the Etherscan-labeled accounts linking
	// operators (§7.1 edge type 2).
	SharedPhishingEOAs []ethtypes.Address
	// CashoutRoute records each cashed-out DaaS account's laundering
	// destination class: "mixer" or "exchange" (§8.1).
	CashoutRoute map[ethtypes.Address]string
	// ScamContracts maps each planted fingerprint-family contract to
	// its static family label (approval-phishing, pyramid-payout,
	// proxy) — the positive set for scoring StaticScreen.
	ScamContracts map[ethtypes.Address]string
	// NegativeContracts maps each planted benign look-alike (router,
	// allowance-helper, airdrop, benign-proxy) to its kind — the
	// adversarial negatives the fingerprints must not flag.
	NegativeContracts map[ethtypes.Address]string
	// DrainerImpl is the shared implementation behind the malicious
	// EIP-1167 clones.
	DrainerImpl ethtypes.Address
}

func newGroundTruth() *GroundTruth {
	return &GroundTruth{
		ContractFamily:  make(map[ethtypes.Address]int),
		OperatorFamily:  make(map[ethtypes.Address]int),
		AffiliateFamily: make(map[ethtypes.Address]int),
		VictimLossUSD:   make(map[ethtypes.Address]float64),
		VictimIncidents: make(map[ethtypes.Address]int),
		ProfitTxs:       make(map[ethtypes.Hash]*Incident),
		BenignSplitTxs:  make(map[ethtypes.Hash]bool),
		CashoutRoute:    make(map[ethtypes.Address]string),

		ScamContracts:     make(map[ethtypes.Address]string),
		NegativeContracts: make(map[ethtypes.Address]string),
	}
}

// DaaSAccountCount returns the planted population size (contracts +
// operators + affiliates), the denominator of §8.1's label coverage.
func (gt *GroundTruth) DaaSAccountCount() int {
	return len(gt.ContractFamily) + len(gt.OperatorFamily) + len(gt.AffiliateFamily)
}

// Generate plans and builds a world in one step.
func Generate(cfg Config) (*World, error) {
	plan, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	return Build(plan)
}

// Build executes a plan against a fresh chain.
func Build(plan *Plan) (*World, error) {
	rng := rand.New(rand.NewPCG(plan.Config.Seed^0xabcdef12, plan.Config.Seed+7))
	w := &World{
		Plan:   plan,
		Chain:  chain.New(DatasetStart.Add(-24 * time.Hour)),
		Oracle: prices.New(),
		Labels: labels.New(),
		Truth:  newGroundTruth(),
	}
	b := &builder{w: w, rng: rng}
	b.setupInfrastructure()
	if err := b.deployContracts(); err != nil {
		return nil, err
	}
	b.plantOperatorLinks()
	if err := b.deploySplitters(); err != nil {
		return nil, err
	}
	if err := b.buildScamShapes(); err != nil {
		return nil, err
	}
	if err := b.runTimeline(); err != nil {
		return nil, err
	}
	b.assignLabels()
	if err := b.runCashouts(); err != nil {
		return nil, err
	}
	return w, nil
}

// builder carries generation state.
type builder struct {
	w   *World
	rng *rand.Rand
	// nftNext is the next unminted token id per collection.
	nftNext []uint64
	// mktApproved tracks operator×collection marketplace approvals.
	mktApproved map[[2]int]map[ethtypes.Address]bool
	// splitterAddrs are the deployed benign splitter contracts.
	splitterAddrs []ethtypes.Address
	labelSeq      int
}

func (b *builder) setupInfrastructure() {
	w := b.w
	w.Admin = randomAddr(b.rng)
	w.Exchange = randomAddr(b.rng)
	w.Chain.Fund(w.Exchange, ethtypes.Ether(50_000_000))
	w.Chain.Fund(w.Admin, ethtypes.Ether(1000))

	for _, tp := range w.Plan.Tokens {
		addr := randomAddr(b.rng)
		w.Chain.RegisterNative(addr, tokens.NewERC20(addr, tp.Symbol, w.Admin))
		w.Oracle.Register(addr, prices.Quote{Symbol: tp.Symbol, Decimals: tp.Decimals, USD: tp.USD})
		w.TokenAddrs = append(w.TokenAddrs, addr)
	}
	for _, cp := range w.Plan.NFTs {
		addr := randomAddr(b.rng)
		w.Chain.RegisterNative(addr, tokens.NewERC721(addr, cp.Symbol, w.Admin))
		w.Oracle.Register(addr, prices.Quote{Symbol: cp.Symbol, Decimals: 0, USD: cp.FloorUSD})
		w.NFTAddrs = append(w.NFTAddrs, addr)
	}
	w.Marketplace = randomAddr(b.rng)
	w.Chain.RegisterNative(w.Marketplace, tokens.NewMarketplace(w.Marketplace, 0))
	w.Chain.Fund(w.Marketplace, ethtypes.Ether(100_000_000))
	w.Mixer = randomAddr(b.rng)

	b.nftNext = make([]uint64, len(w.Plan.NFTs))
	for i := range b.nftNext {
		b.nftNext[i] = uint64(i+1) * 1_000_000
	}
	b.mktApproved = make(map[[2]int]map[ethtypes.Address]bool)
}

// deployContracts creates every profit-sharing contract at its planned
// start time and records ground truth.
func (b *builder) deployContracts() error {
	w := b.w
	w.Truth.ContractAddrs = make([][]ethtypes.Address, len(w.Plan.Families))
	for fi, fam := range w.Plan.Families {
		w.Truth.ContractAddrs[fi] = make([]ethtypes.Address, len(fam.Contracts))
		for _, op := range fam.Operators {
			w.Truth.OperatorFamily[op.Addr] = fi
		}
		for _, aff := range fam.Affiliates {
			w.Truth.AffiliateFamily[aff.Addr] = fi
		}
		for ci, cp := range fam.Contracts {
			spec := contracts.Spec{
				Style:            fam.Params.Style,
				Operator:         fam.Operators[cp.Operator].Addr,
				OperatorPerMille: cp.RatioPM,
				Authorized:       fam.Operators[cp.Operator].Addr,
			}
			if cp.Affiliate >= 0 {
				spec.Affiliate = fam.Affiliates[cp.Affiliate].Addr
			}
			initcode, err := contracts.Deploy(spec)
			if err != nil {
				return fmt.Errorf("worldgen: bad contract spec: %w", err)
			}
			deployer := fam.Operators[cp.Operator].Addr
			_, rs := w.Chain.Mine(cp.Start, &chain.Transaction{From: deployer, Data: initcode})
			if !rs[0].Status {
				return fmt.Errorf("worldgen: contract deployment failed: %s", rs[0].Err)
			}
			addr := rs[0].ContractAddress
			w.Truth.ContractAddrs[fi][ci] = addr
			w.Truth.ContractFamily[addr] = fi
		}
	}
	return nil
}

// plantOperatorLinks executes the planned clustering edges.
func (b *builder) plantOperatorLinks() {
	w := b.w
	for fi, fam := range w.Plan.Families {
		for _, link := range fam.Links {
			a := fam.Operators[link.A]
			bb := fam.Operators[link.B]
			t := laterOf(a.Start, bb.Start).Add(6 * time.Hour)
			if link.ViaSharedAccount {
				shared := randomAddr(b.rng)
				w.Truth.SharedPhishingEOAs = append(w.Truth.SharedPhishingEOAs, shared)
				w.Labels.Add(labels.Label{
					Address: shared, Source: labels.SourceEtherscan,
					Category: labels.CategoryPhishing, Name: b.nextFakePhishing(),
				})
				w.Chain.Fund(a.Addr, ethtypes.Ether(1))
				w.Chain.Fund(bb.Addr, ethtypes.Ether(1))
				w.Chain.Mine(t,
					&chain.Transaction{From: a.Addr, To: addrPtr(shared), Value: ethtypes.GWei(100_000_000)},
					&chain.Transaction{From: bb.Addr, To: addrPtr(shared), Value: ethtypes.GWei(100_000_000)})
			} else {
				w.Chain.Fund(a.Addr, ethtypes.Ether(2))
				w.Chain.Mine(t, &chain.Transaction{From: a.Addr, To: addrPtr(bb.Addr), Value: ethtypes.Ether(1)})
			}
		}
		_ = fi
	}
}

// deploySplitters creates the benign payment splitters.
func (b *builder) deploySplitters() error {
	w := b.w
	for i := range w.Plan.Benign.Splitters {
		sp := &w.Plan.Benign.Splitters[i]
		spec := contracts.Spec{
			Style:            contracts.StyleFallback,
			Operator:         sp.PartyA,
			Affiliate:        sp.PartyB,
			OperatorPerMille: sp.RatioPM,
			Authorized:       sp.PartyA,
		}
		initcode, err := contracts.Deploy(spec)
		if err != nil {
			return fmt.Errorf("worldgen: bad splitter spec: %w", err)
		}
		_, rs := w.Chain.Mine(sp.Payments[0].Add(-24*time.Hour),
			&chain.Transaction{From: sp.Payer, Data: initcode})
		addr := rs[0].ContractAddress
		b.splitterAddrs = append(b.splitterAddrs, addr)
		if sp.Colliding {
			w.Truth.CollidingSplitters = append(w.Truth.CollidingSplitters, addr)
		}
	}
	return nil
}

// timelineEvent is anything scheduled on the world clock.
type timelineEvent struct {
	t  time.Time
	fn func() error
}

// runTimeline executes incidents, benign traffic, splitter payments,
// and revocations in time order.
func (b *builder) runTimeline() error {
	w := b.w
	var events []timelineEvent
	for _, inc := range w.Plan.Incidents {
		inc := inc
		events = append(events, timelineEvent{inc.Time, func() error { return b.runIncident(inc) }})
	}
	for i := range w.Plan.Benign.Transfers {
		tr := w.Plan.Benign.Transfers[i]
		events = append(events, timelineEvent{tr.Time, func() error { return b.runBenignTransfer(tr) }})
	}
	for i := range w.Plan.Benign.Splitters {
		sp := &w.Plan.Benign.Splitters[i]
		addr := b.splitterAddrs[i]
		for _, pt := range sp.Payments {
			pt := pt
			events = append(events, timelineEvent{pt, func() error { return b.runSplitterPayment(sp, addr, pt) }})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].t.Before(events[j].t) })
	for _, ev := range events {
		if err := ev.fn(); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) runBenignTransfer(tr BenignTransfer) error {
	w := b.w
	wei := w.Oracle.EtherForUSD(tr.AmountUSD, tr.Time)
	w.Chain.Fund(tr.From, wei)
	_, rs := w.Chain.Mine(tr.Time, &chain.Transaction{From: tr.From, To: addrPtr(tr.To), Value: wei})
	if !rs[0].Status {
		return fmt.Errorf("worldgen: benign transfer failed: %s", rs[0].Err)
	}
	return nil
}

func (b *builder) runSplitterPayment(sp *SplitterPlan, addr ethtypes.Address, t time.Time) error {
	w := b.w
	wei := w.Oracle.EtherForUSD(sp.PayUSD, t)
	w.Chain.Fund(sp.Payer, wei)
	_, rs := w.Chain.Mine(t, &chain.Transaction{From: sp.Payer, To: addrPtr(addr), Value: wei})
	if !rs[0].Status {
		return fmt.Errorf("worldgen: splitter payment failed: %s", rs[0].Err)
	}
	w.Truth.BenignSplitTxs[rs[0].TxHash] = true
	return nil
}

// runIncident executes one theft through the planned scenario and
// records its ground truth.
func (b *builder) runIncident(inc *Incident) error {
	w := b.w
	fam := w.Plan.Families[inc.Family]
	contractAddr := w.Truth.ContractAddrs[inc.Family][inc.Contract]
	affiliate := fam.Affiliates[inc.Affiliate].Addr
	operator := fam.Operators[inc.Operator].Addr

	var profitTx ethtypes.Hash
	var err error
	switch inc.Kind {
	case chain.AssetETH:
		profitTx, err = b.runETHTheft(inc, fam, contractAddr, affiliate)
	case chain.AssetERC20:
		profitTx, err = b.runERC20Theft(inc, fam, contractAddr, operator, affiliate)
	case chain.AssetERC721:
		profitTx, err = b.runNFTTheft(inc, fam, contractAddr, operator, affiliate)
	default:
		err = fmt.Errorf("worldgen: unknown asset kind %v", inc.Kind)
	}
	if err != nil {
		return fmt.Errorf("worldgen: incident (family %s, kind %v, $%.0f): %w",
			fam.Params.Key, inc.Kind, inc.LossUSD, err)
	}
	w.Truth.ProfitTxs[profitTx] = inc
	w.Truth.VictimLossUSD[inc.Victim] += inc.LossUSD
	w.Truth.VictimIncidents[inc.Victim]++
	return nil
}

// runETHTheft: the victim signs the phishing transaction that sends
// ETH straight into the profit-sharing contract (Fig. 3 top path).
func (b *builder) runETHTheft(inc *Incident, fam *FamilyPlan, contractAddr, affiliate ethtypes.Address) (ethtypes.Hash, error) {
	w := b.w
	wei := w.Oracle.EtherForUSD(inc.LossUSD, inc.Time)
	b.fundVictim(inc.Victim, wei, inc.Time)

	tx := &chain.Transaction{From: inc.Victim, To: addrPtr(contractAddr), Value: wei}
	if fam.Params.Style != contracts.StyleFallback {
		data, err := contracts.ClaimData(mainSigOf(fam), affiliate)
		if err != nil {
			return ethtypes.Hash{}, err
		}
		tx.Data = data
	}
	_, rs := w.Chain.Mine(inc.Time, tx)
	if !rs[0].Status {
		return ethtypes.Hash{}, fmt.Errorf("ETH theft tx failed: %s", rs[0].Err)
	}
	return rs[0].TxHash, nil
}

// runERC20Theft: the victim approves the contract (possibly for two
// tokens in one block), then the operator's multicall pulls the split
// directly to operator and affiliate (Fig. 3 middle path).
func (b *builder) runERC20Theft(inc *Incident, fam *FamilyPlan, contractAddr, operator, affiliate ethtypes.Address) (ethtypes.Hash, error) {
	w := b.w
	tokens := []int{inc.TokenIdx}
	if inc.Simultaneous {
		second := (inc.TokenIdx + 1) % len(w.TokenAddrs)
		tokens = append(tokens, second)
	}
	perTokenUSD := inc.LossUSD / float64(len(tokens))

	var approves []*chain.Transaction
	var steps []contracts.MulticallStep
	ratio := fam.Contracts[inc.Contract].RatioPM
	for _, ti := range tokens {
		token := w.TokenAddrs[ti]
		amount := w.Oracle.TokensForUSD(token, perTokenUSD)
		if amount.IsZero() {
			amount = ethtypes.NewWei(1)
		}
		if err := b.mintERC20(token, inc.Victim, amount, inc.Time); err != nil {
			return ethtypes.Hash{}, err
		}
		if inc.Permit {
			// Permit scheme: the allowance is granted inside the
			// drainer's own multicall — no victim-signed transaction.
			permit, err := ethabi.EncodeCall("permit(address,address,uint256)",
				[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
				[]any{inc.Victim, contractAddr, amount.Big()})
			if err != nil {
				return ethtypes.Hash{}, err
			}
			steps = append(steps, contracts.MulticallStep{Target: token, Payload: permit})
		} else {
			appr, err := ethabi.EncodeCall("approve(address,uint256)",
				[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T},
				[]any{contractAddr, amount.Big()})
			if err != nil {
				return ethtypes.Hash{}, err
			}
			approves = append(approves, &chain.Transaction{From: inc.Victim, To: addrPtr(token), Data: appr})
		}

		opShare := amount.MulDiv(ratio, 1000)
		affShare := amount.Sub(opShare)
		for _, leg := range []struct {
			dst ethtypes.Address
			amt ethtypes.Wei
		}{{operator, opShare}, {affiliate, affShare}} {
			payload, err := ethabi.EncodeCall("transferFrom(address,address,uint256)",
				[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
				[]any{inc.Victim, leg.dst, leg.amt.Big()})
			if err != nil {
				return ethtypes.Hash{}, err
			}
			steps = append(steps, contracts.MulticallStep{Target: token, Payload: payload})
		}
	}
	// All approvals land in one block — the "multiple phishing
	// transactions signed simultaneously" signature of §6.1. Permit
	// incidents have none.
	if len(approves) > 0 {
		_, rs := w.Chain.Mine(inc.Time, approves...)
		for _, r := range rs {
			if !r.Status {
				return ethtypes.Hash{}, fmt.Errorf("approval failed: %s", r.Err)
			}
		}
	}
	mc, err := contracts.MulticallData(steps)
	if err != nil {
		return ethtypes.Hash{}, err
	}
	_, rs := w.Chain.Mine(inc.Time.Add(7*time.Minute),
		&chain.Transaction{From: operator, To: addrPtr(contractAddr), Data: mc})
	if !rs[0].Status {
		return ethtypes.Hash{}, fmt.Errorf("multicall failed: %s", rs[0].Err)
	}
	if inc.Revoke && !inc.Permit {
		for _, ti := range tokens {
			token := w.TokenAddrs[ti]
			revoke, err := ethabi.EncodeCall("approve(address,uint256)",
				[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T},
				[]any{contractAddr, big.NewInt(0)})
			if err != nil {
				return ethtypes.Hash{}, err
			}
			w.Chain.Mine(inc.Time.Add(72*time.Hour),
				&chain.Transaction{From: inc.Victim, To: addrPtr(token), Data: revoke})
		}
	}
	return rs[0].TxHash, nil
}

// runNFTTheft: approval-for-all, multicall pull to the operator,
// marketplace liquidation, then an ETH split through the contract
// (Fig. 3 bottom path; §4.2 NFT scenario).
func (b *builder) runNFTTheft(inc *Incident, fam *FamilyPlan, contractAddr, operator, affiliate ethtypes.Address) (ethtypes.Hash, error) {
	w := b.w
	collection := w.NFTAddrs[inc.CollectionIdx]
	floor := w.Plan.NFTs[inc.CollectionIdx].FloorUSD

	ids := make([]uint64, inc.NFTCount)
	for i := range ids {
		ids[i] = b.nftNext[inc.CollectionIdx]
		b.nftNext[inc.CollectionIdx]++
		if err := b.mintNFT(collection, inc.Victim, ids[i], inc.Time); err != nil {
			return ethtypes.Hash{}, err
		}
	}
	// The phishing transaction: setApprovalForAll to the contract.
	saa, err := ethabi.EncodeCall("setApprovalForAll(address,bool)",
		[]ethabi.Type{ethabi.AddressT, ethabi.BoolT}, []any{contractAddr, true})
	if err != nil {
		return ethtypes.Hash{}, err
	}
	_, rs := w.Chain.Mine(inc.Time, &chain.Transaction{From: inc.Victim, To: addrPtr(collection), Data: saa})
	if !rs[0].Status {
		return ethtypes.Hash{}, fmt.Errorf("setApprovalForAll failed: %s", rs[0].Err)
	}

	// Multicall pulls every NFT to the operator EOA.
	var steps []contracts.MulticallStep
	for _, id := range ids {
		payload, err := ethabi.EncodeCall("transferFrom(address,address,uint256)",
			[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
			[]any{inc.Victim, operator, new(big.Int).SetUint64(id)})
		if err != nil {
			return ethtypes.Hash{}, err
		}
		steps = append(steps, contracts.MulticallStep{Target: collection, Payload: payload})
	}
	mc, err := contracts.MulticallData(steps)
	if err != nil {
		return ethtypes.Hash{}, err
	}
	_, rs = w.Chain.Mine(inc.Time.Add(5*time.Minute),
		&chain.Transaction{From: operator, To: addrPtr(contractAddr), Data: mc})
	if !rs[0].Status {
		return ethtypes.Hash{}, fmt.Errorf("NFT multicall failed: %s", rs[0].Err)
	}

	// Liquidate on the marketplace.
	if err := b.approveMarketplace(inc, operator, collection); err != nil {
		return ethtypes.Hash{}, err
	}
	proceeds := ethtypes.Wei{}
	for _, id := range ids {
		price := w.Oracle.EtherForUSD(floor, inc.Time)
		sell, err := ethabi.EncodeCall("sell(address,uint256,uint256)",
			[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T, ethabi.Uint256T},
			[]any{collection, new(big.Int).SetUint64(id), price.Big()})
		if err != nil {
			return ethtypes.Hash{}, err
		}
		_, rs = w.Chain.Mine(inc.Time.Add(20*time.Minute),
			&chain.Transaction{From: operator, To: addrPtr(w.Marketplace), Data: sell})
		if !rs[0].Status {
			return ethtypes.Hash{}, fmt.Errorf("marketplace sale failed: %s", rs[0].Err)
		}
		proceeds = proceeds.Add(price)
	}

	// Split proceeds through the contract: the profit-sharing tx.
	split := &chain.Transaction{From: operator, To: addrPtr(contractAddr), Value: proceeds}
	if fam.Params.Style != contracts.StyleFallback {
		data, err := contracts.ClaimData(mainSigOf(fam), affiliate)
		if err != nil {
			return ethtypes.Hash{}, err
		}
		split.Data = data
	}
	_, rs = w.Chain.Mine(inc.Time.Add(30*time.Minute), split)
	if !rs[0].Status {
		return ethtypes.Hash{}, fmt.Errorf("proceeds split failed: %s", rs[0].Err)
	}

	if inc.Revoke {
		revoke, err := ethabi.EncodeCall("setApprovalForAll(address,bool)",
			[]ethabi.Type{ethabi.AddressT, ethabi.BoolT}, []any{contractAddr, false})
		if err != nil {
			return ethtypes.Hash{}, err
		}
		w.Chain.Mine(inc.Time.Add(96*time.Hour),
			&chain.Transaction{From: inc.Victim, To: addrPtr(collection), Data: revoke})
	}
	return rs[0].TxHash, nil
}

func (b *builder) approveMarketplace(inc *Incident, operator ethtypes.Address, collection ethtypes.Address) error {
	key := [2]int{inc.Family, inc.CollectionIdx}
	if b.mktApproved[key] == nil {
		b.mktApproved[key] = make(map[ethtypes.Address]bool)
	}
	if b.mktApproved[key][operator] {
		return nil
	}
	saa, err := ethabi.EncodeCall("setApprovalForAll(address,bool)",
		[]ethabi.Type{ethabi.AddressT, ethabi.BoolT}, []any{b.w.Marketplace, true})
	if err != nil {
		return err
	}
	_, rs := b.w.Chain.Mine(inc.Time.Add(10*time.Minute),
		&chain.Transaction{From: operator, To: addrPtr(collection), Data: saa})
	if !rs[0].Status {
		return fmt.Errorf("marketplace approval failed: %s", rs[0].Err)
	}
	b.mktApproved[key][operator] = true
	return nil
}

// fundVictim endows a victim, sometimes via an on-chain exchange
// withdrawal for realism.
func (b *builder) fundVictim(victim ethtypes.Address, wei ethtypes.Wei, t time.Time) {
	w := b.w
	if b.rng.Float64() < 0.1 {
		_, rs := w.Chain.Mine(t.Add(-2*time.Hour),
			&chain.Transaction{From: w.Exchange, To: addrPtr(victim), Value: wei})
		if rs[0].Status {
			return
		}
	}
	w.Chain.Fund(victim, wei)
}

func (b *builder) mintERC20(token, to ethtypes.Address, amount ethtypes.Wei, t time.Time) error {
	data, err := ethabi.EncodeCall("mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{to, amount.Big()})
	if err != nil {
		return err
	}
	_, rs := b.w.Chain.Mine(t.Add(-1*time.Hour), &chain.Transaction{From: b.w.Admin, To: addrPtr(token), Data: data})
	if !rs[0].Status {
		return fmt.Errorf("mint failed: %s", rs[0].Err)
	}
	return nil
}

func (b *builder) mintNFT(collection, to ethtypes.Address, id uint64, t time.Time) error {
	data, err := ethabi.EncodeCall("mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{to, new(big.Int).SetUint64(id)})
	if err != nil {
		return err
	}
	_, rs := b.w.Chain.Mine(t.Add(-1*time.Hour), &chain.Transaction{From: b.w.Admin, To: addrPtr(collection), Data: data})
	if !rs[0].Status {
		return fmt.Errorf("NFT mint failed: %s", rs[0].Err)
	}
	return nil
}

// assignLabels populates the public label directory: seed-source tags
// on high-volume contracts, family-name tags on dominant operators,
// and filler tags up to the §8.1 Etherscan coverage rate.
func (b *builder) assignLabels() {
	w := b.w
	// Seed-source labels on contracts.
	for fi, fam := range w.Plan.Families {
		for ci, cp := range fam.Contracts {
			addr := w.Truth.ContractAddrs[fi][ci]
			for _, src := range cp.LabeledBy {
				w.Labels.Add(labels.Label{
					Address:  addr,
					Source:   labels.Source(src),
					Category: labels.CategoryPhishing,
					Name:     b.nextFakePhishing(),
				})
			}
		}
	}
	// Family-name labels on the top operators of named families.
	for fi, fam := range w.Plan.Families {
		if fam.Params.EtherscanName == "" {
			continue
		}
		top := 1 + len(fam.Operators)/4
		for oi := 0; oi < top && oi < len(fam.Operators); oi++ {
			w.Labels.Add(labels.Label{
				Address:  fam.Operators[oi].Addr,
				Source:   labels.SourceEtherscan,
				Category: labels.CategoryPhishing,
				Name:     fam.Params.EtherscanName,
			})
		}
		_ = fi
	}
	// Exchange and mixer labels (benign infrastructure).
	w.Labels.Add(labels.Label{
		Address: w.Exchange, Source: labels.SourceEtherscan,
		Category: labels.CategoryExchange, Name: "CEX Hot Wallet 14",
	})
	w.Labels.Add(labels.Label{
		Address: w.Mixer, Source: labels.SourceEtherscan,
		Category: labels.CategoryService, Name: "Cyclone Mixer: Router",
	})

	// Fill Etherscan coverage to the configured fraction of DaaS
	// accounts.
	total := w.Truth.DaaSAccountCount()
	want := int(float64(total) * w.Plan.Config.EtherscanCoverage)
	have := 0
	for addr := range w.Truth.ContractFamily {
		if w.Labels.Has(addr, labels.SourceEtherscan) {
			have++
		}
	}
	for addr := range w.Truth.OperatorFamily {
		if w.Labels.Has(addr, labels.SourceEtherscan) {
			have++
		}
	}
	// Filler: affiliate accounts reported by users over time.
	for fi := range w.Plan.Families {
		if have >= want {
			break
		}
		fam := w.Plan.Families[fi]
		for _, aff := range fam.Affiliates {
			if have >= want {
				break
			}
			if w.Labels.Has(aff.Addr, labels.SourceEtherscan) {
				continue
			}
			w.Labels.Add(labels.Label{
				Address: aff.Addr, Source: labels.SourceEtherscan,
				Category: labels.CategoryPhishing, Name: b.nextFakePhishing(),
			})
			have++
		}
	}
}

func (b *builder) nextFakePhishing() string {
	b.labelSeq++
	return fmt.Sprintf("Fake_Phishing%d", 60000+b.labelSeq)
}

// mainSigOf returns the named ETH-theft signature of a family's
// template.
func mainSigOf(fam *FamilyPlan) string {
	if fam.Params.Style == contracts.StyleNetworkMerge {
		return contracts.NetworkMergeSignature
	}
	return contracts.ClaimSignatures[0]
}

func addrPtr(a ethtypes.Address) *ethtypes.Address { return &a }

func laterOf(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// runCashouts moves accumulated profits off the DaaS accounts after
// each family winds down (§8.1): accounts that ended up publicly
// labeled on Etherscan cannot cash out at exchanges, so they launder
// through intermediary hops into a mixing service; unlabeled accounts
// deposit at the exchange directly.
func (b *builder) runCashouts() error {
	w := b.w
	for _, fam := range w.Plan.Families {
		when := fam.Params.End.Add(24 * time.Hour)
		accounts := make([]ethtypes.Address, 0, len(fam.Operators)+8)
		for _, op := range fam.Operators {
			accounts = append(accounts, op.Addr)
		}
		// Top affiliates cash out too.
		top := len(fam.Affiliates) / 10
		if top < 1 {
			top = 1
		}
		for _, aff := range fam.Affiliates[:top] {
			accounts = append(accounts, aff.Addr)
		}
		for _, acct := range accounts {
			balance := w.Chain.BalanceOf(acct)
			// Move ~80% of holdings, keep gas money.
			amount := balance.MulDiv(8, 10)
			if amount.Cmp(ethtypes.GWei(1_000_000)) < 0 {
				continue // dust, not worth laundering
			}
			if w.Labels.Has(acct, labels.SourceEtherscan) {
				// Reported account: two-hop route into the mixer.
				hop1, hop2 := randomAddr(b.rng), randomAddr(b.rng)
				w.Chain.Mine(when, &chain.Transaction{From: acct, To: addrPtr(hop1), Value: amount})
				w.Chain.Mine(when.Add(2*time.Hour), &chain.Transaction{From: hop1, To: addrPtr(hop2), Value: amount})
				_, rs := w.Chain.Mine(when.Add(5*time.Hour), &chain.Transaction{From: hop2, To: addrPtr(w.Mixer), Value: amount})
				if !rs[0].Status {
					return fmt.Errorf("worldgen: mixer cashout failed: %s", rs[0].Err)
				}
				w.Truth.CashoutRoute[acct] = "mixer"
			} else {
				_, rs := w.Chain.Mine(when, &chain.Transaction{From: acct, To: addrPtr(w.Exchange), Value: amount})
				if !rs[0].Status {
					return fmt.Errorf("worldgen: exchange cashout failed: %s", rs[0].Err)
				}
				w.Truth.CashoutRoute[acct] = "exchange"
			}
		}
	}
	return nil
}
