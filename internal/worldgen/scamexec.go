package worldgen

import (
	"fmt"
	"math/big"
	"time"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
)

// buildScamShapes executes the ScamPlan: deploys the fingerprint-family
// contracts and their benign look-alikes, then runs the user traffic
// that makes each one economically real. These populations stay out of
// ProfitTxs/VictimLossUSD — they are scored through ScamContracts and
// NegativeContracts instead.
func (b *builder) buildScamShapes() error {
	for i := range b.w.Plan.Scam.Phishers {
		if err := b.runPhisher(&b.w.Plan.Scam.Phishers[i]); err != nil {
			return err
		}
	}
	for i := range b.w.Plan.Scam.Pyramids {
		if err := b.runPyramid(&b.w.Plan.Scam.Pyramids[i]); err != nil {
			return err
		}
	}
	if err := b.runClones(); err != nil {
		return err
	}
	for i := range b.w.Plan.Scam.Negatives {
		if err := b.runNegative(&b.w.Plan.Scam.Negatives[i]); err != nil {
			return err
		}
	}
	return nil
}

// deployScamContract mines one contract creation and checks it landed.
func (b *builder) deployScamContract(deployer ethtypes.Address, initcode []byte, t time.Time, what string) (ethtypes.Address, error) {
	_, rs := b.w.Chain.Mine(t, &chain.Transaction{From: deployer, Data: initcode})
	if !rs[0].Status {
		return ethtypes.Address{}, fmt.Errorf("worldgen: %s deployment failed: %s", what, rs[0].Err)
	}
	return rs[0].ContractAddress, nil
}

// runPhisher deploys one approval-phishing relay and replays its
// planned drains. A transferFrom-sink relay spends an on-chain victim
// approval; a permit-sink relay mints the allowance in-flight and the
// receiver collects with a direct transferFrom — either way the tokens
// end at the hardcoded receiver.
func (b *builder) runPhisher(ph *PhisherPlan) error {
	w := b.w
	initcode, err := contracts.ApprovalPhisherDeploy(contracts.ApprovalPhisherSpec{
		SinkSignature: ph.Sink,
		Receiver:      ph.Receiver,
	})
	if err != nil {
		return err
	}
	addr, err := b.deployScamContract(ph.Operator, initcode, ph.Start, "approval phisher")
	if err != nil {
		return err
	}
	w.Truth.ScamContracts[addr] = string(evmstatic.FamilyApprovalPhish)

	permitSink := ph.Sink == "permit(address,address,uint256)"
	for _, d := range ph.Drains {
		token := w.TokenAddrs[d.TokenIdx]
		amount := w.Oracle.TokensForUSD(token, d.LossUSD)
		if amount.IsZero() {
			amount = ethtypes.NewWei(1)
		}
		if err := b.mintERC20(token, d.Victim, amount, d.Time); err != nil {
			return err
		}
		if !permitSink {
			appr, err := ethabi.EncodeCall("approve(address,uint256)",
				[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T},
				[]any{addr, amount.Big()})
			if err != nil {
				return err
			}
			if _, rs := w.Chain.Mine(d.Time, &chain.Transaction{From: d.Victim, To: addrPtr(token), Data: appr}); !rs[0].Status {
				return fmt.Errorf("worldgen: phish approval failed: %s", rs[0].Err)
			}
		}
		drain, err := ethabi.EncodeCall(contracts.DrainSignature,
			[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
			[]any{token, d.Victim, amount.Big()})
		if err != nil {
			return err
		}
		if _, rs := w.Chain.Mine(d.Time.Add(5*time.Minute), &chain.Transaction{From: ph.Operator, To: addrPtr(addr), Data: drain}); !rs[0].Status {
			return fmt.Errorf("worldgen: drain failed: %s", rs[0].Err)
		}
		if permitSink {
			// The relay granted the receiver an allowance; collect it.
			pull, err := ethabi.EncodeCall("transferFrom(address,address,uint256)",
				[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
				[]any{d.Victim, ph.Receiver, amount.Big()})
			if err != nil {
				return err
			}
			if _, rs := w.Chain.Mine(d.Time.Add(10*time.Minute), &chain.Transaction{From: ph.Receiver, To: addrPtr(token), Data: pull}); !rs[0].Status {
				return fmt.Errorf("worldgen: permit collection failed: %s", rs[0].Err)
			}
		}
	}
	return nil
}

// runPyramid deploys one payout pyramid and mines its joins; each
// deposit equals the matrix total, so the contract fans the full value
// out to the upline payees within the join transaction.
func (b *builder) runPyramid(py *PyramidPlan) error {
	w := b.w
	spec := py.pyramidSpec()
	initcode, err := contracts.PyramidDeploy(spec)
	if err != nil {
		return err
	}
	addr, err := b.deployScamContract(py.Creator, initcode, py.Start, "pyramid")
	if err != nil {
		return err
	}
	w.Truth.ScamContracts[addr] = string(evmstatic.FamilyPyramid)

	deposit := ethtypes.WeiFromBig(spec.Total())
	for _, j := range py.Joins {
		b.fundVictim(j.Joiner, deposit.Add(ethtypes.Ether(1)), j.Time)
		if _, rs := w.Chain.Mine(j.Time, &chain.Transaction{From: j.Joiner, To: addrPtr(addr), Value: deposit}); !rs[0].Status {
			return fmt.Errorf("worldgen: pyramid join failed: %s", rs[0].Err)
		}
	}
	return nil
}

// runClones deploys the two shared implementations, then every planned
// EIP-1167 clone with its own profit-sharing configuration seeded into
// clone storage, and routes the planned payments through the clones.
func (b *builder) runClones() error {
	w := b.w
	sp := &w.Plan.Scam
	if len(sp.Clones) == 0 {
		return nil
	}
	implStart := DatasetStart.Add(-12 * time.Hour)
	implFor := func(factory ethtypes.Address, what string) (ethtypes.Address, error) {
		initcode, err := contracts.Deploy(contracts.Spec{
			Style:            contracts.StyleFallback,
			Operator:         factory,
			Affiliate:        factory,
			OperatorPerMille: 500,
			Authorized:       factory,
		})
		if err != nil {
			return ethtypes.Address{}, err
		}
		return b.deployScamContract(factory, initcode, implStart, what)
	}
	drainerImpl, err := implFor(sp.DrainerFactory, "drainer implementation")
	if err != nil {
		return err
	}
	benignImpl, err := implFor(sp.BenignFactory, "benign implementation")
	if err != nil {
		return err
	}
	w.Truth.DrainerImpl = drainerImpl

	for i := range sp.Clones {
		cl := &sp.Clones[i]
		impl := drainerImpl
		if cl.Benign {
			impl = benignImpl
		}
		initcode, err := contracts.CloneDeploy(impl, contracts.Spec{
			Style:            contracts.StyleFallback,
			Operator:         cl.Operator,
			Affiliate:        cl.Affiliate,
			OperatorPerMille: cl.RatioPM,
			Authorized:       cl.Operator,
		})
		if err != nil {
			return err
		}
		addr, err := b.deployScamContract(cl.Deployer, initcode, cl.Start, "clone")
		if err != nil {
			return err
		}
		if cl.Benign {
			w.Truth.NegativeContracts[addr] = NegativeBenignProxy
		} else {
			w.Truth.ScamContracts[addr] = string(evmstatic.FamilyProxy)
		}
		for _, pay := range cl.Payments {
			wei := w.Oracle.EtherForUSD(pay.USD, pay.Time)
			b.fundVictim(pay.From, wei.Add(ethtypes.Ether(1)), pay.Time)
			if _, rs := w.Chain.Mine(pay.Time, &chain.Transaction{From: pay.From, To: addrPtr(addr), Value: wei}); !rs[0].Status {
				return fmt.Errorf("worldgen: clone payment failed: %s", rs[0].Err)
			}
		}
	}
	return nil
}

// runNegative deploys one benign look-alike and its traffic.
func (b *builder) runNegative(np *NegativePlan) error {
	w := b.w
	var initcode []byte
	var err error
	var airdrop contracts.AirdropSpec
	switch np.Kind {
	case NegativeRouter:
		initcode, err = contracts.BenignRouterDeploy()
	case NegativeAllowanceHelper:
		initcode, err = contracts.AllowanceHelperDeploy()
	case NegativeAirdrop:
		airdrop = contracts.AirdropSpec{
			Owner:      np.Owner,
			Recipients: np.Recipients,
			Amount:     ethtypes.GWei(np.AmountGwei).Big(),
		}
		initcode, err = contracts.AirdropDeploy(airdrop)
	default:
		return fmt.Errorf("worldgen: unknown negative kind %q", np.Kind)
	}
	if err != nil {
		return err
	}
	addr, err := b.deployScamContract(np.Owner, initcode, np.Start, np.Kind)
	if err != nil {
		return err
	}
	w.Truth.NegativeContracts[addr] = np.Kind

	token := w.TokenAddrs[0]
	for _, u := range np.Users {
		switch np.Kind {
		case NegativeRouter:
			// Top up the router, then pay the merchant through it.
			amount := w.Oracle.TokensForUSD(token, u.USD)
			if amount.IsZero() {
				amount = ethtypes.NewWei(1)
			}
			if err := b.mintERC20(token, u.From, amount, u.Time); err != nil {
				return err
			}
			topup, err := ethabi.EncodeCall("transfer(address,uint256)",
				[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T},
				[]any{addr, amount.Big()})
			if err != nil {
				return err
			}
			pay, err := ethabi.EncodeCall(contracts.RouterPaySignature,
				[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
				[]any{token, np.Owner, amount.Big()})
			if err != nil {
				return err
			}
			_, rs := w.Chain.Mine(u.Time,
				&chain.Transaction{From: u.From, To: addrPtr(token), Data: topup},
				&chain.Transaction{From: u.From, To: addrPtr(addr), Data: pay})
			for _, r := range rs {
				if !r.Status {
					return fmt.Errorf("worldgen: router payment failed: %s", r.Err)
				}
			}
		case NegativeAllowanceHelper:
			amount := w.Oracle.TokensForUSD(token, u.USD)
			if amount.IsZero() {
				amount = ethtypes.NewWei(1)
			}
			appr, err := ethabi.EncodeCall(contracts.ApproveForSignature,
				[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
				[]any{token, np.Owner, amount.Big()})
			if err != nil {
				return err
			}
			if _, rs := w.Chain.Mine(u.Time, &chain.Transaction{From: u.From, To: addrPtr(addr), Data: appr}); !rs[0].Status {
				return fmt.Errorf("worldgen: helper call failed: %s", rs[0].Err)
			}
		case NegativeAirdrop:
			// Each round is owner-triggered; the attached value covers the
			// full payout so the contract balance nets to zero.
			total := new(big.Int).Mul(airdrop.Amount, big.NewInt(int64(len(np.Recipients))))
			value := ethtypes.WeiFromBig(total)
			b.fundVictim(np.Owner, value.Add(ethtypes.Ether(1)), u.Time)
			data, err := ethabi.EncodeCall(contracts.DistributeSignature, nil, nil)
			if err != nil {
				return err
			}
			if _, rs := w.Chain.Mine(u.Time, &chain.Transaction{From: np.Owner, To: addrPtr(addr), Data: data, Value: value}); !rs[0].Status {
				return fmt.Errorf("worldgen: airdrop round failed: %s", rs[0].Err)
			}
		}
	}
	return nil
}
