package worldgen

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/labels"
)

func TestPlanDeterminism(t *testing.T) {
	p1, err := NewPlan(TestConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(TestConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Incidents) != len(p2.Incidents) {
		t.Fatalf("incident counts differ: %d vs %d", len(p1.Incidents), len(p2.Incidents))
	}
	for i := range p1.Incidents {
		a, b := p1.Incidents[i], p2.Incidents[i]
		if a.Victim != b.Victim || a.LossUSD != b.LossUSD || !a.Time.Equal(b.Time) {
			t.Fatalf("incident %d differs: %+v vs %+v", i, a, b)
		}
	}
	p3, err := NewPlan(TestConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if len(p3.Incidents) == len(p1.Incidents) && p3.Incidents[0].Victim == p1.Incidents[0].Victim {
		t.Error("different seeds produced identical first incidents")
	}
}

func TestPlanPopulationScaling(t *testing.T) {
	cfg := TestConfig(1)
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Families) != 9 {
		t.Fatalf("families = %d, want 9", len(p.Families))
	}
	for _, fam := range p.Families {
		if len(fam.Operators) == 0 || len(fam.Affiliates) == 0 || len(fam.Contracts) == 0 {
			t.Errorf("family %s has empty population", fam.Params.Key)
		}
		for _, aff := range fam.Affiliates {
			if len(aff.Operators) == 0 {
				t.Errorf("family %s affiliate with no operators", fam.Params.Key)
			}
		}
		for _, cp := range fam.Contracts {
			if cp.RatioPM < 100 || cp.RatioPM > 400 {
				t.Errorf("contract ratio %d out of the documented set", cp.RatioPM)
			}
			if !cp.End.After(cp.Start) {
				t.Errorf("contract window inverted: %v .. %v", cp.Start, cp.End)
			}
		}
	}
	// Fallback families dedicate contracts to affiliates.
	for _, fam := range p.Families {
		if fam.Params.Style != contracts.StyleFallback {
			continue
		}
		for ci, cp := range fam.Contracts {
			if cp.Affiliate < 0 {
				t.Errorf("family %s contract %d has no dedicated affiliate", fam.Params.Key, ci)
			}
		}
	}
}

func TestPlanRejectsBadScale(t *testing.T) {
	cfg := TestConfig(1)
	cfg.Scale = 0
	if _, err := NewPlan(cfg); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestPlanIncidentInvariants(t *testing.T) {
	p, err := NewPlan(TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Incidents) == 0 {
		t.Fatal("no incidents planned")
	}
	last := p.Incidents[0].Time
	for _, inc := range p.Incidents {
		if inc.Time.Before(last) {
			t.Fatal("incidents not sorted by time")
		}
		last = inc.Time
		if inc.LossUSD <= 0 {
			t.Errorf("non-positive loss %f", inc.LossUSD)
		}
		fam := p.Families[inc.Family]
		if inc.Contract < 0 || inc.Contract >= len(fam.Contracts) {
			t.Fatalf("incident contract index %d out of range", inc.Contract)
		}
		if inc.Kind == chain.AssetERC721 && inc.NFTCount == 0 {
			t.Error("NFT incident with zero count")
		}
		// Fallback contracts only split for their dedicated affiliate.
		cp := fam.Contracts[inc.Contract]
		if cp.Affiliate >= 0 && inc.Kind != chain.AssetERC20 && cp.Affiliate != inc.Affiliate {
			t.Errorf("non-ERC20 incident routed through foreign dedicated contract")
		}
	}
}

func TestPlanSeedLabelsCoverHighVolume(t *testing.T) {
	p, err := NewPlan(TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	labeled, total := 0, 0
	var labeledTxs, totalTxs int
	for _, fam := range p.Families {
		for _, cp := range fam.Contracts {
			total++
			totalTxs += cp.PlannedTxs
			if len(cp.LabeledBy) > 0 {
				labeled++
				labeledTxs += cp.PlannedTxs
			}
		}
	}
	if labeled == 0 || labeled >= total {
		t.Fatalf("labeled %d of %d contracts", labeled, total)
	}
	if float64(labeledTxs) < 0.4*float64(totalTxs) {
		t.Errorf("seed covers only %d/%d txs", labeledTxs, totalTxs)
	}
}

func TestBuildSmallWorld(t *testing.T) {
	w, err := Generate(TestConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Truth.ProfitTxs) != len(w.Plan.Incidents) {
		t.Errorf("profit txs %d != incidents %d", len(w.Truth.ProfitTxs), len(w.Plan.Incidents))
	}
	// Every recorded profit tx must exist with a successful receipt and
	// carry a ratio-consistent two-way split.
	checked := 0
	for h, inc := range w.Truth.ProfitTxs {
		r, err := w.Chain.Receipt(h)
		if err != nil {
			t.Fatalf("profit tx missing: %v", err)
		}
		if !r.Status {
			t.Fatalf("profit tx failed: %s", r.Err)
		}
		fam := w.Plan.Families[inc.Family]
		op := fam.Operators[inc.Operator].Addr
		var opGain bool
		for _, tr := range r.Transfers {
			if tr.To == op {
				opGain = true
			}
		}
		if !opGain {
			t.Errorf("profit tx %s has no operator leg", h)
		}
		checked++
		if checked > 50 {
			break
		}
	}
	// Victim loss bookkeeping matches incident count.
	var totalIncidents int
	for _, n := range w.Truth.VictimIncidents {
		totalIncidents += n
	}
	if totalIncidents != len(w.Plan.Incidents) {
		t.Errorf("victim incident sum %d != %d", totalIncidents, len(w.Plan.Incidents))
	}
	// Benign negatives exist.
	if len(w.Truth.BenignSplitTxs) == 0 || len(w.Truth.CollidingSplitters) == 0 {
		t.Error("no benign splitter negatives planted")
	}
	// Labels: some contracts publicly reported, coverage partial.
	seeds := w.Labels.AllPhishing()
	if len(seeds) == 0 {
		t.Fatal("no public phishing reports")
	}
	daas := w.Truth.DaaSAccountCount()
	etherscanLabeled := 0
	for addr := range w.Truth.ContractFamily {
		if w.Labels.Has(addr, labels.SourceEtherscan) {
			etherscanLabeled++
		}
	}
	if etherscanLabeled == 0 || etherscanLabeled == daas {
		t.Errorf("etherscan coverage degenerate: %d of %d", etherscanLabeled, daas)
	}
}

func TestBuildDeterminism(t *testing.T) {
	w1, err := Generate(TestConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(TestConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if w1.Chain.TxCount() != w2.Chain.TxCount() {
		t.Errorf("tx counts differ: %d vs %d", w1.Chain.TxCount(), w2.Chain.TxCount())
	}
	for h := range w1.Truth.ProfitTxs {
		if _, ok := w2.Truth.ProfitTxs[h]; !ok {
			t.Fatal("profit tx hashes differ across identical seeds")
		}
	}
}

func TestLossDistributionShape(t *testing.T) {
	p, err := NewPlan(TestConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	var under1k, total int
	for _, inc := range p.Incidents {
		total++
		if inc.LossUSD < 1000 {
			under1k++
		}
	}
	frac := float64(under1k) / float64(total)
	// Paper: 83.5% of victims below $1,000. Allow slack for the small
	// test scale and whale rescaling.
	if frac < 0.6 || frac > 0.95 {
		t.Errorf("losses under $1k = %.1f%%, want roughly 80%%", frac*100)
	}
}

// TestPermitScheme verifies the §7.2 permit theft path: the allowance
// is granted inside the drainer's multicall, so permit victims sign no
// on-chain transaction at all, yet the theft still classifies as
// profit-sharing.
func TestPermitScheme(t *testing.T) {
	cfg := TestConfig(555)
	cfg.PermitFraction = 1.0 // every non-simultaneous ERC-20 theft uses permit
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	permits := 0
	for h, inc := range w.Truth.ProfitTxs {
		if !inc.Permit {
			continue
		}
		permits++
		r, err := w.Chain.Receipt(h)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Status {
			t.Fatalf("permit theft failed: %s", r.Err)
		}
		// The split tx must carry both the approval (from the permit
		// step) and the two pulls.
		if len(r.Approvals) == 0 {
			t.Error("permit multicall recorded no approval")
		}
		// A single-incident permit victim signed nothing: every tx in
		// their history was initiated by someone else. (Multi-phished
		// victims may have signed for their other, non-permit
		// incidents.)
		if w.Truth.VictimIncidents[inc.Victim] == 1 {
			for _, th := range w.Chain.TransactionsOf(inc.Victim) {
				tx, err := w.Chain.Transaction(th)
				if err != nil {
					t.Fatal(err)
				}
				if tx.From == inc.Victim {
					t.Fatalf("permit victim %s signed tx %s", inc.Victim.Short(), th)
				}
			}
		}
	}
	if permits == 0 {
		t.Fatal("no permit incidents generated at PermitFraction=1")
	}
}
