package worldgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/ethtypes"
)

// Plan is the deterministic description of a world before any
// transaction executes. Equal (Config, Seed) produce equal plans.
type Plan struct {
	Config    Config
	Families  []*FamilyPlan
	Incidents []*Incident // sorted by time
	Benign    BenignPlan
	Scam      ScamPlan
	Tokens    []TokenPlan
	NFTs      []CollectionPlan
}

// FamilyPlan holds one family's planned population.
type FamilyPlan struct {
	Index  int
	Params FamilyParams

	Operators  []*OperatorPlan
	Affiliates []*AffiliatePlan
	Contracts  []*ContractPlan
	// Links are the planned operator-to-operator connections that the
	// clustering stage must recover.
	Links []OperatorLink
}

// OperatorPlan is one operator account.
type OperatorPlan struct {
	Addr   ethtypes.Address
	Weight float64
	Start  time.Time
	End    time.Time
}

// AffiliatePlan is one affiliate account with its operator
// associations (indices into the family's Operators).
type AffiliatePlan struct {
	Addr      ethtypes.Address
	Weight    float64
	Operators []int
	// Contracts indexes fallback-style contracts dedicated to this
	// affiliate (empty for claim-style families or low-tier affiliates).
	Contracts []int
}

// ContractPlan is one profit-sharing contract deployment.
type ContractPlan struct {
	Operator  int
	Affiliate int // -1 unless a fallback-style dedicated contract
	RatioPM   int64
	Start     time.Time
	End       time.Time
	// Labeled marks membership in the public seed (set during seed
	// selection).
	LabeledBy []string
	// PlannedTxs counts incidents routed through this contract.
	PlannedTxs int
}

// OperatorLink is a planned clustering edge between two operators of
// the same family.
type OperatorLink struct {
	A, B int
	// ViaSharedAccount links through a common Etherscan-labeled
	// phishing EOA instead of a direct transfer (§7.1's second edge
	// type).
	ViaSharedAccount bool
}

// Incident is one victim theft event.
type Incident struct {
	Time      time.Time
	Family    int
	Operator  int
	Affiliate int
	Contract  int
	Victim    ethtypes.Address
	Kind      chain.AssetKind
	LossUSD   float64
	// Repeat is 0 for the victim's first incident.
	Repeat int
	// Simultaneous first incidents sign two phishing approvals in one
	// block (§6.1).
	Simultaneous bool
	// Revoke schedules a later approval revocation (§6.1 complement of
	// the 28.6% unrevoked).
	Revoke bool
	// Permit marks an ERC-20 theft that uses the §7.2 permit scheme:
	// allowance granted inside the drainer's own multicall, no
	// victim-signed approval transaction.
	Permit bool
	// TokenIdx selects the stolen ERC-20; CollectionIdx/NFTCount the
	// stolen NFTs.
	TokenIdx      int
	CollectionIdx int
	NFTCount      int
}

// BenignPlan sizes the background traffic.
type BenignPlan struct {
	Transfers []BenignTransfer
	Splitters []SplitterPlan
}

// BenignTransfer is a plain payment between uninvolved accounts.
type BenignTransfer struct {
	Time      time.Time
	From, To  ethtypes.Address
	AmountUSD float64
}

// SplitterPlan is a benign payment-splitting contract. Colliding
// splitters use a ratio from the drainer set — adversarial negatives
// that only the snowball expansion gate keeps out of the dataset.
type SplitterPlan struct {
	Payer     ethtypes.Address
	PartyA    ethtypes.Address
	PartyB    ethtypes.Address
	RatioPM   int64
	Colliding bool
	Payments  []time.Time
	PayUSD    float64
}

// TokenPlan describes an ERC-20 used in thefts.
type TokenPlan struct {
	Symbol   string
	Decimals int
	USD      float64
	Weight   float64
}

// CollectionPlan describes an NFT collection with a floor price.
type CollectionPlan struct {
	Symbol   string
	FloorUSD float64
}

func defaultTokens() []TokenPlan {
	return []TokenPlan{
		{Symbol: "USDC", Decimals: 6, USD: 1.0, Weight: 55},
		{Symbol: "USDT", Decimals: 6, USD: 1.0, Weight: 30},
		{Symbol: "stWETH", Decimals: 18, USD: 2400, Weight: 15},
	}
}

func defaultCollections() []CollectionPlan {
	return []CollectionPlan{
		{Symbol: "MINIPUNK", FloorUSD: 150},
		{Symbol: "AZK", FloorUSD: 900},
		{Symbol: "CLONEZ", FloorUSD: 4800},
		{Symbol: "BORYC", FloorUSD: 12000},
	}
}

// NewPlan builds the deterministic world plan for cfg.
func NewPlan(cfg Config) (*Plan, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("worldgen: scale must be positive, got %v", cfg.Scale)
	}
	if len(cfg.Families) == 0 {
		cfg.Families = DefaultFamilies()
	}
	if len(cfg.RatioMix) == 0 {
		cfg.RatioMix = DefaultRatioMix()
	}
	if len(cfg.LossBuckets) == 0 {
		cfg.LossBuckets = DefaultLossBuckets()
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))

	p := &Plan{Config: cfg, Tokens: defaultTokens(), NFTs: defaultCollections()}

	for fi, fp := range cfg.Families {
		fam, err := planFamily(cfg, rng, fi, fp)
		if err != nil {
			return nil, err
		}
		p.Families = append(p.Families, fam)
	}
	p.planIncidents(rng)
	p.planSeedLabels(rng)
	p.planBenign(rng)
	p.planScam(rng)

	sort.SliceStable(p.Incidents, func(i, j int) bool {
		return p.Incidents[i].Time.Before(p.Incidents[j].Time)
	})
	return p, nil
}

// randomAddr draws a fresh EOA address.
func randomAddr(rng *rand.Rand) ethtypes.Address {
	var a ethtypes.Address
	for i := range a {
		a[i] = byte(rng.UintN(256))
	}
	return a
}

// powerWeights returns normalized 1/(i+1)^s weights.
func powerWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// cumulative converts weights to a cumulative distribution.
func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	var acc float64
	for i, v := range w {
		acc += v
		out[i] = acc
	}
	// Normalize against accumulated rounding.
	for i := range out {
		out[i] /= acc
	}
	return out
}

// pick draws an index from a cumulative distribution.
func pick(rng *rand.Rand, cum []float64) int {
	u := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// logUniform draws from [lo, hi) with log-uniform density.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// randTimeIn draws a uniform instant in [start, end).
func randTimeIn(rng *rand.Rand, start, end time.Time) time.Time {
	span := end.Sub(start)
	if span <= 0 {
		return start
	}
	return start.Add(time.Duration(rng.Int64N(int64(span))))
}

func planFamily(cfg Config, rng *rand.Rand, index int, fp FamilyParams) (*FamilyPlan, error) {
	fam := &FamilyPlan{Index: index, Params: fp}
	nOps := cfg.scaled(fp.Operators)
	nAff := cfg.scaled(fp.Affiliates)
	nCon := cfg.scaled(fp.Contracts)

	// Operators: the dominant one spans the whole family window; the
	// rest get sub-windows, some as short as two days (§6.2).
	opW := powerWeights(nOps, 1.2)
	for i := 0; i < nOps; i++ {
		addr := randomAddr(rng)
		if i == 0 && len(fp.OperatorPrefix) > 0 {
			copy(addr[:], fp.OperatorPrefix)
		}
		op := &OperatorPlan{Addr: addr, Weight: opW[i], Start: fp.Start, End: fp.End}
		if i > 0 {
			// Sub-window: 2 days .. full span.
			span := fp.End.Sub(fp.Start)
			minSpan := 48 * time.Hour
			if span > minSpan {
				length := minSpan + time.Duration(rng.Int64N(int64(span-minSpan)))
				op.Start = randTimeIn(rng, fp.Start, fp.End.Add(-length))
				op.End = op.Start.Add(length)
			}
		}
		fam.Operators = append(fam.Operators, op)
	}

	// Affiliates: power-law traffic weights, 1–5 operator associations
	// with the §6.3 distribution (60.4% single, 90.2% ≤ 3).
	affW := powerWeights(nAff, 0.8)
	assocCum := cumulative([]float64{0.604, 0.18, 0.118, 0.06, 0.038})
	opCum := cumulative(opW)
	for i := 0; i < nAff; i++ {
		aff := &AffiliatePlan{Addr: randomAddr(rng), Weight: affW[i]}
		k := pick(rng, assocCum) + 1
		if k > nOps {
			k = nOps
		}
		seen := make(map[int]bool)
		for len(aff.Operators) < k {
			oi := pick(rng, opCum)
			if !seen[oi] {
				seen[oi] = true
				aff.Operators = append(aff.Operators, oi)
			}
		}
		sort.Ints(aff.Operators)
		fam.Affiliates = append(fam.Affiliates, aff)
	}

	// Contracts: distributed over operators by weight; each operator's
	// contracts tile its window in sequence with slight overlap, so
	// primary contracts live long and accumulate most transactions.
	ratioCum := cumulative(ratioWeights(cfg.RatioMix))
	perOp := distributeCounts(nCon, opW, rng)
	isFallback := fp.Style == contracts.StyleFallback
	for oi, cnt := range perOp {
		op := fam.Operators[oi]
		if cnt == 0 {
			continue
		}
		span := op.End.Sub(op.Start)
		seg := span / time.Duration(cnt)
		for c := 0; c < cnt; c++ {
			start := op.Start.Add(time.Duration(c) * seg)
			// The initial draw is a placeholder; apportionRatios
			// reassigns ratios volume-weighted once incident routing is
			// known, so the per-transaction mix matches §4.3.
			cp := &ContractPlan{
				Operator:  oi,
				Affiliate: -1,
				RatioPM:   cfg.RatioMix[pick(rng, ratioCum)].PerMille,
				Start:     start,
				End:       start.Add(seg + seg/4),
			}
			if cp.End.After(op.End) {
				cp.End = op.End
			}
			fam.Contracts = append(fam.Contracts, cp)
		}
	}
	// Fallback-style contracts are customized per affiliate: dedicate
	// each to one of the operator's top affiliates.
	if isFallback {
		for ci, cp := range fam.Contracts {
			ai := fam.affiliateForOperator(rng, cp.Operator, len(fam.Contracts), ci)
			cp.Affiliate = ai
			fam.Affiliates[ai].Contracts = append(fam.Affiliates[ai].Contracts, ci)
		}
	}

	// Clustering links: a spanning chain over operators, alternating
	// direct transfers and shared labeled phishing accounts.
	for i := 1; i < nOps; i++ {
		fam.Links = append(fam.Links, OperatorLink{
			A: i - 1, B: i, ViaSharedAccount: i%2 == 0,
		})
	}
	return fam, nil
}

// affiliateForOperator picks a top affiliate associated with operator
// oi to own a dedicated contract, falling back to forcing an
// association when the operator has none.
func (f *FamilyPlan) affiliateForOperator(rng *rand.Rand, oi, total, salt int) int {
	// Prefer affiliates already associated with the operator, highest
	// weight first.
	best := -1
	for ai, aff := range f.Affiliates {
		for _, o := range aff.Operators {
			if o == oi {
				if best == -1 {
					best = ai
				}
				// Spread contracts across the operator's affiliates.
				if (ai+salt)%3 == 0 {
					return ai
				}
			}
		}
	}
	if best >= 0 {
		return best
	}
	// Force an association on a random affiliate.
	ai := rng.IntN(len(f.Affiliates))
	f.Affiliates[ai].Operators = append(f.Affiliates[ai].Operators, oi)
	return ai
}

func ratioWeights(mix []RatioWeight) []float64 {
	out := make([]float64, len(mix))
	for i, r := range mix {
		out[i] = r.Weight
	}
	return out
}

// distributeCounts splits total into len(weights) buckets proportional
// to the weights, each bucket getting at least one while total allows.
func distributeCounts(total int, weights []float64, rng *rand.Rand) []int {
	out := make([]int, len(weights))
	if total <= 0 {
		return out
	}
	// Guarantee minimum coverage.
	remaining := total
	for i := range out {
		if remaining == 0 {
			break
		}
		out[i] = 1
		remaining--
	}
	for remaining > 0 {
		cum := cumulative(weights)
		out[pick(rng, cum)]++
		remaining--
	}
	return out
}
