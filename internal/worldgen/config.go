// Package worldgen generates the synthetic DaaS world the measurement
// pipeline is evaluated against. It substitutes for the paper's raw
// inputs (Ethereum mainnet history, March 2023 – April 2025) by
// planting nine DaaS families with the population sizes, profit totals,
// ratio mix, loss distribution, and active windows reported in the
// paper (Table 2, §4.3, Fig. 6), then executing every theft through
// real profit-sharing contracts on the simulated chain, interleaved
// with benign background traffic containing adversarial negatives.
//
// Generation is two-phase: Plan builds a pure in-memory description
// (deterministic given the seed), Build executes the plan on a chain.
package worldgen

import (
	"time"

	"repro/internal/contracts"
)

// DatasetStart and DatasetEnd bound the study window (paper §5.2).
var (
	DatasetStart = time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	DatasetEnd   = time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC)
)

// FamilyParams configures one DaaS family, mirroring a column of the
// paper's Table 2.
type FamilyParams struct {
	// Key is the short internal identifier.
	Key string
	// EtherscanName is the public family label ("Angel Drainer");
	// empty for unnamed families, which reports must name by operator
	// address prefix (paper §7.1).
	EtherscanName string
	// Style is the family's profit-sharing contract template.
	Style contracts.Style
	// Population sizes at scale 1.0.
	Contracts, Operators, Affiliates, Victims int
	// ProfitUSD is the family's total stolen value (operator +
	// affiliate shares).
	ProfitUSD float64
	// Active window.
	Start, End time.Time
	// OperatorPrefix forces the leading bytes of the dominant operator
	// account (used by the unnamed 0x0000b6 family).
	OperatorPrefix []byte
}

func ym(y int, m time.Month) time.Time { return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC) }

// DefaultFamilies reproduces Table 2. Two cells of the table's
// contract/operator rows are illegible in the source scan; the values
// here are chosen so the columns sum to the paper's stated totals
// (1,910 contracts, 56 operators) — see EXPERIMENTS.md.
func DefaultFamilies() []FamilyParams {
	return []FamilyParams{
		{Key: "angel", EtherscanName: "Angel Drainer", Style: contracts.StyleClaim,
			Contracts: 1239, Operators: 29, Affiliates: 3338, Victims: 37755,
			ProfitUSD: 53_100_000, Start: ym(2023, 4), End: DatasetEnd},
		{Key: "inferno", EtherscanName: "Inferno Drainer", Style: contracts.StyleFallback,
			Contracts: 435, Operators: 7, Affiliates: 1958, Victims: 32740,
			ProfitUSD: 59_000_000, Start: ym(2023, 5), End: ym(2024, 11)},
		{Key: "pink", EtherscanName: "Pink Drainer", Style: contracts.StyleNetworkMerge,
			Contracts: 94, Operators: 10, Affiliates: 279, Victims: 2814,
			ProfitUSD: 14_700_000, Start: ym(2023, 4), End: ym(2024, 5)},
		{Key: "ace", EtherscanName: "Ace Drainer", Style: contracts.StyleClaim,
			Contracts: 2, Operators: 2, Affiliates: 335, Victims: 1879,
			ProfitUSD: 3_100_000, Start: ym(2023, 10), End: DatasetEnd},
		{Key: "pussy", EtherscanName: "Pussy Drainer", Style: contracts.StyleClaim,
			Contracts: 6, Operators: 1, Affiliates: 30, Victims: 537,
			ProfitUSD: 1_100_000, Start: ym(2023, 3), End: ym(2023, 10)},
		{Key: "venom", EtherscanName: "Venom Drainer", Style: contracts.StyleFallback,
			Contracts: 130, Operators: 2, Affiliates: 77, Victims: 491,
			ProfitUSD: 1_300_000, Start: ym(2023, 4), End: ym(2023, 8)},
		{Key: "medusa", EtherscanName: "Medusa Drainer", Style: contracts.StyleClaim,
			Contracts: 2, Operators: 3, Affiliates: 56, Victims: 306,
			ProfitUSD: 2_500_000, Start: ym(2024, 5), End: DatasetEnd},
		{Key: "0x0000b6", EtherscanName: "", Style: contracts.StyleFallback,
			Contracts: 1, Operators: 1, Affiliates: 8, Victims: 43,
			ProfitUSD: 100_000, Start: ym(2023, 7), End: ym(2023, 8),
			OperatorPrefix: []byte{0x00, 0x00, 0xb6}},
		{Key: "spawn", EtherscanName: "Spawn Drainer", Style: contracts.StyleClaim,
			Contracts: 1, Operators: 1, Affiliates: 6, Victims: 17,
			ProfitUSD: 10_000, Start: ym(2023, 5), End: ym(2023, 9)},
	}
}

// RatioWeight pairs an operator share (per-mille) with its share of all
// profit-sharing transactions (§4.3: 20% → 46.0%, 15% → 19.3%,
// 17.5% → 9.2%; the remaining quarter spreads over the other observed
// ratios).
type RatioWeight struct {
	PerMille int64
	Weight   float64
}

// DefaultRatioMix is the §4.3 transaction-ratio distribution.
func DefaultRatioMix() []RatioWeight {
	return []RatioWeight{
		{200, 46.0}, {150, 19.3}, {175, 9.2},
		{100, 6.0}, {125, 5.0}, {250, 5.0},
		{300, 4.5}, {330, 3.0}, {400, 2.0},
	}
}

// LossBucket describes one band of the victim-loss distribution
// (Fig. 6). Amounts are drawn log-uniformly within the band.
type LossBucket struct {
	LoUSD, HiUSD float64
	Weight       float64
}

// DefaultLossBuckets is calibrated so that, after affiliate-tier loss
// gating (worldgen demotes whale losses drawn for low-tier affiliates)
// the measured distribution reproduces Fig. 6: 50.9% below $100, 32.6%
// in $100–1,000, 10.9% in $1,000–5,000, 5.6% above $5,000.
func DefaultLossBuckets() []LossBucket {
	return []LossBucket{
		{5, 100, 46.0},
		{100, 1000, 31.5},
		{1000, 5000, 13.5},
		{5000, 60000, 9.0},
	}
}

// AssetMix weights the three theft scenarios of Fig. 3.
type AssetMix struct {
	ETH, ERC20, NFT float64
}

// Config controls world generation.
type Config struct {
	// Seed drives every random choice; equal seeds give identical
	// worlds.
	Seed uint64
	// Scale multiplies all population counts. 1.0 is paper scale
	// (87,077 profit-sharing transactions); tests use ~0.01.
	Scale float64
	// Families defaults to DefaultFamilies().
	Families []FamilyParams
	// RatioMix defaults to DefaultRatioMix().
	RatioMix []RatioWeight
	// LossBuckets defaults to DefaultLossBuckets().
	LossBuckets []LossBucket
	// Assets defaults to 50/35/15 ETH/ERC-20/NFT.
	Assets AssetMix
	// MultiPhishFraction is the share of victims phished more than
	// once (§6.1: 8,856 / 76,582 ≈ 11.6%).
	MultiPhishFraction float64
	// SimultaneousFraction is the share of multi-phished victims whose
	// first incident signs several phishing transactions in one block
	// (§6.1: 78.1%).
	SimultaneousFraction float64
	// UnrevokedFraction is the share of multi-phished victims who never
	// revoke their token approvals (§6.1: 28.6%).
	UnrevokedFraction float64
	// BenignTransfers, BenignSplitters size the background traffic at
	// scale 1.0. Splitters include ratio-colliding negatives.
	BenignTransfers int
	BenignSplitters int
	// PermitFraction is the share of ERC-20 thefts executed through
	// the permit scheme (§7.2): the victim's consent is harvested
	// off-chain and the drainer's multicall both grants and spends the
	// allowance, so the victim never signs an on-chain transaction.
	// Default 0 keeps the calibrated §6.1 victim-event statistics; set
	// it to explore permit-heavy ecosystems.
	PermitFraction float64
	// EtherscanCoverage is the fraction of DaaS accounts carrying an
	// Etherscan label (§8.1: 10.8%).
	EtherscanCoverage float64
	// SeedContractTarget is the number of profit-sharing contracts
	// labeled by at least one public source at scale 1.0 (Table 1: 391
	// seed contracts).
	SeedContractTarget int
	// ApprovalPhishers, Pyramids, DrainerClones size the scam-shape
	// populations the static fingerprint engine is scored against, at
	// scale 1.0. BenignLookalikes sizes each adversarial-negative kind
	// (payment routers, allowance helpers, airdrops, benign clones).
	ApprovalPhishers int
	Pyramids         int
	DrainerClones    int
	BenignLookalikes int
}

// DefaultConfig returns the paper-scale configuration with the given
// seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                 seed,
		Scale:                1.0,
		Families:             DefaultFamilies(),
		RatioMix:             DefaultRatioMix(),
		LossBuckets:          DefaultLossBuckets(),
		Assets:               AssetMix{ETH: 50, ERC20: 35, NFT: 15},
		MultiPhishFraction:   0.1156,
		SimultaneousFraction: 0.781,
		UnrevokedFraction:    0.286,
		BenignTransfers:      30000,
		BenignSplitters:      40,
		EtherscanCoverage:    0.108,
		SeedContractTarget:   391,
		ApprovalPhishers:     24,
		Pyramids:             8,
		DrainerClones:        30,
		BenignLookalikes:     10,
	}
}

// TestConfig returns a small, fast configuration for unit tests.
func TestConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.01
	cfg.BenignTransfers = 300
	cfg.BenignSplitters = 6
	return cfg
}

// scaled applies the configured scale to a count, keeping at least one
// when the unscaled count was positive.
func (c Config) scaled(n int) int {
	if n <= 0 {
		return 0
	}
	s := int(float64(n) * c.Scale)
	if s < 1 {
		s = 1
	}
	return s
}
