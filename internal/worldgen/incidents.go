package worldgen

import (
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
)

// planIncidents draws every theft event: victims, repeat victims, loss
// amounts (Fig. 6 mixture scaled to family totals), asset kinds, and
// routing through affiliates, operators, and contracts.
func (p *Plan) planIncidents(rng *rand.Rand) {
	cfg := p.Config
	lossCum := cumulative(bucketWeights(cfg.LossBuckets))
	assetCum := cumulative([]float64{cfg.Assets.ETH, cfg.Assets.ERC20, cfg.Assets.NFT})
	tokenCum := cumulative(tokenWeights(p.Tokens))

	for fi, fam := range p.Families {
		nVictims := cfg.scaled(fam.Params.Victims)
		affCum := cumulative(affiliateWeights(fam.Affiliates))

		var familyIncidents []*Incident
		for v := 0; v < nVictims; v++ {
			victim := randomAddr(rng)
			repeats := 0
			if rng.Float64() < cfg.MultiPhishFraction {
				repeats = 1
				if rng.Float64() < 0.18 {
					repeats = 2
				}
			}
			simultaneous := repeats > 0 && rng.Float64() < cfg.SimultaneousFraction
			revoke := !(repeats > 0 && rng.Float64() < cfg.UnrevokedFraction)

			for r := 0; r <= repeats; r++ {
				inc := &Incident{
					Family:       fi,
					Victim:       victim,
					Repeat:       r,
					Simultaneous: r == 0 && simultaneous,
					Revoke:       revoke,
				}
				p.routeIncident(rng, fam, inc, affCum)
				inc.LossUSD = p.drawTieredLoss(rng, fam, inc, lossCum)
				p.assignAsset(rng, fam, inc, assetCum, tokenCum)
				familyIncidents = append(familyIncidents, inc)
			}
		}
		// Every deployed contract must see at least one theft: Table 2
		// counts *profit-sharing* contracts, which are defined by their
		// transactions.
		used := make(map[int]bool)
		for _, inc := range familyIncidents {
			used[inc.Contract] = true
		}
		for ci, cp := range fam.Contracts {
			if used[ci] {
				continue
			}
			affIdx := cp.Affiliate
			if affIdx < 0 {
				affIdx = fam.affiliateForOperator(rng, cp.Operator, len(fam.Contracts), ci)
			}
			inc := &Incident{
				Family:    fi,
				Victim:    randomAddr(rng),
				Affiliate: affIdx,
				Operator:  cp.Operator,
				Contract:  ci,
				Time:      randTimeIn(rng, cp.Start, cp.End),
				Kind:      chain.AssetETH,
				LossUSD:   drawLoss(rng, cfg.LossBuckets, lossCum),
				Revoke:    true,
			}
			if cp.Affiliate >= 0 && cp.Affiliate != inc.Affiliate {
				inc.Kind = chain.AssetERC20
				inc.TokenIdx = pick(rng, tokenCum)
			}
			familyIncidents = append(familyIncidents, inc)
		}

		scaleToTarget(familyIncidents, fam.Params.ProfitUSD*cfg.Scale)
		p.Incidents = append(p.Incidents, familyIncidents...)

		// Count planned transactions per contract for seed selection.
		for _, inc := range familyIncidents {
			fam.Contracts[inc.Contract].PlannedTxs++
		}
	}
	p.apportionRatios()
}

// apportionRatios assigns operator-share ratios to contracts so that
// the transaction-weighted ratio distribution matches the §4.3 target
// at any scale: contracts are taken in descending volume order, each
// receiving the ratio with the largest remaining transaction deficit.
func (p *Plan) apportionRatios() {
	type ref struct {
		fam, ci, txs int
	}
	var all []ref
	total := 0
	for fi, fam := range p.Families {
		for ci, cp := range fam.Contracts {
			all = append(all, ref{fi, ci, cp.PlannedTxs})
			total += cp.PlannedTxs
		}
	}
	if total == 0 {
		return
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].txs > all[j].txs })

	mix := p.Config.RatioMix
	var weightSum float64
	for _, rw := range mix {
		weightSum += rw.Weight
	}
	assigned := make([]float64, len(mix))
	for _, r := range all {
		// Pick the ratio with the largest deficit against its target.
		best, bestDeficit := 0, -1.0
		for i, rw := range mix {
			target := rw.Weight / weightSum * float64(total)
			deficit := target - assigned[i]
			if deficit > bestDeficit {
				best, bestDeficit = i, deficit
			}
		}
		p.Families[r.fam].Contracts[r.ci].RatioPM = mix[best].PerMille
		assigned[best] += float64(r.txs)
	}
}

// routeIncident picks affiliate, operator, contract, and time.
func (p *Plan) routeIncident(rng *rand.Rand, fam *FamilyPlan, inc *Incident, affCum []float64) {
	inc.Affiliate = pick(rng, affCum)
	aff := fam.Affiliates[inc.Affiliate]
	inc.Operator = aff.Operators[rng.IntN(len(aff.Operators))]
	op := fam.Operators[inc.Operator]
	inc.Time = randTimeIn(rng, op.Start, op.End)

	// Contract: for fallback-style families, prefer the affiliate's own
	// contract; otherwise any of the operator's contracts active at the
	// chosen time.
	if len(aff.Contracts) > 0 {
		inc.Contract = aff.Contracts[rng.IntN(len(aff.Contracts))]
		// Re-center the time inside the contract's life.
		cp := fam.Contracts[inc.Contract]
		inc.Time = randTimeIn(rng, cp.Start, cp.End)
		inc.Operator = cp.Operator
		return
	}
	// Half of all traffic runs through the operator's long-lived
	// primary contract, the rest through the rotation active at the
	// time — matching the paper's volume concentration (391 contracts
	// carry 57% of transactions) and its >100-tx primary contracts.
	if rng.Float64() < 0.5 {
		if primary := fam.anyContractOf(inc.Operator); primary >= 0 {
			cp := fam.Contracts[primary]
			if cp.Operator == inc.Operator && !inc.Time.Before(cp.Start) {
				inc.Contract = primary
				return
			}
		}
	}
	inc.Contract = fam.contractAt(inc.Operator, inc.Time)
	if inc.Contract < 0 {
		// The operator has no contract alive then; borrow the family's
		// dominant operator's schedule.
		inc.Operator = 0
		inc.Time = randTimeIn(rng, fam.Operators[0].Start, fam.Operators[0].End)
		inc.Contract = fam.contractAt(0, inc.Time)
		if inc.Contract < 0 {
			inc.Contract = fam.anyContractOf(0)
		}
	}
}

// drawTieredLoss draws a victim loss with affiliate-tier gating: the
// drainer leveling systems of §7.2 put high-value victims in the hands
// of top affiliates, so whale losses are demoted to small ones when
// they land on low-tier affiliates. The bucket base weights in
// DefaultLossBuckets are calibrated so the post-gating global mixture
// reproduces Fig. 6.
func (p *Plan) drawTieredLoss(rng *rand.Rand, fam *FamilyPlan, inc *Incident, lossCum []float64) float64 {
	loss := drawLoss(rng, p.Config.LossBuckets, lossCum)
	q := float64(inc.Affiliate) / float64(len(fam.Affiliates)) // 0 = top tier
	if (loss >= 5000 && q > 0.15) || (loss >= 1000 && q > 0.45) {
		loss = logUniform(rng, 5, 400)
	}
	return loss
}

// assignAsset chooses the theft scenario. Fallback-style families can
// only steal ETH/NFTs through affiliate-dedicated contracts, so
// affiliates without one are routed to ERC-20 theft (the multicall
// path pays arbitrary affiliates).
func (p *Plan) assignAsset(rng *rand.Rand, fam *FamilyPlan, inc *Incident, assetCum, tokenCum []float64) {
	kindIdx := pick(rng, assetCum)
	aff := fam.Affiliates[inc.Affiliate]
	fallbackStyle := fam.Contracts[inc.Contract].Affiliate >= 0
	dedicated := false
	for _, ci := range aff.Contracts {
		if ci == inc.Contract {
			dedicated = true
		}
	}
	switch kindIdx {
	case 0:
		inc.Kind = chain.AssetETH
	case 1:
		inc.Kind = chain.AssetERC20
	default:
		inc.Kind = chain.AssetERC721
	}
	if fallbackStyle && !dedicated && inc.Kind != chain.AssetERC20 {
		inc.Kind = chain.AssetERC20
	}
	// Simultaneous multi-signing happens through token approvals, so a
	// simultaneous first incident is always an ERC-20 theft.
	if inc.Simultaneous {
		inc.Kind = chain.AssetERC20
	}
	// NFT thefts only make sense above the cheapest collection floor;
	// rounding smaller losses up to a floor price would distort the
	// Fig. 6 small-loss bucket.
	if inc.Kind == chain.AssetERC721 && inc.LossUSD < p.NFTs[0].FloorUSD {
		inc.Kind = chain.AssetETH
	}
	switch inc.Kind {
	case chain.AssetERC20:
		inc.TokenIdx = pick(rng, tokenCum)
		if !inc.Simultaneous && rng.Float64() < p.Config.PermitFraction {
			inc.Permit = true
		}
	case chain.AssetERC721:
		// Choose the richest collection the loss can buy; round the
		// loss to a whole number of items.
		best := 0
		for i, col := range p.NFTs {
			if col.FloorUSD <= inc.LossUSD {
				best = i
			}
		}
		col := p.NFTs[best]
		count := int(inc.LossUSD / col.FloorUSD)
		if count < 1 {
			count = 1
		}
		if count > 5 {
			count = 5
		}
		inc.CollectionIdx = best
		inc.NFTCount = count
		inc.LossUSD = float64(count) * col.FloorUSD
	}
}

// contractAt returns the operator's contract alive at t, or -1.
func (f *FamilyPlan) contractAt(op int, t time.Time) int {
	for ci, cp := range f.Contracts {
		if cp.Operator == op && !t.Before(cp.Start) && t.Before(cp.End) {
			return ci
		}
	}
	return -1
}

// anyContractOf returns some contract of the operator, or the family's
// first contract.
func (f *FamilyPlan) anyContractOf(op int) int {
	for ci, cp := range f.Contracts {
		if cp.Operator == op {
			return ci
		}
	}
	return 0
}

func bucketWeights(buckets []LossBucket) []float64 {
	out := make([]float64, len(buckets))
	for i, b := range buckets {
		out[i] = b.Weight
	}
	return out
}

func tokenWeights(tokens []TokenPlan) []float64 {
	out := make([]float64, len(tokens))
	for i, t := range tokens {
		out[i] = t.Weight
	}
	return out
}

func affiliateWeights(affs []*AffiliatePlan) []float64 {
	out := make([]float64, len(affs))
	for i, a := range affs {
		out[i] = a.Weight
	}
	return out
}

func drawLoss(rng *rand.Rand, buckets []LossBucket, cum []float64) float64 {
	b := buckets[pick(rng, cum)]
	return logUniform(rng, b.LoUSD, b.HiUSD)
}

// scaleToTarget adjusts incident losses so the family total matches the
// Table 2 profit target. The adjustment lands on the whale bucket
// (losses above $5,000) so the Fig. 6 bucket shares stay intact; if the
// whales cannot absorb it, everything scales uniformly.
func scaleToTarget(incidents []*Incident, targetUSD float64) {
	if len(incidents) == 0 || targetUSD <= 0 {
		return
	}
	var total, whaleTotal float64
	for _, inc := range incidents {
		total += inc.LossUSD
		if inc.LossUSD > 5000 && inc.Kind != chain.AssetERC721 {
			whaleTotal += inc.LossUSD
		}
	}
	diff := targetUSD - total
	if whaleTotal > 0 {
		factor := (whaleTotal + diff) / whaleTotal
		if factor > 0.2 { // keep whales above the bucket floor
			for _, inc := range incidents {
				if inc.LossUSD > 5000 && inc.Kind != chain.AssetERC721 {
					inc.LossUSD *= factor
					if inc.LossUSD < 5001 {
						inc.LossUSD = 5001
					}
				}
			}
			return
		}
	}
	// Uniform fallback.
	factor := targetUSD / total
	for _, inc := range incidents {
		inc.LossUSD *= factor
	}
}

// planSeedLabels marks the publicly labeled contracts: highest-volume
// first (public reporting follows damage) until both the count target
// and a 55–60% transaction-coverage target are reached, then assigns
// each labeled contract to 1–3 of the four sources.
func (p *Plan) planSeedLabels(rng *rand.Rand) {
	type ref struct {
		fam, ci int
		txs     int
	}
	var all []ref
	totalTxs := 0
	for fi, fam := range p.Families {
		for ci, cp := range fam.Contracts {
			all = append(all, ref{fi, ci, cp.PlannedTxs})
			totalTxs += cp.PlannedTxs
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].txs > all[j].txs })

	target := p.Config.scaled(p.Config.SeedContractTarget)
	covered := 0
	sources := []string{"etherscan", "chainabuse", "scamsniffer-db", "txphishscope"}
	label := func(cp *ContractPlan) {
		if len(cp.LabeledBy) > 0 {
			return
		}
		n := 1 + rng.IntN(3)
		perm := rng.Perm(len(sources))
		for _, si := range perm[:n] {
			cp.LabeledBy = append(cp.LabeledBy, sources[si])
		}
		sort.Strings(cp.LabeledBy)
	}

	// Every family is publicly known — that is how the paper can name
	// them at all — so its highest-volume contract has been reported at
	// least once.
	labeled := 0
	labeledSet := make(map[int]bool) // index into all, resolved below
	pos := make(map[[2]int]int)
	for i, r := range all {
		pos[[2]int{r.fam, r.ci}] = i
	}
	for fi, fam := range p.Families {
		top, topTxs := -1, -1
		for ci, cp := range fam.Contracts {
			if cp.PlannedTxs > topTxs {
				top, topTxs = ci, cp.PlannedTxs
			}
		}
		if top >= 0 {
			label(fam.Contracts[top])
			labeledSet[pos[[2]int{fi, top}]] = true
			covered += topTxs
			labeled++
		}
	}
	// Then fill the remaining seed slots with a two-pointer sweep over
	// the volume ranking: take from the head while transaction coverage
	// is below the Table 1 target (seed txs ≈ 57% of the expanded
	// dataset's), and from the tail once it is met — so both the
	// contract count (391 at scale 1.0) and the coverage land together.
	lo, hi := 0, len(all)-1
	for (labeled < target || float64(covered) < 0.57*float64(totalTxs)) && lo <= hi {
		var idx int
		if float64(covered) < 0.57*float64(totalTxs) {
			idx = lo
			lo++
		} else {
			idx = hi
			hi--
		}
		if labeledSet[idx] {
			continue
		}
		labeledSet[idx] = true
		cp := p.Families[all[idx].fam].Contracts[all[idx].ci]
		if len(cp.LabeledBy) > 0 {
			continue
		}
		label(cp)
		labeled++
		covered += all[idx].txs
	}
}

// planBenign draws background traffic: plain transfers plus payment
// splitters, a third of which collide with drainer ratios.
func (p *Plan) planBenign(rng *rand.Rand) {
	cfg := p.Config
	n := cfg.scaled(cfg.BenignTransfers)

	// A modest pool of benign users transacting repeatedly, so benign
	// accounts accumulate history like real ones.
	poolSize := n/10 + 2
	poolAddrs := make([]ethtypes.Address, poolSize)
	for i := range poolAddrs {
		poolAddrs[i] = randomAddr(rng)
	}
	benign := make([]BenignTransfer, 0, n)
	for i := 0; i < n; i++ {
		from := poolAddrs[rng.IntN(poolSize)]
		to := poolAddrs[rng.IntN(poolSize)]
		if from == to {
			continue
		}
		benign = append(benign, BenignTransfer{
			Time:      randTimeIn(rng, DatasetStart, DatasetEnd),
			From:      from,
			To:        to,
			AmountUSD: logUniform(rng, 10, 50_000),
		})
	}
	p.Benign.Transfers = benign

	nSplit := cfg.scaled(cfg.BenignSplitters)
	for i := 0; i < nSplit; i++ {
		colliding := i%3 == 0
		ratio := int64(500) // 50/50 team split
		if colliding {
			// Ratios straight from the drainer set (§4.3).
			collide := []int64{100, 200, 150, 300}
			ratio = collide[rng.IntN(len(collide))]
		} else if i%3 == 1 {
			ratio = 450 // 45/55, outside the drainer set
		}
		sp := SplitterPlan{
			Payer:     randomAddr(rng),
			PartyA:    randomAddr(rng),
			PartyB:    randomAddr(rng),
			RatioPM:   ratio,
			Colliding: colliding,
			PayUSD:    logUniform(rng, 500, 20_000),
		}
		start := randTimeIn(rng, DatasetStart, DatasetEnd.Add(-90*24*time.Hour))
		payments := 3 + rng.IntN(10)
		for k := 0; k < payments; k++ {
			sp.Payments = append(sp.Payments, start.Add(time.Duration(k)*7*24*time.Hour))
		}
		p.Benign.Splitters = append(p.Benign.Splitters, sp)
	}
}
