package chain

import (
	"time"

	"repro/internal/ethtypes"
)

// journalKind discriminates journal operations.
type journalKind uint8

const (
	opFund journalKind = iota
	opNative
	opMine
)

// journalOp is one recorded state-building operation. Mine entries keep
// the caller's transaction pointers; replay always clones them, because
// apply assigns nonces and memoizes hashes in place.
type journalOp struct {
	kind   journalKind
	addr   ethtypes.Address
	amount ethtypes.Wei
	native NativeContract
	ts     time.Time
	txs    []*Transaction
}

// journalAt returns journal entry i, or false past the end.
func (c *Chain) journalAt(i int) (journalOp, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i >= len(c.journal) {
		return journalOp{}, false
	}
	return c.journal[i], true
}

// JournalLen returns the number of recorded operations.
func (c *Chain) JournalLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.journal)
}

func (c *Chain) genesisTime() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[0].Timestamp
}

// cloneTx copies a transaction for re-execution on another chain.
// Nonce and the memoized hash are assigned by apply; Data is never
// mutated, so sharing the slice is safe.
func cloneTx(tx *Transaction) *Transaction {
	cp := *tx
	cp.hash = ethtypes.Hash{}
	return &cp
}

func cloneTxs(txs []*Transaction) []*Transaction {
	out := make([]*Transaction, len(txs))
	for i, tx := range txs {
		out[i] = cloneTx(tx)
	}
	return out
}

// Follower re-executes a source chain's journal onto a destination
// chain one block at a time — the head-advance driver behind
// `chainsim -grow` and the radar soak tests. Because execution is
// deterministic (block hashes cover number, timestamp, parent, and tx
// hashes), the destination's blocks are byte-identical to the
// source's prefix, so a radar following the destination sees exactly
// the history the one-shot pipeline sees, just later.
//
// MineOrphan appends a block that is not part of the source journal,
// and Heal rebuilds the destination back onto the canonical prefix —
// together they stage a reorg: the healed chain re-mines the fork
// block with a different hash, which a head follower must detect via
// its parent-hash ring and roll back.
type Follower struct {
	src *Chain
	dst *Chain
	pos int // journal entries consumed
}

// NewFollower returns a follower whose destination chain starts at the
// source's genesis block.
func NewFollower(src *Chain) *Follower {
	return &Follower{src: src, dst: New(src.genesisTime())}
}

// Chain returns the destination chain the follower mines into.
func (f *Follower) Chain() *Chain { return f.dst }

// Caught reports whether the follower has consumed the entire source
// journal.
func (f *Follower) Caught() bool {
	_, ok := f.src.journalAt(f.pos)
	return !ok
}

// Advance consumes journal operations up to and including the next
// block, mining it on the destination. It returns the mined block, or
// false when the source journal is exhausted (any trailing non-mine
// operations are still applied).
func (f *Follower) Advance() (*Block, bool) {
	for {
		op, ok := f.src.journalAt(f.pos)
		if !ok {
			return nil, false
		}
		f.pos++
		switch op.kind {
		case opFund:
			f.dst.Fund(op.addr, op.amount)
		case opNative:
			f.dst.RegisterNative(op.addr, op.native)
		case opMine:
			blk, _ := f.dst.Mine(op.ts, cloneTxs(op.txs)...)
			return blk, true
		}
	}
}

// MineOrphan mines a block on the destination that is not part of the
// source journal — the soon-to-be-orphaned side of a staged reorg.
// The given transactions are cloned before execution.
func (f *Follower) MineOrphan(ts time.Time, txs ...*Transaction) *Block {
	blk, _ := f.dst.Mine(ts, cloneTxs(txs)...)
	return blk
}

// Heal rebuilds the destination onto the canonical source prefix,
// discarding every orphaned block: a fresh chain re-executes the
// consumed journal prefix and its guts are swapped into the
// destination in place, so existing references (RPC servers, radar
// adapters) observe the reorg through the same *Chain.
func (f *Follower) Heal() {
	fresh := New(f.src.genesisTime())
	for i := 0; i < f.pos; i++ {
		op, ok := f.src.journalAt(i)
		if !ok {
			break
		}
		switch op.kind {
		case opFund:
			fresh.Fund(op.addr, op.amount)
		case opNative:
			fresh.RegisterNative(op.addr, op.native)
		case opMine:
			fresh.Mine(op.ts, cloneTxs(op.txs)...)
		}
	}
	f.dst.adopt(fresh)
}

// adopt replaces the chain's contents with other's. The caller must no
// longer use other directly.
func (c *Chain) adopt(other *Chain) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocks = other.blocks
	c.txs = other.txs
	c.receipts = other.receipts
	c.canon = other.canon
	c.natives = other.natives
	c.txIndex = other.txIndex
	c.journal = other.journal
}
