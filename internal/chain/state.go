package chain

import (
	"repro/internal/ethtypes"
)

// state holds account balances, nonces, code, and storage. States form
// overlay chains: reads fall through to the parent, writes stay local
// until Commit. Each message call runs in a child overlay so a failed
// callee rolls back without disturbing the caller, and each transaction
// runs in an overlay over the canonical state so failed transactions
// leave no trace.
type state struct {
	parent   *state
	balances map[ethtypes.Address]ethtypes.Wei
	nonces   map[ethtypes.Address]uint64
	code     map[ethtypes.Address][]byte
	storage  map[storageKey]ethtypes.Hash
}

type storageKey struct {
	addr ethtypes.Address
	key  ethtypes.Hash
}

func newState(parent *state) *state {
	return &state{
		parent:   parent,
		balances: make(map[ethtypes.Address]ethtypes.Wei),
		nonces:   make(map[ethtypes.Address]uint64),
		code:     make(map[ethtypes.Address][]byte),
		storage:  make(map[storageKey]ethtypes.Hash),
	}
}

func (s *state) balance(a ethtypes.Address) ethtypes.Wei {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.balances[a]; ok {
			return v
		}
	}
	return ethtypes.Wei{}
}

func (s *state) setBalance(a ethtypes.Address, v ethtypes.Wei) {
	s.balances[a] = v
}

func (s *state) nonce(a ethtypes.Address) uint64 {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.nonces[a]; ok {
			return v
		}
	}
	return 0
}

func (s *state) setNonce(a ethtypes.Address, n uint64) {
	s.nonces[a] = n
}

func (s *state) codeAt(a ethtypes.Address) []byte {
	for cur := s; cur != nil; cur = cur.parent {
		if c, ok := cur.code[a]; ok {
			return c
		}
	}
	return nil
}

func (s *state) setCode(a ethtypes.Address, c []byte) {
	s.code[a] = c
}

func (s *state) storageGet(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
	sk := storageKey{a, k}
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.storage[sk]; ok {
			return v
		}
	}
	return ethtypes.Hash{}
}

func (s *state) storageSet(a ethtypes.Address, k, v ethtypes.Hash) {
	s.storage[storageKey{a, k}] = v
}

// commit merges this overlay's writes into its parent. The overlay must
// not be used afterwards.
func (s *state) commit() {
	p := s.parent
	for a, v := range s.balances {
		p.balances[a] = v
	}
	for a, n := range s.nonces {
		p.nonces[a] = n
	}
	for a, c := range s.code {
		p.code[a] = c
	}
	for k, v := range s.storage {
		p.storage[k] = v
	}
}

// transfer moves value between balances, failing on insufficient funds.
func (s *state) transfer(from, to ethtypes.Address, v ethtypes.Wei) error {
	if v.Sign() < 0 {
		return errNegativeValue
	}
	if v.IsZero() {
		return nil
	}
	fb := s.balance(from)
	if fb.Cmp(v) < 0 {
		return errInsufficientFunds
	}
	s.setBalance(from, fb.Sub(v))
	s.setBalance(to, s.balance(to).Add(v))
	return nil
}
