package chain_test

import (
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/worldgen"
)

// TestFollowerReplayIdentical: re-executing the worldgen journal
// block-by-block must reproduce the source chain exactly — same block
// hashes (which cover number, timestamp, parent, and tx hashes), same
// transaction count. This is the foundation under the radar's
// byte-identity invariant.
func TestFollowerReplayIdentical(t *testing.T) {
	world, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	f := chain.NewFollower(world.Chain)
	dst := f.Chain()

	blocks := 0
	for {
		if _, ok := f.Advance(); !ok {
			break
		}
		blocks++
	}
	if !f.Caught() {
		t.Fatal("follower not caught up after exhausting the journal")
	}
	if got, want := dst.BlockCount(), world.Chain.BlockCount(); got != want {
		t.Fatalf("replayed BlockCount = %d, want %d (advanced %d blocks)", got, want, blocks)
	}
	for n := uint64(0); n < dst.BlockCount(); n++ {
		src, err := world.Chain.BlockByNumber(n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.BlockByNumber(n)
		if err != nil {
			t.Fatal(err)
		}
		if got.Hash() != src.Hash() {
			t.Fatalf("block %d hash mismatch: %s vs %s", n, got.Hash(), src.Hash())
		}
	}
	if got, want := dst.TxCount(), world.Chain.TxCount(); got != want {
		t.Fatalf("replayed TxCount = %d, want %d", got, want)
	}
}

// TestFollowerOrphanAndHeal stages a reorg mid-replay: an orphan block
// diverges the destination, Heal rebuilds it onto the canonical
// prefix, and the remaining replay converges to the source again.
func TestFollowerOrphanAndHeal(t *testing.T) {
	world, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	f := chain.NewFollower(world.Chain)
	dst := f.Chain()

	half := int(world.Chain.BlockCount() / 2)
	for i := 0; i < half; i++ {
		if _, ok := f.Advance(); !ok {
			t.Fatalf("journal exhausted after %d blocks, wanted %d", i, half)
		}
	}
	forkParent := dst.BlockCount() - 1

	tip, err := dst.BlockByNumber(forkParent)
	if err != nil {
		t.Fatal(err)
	}
	orphan := f.MineOrphan(tip.Timestamp.Add(13 * time.Second))
	if orphan.Number != forkParent+1 {
		t.Fatalf("orphan number = %d, want %d", orphan.Number, forkParent+1)
	}

	f.Heal()
	if got := dst.BlockCount(); got != forkParent+1 {
		t.Fatalf("healed BlockCount = %d, want %d", got, forkParent+1)
	}
	// The healed prefix matches the source, and the re-mined fork block
	// differs from the orphan.
	for {
		if _, ok := f.Advance(); !ok {
			break
		}
	}
	canon, err := dst.BlockByNumber(orphan.Number)
	if err != nil {
		t.Fatal(err)
	}
	if canon.Hash() == orphan.Hash() {
		t.Fatal("re-mined fork block has the orphan's hash")
	}
	for n := uint64(0); n < dst.BlockCount(); n++ {
		src, _ := world.Chain.BlockByNumber(n)
		got, _ := dst.BlockByNumber(n)
		if src == nil || got == nil || got.Hash() != src.Hash() {
			t.Fatalf("post-heal block %d diverges from source", n)
		}
	}
}
