package chain

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ethtypes"
	"repro/internal/evm"
)

var (
	alice = ethtypes.Addr("0xa11ce00000000000000000000000000000000001")
	bob   = ethtypes.Addr("0xb0b0000000000000000000000000000000000002")
	carol = ethtypes.Addr("0xca40100000000000000000000000000000000003")
)

func t0() time.Time { return time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC) }

func addrPtr(a ethtypes.Address) *ethtypes.Address { return &a }

// mustAssemble assembles a test program known to be well-formed.
func mustAssemble(a *evm.Assembler) []byte {
	code, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}

func TestSimpleTransfer(t *testing.T) {
	c := New(t0())
	c.Fund(alice, ethtypes.Ether(10))

	_, rs := c.Mine(t0().Add(time.Hour), &Transaction{
		From: alice, To: addrPtr(bob), Value: ethtypes.Ether(3),
	})
	r := rs[0]
	if !r.Status {
		t.Fatalf("transfer failed: %s", r.Err)
	}
	if got := c.BalanceOf(bob); got.Cmp(ethtypes.Ether(3)) != 0 {
		t.Errorf("bob balance = %s", got)
	}
	if got := c.BalanceOf(alice); got.Cmp(ethtypes.Ether(7)) != 0 {
		t.Errorf("alice balance = %s", got)
	}
	if len(r.Transfers) != 1 {
		t.Fatalf("fund flow has %d transfers, want 1", len(r.Transfers))
	}
	tr := r.Transfers[0]
	if tr.From != alice || tr.To != bob || tr.Asset.Kind != AssetETH {
		t.Errorf("transfer edge = %+v", tr)
	}
}

func TestInsufficientFundsRollsBack(t *testing.T) {
	c := New(t0())
	c.Fund(alice, ethtypes.Ether(1))
	_, rs := c.Mine(t0(), &Transaction{
		From: alice, To: addrPtr(bob), Value: ethtypes.Ether(5),
	})
	if rs[0].Status {
		t.Fatal("overdraft succeeded")
	}
	if len(rs[0].Transfers) != 0 {
		t.Error("failed tx left transfers in receipt")
	}
	if got := c.BalanceOf(alice); got.Cmp(ethtypes.Ether(1)) != 0 {
		t.Errorf("alice balance changed: %s", got)
	}
	// Failed txs still consume the nonce.
	if c.NonceOf(alice) != 1 {
		t.Errorf("nonce = %d, want 1", c.NonceOf(alice))
	}
}

func TestNonceAssignmentAndHashing(t *testing.T) {
	c := New(t0())
	c.Fund(alice, ethtypes.Ether(10))
	tx1 := &Transaction{From: alice, To: addrPtr(bob), Value: ethtypes.Ether(1)}
	tx2 := &Transaction{From: alice, To: addrPtr(bob), Value: ethtypes.Ether(1)}
	c.Mine(t0(), tx1, tx2)
	if tx1.Nonce != 0 || tx2.Nonce != 1 {
		t.Errorf("nonces = %d, %d", tx1.Nonce, tx2.Nonce)
	}
	if tx1.Hash() == tx2.Hash() {
		t.Error("identical-field txs with different nonces share a hash")
	}
}

// splitContract returns runtime bytecode that forwards 30% of received
// ETH to op and 70% to aff — a minimal profit-sharing contract.
func splitContract(op, aff ethtypes.Address) []byte {
	a := evm.NewAssembler()
	// operator share = callvalue * 30 / 100
	a.PushInt(100).PushInt(30).Op(evm.CALLVALUE, evm.MUL, evm.DIV)
	// stack: [opShare]
	// call(gas, op, opShare, 0,0,0,0)
	a.PushInt(0).PushInt(0).PushInt(0).PushInt(0) // outSize outOff inSize inOff
	a.Op(evm.DUP1 + 4)                            // opShare
	a.PushAddr(op).Op(evm.GAS, evm.CALL, evm.POP)
	// affiliate share = callvalue - opShare
	a.Op(evm.CALLVALUE, evm.SUB) // stack: [aff = callvalue - opShare]
	a.PushInt(0).PushInt(0).PushInt(0).PushInt(0)
	a.Op(evm.DUP1 + 4)
	a.PushAddr(aff).Op(evm.GAS, evm.CALL, evm.POP)
	a.Op(evm.POP)
	a.Stop()
	return mustAssemble(a)
}

// deployRuntime wraps runtime code in a constructor that returns it.
func deployRuntime(runtime []byte) []byte {
	ctor := evm.NewAssembler()
	ctor.PushInt(int64(len(runtime)))
	ctor.PushLabel("rt")
	ctor.PushInt(0)
	ctor.Op(evm.CODECOPY)
	ctor.PushInt(int64(len(runtime))).PushInt(0).Op(evm.RETURN)
	ctor.Mark("rt")
	ctor.Op(runtime...)
	return mustAssemble(ctor)
}

func TestContractDeployAndProfitSharingFlow(t *testing.T) {
	c := New(t0())
	c.Fund(alice, ethtypes.Ether(20))

	deploy := &Transaction{From: alice, Data: deployRuntime(splitContract(bob, carol))}
	_, rs := c.Mine(t0(), deploy)
	if !rs[0].Status {
		t.Fatalf("deploy failed: %s", rs[0].Err)
	}
	contract := rs[0].ContractAddress
	if contract.IsZero() {
		t.Fatal("no contract address")
	}
	if want := CreateAddress(alice, 0); contract != want {
		t.Errorf("contract at %s, want CREATE address %s", contract, want)
	}
	if !c.IsContract(contract) {
		t.Error("deployed address has no code")
	}

	// Victim sends 10 ETH; contract splits 3/7.
	_, rs = c.Mine(t0().Add(time.Minute), &Transaction{
		From: alice, To: addrPtr(contract), Value: ethtypes.Ether(10),
	})
	r := rs[0]
	if !r.Status {
		t.Fatalf("phish tx failed: %s", r.Err)
	}
	if len(r.Transfers) != 3 {
		t.Fatalf("fund flow %d edges, want 3 (deposit + two shares)", len(r.Transfers))
	}
	if got := c.BalanceOf(bob); got.Cmp(ethtypes.Ether(3)) != 0 {
		t.Errorf("operator got %s, want 3 ETH", got)
	}
	if got := c.BalanceOf(carol); got.Cmp(ethtypes.Ether(7)) != 0 {
		t.Errorf("affiliate got %s, want 7 ETH", got)
	}
	// The two onward shares sit at depth 1.
	var onward int
	for _, tr := range r.Transfers {
		if tr.Depth == 1 && tr.From == contract {
			onward++
		}
	}
	if onward != 2 {
		t.Errorf("onward transfers = %d, want 2", onward)
	}
}

func TestNestedCallFailureRollsBackCalleeOnly(t *testing.T) {
	// Contract A calls contract B; B reverts after an SSTORE; A
	// continues (CALL pushes 0) and stores a success marker. B's write
	// must be rolled back, A's must persist.
	c := New(t0())
	c.Fund(alice, ethtypes.Ether(1))

	bAsm := evm.NewAssembler().
		PushInt(1).PushInt(0).Op(evm.SSTORE). // sstore(0, 1)
		Revert()
	bCode := mustAssemble(bAsm)
	_, rs := c.Mine(t0(), &Transaction{From: alice, Data: deployRuntime(bCode)})
	bAddr := rs[0].ContractAddress

	aAsm := evm.NewAssembler()
	aAsm.PushInt(0).PushInt(0).PushInt(0).PushInt(0).PushInt(0)
	aAsm.PushAddr(bAddr).Op(evm.GAS, evm.CALL, evm.POP)
	aAsm.PushInt(7).PushInt(0).Op(evm.SSTORE) // sstore(0, 7) in A
	aAsm.Stop()
	_, rs = c.Mine(t0(), &Transaction{From: alice, Data: deployRuntime(mustAssemble(aAsm))})
	aAddr := rs[0].ContractAddress

	_, rs = c.Mine(t0(), &Transaction{From: alice, To: addrPtr(aAddr)})
	if !rs[0].Status {
		t.Fatalf("outer call failed: %s", rs[0].Err)
	}

	// Inspect storage through a probe execution.
	probe := func(target ethtypes.Address) uint64 {
		probeAsm := evm.NewAssembler().
			PushInt(0).Op(evm.SLOAD).
			Op(evm.PUSH0, evm.MSTORE).PushInt(32).Op(evm.PUSH0, evm.RETURN)
		code := mustAssemble(probeAsm)
		res, err := evm.Run(&evm.Context{Code: code, Self: target, Gas: 100000, Host: &readOnlyHost{c}})
		if err != nil {
			t.Fatal(err)
		}
		var v uint64
		for _, b := range res.ReturnData {
			v = v<<8 | uint64(b)
		}
		return v
	}
	if got := probe(bAddr); got != 0 {
		t.Errorf("B storage = %d, want 0 (rolled back)", got)
	}
	if got := probe(aAddr); got != 7 {
		t.Errorf("A storage = %d, want 7", got)
	}
}

// readOnlyHost adapts a sealed chain for probe executions in tests.
type readOnlyHost struct{ c *Chain }

func (h *readOnlyHost) Balance(a ethtypes.Address) ethtypes.Wei { return h.c.BalanceOf(a) }
func (h *readOnlyHost) StorageGet(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
	h.c.mu.RLock()
	defer h.c.mu.RUnlock()
	return h.c.canon.storageGet(a, k)
}
func (h *readOnlyHost) StorageSet(a ethtypes.Address, k, v ethtypes.Hash) {}
func (h *readOnlyHost) Call(from, to ethtypes.Address, value ethtypes.Wei, input []byte, depth int) ([]byte, error) {
	return nil, nil
}
func (h *readOnlyHost) EmitLog(a ethtypes.Address, topics []ethtypes.Hash, data []byte) {}

func TestTransactionIndex(t *testing.T) {
	c := New(t0())
	c.Fund(alice, ethtypes.Ether(10))
	tx := &Transaction{From: alice, To: addrPtr(bob), Value: ethtypes.Ether(1)}
	c.Mine(t0(), tx)

	for _, who := range []ethtypes.Address{alice, bob} {
		hs := c.TransactionsOf(who)
		if len(hs) != 1 || hs[0] != tx.Hash() {
			t.Errorf("TransactionsOf(%s) = %v", who.Short(), hs)
		}
	}
	if hs := c.TransactionsOf(carol); len(hs) != 0 {
		t.Errorf("uninvolved account indexed: %v", hs)
	}
}

func TestBlockAndLookupAPI(t *testing.T) {
	c := New(t0())
	c.Fund(alice, ethtypes.Ether(2))
	tx := &Transaction{From: alice, To: addrPtr(bob), Value: ethtypes.Ether(1)}
	b, _ := c.Mine(t0().Add(time.Hour), tx)

	if b.Number != 1 || c.BlockCount() != 2 {
		t.Errorf("block numbering off: %d / %d", b.Number, c.BlockCount())
	}
	got, err := c.BlockByNumber(1)
	if err != nil || got.Hash() != b.Hash() {
		t.Errorf("BlockByNumber: %v, %v", got, err)
	}
	if _, err := c.BlockByNumber(99); err == nil {
		t.Error("out-of-range block lookup succeeded")
	}
	if _, err := c.Transaction(tx.Hash()); err != nil {
		t.Errorf("Transaction: %v", err)
	}
	r, err := c.Receipt(tx.Hash())
	if err != nil || r.BlockNumber != 1 || !r.Timestamp.Equal(t0().Add(time.Hour)) {
		t.Errorf("Receipt: %+v, %v", r, err)
	}
	if _, err := c.Receipt(ethtypes.Hash{1}); err == nil {
		t.Error("unknown receipt lookup succeeded")
	}
}

func TestCreateAddressDeterminism(t *testing.T) {
	a1 := CreateAddress(alice, 0)
	a2 := CreateAddress(alice, 1)
	a3 := CreateAddress(bob, 0)
	if a1 == a2 || a1 == a3 || a2 == a3 {
		t.Error("CREATE addresses collide")
	}
	if a1 != CreateAddress(alice, 0) {
		t.Error("CREATE address not deterministic")
	}
}

// Property: total ETH supply is conserved across arbitrary transfer
// sequences (successful or not).
func TestQuickSupplyConservation(t *testing.T) {
	f := func(seq []uint8) bool {
		c := New(t0())
		parties := []ethtypes.Address{alice, bob, carol}
		c.Fund(alice, ethtypes.Ether(100))
		supply := ethtypes.Ether(100)
		for i, s := range seq {
			from := parties[int(s)%3]
			to := parties[int(s>>2)%3]
			amount := ethtypes.Ether(int64(s % 7))
			c.Mine(t0().Add(time.Duration(i)*time.Minute),
				&Transaction{From: from, To: addrPtr(to), Value: amount})
		}
		total := ethtypes.Wei{}
		for _, p := range parties {
			total = total.Add(c.BalanceOf(p))
		}
		return total.Cmp(supply) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFilterLogs(t *testing.T) {
	c := New(t0())
	c.Fund(alice, ethtypes.Ether(5))
	// A contract that emits LOG1 with topic 0x1234 on every call.
	logAsm := evm.NewAssembler().
		PushInt(0x1234).PushInt(0).PushInt(0).Op(evm.LOG0 + 1).
		Stop()
	code := mustAssemble(logAsm)
	_, rs := c.Mine(t0(), &Transaction{From: alice, Data: deployRuntime(code)})
	emitter := rs[0].ContractAddress

	for i := 0; i < 3; i++ {
		c.Mine(t0().Add(time.Duration(i)*time.Hour), &Transaction{From: alice, To: addrPtr(emitter)})
	}
	// A benign transfer block in between produces no logs.
	c.Mine(t0(), &Transaction{From: alice, To: addrPtr(bob), Value: ethtypes.Ether(1)})

	all := c.FilterLogs(0, c.BlockCount()-1, nil, nil)
	if len(all) != 3 {
		t.Fatalf("all logs = %d, want 3", len(all))
	}
	byAddr := c.FilterLogs(0, c.BlockCount()-1, &emitter, nil)
	if len(byAddr) != 3 {
		t.Errorf("address-filtered = %d", len(byAddr))
	}
	var topic ethtypes.Hash
	topic[30], topic[31] = 0x12, 0x34
	byTopic := c.FilterLogs(0, c.BlockCount()-1, nil, &topic)
	if len(byTopic) != 3 {
		t.Errorf("topic-filtered = %d", len(byTopic))
	}
	var wrong ethtypes.Hash
	wrong[31] = 0x99
	if got := c.FilterLogs(0, c.BlockCount()-1, nil, &wrong); len(got) != 0 {
		t.Errorf("wrong topic matched %d logs", len(got))
	}
	// Block-range restriction.
	if got := c.FilterLogs(0, 1, &emitter, nil); len(got) != 0 {
		t.Errorf("deploy block emitted %d logs", len(got))
	}
	// Ordering is chain order.
	for i := 1; i < len(all); i++ {
		if all[i].BlockNumber < all[i-1].BlockNumber {
			t.Fatal("logs out of order")
		}
	}
}
