package chain

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ethtypes"
	"repro/internal/evm"
)

// Execution errors.
var (
	errInsufficientFunds = errors.New("chain: insufficient funds")
	errNegativeValue     = errors.New("chain: negative value")
	// ErrUnknownTx is returned for lookups of transactions the chain has
	// never executed.
	ErrUnknownTx = errors.New("chain: unknown transaction")
	// ErrUnknownBlock is returned for out-of-range block numbers.
	ErrUnknownBlock = errors.New("chain: unknown block")
)

// DefaultGasLimit bounds transactions that do not set their own limit.
const DefaultGasLimit = 10_000_000

// NativeContract is a contract implemented in Go rather than EVM
// bytecode (our analogue of precompiles). Token standards and
// marketplaces are natives; profit-sharing contracts are EVM bytecode.
type NativeContract interface {
	Run(env *CallEnv) ([]byte, error)
}

// CallEnv gives a native contract controlled access to the executing
// transaction: its own storage, nested calls, logs, and the fund-flow
// trace.
type CallEnv struct {
	Caller ethtypes.Address
	Self   ethtypes.Address
	Value  ethtypes.Wei
	Input  []byte
	Depth  int

	ex *executor
}

// StorageGet reads a word of the contract's own storage.
func (e *CallEnv) StorageGet(key ethtypes.Hash) ethtypes.Hash {
	return e.ex.cur.storageGet(e.Self, key)
}

// StorageSet writes a word of the contract's own storage.
func (e *CallEnv) StorageSet(key, val ethtypes.Hash) {
	e.ex.cur.storageSet(e.Self, key, val)
}

// Balance reads any account balance.
func (e *CallEnv) Balance(a ethtypes.Address) ethtypes.Wei { return e.ex.cur.balance(a) }

// Call performs a nested message call from this contract.
func (e *CallEnv) Call(to ethtypes.Address, value ethtypes.Wei, input []byte) ([]byte, error) {
	return e.ex.call(e.Self, to, value, input, e.Depth+1)
}

// EmitLog records an event log.
func (e *CallEnv) EmitLog(topics []ethtypes.Hash, data []byte) {
	e.ex.receipt.Logs = append(e.ex.receipt.Logs, Log{Address: e.Self, Topics: topics, Data: data})
}

// RecordTokenTransfer adds a token movement to the transaction's fund
// flow (the ERC-20/721 analogue of an ETH value transfer).
func (e *CallEnv) RecordTokenTransfer(asset Asset, from, to ethtypes.Address, amount ethtypes.Wei) {
	e.ex.receipt.Transfers = append(e.ex.receipt.Transfers, Transfer{
		Asset: asset, From: from, To: to, Amount: amount, Depth: e.Depth,
	})
}

// RecordApproval adds an allowance grant to the receipt.
func (e *CallEnv) RecordApproval(a Approval) {
	e.ex.receipt.Approvals = append(e.ex.receipt.Approvals, a)
}

// Chain is the simulated ledger. The zero value is not usable; call New.
type Chain struct {
	mu       sync.RWMutex
	blocks   []*Block
	txs      map[ethtypes.Hash]*Transaction
	receipts map[ethtypes.Hash]*Receipt
	canon    *state
	natives  map[ethtypes.Address]NativeContract
	txIndex  map[ethtypes.Address][]ethtypes.Hash
	// journal records every state-building operation in order, so a
	// Follower can re-execute the chain block-by-block (see follower.go).
	journal []journalOp
}

// New returns an empty chain with a genesis block at the given time.
func New(genesisTime time.Time) *Chain {
	c := &Chain{
		txs:      make(map[ethtypes.Hash]*Transaction),
		receipts: make(map[ethtypes.Hash]*Receipt),
		canon:    newState(nil),
		natives:  make(map[ethtypes.Address]NativeContract),
		txIndex:  make(map[ethtypes.Address][]ethtypes.Hash),
	}
	genesis := &Block{Number: 0, Timestamp: genesisTime}
	genesis.Hash() // memoize before the block is shared
	c.blocks = append(c.blocks, genesis)
	return c
}

// Fund credits an account out of thin air (genesis-style allocation used
// to endow victims and operators).
func (c *Chain) Fund(a ethtypes.Address, amount ethtypes.Wei) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = append(c.journal, journalOp{kind: opFund, addr: a, amount: amount})
	c.canon.setBalance(a, c.canon.balance(a).Add(amount))
}

// RegisterNative installs a Go-implemented contract at addr.
func (c *Chain) RegisterNative(addr ethtypes.Address, contract NativeContract) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = append(c.journal, journalOp{kind: opNative, addr: addr, native: contract})
	c.natives[addr] = contract
}

// Mine executes txs in order under one block stamped ts and returns the
// block and per-transaction receipts. Failed transactions produce
// Status=false receipts and roll back completely; Mine never fails as a
// whole.
func (c *Chain) Mine(ts time.Time, txs ...*Transaction) (*Block, []*Receipt) {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.journal = append(c.journal, journalOp{kind: opMine, ts: ts, txs: txs})
	parent := c.blocks[len(c.blocks)-1]
	block := &Block{Number: parent.Number + 1, Timestamp: ts, Parent: parent.Hash()}
	receipts := make([]*Receipt, 0, len(txs))
	for _, tx := range txs {
		r := c.apply(tx, block)
		receipts = append(receipts, r)
		block.TxHashes = append(block.TxHashes, r.TxHash)
	}
	block.Hash() // memoize under the write lock so readers never mutate
	c.blocks = append(c.blocks, block)
	return block, receipts
}

// apply executes one transaction against the canonical state.
// The caller holds the write lock.
func (c *Chain) apply(tx *Transaction, block *Block) *Receipt {
	// Assign the sender's current nonce so callers need not track it.
	tx.Nonce = c.canon.nonce(tx.From)
	tx.hash = ethtypes.Hash{} // force re-hash with final nonce
	if tx.GasLimit == 0 {
		tx.GasLimit = DefaultGasLimit
	}

	receipt := &Receipt{
		TxHash:      tx.Hash(),
		BlockNumber: block.Number,
		Timestamp:   block.Timestamp,
	}
	overlay := newState(c.canon)
	overlay.setNonce(tx.From, tx.Nonce+1)

	ex := &executor{chain: c, cur: overlay, receipt: receipt, gasLimit: tx.GasLimit}

	var err error
	if tx.To == nil {
		receipt.ContractAddress, err = ex.create(tx.From, tx.Value, tx.Data)
	} else {
		_, err = ex.call(tx.From, *tx.To, tx.Value, tx.Data, 0)
	}
	receipt.GasUsed = ex.gasUsed
	if err != nil {
		receipt.Status = false
		receipt.Err = err.Error()
		receipt.Transfers = nil
		receipt.Approvals = nil
		receipt.Logs = nil
		// A failed transaction still consumes the sender's nonce.
		c.canon.setNonce(tx.From, tx.Nonce+1)
	} else {
		receipt.Status = true
		ex.cur.commit() // ex.cur is the tx overlay again after balanced frames
	}

	c.txs[tx.Hash()] = tx
	c.receipts[tx.Hash()] = receipt
	c.index(tx, receipt)
	return receipt
}

// index records which accounts a transaction touched.
func (c *Chain) index(tx *Transaction, r *Receipt) {
	seen := make(map[ethtypes.Address]bool)
	add := func(a ethtypes.Address) {
		if a.IsZero() || seen[a] {
			return
		}
		seen[a] = true
		c.txIndex[a] = append(c.txIndex[a], r.TxHash)
	}
	add(tx.From)
	if tx.To != nil {
		add(*tx.To)
	}
	add(r.ContractAddress)
	for _, t := range r.Transfers {
		add(t.From)
		add(t.To)
	}
	for _, a := range r.Approvals {
		add(a.Owner)
		add(a.Spender)
	}
}

// executor runs one transaction. cur always points at the innermost
// live overlay; frames push a child on entry and either commit+pop or
// discard+pop on exit.
type executor struct {
	chain    *Chain
	cur      *state
	receipt  *Receipt
	gasLimit uint64
	gasUsed  uint64
}

// call performs a message call: value transfer plus execution of the
// callee (native contract, EVM bytecode, or plain EOA).
func (ex *executor) call(from, to ethtypes.Address, value ethtypes.Wei, input []byte, depth int) ([]byte, error) {
	if depth > evm.CallDepthLimit {
		return nil, evm.ErrCallDepth
	}
	frame := newState(ex.cur)
	ex.cur = frame
	markTransfers := len(ex.receipt.Transfers)
	markApprovals := len(ex.receipt.Approvals)
	markLogs := len(ex.receipt.Logs)

	fail := func(err error) ([]byte, error) {
		ex.cur = frame.parent
		ex.receipt.Transfers = ex.receipt.Transfers[:markTransfers]
		ex.receipt.Approvals = ex.receipt.Approvals[:markApprovals]
		ex.receipt.Logs = ex.receipt.Logs[:markLogs]
		return nil, err
	}

	if err := frame.transfer(from, to, value); err != nil {
		return fail(err)
	}
	if value.Sign() > 0 {
		ex.receipt.Transfers = append(ex.receipt.Transfers, Transfer{
			Asset: ETHAsset, From: from, To: to, Amount: value, Depth: depth,
		})
	}

	var ret []byte
	var err error
	if native, ok := ex.chain.natives[to]; ok {
		env := &CallEnv{Caller: from, Self: to, Value: value, Input: input, Depth: depth, ex: ex}
		ret, err = native.Run(env)
	} else if code := frame.codeAt(to); len(code) > 0 {
		res, runErr := evm.Run(&evm.Context{
			Code:        code,
			Self:        to,
			Caller:      from,
			Value:       value,
			Input:       input,
			Gas:         ex.remainingGas(),
			Depth:       depth,
			Host:        ex,
			Time:        ex.receipt.Timestamp.Unix(),
			BlockNumber: ex.receipt.BlockNumber,
		})
		ex.gasUsed += res.GasUsed
		ret, err = res.ReturnData, runErr
	}
	if err != nil {
		return fail(err)
	}
	frame.commit()
	ex.cur = frame.parent
	return ret, nil
}

// create deploys a contract: runs initcode, installs the returned
// runtime code at the derived address.
func (ex *executor) create(from ethtypes.Address, value ethtypes.Wei, initcode []byte) (ethtypes.Address, error) {
	// Nonce was already incremented for this tx; CREATE uses the
	// pre-increment value.
	nonce := ex.cur.nonce(from) - 1
	addr := CreateAddress(from, nonce)

	frame := newState(ex.cur)
	ex.cur = frame
	fail := func(err error) (ethtypes.Address, error) {
		ex.cur = frame.parent
		return ethtypes.Address{}, err
	}
	if err := frame.transfer(from, addr, value); err != nil {
		return fail(err)
	}
	res, err := evm.Run(&evm.Context{
		Code:        initcode,
		Self:        addr,
		Caller:      from,
		Value:       value,
		Gas:         ex.remainingGas(),
		Host:        ex,
		Time:        ex.receipt.Timestamp.Unix(),
		BlockNumber: ex.receipt.BlockNumber,
	})
	ex.gasUsed += res.GasUsed
	if err != nil {
		return fail(fmt.Errorf("chain: constructor failed: %w", err))
	}
	frame.setCode(addr, res.ReturnData)
	frame.commit()
	ex.cur = frame.parent
	return addr, nil
}

func (ex *executor) remainingGas() uint64 {
	if ex.gasUsed >= ex.gasLimit {
		return 0
	}
	return ex.gasLimit - ex.gasUsed
}

// evm.Host implementation.

// Balance implements evm.Host.
func (ex *executor) Balance(a ethtypes.Address) ethtypes.Wei { return ex.cur.balance(a) }

// StorageGet implements evm.Host.
func (ex *executor) StorageGet(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
	return ex.cur.storageGet(a, k)
}

// StorageSet implements evm.Host.
func (ex *executor) StorageSet(a ethtypes.Address, k, v ethtypes.Hash) {
	ex.cur.storageSet(a, k, v)
}

// Call implements evm.Host.
func (ex *executor) Call(from, to ethtypes.Address, value ethtypes.Wei, input []byte, depth int) ([]byte, error) {
	return ex.call(from, to, value, input, depth)
}

// EmitLog implements evm.Host.
func (ex *executor) EmitLog(a ethtypes.Address, topics []ethtypes.Hash, data []byte) {
	ex.receipt.Logs = append(ex.receipt.Logs, Log{Address: a, Topics: topics, Data: data})
}

// CodeOf implements evm.CodeHost, letting DELEGATECALL (proxy patterns
// such as EIP-1167 clones) run the implementation's bytecode inside the
// proxy's storage context.
func (ex *executor) CodeOf(a ethtypes.Address) []byte { return ex.cur.codeAt(a) }

// Simulate executes a transaction against the canonical state without
// committing anything — the simulator's equivalent of the pre-signing
// transaction simulation APIs wallets use (paper §9). The returned
// receipt carries the full would-be fund flow and approvals.
func (c *Chain) Simulate(tx *Transaction) *Receipt {
	c.mu.RLock()
	defer c.mu.RUnlock()
	receipt := &Receipt{
		TxHash:      tx.Hash(),
		BlockNumber: uint64(len(c.blocks)), // the pending block
		Timestamp:   c.blocks[len(c.blocks)-1].Timestamp,
	}
	gasLimit := tx.GasLimit
	if gasLimit == 0 {
		gasLimit = DefaultGasLimit
	}
	overlay := newState(c.canon)
	// Mirror apply's nonce handling so CREATE derives the same address
	// the real execution would.
	overlay.setNonce(tx.From, c.canon.nonce(tx.From)+1)
	ex := &executor{chain: c, cur: overlay, receipt: receipt, gasLimit: gasLimit}
	var err error
	if tx.To == nil {
		receipt.ContractAddress, err = ex.create(tx.From, tx.Value, tx.Data)
	} else {
		_, err = ex.call(tx.From, *tx.To, tx.Value, tx.Data, 0)
	}
	receipt.GasUsed = ex.gasUsed
	receipt.Status = err == nil
	if err != nil {
		receipt.Err = err.Error()
	}
	return receipt
}

// StaticCall executes a read-only message call against the canonical
// state and returns the call's return data, discarding every state
// write — the simulator's eth_call. The zero address is the caller.
func (c *Chain) StaticCall(to ethtypes.Address, input []byte) ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	receipt := &Receipt{}
	ex := &executor{chain: c, cur: newState(c.canon), receipt: receipt, gasLimit: DefaultGasLimit}
	return ex.call(ethtypes.ZeroAddress, to, ethtypes.Wei{}, input, 0)
}

// Read API (thread-safe).

// BalanceOf returns the canonical balance of a.
func (c *Chain) BalanceOf(a ethtypes.Address) ethtypes.Wei {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.canon.balance(a)
}

// NonceOf returns the canonical nonce of a.
func (c *Chain) NonceOf(a ethtypes.Address) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.canon.nonce(a)
}

// StorageAt returns a storage word of a contract in canonical state.
func (c *Chain) StorageAt(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.canon.storageGet(a, k)
}

// CodeAt returns deployed EVM bytecode, or nil for EOAs and natives.
func (c *Chain) CodeAt(a ethtypes.Address) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.canon.codeAt(a)
}

// IsContract reports whether a hosts code (EVM or native).
func (c *Chain) IsContract(a ethtypes.Address) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.natives[a]; ok {
		return true
	}
	return len(c.canon.codeAt(a)) > 0
}

// Transaction returns a transaction by hash.
func (c *Chain) Transaction(h ethtypes.Hash) (*Transaction, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tx, ok := c.txs[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTx, h)
	}
	return tx, nil
}

// Receipt returns a receipt by transaction hash.
func (c *Chain) Receipt(h ethtypes.Hash) (*Receipt, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.receipts[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTx, h)
	}
	return r, nil
}

// BlockCount returns the number of blocks including genesis.
func (c *Chain) BlockCount() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return uint64(len(c.blocks))
}

// BlockByNumber returns block n.
func (c *Chain) BlockByNumber(n uint64) (*Block, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if n >= uint64(len(c.blocks)) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, n)
	}
	return c.blocks[n], nil
}

// TransactionsOf returns, in chronological order, the hashes of every
// transaction that touched addr (as sender, recipient, transfer party,
// or approval party) — the "historical transactions of an account" feed
// the snowball sampler iterates over.
func (c *Chain) TransactionsOf(addr ethtypes.Address) []ethtypes.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	src := c.txIndex[addr]
	out := make([]ethtypes.Hash, len(src))
	copy(out, src)
	return out
}

// AccountsWithHistory returns every address that appears in the index,
// sorted for determinism. Used by tooling and tests.
func (c *Chain) AccountsWithHistory() []ethtypes.Address {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ethtypes.Address, 0, len(c.txIndex))
	for a := range c.txIndex {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// TxCount returns the number of executed transactions.
func (c *Chain) TxCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.txs)
}

// LogEntry is a log with its transaction and block context, as
// returned by FilterLogs (the simulator's eth_getLogs).
type LogEntry struct {
	Log
	TxHash      ethtypes.Hash
	BlockNumber uint64
	Timestamp   time.Time
}

// FilterLogs returns, in chain order, every log in blocks
// [fromBlock, toBlock] matching the optional address and first-topic
// filters (nil matches everything) — the event-driven view token
// analytics consume.
func (c *Chain) FilterLogs(fromBlock, toBlock uint64, address *ethtypes.Address, topic0 *ethtypes.Hash) []LogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if toBlock >= uint64(len(c.blocks)) {
		toBlock = uint64(len(c.blocks)) - 1
	}
	var out []LogEntry
	for n := fromBlock; n <= toBlock && n < uint64(len(c.blocks)); n++ {
		block := c.blocks[n]
		for _, h := range block.TxHashes {
			r := c.receipts[h]
			if r == nil || !r.Status {
				continue
			}
			for _, lg := range r.Logs {
				if address != nil && lg.Address != *address {
					continue
				}
				if topic0 != nil && (len(lg.Topics) == 0 || lg.Topics[0] != *topic0) {
					continue
				}
				out = append(out, LogEntry{
					Log: lg, TxHash: h, BlockNumber: n, Timestamp: block.Timestamp,
				})
			}
		}
	}
	return out
}
