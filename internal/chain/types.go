// Package chain implements the simulated Ethereum ledger the measurement
// pipeline runs against: blocks, transactions, receipts, account state
// with transactional rollback, an execution engine that dispatches to
// either EVM bytecode (internal/evm) or registered native contracts, and
// per-transaction fund-flow traces equivalent to the trace_transaction
// output the paper's collector consumed.
package chain

import (
	"time"

	"repro/internal/ethtypes"
	"repro/internal/keccak"
	"repro/internal/rlp"
)

// AssetKind distinguishes the three token classes of the paper's Fig. 3.
type AssetKind int

// Asset kinds.
const (
	AssetETH AssetKind = iota
	AssetERC20
	AssetERC721
)

func (k AssetKind) String() string {
	switch k {
	case AssetETH:
		return "ETH"
	case AssetERC20:
		return "ERC20"
	case AssetERC721:
		return "ERC721"
	default:
		return "unknown"
	}
}

// Asset identifies what moved in a transfer: the native token, an ERC-20
// (Token set), or a specific NFT (Token and TokenID set).
type Asset struct {
	Kind    AssetKind
	Token   ethtypes.Address // zero for ETH
	TokenID uint64           // ERC-721 only
}

// ETHAsset is the native-token asset.
var ETHAsset = Asset{Kind: AssetETH}

// Transfer is one edge of a transaction's fund flow.
type Transfer struct {
	Asset  Asset
	From   ethtypes.Address
	To     ethtypes.Address
	Amount ethtypes.Wei // token units; 1 for ERC-721
	Depth  int          // call depth at which the transfer happened (0 = top level)
}

// Approval records an ERC-20/721 allowance grant observed in a
// transaction — the pipeline's §6.1 unrevoked-approval analysis needs
// these.
type Approval struct {
	Token   ethtypes.Address
	Kind    AssetKind
	Owner   ethtypes.Address
	Spender ethtypes.Address
	Amount  ethtypes.Wei // 0 amount on ERC-20 means revocation
	All     bool         // ERC-721 setApprovalForAll
}

// Log is an emitted event.
type Log struct {
	Address ethtypes.Address
	Topics  []ethtypes.Hash
	Data    []byte
}

// Transaction is a simplified Ethereum transaction. Signatures are
// omitted; From is authoritative, as in node trace APIs.
type Transaction struct {
	Nonce    uint64
	From     ethtypes.Address
	To       *ethtypes.Address // nil = contract creation
	Value    ethtypes.Wei
	Data     []byte
	GasLimit uint64

	hash ethtypes.Hash // memoized
}

// Hash returns the transaction identity: keccak256 of the RLP encoding
// of the transaction fields. The result is memoized, so a struct copy
// whose fields were altered afterwards keeps reporting the original
// identity — integrity checks must use RecomputeHash.
func (tx *Transaction) Hash() ethtypes.Hash {
	if !tx.hash.IsZero() {
		return tx.hash
	}
	tx.hash = tx.RecomputeHash()
	return tx.hash
}

// RecomputeHash derives the transaction identity from the current field
// values, bypassing (and never touching) the memoized hash. Validation
// layers use it to detect records whose fields were mutated in flight:
// such a record still carries the stale memo, so Hash() alone cannot
// see the tampering.
func (tx *Transaction) RecomputeHash() ethtypes.Hash {
	to := []byte{}
	if tx.To != nil {
		to = tx.To[:]
	}
	var payload []byte
	payload = rlp.AppendUint(payload, tx.Nonce)
	payload = rlp.AppendString(payload, tx.From[:])
	payload = rlp.AppendString(payload, to)
	payload = rlp.AppendBig(payload, tx.Value.Big())
	payload = rlp.AppendString(payload, tx.Data)
	payload = rlp.AppendUint(payload, tx.GasLimit)
	return ethtypes.Hash(keccak.Sum256(wrapList(payload)))
}

// wrapList prepends the RLP list header to an already-encoded payload.
func wrapList(payload []byte) []byte {
	return append(rlp.AppendList(nil, len(payload)), payload...)
}

// Receipt is the recorded outcome of an executed transaction, including
// the full fund flow the classifier consumes.
type Receipt struct {
	TxHash          ethtypes.Hash
	BlockNumber     uint64
	Timestamp       time.Time
	Status          bool // true = success
	GasUsed         uint64
	ContractAddress ethtypes.Address // set for creations
	Transfers       []Transfer
	Approvals       []Approval
	Logs            []Log
	Err             string // failure reason, empty on success
}

// Block groups executed transactions under one timestamp.
type Block struct {
	Number    uint64
	Timestamp time.Time
	TxHashes  []ethtypes.Hash
	Parent    ethtypes.Hash
	hash      ethtypes.Hash
}

// Hash returns the block identity.
func (b *Block) Hash() ethtypes.Hash {
	if !b.hash.IsZero() {
		return b.hash
	}
	var payload []byte
	payload = rlp.AppendUint(payload, b.Number)
	payload = rlp.AppendUint(payload, uint64(b.Timestamp.Unix()))
	payload = rlp.AppendString(payload, b.Parent[:])
	for _, h := range b.TxHashes {
		payload = rlp.AppendString(payload, h[:])
	}
	b.hash = ethtypes.Hash(keccak.Sum256(wrapList(payload)))
	return b.hash
}

// CreateAddress derives the address of a contract created by sender with
// the given account nonce, per Ethereum's CREATE rule.
func CreateAddress(sender ethtypes.Address, nonce uint64) ethtypes.Address {
	payload := rlp.AppendUint(rlp.AppendString(nil, sender[:]), nonce)
	sum := keccak.Sum256(wrapList(payload))
	return ethtypes.BytesToAddress(sum[12:])
}
