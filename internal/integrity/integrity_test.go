package integrity_test

import (
	"bytes"
	"math/big"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/integrity"
	"repro/internal/labels"
)

// validPair builds a transaction and a receipt that pass every check:
// a successful value-bearing call whose top-level ETH transfer leads
// the fund flow, as the execution engine records it.
func validPair() (ethtypes.Hash, *chain.Transaction, *chain.Receipt) {
	to := ethtypes.Addr("0x00000000000000000000000000000000000000b0")
	tx := &chain.Transaction{
		Nonce:    7,
		From:     ethtypes.Addr("0x00000000000000000000000000000000000000a0"),
		To:       &to,
		Value:    ethtypes.Ether(1),
		GasLimit: 21000,
	}
	h := tx.RecomputeHash()
	rec := &chain.Receipt{
		TxHash:      h,
		BlockNumber: 1234,
		Timestamp:   time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC),
		Status:      true,
		GasUsed:     21000,
		Transfers: []chain.Transfer{
			{Asset: chain.ETHAsset, From: tx.From, To: to, Amount: tx.Value, Depth: 0},
		},
	}
	return h, tx, rec
}

func TestCheckTransaction(t *testing.T) {
	h, tx, _ := validPair()
	if got := integrity.CheckTransaction(h, tx); got != "" {
		t.Fatalf("valid transaction rejected: %s", got)
	}
	if got := integrity.CheckTransaction(h, nil); got != integrity.ReasonNilRecord {
		t.Errorf("nil transaction: got %q, want %q", got, integrity.ReasonNilRecord)
	}

	// A field mutated in flight keeps the stale memoized hash, so only
	// the recomputed identity can expose it.
	mutated := *tx
	_ = mutated.Hash() // memoize the pre-mutation identity
	mutated.From[0] ^= 0xff
	if got := integrity.CheckTransaction(h, &mutated); got != integrity.ReasonTxHashMismatch {
		t.Errorf("mutated transaction: got %q, want %q", got, integrity.ReasonTxHashMismatch)
	}

	over := *tx
	over.Value = ethtypes.WeiFromBig(new(big.Int).Lsh(big.NewInt(1), 256))
	if got := integrity.CheckTransaction(h, &over); got != integrity.ReasonValueBounds {
		t.Errorf("overflowing value: got %q, want %q", got, integrity.ReasonValueBounds)
	}
	neg := *tx
	neg.Value = ethtypes.WeiFromBig(big.NewInt(-1))
	if got := integrity.CheckTransaction(h, &neg); got != integrity.ReasonValueBounds {
		t.Errorf("negative value: got %q, want %q", got, integrity.ReasonValueBounds)
	}
}

func TestCheckReceipt(t *testing.T) {
	h, _, rec := validPair()
	if got := integrity.CheckReceipt(h, rec); got != "" {
		t.Fatalf("valid receipt rejected: %s", got)
	}

	cases := []struct {
		name   string
		mutate func(r *chain.Receipt)
		want   integrity.Reason
	}{
		{"wrong tx hash", func(r *chain.Receipt) { r.TxHash[0] ^= 0xff }, integrity.ReasonReceiptTxMismatch},
		{"implausible block", func(r *chain.Receipt) { r.BlockNumber = integrity.MaxBlockNumber + 1 }, integrity.ReasonBlockBounds},
		{"implausible time", func(r *chain.Receipt) { r.Timestamp = r.Timestamp.AddDate(500, 0, 0) }, integrity.ReasonTimeBounds},
		{"failed with fund flow", func(r *chain.Receipt) { r.Status = false; r.Err = "reverted" }, integrity.ReasonStatusConflict},
		{"success with failure message", func(r *chain.Receipt) { r.Err = "reverted" }, integrity.ReasonStatusConflict},
		{"transfer from nowhere to nowhere", func(r *chain.Receipt) {
			r.Transfers[0].From = ethtypes.Address{}
			r.Transfers[0].To = ethtypes.Address{}
		}, integrity.ReasonTransferBounds},
		{"overflowing transfer", func(r *chain.Receipt) {
			r.Transfers[0].Amount = ethtypes.WeiFromBig(new(big.Int).Lsh(big.NewInt(1), 256))
		}, integrity.ReasonTransferBounds},
		{"log without emitter", func(r *chain.Receipt) {
			r.Logs = []chain.Log{{}}
		}, integrity.ReasonLogBounds},
		{"log with five topics", func(r *chain.Receipt) {
			r.Logs = []chain.Log{{Address: r.Transfers[0].To, Topics: make([]ethtypes.Hash, 5)}}
		}, integrity.ReasonLogBounds},
		{"oversized log data", func(r *chain.Receipt) {
			r.Logs = []chain.Log{{Address: r.Transfers[0].To, Data: make([]byte, integrity.MaxLogData+1)}}
		}, integrity.ReasonLogBounds},
	}
	for _, tc := range cases {
		_, _, fresh := validPair()
		tc.mutate(fresh)
		if got := integrity.CheckReceipt(h, fresh); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}

	if got := integrity.CheckReceipt(h, nil); got != integrity.ReasonNilRecord {
		t.Errorf("nil receipt: got %q, want %q", got, integrity.ReasonNilRecord)
	}

	// A failed call legitimately has no fund flow at all.
	failed := &chain.Receipt{
		TxHash: h, BlockNumber: 1234,
		Timestamp: time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC),
		Status:    false, Err: "reverted",
	}
	if got := integrity.CheckReceipt(h, failed); got != "" {
		t.Errorf("cleanly failed receipt rejected: %s", got)
	}
}

func TestCheckPair(t *testing.T) {
	_, tx, rec := validPair()
	if got := integrity.CheckPair(tx, rec); got != "" {
		t.Fatalf("valid pair rejected: %s", got)
	}

	noFlow := *rec
	noFlow.Transfers = nil
	if got := integrity.CheckPair(tx, &noFlow); got != integrity.ReasonMissingValueTransfer {
		t.Errorf("missing top-level transfer: got %q, want %q", got, integrity.ReasonMissingValueTransfer)
	}

	wrongAmount := *rec
	wrongAmount.Transfers = []chain.Transfer{rec.Transfers[0]}
	wrongAmount.Transfers[0].Amount = ethtypes.Ether(2)
	if got := integrity.CheckPair(tx, &wrongAmount); got != integrity.ReasonMissingValueTransfer {
		t.Errorf("disagreeing transfer amount: got %q, want %q", got, integrity.ReasonMissingValueTransfer)
	}

	// Zero-value calls and contract creations carry no mandatory
	// transfer.
	zero := *tx
	zero.Value = ethtypes.NewWei(0)
	zeroRec := *rec
	zeroRec.Transfers = nil
	if got := integrity.CheckPair(&zero, &zeroRec); got != "" {
		t.Errorf("zero-value pair rejected: %s", got)
	}
	creation := *tx
	creation.To = nil
	if got := integrity.CheckPair(&creation, &zeroRec); got != "" {
		t.Errorf("creation pair rejected: %s", got)
	}
}

func TestCheckLabel(t *testing.T) {
	good := labels.Label{
		Address:  ethtypes.Addr("0x00000000000000000000000000000000000000c0"),
		Source:   labels.SourceEtherscan,
		Category: labels.CategoryPhishing,
		Name:     "Fake_Phishing123",
	}
	if got := integrity.CheckLabel(good); got != "" {
		t.Fatalf("valid label rejected: %s", got)
	}
	cases := []struct {
		name   string
		mutate func(l *labels.Label)
	}{
		{"zero address", func(l *labels.Label) { l.Address = ethtypes.Address{} }},
		{"unknown source", func(l *labels.Label) { l.Source = "pastebin" }},
		{"unknown category", func(l *labels.Label) { l.Category = "memes" }},
		{"oversized name", func(l *labels.Label) { l.Name = string(make([]byte, integrity.MaxLabelName+1)) }},
	}
	for _, tc := range cases {
		l := good
		tc.mutate(&l)
		if got := integrity.CheckLabel(l); got != integrity.ReasonLabelSchema {
			t.Errorf("%s: got %q, want %q", tc.name, got, integrity.ReasonLabelSchema)
		}
	}
}

func TestQuarantineSnapshotRestoreRoundTrip(t *testing.T) {
	q := integrity.NewQuarantine(nil)
	h1, _, _ := validPair()
	q.Add(integrity.Record{Object: "tx", Hash: h1, Reason: integrity.ReasonTxHashMismatch})
	q.Add(integrity.Record{Object: "receipt", Hash: h1, Reason: integrity.ReasonReorgPin, Detail: "block moved"})
	q.MarkPermanent(h1, integrity.ReasonReorgPin)

	snap, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := integrity.NewQuarantine(nil)
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	again, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, again) {
		t.Errorf("snapshot not byte-identical after restore:\n%s\nvs\n%s", snap, again)
	}
	if restored.Total() != q.Total() {
		t.Errorf("restored Total() = %d, want %d", restored.Total(), q.Total())
	}
	if r, ok := restored.Permanent(h1); !ok || r != integrity.ReasonReorgPin {
		t.Errorf("restored Permanent(h1) = %q, %v; want %q, true", r, ok, integrity.ReasonReorgPin)
	}
}

func TestQuarantineCapKeepsCountingPastRetention(t *testing.T) {
	q := integrity.NewQuarantine(nil)
	q.Cap = 2
	h, _, _ := validPair()
	for i := 0; i < 5; i++ {
		q.Add(integrity.Record{Object: "tx", Hash: h, Reason: integrity.ReasonTxHashMismatch})
	}
	if got := len(q.Records()); got != 2 {
		t.Errorf("retained %d record details, want 2 (Cap)", got)
	}
	if got := q.Total(); got != 5 {
		t.Errorf("Total() = %d, want 5 (counters are exact past the cap)", got)
	}
	if got := q.Counts()["tx/"+string(integrity.ReasonTxHashMismatch)]; got != 5 {
		t.Errorf("reason count = %d, want 5", got)
	}
}

func TestLabelBudgetTripsPerSource(t *testing.T) {
	b := integrity.NewLabelBudget(2)
	if err := b.Note("etherscan", integrity.ReasonLabelSchema); err != nil {
		t.Fatalf("first rejection tripped the budget: %v", err)
	}
	if err := b.Note("etherscan", integrity.ReasonLabelMalformed); err != nil {
		t.Fatalf("second rejection tripped the budget: %v", err)
	}
	if err := b.Note("etherscan", integrity.ReasonLabelSchema); err == nil {
		t.Fatal("third rejection did not trip the per-source budget")
	}
	// Other sources keep their own budget.
	if err := b.Note("chainabuse", integrity.ReasonLabelSchema); err != nil {
		t.Fatalf("independent source tripped a shared budget: %v", err)
	}
	if got := b.Total(); got != 4 {
		t.Errorf("Total() = %d, want 4", got)
	}
}
