package integrity

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/ethtypes"
	"repro/internal/obs"
)

// ErrBudgetExceeded aborts a run whose quarantine grew past the
// configured -max-quarantine cap: at that point the source is too
// rotten for graceful degradation to be honest.
var ErrBudgetExceeded = errors.New("integrity: quarantine budget exceeded")

// Record is one quarantined response. It describes the rejected bytes'
// provenance, not the (possibly later recovered) true record.
type Record struct {
	// Object is what kind of record was rejected: "tx", "receipt", or
	// "label".
	Object string `json:"object"`
	// Hash identifies the requested record for tx/receipt objects.
	Hash ethtypes.Hash `json:"hash"`
	// Reason is the violated validation rule.
	Reason Reason `json:"reason"`
	// Detail is a short human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// DefaultCap bounds the retained per-record detail; counters keep
// counting past it.
const DefaultCap = 1024

// Quarantine is the reason-coded store of rejected records. Counters
// are exact; per-record details are retained up to Cap entries so an
// adversarial source cannot balloon memory. The store is safe for
// concurrent use and checkpointable (Snapshot/Restore implement
// core.QuarantineState).
type Quarantine struct {
	// Cap bounds retained record details (default DefaultCap). Set
	// before first use.
	Cap int

	mu        sync.Mutex
	records   []Record
	dropped   int64
	counts    map[string]int64 // "object/reason" -> rejections
	permanent map[ethtypes.Hash]Reason

	added        *obs.CounterVec
	permanentCtr *obs.Counter
	droppedCtr   *obs.Counter
	size         *obs.Gauge
}

// NewQuarantine builds an empty store, optionally registering
// daas_quarantine_* instruments in reg (nil reg means no-op).
func NewQuarantine(reg *obs.Registry) *Quarantine {
	return &Quarantine{
		counts:       make(map[string]int64),
		permanent:    make(map[ethtypes.Hash]Reason),
		added:        reg.CounterVec("daas_quarantine_records_total", "records quarantined by object kind and reason", "object", "reason"),
		permanentCtr: reg.Counter("daas_quarantine_permanent_total", "records quarantined permanently after exhausting re-fetches"),
		droppedCtr:   reg.Counter("daas_quarantine_dropped_total", "quarantine record details dropped by the retention cap"),
		size:         reg.Gauge("daas_quarantine_size", "quarantine record details currently retained"),
	}
}

func (q *Quarantine) cap() int {
	if q.Cap > 0 {
		return q.Cap
	}
	return DefaultCap
}

// Add records one rejection.
func (q *Quarantine) Add(rec Record) {
	q.mu.Lock()
	q.counts[rec.Object+"/"+string(rec.Reason)]++
	if len(q.records) < q.cap() {
		q.records = append(q.records, rec)
	} else {
		q.dropped++
		q.droppedCtr.Inc()
	}
	size := len(q.records)
	q.mu.Unlock()
	q.added.With(rec.Object, string(rec.Reason)).Inc()
	q.size.Set(int64(size))
}

// MarkPermanent records that h exhausted its re-fetch budget; further
// requests for it short-circuit to core.ErrQuarantined.
func (q *Quarantine) MarkPermanent(h ethtypes.Hash, reason Reason) {
	q.mu.Lock()
	_, known := q.permanent[h]
	if !known {
		q.permanent[h] = reason
	}
	q.mu.Unlock()
	if !known {
		q.permanentCtr.Inc()
	}
}

// Permanent reports whether h is permanently quarantined and why.
func (q *Quarantine) Permanent(h ethtypes.Hash) (Reason, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r, ok := q.permanent[h]
	return r, ok
}

// Total counts every rejection seen (including detail-dropped ones).
func (q *Quarantine) Total() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var n int64
	for _, v := range q.counts {
		n += v
	}
	return n
}

// PermanentCount counts permanently quarantined records.
func (q *Quarantine) PermanentCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.permanent)
}

// Counts returns the per-"object/reason" rejection counters.
func (q *Quarantine) Counts() map[string]int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int64, len(q.counts))
	for k, v := range q.counts {
		out[k] = v
	}
	return out
}

// Records returns a copy of the retained record details.
func (q *Quarantine) Records() []Record {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]Record(nil), q.records...)
}

// quarantineJSON is the snapshot/export format. Maps serialize with
// sorted keys, so identical contents always produce identical bytes.
type quarantineJSON struct {
	Records   []Record          `json:"records"`
	Dropped   int64             `json:"dropped"`
	Counts    map[string]int64  `json:"counts"`
	Permanent map[string]string `json:"permanent"`
}

func (q *Quarantine) snapshotLocked() quarantineJSON {
	out := quarantineJSON{
		Records:   append([]Record(nil), q.records...),
		Dropped:   q.dropped,
		Counts:    make(map[string]int64, len(q.counts)),
		Permanent: make(map[string]string, len(q.permanent)),
	}
	if out.Records == nil {
		out.Records = []Record{}
	}
	for k, v := range q.counts {
		out.Counts[k] = v
	}
	for h, r := range q.permanent {
		out.Permanent[h.Hex()] = string(r)
	}
	return out
}

// Snapshot serializes the store deterministically; it implements
// core.QuarantineState so checkpoints can carry the quarantine across
// an interrupted build.
func (q *Quarantine) Snapshot() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	buf, err := json.Marshal(q.snapshotLocked())
	if err != nil {
		return nil, fmt.Errorf("integrity: serializing quarantine: %w", err)
	}
	return buf, nil
}

// Restore replaces the store contents with a Snapshot.
func (q *Quarantine) Restore(buf []byte) error {
	var in quarantineJSON
	if err := json.Unmarshal(buf, &in); err != nil {
		return fmt.Errorf("integrity: decoding quarantine snapshot: %w", err)
	}
	permanent := make(map[ethtypes.Hash]Reason, len(in.Permanent))
	for hex, r := range in.Permanent {
		h, err := ethtypes.HexToHash(hex)
		if err != nil {
			return fmt.Errorf("integrity: quarantine snapshot hash: %w", err)
		}
		permanent[h] = Reason(r)
	}
	q.mu.Lock()
	q.records = append([]Record(nil), in.Records...)
	q.dropped = in.Dropped
	q.counts = make(map[string]int64, len(in.Counts))
	for k, v := range in.Counts {
		q.counts[k] = v
	}
	q.permanent = permanent
	size := len(q.records)
	q.mu.Unlock()
	q.size.Set(int64(size))
	return nil
}

// Export writes the store as indented JSON for operators.
func (q *Quarantine) Export(w io.Writer) error {
	q.mu.Lock()
	snap := q.snapshotLocked()
	q.mu.Unlock()
	buf, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("integrity: exporting quarantine: %w", err)
	}
	if _, err := w.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("integrity: exporting quarantine: %w", err)
	}
	return nil
}

// Summarize writes a compact reason-coded summary, for -strict failure
// reports.
func (q *Quarantine) Summarize(w io.Writer) error {
	counts := q.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintf(w, "quarantine: %d rejection(s), %d record(s) permanently quarantined\n",
		q.Total(), q.PermanentCount()); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "  %-32s %d\n", k, counts[k]); err != nil {
			return err
		}
	}
	return nil
}

// LabelBudget tracks per-source label rejections against an error
// budget: a community feed is allowed some noise, but a source whose
// rejections exceed the budget fails ingestion loudly instead of
// silently seeding from a poisoned list.
type LabelBudget struct {
	// MaxPerSource is the rejection allowance per source (default 64).
	MaxPerSource int

	mu      sync.Mutex
	rejects map[string]int64 // "source/reason" -> count
}

// NewLabelBudget returns a budget allowing maxPerSource rejections per
// source (0 = default).
func NewLabelBudget(maxPerSource int) *LabelBudget {
	return &LabelBudget{MaxPerSource: maxPerSource, rejects: make(map[string]int64)}
}

func (b *LabelBudget) max() int64 {
	if b.MaxPerSource > 0 {
		return int64(b.MaxPerSource)
	}
	return 64
}

// Note records one rejected entry from source. It returns an error only
// when the source's budget is exhausted.
func (b *LabelBudget) Note(source string, reason Reason) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rejects[source+"/"+string(reason)]++
	var total int64
	for k, v := range b.rejects {
		if len(k) > len(source) && k[:len(source)+1] == source+"/" {
			total += v
		}
	}
	if total > b.max() {
		return fmt.Errorf("integrity: label source %q exceeded its error budget (%d rejections, budget %d)",
			source, total, b.max())
	}
	return nil
}

// Rejects returns the per-"source/reason" rejection counters.
func (b *LabelBudget) Rejects() map[string]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64, len(b.rejects))
	for k, v := range b.rejects {
		out[k] = v
	}
	return out
}

// Total counts all rejections across sources.
func (b *LabelBudget) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, v := range b.rejects {
		n += v
	}
	return n
}
