package integrity

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/obs"
)

// DefaultMaxRefetch is the re-fetch allowance per record. It is sized
// so that under seeded corruption injection the probability of a real
// record exhausting it (and perturbing the dataset) is negligible,
// while a source that keeps returning garbage still converges to a
// permanent quarantine quickly.
const DefaultMaxRefetch = 5

// Source decorates a core.ChainSource with admission control: every
// fetched transaction and receipt is validated (CheckTransaction,
// CheckReceipt, CheckPair, reorg pins) before it reaches the caller.
// An invalid response is quarantined and re-fetched up to MaxRefetch
// times; a record that never validates is quarantined permanently and
// surfaces as core.ErrQuarantined (nil entries on batch paths).
//
// In the build stack the decorator sits between the fetch cache and the
// retry layer (cache → integrity → retry → metrics), so the cache only
// ever stores validated records and every re-fetch spends real wire
// attempts. One Source instance should be shared across pipeline
// stages: its per-transaction pins are what let a later stage detect a
// source that silently reorged between fetches.
type Source struct {
	// MaxRefetch overrides DefaultMaxRefetch when positive.
	MaxRefetch int
	// MaxQuarantine, when positive, fails the run (ErrBudgetExceeded)
	// once total quarantined rejections exceed it — the -max-quarantine
	// CLI knob.
	MaxQuarantine int64

	src core.ChainSource
	q   *Quarantine

	mu   sync.Mutex
	pins map[ethtypes.Hash]*pin

	checks     *obs.CounterVec
	violations *obs.CounterVec
	refetches  *obs.Counter
	recovered  *obs.Counter
}

// pin remembers what was first admitted under a transaction hash:
// enough of the transaction for receipt cross-checks, and the receipt's
// chain position for reorg detection across re-fetches and stages.
type pin struct {
	haveTx  bool
	txFrom  ethtypes.Address
	txTo    *ethtypes.Address
	txValue ethtypes.Wei

	haveRec bool
	block   uint64
	unix    int64
	status  bool
}

// Wrap decorates src with validation backed by the quarantine store q
// (one is created when nil), registering daas_integrity_* instruments
// in reg (nil means no-op).
func Wrap(src core.ChainSource, q *Quarantine, reg *obs.Registry) *Source {
	if q == nil {
		q = NewQuarantine(reg)
	}
	return &Source{
		src:        src,
		q:          q,
		pins:       make(map[ethtypes.Hash]*pin),
		checks:     reg.CounterVec("daas_integrity_checks_total", "records validated by object kind", "object"),
		violations: reg.CounterVec("daas_integrity_violations_total", "validation failures by reason", "reason"),
		refetches:  reg.Counter("daas_integrity_refetches_total", "re-fetches of records that failed validation"),
		recovered:  reg.Counter("daas_integrity_recovered_total", "records admitted clean after a failed first response"),
	}
}

// Unwrap returns the wrapped source.
func (s *Source) Unwrap() core.ChainSource { return s.src }

// ReleasePinsAbove drops every receipt pin above the given block
// number, returning how many were released. A reorg rollback calls
// this before reprocessing the fork: transactions re-mined into a
// different block are legitimate after a reorg, and stale pins would
// reject their new positions as ReasonReorgPin violations. Transaction
// pins (sender/recipient/value) are kept — a reorg moves a
// transaction, it never rewrites its body.
func (s *Source) ReleasePinsAbove(block uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	released := 0
	for h, p := range s.pins {
		if !p.haveRec || p.block <= block {
			continue
		}
		released++
		if p.haveTx {
			s.pins[h] = &pin{haveTx: true, txFrom: p.txFrom, txTo: p.txTo, txValue: p.txValue}
		} else {
			delete(s.pins, h)
		}
	}
	return released
}

// Quarantine returns the backing store.
func (s *Source) Quarantine() *Quarantine { return s.q }

func (s *Source) maxRefetch() int {
	if s.MaxRefetch > 0 {
		return s.MaxRefetch
	}
	return DefaultMaxRefetch
}

// budget enforces MaxQuarantine after a rejection.
func (s *Source) budget() error {
	if s.MaxQuarantine > 0 && s.q.Total() > s.MaxQuarantine {
		return fmt.Errorf("integrity: %d rejections exceed -max-quarantine %d: %w",
			s.q.Total(), s.MaxQuarantine, ErrBudgetExceeded)
	}
	return nil
}

func (s *Source) pinOf(h ethtypes.Hash) *pin {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pins[h]
	if !ok {
		p = &pin{}
		s.pins[h] = p
	}
	return p
}

// checkTransaction runs the per-record rules and pins the admitted
// summary.
func (s *Source) checkTransaction(h ethtypes.Hash, tx *chain.Transaction) Reason {
	s.checks.With("tx").Inc()
	if reason := CheckTransaction(h, tx); reason != "" {
		return reason
	}
	p := s.pinOf(h)
	s.mu.Lock()
	if !p.haveTx {
		p.haveTx = true
		p.txFrom = tx.From
		if tx.To != nil {
			to := *tx.To
			p.txTo = &to
		}
		p.txValue = tx.Value
	}
	s.mu.Unlock()
	return ""
}

// checkReceipt runs the per-record rules, the tx↔receipt agreement
// check against the pinned transaction, and the reorg pin; a clean
// receipt is pinned for future re-fetch comparison.
func (s *Source) checkReceipt(h ethtypes.Hash, rec *chain.Receipt) Reason {
	s.checks.With("receipt").Inc()
	if reason := CheckReceipt(h, rec); reason != "" {
		return reason
	}
	p := s.pinOf(h)
	s.mu.Lock()
	haveTx, pinned := p.haveTx, *p
	s.mu.Unlock()
	if haveTx {
		pinTx := &chain.Transaction{From: pinned.txFrom, To: pinned.txTo, Value: pinned.txValue}
		if reason := CheckPair(pinTx, rec); reason != "" {
			return reason
		}
	}
	if pinned.haveRec {
		if rec.BlockNumber != pinned.block || rec.Timestamp.Unix() != pinned.unix || rec.Status != pinned.status {
			return ReasonReorgPin
		}
		return ""
	}
	s.mu.Lock()
	if !p.haveRec {
		p.haveRec = true
		p.block = rec.BlockNumber
		p.unix = rec.Timestamp.Unix()
		p.status = rec.Status
	}
	s.mu.Unlock()
	return ""
}

// quarantineOne records a rejection and enforces the budget.
func (s *Source) quarantineOne(object string, h ethtypes.Hash, reason Reason) error {
	s.violations.With(string(reason)).Inc()
	s.q.Add(Record{Object: object, Hash: h, Reason: reason})
	return s.budget()
}

// transactionValidated is the admission loop for one transaction.
func (s *Source) transactionValidated(h ethtypes.Hash, fetch func() (*chain.Transaction, error)) (*chain.Transaction, error) {
	if reason, ok := s.q.Permanent(h); ok {
		return nil, fmt.Errorf("integrity: transaction %s: %s: %w", h, reason, core.ErrQuarantined)
	}
	var reason Reason
	for attempt := 0; attempt <= s.maxRefetch(); attempt++ {
		if attempt > 0 {
			s.refetches.Inc()
		}
		tx, err := fetch()
		if err != nil {
			return nil, err
		}
		if reason = s.checkTransaction(h, tx); reason == "" {
			if attempt > 0 {
				s.recovered.Inc()
			}
			return tx, nil
		}
		if err := s.quarantineOne("tx", h, reason); err != nil {
			return nil, err
		}
	}
	s.q.MarkPermanent(h, reason)
	return nil, fmt.Errorf("integrity: transaction %s: %s: %w", h, reason, core.ErrQuarantined)
}

// receiptValidated is the admission loop for one receipt.
func (s *Source) receiptValidated(h ethtypes.Hash, fetch func() (*chain.Receipt, error)) (*chain.Receipt, error) {
	if reason, ok := s.q.Permanent(h); ok {
		return nil, fmt.Errorf("integrity: receipt %s: %s: %w", h, reason, core.ErrQuarantined)
	}
	var reason Reason
	for attempt := 0; attempt <= s.maxRefetch(); attempt++ {
		if attempt > 0 {
			s.refetches.Inc()
		}
		rec, err := fetch()
		if err != nil {
			return nil, err
		}
		if reason = s.checkReceipt(h, rec); reason == "" {
			if attempt > 0 {
				s.recovered.Inc()
			}
			return rec, nil
		}
		if err := s.quarantineOne("receipt", h, reason); err != nil {
			return nil, err
		}
	}
	s.q.MarkPermanent(h, reason)
	return nil, fmt.Errorf("integrity: receipt %s: %s: %w", h, reason, core.ErrQuarantined)
}

// Transaction implements core.ChainSource.
func (s *Source) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	return s.transactionValidated(h, func() (*chain.Transaction, error) { return s.src.Transaction(h) })
}

// Receipt implements core.ChainSource.
func (s *Source) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	return s.receiptValidated(h, func() (*chain.Receipt, error) { return s.src.Receipt(h) })
}

// TransactionContext implements core.ContextSource; re-fetches carry
// the caller's context to the wire.
func (s *Source) TransactionContext(ctx context.Context, h ethtypes.Hash) (*chain.Transaction, error) {
	return s.transactionValidated(h, func() (*chain.Transaction, error) {
		return core.SourceTransaction(ctx, s.src, h)
	})
}

// ReceiptContext implements core.ContextSource.
func (s *Source) ReceiptContext(ctx context.Context, h ethtypes.Hash) (*chain.Receipt, error) {
	return s.receiptValidated(h, func() (*chain.Receipt, error) {
		return core.SourceReceipt(ctx, s.src, h)
	})
}

// TransactionsOf implements core.ChainSource. Hash lists carry no
// cross-checkable structure; a bogus entry is caught when its record is
// fetched.
func (s *Source) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	return s.src.TransactionsOf(addr)
}

// IsContract implements core.ChainSource.
func (s *Source) IsContract(addr ethtypes.Address) (bool, error) {
	return s.src.IsContract(addr)
}

// Code implements core.CodeSource when the wrapped source does.
func (s *Source) Code(addr ethtypes.Address) ([]byte, error) {
	cs, ok := s.src.(core.CodeSource)
	if !ok {
		return nil, fmt.Errorf("integrity: source %T does not serve bytecode", s.src)
	}
	return cs.Code(addr)
}

// BatchTransactions implements core.BatchSource. Every entry of the
// batch response is validated; an invalid or permanently quarantined
// entry becomes nil in the result (the degradation contract callers
// must handle), never an aborted batch.
func (s *Source) BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error) {
	out := make([]*chain.Transaction, len(hs))
	bs, canBatch := s.src.(core.BatchSource)
	if !canBatch {
		for i, h := range hs {
			tx, err := s.Transaction(h)
			if err != nil {
				if isQuarantined(err) {
					continue
				}
				return nil, err
			}
			out[i] = tx
		}
		return out, nil
	}
	want, idx := s.batchPlan(hs)
	txs, err := bs.BatchTransactions(want)
	if err != nil {
		return nil, err
	}
	if len(txs) != len(want) {
		return nil, fmt.Errorf("integrity: batch source returned %d transactions for %d hashes", len(txs), len(want))
	}
	for j, h := range want {
		tx := txs[j]
		if reason := s.checkTransaction(h, tx); reason != "" {
			if err := s.quarantineOne("tx", h, reason); err != nil {
				return nil, err
			}
			// The batched response was rejected: recover this entry
			// through the single-record admission loop.
			tx, err = s.transactionValidated(h, func() (*chain.Transaction, error) { return s.src.Transaction(h) })
			if err != nil {
				if isQuarantined(err) {
					continue
				}
				return nil, err
			}
		}
		out[idx[j]] = tx
	}
	return out, nil
}

// BatchReceipts implements core.BatchSource; see BatchTransactions.
func (s *Source) BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error) {
	out := make([]*chain.Receipt, len(hs))
	bs, canBatch := s.src.(core.BatchSource)
	if !canBatch {
		for i, h := range hs {
			rec, err := s.Receipt(h)
			if err != nil {
				if isQuarantined(err) {
					continue
				}
				return nil, err
			}
			out[i] = rec
		}
		return out, nil
	}
	want, idx := s.batchPlan(hs)
	recs, err := bs.BatchReceipts(want)
	if err != nil {
		return nil, err
	}
	if len(recs) != len(want) {
		return nil, fmt.Errorf("integrity: batch source returned %d receipts for %d hashes", len(recs), len(want))
	}
	for j, h := range want {
		rec := recs[j]
		if reason := s.checkReceipt(h, rec); reason != "" {
			if err := s.quarantineOne("receipt", h, reason); err != nil {
				return nil, err
			}
			rec, err = s.receiptValidated(h, func() (*chain.Receipt, error) { return s.src.Receipt(h) })
			if err != nil {
				if isQuarantined(err) {
					continue
				}
				return nil, err
			}
		}
		out[idx[j]] = rec
	}
	return out, nil
}

// batchPlan drops permanently quarantined hashes from a batch request,
// returning the hashes to fetch and their positions in the caller's
// slice.
func (s *Source) batchPlan(hs []ethtypes.Hash) (want []ethtypes.Hash, idx []int) {
	want = make([]ethtypes.Hash, 0, len(hs))
	idx = make([]int, 0, len(hs))
	for i, h := range hs {
		if _, gone := s.q.Permanent(h); gone {
			continue
		}
		want = append(want, h)
		idx = append(idx, i)
	}
	return want, idx
}

// isQuarantined reports whether err is the graceful-degradation signal
// (as opposed to a real fetch failure that must abort).
func isQuarantined(err error) bool {
	return errors.Is(err, core.ErrQuarantined)
}
