package integrity_test

import (
	"math/big"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/integrity"
	"repro/internal/labels"
)

// knownReasons is every reason code the validators may return; the
// empty string means admitted.
var knownReasons = map[integrity.Reason]bool{
	"":                                   true,
	integrity.ReasonNilRecord:            true,
	integrity.ReasonTxHashMismatch:       true,
	integrity.ReasonReceiptTxMismatch:    true,
	integrity.ReasonStatusConflict:       true,
	integrity.ReasonMissingValueTransfer: true,
	integrity.ReasonTransferBounds:       true,
	integrity.ReasonLogBounds:            true,
	integrity.ReasonBlockBounds:          true,
	integrity.ReasonTimeBounds:           true,
	integrity.ReasonReorgPin:             true,
	integrity.ReasonValueBounds:          true,
	integrity.ReasonLabelMalformed:       true,
	integrity.ReasonLabelSchema:          true,
}

// byteReader consumes fuzz input, zero-padding past the end so every
// input length decodes to a full record.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) next(n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n && r.off < len(r.data); i++ {
		out[i] = r.data[r.off]
		r.off++
	}
	return out
}

func (r *byteReader) u64() uint64 {
	b := r.next(8)
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

func (r *byteReader) flag() bool { return r.next(1)[0]&1 == 1 }

// recordFromBytes decodes an arbitrary transaction+receipt pair from
// fuzz input, covering nil records, self-consistent pairs, and every
// corruption shape the validators guard against.
func recordFromBytes(data []byte) (ethtypes.Hash, *chain.Transaction, *chain.Receipt, labels.Label) {
	r := &byteReader{data: data}

	var tx *chain.Transaction
	if !r.flag() {
		tx = &chain.Transaction{
			Nonce:    r.u64(),
			From:     ethtypes.BytesToAddress(r.next(20)),
			Value:    ethtypes.WeiFromBig(new(big.Int).SetBytes(r.next(40))),
			Data:     r.next(int(r.u64() % 64)),
			GasLimit: r.u64(),
		}
		if r.flag() {
			to := ethtypes.BytesToAddress(r.next(20))
			tx.To = &to
		}
		if r.flag() {
			tx.Value = ethtypes.WeiFromBig(new(big.Int).Neg(tx.Value.Big()))
		}
	}

	// Request identity: sometimes the honest recomputed hash, sometimes
	// arbitrary bytes.
	var h ethtypes.Hash
	if tx != nil && r.flag() {
		h = tx.RecomputeHash()
	} else {
		h = ethtypes.BytesToHash(r.next(32))
	}

	var rec *chain.Receipt
	if !r.flag() {
		rec = &chain.Receipt{
			TxHash:      h,
			BlockNumber: r.u64(),
			Timestamp:   time.Unix(int64(r.u64()%(1<<34))-(1<<33), 0),
			Status:      r.flag(),
			GasUsed:     r.u64(),
			Err:         string(r.next(int(r.u64() % 16))),
		}
		if r.flag() {
			rec.TxHash = ethtypes.BytesToHash(r.next(32))
		}
		for i := r.u64() % 4; i > 0; i-- {
			rec.Transfers = append(rec.Transfers, chain.Transfer{
				Asset:  chain.Asset{Kind: chain.AssetKind(r.u64() % 4)},
				From:   ethtypes.BytesToAddress(r.next(20)),
				To:     ethtypes.BytesToAddress(r.next(20)),
				Amount: ethtypes.WeiFromBig(new(big.Int).SetBytes(r.next(40))),
				Depth:  int(r.u64() % 8),
			})
		}
		for i := r.u64() % 3; i > 0; i-- {
			lg := chain.Log{
				Address: ethtypes.BytesToAddress(r.next(20)),
				Topics:  make([]ethtypes.Hash, r.u64()%8),
				Data:    make([]byte, r.u64()%(integrity.MaxLogData+2)),
			}
			rec.Logs = append(rec.Logs, lg)
		}
	}

	sources := []labels.Source{labels.SourceEtherscan, labels.SourceChainabuse, "bogus", ""}
	categories := []labels.Category{labels.CategoryPhishing, labels.CategoryExchange, "bogus", ""}
	lbl := labels.Label{
		Address:  ethtypes.BytesToAddress(r.next(20)),
		Source:   sources[r.u64()%uint64(len(sources))],
		Category: categories[r.u64()%uint64(len(categories))],
		Name:     string(r.next(int(r.u64() % (integrity.MaxLabelName + 8)))),
	}
	return h, tx, rec, lbl
}

// FuzzValidateRecord asserts the validation surface is total: no input
// panics, and every verdict is a known reason code. The seed corpus
// walks one representative of each corruption shape.
func FuzzValidateRecord(f *testing.F) {
	f.Add([]byte(nil))        // nil records
	f.Add([]byte{0x00})       // minimal tx, arbitrary hash
	f.Add([]byte{0x01, 0x01}) // nil tx, receipt present
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed) // dense record with transfers and logs
	f.Fuzz(func(t *testing.T, data []byte) {
		h, tx, rec, lbl := recordFromBytes(data)
		verdicts := []integrity.Reason{
			integrity.CheckTransaction(h, tx),
			integrity.CheckReceipt(h, rec),
			integrity.CheckPair(tx, rec),
			integrity.CheckLabel(lbl),
		}
		for i, v := range verdicts {
			if !knownReasons[v] {
				t.Fatalf("check %d returned unknown reason %q", i, v)
			}
		}
	})
}
