package integrity_test

import (
	"errors"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/integrity"
)

// scriptedSource serves one transaction and receipt, corrupting the
// first corruptTx/corruptRec responses, and counts fetches.
type scriptedSource struct {
	h   ethtypes.Hash
	tx  *chain.Transaction
	rec *chain.Receipt

	corruptTx  int
	corruptRec int
	reorgAfter int // after this many receipt fetches, answer from a different block

	txFetches  int
	recFetches int
}

func newScriptedSource() *scriptedSource {
	h, tx, rec := validPair()
	return &scriptedSource{h: h, tx: tx, rec: rec}
}

func (s *scriptedSource) TransactionsOf(ethtypes.Address) ([]ethtypes.Hash, error) {
	return []ethtypes.Hash{s.h}, nil
}

func (s *scriptedSource) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	s.txFetches++
	cp := *s.tx
	if s.corruptTx > 0 {
		s.corruptTx--
		_ = cp.Hash() // memoize before mutating, as wire corruption would
		cp.From[0] ^= 0xff
	}
	return &cp, nil
}

func (s *scriptedSource) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	s.recFetches++
	cp := *s.rec
	if s.corruptRec > 0 {
		s.corruptRec--
		cp.TxHash[0] ^= 0xff
	}
	if s.reorgAfter > 0 && s.recFetches > s.reorgAfter {
		cp.BlockNumber++
	}
	return &cp, nil
}

func (s *scriptedSource) IsContract(ethtypes.Address) (bool, error) { return false, nil }

func TestSourceRefetchesPastCorruption(t *testing.T) {
	src := newScriptedSource()
	src.corruptTx = 2
	is := integrity.Wrap(src, nil, nil)

	tx, err := is.Transaction(src.h)
	if err != nil {
		t.Fatalf("corrupt-then-clean source not recovered: %v", err)
	}
	if tx.RecomputeHash() != src.h {
		t.Error("admitted transaction does not match requested identity")
	}
	if src.txFetches != 3 {
		t.Errorf("fetches = %d, want 3 (two corrupt, one clean)", src.txFetches)
	}
	if got := is.Quarantine().Total(); got != 2 {
		t.Errorf("quarantine total = %d, want 2", got)
	}
	if got := is.Quarantine().PermanentCount(); got != 0 {
		t.Errorf("recovered record marked permanent (%d)", got)
	}
}

func TestSourceQuarantinesPermanentlyAndShortCircuits(t *testing.T) {
	src := newScriptedSource()
	src.corruptTx = 1 << 30 // never clean
	is := integrity.Wrap(src, nil, nil)
	is.MaxRefetch = 3

	_, err := is.Transaction(src.h)
	if !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("error = %v, want ErrQuarantined", err)
	}
	if src.txFetches != 4 {
		t.Errorf("fetches = %d, want 4 (initial + MaxRefetch)", src.txFetches)
	}
	if reason, ok := is.Quarantine().Permanent(src.h); !ok || reason != integrity.ReasonTxHashMismatch {
		t.Errorf("Permanent = %q, %v; want %q, true", reason, ok, integrity.ReasonTxHashMismatch)
	}

	// A permanently quarantined hash never reaches the wire again.
	before := src.txFetches
	if _, err := is.Transaction(src.h); !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("second fetch error = %v, want ErrQuarantined", err)
	}
	if src.txFetches != before {
		t.Errorf("permanent quarantine still fetched (%d -> %d)", before, src.txFetches)
	}
}

func TestSourceDetectsReorgAcrossRefetches(t *testing.T) {
	src := newScriptedSource()
	src.reorgAfter = 1 // first receipt answer pins; every later one moved blocks
	is := integrity.Wrap(src, nil, nil)
	is.MaxRefetch = 2

	if _, err := is.Receipt(src.h); err != nil {
		t.Fatalf("first fetch rejected: %v", err)
	}
	_, err := is.Receipt(src.h)
	if !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("reorged re-fetch error = %v, want ErrQuarantined", err)
	}
	if reason, ok := is.Quarantine().Permanent(src.h); !ok || reason != integrity.ReasonReorgPin {
		t.Errorf("Permanent = %q, %v; want %q, true", reason, ok, integrity.ReasonReorgPin)
	}
}

func TestSourceReceiptCrossCheckedAgainstPinnedTransaction(t *testing.T) {
	src := newScriptedSource()
	// The receipt passes its own checks but contradicts the transaction:
	// drop the mandatory top-level value transfer.
	src.rec.Transfers = nil
	is := integrity.Wrap(src, nil, nil)
	is.MaxRefetch = 1

	if _, err := is.Transaction(src.h); err != nil {
		t.Fatal(err)
	}
	_, err := is.Receipt(src.h)
	if !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("pair-violating receipt error = %v, want ErrQuarantined", err)
	}
	if reason, _ := is.Quarantine().Permanent(src.h); reason != integrity.ReasonMissingValueTransfer {
		t.Errorf("reason = %q, want %q", reason, integrity.ReasonMissingValueTransfer)
	}
}

func TestSourceBudgetAbortsRottenSource(t *testing.T) {
	src := newScriptedSource()
	src.corruptTx = 1 << 30
	is := integrity.Wrap(src, nil, nil)
	is.MaxQuarantine = 2

	_, err := is.Transaction(src.h)
	if !errors.Is(err, integrity.ErrBudgetExceeded) {
		t.Fatalf("error = %v, want ErrBudgetExceeded", err)
	}
}

func TestBatchEntriesDegradeToNil(t *testing.T) {
	src := newScriptedSource()
	src.corruptTx = 1 << 30
	is := integrity.Wrap(src, nil, nil)
	is.MaxRefetch = 1

	out, err := is.BatchTransactions([]ethtypes.Hash{src.h})
	if err != nil {
		t.Fatalf("batch aborted instead of degrading: %v", err)
	}
	if len(out) != 1 || out[0] != nil {
		t.Fatalf("corrupt batch entry = %v, want nil placeholder", out)
	}

	// The now-permanent hash is pre-filtered from later batches.
	before := src.txFetches
	out, err = is.BatchTransactions([]ethtypes.Hash{src.h})
	if err != nil || len(out) != 1 || out[0] != nil {
		t.Fatalf("second batch = %v, %v; want one nil entry", out, err)
	}
	if src.txFetches != before {
		t.Errorf("permanently quarantined hash hit the wire in a batch (%d -> %d)", before, src.txFetches)
	}
}
