// Package integrity is the admission control layer for untrusted chain
// data. Every record the measurement pipeline fetches — transactions,
// receipts, label entries — is cross-checked before it may influence
// the §4.3 profit-sharing classifier or the §7.1 family clustering:
//
//   - a transaction must hash (recomputed, not memoized) to the
//     identity it was requested under;
//   - a receipt must reference the requested transaction, respect
//     structural bounds on transfers and log data, and agree with its
//     transaction (a failed receipt carries no fund flow; a successful
//     value call records its top-level ETH transfer first);
//   - a re-fetched receipt must agree with the block-number/timestamp
//     pin taken at first admission, or the source is answering from a
//     reorged or stale view;
//   - a label entry must match the published schema, with a per-source
//     error budget so one rotten feed cannot poison seeding silently.
//
// Invalid records are never fatal and never dropped silently: each one
// is recorded in a Quarantine store (reason-coded, capped, exportable)
// and re-fetched up to MaxRefetch times. A record that keeps failing is
// quarantined permanently and surfaces as core.ErrQuarantined, which
// the pipeline converts into graceful degradation (the affected account
// is marked degraded in the completeness manifest, not fixpointed).
//
// All Check* functions are pure, total, and panic-free on arbitrary
// inputs — they are the fuzzing surface (FuzzValidateRecord).
package integrity

import (
	"math/big"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/labels"
)

// Reason codes a validation failure. The empty string means the record
// passed. Codes are stable: they key quarantine exports, metrics
// labels, and checkpoint snapshots.
type Reason string

// Validation failure reasons.
const (
	// ReasonNilRecord: the source returned no record without an error.
	ReasonNilRecord Reason = "nil-record"
	// ReasonTxHashMismatch: the transaction's recomputed hash differs
	// from the hash it was requested under (field mutation in flight).
	ReasonTxHashMismatch Reason = "tx-hash-mismatch"
	// ReasonReceiptTxMismatch: the receipt references a different
	// transaction than requested.
	ReasonReceiptTxMismatch Reason = "receipt-tx-mismatch"
	// ReasonStatusConflict: a failed receipt carrying fund flow, or a
	// successful one carrying a failure message.
	ReasonStatusConflict Reason = "status-conflict"
	// ReasonMissingValueTransfer: a successful value-bearing call whose
	// receipt does not open with the mandatory top-level ETH transfer.
	ReasonMissingValueTransfer Reason = "missing-value-transfer"
	// ReasonTransferBounds: a transfer with a negative, overflowing, or
	// endpoint-less amount.
	ReasonTransferBounds Reason = "transfer-bounds"
	// ReasonLogBounds: a log with no emitting address, more than four
	// topics, or oversized data (truncated/garbled responses).
	ReasonLogBounds Reason = "log-bounds"
	// ReasonBlockBounds: a block number beyond any plausible height.
	ReasonBlockBounds Reason = "block-bounds"
	// ReasonTimeBounds: a timestamp outside the plausible chain window.
	ReasonTimeBounds Reason = "time-bounds"
	// ReasonReorgPin: a re-fetched receipt disagreeing with the
	// block/timestamp/status pin taken at first admission.
	ReasonReorgPin Reason = "reorg-pin"
	// ReasonValueBounds: a transaction value that is negative or does
	// not fit an EVM word.
	ReasonValueBounds Reason = "value-bounds"
	// ReasonLabelMalformed: a label entry that failed wire decoding.
	ReasonLabelMalformed Reason = "label-malformed"
	// ReasonLabelSchema: a decoded label entry violating the published
	// schema (zero address, unknown source or category, oversized name).
	ReasonLabelSchema Reason = "label-schema"
)

// Structural bounds. They are deliberately generous — the point is to
// catch garbled responses, not to second-guess unusual-but-real data.
const (
	// MaxTopics is the EVM's LOG4 limit.
	MaxTopics = 4
	// MaxLogData bounds one log record's payload.
	MaxLogData = 1 << 20
	// MaxBlockNumber bounds plausible chain heights.
	MaxBlockNumber = 1 << 40
	// MaxLabelName bounds a label display tag.
	MaxLabelName = 256
)

// MinTime and MaxTime bound plausible receipt timestamps. The window is
// wide (well before Ethereum genesis to far future) so it only trips on
// stale-reorg or garbage responses, never on real chain data.
var (
	MinTime = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	MaxTime = time.Date(2200, 1, 1, 0, 0, 0, 0, time.UTC)
)

// maxU256 is the largest amount an EVM word can carry.
var maxU256 = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))

// weiInBounds reports whether w fits a non-negative EVM word.
func weiInBounds(w ethtypes.Wei) bool {
	if w.Sign() < 0 {
		return false
	}
	return w.Big().Cmp(maxU256) <= 0
}

// CheckTransaction validates a transaction fetched under identity h.
// It returns the first violated rule, or "" when the record is
// admissible.
func CheckTransaction(h ethtypes.Hash, tx *chain.Transaction) Reason {
	if tx == nil {
		return ReasonNilRecord
	}
	if !weiInBounds(tx.Value) {
		return ReasonValueBounds
	}
	if tx.RecomputeHash() != h {
		return ReasonTxHashMismatch
	}
	return ""
}

// CheckReceipt validates a receipt fetched under transaction identity
// h: identity, plausibility bounds, status/fund-flow agreement, and
// structural bounds on every transfer and log.
func CheckReceipt(h ethtypes.Hash, rec *chain.Receipt) Reason {
	if rec == nil {
		return ReasonNilRecord
	}
	if rec.TxHash != h {
		return ReasonReceiptTxMismatch
	}
	if rec.BlockNumber > MaxBlockNumber {
		return ReasonBlockBounds
	}
	if rec.Timestamp.Before(MinTime) || !rec.Timestamp.Before(MaxTime) {
		return ReasonTimeBounds
	}
	if !rec.Status && (len(rec.Transfers) > 0 || len(rec.Approvals) > 0 || len(rec.Logs) > 0) {
		// The chain rolls back the fund flow of a failed transaction; a
		// failed receipt with transfers is internally inconsistent.
		return ReasonStatusConflict
	}
	if rec.Status && rec.Err != "" {
		return ReasonStatusConflict
	}
	for _, tr := range rec.Transfers {
		if !weiInBounds(tr.Amount) {
			return ReasonTransferBounds
		}
		if tr.From == (ethtypes.Address{}) && tr.To == (ethtypes.Address{}) {
			// Minting (from zero) and burning (to zero) are real flow
			// shapes; value moving from nowhere to nowhere is not.
			return ReasonTransferBounds
		}
	}
	for _, ap := range rec.Approvals {
		if !weiInBounds(ap.Amount) {
			return ReasonTransferBounds
		}
	}
	for _, lg := range rec.Logs {
		if lg.Address == (ethtypes.Address{}) {
			return ReasonLogBounds
		}
		if len(lg.Topics) > MaxTopics {
			return ReasonLogBounds
		}
		if len(lg.Data) > MaxLogData {
			return ReasonLogBounds
		}
	}
	return ""
}

// CheckPair cross-checks a transaction against its receipt. Both
// records must individually pass their own checks first; CheckPair only
// verifies agreement between them. The load-bearing rule mirrors the
// execution engine: a successful top-level call moving value records
// that movement as the receipt's first transfer.
func CheckPair(tx *chain.Transaction, rec *chain.Receipt) Reason {
	if tx == nil || rec == nil {
		return ReasonNilRecord
	}
	if tx.To != nil && rec.Status && tx.Value.Sign() > 0 {
		if len(rec.Transfers) == 0 {
			return ReasonMissingValueTransfer
		}
		first := rec.Transfers[0]
		if first.Depth != 0 || first.Asset != chain.ETHAsset ||
			first.From != tx.From || first.To != *tx.To ||
			first.Amount.Cmp(tx.Value) != 0 {
			return ReasonMissingValueTransfer
		}
	}
	return ""
}

// CheckLabel validates one decoded label entry against the published
// schema.
func CheckLabel(l labels.Label) Reason {
	if l.Address == (ethtypes.Address{}) {
		return ReasonLabelSchema
	}
	if !knownSource(l.Source) {
		return ReasonLabelSchema
	}
	switch l.Category {
	case labels.CategoryPhishing, labels.CategoryExchange, labels.CategoryService:
	default:
		return ReasonLabelSchema
	}
	if len(l.Name) > MaxLabelName {
		return ReasonLabelSchema
	}
	return ""
}

func knownSource(s labels.Source) bool {
	for _, known := range labels.AllSources {
		if s == known {
			return true
		}
	}
	return false
}
