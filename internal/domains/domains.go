// Package domains implements the domain-side machinery of the paper's
// §8.2 detector: the curated suspicious-keyword list, Levenshtein
// similarity matching for look-alike tokens, TLD statistics (Table 4),
// and deterministic generators for phishing and benign domains.
package domains

import (
	"math/rand/v2"
	"sort"
	"strings"
)

// Keywords is the curated 63-word list of §8.2 Step 1. Phishing
// domains bait victims with claim/airdrop/mint-style words.
var Keywords = []string{
	"claim", "airdrop", "mint", "reward", "rewards", "bonus", "stake",
	"staking", "restake", "bridge", "swap", "presale", "whitelist",
	"allowlist", "eligibility", "snapshot", "migration", "migrate",
	"upgrade", "merge", "unlock", "vesting", "refund", "giveaway",
	"drop", "token", "tokens", "nft", "defi", "yield", "farm",
	"farming", "liquidity", "pool", "dex", "wallet", "connect",
	"sync", "validate", "validation", "verify", "verification",
	"revoke", "gas", "rebate", "points", "season", "quest", "badge",
	"register", "registration", "portal", "dashboard", "event",
	"launch", "launchpad", "ico", "ido", "sale", "bounty", "earn",
	"redeem", "distribution",
}

// SimilarityThreshold is the Levenshtein ratio above which a token
// counts as a keyword look-alike (§8.2 uses 0.8).
const SimilarityThreshold = 0.8

// Levenshtein returns the edit distance between two strings.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Similarity returns 1 - dist/maxLen, the ratio §8.2 thresholds at 0.8.
func Similarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	maxLen := len([]rune(a))
	if l := len([]rune(b)); l > maxLen {
		maxLen = l
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Match describes why a domain looked suspicious.
type Match struct {
	Keyword string
	Token   string
	// Exact is true for substring containment, false for a
	// similarity-threshold match.
	Exact bool
	Score float64
}

// Suspicious reports whether the domain contains a keyword or a
// near-keyword token, per §8.2 Step 1. The matcher tokenizes the
// registrable labels on hyphens and digits.
func Suspicious(domain string, threshold float64) (Match, bool) {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	labels := strings.Split(domain, ".")
	if len(labels) > 1 {
		labels = labels[:len(labels)-1] // drop the TLD
	}
	var tokens []string
	for _, l := range labels {
		for _, tok := range strings.FieldsFunc(l, func(r rune) bool {
			return r == '-' || r == '_' || (r >= '0' && r <= '9')
		}) {
			if tok != "" {
				tokens = append(tokens, tok)
			}
		}
	}
	// Exact containment first.
	joined := strings.Join(labels, "-")
	for _, kw := range Keywords {
		if strings.Contains(joined, kw) {
			return Match{Keyword: kw, Token: kw, Exact: true, Score: 1}, true
		}
	}
	// Look-alike tokens (e.g. "cIaim", "airdr0p" normalized upstream,
	// or typos like "clalm").
	for _, tok := range tokens {
		for _, kw := range Keywords {
			if s := Similarity(tok, kw); s >= threshold && s < 1 {
				return Match{Keyword: kw, Token: tok, Score: s}, true
			}
		}
	}
	return Match{}, false
}

// TLD returns the final label of a domain.
func TLD(domain string) string {
	domain = strings.TrimSuffix(strings.ToLower(domain), ".")
	idx := strings.LastIndexByte(domain, '.')
	if idx < 0 {
		return domain
	}
	return domain[idx+1:]
}

// TLDShare is one row of Table 4.
type TLDShare struct {
	TLD      string
	Count    int
	Fraction float64
}

// TLDDistribution computes the descending TLD share table over a
// domain corpus.
func TLDDistribution(domainList []string) []TLDShare {
	counts := make(map[string]int)
	for _, d := range domainList {
		counts[TLD(d)]++
	}
	out := make([]TLDShare, 0, len(counts))
	for tld, n := range counts {
		share := TLDShare{TLD: tld, Count: n}
		if len(domainList) > 0 {
			share.Fraction = float64(n) / float64(len(domainList))
		}
		out = append(out, share)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].TLD < out[j].TLD
	})
	return out
}

// Table4TLDs is the paper's observed TLD mix for phishing domains,
// used by the generator so the measured Table 4 reproduces it.
var Table4TLDs = []struct {
	TLD    string
	Weight float64
}{
	{"com", 30.0}, {"dev", 13.6}, {"app", 11.6}, {"xyz", 7.5},
	{"net", 5.6}, {"org", 3.8}, {"network", 2.4}, {"io", 2.0},
	{"top", 1.6}, {"online", 1.4},
	// Long tail of other TLDs (≈20% combined in the paper).
	{"site", 1.2}, {"live", 1.2}, {"finance", 1.1}, {"cc", 1.1},
	{"pro", 1.0}, {"me", 1.0}, {"info", 1.0}, {"one", 1.0},
	{"club", 1.0}, {"vip", 0.9}, {"run", 0.9}, {"fun", 0.8},
	{"lol", 0.8}, {"biz", 0.8}, {"us", 0.8}, {"wtf", 0.7},
	{"gg", 0.7}, {"best", 0.7}, {"click", 0.7}, {"today", 0.7},
	{"cloud", 0.7}, {"space", 0.7},
}

// brandBaits are project names phishing sites impersonate.
var brandBaits = []string{
	"uniswap", "opensea", "blur", "arbitrum", "optimism", "zksync",
	"starknet", "layerzero", "eigenlayer", "pepe", "bayc", "azuki",
	"lido", "metamask", "phantom", "blast", "scroll", "linea",
	"manta", "celestia", "jupiter", "wormhole", "magiceden", "ethena",
}

// benignWords build unremarkable domains.
var benignWords = []string{
	"garden", "kitchen", "travel", "bakery", "studio", "fitness",
	"photos", "books", "music", "coffee", "design", "weather",
	"recipe", "cycling", "museum", "gallery", "florist", "dental",
}

// Generator produces deterministic domain corpora.
type Generator struct {
	rng    *rand.Rand
	tldCum []float64
}

// NewGenerator returns a generator with the given seed.
func NewGenerator(seed uint64) *Generator {
	g := &Generator{rng: rand.New(rand.NewPCG(seed, seed^0x5bd1e995))}
	var acc float64
	for _, t := range Table4TLDs {
		acc += t.Weight
		g.tldCum = append(g.tldCum, acc)
	}
	for i := range g.tldCum {
		g.tldCum[i] /= acc
	}
	return g
}

// Phishing generates a drainer-style domain: brand + keyword (+ noise)
// under the Table 4 TLD mix. A small fraction uses a look-alike
// (typoed) keyword instead of an exact one.
func (g *Generator) Phishing() string {
	brand := brandBaits[g.rng.IntN(len(brandBaits))]
	kw := Keywords[g.rng.IntN(len(Keywords))]
	if g.rng.Float64() < 0.1 {
		kw = typo(g.rng, kw)
	}
	name := brand + "-" + kw
	switch g.rng.IntN(4) {
	case 0:
		name = kw + "-" + brand
	case 1:
		name = brand + kw
	case 2:
		name = name + "-official"
	}
	return name + "." + g.tld()
}

// Benign generates an unsuspicious domain; a given fraction of benign
// corpora elsewhere may still collide with keywords (handled by
// BenignBait).
func (g *Generator) Benign() string {
	a := benignWords[g.rng.IntN(len(benignWords))]
	b := benignWords[g.rng.IntN(len(benignWords))]
	if a == b {
		b = b + "ly"
	}
	return a + b + "." + g.tld()
}

// BenignBait generates a benign site whose domain nevertheless matches
// the keyword filter (e.g. a legitimate NFT mint tracker) — the
// negatives that force §8.2 Step 2's crawl.
func (g *Generator) BenignBait() string {
	kw := Keywords[g.rng.IntN(len(Keywords))]
	w := benignWords[g.rng.IntN(len(benignWords))]
	return w + "-" + kw + "-tracker." + g.tld()
}

func (g *Generator) tld() string {
	u := g.rng.Float64()
	for i, c := range g.tldCum {
		if u <= c {
			return Table4TLDs[i].TLD
		}
	}
	return "com"
}

// typo introduces one edit into a word, keeping similarity ≥ 0.8 for
// words of length ≥ 5.
func typo(rng *rand.Rand, w string) string {
	if len(w) < 5 {
		return w
	}
	pos := 1 + rng.IntN(len(w)-2)
	sub := byte('a' + rng.IntN(26))
	if sub == w[pos] {
		sub = 'z'
	}
	return w[:pos] + string(sub) + w[pos+1:]
}
