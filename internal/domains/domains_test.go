package domains

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKeywordCount(t *testing.T) {
	if len(Keywords) != 63 {
		t.Errorf("keyword list has %d entries, want 63 (paper §8.2)", len(Keywords))
	}
	seen := make(map[string]bool)
	for _, kw := range Keywords {
		if seen[kw] {
			t.Errorf("duplicate keyword %q", kw)
		}
		seen[kw] = true
	}
}

func TestLevenshteinKnownAnswers(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"claim", "clalm", 1},
		{"airdrop", "airdrop", 0},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Metric properties of the edit distance.
func TestQuickLevenshteinMetric(t *testing.T) {
	short := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	sym := func(a, b string) bool {
		a, b = short(a), short(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("symmetry:", err)
	}
	ident := func(a string) bool {
		a = short(a)
		return Levenshtein(a, a) == 0
	}
	if err := quick.Check(ident, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("identity:", err)
	}
	bound := func(a, b string) bool {
		a, b = short(a), short(b)
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		hi := la
		if lb > hi {
			hi = lb
		}
		lo := la - lb
		if lo < 0 {
			lo = -lo
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(bound, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("bounds:", err)
	}
}

func TestSuspicious(t *testing.T) {
	positive := []string{
		"uniswap-claim.com",
		"claim-pepe.dev",
		"opensea-airdrop-official.app",
		"blurmint.xyz",       // containment inside a label
		"arbitrum-clalm.net", // look-alike (1 edit)
		"eigenlayer-restake.io",
	}
	for _, d := range positive {
		if _, ok := Suspicious(d, SimilarityThreshold); !ok {
			t.Errorf("Suspicious(%q) = false", d)
		}
	}
	negative := []string{
		"gardenkitchen.com",
		"coffeebooks.net",
		"weatherphotos.org",
		"example.com",
	}
	for _, d := range negative {
		if m, ok := Suspicious(d, SimilarityThreshold); ok {
			t.Errorf("Suspicious(%q) = true via %+v", d, m)
		}
	}
	// The TLD itself must not trigger (e.g. ".network" is a keyword-free zone).
	if m, ok := Suspicious("gardenbakery.network", SimilarityThreshold); ok {
		t.Errorf("TLD triggered match: %+v", m)
	}
}

func TestTLD(t *testing.T) {
	if TLD("a.b.example.dev") != "dev" {
		t.Error("TLD extraction failed")
	}
	if TLD("localhost") != "localhost" {
		t.Error("TLD of bare name")
	}
}

func TestTLDDistribution(t *testing.T) {
	corpus := []string{"a.com", "b.com", "c.dev", "d.app", "e.com"}
	dist := TLDDistribution(corpus)
	if dist[0].TLD != "com" || dist[0].Count != 3 {
		t.Errorf("top TLD = %+v", dist[0])
	}
	var total float64
	for _, d := range dist {
		total += d.Fraction
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("fractions sum to %f", total)
	}
}

func TestGeneratorPhishingDomainsAreSuspicious(t *testing.T) {
	g := NewGenerator(7)
	sus := 0
	const n = 500
	for i := 0; i < n; i++ {
		d := g.Phishing()
		if _, ok := Suspicious(d, SimilarityThreshold); ok {
			sus++
		}
	}
	// Typoed keywords may occasionally fall below the threshold; the
	// overwhelming majority must match.
	if sus < n*95/100 {
		t.Errorf("only %d/%d generated phishing domains look suspicious", sus, n)
	}
}

func TestGeneratorBenignDomainsAreClean(t *testing.T) {
	g := NewGenerator(7)
	for i := 0; i < 300; i++ {
		d := g.Benign()
		if m, ok := Suspicious(d, SimilarityThreshold); ok {
			t.Fatalf("benign domain %q matched %+v", d, m)
		}
	}
}

func TestGeneratorBaitDomainsMatch(t *testing.T) {
	g := NewGenerator(7)
	for i := 0; i < 100; i++ {
		d := g.BenignBait()
		if _, ok := Suspicious(d, SimilarityThreshold); !ok {
			t.Fatalf("bait domain %q did not match", d)
		}
	}
}

func TestGeneratorTLDMixFollowsTable4(t *testing.T) {
	g := NewGenerator(99)
	var corpus []string
	for i := 0; i < 5000; i++ {
		corpus = append(corpus, g.Phishing())
	}
	dist := TLDDistribution(corpus)
	if dist[0].TLD != "com" {
		t.Errorf("top TLD = %s, want com", dist[0].TLD)
	}
	if dist[0].Fraction < 0.25 || dist[0].Fraction > 0.35 {
		t.Errorf(".com share %.3f, want ≈ 0.30", dist[0].Fraction)
	}
	// dev and app follow.
	top3 := map[string]bool{dist[0].TLD: true, dist[1].TLD: true, dist[2].TLD: true}
	if !top3["dev"] || !top3["app"] {
		t.Errorf("top-3 TLDs = %v, want com/dev/app", top3)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGenerator(42), NewGenerator(42)
	for i := 0; i < 50; i++ {
		if a.Phishing() != b.Phishing() {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity("claim", "claim"); s != 1 {
		t.Errorf("identical similarity = %f", s)
	}
	if s := Similarity("claim", "clalm"); s < 0.79 || s > 0.81 {
		t.Errorf("one-edit/5 similarity = %f, want 0.8", s)
	}
	if s := Similarity("", ""); s != 1 {
		t.Errorf("empty similarity = %f", s)
	}
	if !strings.Contains("abc", "") {
		t.Skip()
	}
}
