package radar_test

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/faults"
	"repro/internal/integrity"
	"repro/internal/obs"
	"repro/internal/radar"
	"repro/internal/retry"
	"repro/internal/screen"
	"repro/internal/worldgen"
)

// batchExport runs the one-shot pipeline and clusterer over the
// finished chain — the ground truth every radar test converges to.
func batchExport(t *testing.T, world *worldgen.World) (dsBytes, famBytes []byte) {
	t.Helper()
	p := &core.Pipeline{Source: core.LocalSource{Chain: world.Chain}, Labels: world.Labels}
	ds, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster.Clusterer{Source: core.LocalSource{Chain: world.Chain}, Labels: world.Labels}
	fams, err := cl.Cluster(ds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fj, err := json.MarshalIndent(fams, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), fj
}

func radarExport(t *testing.T, r *radar.Radar) (dsBytes, famBytes []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := r.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fj, err := json.MarshalIndent(r.Families(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), fj
}

func genWorld(t *testing.T, seed uint64) *worldgen.World {
	t.Helper()
	world, err := worldgen.Generate(worldgen.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return world
}

// TestRadarMatchesBatchPipeline is the tentpole invariant: replaying
// the chain block-by-block through the radar yields a dataset and
// family export byte-identical to the one-shot pipeline — regardless
// of how block arrivals are batched into steps.
func TestRadarMatchesBatchPipeline(t *testing.T) {
	world := genWorld(t, 7)
	wantDS, wantFams := batchExport(t, world)

	for _, stepEvery := range []int{1, 7, 1 << 30} {
		f := chain.NewFollower(world.Chain)
		dst := f.Chain()
		r, err := radar.New(radar.Config{
			Source: core.LocalSource{Chain: dst},
			Blocks: radar.ChainBlocks{Chain: dst},
			Labels: world.Labels,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			if _, ok := f.Advance(); !ok {
				break
			}
			n++
			if n%stepEvery == 0 {
				if _, err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
		gotDS, gotFams := radarExport(t, r)
		if !bytes.Equal(gotDS, wantDS) {
			t.Fatalf("stepEvery=%d: radar dataset export differs from batch pipeline", stepEvery)
		}
		if !bytes.Equal(gotFams, wantFams) {
			t.Fatalf("stepEvery=%d: radar family export differs from batch clusterer", stepEvery)
		}
		st := r.Status()
		if st.Cursor != world.Chain.BlockCount()-1 {
			t.Fatalf("stepEvery=%d: cursor %d, want %d", stepEvery, st.Cursor, world.Chain.BlockCount()-1)
		}
		if st.Stats.Contracts == 0 || st.Stats.Operators == 0 {
			t.Fatalf("stepEvery=%d: radar admitted nothing (stats %+v)", stepEvery, st.Stats)
		}
	}
}

// TestRadarStaticAnnotationMatchesBatch repeats the byte-identity
// check with static fingerprint annotation enabled on both sides.
func TestRadarStaticAnnotationMatchesBatch(t *testing.T) {
	world := genWorld(t, 9)
	srcWorld := core.LocalSource{Chain: world.Chain}
	static := &core.StaticScreen{Source: srcWorld, Storage: srcWorld}

	p := &core.Pipeline{Source: core.LocalSource{Chain: world.Chain}, Labels: world.Labels}
	ds, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.AnnotateFingerprints(static); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ds.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	f := chain.NewFollower(world.Chain)
	dst := f.Chain()
	srcDst := core.LocalSource{Chain: dst}
	r, err := radar.New(radar.Config{
		Source: srcDst,
		Blocks: radar.ChainBlocks{Chain: dst},
		Labels: world.Labels,
		Static: &core.StaticScreen{Source: srcDst, Storage: srcDst},
	})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := f.Advance(); !ok {
			break
		}
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := r.ExportJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("annotated radar export differs from annotated batch export")
	}
}

// TestRadarCheckpointResume interrupts a radar mid-chain and resumes a
// fresh daemon from its checkpoint: the final export must be
// byte-identical to both an uninterrupted radar and the batch
// pipeline, and the update-feed cursor must stay monotonic across the
// resume.
func TestRadarCheckpointResume(t *testing.T) {
	world := genWorld(t, 7)
	wantDS, wantFams := batchExport(t, world)
	path := filepath.Join(t.TempDir(), "radar.ckpt")

	cfg := radar.Config{
		Labels:          world.Labels,
		CheckpointPath:  path,
		CheckpointEvery: 1,
	}

	f := chain.NewFollower(world.Chain)
	dst := f.Chain()
	cfg.Source = core.LocalSource{Chain: dst}
	cfg.Blocks = radar.ChainBlocks{Chain: dst}
	r1, err := radar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := int(world.Chain.BlockCount()) - 1
	for i := 0; i < total/2; i++ {
		if _, ok := f.Advance(); !ok {
			t.Fatal("journal exhausted early")
		}
		if _, err := r1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st1 := r1.Status()
	if st1.Cursor == 0 {
		t.Fatal("interrupted radar never advanced")
	}
	// r1 is abandoned here — the "crash". A fresh daemon resumes from
	// its checkpoint against the same (still advancing) chain.
	cfg.Resume = true
	r2, err := radar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2 := r2.Status()
	if st2.Cursor != st1.Cursor {
		t.Fatalf("resumed cursor %d, want %d", st2.Cursor, st1.Cursor)
	}
	if st2.UpdateCursor != st1.UpdateCursor {
		t.Fatalf("resumed update cursor %d, want %d (feed must stay monotonic)", st2.UpdateCursor, st1.UpdateCursor)
	}
	for {
		if _, ok := f.Advance(); !ok {
			break
		}
		if _, err := r2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r2.Step(); err != nil {
		t.Fatal(err)
	}
	gotDS, gotFams := radarExport(t, r2)
	if !bytes.Equal(gotDS, wantDS) {
		t.Fatal("resumed radar dataset export differs from batch pipeline")
	}
	if !bytes.Equal(gotFams, wantFams) {
		t.Fatal("resumed radar family export differs from batch clusterer")
	}
}

// TestRadarReorgRollback stages a real reorg: the radar ingests an
// orphan block carrying the next canonical block's transactions (so
// admissions and timestamps genuinely diverge), the chain heals, and
// the radar must roll back through a restore point and reconverge to
// the batch export.
func TestRadarReorgRollback(t *testing.T) {
	world := genWorld(t, 7)
	wantDS, wantFams := batchExport(t, world)

	f := chain.NewFollower(world.Chain)
	dst := f.Chain()
	r, err := radar.New(radar.Config{
		Source: core.LocalSource{Chain: dst},
		Blocks: radar.ChainBlocks{Chain: dst},
		Labels: world.Labels,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int(world.Chain.BlockCount()) - 1
	for i := 0; i < total/2; i++ {
		if _, ok := f.Advance(); !ok {
			t.Fatal("journal exhausted early")
		}
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// Build the orphan from the next canonical block's transactions,
	// mined at a different timestamp: same txs, different receipts.
	next, err := world.Chain.BlockByNumber(dst.BlockCount())
	if err != nil {
		t.Fatal(err)
	}
	var orphanTxs []*chain.Transaction
	for _, h := range next.TxHashes {
		tx, err := world.Chain.Transaction(h)
		if err != nil {
			t.Fatal(err)
		}
		orphanTxs = append(orphanTxs, tx)
	}
	tip, err := dst.BlockByNumber(dst.BlockCount() - 1)
	if err != nil {
		t.Fatal(err)
	}
	orphan := f.MineOrphan(tip.Timestamp.Add(13*time.Second), orphanTxs...)
	if _, err := r.Step(); err != nil { // ingest the orphan
		t.Fatal(err)
	}
	if got := r.Status().Cursor; got != orphan.Number {
		t.Fatalf("radar did not follow the orphan: cursor %d, want %d", got, orphan.Number)
	}

	f.Heal()
	if _, err := r.Step(); err != nil { // detect + roll back
		t.Fatal(err)
	}
	if got := r.Status().Reorgs; got != 1 {
		t.Fatalf("reorg count %d, want 1", got)
	}
	ups, _, _ := r.Updates(0, 0)
	sawReorg := false
	for _, u := range ups {
		if u.Kind == radar.KindReorg {
			sawReorg = true
		}
	}
	if !sawReorg {
		t.Fatal("no reorg entry in the update feed")
	}

	for {
		if _, ok := f.Advance(); !ok {
			break
		}
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	gotDS, gotFams := radarExport(t, r)
	if !bytes.Equal(gotDS, wantDS) {
		t.Fatal("post-reorg radar dataset export differs from batch pipeline")
	}
	if !bytes.Equal(gotFams, wantFams) {
		t.Fatal("post-reorg radar family export differs from batch clusterer")
	}
}

// TestRadarUpdatesCursorSemantics checks the feed contract: cursors
// are monotonic, pagination by cursor never re-delivers, and a
// consumer behind the ring sees dropped=true.
func TestRadarUpdatesCursorSemantics(t *testing.T) {
	world := genWorld(t, 7)
	f := chain.NewFollower(world.Chain)
	dst := f.Chain()
	r, err := radar.New(radar.Config{
		Source: core.LocalSource{Chain: dst},
		Blocks: radar.ChainBlocks{Chain: dst},
		Labels: world.Labels,
	})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := f.Advance(); !ok {
			break
		}
	}
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	var got []radar.Update
	cursor := uint64(0)
	for {
		page, latest, dropped := r.Updates(cursor, 3)
		if dropped {
			t.Fatal("fresh consumer reported dropped entries")
		}
		if len(page) == 0 {
			if cursor != latest {
				t.Fatalf("drained at cursor %d but latest is %d", cursor, latest)
			}
			break
		}
		for _, u := range page {
			if u.Cursor <= cursor {
				t.Fatalf("non-monotonic cursor %d after %d", u.Cursor, cursor)
			}
			cursor = u.Cursor
			got = append(got, u)
		}
	}
	if len(got) == 0 {
		t.Fatal("no updates emitted for a full chain replay")
	}
	kinds := map[string]int{}
	for _, u := range got {
		kinds[u.Kind]++
	}
	if kinds[radar.KindContract] == 0 || kinds[radar.KindOperator] == 0 {
		t.Fatalf("missing admission kinds in feed: %v", kinds)
	}
	if kinds[radar.KindFamilyContract] == 0 {
		t.Fatalf("missing family_contract entries in feed: %v", kinds)
	}
}

// TestRadarSoakConcurrent is the race-checked daemon soak: the radar
// Runs against a chain advancing in another goroutine through a
// fault-injected integrity/retry source stack, survives one forced
// reorg, and serves Status/Updates/screen queries concurrently. After
// the dust settles the export must equal the batch pipeline's (the
// injected faults are transient and dry up, so the integrity layer
// quarantines nothing).
func TestRadarSoakConcurrent(t *testing.T) {
	world := genWorld(t, 11)
	wantDS, wantFams := batchExport(t, world)

	f := chain.NewFollower(world.Chain)
	dst := f.Chain()
	reg := obs.NewRegistry()
	inj := faults.NewInjector(faults.Plan{Seed: 3, Rate: 0.01, MaxFaults: 25}, reg)
	src := integrity.Wrap(
		retry.WrapSource(faults.WrapSource(core.LocalSource{Chain: dst}, inj),
			&retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, Metrics: reg}),
		integrity.NewQuarantine(reg), reg)
	eng := screen.NewEngine(reg)
	r, err := radar.New(radar.Config{
		Source:       src,
		Blocks:       radar.ChainBlocks{Chain: dst},
		Labels:       world.Labels,
		Engine:       eng,
		PollInterval: time.Millisecond,
		Pins:         src,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		_ = r.Run(ctx)
	}()

	total := int(world.Chain.BlockCount()) - 1
	var probe ethtypes.Address
	for i := 0; ; i++ {
		if _, ok := f.Advance(); !ok {
			break
		}
		if i == total/2 {
			// Forced reorg: orphan an empty block, give the radar a
			// moment to follow it, then heal.
			tip, err := dst.BlockByNumber(dst.BlockCount() - 1)
			if err != nil {
				t.Fatal(err)
			}
			f.MineOrphan(tip.Timestamp.Add(7 * time.Second))
			time.Sleep(5 * time.Millisecond)
			f.Heal()
		}
		if i%10 == 0 {
			time.Sleep(time.Millisecond)
			st := r.Status()
			_, _, _ = r.Updates(st.UpdateCursor, 16)
			eng.Screen(probe)
			eng.ScreenDomain("wallet-sync.example")
		}
	}

	// Wait for the daemon to drain the chain, then stop it and settle.
	head := dst.BlockCount() - 1
	deadline := time.Now().Add(30 * time.Second)
	for r.Status().Cursor != head {
		if time.Now().After(deadline) {
			t.Fatalf("radar stalled at cursor %d, head %d", r.Status().Cursor, head)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-runDone
	for {
		advanced, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !advanced {
			break
		}
	}

	gotDS, gotFams := radarExport(t, r)
	if !bytes.Equal(gotDS, wantDS) {
		t.Fatal("soak radar dataset export differs from batch pipeline")
	}
	if !bytes.Equal(gotFams, wantFams) {
		t.Fatal("soak radar family export differs from batch clusterer")
	}
	if eng.Snapshot() == nil {
		t.Fatal("engine never received a snapshot swap")
	}
	if inj.Faults() == 0 {
		t.Fatal("fault injector never fired — the soak exercised nothing")
	}
}
