// Package radar is the live counterpart of the one-shot discovery
// pipeline (§5.1): a head-following daemon that polls a chain's block
// cursor, classifies arriving transactions with the profit-sharing
// detector, grows the snowball dataset and the §7.1 family clusters
// incrementally, and hot-swaps the screening engine's snapshot as the
// picture changes.
//
// The package's hard invariant is replay equivalence: feeding a chain
// through the radar block-by-block — in any step batching, through any
// checkpoint/resume, and across bounded reorgs — produces a dataset
// and family export byte-identical to running core.Pipeline followed
// by cluster.Clusterer over the finished chain. Every admission rule
// below is a re-derivation of the batch pipeline's rule in arrival
// order:
//
//   - A transaction whose splits invoke an already-known contract is
//     folded into that contract's record immediately (the batch absorb
//     would have seen it in the contract's history).
//   - A split transaction invoking a labeled-phishing contract seeds
//     that contract: its history up to the current cursor is absorbed,
//     exactly like the batch seed phase (§5.1 step 2).
//   - Otherwise the expansion gate is evaluated: some split party
//     (operator, affiliate, payer) already in the dataset, or a
//     DaaS-account recipient plus a dataset account among the
//     transaction's touching parties. Gate failures park the
//     transaction in a pending set that is re-examined to fixpoint
//     whenever the dataset grows — the arrival-order analogue of the
//     batch frontier's iteration-to-fixpoint.
//
// Reorgs are handled with a bounded ring of recent block hashes, two
// in-memory restore points (serialized checkpoints at multiples of the
// reorg window), and the integrity layer's per-tx pins: on a fork the
// radar releases receipt pins above the fork block, restores the
// newest point at or below it, and replays forward.
package radar

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/screen"
)

// PinReleaser releases integrity reorg pins above a block;
// *integrity.Source implements it.
type PinReleaser interface {
	ReleasePinsAbove(block uint64) int
}

// Config wires a Radar to its chain, detector, and outputs.
type Config struct {
	// Source serves transaction/receipt records — normally the full
	// cache→integrity→retry→metrics stack, so the radar inherits
	// quarantine semantics and refetch behavior.
	Source core.ChainSource
	// Blocks serves the head cursor and block headers.
	Blocks BlockSource
	// Labels is the phishing-label directory used for seeding and
	// family naming.
	Labels *labels.Directory
	// Classifier detects profit-sharing splits (zero value = paper
	// defaults).
	Classifier core.Classifier
	// Engine, when set, receives a freshly compiled screening snapshot
	// after every step that changed the dataset.
	Engine *screen.Engine
	// Domains are phishing domains compiled into each snapshot.
	Domains []string
	// Static, when set, annotates contract records with bytecode
	// fingerprints before each snapshot compile and export.
	Static *core.StaticScreen
	// PollInterval is the head poll cadence of Run (default 250ms).
	PollInterval time.Duration
	// ReorgWindow bounds rollback depth: the radar keeps this many
	// recent block hashes and restore points spaced this many blocks
	// apart (default 32).
	ReorgWindow int
	// CheckpointPath, when set, persists a version-3 radar checkpoint
	// at block boundaries.
	CheckpointPath string
	// CheckpointEvery spaces checkpoint writes in blocks (default 1).
	CheckpointEvery int
	// Resume restores state from CheckpointPath when the file exists.
	Resume bool
	// Pins, when set, has receipt pins above the fork released on
	// rollback.
	Pins PinReleaser
	// Coverage, when set, books quarantined records per account like
	// the batch pipeline does.
	Coverage *core.Coverage
	Metrics  *obs.Registry
	Logger   *obs.Logger
}

// pendingTx is a split-bearing transaction that failed the expansion
// gate (or could not be fetched yet): it is re-examined whenever the
// dataset grows. splits == nil marks an unfetched (quarantined) entry.
type pendingTx struct {
	block    uint64
	time     time.Time
	splits   []core.Split
	touching []ethtypes.Address
}

// ringEntry is one recently processed block in the reorg ring.
type ringEntry struct {
	Number uint64
	Hash   ethtypes.Hash
}

// statePoint is an in-memory restore point: a serialized checkpoint at
// a block boundary.
type statePoint struct {
	head uint64
	blob []byte
}

type radarMetrics struct {
	blocks, txs, reorgsC, swapsC, updates, ckpts, stepErrs *obs.Counter
	head, cursor, pendingG, familiesG                      *obs.Gauge
}

func newRadarMetrics(reg *obs.Registry) radarMetrics {
	return radarMetrics{
		blocks:    reg.Counter("daas_radar_blocks_total", "blocks ingested by the radar"),
		txs:       reg.Counter("daas_radar_txs_total", "transactions examined by the radar"),
		reorgsC:   reg.Counter("daas_radar_reorgs_total", "reorg rollbacks performed"),
		swapsC:    reg.Counter("daas_radar_swaps_total", "screening snapshots hot-swapped"),
		updates:   reg.Counter("daas_radar_updates_total", "update feed entries emitted"),
		ckpts:     reg.Counter("daas_radar_checkpoint_writes_total", "radar checkpoints written"),
		stepErrs:  reg.Counter("daas_radar_step_errors_total", "radar steps that returned an error"),
		head:      reg.Gauge("daas_radar_head", "latest chain head observed"),
		cursor:    reg.Gauge("daas_radar_cursor", "last block folded into the dataset"),
		pendingG:  reg.Gauge("daas_radar_pending_txs", "split transactions parked at the expansion gate"),
		familiesG: reg.Gauge("daas_radar_families", "families in the latest rollup"),
	}
}

// Radar is the live detection daemon. All mutable state is guarded by
// mu; Step, Status, Updates, and ExportJSON may be called from
// different goroutines.
type Radar struct {
	cfg Config
	m   radarMetrics

	mu         sync.Mutex
	ds         *core.Dataset
	classified map[ethtypes.Hash]bool
	pending    map[ethtypes.Hash]*pendingTx
	inc        *cluster.Incremental
	phishing   map[ethtypes.Address]bool

	cursor   uint64 // last block folded in
	lastHead uint64
	dirty    bool // dataset changed since last recompile

	ring   []ringEntry
	points []statePoint

	updates      []Update
	updateCursor uint64
	reorgs       int
	swaps        uint64

	famOf       map[ethtypes.Address]string
	familyCount int
}

// New builds a radar; with cfg.Resume set and a checkpoint present the
// daemon continues exactly where the checkpointed one stopped.
func New(cfg Config) (*Radar, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("radar: Config.Source is required")
	}
	if cfg.Blocks == nil {
		return nil, fmt.Errorf("radar: Config.Blocks is required")
	}
	if cfg.Labels == nil {
		return nil, fmt.Errorf("radar: Config.Labels is required")
	}
	r := &Radar{cfg: cfg, m: newRadarMetrics(cfg.Metrics)}
	r.phishing = make(map[ethtypes.Address]bool)
	for _, a := range cfg.Labels.AllPhishing() {
		r.phishing[a] = true
	}
	if cfg.Resume && cfg.CheckpointPath != "" {
		cp, err := core.LoadRadarCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if cp != nil {
			if err := r.applyCheckpointLocked(cp, false); err != nil {
				return nil, err
			}
			r.logger().Info("radar resumed from checkpoint",
				"path", cfg.CheckpointPath, "cursor", r.cursor)
			return r, nil
		}
	}
	if err := r.resetLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Radar) logger() *obs.Logger { return r.cfg.Logger }

func (r *Radar) window() int {
	if r.cfg.ReorgWindow > 0 {
		return r.cfg.ReorgWindow
	}
	return 32
}

// resetLocked reinitializes to genesis state.
func (r *Radar) resetLocked() error {
	r.ds = core.NewDataset()
	r.classified = make(map[ethtypes.Hash]bool)
	r.pending = make(map[ethtypes.Hash]*pendingTx)
	r.inc = cluster.NewIncremental(r.cfg.Labels, r.cfg.Metrics)
	r.cursor = 0
	r.famOf = make(map[ethtypes.Address]string)
	r.familyCount = 0
	r.points = nil
	gen, err := r.cfg.Blocks.BlockRef(0)
	if err != nil {
		return fmt.Errorf("radar: fetching genesis: %w", err)
	}
	r.ring = []ringEntry{{Number: 0, Hash: gen.Hash}}
	return nil
}

// Run polls the head until ctx is canceled. Step errors are logged and
// retried on the next tick; a daemon should survive transient source
// failures.
func (r *Radar) Run(ctx context.Context) error {
	interval := r.cfg.PollInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if _, err := r.Step(); err != nil {
			r.m.stepErrs.Inc()
			r.logger().Warn("radar step failed", "err", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Step performs one poll: verify the tail against the chain (rolling
// back on a reorg), ingest new blocks up to the head, and recompile
// the screening snapshot if anything changed. It reports whether the
// cursor advanced.
func (r *Radar) Step() (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	head, err := r.cfg.Blocks.Head()
	if err != nil {
		return false, err
	}
	r.lastHead = head
	r.m.head.Set(int64(head))

	fork, reorged, err := r.checkTailLocked(head)
	if err != nil {
		return false, err
	}
	if reorged {
		if err := r.rollbackLocked(fork); err != nil {
			return false, err
		}
	}

	advanced := false
	for r.cursor < head {
		n := r.cursor + 1
		ref, err := r.cfg.Blocks.BlockRef(n)
		if err != nil {
			return advanced, err
		}
		if ref.Parent != r.ring[len(r.ring)-1].Hash {
			// The chain moved beneath us mid-step; the next Step's tail
			// verification resolves the fork.
			break
		}
		if err := r.processBlockLocked(ref); err != nil {
			return advanced, r.failsafeLocked(err)
		}
		r.ring = append(r.ring, ringEntry{Number: ref.Number, Hash: ref.Hash})
		for len(r.ring) > r.window()+1 {
			r.ring = r.ring[1:]
		}
		r.cursor = n
		r.m.cursor.Set(int64(n))
		advanced = true
		if err := r.maybePointLocked(); err != nil {
			return advanced, err
		}
		if err := r.maybeCheckpointLocked(); err != nil {
			return advanced, err
		}
	}
	if r.dirty {
		if err := r.recompileLocked(); err != nil {
			return advanced, err
		}
		r.dirty = false
	}
	r.m.pendingG.Set(int64(len(r.pending)))
	// A fully successful step confirms the serving snapshot is current
	// even when nothing changed; during a source outage this stops
	// firing and the engine's staleness (snapshotAge on verdicts,
	// daas_screen_stale_seconds) starts growing while screening keeps
	// answering from the last good snapshot.
	if r.cfg.Engine != nil {
		r.cfg.Engine.MarkFresh()
	}
	return advanced, nil
}

// checkTailLocked verifies that the last processed block is still
// canonical. On a mismatch it walks the ring backwards to the fork
// point. A divergence deeper than the ring is an error: the radar
// cannot roll back past its window.
func (r *Radar) checkTailLocked(head uint64) (fork uint64, reorged bool, err error) {
	limit := r.cursor
	if head < limit {
		limit = head
	}
	floor := r.ring[0].Number
	for n := limit; ; n-- {
		if n < floor {
			return 0, false, fmt.Errorf("radar: reorg deeper than the %d-block window (ring floor %d)", r.window(), floor)
		}
		ref, err := r.cfg.Blocks.BlockRef(n)
		if err != nil {
			return 0, false, err
		}
		if r.ring[n-floor].Hash == ref.Hash {
			if n == r.cursor {
				return 0, false, nil
			}
			return n, true, nil
		}
		if n == 0 {
			return 0, false, fmt.Errorf("radar: genesis hash mismatch — wrong chain")
		}
	}
}

// rollbackLocked undoes all state above the fork block: integrity
// receipt pins are released, the newest restore point at or below the
// fork is reinstated (or the radar resets to genesis), and a reorg
// update is emitted. The main loop then replays the canonical blocks.
func (r *Radar) rollbackLocked(fork uint64) error {
	released := 0
	if r.cfg.Pins != nil {
		released = r.cfg.Pins.ReleasePinsAbove(fork)
	}
	restored := false
	for i := len(r.points) - 1; i >= 0; i-- {
		if r.points[i].head <= fork {
			if err := r.restoreBlobLocked(r.points[i].blob, true); err != nil {
				return err
			}
			r.points = r.points[:i+1]
			restored = true
			break
		}
	}
	if !restored {
		if err := r.resetLocked(); err != nil {
			return err
		}
	}
	r.reorgs++
	r.m.reorgsC.Inc()
	r.dirty = true
	r.emitLocked(Update{Kind: KindReorg, Block: fork})
	r.logger().Info("radar reorg rollback",
		"fork", fork, "restored_cursor", r.cursor, "pins_released", released)
	return nil
}

// failsafeLocked recovers from a mid-block ingest failure. Block
// ingestion is not atomic — an error inside an absorb cascade leaves a
// contract partially recorded, and simply continuing would diverge
// from the batch pipeline forever. Instead the radar falls back to the
// newest restore point (or genesis) and replays deterministically,
// exactly like a reorg rollback; a reorg update tells feed consumers
// to resync. The original error is returned for the caller to log.
func (r *Radar) failsafeLocked(cause error) error {
	restored := false
	for i := len(r.points) - 1; i >= 0; i-- {
		if err := r.restoreBlobLocked(r.points[i].blob, true); err == nil {
			r.points = r.points[:i+1]
			restored = true
			break
		}
	}
	if !restored {
		if err := r.resetLocked(); err != nil {
			return fmt.Errorf("radar: failsafe reset after %w: %w", cause, err)
		}
	}
	r.emitLocked(Update{Kind: KindReorg, Block: r.cursor})
	r.logger().Warn("radar ingest failed; rolled back to restore point",
		"cursor", r.cursor, "err", cause)
	return cause
}

// maybePointLocked records an in-memory restore point every
// ReorgWindow blocks, keeping the last two — enough to cover any fork
// within the ring.
func (r *Radar) maybePointLocked() error {
	w := uint64(r.window())
	if r.cursor == 0 || r.cursor%w != 0 {
		return nil
	}
	blob, err := r.marshalStateLocked()
	if err != nil {
		return err
	}
	r.points = append(r.points, statePoint{head: r.cursor, blob: blob})
	if len(r.points) > 2 {
		r.points = r.points[len(r.points)-2:]
	}
	return nil
}

func (r *Radar) maybeCheckpointLocked() error {
	if r.cfg.CheckpointPath == "" {
		return nil
	}
	every := uint64(r.cfg.CheckpointEvery)
	if every == 0 {
		every = 1
	}
	if r.cursor%every != 0 {
		return nil
	}
	cp, err := r.buildCheckpointLocked()
	if err != nil {
		return err
	}
	if _, err := core.WriteRadarCheckpoint(r.cfg.CheckpointPath, cp); err != nil {
		return err
	}
	r.m.ckpts.Inc()
	return nil
}

// fetchPair mirrors the batch pipeline's fetchOne: quarantined records
// degrade to a nil pair instead of failing the run.
func (r *Radar) fetchPair(h ethtypes.Hash) (*chain.Transaction, *chain.Receipt, error) {
	tx, err := r.cfg.Source.Transaction(h)
	if err != nil {
		if errors.Is(err, core.ErrQuarantined) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	rec, err := r.cfg.Source.Receipt(h)
	if err != nil {
		if errors.Is(err, core.ErrQuarantined) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	if tx == nil || rec == nil {
		return nil, nil, nil
	}
	return tx, rec, nil
}

// touchingParties mirrors the chain's transaction index: the set of
// addresses in whose history this transaction appears.
func touchingParties(tx *chain.Transaction, rec *chain.Receipt) []ethtypes.Address {
	seen := make(map[ethtypes.Address]bool, 8)
	var out []ethtypes.Address
	add := func(a ethtypes.Address) {
		if a.IsZero() || seen[a] {
			return
		}
		seen[a] = true
		out = append(out, a)
	}
	add(tx.From)
	if tx.To != nil {
		add(*tx.To)
	}
	add(rec.ContractAddress)
	for _, t := range rec.Transfers {
		add(t.From)
		add(t.To)
	}
	for _, a := range rec.Approvals {
		add(a.Owner)
		add(a.Spender)
	}
	return out
}

// processBlockLocked ingests one canonical block: every transaction is
// fetched through the record source, fed to the incremental clusterer
// for member parties, classified, and run through the admission rules;
// then the pending set is retried to fixpoint.
func (r *Radar) processBlockLocked(ref BlockRef) error {
	r.m.blocks.Inc()
	r.m.txs.Add(uint64(len(ref.TxHashes)))
	for _, h := range ref.TxHashes {
		tx, rec, err := r.fetchPair(h)
		if err != nil {
			return err
		}
		if tx == nil {
			if !r.classified[h] {
				if _, ok := r.pending[h]; !ok {
					r.pending[h] = &pendingTx{block: ref.Number}
				}
			}
			continue
		}
		// Cluster evidence flows for every transaction touching a member
		// operator — including ones already classified by an absorb
		// earlier in this same block.
		r.feedMembersLocked(tx, rec)
		if r.classified[h] {
			continue
		}
		splits := r.cfg.Classifier.Classify(tx, rec)
		if len(splits) == 0 {
			continue
		}
		if err := r.applySplitTxLocked(h, ref.Number, rec, splits, touchingParties(tx, rec)); err != nil {
			return err
		}
	}
	return r.retryPendingLocked(ref.Number)
}

// applySplitTxLocked runs the admission rules on one split-bearing
// transaction, in the same precedence the batch pipeline applies them.
func (r *Radar) applySplitTxLocked(h ethtypes.Hash, b uint64, rec *chain.Receipt,
	splits []core.Split, touching []ethtypes.Address) error {

	contract := splits[0].Contract
	if crec, known := r.ds.Contracts[contract]; known {
		return r.liveRecordLocked(crec, h, rec.Timestamp, splits, b)
	}
	if r.phishing[contract] {
		isC, err := r.cfg.Source.IsContract(contract)
		if err != nil {
			return err
		}
		if isC {
			return r.absorbLocked(contract, core.DiscoverySeed, b)
		}
	}
	if r.gateLocked(splits, touching) {
		return r.absorbLocked(contract, core.DiscoveryExpansion, b)
	}
	r.pending[h] = &pendingTx{block: b, time: rec.Timestamp, splits: splits, touching: touching}
	return nil
}

// liveRecordLocked folds one new split transaction into an
// already-known contract — what the batch absorb would have done had
// the transaction existed at absorb time.
func (r *Radar) liveRecordLocked(crec *core.ContractRecord, h ethtypes.Hash,
	ts time.Time, splits []core.Split, b uint64) error {

	if ts.Before(crec.FirstSeen) {
		crec.FirstSeen = ts
	}
	if ts.After(crec.LastSeen) {
		crec.LastSeen = ts
	}
	crec.TxCount++
	r.classified[h] = true
	r.dirty = true
	return r.recordSplitsLocked(splits, crec.Found, b)
}

func (r *Radar) isOpOrAff(a ethtypes.Address) bool {
	if _, ok := r.ds.Operators[a]; ok {
		return true
	}
	_, ok := r.ds.Affiliates[a]
	return ok
}

// gateLocked is the arrival-order form of the batch expansion gate
// (interactsWithDataset): in the batch walk a transaction is examined
// from the histories of scanned accounts, so the frontier clause means
// "some split party is a dataset operator/affiliate", and the
// DaaS-recipient clause additionally requires that a dataset account
// appears among the transaction's touching parties (otherwise no batch
// scan would ever have surfaced the transaction).
func (r *Radar) gateLocked(splits []core.Split, touching []ethtypes.Address) bool {
	for _, sp := range splits {
		if r.isOpOrAff(sp.Operator) || r.isOpOrAff(sp.Affiliate) || r.isOpOrAff(sp.Payer) {
			return true
		}
		if r.ds.IsDaaSAccount(sp.Operator) || r.ds.IsDaaSAccount(sp.Affiliate) {
			for _, p := range touching {
				if r.isOpOrAff(p) {
					return true
				}
			}
		}
	}
	return false
}

// absorbLocked mirrors the batch pipeline's absorbContract: classify
// the contract's history up to block b, record its own splits, and
// register payout accounts. History beyond b is left for live arrival,
// which keeps restore points consistent with their block boundary.
func (r *Radar) absorbLocked(addr ethtypes.Address, found core.Discovery, b uint64) error {
	if _, known := r.ds.Contracts[addr]; known {
		return nil
	}
	hashes, err := r.cfg.Source.TransactionsOf(addr)
	if err != nil {
		return err
	}
	var crec *core.ContractRecord
	var quarantined int64
	for _, h := range hashes {
		if r.classified[h] {
			continue
		}
		tx, rec, err := r.fetchPair(h)
		if err != nil {
			return err
		}
		if tx == nil {
			quarantined++
			if _, ok := r.pending[h]; !ok {
				r.pending[h] = &pendingTx{block: b}
			}
			continue
		}
		if rec.BlockNumber > b {
			continue
		}
		splits := r.cfg.Classifier.Classify(tx, rec)
		var own []core.Split
		for _, sp := range splits {
			if sp.Contract == addr {
				own = append(own, sp)
			}
		}
		if len(own) == 0 {
			continue
		}
		if crec == nil {
			crec = &core.ContractRecord{Address: addr, Found: found, FirstSeen: rec.Timestamp, LastSeen: rec.Timestamp}
			r.ds.Contracts[addr] = crec
			if found == core.DiscoverySeed {
				for _, l := range r.cfg.Labels.Of(addr) {
					crec.Sources = append(crec.Sources, string(l.Source))
				}
			}
			r.emitLocked(Update{Kind: KindContract, Block: b, Address: addr.Hex(), Discovery: string(found)})
		}
		if rec.Timestamp.Before(crec.FirstSeen) {
			crec.FirstSeen = rec.Timestamp
		}
		if rec.Timestamp.After(crec.LastSeen) {
			crec.LastSeen = rec.Timestamp
		}
		crec.TxCount++
		r.classified[h] = true
		r.dirty = true
		if err := r.recordSplitsLocked(own, found, b); err != nil {
			return err
		}
	}
	if quarantined > 0 && r.cfg.Coverage != nil {
		r.cfg.Coverage.NoteQuarantined(addr, quarantined)
	}
	return nil
}

// recordSplitsLocked mirrors the batch recordSplits, and additionally
// starts the incremental cluster feed for newly admitted operators.
func (r *Radar) recordSplitsLocked(splits []core.Split, found core.Discovery, b uint64) error {
	for _, sp := range splits {
		r.ds.Splits[sp.TxHash] = append(r.ds.Splits[sp.TxHash], sp)
		if r.touchLocked(r.ds.Operators, sp.Operator, sp.Time, found) {
			r.emitLocked(Update{Kind: KindOperator, Block: b, Address: sp.Operator.Hex(), Discovery: string(found)})
			if err := r.admitOperatorLocked(sp.Operator, b); err != nil {
				return err
			}
		}
		if r.touchLocked(r.ds.Affiliates, sp.Affiliate, sp.Time, found) {
			r.emitLocked(Update{Kind: KindAffiliate, Block: b, Address: sp.Affiliate.Hex(), Discovery: string(found)})
		}
	}
	return nil
}

// touchLocked is the radar's version of the batch touchAccount with
// one extra rule: a later seed-phase touch upgrades an
// expansion-discovered account. The batch runs its entire seed phase
// first, so any account party to a seed-contract split carries the
// seed tag there; in arrival order the expansion touch can come first,
// and the upgrade restores the batch's final tag. Downgrades never
// happen.
func (r *Radar) touchLocked(m map[ethtypes.Address]*core.AccountRecord,
	a ethtypes.Address, t time.Time, found core.Discovery) bool {

	rec, ok := m[a]
	if !ok {
		m[a] = &core.AccountRecord{Address: a, Found: found, FirstSeen: t, LastSeen: t}
		return true
	}
	if found == core.DiscoverySeed && rec.Found == core.DiscoveryExpansion {
		rec.Found = core.DiscoverySeed
	}
	if t.Before(rec.FirstSeen) {
		rec.FirstSeen = t
	}
	if t.After(rec.LastSeen) {
		rec.LastSeen = t
	}
	return false
}

// admitOperatorLocked registers a new operator with the incremental
// clusterer and feeds its history up to block b — the arrival-order
// analogue of the batch clusterer's per-operator history walk. Later
// evidence arrives through the per-block member feed.
func (r *Radar) admitOperatorLocked(op ethtypes.Address, b uint64) error {
	r.inc.AddOperator(op)
	hashes, err := r.cfg.Source.TransactionsOf(op)
	if err != nil {
		return err
	}
	for _, h := range hashes {
		tx, rec, err := r.fetchPair(h)
		if err != nil {
			return err
		}
		if tx == nil {
			r.inc.ObserveQuarantined(op)
			continue
		}
		if rec.BlockNumber > b {
			continue
		}
		r.inc.ObserveTx(op, tx)
	}
	return nil
}

// feedMembersLocked forwards one transaction to the clusterer for
// every member operator it touches; double feeds are idempotent.
func (r *Radar) feedMembersLocked(tx *chain.Transaction, rec *chain.Receipt) {
	for _, p := range touchingParties(tx, rec) {
		if r.inc.Contains(p) {
			r.inc.ObserveTx(p, tx)
		}
	}
}

// retryPendingLocked re-examines parked transactions until no rule
// fires — the arrival-order fixpoint matching the batch frontier's
// iteration. Entries are visited in (block, hash) order so the
// resulting dataset is independent of arrival batching.
func (r *Radar) retryPendingLocked(b uint64) error {
	for {
		changed := false
		for _, h := range r.sortedPendingLocked() {
			pt, ok := r.pending[h]
			if !ok {
				continue
			}
			if r.classified[h] {
				delete(r.pending, h)
				continue
			}
			if pt.splits == nil {
				tx, rec, err := r.fetchPair(h)
				if err != nil {
					return err
				}
				if tx == nil {
					continue // still quarantined
				}
				if rec.BlockNumber > b {
					continue // future block: will arrive live
				}
				r.feedMembersLocked(tx, rec)
				splits := r.cfg.Classifier.Classify(tx, rec)
				if len(splits) == 0 {
					delete(r.pending, h)
					continue
				}
				pt.splits = splits
				pt.time = rec.Timestamp
				pt.touching = touchingParties(tx, rec)
				pt.block = rec.BlockNumber
			}
			contract := pt.splits[0].Contract
			if crec, known := r.ds.Contracts[contract]; known {
				if err := r.liveRecordLocked(crec, h, pt.time, pt.splits, b); err != nil {
					return err
				}
				delete(r.pending, h)
				changed = true
				continue
			}
			if r.phishing[contract] {
				isC, err := r.cfg.Source.IsContract(contract)
				if err != nil {
					return err
				}
				if isC {
					if err := r.absorbLocked(contract, core.DiscoverySeed, b); err != nil {
						return err
					}
					delete(r.pending, h)
					changed = true
					continue
				}
			}
			if r.gateLocked(pt.splits, pt.touching) {
				if err := r.absorbLocked(contract, core.DiscoveryExpansion, b); err != nil {
					return err
				}
				delete(r.pending, h)
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
}

func (r *Radar) sortedPendingLocked() []ethtypes.Hash {
	out := make([]ethtypes.Hash, 0, len(r.pending))
	for h := range r.pending {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := r.pending[out[i]].block, r.pending[out[j]].block
		if bi != bj {
			return bi < bj
		}
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// recomputeSeedStatsLocked derives the batch pipeline's frozen
// seed-phase statistics from discovery tags: the batch freezes Stats()
// when only seed-found records exist, so counting seed-tagged records
// (and split transactions of seed contracts) reproduces it exactly.
func (r *Radar) recomputeSeedStatsLocked() {
	var ss core.Stats
	for _, c := range r.ds.Contracts {
		if c.Found == core.DiscoverySeed {
			ss.Contracts++
		}
	}
	for _, a := range r.ds.Operators {
		if a.Found == core.DiscoverySeed {
			ss.Operators++
		}
	}
	for _, a := range r.ds.Affiliates {
		if a.Found == core.DiscoverySeed {
			ss.Affiliates++
		}
	}
	for _, sps := range r.ds.Splits {
		if len(sps) == 0 {
			continue
		}
		if c := r.ds.Contracts[sps[0].Contract]; c != nil && c.Found == core.DiscoverySeed {
			ss.ProfitTxs++
		}
	}
	r.ds.SeedStats = ss
}

func (r *Radar) degradedLocked() map[ethtypes.Address]bool {
	if r.cfg.Coverage == nil {
		return nil
	}
	stats := r.cfg.Coverage.Stats()
	if len(stats.Degraded) == 0 {
		return nil
	}
	out := make(map[ethtypes.Address]bool, len(stats.Degraded))
	for a := range stats.Degraded {
		out[a] = true
	}
	return out
}

// recompileLocked rolls up families, annotates static fingerprints,
// compiles a fresh screening snapshot, and hot-swaps it into the
// engine. Family membership changes are emitted to the update feed.
func (r *Radar) recompileLocked() error {
	r.recomputeSeedStatsLocked()
	if r.cfg.Static != nil {
		if err := r.ds.AnnotateFingerprints(r.cfg.Static); err != nil {
			return err
		}
	}
	fams := r.inc.Families(r.ds, r.degradedLocked())
	r.familyCount = len(fams)
	r.m.familiesG.Set(int64(len(fams)))
	for _, fam := range fams {
		for _, c := range fam.Contracts {
			if r.famOf[c] != fam.Name {
				r.famOf[c] = fam.Name
				r.emitLocked(Update{Kind: KindFamilyContract, Block: r.cursor, Address: c.Hex(), Family: fam.Name})
			}
		}
	}
	if r.cfg.Engine != nil {
		r.cfg.Engine.Swap(screen.Compile(r.ds, fams, r.cfg.Domains))
		r.swaps++
		r.m.swapsC.Inc()
		r.emitLocked(Update{Kind: KindSwap, Block: r.cursor})
	}
	return nil
}

// Families returns the current family rollup (recomputed on demand;
// cheap relative to ingest).
func (r *Radar) Families() []*cluster.Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inc.Families(r.ds, r.degradedLocked())
}

// ExportJSON writes the dataset in exactly the one-shot pipeline's
// export format — the byte-identity surface.
func (r *Radar) ExportJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recomputeSeedStatsLocked()
	if r.cfg.Static != nil {
		if err := r.ds.AnnotateFingerprints(r.cfg.Static); err != nil {
			return err
		}
	}
	return r.ds.WriteJSON(w)
}
