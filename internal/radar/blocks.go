package radar

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
)

// BlockRef is the radar's view of one block: enough to follow the head
// (number, hash, parent) and to enumerate the transactions it must
// classify. It deliberately carries no bodies — those flow through the
// cache→integrity→retry record source, where per-tx pins live.
type BlockRef struct {
	Number   uint64
	Hash     ethtypes.Hash
	Parent   ethtypes.Hash
	Time     time.Time
	TxHashes []ethtypes.Hash
}

// BlockSource exposes the head cursor and block headers of a chain.
// Implementations: ChainBlocks (in-process) and rpc.ClientBlocks
// (remote node).
type BlockSource interface {
	// Head returns the number of the latest canonical block.
	Head() (uint64, error)
	// BlockRef returns the canonical block at height n.
	BlockRef(n uint64) (BlockRef, error)
}

// ChainBlocks adapts an in-process simulated chain as a BlockSource.
type ChainBlocks struct {
	Chain *chain.Chain
}

// Head returns the latest block number.
func (cb ChainBlocks) Head() (uint64, error) {
	n := cb.Chain.BlockCount()
	if n == 0 {
		return 0, fmt.Errorf("radar: chain has no blocks")
	}
	return n - 1, nil
}

// BlockRef returns the canonical block at height n.
func (cb ChainBlocks) BlockRef(n uint64) (BlockRef, error) {
	blk, err := cb.Chain.BlockByNumber(n)
	if err != nil {
		return BlockRef{}, err
	}
	return BlockRef{
		Number:   blk.Number,
		Hash:     blk.Hash(),
		Parent:   blk.Parent,
		Time:     blk.Timestamp,
		TxHashes: append([]ethtypes.Hash(nil), blk.TxHashes...),
	}, nil
}
