package radar

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
)

// stateExt is the radar's opaque extension blob inside a version-3
// checkpoint: everything beyond the dataset and classified set that
// the daemon needs to continue exactly where it stopped. All slices
// are emitted in deterministic order so identical states serialize to
// identical bytes.
type stateExt struct {
	// Cluster is the incremental clusterer's snapshot.
	Cluster json.RawMessage `json:"cluster"`
	// Pending lists transactions parked at the expansion gate; they are
	// re-fetched and re-classified after restore, which reproduces the
	// in-memory rich entries deterministically.
	Pending []pendingJSON `json:"pending,omitempty"`
	// Ring is the reorg ring of recently processed block hashes.
	Ring []ringJSON `json:"ring"`
	// Reorgs, Swaps, and UpdateCursor keep the daemon's counters (and
	// the update feed's monotonic cursor) continuous across resume.
	Reorgs       int    `json:"reorgs"`
	Swaps        uint64 `json:"swaps"`
	UpdateCursor uint64 `json:"update_cursor"`
}

type pendingJSON struct {
	Tx    string `json:"tx"`
	Block uint64 `json:"block"`
}

type ringJSON struct {
	Number uint64 `json:"number"`
	Hash   string `json:"hash"`
}

// buildCheckpointLocked assembles the daemon's full persisted state.
func (r *Radar) buildCheckpointLocked() (*core.RadarCheckpoint, error) {
	r.recomputeSeedStatsLocked()
	cblob, err := r.inc.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("radar: snapshotting clusterer: %w", err)
	}
	ext := stateExt{
		Cluster:      json.RawMessage(cblob),
		Reorgs:       r.reorgs,
		Swaps:        r.swaps,
		UpdateCursor: r.updateCursor,
	}
	for _, h := range r.sortedPendingLocked() {
		ext.Pending = append(ext.Pending, pendingJSON{Tx: h.Hex(), Block: r.pending[h].block})
	}
	for _, e := range r.ring {
		ext.Ring = append(ext.Ring, ringJSON{Number: e.Number, Hash: e.Hash.Hex()})
	}
	blob, err := json.Marshal(ext)
	if err != nil {
		return nil, fmt.Errorf("radar: serializing state extension: %w", err)
	}
	return &core.RadarCheckpoint{
		Dataset:    r.ds,
		Classified: r.classified,
		Head:       r.cursor,
		Radar:      blob,
	}, nil
}

// marshalStateLocked serializes the full state to checkpoint bytes —
// used both for the on-disk checkpoint and for in-memory restore
// points (serialization doubles as a deep copy: the dataset inside a
// restore point must not alias the live maps).
func (r *Radar) marshalStateLocked() ([]byte, error) {
	cp, err := r.buildCheckpointLocked()
	if err != nil {
		return nil, err
	}
	return core.MarshalRadarCheckpoint(cp)
}

// restoreBlobLocked reinstates a serialized state. keepCounters
// preserves the live reorg/swap counters and update cursor — required
// on rollback, where the update feed must stay monotonic; a fresh
// resume takes them from the blob instead.
func (r *Radar) restoreBlobLocked(blob []byte, keepCounters bool) error {
	cp, err := core.ReadRadarCheckpoint(bytes.NewReader(blob))
	if err != nil {
		return err
	}
	return r.applyCheckpointLocked(cp, keepCounters)
}

// applyCheckpointLocked installs a decoded checkpoint as the live
// state.
func (r *Radar) applyCheckpointLocked(cp *core.RadarCheckpoint, keepCounters bool) error {
	var ext stateExt
	if len(cp.Radar) == 0 {
		return fmt.Errorf("radar: checkpoint has no radar state extension")
	}
	if err := json.Unmarshal(cp.Radar, &ext); err != nil {
		return fmt.Errorf("radar: decoding state extension: %w", err)
	}
	if len(ext.Ring) == 0 {
		return fmt.Errorf("radar: checkpoint ring is empty")
	}

	inc := cluster.NewIncremental(r.cfg.Labels, r.cfg.Metrics)
	if len(ext.Cluster) > 0 {
		if err := inc.Restore(ext.Cluster); err != nil {
			return fmt.Errorf("radar: restoring clusterer: %w", err)
		}
	}
	pending := make(map[ethtypes.Hash]*pendingTx, len(ext.Pending))
	for _, p := range ext.Pending {
		h, err := ethtypes.HexToHash(p.Tx)
		if err != nil {
			return fmt.Errorf("radar: checkpoint pending tx: %w", err)
		}
		pending[h] = &pendingTx{block: p.Block}
	}
	ring := make([]ringEntry, 0, len(ext.Ring))
	for _, e := range ext.Ring {
		h, err := ethtypes.HexToHash(e.Hash)
		if err != nil {
			return fmt.Errorf("radar: checkpoint ring hash: %w", err)
		}
		ring = append(ring, ringEntry{Number: e.Number, Hash: h})
	}

	r.ds = cp.Dataset
	r.classified = cp.Classified
	r.cursor = cp.Head
	r.inc = inc
	r.pending = pending
	r.ring = ring
	r.famOf = make(map[ethtypes.Address]string)
	r.familyCount = 0
	r.dirty = true // recompile (and re-announce families) after restore
	if !keepCounters {
		r.reorgs = ext.Reorgs
		r.swaps = ext.Swaps
		r.updateCursor = ext.UpdateCursor
		r.points = nil
	}
	return nil
}
