package radar

import "repro/internal/core"

// Update kinds, in the order a consumer typically sees them: dataset
// admissions, family membership changes, then the control-plane events
// (reorg rollbacks and snapshot swaps).
const (
	KindContract       = "contract"
	KindOperator       = "operator"
	KindAffiliate      = "affiliate"
	KindFamilyContract = "family_contract"
	KindReorg          = "reorg"
	KindSwap           = "swap"
)

// Update is one entry in the radar's cursor-ordered event feed.
// Cursors are monotonically increasing and survive checkpoint/resume,
// so a consumer polling daas_radarUpdates with its last cursor never
// sees an entry twice. After a reorg the radar re-emits admissions for
// the replayed blocks; the interleaved "reorg" entry tells consumers
// which prefix to invalidate.
type Update struct {
	Cursor uint64 `json:"cursor"`
	Block  uint64 `json:"block"`
	Kind   string `json:"kind"`
	// Address is the admitted contract/operator/affiliate, hex-encoded
	// (empty for reorg/swap events).
	Address string `json:"address,omitempty"`
	// Family names the cluster a family_contract event joined.
	Family string `json:"family,omitempty"`
	// Discovery is "seed" or "expansion" for admission events.
	Discovery string `json:"discovery,omitempty"`
}

// Status is a point-in-time summary of the daemon, served by
// daas_radarStatus.
type Status struct {
	Head         uint64     `json:"head"`
	Cursor       uint64     `json:"cursor"`
	Stats        core.Stats `json:"stats"`
	SeedStats    core.Stats `json:"seed_stats"`
	Families     int        `json:"families"`
	Pending      int        `json:"pending_txs"`
	Reorgs       int        `json:"reorgs"`
	Swaps        uint64     `json:"swaps"`
	UpdateCursor uint64     `json:"update_cursor"`
}

// updateRingCap bounds the in-memory update feed; consumers further
// behind than this see Dropped=true and should resync from a full
// export.
const updateRingCap = 1024

// emitLocked appends an update to the ring, assigning its cursor.
func (r *Radar) emitLocked(u Update) {
	r.updateCursor++
	u.Cursor = r.updateCursor
	r.updates = append(r.updates, u)
	if len(r.updates) > updateRingCap {
		r.updates = r.updates[len(r.updates)-updateRingCap:]
	}
	r.m.updates.Inc()
}

// Updates returns feed entries with cursor > after, at most limit
// (limit <= 0 means no limit), the current cursor, and whether entries
// between after and the ring's oldest entry have been dropped.
func (r *Radar) Updates(after uint64, limit int) ([]Update, uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	dropped := len(r.updates) > 0 && after+1 < r.updates[0].Cursor
	if len(r.updates) == 0 && after < r.updateCursor {
		dropped = true
	}
	out := []Update{}
	for _, u := range r.updates {
		if u.Cursor <= after {
			continue
		}
		out = append(out, u)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, r.updateCursor, dropped
}

// Status reports the daemon's current head, cursor, dataset sizes, and
// feed position.
func (r *Radar) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recomputeSeedStatsLocked()
	return Status{
		Head:         r.lastHead,
		Cursor:       r.cursor,
		Stats:        r.ds.Stats(),
		SeedStats:    r.ds.SeedStats,
		Families:     r.familyCount,
		Pending:      len(r.pending),
		Reorgs:       r.reorgs,
		Swaps:        r.swaps,
		UpdateCursor: r.updateCursor,
	}
}
