// Package evm implements a compact Ethereum Virtual Machine interpreter.
//
// The subset covers everything the drainer substrate's profit-sharing
// contracts need: the function-dispatch idiom (CALLDATALOAD / SHR / EQ /
// JUMPI), 256-bit arithmetic, memory, contract storage, value-bearing
// CALLs, and calldata loops — enough to deploy and execute real bytecode
// whose fund flows the measurement pipeline then classifies, and whose
// selectors the decompiler recovers (paper Table 3).
package evm

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/ethtypes"
)

// Opcode values implemented by the interpreter.
const (
	STOP           = 0x00
	ADD            = 0x01
	MUL            = 0x02
	SUB            = 0x03
	DIV            = 0x04
	MOD            = 0x06
	EXP            = 0x0a
	LT             = 0x10
	GT             = 0x11
	EQ             = 0x14
	ISZERO         = 0x15
	AND            = 0x16
	OR             = 0x17
	XOR            = 0x18
	NOT            = 0x19
	SHL            = 0x1b
	SHR            = 0x1c
	ADDRESS        = 0x30
	BALANCE        = 0x31
	CALLER         = 0x33
	CALLVALUE      = 0x34
	CALLDATALOAD   = 0x35
	CALLDATASIZE   = 0x36
	CALLDATACOPY   = 0x37
	CODESIZE       = 0x38
	CODECOPY       = 0x39
	RETURNDATASIZE = 0x3d
	RETURNDATACOPY = 0x3e
	TIMESTAMP      = 0x42
	NUMBER         = 0x43
	SELFBALANCE    = 0x47
	POP            = 0x50
	MLOAD          = 0x51
	MSTORE         = 0x52
	SLOAD          = 0x54
	SSTORE         = 0x55
	JUMP           = 0x56
	JUMPI          = 0x57
	PC             = 0x58
	GAS            = 0x5a
	JUMPDEST       = 0x5b
	PUSH0          = 0x5f
	PUSH1          = 0x60 // PUSH1..PUSH32 are 0x60..0x7f
	DUP1           = 0x80 // DUP1..DUP16 are 0x80..0x8f
	SWAP1          = 0x90 // SWAP1..SWAP16 are 0x90..0x9f
	LOG0           = 0xa0 // LOG0..LOG4 are 0xa0..0xa4
	CREATE         = 0xf0
	CALL           = 0xf1
	RETURN         = 0xf3
	DELEGATECALL   = 0xf4
	STATICCALL     = 0xfa
	REVERT         = 0xfd
)

// Interpreter limits.
const (
	// StackLimit is the maximum stack depth, per the yellow paper.
	StackLimit = 1024
	// CallDepthLimit bounds nested calls.
	CallDepthLimit = 1024
	// MemoryLimit bounds memory expansion to keep hostile bytecode cheap.
	MemoryLimit = 1 << 20
)

// Errors surfaced by execution. A REVERT is reported as ErrRevert with
// the return data preserved in the Result.
var (
	ErrStackUnderflow = errors.New("evm: stack underflow")
	ErrStackOverflow  = errors.New("evm: stack overflow")
	ErrBadJump        = errors.New("evm: jump to non-JUMPDEST")
	ErrOutOfGas       = errors.New("evm: out of gas")
	ErrInvalidOpcode  = errors.New("evm: invalid opcode")
	ErrMemoryLimit    = errors.New("evm: memory limit exceeded")
	ErrCallDepth      = errors.New("evm: call depth exceeded")
	ErrRevert         = errors.New("evm: execution reverted")
	ErrWriteStatic    = errors.New("evm: state write in static context")
)

// Host is the chain-side interface the interpreter calls back into for
// anything outside pure computation: balances, storage, nested calls,
// and logs. internal/chain provides the production implementation.
type Host interface {
	// Balance returns the current balance of addr.
	Balance(addr ethtypes.Address) ethtypes.Wei
	// StorageGet reads a storage word of the executing contract.
	StorageGet(addr ethtypes.Address, key ethtypes.Hash) ethtypes.Hash
	// StorageSet writes a storage word of the executing contract.
	StorageSet(addr ethtypes.Address, key, val ethtypes.Hash)
	// Call performs a message call (value transfer plus execution of the
	// callee, which may be a native contract, EVM bytecode, or an EOA).
	Call(from, to ethtypes.Address, value ethtypes.Wei, input []byte, depth int) ([]byte, error)
	// EmitLog records a log entry for the executing contract.
	EmitLog(addr ethtypes.Address, topics []ethtypes.Hash, data []byte)
}

// CodeHost is an optional Host extension supplying deployed bytecode,
// which DELEGATECALL needs to run the callee's code inside the caller's
// storage context. Hosts that do not implement it treat DELEGATECALL
// targets like EOAs: the call succeeds with empty return data.
type CodeHost interface {
	// CodeOf returns the runtime bytecode deployed at addr, or nil.
	CodeOf(addr ethtypes.Address) []byte
}

// Context carries the immutable parameters of one execution frame.
type Context struct {
	Code   []byte
	Self   ethtypes.Address
	Caller ethtypes.Address
	Value  ethtypes.Wei
	Input  []byte
	Gas    uint64
	Depth  int
	Host   Host
	// Time and BlockNumber populate TIMESTAMP and NUMBER; zero values
	// are fine for code that does not read them.
	Time        int64
	BlockNumber uint64
}

// Result is the outcome of one execution frame.
type Result struct {
	ReturnData []byte
	GasUsed    uint64
	Reverted   bool
}

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

// Run executes ctx.Code to completion and returns the result. A REVERT
// yields (Result{Reverted: true, ...}, ErrRevert); other failures yield
// their respective error with partial gas accounting.
func Run(ctx *Context) (Result, error) {
	if ctx.Depth > CallDepthLimit {
		return Result{}, ErrCallDepth
	}
	in := interp{ctx: ctx, gas: ctx.Gas, jumpdests: analyzeJumpdests(ctx.Code)}
	return in.run()
}

// analyzeJumpdests marks valid JUMPDEST positions, skipping PUSH data.
func analyzeJumpdests(code []byte) map[int]bool {
	dests := make(map[int]bool)
	for pc := 0; pc < len(code); pc++ {
		op := code[pc]
		if op == JUMPDEST {
			dests[pc] = true
		} else if op >= PUSH1 && op <= PUSH1+31 {
			pc += int(op-PUSH1) + 1
		}
	}
	return dests
}

type interp struct {
	ctx       *Context
	stack     []*big.Int
	mem       []byte
	gas       uint64
	jumpdests map[int]bool
	// retData holds the return data of the most recent nested CALL.
	retData []byte
}

func (in *interp) push(v *big.Int) error {
	if len(in.stack) >= StackLimit {
		return ErrStackOverflow
	}
	in.stack = append(in.stack, v)
	return nil
}

func (in *interp) pop() (*big.Int, error) {
	if len(in.stack) == 0 {
		return nil, ErrStackUnderflow
	}
	v := in.stack[len(in.stack)-1]
	in.stack = in.stack[:len(in.stack)-1]
	return v, nil
}

func (in *interp) popN(n int) ([]*big.Int, error) {
	if len(in.stack) < n {
		return nil, ErrStackUnderflow
	}
	out := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		out[i] = in.stack[len(in.stack)-1-i]
	}
	in.stack = in.stack[:len(in.stack)-n]
	return out, nil
}

// charge deducts a flat per-opcode cost; hostile unbounded loops exhaust
// the frame's gas budget rather than hanging the simulator.
func (in *interp) charge(cost uint64) error {
	if in.gas < cost {
		in.gas = 0
		return ErrOutOfGas
	}
	in.gas -= cost
	return nil
}

func (in *interp) expandMem(offset, size uint64) error {
	if size == 0 {
		return nil
	}
	end := offset + size
	if end < offset || end > MemoryLimit {
		return ErrMemoryLimit
	}
	if uint64(len(in.mem)) < end {
		in.mem = append(in.mem, make([]byte, end-uint64(len(in.mem)))...)
	}
	return nil
}

func u64(v *big.Int) (uint64, bool) {
	if !v.IsUint64() {
		return 0, false
	}
	return v.Uint64(), true
}

func mod256(v *big.Int) *big.Int {
	if v.Sign() < 0 || v.BitLen() > 256 {
		v.Mod(v, two256)
	}
	return v
}

func boolWord(b bool) *big.Int {
	if b {
		return big.NewInt(1)
	}
	return new(big.Int)
}

func (in *interp) run() (Result, error) {
	ctx := in.ctx
	code := ctx.Code
	pc := 0
	for pc < len(code) {
		op := code[pc]
		if err := in.charge(opCost(op)); err != nil {
			return Result{GasUsed: ctx.Gas}, err
		}
		switch {
		case op == STOP:
			return Result{GasUsed: ctx.Gas - in.gas}, nil

		case op == ADD, op == MUL, op == SUB, op == DIV, op == MOD,
			op == EXP, op == AND, op == OR, op == XOR, op == LT, op == GT,
			op == EQ, op == SHL, op == SHR:
			args, err := in.popN(2)
			if err != nil {
				return Result{}, err
			}
			out, err := binop(op, args[0], args[1])
			if err != nil {
				return Result{}, err
			}
			if err := in.push(out); err != nil {
				return Result{}, err
			}
			pc++

		case op == ISZERO:
			v, err := in.pop()
			if err != nil {
				return Result{}, err
			}
			if err := in.push(boolWord(v.Sign() == 0)); err != nil {
				return Result{}, err
			}
			pc++

		case op == NOT:
			v, err := in.pop()
			if err != nil {
				return Result{}, err
			}
			out := new(big.Int).Sub(two256, big.NewInt(1))
			out.Xor(out, v)
			if err := in.push(out); err != nil {
				return Result{}, err
			}
			pc++

		case op == ADDRESS:
			if err := in.push(new(big.Int).SetBytes(ctx.Self[:])); err != nil {
				return Result{}, err
			}
			pc++

		case op == CALLER:
			if err := in.push(new(big.Int).SetBytes(ctx.Caller[:])); err != nil {
				return Result{}, err
			}
			pc++

		case op == CALLVALUE:
			if err := in.push(ctx.Value.Big()); err != nil {
				return Result{}, err
			}
			pc++

		case op == BALANCE:
			v, err := in.pop()
			if err != nil {
				return Result{}, err
			}
			addr := ethtypes.BytesToAddress(v.Bytes())
			if err := in.push(ctx.Host.Balance(addr).Big()); err != nil {
				return Result{}, err
			}
			pc++

		case op == SELFBALANCE:
			if err := in.push(ctx.Host.Balance(ctx.Self).Big()); err != nil {
				return Result{}, err
			}
			pc++

		case op == CALLDATALOAD:
			v, err := in.pop()
			if err != nil {
				return Result{}, err
			}
			var word [32]byte
			if off, ok := u64(v); ok {
				for i := uint64(0); i < 32; i++ {
					if off+i < uint64(len(ctx.Input)) {
						word[i] = ctx.Input[off+i]
					}
				}
			}
			if err := in.push(new(big.Int).SetBytes(word[:])); err != nil {
				return Result{}, err
			}
			pc++

		case op == CALLDATASIZE:
			if err := in.push(big.NewInt(int64(len(ctx.Input)))); err != nil {
				return Result{}, err
			}
			pc++

		case op == CALLDATACOPY:
			args, err := in.popN(3)
			if err != nil {
				return Result{}, err
			}
			memOff, ok1 := u64(args[0])
			dataOff, ok2 := u64(args[1])
			size, ok3 := u64(args[2])
			if !ok1 || !ok3 {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(memOff, size); err != nil {
				return Result{}, err
			}
			for i := uint64(0); i < size; i++ {
				var b byte
				if ok2 && dataOff+i < uint64(len(ctx.Input)) {
					b = ctx.Input[dataOff+i]
				}
				in.mem[memOff+i] = b
			}
			pc++

		case op == CODESIZE:
			if err := in.push(big.NewInt(int64(len(code)))); err != nil {
				return Result{}, err
			}
			pc++

		case op == CODECOPY:
			args, err := in.popN(3)
			if err != nil {
				return Result{}, err
			}
			memOff, ok1 := u64(args[0])
			codeOff, ok2 := u64(args[1])
			size, ok3 := u64(args[2])
			if !ok1 || !ok3 {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(memOff, size); err != nil {
				return Result{}, err
			}
			for i := uint64(0); i < size; i++ {
				var b byte
				if ok2 && codeOff+i < uint64(len(code)) {
					b = code[codeOff+i]
				}
				in.mem[memOff+i] = b
			}
			pc++

		case op == TIMESTAMP:
			if err := in.push(big.NewInt(ctx.Time)); err != nil {
				return Result{}, err
			}
			pc++

		case op == NUMBER:
			if err := in.push(new(big.Int).SetUint64(ctx.BlockNumber)); err != nil {
				return Result{}, err
			}
			pc++

		case op == RETURNDATASIZE:
			if err := in.push(big.NewInt(int64(len(in.retData)))); err != nil {
				return Result{}, err
			}
			pc++

		case op == RETURNDATACOPY:
			args, err := in.popN(3)
			if err != nil {
				return Result{}, err
			}
			memOff, ok1 := u64(args[0])
			dataOff, ok2 := u64(args[1])
			size, ok3 := u64(args[2])
			if !ok1 || !ok2 || !ok3 {
				return Result{}, ErrMemoryLimit
			}
			// Reading beyond the return data is a hard failure in the
			// yellow paper, unlike CALLDATACOPY's zero padding.
			if dataOff+size < dataOff || dataOff+size > uint64(len(in.retData)) {
				return Result{}, fmt.Errorf("%w: returndata out of bounds", ErrMemoryLimit)
			}
			if err := in.expandMem(memOff, size); err != nil {
				return Result{}, err
			}
			copy(in.mem[memOff:memOff+size], in.retData[dataOff:dataOff+size])
			pc++

		case op == POP:
			if _, err := in.pop(); err != nil {
				return Result{}, err
			}
			pc++

		case op == MLOAD:
			v, err := in.pop()
			if err != nil {
				return Result{}, err
			}
			off, ok := u64(v)
			if !ok {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(off, 32); err != nil {
				return Result{}, err
			}
			if err := in.push(new(big.Int).SetBytes(in.mem[off : off+32])); err != nil {
				return Result{}, err
			}
			pc++

		case op == MSTORE:
			args, err := in.popN(2)
			if err != nil {
				return Result{}, err
			}
			off, ok := u64(args[0])
			if !ok {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(off, 32); err != nil {
				return Result{}, err
			}
			args[1].FillBytes(in.mem[off : off+32])
			pc++

		case op == SLOAD:
			v, err := in.pop()
			if err != nil {
				return Result{}, err
			}
			var key ethtypes.Hash
			v.FillBytes(key[:])
			val := ctx.Host.StorageGet(ctx.Self, key)
			if err := in.push(new(big.Int).SetBytes(val[:])); err != nil {
				return Result{}, err
			}
			pc++

		case op == SSTORE:
			args, err := in.popN(2)
			if err != nil {
				return Result{}, err
			}
			var key, val ethtypes.Hash
			args[0].FillBytes(key[:])
			args[1].FillBytes(val[:])
			ctx.Host.StorageSet(ctx.Self, key, val)
			pc++

		case op == JUMP:
			v, err := in.pop()
			if err != nil {
				return Result{}, err
			}
			dest, ok := u64(v)
			if !ok || !in.jumpdests[int(dest)] {
				return Result{}, fmt.Errorf("%w: pc %v", ErrBadJump, v)
			}
			pc = int(dest)

		case op == JUMPI:
			args, err := in.popN(2)
			if err != nil {
				return Result{}, err
			}
			if args[1].Sign() != 0 {
				dest, ok := u64(args[0])
				if !ok || !in.jumpdests[int(dest)] {
					return Result{}, fmt.Errorf("%w: pc %v", ErrBadJump, args[0])
				}
				pc = int(dest)
			} else {
				pc++
			}

		case op == PC:
			if err := in.push(big.NewInt(int64(pc))); err != nil {
				return Result{}, err
			}
			pc++

		case op == GAS:
			if err := in.push(new(big.Int).SetUint64(in.gas)); err != nil {
				return Result{}, err
			}
			pc++

		case op == JUMPDEST:
			pc++

		case op == PUSH0:
			if err := in.push(new(big.Int)); err != nil {
				return Result{}, err
			}
			pc++

		case op >= PUSH1 && op <= PUSH1+31:
			n := int(op-PUSH1) + 1
			end := pc + 1 + n
			if end > len(code) {
				end = len(code)
			}
			v := new(big.Int).SetBytes(code[pc+1 : end])
			if err := in.push(v); err != nil {
				return Result{}, err
			}
			pc += n + 1

		case op >= DUP1 && op <= DUP1+15:
			n := int(op-DUP1) + 1
			if len(in.stack) < n {
				return Result{}, ErrStackUnderflow
			}
			v := new(big.Int).Set(in.stack[len(in.stack)-n])
			if err := in.push(v); err != nil {
				return Result{}, err
			}
			pc++

		case op >= SWAP1 && op <= SWAP1+15:
			n := int(op-SWAP1) + 1
			if len(in.stack) < n+1 {
				return Result{}, ErrStackUnderflow
			}
			top := len(in.stack) - 1
			in.stack[top], in.stack[top-n] = in.stack[top-n], in.stack[top]
			pc++

		case op >= LOG0 && op <= LOG0+4:
			topicCount := int(op - LOG0)
			args, err := in.popN(2 + topicCount)
			if err != nil {
				return Result{}, err
			}
			off, ok1 := u64(args[0])
			size, ok2 := u64(args[1])
			if !ok1 || !ok2 {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(off, size); err != nil {
				return Result{}, err
			}
			topics := make([]ethtypes.Hash, topicCount)
			for i := 0; i < topicCount; i++ {
				args[2+i].FillBytes(topics[i][:])
			}
			data := make([]byte, size)
			copy(data, in.mem[off:off+size])
			ctx.Host.EmitLog(ctx.Self, topics, data)
			pc++

		case op == CALL:
			args, err := in.popN(7)
			if err != nil {
				return Result{}, err
			}
			// args: gas, to, value, inOff, inSize, outOff, outSize
			to := ethtypes.BytesToAddress(args[1].Bytes())
			value := ethtypes.WeiFromBig(args[2])
			inOff, ok1 := u64(args[3])
			inSize, ok2 := u64(args[4])
			outOff, ok3 := u64(args[5])
			outSize, ok4 := u64(args[6])
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(inOff, inSize); err != nil {
				return Result{}, err
			}
			input := make([]byte, inSize)
			copy(input, in.mem[inOff:inOff+inSize])
			ret, callErr := ctx.Host.Call(ctx.Self, to, value, input, ctx.Depth+1)
			if callErr == nil {
				in.retData = ret
			} else {
				in.retData = nil
			}
			if callErr == nil && outSize > 0 {
				if err := in.expandMem(outOff, outSize); err != nil {
					return Result{}, err
				}
				n := uint64(len(ret))
				if n > outSize {
					n = outSize
				}
				copy(in.mem[outOff:outOff+n], ret[:n])
			}
			if err := in.push(boolWord(callErr == nil)); err != nil {
				return Result{}, err
			}
			pc++

		case op == DELEGATECALL:
			args, err := in.popN(6)
			if err != nil {
				return Result{}, err
			}
			// args: gas, to, inOff, inSize, outOff, outSize. The callee's
			// code runs in this frame's context: same Self, Caller, and
			// Value, so its SLOADs and SSTOREs hit our storage.
			to := ethtypes.BytesToAddress(args[1].Bytes())
			inOff, ok1 := u64(args[2])
			inSize, ok2 := u64(args[3])
			outOff, ok3 := u64(args[4])
			outSize, ok4 := u64(args[5])
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(inOff, inSize); err != nil {
				return Result{}, err
			}
			input := make([]byte, inSize)
			copy(input, in.mem[inOff:inOff+inSize])
			var ret []byte
			var callErr error
			if ch, ok := ctx.Host.(CodeHost); ok {
				if callee := ch.CodeOf(to); len(callee) > 0 {
					res, runErr := Run(&Context{
						Code:        callee,
						Self:        ctx.Self,
						Caller:      ctx.Caller,
						Value:       ctx.Value,
						Input:       input,
						Gas:         in.gas,
						Depth:       ctx.Depth + 1,
						Host:        ctx.Host,
						Time:        ctx.Time,
						BlockNumber: ctx.BlockNumber,
					})
					if chErr := in.charge(res.GasUsed); chErr != nil {
						return Result{GasUsed: ctx.Gas}, chErr
					}
					ret, callErr = res.ReturnData, runErr
				}
			}
			// A code-less target (EOA, or a Host without CodeHost)
			// succeeds with empty return data, like mainnet.
			if callErr == nil {
				in.retData = ret
			} else {
				in.retData = nil
			}
			if callErr == nil && outSize > 0 {
				if err := in.expandMem(outOff, outSize); err != nil {
					return Result{}, err
				}
				n := uint64(len(ret))
				if n > outSize {
					n = outSize
				}
				copy(in.mem[outOff:outOff+n], ret[:n])
			}
			if err := in.push(boolWord(callErr == nil)); err != nil {
				return Result{}, err
			}
			pc++

		case op == STATICCALL:
			args, err := in.popN(6)
			if err != nil {
				return Result{}, err
			}
			// args: gas, to, inOff, inSize, outOff, outSize. Routed through
			// the host as a zero-value call; this interpreter does not
			// enforce the read-only restriction (no contract in the
			// simulated world writes state behind a STATICCALL).
			to := ethtypes.BytesToAddress(args[1].Bytes())
			inOff, ok1 := u64(args[2])
			inSize, ok2 := u64(args[3])
			outOff, ok3 := u64(args[4])
			outSize, ok4 := u64(args[5])
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(inOff, inSize); err != nil {
				return Result{}, err
			}
			input := make([]byte, inSize)
			copy(input, in.mem[inOff:inOff+inSize])
			ret, callErr := ctx.Host.Call(ctx.Self, to, ethtypes.Wei{}, input, ctx.Depth+1)
			if callErr == nil {
				in.retData = ret
			} else {
				in.retData = nil
			}
			if callErr == nil && outSize > 0 {
				if err := in.expandMem(outOff, outSize); err != nil {
					return Result{}, err
				}
				n := uint64(len(ret))
				if n > outSize {
					n = outSize
				}
				copy(in.mem[outOff:outOff+n], ret[:n])
			}
			if err := in.push(boolWord(callErr == nil)); err != nil {
				return Result{}, err
			}
			pc++

		case op == RETURN, op == REVERT:
			args, err := in.popN(2)
			if err != nil {
				return Result{}, err
			}
			off, ok1 := u64(args[0])
			size, ok2 := u64(args[1])
			if !ok1 || !ok2 {
				return Result{}, ErrMemoryLimit
			}
			if err := in.expandMem(off, size); err != nil {
				return Result{}, err
			}
			ret := make([]byte, size)
			copy(ret, in.mem[off:off+size])
			res := Result{ReturnData: ret, GasUsed: ctx.Gas - in.gas}
			if op == REVERT {
				res.Reverted = true
				return res, ErrRevert
			}
			return res, nil

		default:
			return Result{}, fmt.Errorf("%w: 0x%02x at pc %d", ErrInvalidOpcode, op, pc)
		}
	}
	// Running off the end of code is an implicit STOP.
	return Result{GasUsed: ctx.Gas - in.gas}, nil
}

func binop(op byte, a, b *big.Int) (*big.Int, error) {
	out := new(big.Int)
	switch op {
	case ADD:
		return mod256(out.Add(a, b)), nil
	case MUL:
		return mod256(out.Mul(a, b)), nil
	case SUB:
		return mod256(out.Sub(a, b)), nil
	case DIV:
		if b.Sign() == 0 {
			return out, nil
		}
		return out.Div(a, b), nil
	case MOD:
		if b.Sign() == 0 {
			return out, nil
		}
		return out.Mod(a, b), nil
	case AND:
		return out.And(a, b), nil
	case OR:
		return out.Or(a, b), nil
	case XOR:
		return out.Xor(a, b), nil
	case LT:
		return boolWord(a.Cmp(b) < 0), nil
	case GT:
		return boolWord(a.Cmp(b) > 0), nil
	case EQ:
		return boolWord(a.Cmp(b) == 0), nil
	case SHL:
		n, ok := u64(a)
		if !ok || n > 255 {
			return out, nil
		}
		return mod256(out.Lsh(b, uint(n))), nil
	case SHR:
		n, ok := u64(a)
		if !ok || n > 255 {
			return out, nil
		}
		return out.Rsh(b, uint(n)), nil
	case EXP:
		return out.Exp(a, b, two256), nil
	}
	return nil, fmt.Errorf("%w: 0x%02x", ErrInvalidOpcode, op)
}

// opCost assigns flat costs: expensive state ops cost more so gas limits
// still bound work realistically.
func opCost(op byte) uint64 {
	switch op {
	case SLOAD:
		return 100
	case SSTORE:
		return 5000
	case CALL, DELEGATECALL, STATICCALL:
		return 700
	case BALANCE, SELFBALANCE:
		return 100
	default:
		if op >= LOG0 && op <= LOG0+4 {
			return 375
		}
		return 3
	}
}
