package evm

import (
	"bytes"
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/ethtypes"
)

// mockHost records interactions for assertions.
type mockHost struct {
	balances map[ethtypes.Address]ethtypes.Wei
	storage  map[ethtypes.Address]map[ethtypes.Hash]ethtypes.Hash
	calls    []mockCall
	logs     int
	callErr  error
	callRet  []byte
}

type mockCall struct {
	from, to ethtypes.Address
	value    ethtypes.Wei
	input    []byte
}

func newMockHost() *mockHost {
	return &mockHost{
		balances: make(map[ethtypes.Address]ethtypes.Wei),
		storage:  make(map[ethtypes.Address]map[ethtypes.Hash]ethtypes.Hash),
	}
}

func (h *mockHost) Balance(a ethtypes.Address) ethtypes.Wei { return h.balances[a] }

func (h *mockHost) StorageGet(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
	return h.storage[a][k]
}

func (h *mockHost) StorageSet(a ethtypes.Address, k, v ethtypes.Hash) {
	if h.storage[a] == nil {
		h.storage[a] = make(map[ethtypes.Hash]ethtypes.Hash)
	}
	h.storage[a][k] = v
}

func (h *mockHost) Call(from, to ethtypes.Address, value ethtypes.Wei, input []byte, depth int) ([]byte, error) {
	h.calls = append(h.calls, mockCall{from, to, value, append([]byte{}, input...)})
	return h.callRet, h.callErr
}

func (h *mockHost) EmitLog(a ethtypes.Address, topics []ethtypes.Hash, data []byte) { h.logs++ }

func run(t *testing.T, code []byte, input []byte, value ethtypes.Wei, host Host) (Result, error) {
	t.Helper()
	if host == nil {
		host = newMockHost()
	}
	return Run(&Context{
		Code:   code,
		Self:   ethtypes.Addr("0x00000000000000000000000000000000000000c0"),
		Caller: ethtypes.Addr("0x00000000000000000000000000000000000000ca"),
		Value:  value,
		Input:  input,
		Gas:    1_000_000,
		Host:   host,
	})
}

// mustAssemble assembles a test program known to be well-formed.
func (a *Assembler) mustAssemble() []byte {
	code, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}

// returnTop is a code suffix that returns the top of stack as one word.
func returnTop(a *Assembler) []byte {
	return a.Op(PUSH0, MSTORE).PushInt(32).Op(PUSH0, RETURN).mustAssemble()
}

func wordResult(t *testing.T, res Result) *big.Int {
	t.Helper()
	if len(res.ReturnData) != 32 {
		t.Fatalf("return data length %d, want 32", len(res.ReturnData))
	}
	return new(big.Int).SetBytes(res.ReturnData)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name string
		prog func(*Assembler) *Assembler
		want int64
	}{
		{"add", func(a *Assembler) *Assembler { return a.PushInt(2).PushInt(3).Op(ADD) }, 5},
		{"mul", func(a *Assembler) *Assembler { return a.PushInt(6).PushInt(7).Op(MUL) }, 42},
		{"sub", func(a *Assembler) *Assembler { return a.PushInt(3).PushInt(10).Op(SUB) }, 7},
		{"div", func(a *Assembler) *Assembler { return a.PushInt(4).PushInt(100).Op(DIV) }, 25},
		{"div by zero", func(a *Assembler) *Assembler { return a.PushInt(0).PushInt(9).Op(DIV) }, 0},
		{"mod", func(a *Assembler) *Assembler { return a.PushInt(7).PushInt(30).Op(MOD) }, 2},
		{"lt true", func(a *Assembler) *Assembler { return a.PushInt(5).PushInt(3).Op(LT) }, 1},
		{"gt false", func(a *Assembler) *Assembler { return a.PushInt(5).PushInt(3).Op(GT) }, 0},
		{"eq", func(a *Assembler) *Assembler { return a.PushInt(5).PushInt(5).Op(EQ) }, 1},
		{"iszero", func(a *Assembler) *Assembler { return a.PushInt(0).Op(ISZERO) }, 1},
		{"and", func(a *Assembler) *Assembler { return a.PushInt(0b1100).PushInt(0b1010).Op(AND) }, 0b1000},
		{"or", func(a *Assembler) *Assembler { return a.PushInt(0b1100).PushInt(0b1010).Op(OR) }, 0b1110},
		{"xor", func(a *Assembler) *Assembler { return a.PushInt(0b1100).PushInt(0b1010).Op(XOR) }, 0b0110},
		{"shl", func(a *Assembler) *Assembler { return a.PushInt(1).PushInt(4).Op(SHL) }, 16},
		{"shr", func(a *Assembler) *Assembler { return a.PushInt(16).PushInt(4).Op(SHR) }, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code := returnTop(c.prog(NewAssembler()))
			res, err := run(t, code, nil, ethtypes.Wei{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := wordResult(t, res); got.Int64() != c.want {
				t.Errorf("got %v, want %d", got, c.want)
			}
		})
	}
}

func TestArithmeticWraps(t *testing.T) {
	// max uint256 + 1 == 0
	max := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	code := returnTop(NewAssembler().PushInt(1).Push(max).Op(ADD))
	res, err := run(t, code, nil, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Sign() != 0 {
		t.Error("2^256 did not wrap to 0")
	}
	// 0 - 1 == max uint256
	code = returnTop(NewAssembler().PushInt(1).PushInt(0).Op(SUB))
	res, err = run(t, code, nil, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Cmp(max) != 0 {
		t.Error("underflow did not wrap to 2^256-1")
	}
}

func TestCallValueAndCaller(t *testing.T) {
	code := returnTop(NewAssembler().Op(CALLVALUE))
	res, err := run(t, code, nil, ethtypes.Ether(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Cmp(ethtypes.Ether(3).Big()) != 0 {
		t.Error("CALLVALUE mismatch")
	}
	code = returnTop(NewAssembler().Op(CALLER))
	res, err = run(t, code, nil, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := wordResult(t, res); got.Cmp(new(big.Int).SetBytes([]byte{0xca})) != 0 {
		t.Errorf("CALLER = %x", got)
	}
}

func TestCalldata(t *testing.T) {
	input := make([]byte, 36)
	input[0], input[1], input[2], input[3] = 0xde, 0xad, 0xbe, 0xef
	input[35] = 0x07
	// selector := shr(224, calldataload(0))
	code := returnTop(NewAssembler().PushInt(0).Op(CALLDATALOAD).PushInt(224).Op(SHR))
	res, err := run(t, code, input, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Uint64() != 0xdeadbeef {
		t.Errorf("selector = %x", wordResult(t, res))
	}
	// arg0 := calldataload(4)
	code = returnTop(NewAssembler().PushInt(4).Op(CALLDATALOAD))
	res, err = run(t, code, input, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Uint64() != 7 {
		t.Errorf("arg0 = %v", wordResult(t, res))
	}
	// reads beyond calldata are zero-padded
	code = returnTop(NewAssembler().PushInt(1000).Op(CALLDATALOAD))
	res, err = run(t, code, input, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Sign() != 0 {
		t.Error("out-of-range calldataload not zero")
	}
	code = returnTop(NewAssembler().Op(CALLDATASIZE))
	res, _ = run(t, code, input, ethtypes.Wei{}, nil)
	if wordResult(t, res).Uint64() != 36 {
		t.Error("CALLDATASIZE mismatch")
	}
}

func TestStorage(t *testing.T) {
	host := newMockHost()
	// sstore(5, 99); return sload(5)
	code := returnTop(NewAssembler().
		PushInt(99).PushInt(5).Op(SSTORE).
		PushInt(5).Op(SLOAD))
	res, err := run(t, code, nil, ethtypes.Wei{}, host)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Uint64() != 99 {
		t.Error("storage round trip failed")
	}
}

func TestJumpLoop(t *testing.T) {
	// for i := 0; i < 10; i++ { sum += i }; return sum
	a := NewAssembler()
	a.PushInt(0) // sum
	a.PushInt(0) // i
	a.Label("loop")
	// stack: [sum, i]
	a.PushInt(10).Op(DUP1 + 1).Op(LT) // i < 10
	a.JumpIf("body")
	a.Jump("end")
	a.Label("body")
	a.Op(DUP1)           // sum i i
	a.Op(SWAP1 + 1)      // i i sum
	a.Op(ADD)            // i sum'
	a.Op(SWAP1)          // sum' i
	a.PushInt(1).Op(ADD) // sum' i+1
	a.Jump("loop")
	a.Label("end")
	a.Op(POP) // drop i
	code := returnTop(a)
	res, err := run(t, code, nil, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Uint64() != 45 {
		t.Errorf("loop sum = %v, want 45", wordResult(t, res))
	}
}

func TestBadJumpRejected(t *testing.T) {
	// Jump into the middle of a PUSH payload must fail.
	code := NewAssembler().PushInt(2).Op(JUMP).Op(JUMPDEST).Stop().mustAssemble()
	_, err := run(t, code, nil, ethtypes.Wei{}, nil)
	if !errors.Is(err, ErrBadJump) {
		t.Errorf("got %v, want ErrBadJump", err)
	}
}

func TestJumpdestInsidePushIsData(t *testing.T) {
	// PUSH2 0x5b5b embeds JUMPDEST bytes that must not be valid targets.
	a := NewAssembler()
	a.Op(PUSH1+1, 0x5b, 0x5b) // PUSH2 0x5b5b
	a.Op(POP)
	a.PushInt(1).Op(JUMP) // target 1 = first 0x5b byte, inside push data
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, code, nil, ethtypes.Wei{}, nil); !errors.Is(err, ErrBadJump) {
		t.Errorf("got %v, want ErrBadJump", err)
	}
}

func TestCallTransfersValue(t *testing.T) {
	host := newMockHost()
	to := ethtypes.Addr("0x000000000000000000000000000000000000beef")
	// call(gas, to, 123, 0, 0, 0, 0)
	a := NewAssembler()
	a.PushInt(0).PushInt(0).PushInt(0).PushInt(0) // outSize outOff inSize inOff
	a.PushInt(123).PushAddr(to).Op(GAS)
	a.Op(CALL)
	code := returnTop(a)
	res, err := run(t, code, nil, ethtypes.Wei{}, host)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Uint64() != 1 {
		t.Error("CALL did not push success")
	}
	if len(host.calls) != 1 {
		t.Fatalf("host saw %d calls", len(host.calls))
	}
	if host.calls[0].to != to || host.calls[0].value.Uint64() != 123 {
		t.Errorf("call = %+v", host.calls[0])
	}
}

func TestCallFailurePushesZero(t *testing.T) {
	host := newMockHost()
	host.callErr = errors.New("boom")
	a := NewAssembler()
	a.PushInt(0).PushInt(0).PushInt(0).PushInt(0)
	a.PushInt(0).PushInt(0xbeef).Op(GAS).Op(CALL)
	code := returnTop(a)
	res, err := run(t, code, nil, ethtypes.Wei{}, host)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Sign() != 0 {
		t.Error("failed CALL pushed non-zero")
	}
}

func TestRevertPreservesData(t *testing.T) {
	a := NewAssembler()
	a.PushInt(0xbad).Op(PUSH0, MSTORE).PushInt(32).Op(PUSH0, REVERT)
	res, err := run(t, a.mustAssemble(), nil, ethtypes.Wei{}, nil)
	if !errors.Is(err, ErrRevert) {
		t.Fatalf("got %v, want ErrRevert", err)
	}
	if !res.Reverted || new(big.Int).SetBytes(res.ReturnData).Uint64() != 0xbad {
		t.Error("revert data lost")
	}
}

func TestOutOfGasTerminatesLoop(t *testing.T) {
	a := NewAssembler()
	a.Label("spin").Jump("spin")
	_, err := run(t, a.mustAssemble(), nil, ethtypes.Wei{}, nil)
	if !errors.Is(err, ErrOutOfGas) {
		t.Errorf("got %v, want ErrOutOfGas", err)
	}
}

func TestStackUnderflowAndOverflow(t *testing.T) {
	if _, err := run(t, []byte{ADD}, nil, ethtypes.Wei{}, nil); !errors.Is(err, ErrStackUnderflow) {
		t.Errorf("underflow: got %v", err)
	}
	a := NewAssembler()
	a.PushInt(1)
	a.Label("again").Op(DUP1, DUP1).Jump("again")
	if _, err := run(t, a.mustAssemble(), nil, ethtypes.Wei{}, nil); !errors.Is(err, ErrStackOverflow) {
		t.Errorf("overflow: got %v", err)
	}
}

func TestInvalidOpcode(t *testing.T) {
	if _, err := run(t, []byte{0xfe}, nil, ethtypes.Wei{}, nil); !errors.Is(err, ErrInvalidOpcode) {
		t.Errorf("got %v, want ErrInvalidOpcode", err)
	}
}

func TestMemoryLimit(t *testing.T) {
	a := NewAssembler()
	a.PushInt(1).Push(new(big.Int).SetUint64(1 << 30)).Op(MSTORE)
	if _, err := run(t, a.mustAssemble(), nil, ethtypes.Wei{}, nil); !errors.Is(err, ErrMemoryLimit) {
		t.Errorf("got %v, want ErrMemoryLimit", err)
	}
}

func TestLogEmission(t *testing.T) {
	host := newMockHost()
	// LOG1 pops off, size, topic — push in reverse.
	code := NewAssembler().
		PushInt(0x1234). // topic (deepest)
		PushInt(0).      // size
		PushInt(0).      // off (top)
		Op(LOG0 + 1).
		Stop().mustAssemble()
	if _, err := run(t, code, nil, ethtypes.Wei{}, host); err != nil {
		t.Fatal(err)
	}
	if host.logs != 1 {
		t.Errorf("logs = %d, want 1", host.logs)
	}
}

func TestCodecopyRuntimeDeployPattern(t *testing.T) {
	// Deploy-style: codecopy(0, offset, size); return(0, size) — the
	// constructor idiom our templates use.
	runtime := NewAssembler().PushInt(7).Op(PUSH0, MSTORE).PushInt(32).Op(PUSH0, RETURN).mustAssemble()
	ctor := NewAssembler()
	ctor.PushInt(int64(len(runtime))) // size
	ctor.PushLabel("runtime")         // offset
	ctor.PushInt(0)                   // dest
	ctor.Op(CODECOPY)
	ctor.PushInt(int64(len(runtime))).PushInt(0).Op(RETURN)
	ctor.Mark("runtime")
	ctor.Op(runtime...)
	res, err := run(t, ctor.mustAssemble(), nil, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The constructor returns the runtime prefixed by the JUMPDEST from Label.
	got := res.ReturnData
	if !bytes.Contains(got, runtime[:4]) {
		t.Errorf("constructor returned %x, want to contain runtime prefix", got)
	}
}

func TestAssemblerErrors(t *testing.T) {
	if _, err := NewAssembler().Jump("nowhere").Assemble(); err == nil {
		t.Error("undefined label accepted")
	}
	a := NewAssembler().Label("x")
	if _, err := a.Label("x").Assemble(); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := NewAssembler().Push(big.NewInt(-1)).Assemble(); err == nil {
		t.Error("negative push accepted")
	}
	if _, err := NewAssembler().PushBytes(nil).Assemble(); err == nil {
		t.Error("empty PushBytes accepted")
	}
}

// Property: PUSH round-trips any uint64 through the interpreter.
func TestQuickPushReturn(t *testing.T) {
	f := func(v uint64) bool {
		code := returnTop(NewAssembler().Push(new(big.Int).SetUint64(v)))
		res, err := run(t, code, nil, ethtypes.Wei{}, nil)
		if err != nil {
			return false
		}
		return new(big.Int).SetBytes(res.ReturnData).Uint64() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ADD on the EVM agrees with big-int addition mod 2^256.
func TestQuickAddMatchesBigInt(t *testing.T) {
	f := func(x, y uint64) bool {
		code := returnTop(NewAssembler().
			Push(new(big.Int).SetUint64(x)).
			Push(new(big.Int).SetUint64(y)).
			Op(ADD))
		res, err := run(t, code, nil, ethtypes.Wei{}, nil)
		if err != nil {
			return false
		}
		want := new(big.Int).Add(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
		return new(big.Int).SetBytes(res.ReturnData).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExpOpcode(t *testing.T) {
	// 2^10 = 1024; EXP pops base then exponent.
	code := returnTop(NewAssembler().PushInt(10).PushInt(2).Op(EXP))
	res, err := run(t, code, nil, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Uint64() != 1024 {
		t.Errorf("2^10 = %v", wordResult(t, res))
	}
	// Wraps mod 2^256: 2^256 == 0.
	code = returnTop(NewAssembler().PushInt(256).PushInt(2).Op(EXP))
	res, err = run(t, code, nil, ethtypes.Wei{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Sign() != 0 {
		t.Error("2^256 did not wrap")
	}
}

func TestTimestampAndNumber(t *testing.T) {
	code := returnTop(NewAssembler().Op(TIMESTAMP))
	res, err := Run(&Context{Code: code, Gas: 100000, Host: newMockHost(), Time: 1700000123, BlockNumber: 42})
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(res.ReturnData).Int64() != 1700000123 {
		t.Error("TIMESTAMP mismatch")
	}
	code = returnTop(NewAssembler().Op(NUMBER))
	res, err = Run(&Context{Code: code, Gas: 100000, Host: newMockHost(), BlockNumber: 42})
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(res.ReturnData).Uint64() != 42 {
		t.Error("NUMBER mismatch")
	}
}

func TestReturnData(t *testing.T) {
	host := newMockHost()
	host.callRet = []byte{0xaa, 0xbb, 0xcc}
	a := NewAssembler()
	// call(gas, 0xbeef, 0, 0,0,0,0)
	a.PushInt(0).PushInt(0).PushInt(0).PushInt(0).PushInt(0).PushInt(0xbeef).Op(GAS, CALL, POP)
	// returndatacopy(0, 1, 2); return mem[0:32]
	a.PushInt(2).PushInt(1).PushInt(0).Op(RETURNDATACOPY)
	a.Op(RETURNDATASIZE) // also check size
	code := returnTop(a)
	res, err := run(t, code, nil, ethtypes.Wei{}, host)
	if err != nil {
		t.Fatal(err)
	}
	if wordResult(t, res).Uint64() != 3 {
		t.Errorf("RETURNDATASIZE = %v, want 3", wordResult(t, res))
	}
	// Out-of-bounds returndatacopy hard-fails.
	b := NewAssembler()
	b.PushInt(0).PushInt(0).PushInt(0).PushInt(0).PushInt(0).PushInt(0xbeef).Op(GAS, CALL, POP)
	b.PushInt(10).PushInt(0).PushInt(0).Op(RETURNDATACOPY).Stop()
	if _, err := run(t, b.mustAssemble(), nil, ethtypes.Wei{}, host); err == nil {
		t.Error("out-of-bounds RETURNDATACOPY succeeded")
	}
}
