package evm

import (
	"fmt"
	"math/big"

	"repro/internal/ethtypes"
)

// Assembler builds EVM bytecode with symbolic labels. Label references
// are emitted as fixed-width PUSH2 placeholders and patched at Assemble
// time, so forward jumps work naturally.
type Assembler struct {
	code   []byte
	labels map[string]int
	refs   []labelRef
	err    error
}

type labelRef struct {
	pos   int // offset of the 2-byte operand inside code
	label string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int)}
}

// Op appends raw opcodes.
func (a *Assembler) Op(ops ...byte) *Assembler {
	a.code = append(a.code, ops...)
	return a
}

// Push appends the shortest PUSH for v (PUSH0 for zero).
func (a *Assembler) Push(v *big.Int) *Assembler {
	if v.Sign() < 0 {
		a.fail(fmt.Errorf("evm: push of negative value %v", v))
		return a
	}
	if v.Sign() == 0 {
		return a.Op(PUSH0)
	}
	b := v.Bytes()
	if len(b) > 32 {
		a.fail(fmt.Errorf("evm: push wider than 32 bytes"))
		return a
	}
	a.code = append(a.code, PUSH1+byte(len(b)-1))
	a.code = append(a.code, b...)
	return a
}

// PushInt pushes a small constant.
func (a *Assembler) PushInt(v int64) *Assembler { return a.Push(big.NewInt(v)) }

// PushBytes appends a PUSHn of the literal bytes (1..32), preserving
// leading zeros — used for 4-byte selectors.
func (a *Assembler) PushBytes(b []byte) *Assembler {
	if len(b) == 0 || len(b) > 32 {
		a.fail(fmt.Errorf("evm: PushBytes length %d", len(b)))
		return a
	}
	a.code = append(a.code, PUSH1+byte(len(b)-1))
	a.code = append(a.code, b...)
	return a
}

// PushAddr pushes a 20-byte address literal.
func (a *Assembler) PushAddr(addr ethtypes.Address) *Assembler {
	return a.PushBytes(addr[:])
}

// Label defines label name at the current position and emits a JUMPDEST.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("evm: duplicate label %q", name))
		return a
	}
	a.labels[name] = len(a.code)
	return a.Op(JUMPDEST)
}

// Mark defines label name at the current position without emitting a
// JUMPDEST — for data references such as a constructor's embedded
// runtime code.
func (a *Assembler) Mark(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("evm: duplicate label %q", name))
		return a
	}
	a.labels[name] = len(a.code)
	return a
}

// PushLabel emits a PUSH2 placeholder that Assemble patches with the
// label's offset.
func (a *Assembler) PushLabel(name string) *Assembler {
	a.code = append(a.code, PUSH1+1) // PUSH2
	a.refs = append(a.refs, labelRef{pos: len(a.code), label: name})
	a.code = append(a.code, 0, 0)
	return a
}

// Jump emits an unconditional jump to the label.
func (a *Assembler) Jump(name string) *Assembler {
	return a.PushLabel(name).Op(JUMP)
}

// JumpIf emits a conditional jump consuming the condition already on
// the stack.
func (a *Assembler) JumpIf(name string) *Assembler {
	return a.PushLabel(name).Op(JUMPI)
}

// Revert emits a zero-data revert.
func (a *Assembler) Revert() *Assembler {
	return a.Op(PUSH0, PUSH0, REVERT)
}

// Stop emits STOP.
func (a *Assembler) Stop() *Assembler { return a.Op(STOP) }

func (a *Assembler) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// Assemble patches label references and returns the final bytecode.
func (a *Assembler) Assemble() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	out := make([]byte, len(a.code))
	copy(out, a.code)
	for _, ref := range a.refs {
		target, ok := a.labels[ref.label]
		if !ok {
			return nil, fmt.Errorf("evm: undefined label %q", ref.label)
		}
		if target > 0xffff {
			return nil, fmt.Errorf("evm: label %q beyond PUSH2 range", ref.label)
		}
		out[ref.pos] = byte(target >> 8)
		out[ref.pos+1] = byte(target)
	}
	return out, nil
}
