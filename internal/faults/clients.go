package faults

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"time"
)

// Hostile drives server-side client misbehavior against a listening
// HTTP server: the attack repertoire the serving layer's hardening is
// contracted to survive. Each method speaks raw TCP so the server sees
// exactly the malformed wire traffic, not what a well-behaved HTTP
// client would sanitize. All methods return nil when the server
// handled the abuse the way a hardened server should (cut the
// connection, answered an error, or simply survived); they are
// diagnostics, not assertions.
type Hostile struct {
	// Addr is the server's host:port.
	Addr string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
}

func (h Hostile) dial() (net.Conn, error) {
	d := h.DialTimeout
	if d <= 0 {
		d = 2 * time.Second
	}
	return net.DialTimeout("tcp", h.Addr, d)
}

// Slowloris opens a request that claims a large body and trickles one
// byte per interval, never finishing. A hardened server must evict the
// connection at its request deadline instead of letting it camp on an
// admission slot; the call returns once the server hangs up or ctx
// expires (the latter meaning the server never let go — callers treat
// a ctx expiry as the failure signal via ErrHeldOpen).
func (h Hostile) Slowloris(ctx context.Context, interval time.Duration) error {
	conn, err := h.dial()
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST / HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: 1000000\r\n\r\n"); err != nil {
		return nil // server already slammed the door: fine
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	// A read in the background notices the server hanging up or
	// answering early.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = io.Copy(io.Discard, conn)
	}()
	for {
		select {
		case <-ctx.Done():
			return ErrHeldOpen
		case <-done:
			return nil
		case <-tick.C:
			if _, err := conn.Write([]byte(`{`)); err != nil {
				return nil
			}
		}
	}
}

// ErrHeldOpen reports that the server kept a hostile connection alive
// for the whole attack window instead of evicting it.
var ErrHeldOpen = fmt.Errorf("faults: server held hostile connection open: %w", ErrInjected)

// MidRequestDisconnect sends the first half of a valid request and
// slams the connection shut. The server must drop the partial request
// on the floor (counted, not crashed).
func (h Hostile) MidRequestDisconnect() error {
	conn, err := h.dial()
	if err != nil {
		return err
	}
	body := `{"jsonrpc":"2.0","id":1,"method":"daas_screen","params":["0x0101010101010101010101010101010101010101"]}`
	req := fmt.Sprintf("POST / HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body[:len(body)/2])
	_, _ = conn.Write([]byte(req))
	return conn.Close()
}

// HungKeepAlive completes one well-formed request, then holds the idle
// keep-alive connection open silently until the server times it out or
// ctx expires. Bounded server-side idle timeouts make this a no-op;
// unbounded ones leak a socket per attacker.
func (h Hostile) HungKeepAlive(ctx context.Context) error {
	conn, err := h.dial()
	if err != nil {
		return err
	}
	defer conn.Close()
	body := `{"jsonrpc":"2.0","id":1,"method":"daas_radarStatus","params":[]}`
	if _, err := fmt.Fprintf(conn, "POST / HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body); err != nil {
		return nil
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = io.Copy(io.Discard, conn)
	}()
	select {
	case <-ctx.Done():
		return nil // idle camping is bounded by the server's IdleTimeout, not ours
	case <-done:
		return nil
	}
}

// PostMalformed sends one complete request with the given (typically
// garbage) body and waits briefly for the server's answer. The server
// must respond — an error envelope, a 4xx, anything well-formed — and
// must not hang: a read timeout is reported as ErrHeldOpen.
func (h Hostile) PostMalformed(body []byte) error {
	conn, err := h.dial()
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST / HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n", len(body)); err != nil {
		return nil
	}
	if _, err := conn.Write(body); err != nil {
		return nil
	}
	_ = conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return ErrHeldOpen
		}
		return nil // reset/EOF: the server cut the cord, acceptable
	}
	return nil
}

// MalformedCorpus is the shared set of hostile request bodies:
// truncated envelopes, wrong-typed fields, huge ids, deep nesting,
// oversized batches, and binary garbage. FuzzServeHTTP seeds from the
// same shapes; RunChaos replays them against a live server.
func MalformedCorpus() [][]byte {
	return [][]byte{
		[]byte(``),
		[]byte(`{`),
		[]byte(`null`),
		[]byte(`[]`),
		[]byte(`[{}]`),
		[]byte(`{"jsonrpc":"2.0","id":1,"meth`),
		[]byte(`{"id":"string-id","method":5,"params":"?"}`),
		[]byte(`{"jsonrpc":"2.0","id":99999999999999999999999999999,"method":"eth_blockNumber"}`),
		[]byte(`{"jsonrpc":"2.0","id":1,"method":"daas_screenBatch","params":[["not","strings",1]]}`),
		[]byte(`{"jsonrpc":"2.0","id":1,"method":"daas_screen","params":["0xzz"]}`),
		[]byte(strings.Repeat(`[`, 2000)),
		[]byte(`[{"jsonrpc":"2.0","id":1,"method":"nope"},{"jsonrpc":"2.0","id":2}]`),
		[]byte("\x00\x01\x02\xff\xfe binary garbage"),
	}
}
