package faults

import (
	"context"
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
)

// Source decorates a core.ChainSource with the injector: every chain
// read first rolls the fault schedule and errors when a fault lands.
// It forwards the optional source capabilities (batching, bytecode,
// context-aware fetches) so the pipeline under test exercises the same
// code paths it would against the clean source.
type Source struct {
	src core.ChainSource
	inj *Injector
}

// WrapSource returns src with the injector in front of it.
func WrapSource(src core.ChainSource, inj *Injector) *Source {
	return &Source{src: src, inj: inj}
}

// Unwrap returns the wrapped source.
func (s *Source) Unwrap() core.ChainSource { return s.src }

// fault rolls the schedule for a non-record operation. A corruption
// kind drawn here has nothing to corrupt (hash lists and booleans carry
// no validatable record), so it passes the clean response through; the
// roll is still consumed, keeping the schedule aligned.
func (s *Source) fault(op string) error {
	kind, fatal, ok := s.inj.roll()
	if !ok || (!fatal && kind.corrupting()) {
		return nil
	}
	return sourceError(kind, fatal, op)
}

// rollRecord rolls the schedule for a record-fetching operation: it
// reports a corruption kind to apply to the response, an error to
// return instead, or a clean pass.
func (s *Source) rollRecord(op string) (kind Kind, corrupt bool, err error) {
	kind, fatal, ok := s.inj.roll()
	if !ok {
		return 0, false, nil
	}
	if !fatal && kind.corrupting() {
		return kind, true, nil
	}
	return 0, false, sourceError(kind, fatal, op)
}

// corruptTransaction returns a deep-enough copy of tx with its sender
// mutated. The memoized hash is copied along, exactly like a tampering
// middlebox would preserve the claimed identity — only a recomputed
// hash can see the mutation. The chain's own record is never touched.
func corruptTransaction(tx *chain.Transaction) *chain.Transaction {
	if tx == nil {
		return nil
	}
	cp := *tx
	cp.From[0] ^= 0xff
	return &cp
}

// corruptReceipt returns a copy of rec mangled per kind. Every branch
// produces a violation the integrity layer is guaranteed to detect;
// mutated slices are copied first so the chain's record stays intact.
func corruptReceipt(rec *chain.Receipt, kind Kind) *chain.Receipt {
	if rec == nil {
		return nil
	}
	cp := *rec
	switch kind {
	case KindStaleReorg:
		cp.BlockNumber += 1 << 41
		// AddDate, not Add: +500 years overflows time.Duration.
		cp.Timestamp = cp.Timestamp.AddDate(500, 0, 0)
	case KindTruncateLogs:
		switch {
		case len(cp.Logs) > 0:
			logs := append([]chain.Log(nil), cp.Logs...)
			logs[len(logs)-1].Address = ethtypes.Address{}
			logs[len(logs)-1].Topics = nil
			cp.Logs = logs
		case len(cp.Transfers) > 0:
			trs := append([]chain.Transfer(nil), cp.Transfers...)
			trs[len(trs)-1].From = ethtypes.Address{}
			trs[len(trs)-1].To = ethtypes.Address{}
			cp.Transfers = trs
		default:
			cp.TxHash[16] ^= 0xff
		}
	default: // KindCorruptField
		cp.TxHash[0] ^= 0xff
	}
	return &cp
}

// TransactionsOf implements core.ChainSource.
func (s *Source) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	if err := s.fault("TransactionsOf"); err != nil {
		return nil, err
	}
	return s.src.TransactionsOf(addr)
}

// Transaction implements core.ChainSource.
func (s *Source) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	// All corruption kinds degrade to field mutation on a transaction.
	_, corrupt, err := s.rollRecord("Transaction")
	if err != nil {
		return nil, err
	}
	tx, err := s.src.Transaction(h)
	if err != nil {
		return nil, err
	}
	if corrupt {
		return corruptTransaction(tx), nil
	}
	return tx, nil
}

// Receipt implements core.ChainSource.
func (s *Source) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	kind, corrupt, err := s.rollRecord("Receipt")
	if err != nil {
		return nil, err
	}
	rec, err := s.src.Receipt(h)
	if err != nil {
		return nil, err
	}
	if corrupt {
		return corruptReceipt(rec, kind), nil
	}
	return rec, nil
}

// TransactionContext implements core.ContextSource.
func (s *Source) TransactionContext(ctx context.Context, h ethtypes.Hash) (*chain.Transaction, error) {
	_, corrupt, err := s.rollRecord("Transaction")
	if err != nil {
		return nil, err
	}
	tx, err := core.SourceTransaction(ctx, s.src, h)
	if err != nil {
		return nil, err
	}
	if corrupt {
		return corruptTransaction(tx), nil
	}
	return tx, nil
}

// ReceiptContext implements core.ContextSource.
func (s *Source) ReceiptContext(ctx context.Context, h ethtypes.Hash) (*chain.Receipt, error) {
	kind, corrupt, err := s.rollRecord("Receipt")
	if err != nil {
		return nil, err
	}
	rec, err := core.SourceReceipt(ctx, s.src, h)
	if err != nil {
		return nil, err
	}
	if corrupt {
		return corruptReceipt(rec, kind), nil
	}
	return rec, nil
}

// IsContract implements core.ChainSource.
func (s *Source) IsContract(addr ethtypes.Address) (bool, error) {
	if err := s.fault("IsContract"); err != nil {
		return false, err
	}
	return s.src.IsContract(addr)
}

// Code implements core.CodeSource when the wrapped source does.
func (s *Source) Code(addr ethtypes.Address) ([]byte, error) {
	cs, ok := s.src.(core.CodeSource)
	if !ok {
		return nil, fmt.Errorf("faults: source %T does not serve bytecode", s.src)
	}
	if err := s.fault("Code"); err != nil {
		return nil, err
	}
	return cs.Code(addr)
}

// BatchTransactions implements core.BatchSource, degrading to per-item
// fetches when the wrapped source cannot batch (one roll per batch
// either way — a batch is one wire operation).
func (s *Source) BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error) {
	_, corrupt, err := s.rollRecord("BatchTransactions")
	if err != nil {
		return nil, err
	}
	var out []*chain.Transaction
	if bs, ok := s.src.(core.BatchSource); ok {
		out, err = bs.BatchTransactions(hs)
		if err != nil {
			return nil, err
		}
	} else {
		out = make([]*chain.Transaction, len(hs))
		for i, h := range hs {
			tx, err := s.src.Transaction(h)
			if err != nil {
				return nil, err
			}
			out[i] = tx
		}
	}
	if corrupt && len(out) > 0 {
		// One roll per batch; the fault lands on the first entry.
		out = append([]*chain.Transaction(nil), out...)
		out[0] = corruptTransaction(out[0])
	}
	return out, nil
}

// BatchReceipts implements core.BatchSource; see BatchTransactions.
func (s *Source) BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error) {
	kind, corrupt, err := s.rollRecord("BatchReceipts")
	if err != nil {
		return nil, err
	}
	var out []*chain.Receipt
	if bs, ok := s.src.(core.BatchSource); ok {
		out, err = bs.BatchReceipts(hs)
		if err != nil {
			return nil, err
		}
	} else {
		out = make([]*chain.Receipt, len(hs))
		for i, h := range hs {
			rec, err := s.src.Receipt(h)
			if err != nil {
				return nil, err
			}
			out[i] = rec
		}
	}
	if corrupt && len(out) > 0 {
		out = append([]*chain.Receipt(nil), out...)
		out[0] = corruptReceipt(out[0], kind)
	}
	return out, nil
}
