package faults

import (
	"context"
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
)

// Source decorates a core.ChainSource with the injector: every chain
// read first rolls the fault schedule and errors when a fault lands.
// It forwards the optional source capabilities (batching, bytecode,
// context-aware fetches) so the pipeline under test exercises the same
// code paths it would against the clean source.
type Source struct {
	src core.ChainSource
	inj *Injector
}

// WrapSource returns src with the injector in front of it.
func WrapSource(src core.ChainSource, inj *Injector) *Source {
	return &Source{src: src, inj: inj}
}

// Unwrap returns the wrapped source.
func (s *Source) Unwrap() core.ChainSource { return s.src }

// fault rolls the schedule for one operation.
func (s *Source) fault(op string) error {
	if kind, fatal, ok := s.inj.roll(); ok {
		return sourceError(kind, fatal, op)
	}
	return nil
}

// TransactionsOf implements core.ChainSource.
func (s *Source) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	if err := s.fault("TransactionsOf"); err != nil {
		return nil, err
	}
	return s.src.TransactionsOf(addr)
}

// Transaction implements core.ChainSource.
func (s *Source) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	if err := s.fault("Transaction"); err != nil {
		return nil, err
	}
	return s.src.Transaction(h)
}

// Receipt implements core.ChainSource.
func (s *Source) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	if err := s.fault("Receipt"); err != nil {
		return nil, err
	}
	return s.src.Receipt(h)
}

// TransactionContext implements core.ContextSource.
func (s *Source) TransactionContext(ctx context.Context, h ethtypes.Hash) (*chain.Transaction, error) {
	if err := s.fault("Transaction"); err != nil {
		return nil, err
	}
	return core.SourceTransaction(ctx, s.src, h)
}

// ReceiptContext implements core.ContextSource.
func (s *Source) ReceiptContext(ctx context.Context, h ethtypes.Hash) (*chain.Receipt, error) {
	if err := s.fault("Receipt"); err != nil {
		return nil, err
	}
	return core.SourceReceipt(ctx, s.src, h)
}

// IsContract implements core.ChainSource.
func (s *Source) IsContract(addr ethtypes.Address) (bool, error) {
	if err := s.fault("IsContract"); err != nil {
		return false, err
	}
	return s.src.IsContract(addr)
}

// Code implements core.CodeSource when the wrapped source does.
func (s *Source) Code(addr ethtypes.Address) ([]byte, error) {
	cs, ok := s.src.(core.CodeSource)
	if !ok {
		return nil, fmt.Errorf("faults: source %T does not serve bytecode", s.src)
	}
	if err := s.fault("Code"); err != nil {
		return nil, err
	}
	return cs.Code(addr)
}

// BatchTransactions implements core.BatchSource, degrading to per-item
// fetches when the wrapped source cannot batch (one roll per batch
// either way — a batch is one wire operation).
func (s *Source) BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error) {
	if err := s.fault("BatchTransactions"); err != nil {
		return nil, err
	}
	if bs, ok := s.src.(core.BatchSource); ok {
		return bs.BatchTransactions(hs)
	}
	out := make([]*chain.Transaction, len(hs))
	for i, h := range hs {
		tx, err := s.src.Transaction(h)
		if err != nil {
			return nil, err
		}
		out[i] = tx
	}
	return out, nil
}

// BatchReceipts implements core.BatchSource; see BatchTransactions.
func (s *Source) BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error) {
	if err := s.fault("BatchReceipts"); err != nil {
		return nil, err
	}
	if bs, ok := s.src.(core.BatchSource); ok {
		return bs.BatchReceipts(hs)
	}
	out := make([]*chain.Receipt, len(hs))
	for i, h := range hs {
		rec, err := s.src.Receipt(h)
		if err != nil {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}
