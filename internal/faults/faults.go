// Package faults injects deterministic, seeded faults into the
// measurement pipeline's I/O paths, standing in for the failure modes
// the paper's live infrastructure faces: RPC gateways that rate-limit
// and shed load, CT log frontends that 5xx under bursts, phishing
// sites that reset connections or truncate responses mid-crawl.
//
// Two decorators share one seeded Injector:
//
//   - Source wraps a core.ChainSource, erroring a configurable
//     fraction of chain reads (and, optionally, planting one fatal
//     fault at a fixed operation count — the kill-mid-run probe for
//     checkpoint/resume tests). The corruption kinds (KindCorruptField,
//     KindTruncateLogs, KindStaleReorg) instead let the read through
//     and mangle the response data in flight, exercising the integrity
//     layer's quarantine-and-refetch path;
//   - RoundTripper wraps an http.RoundTripper, synthesizing timeouts,
//     5xx responses, connection resets, 429 rate limits, and truncated
//     bodies for the CT client and the crawler.
//
// Given the same seed and the same sequential operation order, an
// injector produces the same fault schedule, so resilience tests can
// assert exact retry counts and byte-identical recovered outputs.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/obs"
	"repro/internal/retry"
)

// Kind is one injectable fault flavor.
type Kind int

// Fault kinds. The HTTP-specific kinds degrade to KindReset when
// injected into a non-HTTP path (a ChainSource read has no status
// line to fake).
const (
	// KindReset simulates a connection reset by peer.
	KindReset Kind = iota
	// KindTimeout simulates a request that times out.
	KindTimeout
	// KindStatus5xx simulates an HTTP 503 from the far side.
	KindStatus5xx
	// KindRateLimit simulates an HTTP 429.
	KindRateLimit
	// KindTruncate lets the request through but cuts the response body
	// short (HTTP paths only).
	KindTruncate
	// KindCorruptField lets a chain read through but mutates a record
	// field in flight (a transaction's sender, a receipt's identity),
	// producing data instead of an error. Detectable by construction:
	// the recomputed hash or receipt identity can no longer match.
	KindCorruptField
	// KindTruncateLogs lets a chain read through but truncates the
	// receipt's trailing structure (last log loses its emitting address
	// and topics; with no logs, the last transfer loses both endpoints;
	// with neither, the identity is garbled) — the shape of a response
	// cut short mid-body.
	KindTruncateLogs
	// KindStaleReorg lets a chain read through but answers from a
	// phantom fork: the receipt's block number and timestamp are shifted
	// far outside plausibility bounds.
	KindStaleReorg
)

func (k Kind) String() string {
	switch k {
	case KindReset:
		return "reset"
	case KindTimeout:
		return "timeout"
	case KindStatus5xx:
		return "status5xx"
	case KindRateLimit:
		return "ratelimit"
	case KindTruncate:
		return "truncate"
	case KindCorruptField:
		return "corrupt-field"
	case KindTruncateLogs:
		return "truncate-logs"
	case KindStaleReorg:
		return "stale-reorg"
	default:
		return "unknown"
	}
}

// corrupting reports whether k mutates response data in flight instead
// of erroring. Corruption kinds only apply to record-fetching chain
// reads (Transaction/Receipt and their batches); rolled on any other
// operation they pass the clean response through — the roll is still
// consumed, preserving the one-draw-per-op schedule contract.
func (k Kind) corrupting() bool {
	switch k {
	case KindCorruptField, KindTruncateLogs, KindStaleReorg:
		return true
	default:
		return false
	}
}

// ErrInjected is the root of every injected fault, so tests can assert
// a failure was synthetic.
var ErrInjected = errors.New("faults: injected fault")

// Plan configures an Injector.
type Plan struct {
	// Seed feeds the deterministic schedule RNG.
	Seed uint64
	// Rate is the per-operation fault probability in [0, 1].
	Rate float64
	// Kinds is the fault-flavor pool one is drawn from per fault
	// (default: KindReset only).
	Kinds []Kind
	// MaxFaults, when positive, stops injecting after that many faults
	// — the schedule "dries up", letting a retried or resumed run
	// complete and be compared against a fault-free one.
	MaxFaults int64
	// FatalAfterOps, when positive, injects exactly one fatal
	// (non-retryable) fault at operation number FatalAfterOps,
	// independent of Rate — the deterministic kill switch for
	// checkpoint/resume tests.
	FatalAfterOps int64
}

// Injector is a seeded deterministic fault scheduler shared by the
// decorators. Safe for concurrent use; with concurrent callers the
// schedule stays deterministic per operation-arrival order, so strict
// schedule assertions should drive it sequentially.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	plan   Plan
	ops    int64
	faults int64

	injected *obs.CounterVec
}

// NewInjector builds an injector from the plan, optionally registering
// a daas_faults_injected_total{kind} counter in reg (nil reg means
// no-op).
func NewInjector(plan Plan, reg *obs.Registry) *Injector {
	if len(plan.Kinds) == 0 {
		plan.Kinds = []Kind{KindReset}
	}
	return &Injector{
		rng:      rand.New(rand.NewSource(int64(plan.Seed))),
		plan:     plan,
		injected: reg.CounterVec("daas_faults_injected_total", "synthetic faults injected by kind", "kind"),
	}
}

// roll advances the operation counter and decides whether this
// operation faults; fatal reports the planted FatalAfterOps fault.
func (i *Injector) roll() (kind Kind, fatal, ok bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops++
	if i.plan.FatalAfterOps > 0 && i.ops == i.plan.FatalAfterOps {
		i.faults++
		i.injected.With("fatal").Inc()
		return 0, true, true
	}
	if i.plan.Rate <= 0 {
		return 0, false, false
	}
	if i.plan.MaxFaults > 0 && i.faults >= i.plan.MaxFaults {
		return 0, false, false
	}
	// Always consume exactly one float per operation, so the schedule
	// depends only on the op index, not on earlier outcomes.
	v := i.rng.Float64()
	if v >= i.plan.Rate {
		return 0, false, false
	}
	kind = i.plan.Kinds[int(i.rng.Int31n(int32(len(i.plan.Kinds))))]
	i.faults++
	i.injected.With(kind.String()).Inc()
	return kind, false, true
}

// Ops reports how many operations the injector has seen.
func (i *Injector) Ops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Faults reports how many faults have been injected.
func (i *Injector) Faults() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.faults
}

// sourceError turns a rolled fault into an error for a non-HTTP path:
// transient faults are marked retryable so the retry layer absorbs
// them; the planted fatal fault is left unmarked (fatal by default
// classification) so it aborts the run.
func sourceError(kind Kind, fatal bool, op string) error {
	if fatal {
		return fmt.Errorf("faults: %s: fatal: %w", op, ErrInjected)
	}
	return retry.Transient(fmt.Errorf("faults: %s: %s: %w", op, kind, ErrInjected))
}
