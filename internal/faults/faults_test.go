package faults_test

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/faults"
	"repro/internal/retry"
)

// rollSchedule drives one injector through n source ops and records
// which ops faulted.
func rollSchedule(inj *faults.Source, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		_, err := inj.IsContract(ethtypes.Address{})
		out[i] = err != nil
	}
	return out
}

// nullSource satisfies core.ChainSource with empty answers.
type nullSource struct{}

func (nullSource) TransactionsOf(ethtypes.Address) ([]ethtypes.Hash, error) { return nil, nil }
func (nullSource) Transaction(ethtypes.Hash) (*chain.Transaction, error) {
	return &chain.Transaction{}, nil
}
func (nullSource) Receipt(ethtypes.Hash) (*chain.Receipt, error) { return &chain.Receipt{}, nil }
func (nullSource) IsContract(ethtypes.Address) (bool, error)     { return false, nil }

func TestScheduleIsDeterministicPerSeed(t *testing.T) {
	plan := faults.Plan{Seed: 42, Rate: 0.3}
	a := rollSchedule(faults.WrapSource(nullSource{}, faults.NewInjector(plan, nil)), 200)
	b := rollSchedule(faults.WrapSource(nullSource{}, faults.NewInjector(plan, nil)), 200)
	faulted := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
		if a[i] {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(a) {
		t.Fatalf("degenerate schedule: %d/%d ops faulted", faulted, len(a))
	}
	c := rollSchedule(faults.WrapSource(nullSource{}, faults.NewInjector(faults.Plan{Seed: 43, Rate: 0.3}, nil)), 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestMaxFaultsDriesUp(t *testing.T) {
	inj := faults.NewInjector(faults.Plan{Seed: 7, Rate: 1, MaxFaults: 3}, nil)
	src := faults.WrapSource(nullSource{}, inj)
	sched := rollSchedule(src, 10)
	for i, f := range sched {
		if want := i < 3; f != want {
			t.Errorf("op %d faulted=%v, want %v", i, f, want)
		}
	}
	if inj.Faults() != 3 {
		t.Errorf("Faults() = %d, want 3", inj.Faults())
	}
}

func TestInjectedFaultsClassifyTransient(t *testing.T) {
	inj := faults.NewInjector(faults.Plan{Seed: 1, Rate: 1, MaxFaults: 1}, nil)
	_, err := faults.WrapSource(nullSource{}, inj).Transaction(ethtypes.Hash{})
	if err == nil {
		t.Fatal("rate-1 injector did not fault")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Errorf("injected error does not unwrap to ErrInjected: %v", err)
	}
	if retry.Classify(err) != retry.ClassTransient {
		t.Errorf("injected fault classified %v, want transient", retry.Classify(err))
	}
}

func TestFatalAfterOpsPlantsOneFatalFault(t *testing.T) {
	inj := faults.NewInjector(faults.Plan{Seed: 1, FatalAfterOps: 3}, nil)
	src := faults.WrapSource(nullSource{}, inj)
	for i := 1; i <= 5; i++ {
		_, err := src.IsContract(ethtypes.Address{})
		if i == 3 {
			if err == nil {
				t.Fatal("op 3 did not fault")
			}
			if retry.Classify(err) != retry.ClassFatal {
				t.Errorf("planted fault classified %v, want fatal", retry.Classify(err))
			}
			continue
		}
		if err != nil {
			t.Errorf("op %d unexpectedly faulted: %v", i, err)
		}
	}
}

func TestRetryPolicyAbsorbsInjectedFaults(t *testing.T) {
	inj := faults.NewInjector(faults.Plan{Seed: 5, Rate: 1, MaxFaults: 2}, nil)
	src := retry.WrapSource(faults.WrapSource(nullSource{}, inj), &retry.Policy{
		MaxAttempts: 4,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	if _, err := src.Transaction(ethtypes.Hash{}); err != nil {
		t.Fatalf("retry did not absorb 2 transient faults: %v", err)
	}
	if inj.Ops() != 3 {
		t.Errorf("ops = %d, want 3 (2 faulted + 1 success)", inj.Ops())
	}
}

func TestRoundTripperTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()
	client := &http.Client{Transport: &faults.RoundTripper{
		Inj: faults.NewInjector(faults.Plan{Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []faults.Kind{faults.KindTimeout}}, nil),
	}}
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("injected timeout did not error")
	}
	var netErr net.Error
	if !errors.As(err, &netErr) || !netErr.Timeout() {
		t.Errorf("injected timeout is not a net.Error timeout: %v", err)
	}
	if retry.Classify(err) != retry.ClassTransient {
		t.Errorf("timeout classified %v, want transient", retry.Classify(err))
	}
	// Faults dried up: the next exchange is clean.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-fault request failed: %v", err)
	}
	resp.Body.Close()
}

func TestRoundTripperStatusFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()
	for kind, wantStatus := range map[faults.Kind]int{
		faults.KindStatus5xx: http.StatusServiceUnavailable,
		faults.KindRateLimit: http.StatusTooManyRequests,
	} {
		client := &http.Client{Transport: &faults.RoundTripper{
			Inj: faults.NewInjector(faults.Plan{Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []faults.Kind{kind}}, nil),
		}}
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%v: status = %d, want %d", kind, resp.StatusCode, wantStatus)
		}
		if c := retry.Classify(&retry.HTTPError{Status: resp.StatusCode}); c != retry.ClassTransient {
			t.Errorf("%v: status %d classified %v, want transient", kind, resp.StatusCode, c)
		}
	}
}

func TestRoundTripperConnReset(t *testing.T) {
	client := &http.Client{Transport: &faults.RoundTripper{
		Inj: faults.NewInjector(faults.Plan{Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []faults.Kind{faults.KindReset}}, nil),
	}}
	_, err := client.Get("http://unreachable.invalid/")
	if err == nil {
		t.Fatal("injected reset did not error")
	}
	if retry.Classify(err) != retry.ClassTransient {
		t.Errorf("reset classified %v, want transient", retry.Classify(err))
	}
}

func TestRoundTripperTruncatesBody(t *testing.T) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(payload)
	}))
	defer srv.Close()
	client := &http.Client{Transport: &faults.RoundTripper{
		Inj: faults.NewInjector(faults.Plan{Seed: 1, Rate: 1, MaxFaults: 1, Kinds: []faults.Kind{faults.KindTruncate}}, nil),
	}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body read err = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(body) >= len(payload) {
		t.Errorf("body not truncated: got %d of %d bytes", len(body), len(payload))
	}
	if retry.Classify(err) != retry.ClassTransient {
		t.Errorf("truncation classified %v, want transient", retry.Classify(err))
	}
}

// Interface conformance: the fault source must forward every optional
// capability.
var (
	_ core.ChainSource   = (*faults.Source)(nil)
	_ core.BatchSource   = (*faults.Source)(nil)
	_ core.CodeSource    = (*faults.Source)(nil)
	_ core.ContextSource = (*faults.Source)(nil)
)
