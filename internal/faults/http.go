package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"syscall"
)

// timeoutError satisfies net.Error with Timeout() == true, matching
// how a real transport deadline surfaces to the classifier.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faults: injected timeout (deadline exceeded)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Unwrap lets errors.Is(err, ErrInjected) see through.
func (timeoutError) Unwrap() error { return ErrInjected }

// RoundTripper decorates an http.RoundTripper with the injector: a
// rolled fault either replaces the exchange entirely (timeout, reset,
// synthetic 5xx/429) or corrupts it (truncated body). Plug it into the
// Transport of the CT client's or crawler's *http.Client.
type RoundTripper struct {
	// Base performs real exchanges (default http.DefaultTransport).
	Base http.RoundTripper
	// Inj supplies the fault schedule.
	Inj *Injector
}

func (rt *RoundTripper) base() http.RoundTripper {
	if rt.Base != nil {
		return rt.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, fatal, ok := rt.Inj.roll()
	if !ok {
		return rt.base().RoundTrip(req)
	}
	if fatal {
		// HTTP clients have no fatal-fault consumer; surface the
		// planted fault as a reset (still ErrInjected-rooted).
		kind = KindReset
	}
	switch kind {
	case KindTimeout:
		return nil, timeoutError{}
	case KindStatus5xx:
		return syntheticResponse(req, http.StatusServiceUnavailable), nil
	case KindRateLimit:
		return syntheticResponse(req, http.StatusTooManyRequests), nil
	case KindTruncate:
		resp, err := rt.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatingBody{rc: resp.Body, remain: truncateAt(resp.ContentLength)}
		return resp, nil
	default: // KindReset
		return nil, fmt.Errorf("faults: %w: %w", syscall.ECONNRESET, ErrInjected)
	}
}

// syntheticResponse fabricates a minimal error response for req.
func syntheticResponse(req *http.Request, status int) *http.Response {
	body := "injected " + strconv.Itoa(status)
	return &http.Response{
		Status:        strconv.Itoa(status) + " " + http.StatusText(status),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateAt picks how many body bytes to let through: half the
// declared length, or a small fixed prefix when the length is unknown.
func truncateAt(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 64
}

// truncatingBody cuts the stream short and reports the truncation the
// way a dropped connection does: io.ErrUnexpectedEOF.
type truncatingBody struct {
	rc     io.ReadCloser
	remain int64
}

func (t *truncatingBody) Read(p []byte) (int, error) {
	if t.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.remain {
		p = p[:t.remain]
	}
	n, err := t.rc.Read(p)
	t.remain -= int64(n)
	if err == io.EOF {
		// The upstream body genuinely ended before the cut: pass EOF.
		return n, err
	}
	if t.remain <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatingBody) Close() error { return t.rc.Close() }
