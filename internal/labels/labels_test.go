package labels

import (
	"testing"

	"repro/internal/ethtypes"
)

var (
	a1 = ethtypes.Addr("0x1111111111111111111111111111111111111111")
	a2 = ethtypes.Addr("0x2222222222222222222222222222222222222222")
	a3 = ethtypes.Addr("0x3333333333333333333333333333333333333333")
)

func TestAddAndQuery(t *testing.T) {
	d := New()
	d.Add(Label{Address: a1, Source: SourceEtherscan, Category: CategoryPhishing, Name: "Fake_Phishing1"})
	d.Add(Label{Address: a1, Source: SourceChainabuse, Category: CategoryPhishing, Name: "reported"})
	d.Add(Label{Address: a2, Source: SourceEtherscan, Category: CategoryExchange, Name: "CEX 1"})

	if !d.Has(a1, SourceEtherscan) || !d.Has(a1, SourceChainabuse) {
		t.Error("Has failed for labeled address")
	}
	if d.Has(a1, SourceScamSniffer) {
		t.Error("Has true for absent source")
	}
	if !d.IsLabeledPhishing(a1) {
		t.Error("IsLabeledPhishing false")
	}
	if d.IsLabeledPhishing(a2) {
		t.Error("exchange labeled as phishing")
	}
	if d.Count() != 2 {
		t.Errorf("Count = %d", d.Count())
	}
	if got := d.Of(a1); len(got) != 2 {
		t.Errorf("Of returned %d labels", len(got))
	}
	if got := d.Of(a3); len(got) != 0 {
		t.Error("Of for unlabeled returned labels")
	}
}

func TestEtherscanName(t *testing.T) {
	d := New()
	d.Add(Label{Address: a1, Source: SourceChainabuse, Category: CategoryPhishing, Name: "nope"})
	d.Add(Label{Address: a1, Source: SourceEtherscan, Category: CategoryPhishing, Name: "Angel Drainer"})
	name, ok := d.EtherscanName(a1)
	if !ok || name != "Angel Drainer" {
		t.Errorf("EtherscanName = %q, %v", name, ok)
	}
	if _, ok := d.EtherscanName(a2); ok {
		t.Error("EtherscanName for unlabeled succeeded")
	}
}

func TestPhishingReportsSortedAndUnion(t *testing.T) {
	d := New()
	d.Add(Label{Address: a2, Source: SourceEtherscan, Category: CategoryPhishing})
	d.Add(Label{Address: a1, Source: SourceEtherscan, Category: CategoryPhishing})
	d.Add(Label{Address: a3, Source: SourceTxPhishScope, Category: CategoryPhishing})
	d.Add(Label{Address: a1, Source: SourceTxPhishScope, Category: CategoryPhishing})

	es := d.PhishingReports(SourceEtherscan)
	if len(es) != 2 || es[0] != a1 || es[1] != a2 {
		t.Errorf("etherscan reports = %v", es)
	}
	all := d.AllPhishing()
	if len(all) != 3 {
		t.Errorf("union = %d addresses", len(all))
	}
	for i := 1; i < len(all); i++ {
		for k := range all[i] {
			if all[i-1][k] != all[i][k] {
				if all[i-1][k] > all[i][k] {
					t.Fatal("AllPhishing not sorted")
				}
				break
			}
		}
	}
}

func TestOfReturnsCopy(t *testing.T) {
	d := New()
	d.Add(Label{Address: a1, Source: SourceEtherscan, Category: CategoryPhishing, Name: "x"})
	got := d.Of(a1)
	got[0].Name = "mutated"
	if d.Of(a1)[0].Name != "x" {
		t.Error("Of exposes internal state")
	}
}
