// Package labels models the public account-label ecosystem the paper's
// seed collection (§5.1 Step 1) draws on: Etherscan address tags,
// Chainabuse incident reports, and two published phishing datasets.
// Coverage is deliberately partial — the measurement pipeline must
// expand far beyond what is labeled, exactly as in the paper.
package labels

import (
	"sort"
	"sync"

	"repro/internal/ethtypes"
)

// Source identifies where a label came from.
type Source string

// The four seed sources used by the paper.
const (
	SourceEtherscan    Source = "etherscan"
	SourceChainabuse   Source = "chainabuse"
	SourceScamSniffer  Source = "scamsniffer-db"
	SourceTxPhishScope Source = "txphishscope"
)

// AllSources lists the seed sources in a stable order.
var AllSources = []Source{SourceEtherscan, SourceChainabuse, SourceScamSniffer, SourceTxPhishScope}

// Category classifies what a label asserts about an account.
type Category string

// Label categories.
const (
	CategoryPhishing Category = "phishing" // flagged as a phishing contract/account
	CategoryExchange Category = "exchange" // benign, e.g. CEX deposit address
	CategoryService  Category = "service"  // benign infrastructure
)

// Label is one public tag on an address.
type Label struct {
	Address  ethtypes.Address
	Source   Source
	Category Category
	// Name is the display tag, e.g. "Fake_Phishing66332" or
	// "Angel Drainer: Profit Contract".
	Name string
}

// Directory is a merged, queryable view over all label sources. The
// zero value is empty and ready to use... but callers should use New to
// get deterministic iteration.
type Directory struct {
	mu     sync.RWMutex
	byAddr map[ethtypes.Address][]Label
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{byAddr: make(map[ethtypes.Address][]Label)}
}

// Add records a label.
func (d *Directory) Add(l Label) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.byAddr[l.Address] = append(d.byAddr[l.Address], l)
}

// Of returns all labels on an address.
func (d *Directory) Of(a ethtypes.Address) []Label {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Label, len(d.byAddr[a]))
	copy(out, d.byAddr[a])
	return out
}

// Has reports whether the address carries any label from source.
func (d *Directory) Has(a ethtypes.Address, s Source) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, l := range d.byAddr[a] {
		if l.Source == s {
			return true
		}
	}
	return false
}

// IsLabeledPhishing reports whether any source tags a as phishing.
func (d *Directory) IsLabeledPhishing(a ethtypes.Address) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, l := range d.byAddr[a] {
		if l.Category == CategoryPhishing {
			return true
		}
	}
	return false
}

// EtherscanName returns the Etherscan display tag of a, if any — the
// clustering step names families from these (§7.1).
func (d *Directory) EtherscanName(a ethtypes.Address) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, l := range d.byAddr[a] {
		if l.Source == SourceEtherscan && l.Name != "" {
			return l.Name, true
		}
	}
	return "", false
}

// PhishingReports returns every distinct address tagged as phishing by
// source, sorted for determinism — the raw material of seed collection.
func (d *Directory) PhishingReports(s Source) []ethtypes.Address {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []ethtypes.Address
	for a, ls := range d.byAddr {
		for _, l := range ls {
			if l.Source == s && l.Category == CategoryPhishing {
				out = append(out, a)
				break
			}
		}
	}
	sortAddrs(out)
	return out
}

// AllPhishing returns the union of phishing reports across sources.
func (d *Directory) AllPhishing() []ethtypes.Address {
	seen := make(map[ethtypes.Address]bool)
	var out []ethtypes.Address
	for _, s := range AllSources {
		for _, a := range d.PhishingReports(s) {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sortAddrs(out)
	return out
}

// Count returns the number of distinct labeled addresses.
func (d *Directory) Count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byAddr)
}

func sortAddrs(addrs []ethtypes.Address) {
	sort.Slice(addrs, func(i, j int) bool {
		for k := range addrs[i] {
			if addrs[i][k] != addrs[j][k] {
				return addrs[i][k] < addrs[j][k]
			}
		}
		return false
	})
}
