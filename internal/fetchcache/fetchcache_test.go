package fetchcache_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/fetchcache"
	"repro/internal/obs"
)

// countingSource fabricates a distinct transaction/receipt per hash
// and counts underlying fetches.
type countingSource struct {
	txCalls    atomic.Int64
	recCalls   atomic.Int64
	batchCalls atomic.Int64
	fail       atomic.Bool
	gate       chan struct{} // when set, Transaction blocks until closed
}

func (s *countingSource) TransactionsOf(ethtypes.Address) ([]ethtypes.Hash, error) { return nil, nil }
func (s *countingSource) IsContract(ethtypes.Address) (bool, error)                { return false, nil }

func (s *countingSource) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	if s.gate != nil {
		<-s.gate
	}
	s.txCalls.Add(1)
	if s.fail.Load() {
		return nil, errors.New("injected failure")
	}
	return &chain.Transaction{Nonce: uint64(h[0])<<8 | uint64(h[1])}, nil
}

func (s *countingSource) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	s.recCalls.Add(1)
	if s.fail.Load() {
		return nil, errors.New("injected failure")
	}
	return &chain.Receipt{TxHash: h, BlockNumber: uint64(h[0])}, nil
}

// batchingSource adds native batching on top of countingSource and
// remembers the size of every batch it served.
type batchingSource struct {
	countingSource
	mu     sync.Mutex
	served [][]ethtypes.Hash
}

func (s *batchingSource) BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error) {
	s.batchCalls.Add(1)
	s.mu.Lock()
	s.served = append(s.served, append([]ethtypes.Hash(nil), hs...))
	s.mu.Unlock()
	out := make([]*chain.Transaction, len(hs))
	for i, h := range hs {
		tx, err := s.countingSource.Transaction(h)
		if err != nil {
			return nil, err
		}
		out[i] = tx
	}
	return out, nil
}

func (s *batchingSource) BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error) {
	s.batchCalls.Add(1)
	out := make([]*chain.Receipt, len(hs))
	for i, h := range hs {
		rec, err := s.countingSource.Receipt(h)
		if err != nil {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}

func hash(b ...byte) ethtypes.Hash {
	var h ethtypes.Hash
	copy(h[:], b)
	return h
}

func counter(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	return reg.Counter(name, "").Value()
}

func TestHitMissAndValueFidelity(t *testing.T) {
	src := &countingSource{}
	reg := obs.NewRegistry()
	c := fetchcache.New(src, 0, reg)

	h := hash(1, 2)
	tx1, err := c.Transaction(h)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := c.Transaction(h)
	if err != nil {
		t.Fatal(err)
	}
	if tx1 != tx2 || tx1.Nonce != 1<<8|2 {
		t.Errorf("cached transaction differs: %p %p", tx1, tx2)
	}
	if got := src.txCalls.Load(); got != 1 {
		t.Errorf("underlying Transaction called %d times, want 1", got)
	}
	if _, err := c.Receipt(h); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Receipt(h); err != nil {
		t.Fatal(err)
	}
	if got := src.recCalls.Load(); got != 1 {
		t.Errorf("underlying Receipt called %d times, want 1", got)
	}
	if hits := counter(t, reg, "daas_cache_hits_total"); hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
	if misses := counter(t, reg, "daas_cache_misses_total"); misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
}

func TestSingleFlight(t *testing.T) {
	src := &countingSource{gate: make(chan struct{})}
	c := fetchcache.New(src, 0, nil)

	const n = 16
	var wg sync.WaitGroup
	results := make([]*chain.Transaction, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx, err := c.Transaction(hash(7))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = tx
		}(i)
	}
	close(src.gate) // release the one fetch all goroutines share
	wg.Wait()
	if got := src.txCalls.Load(); got != 1 {
		t.Errorf("single-flight leaked: %d underlying fetches, want 1", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw a different object", i)
		}
	}
}

func TestEvictionBound(t *testing.T) {
	src := &countingSource{}
	reg := obs.NewRegistry()
	// Capacity 32 over 32 shards = 1 entry per shard: two same-shard
	// transactions (same leading hash byte) must displace each other.
	c := fetchcache.New(src, 32, reg)

	a, b := hash(5, 1), hash(5, 2)
	if _, err := c.Transaction(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transaction(b); err != nil {
		t.Fatal(err)
	}
	if ev := counter(t, reg, "daas_cache_evictions_total"); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// a was the cold entry; re-reading it is a fresh miss.
	if _, err := c.Transaction(a); err != nil {
		t.Fatal(err)
	}
	if got := src.txCalls.Load(); got != 3 {
		t.Errorf("underlying Transaction called %d times, want 3 (evicted entry refetched)", got)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	src := &countingSource{}
	src.fail.Store(true)
	c := fetchcache.New(src, 0, nil)

	if _, err := c.Transaction(hash(9)); err == nil {
		t.Fatal("expected injected failure")
	}
	src.fail.Store(false)
	tx, err := c.Transaction(hash(9))
	if err != nil {
		t.Fatalf("failure was cached: %v", err)
	}
	if tx == nil || src.txCalls.Load() != 2 {
		t.Errorf("retry did not refetch: calls=%d", src.txCalls.Load())
	}
}

func TestBatchFetchesOnlyMisses(t *testing.T) {
	src := &batchingSource{}
	c := fetchcache.New(src, 0, nil)

	warm := []ethtypes.Hash{hash(1), hash(2)}
	if _, err := c.BatchTransactions(warm); err != nil {
		t.Fatal(err)
	}
	all := []ethtypes.Hash{hash(1), hash(2), hash(3), hash(4)}
	out, err := c.BatchTransactions(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d results", len(out))
	}
	for i, h := range all {
		if out[i] == nil || out[i].Nonce != uint64(h[0])<<8 {
			t.Errorf("result %d wrong: %+v", i, out[i])
		}
	}
	src.mu.Lock()
	last := src.served[len(src.served)-1]
	src.mu.Unlock()
	if len(last) != 2 || last[0] != hash(3) || last[1] != hash(4) {
		t.Errorf("second batch fetched %v, want only the two misses", last)
	}
	if got := src.txCalls.Load(); got != 4 {
		t.Errorf("underlying fetches = %d, want 4", got)
	}
}

func TestBatchWithoutNativeBatching(t *testing.T) {
	src := &countingSource{}
	c := fetchcache.New(src, 0, nil)
	hs := []ethtypes.Hash{hash(1), hash(2), hash(1)} // duplicate in one call
	out, err := c.BatchReceipts(hs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != out[2] {
		t.Error("duplicate hash resolved to different objects")
	}
	if got := src.recCalls.Load(); got != 2 {
		t.Errorf("underlying Receipt called %d times, want 2", got)
	}
}

func TestBatchErrorPropagatesAndRetries(t *testing.T) {
	src := &batchingSource{}
	src.fail.Store(true)
	c := fetchcache.New(src, 0, nil)
	if _, err := c.BatchTransactions([]ethtypes.Hash{hash(1), hash(2)}); err == nil {
		t.Fatal("expected batch failure")
	}
	src.fail.Store(false)
	out, err := c.BatchTransactions([]ethtypes.Hash{hash(1), hash(2)})
	if err != nil || len(out) != 2 {
		t.Fatalf("retry after failed batch: %v", err)
	}
}

// TestConcurrentMixedAccess exercises every read path at once under
// the race detector: overlapping singles, batches, and evictions.
func TestConcurrentMixedAccess(t *testing.T) {
	src := &batchingSource{}
	reg := obs.NewRegistry()
	c := fetchcache.New(src, 64, reg) // tiny: constant eviction churn

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h := hash(byte(i%13), byte(g))
				switch i % 3 {
				case 0:
					tx, err := c.Transaction(h)
					if err != nil || tx.Nonce != uint64(h[0])<<8|uint64(h[1]) {
						t.Errorf("tx mismatch: %v %v", tx, err)
						return
					}
				case 1:
					rec, err := c.Receipt(h)
					if err != nil || rec.TxHash != h {
						t.Errorf("receipt mismatch: %v %v", rec, err)
						return
					}
				default:
					hs := []ethtypes.Hash{h, hash(byte(i % 7)), h}
					out, err := c.BatchTransactions(hs)
					if err != nil || len(out) != 3 {
						t.Errorf("batch mismatch: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("cache exceeded capacity: %d entries", c.Len())
	}
	if counter(t, reg, "daas_cache_hits_total") == 0 {
		t.Error("no hits under churn; workload degenerate")
	}
}

// TestPassthroughs covers the uncached surface.
func TestPassthroughs(t *testing.T) {
	world := &countingSource{}
	c := fetchcache.New(world, 0, nil)
	if _, err := c.TransactionsOf(ethtypes.Address{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IsContract(ethtypes.Address{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Code(ethtypes.Address{}); err == nil {
		t.Error("Code on a non-CodeSource should error")
	}
	if c.Unwrap() != core.ChainSource(world) {
		t.Error("Unwrap lost the source")
	}
	// Interface assertions the pipeline relies on.
	var _ core.ChainSource = c
	var _ core.BatchSource = c
	var _ core.CodeSource = c
	_ = fmt.Sprintf("%T", c)
}
