// Package fetchcache decorates a core.ChainSource with a sharded,
// size-bounded transaction+receipt cache with single-flight
// deduplication. The snowball pipeline re-reads the same hashes across
// expansion passes (a contract absorb walks a history the frontier
// scan partially fetched moments earlier), and with parallel scanners
// two workers can race toward the same hash; the cache turns both into
// at most one fetch per object.
//
// Only immutable objects are cached: a confirmed transaction and its
// receipt never change, so entries need no TTL. Account histories
// (TransactionsOf) and code/contract checks grow with the chain and
// pass straight through.
package fetchcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/obs"
)

// nShards fixes the mutex striping; a power of two so the shard pick
// is a mask. 32 stripes keep contention negligible at the pipeline's
// worker counts (≤ dozens) without bloating the struct.
const nShards = 32

// DefaultCapacity bounds the cache when New is given a non-positive
// capacity: 64k entries ≈ 32k tx+receipt pairs, a few hundred MB worst
// case on mainnet-sized receipts and far below it on typical ones.
const DefaultCapacity = 1 << 16

const (
	kindTx byte = iota
	kindReceipt
)

type key struct {
	kind byte
	h    ethtypes.Hash
}

// entry is one cached or in-flight fetch. ready is closed once val/err
// are settled; waiters hold the pointer, so eviction never invalidates
// a read in progress.
type entry struct {
	ready chan struct{}
	val   any // *chain.Transaction or *chain.Receipt
	err   error
	elem  *list.Element // LRU position; nil while in flight
}

type shard struct {
	mu      sync.Mutex
	entries map[key]*entry
	lru     *list.List // of key; front = most recently used
}

// Source wraps a core.ChainSource with the cache. It implements
// core.ChainSource, core.BatchSource, and (by delegation)
// core.CodeSource, so it can stand in for the raw source anywhere in
// the pipeline.
type Source struct {
	src         core.ChainSource
	shards      [nShards]shard
	perShardCap int

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// New builds a cache over src holding at most capacity entries (one
// entry per transaction or receipt; non-positive means
// DefaultCapacity), registering hit/miss/eviction counters in reg
// (nil reg means no-op instruments).
func New(src core.ChainSource, capacity int, reg *obs.Registry) *Source {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + nShards - 1) / nShards
	if per < 1 {
		per = 1
	}
	s := &Source{
		src:         src,
		perShardCap: per,
		hits:        reg.Counter("daas_cache_hits_total", "fetch cache hits (including waits on an in-flight fetch)"),
		misses:      reg.Counter("daas_cache_misses_total", "fetch cache misses (fetches issued to the wrapped source)"),
		evictions:   reg.Counter("daas_cache_evictions_total", "fetch cache entries evicted by the size bound"),
	}
	for i := range s.shards {
		s.shards[i].entries = make(map[key]*entry)
		s.shards[i].lru = list.New()
	}
	return s
}

// Unwrap returns the wrapped source.
func (s *Source) Unwrap() core.ChainSource { return s.src }

// Len reports the number of settled entries currently cached.
func (s *Source) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

func (s *Source) shard(k key) *shard {
	return &s.shards[int(k.h[0]^k.kind)&(nShards-1)]
}

// lookup returns the entry for k, creating an in-flight one when
// absent. owned reports whether the caller created it and must settle
// it (single-flight: exactly one caller owns a given fetch).
func (s *Source) lookup(k key) (e *entry, owned bool) {
	sh := s.shard(k)
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		if e.elem != nil {
			sh.lru.MoveToFront(e.elem)
		}
		sh.mu.Unlock()
		s.hits.Inc()
		return e, false
	}
	e = &entry{ready: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()
	s.misses.Inc()
	return e, true
}

// settle publishes an owned entry's result: failures are dropped from
// the map (waiters still observe the error; later callers retry),
// successes enter the LRU, evicting from the cold end past capacity.
func (s *Source) settle(k key, e *entry, val any, err error) {
	e.val, e.err = val, err
	sh := s.shard(k)
	sh.mu.Lock()
	if err != nil {
		if sh.entries[k] == e {
			delete(sh.entries, k)
		}
	} else if sh.entries[k] == e {
		e.elem = sh.lru.PushFront(k)
		for sh.lru.Len() > s.perShardCap {
			cold := sh.lru.Back()
			ck := cold.Value.(key)
			sh.lru.Remove(cold)
			delete(sh.entries, ck)
			s.evictions.Inc()
		}
	}
	sh.mu.Unlock()
	close(e.ready)
}

// get is the single-fetch read path.
func (s *Source) get(k key, fetch func() (any, error)) (any, error) {
	e, owned := s.lookup(k)
	if owned {
		val, err := fetch()
		s.settle(k, e, val, err)
		return val, err
	}
	<-e.ready
	return e.val, e.err
}

// getCtx is the context-aware single-fetch read path: the owner's
// fetch carries the caller's context (a cancelled fetch settles as an
// error, which is never cached — see settle), and a waiter abandons
// the in-flight entry when its own context is cancelled.
func (s *Source) getCtx(ctx context.Context, k key, fetch func() (any, error)) (any, error) {
	e, owned := s.lookup(k)
	if owned {
		val, err := fetch()
		s.settle(k, e, val, err)
		return val, err
	}
	select {
	case <-e.ready:
		return e.val, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TransactionContext implements core.ContextSource: a cache miss
// forwards the context to the wrapped source so cancellation aborts the
// in-flight fetch instead of waiting it out.
func (s *Source) TransactionContext(ctx context.Context, h ethtypes.Hash) (*chain.Transaction, error) {
	v, err := s.getCtx(ctx, key{kindTx, h}, func() (any, error) { return core.SourceTransaction(ctx, s.src, h) })
	if err != nil {
		return nil, err
	}
	return v.(*chain.Transaction), nil
}

// ReceiptContext implements core.ContextSource; see TransactionContext.
func (s *Source) ReceiptContext(ctx context.Context, h ethtypes.Hash) (*chain.Receipt, error) {
	v, err := s.getCtx(ctx, key{kindReceipt, h}, func() (any, error) { return core.SourceReceipt(ctx, s.src, h) })
	if err != nil {
		return nil, err
	}
	return v.(*chain.Receipt), nil
}

// Transaction implements core.ChainSource.
func (s *Source) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	v, err := s.get(key{kindTx, h}, func() (any, error) { return s.src.Transaction(h) })
	if err != nil {
		return nil, err
	}
	return v.(*chain.Transaction), nil
}

// Receipt implements core.ChainSource.
func (s *Source) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	v, err := s.get(key{kindReceipt, h}, func() (any, error) { return s.src.Receipt(h) })
	if err != nil {
		return nil, err
	}
	return v.(*chain.Receipt), nil
}

// TransactionsOf implements core.ChainSource; histories are mutable
// and are never cached.
func (s *Source) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	return s.src.TransactionsOf(addr)
}

// IsContract implements core.ChainSource, uncached.
func (s *Source) IsContract(addr ethtypes.Address) (bool, error) {
	return s.src.IsContract(addr)
}

// Code implements core.CodeSource when the wrapped source does; the
// static pre-filter treats the error as "keep the candidate".
func (s *Source) Code(addr ethtypes.Address) ([]byte, error) {
	cs, ok := s.src.(core.CodeSource)
	if !ok {
		return nil, fmt.Errorf("fetchcache: source %T does not serve bytecode", s.src)
	}
	return cs.Code(addr)
}

// BatchTransactions implements core.BatchSource: cached hashes are
// served locally, each missing hash is claimed single-flight, and only
// the claimed remainder goes to the wrapped source — batched when it
// can batch, per item otherwise.
func (s *Source) BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error) {
	vals, err := s.getBatch(kindTx, hs,
		func(miss []ethtypes.Hash) ([]any, error) {
			if bs, ok := s.src.(core.BatchSource); ok {
				txs, err := bs.BatchTransactions(miss)
				return anySlice(txs), err
			}
			out := make([]any, len(miss))
			for i, h := range miss {
				tx, err := s.src.Transaction(h)
				if err != nil {
					return nil, err
				}
				out[i] = tx
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]*chain.Transaction, len(vals))
	for i, v := range vals {
		out[i] = v.(*chain.Transaction)
	}
	return out, nil
}

// BatchReceipts implements core.BatchSource; see BatchTransactions.
func (s *Source) BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error) {
	vals, err := s.getBatch(kindReceipt, hs,
		func(miss []ethtypes.Hash) ([]any, error) {
			if bs, ok := s.src.(core.BatchSource); ok {
				recs, err := bs.BatchReceipts(miss)
				return anySlice(recs), err
			}
			out := make([]any, len(miss))
			for i, h := range miss {
				rec, err := s.src.Receipt(h)
				if err != nil {
					return nil, err
				}
				out[i] = rec
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]*chain.Receipt, len(vals))
	for i, v := range vals {
		out[i] = v.(*chain.Receipt)
	}
	return out, nil
}

// getBatch resolves hs[i] → result, claiming misses single-flight and
// fetching only the claimed ones through fetchMissing. Waiting on
// entries owned by other goroutines happens only after our own are
// settled, so two overlapping batches never deadlock on each other.
func (s *Source) getBatch(kind byte, hs []ethtypes.Hash, fetchMissing func([]ethtypes.Hash) ([]any, error)) ([]any, error) {
	out := make([]any, len(hs))
	waits := make(map[int]*entry)
	var (
		ownedIdx []int
		owned    []*entry
		missing  []ethtypes.Hash
	)
	for i, h := range hs {
		e, own := s.lookup(key{kind, h})
		if own {
			ownedIdx = append(ownedIdx, i)
			owned = append(owned, e)
			missing = append(missing, h)
			continue
		}
		waits[i] = e
	}
	var firstErr error
	if len(missing) > 0 {
		vals, err := fetchMissing(missing)
		if err != nil || len(vals) != len(missing) {
			if err == nil {
				err = fmt.Errorf("fetchcache: source returned %d results for %d hashes", len(vals), len(missing))
			}
			for j, e := range owned {
				s.settle(key{kind, missing[j]}, e, nil, err)
			}
			return nil, err
		}
		for j, e := range owned {
			s.settle(key{kind, missing[j]}, e, vals[j], nil)
			out[ownedIdx[j]] = vals[j]
		}
	}
	for i, e := range waits {
		<-e.ready
		if e.err != nil && firstErr == nil {
			firstErr = e.err
		}
		out[i] = e.val
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func anySlice[T any](in []T) []any {
	out := make([]any, len(in))
	for i, v := range in {
		out[i] = v
	}
	return out
}
