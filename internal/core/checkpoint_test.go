package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
)

// buildWithCheckpoint runs one checkpointed build over src and returns
// the exported dataset (nil on build failure, with the error).
func buildWithCheckpoint(t *testing.T, src core.ChainSource, path string, resume bool, reg *obs.Registry) ([]byte, error) {
	t.Helper()
	p := &core.Pipeline{
		Source:         src,
		Labels:         sharedWorld.Labels,
		CheckpointPath: path,
		Resume:         resume,
		Metrics:        reg,
	}
	ds, err := p.Build()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), nil
}

// TestCheckpointResumeByteIdentical is the acceptance criterion: a
// build killed mid-run by a planted fatal fault resumes from its
// checkpoint to a byte-identical exported dataset. The kill is planted
// at several depths — before any checkpoint exists, right after the
// seed checkpoint, and deep into expansion.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	w := sharedWorld
	baseline := exportJSON(t, w, 1, 0)

	// Count the total source ops of a clean build so the kill points
	// cover the whole run, not just its head.
	counter := faults.NewInjector(faults.Plan{Seed: 1}, nil)
	if _, err := (&core.Pipeline{
		Source: faults.WrapSource(core.LocalSource{Chain: w.Chain}, counter),
		Labels: w.Labels,
	}).Build(); err != nil {
		t.Fatalf("op-counting build failed: %v", err)
	}
	total := counter.Ops()
	if total < 8 {
		t.Fatalf("test world too small: %d source ops", total)
	}

	// Kill points span the run: mid-seed (resume degrades to a fresh
	// build) through the final op (resume picks up a deep checkpoint).
	kills := []int64{total / 8, total / 4, total / 2, total - 1}
	sawRealResume := false
	for _, kill := range kills {
		path := filepath.Join(t.TempDir(), "build.ckpt")

		inj := faults.NewInjector(faults.Plan{Seed: 1, FatalAfterOps: kill}, nil)
		faulted := faults.WrapSource(core.LocalSource{Chain: w.Chain}, inj)
		if _, err := buildWithCheckpoint(t, faulted, path, false, nil); err == nil {
			t.Fatalf("kill at op %d: build survived its fatal fault", kill)
		}
		_, statErr := os.Stat(path)
		hadCheckpoint := statErr == nil

		reg := obs.NewRegistry()
		got, err := buildWithCheckpoint(t, core.LocalSource{Chain: w.Chain}, path, true, reg)
		if err != nil {
			t.Fatalf("kill at op %d: resume failed: %v", kill, err)
		}
		if !bytes.Equal(got, baseline) {
			t.Errorf("kill at op %d: resumed export differs from fault-free build (%d vs %d bytes)",
				kill, len(got), len(baseline))
		}
		resumes := reg.Counter("daas_checkpoint_resumes_total", "").Value()
		if want := map[bool]uint64{true: 1, false: 0}[hadCheckpoint]; resumes != want {
			t.Errorf("kill at op %d: resumes_total = %d, want %d (checkpoint on disk: %v)",
				kill, resumes, want, hadCheckpoint)
		}
		sawRealResume = sawRealResume || hadCheckpoint
	}
	if !sawRealResume {
		t.Error("no kill point left a checkpoint behind; the resume path never ran")
	}
}

// TestResumeWithoutCheckpointRunsFresh: -resume with no checkpoint on
// disk degrades to a fresh build and writes checkpoints as it goes.
func TestResumeWithoutCheckpointRunsFresh(t *testing.T) {
	w := sharedWorld
	baseline := exportJSON(t, w, 1, 0)
	path := filepath.Join(t.TempDir(), "none.ckpt")

	reg := obs.NewRegistry()
	got, err := buildWithCheckpoint(t, core.LocalSource{Chain: w.Chain}, path, true, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, baseline) {
		t.Error("fresh resume-mode build differs from baseline")
	}
	if n := reg.Counter("daas_checkpoint_resumes_total", "").Value(); n != 0 {
		t.Errorf("resumes_total = %d, want 0 (no checkpoint existed)", n)
	}
	if n := reg.Counter("daas_checkpoint_writes_total", "").Value(); n == 0 {
		t.Error("no checkpoints written during a checkpointed build")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("checkpoint file missing after build: %v", err)
	}
}

// TestResumeFromCompletedBuildIsIdentical: resuming a checkpoint whose
// build already finished re-runs only the final (empty-frontier or
// no-change) check and exports the same bytes.
func TestResumeFromCompletedBuildIsIdentical(t *testing.T) {
	w := sharedWorld
	path := filepath.Join(t.TempDir(), "done.ckpt")
	first, err := buildWithCheckpoint(t, core.LocalSource{Chain: w.Chain}, path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := buildWithCheckpoint(t, core.LocalSource{Chain: w.Chain}, path, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Error("re-resumed export differs from completed build")
	}
}

// TestCheckpointVersionMismatchRefused: a checkpoint from a different
// format version fails the resume loudly instead of building on it.
func TestCheckpointVersionMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte(`{"version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := buildWithCheckpoint(t, core.LocalSource{Chain: sharedWorld.Chain}, path, true, nil)
	if err == nil {
		t.Fatal("version-999 checkpoint accepted")
	}
}

// TestCheckpointedBuildExportUnchanged: turning checkpointing on must
// not perturb the dataset itself.
func TestCheckpointedBuildExportUnchanged(t *testing.T) {
	w := sharedWorld
	baseline := exportJSON(t, w, 1, 0)
	got, err := buildWithCheckpoint(t, core.LocalSource{Chain: w.Chain},
		filepath.Join(t.TempDir(), "plain.ckpt"), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, baseline) {
		t.Error("checkpointed build export differs from plain build")
	}
}
