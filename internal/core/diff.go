package core

import (
	"fmt"
	"io"

	"repro/internal/ethtypes"
)

// DatasetDiff describes how the DaaS ecosystem moved between two
// dataset builds. Operators continuously deploy new profit-sharing
// contracts (§8.1), so periodic re-runs of the pipeline plus a diff
// are the operational monitoring loop.
type DatasetDiff struct {
	NewContracts  []ethtypes.Address
	GoneContracts []ethtypes.Address // present before, absent now (re-org of seed labels, not expected in practice)
	NewOperators  []ethtypes.Address
	NewAffiliates []ethtypes.Address
	// NewSplitTxs counts profit-sharing transactions present only in
	// the newer dataset.
	NewSplitTxs int
	// ContractActivity lists contracts whose transaction count grew,
	// with the delta.
	ContractActivity []ContractDelta
}

// ContractDelta is one contract's activity change.
type ContractDelta struct {
	Address ethtypes.Address
	Before  int
	After   int
}

// Empty reports whether nothing changed.
func (d *DatasetDiff) Empty() bool {
	return len(d.NewContracts) == 0 && len(d.GoneContracts) == 0 &&
		len(d.NewOperators) == 0 && len(d.NewAffiliates) == 0 &&
		d.NewSplitTxs == 0 && len(d.ContractActivity) == 0
}

// Diff compares an older dataset build against a newer one.
func Diff(older, newer *Dataset) *DatasetDiff {
	d := &DatasetDiff{}
	for _, rec := range newer.SortedContracts() {
		old, ok := older.Contracts[rec.Address]
		if !ok {
			d.NewContracts = append(d.NewContracts, rec.Address)
			continue
		}
		if rec.TxCount > old.TxCount {
			d.ContractActivity = append(d.ContractActivity, ContractDelta{
				Address: rec.Address, Before: old.TxCount, After: rec.TxCount,
			})
		}
	}
	for _, rec := range older.SortedContracts() {
		if _, ok := newer.Contracts[rec.Address]; !ok {
			d.GoneContracts = append(d.GoneContracts, rec.Address)
		}
	}
	for _, rec := range newer.SortedOperators() {
		if _, ok := older.Operators[rec.Address]; !ok {
			d.NewOperators = append(d.NewOperators, rec.Address)
		}
	}
	for _, rec := range newer.SortedAffiliates() {
		if _, ok := older.Affiliates[rec.Address]; !ok {
			d.NewAffiliates = append(d.NewAffiliates, rec.Address)
		}
	}
	for h := range newer.Splits {
		if _, ok := older.Splits[h]; !ok {
			d.NewSplitTxs++
		}
	}
	return d
}

// Render writes a human-readable diff summary.
func (d *DatasetDiff) Render(w io.Writer) {
	if d.Empty() {
		fmt.Fprintln(w, "no changes between dataset builds")
		return
	}
	fmt.Fprintf(w, "dataset changes: +%d contracts, +%d operators, +%d affiliates, +%d profit-sharing txs\n",
		len(d.NewContracts), len(d.NewOperators), len(d.NewAffiliates), d.NewSplitTxs)
	for i, a := range d.NewContracts {
		if i >= 10 {
			fmt.Fprintf(w, "  … and %d more new contracts\n", len(d.NewContracts)-10)
			break
		}
		fmt.Fprintf(w, "  new contract %s\n", a.Hex())
	}
	for i, cd := range d.ContractActivity {
		if i >= 10 {
			fmt.Fprintf(w, "  … and %d more active contracts\n", len(d.ContractActivity)-10)
			break
		}
		fmt.Fprintf(w, "  contract %s: %d -> %d txs\n", cd.Address.Short(), cd.Before, cd.After)
	}
	if len(d.GoneContracts) > 0 {
		fmt.Fprintf(w, "  %d contracts from the older build are absent (check seed sources)\n", len(d.GoneContracts))
	}
}
