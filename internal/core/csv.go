package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/chain"
)

// WriteCSV emits the dataset as three CSV sections concatenated into
// one stream (accounts, contracts, splits), the flat release format
// analysts import into spreadsheets and SQL. Sections are separated by
// a blank line and each carries its own header.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)

	// Section 1: accounts.
	if err := cw.Write([]string{"role", "address", "found_via", "first_seen", "last_seen"}); err != nil {
		return err
	}
	for _, rec := range d.SortedOperators() {
		if err := cw.Write([]string{"operator", rec.Address.Hex(), string(rec.Found),
			rec.FirstSeen.Format(time.RFC3339), rec.LastSeen.Format(time.RFC3339)}); err != nil {
			return err
		}
	}
	for _, rec := range d.SortedAffiliates() {
		if err := cw.Write([]string{"affiliate", rec.Address.Hex(), string(rec.Found),
			rec.FirstSeen.Format(time.RFC3339), rec.LastSeen.Format(time.RFC3339)}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	// Section 2: contracts.
	cw = csv.NewWriter(w)
	if err := cw.Write([]string{"contract", "found_via", "sources", "first_seen", "last_seen", "tx_count", "fingerprints", "static_flagged"}); err != nil {
		return err
	}
	for _, rec := range d.SortedContracts() {
		sources := ""
		for i, s := range rec.Sources {
			if i > 0 {
				sources += "|"
			}
			sources += s
		}
		prints := ""
		for i, f := range rec.Fingerprints {
			if i > 0 {
				prints += "|"
			}
			prints += f
		}
		if err := cw.Write([]string{rec.Address.Hex(), string(rec.Found), sources,
			rec.FirstSeen.Format(time.RFC3339), rec.LastSeen.Format(time.RFC3339),
			strconv.Itoa(rec.TxCount), prints, strconv.FormatBool(rec.StaticFlagged)}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	// Section 3: profit-sharing transactions, one row per split.
	cw = csv.NewWriter(w)
	if err := cw.Write([]string{"tx", "time", "contract", "payer", "operator", "affiliate",
		"asset", "token", "operator_amount", "affiliate_amount", "operator_ratio_pm"}); err != nil {
		return err
	}
	for _, h := range d.SortedSplitTxs() {
		for _, sp := range d.Splits[h] {
			token := ""
			if sp.Asset.Kind != chain.AssetETH {
				token = sp.Asset.Token.Hex()
			}
			if err := cw.Write([]string{
				h.Hex(), sp.Time.Format(time.RFC3339), sp.Contract.Hex(), sp.Payer.Hex(),
				sp.Operator.Hex(), sp.Affiliate.Hex(), sp.Asset.Kind.String(), token,
				sp.OperatorAmount.String(), sp.AffiliateAmount.String(),
				strconv.FormatInt(sp.RatioPM, 10),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
