package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ethtypes"
	"repro/internal/obs"

	"repro/internal/chain"
)

// InstrumentedSource decorates a ChainSource with per-method request
// counters and latency histograms, so both the in-process simulator
// and a remote JSON-RPC endpoint report through the same metric names:
//
//	daas_chain_requests_total{method=…}
//	daas_chain_request_errors_total{method=…}
//	daas_chain_request_duration_seconds{method=…}
type InstrumentedSource struct {
	src      ChainSource
	requests *obs.CounterVec
	errors   *obs.CounterVec
	latency  *obs.HistogramVec
}

// NewInstrumentedSource wraps src, registering its instruments in r.
func NewInstrumentedSource(src ChainSource, r *obs.Registry) *InstrumentedSource {
	return &InstrumentedSource{
		src:      src,
		requests: r.CounterVec("daas_chain_requests_total", "chain source requests by method", "method"),
		errors:   r.CounterVec("daas_chain_request_errors_total", "failed chain source requests by method", "method"),
		latency:  r.HistogramVec("daas_chain_request_duration_seconds", "chain source request latency by method", obs.DefDurationBuckets, "method"),
	}
}

// Unwrap returns the underlying source.
func (s *InstrumentedSource) Unwrap() ChainSource { return s.src }

// observe records one call's outcome.
func (s *InstrumentedSource) observe(method string, start time.Time, err error) {
	s.requests.With(method).Inc()
	s.latency.With(method).ObserveDuration(obs.Since(start))
	if err != nil {
		s.errors.With(method).Inc()
	}
}

// TransactionsOf implements ChainSource.
func (s *InstrumentedSource) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	start := obs.Now()
	out, err := s.src.TransactionsOf(addr)
	s.observe("TransactionsOf", start, err)
	return out, err
}

// Transaction implements ChainSource.
func (s *InstrumentedSource) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	start := obs.Now()
	out, err := s.src.Transaction(h)
	s.observe("Transaction", start, err)
	return out, err
}

// Receipt implements ChainSource.
func (s *InstrumentedSource) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	start := obs.Now()
	out, err := s.src.Receipt(h)
	s.observe("Receipt", start, err)
	return out, err
}

// TransactionContext implements ContextSource, forwarding the context
// when the wrapped source accepts one. Observed under the same method
// name as Transaction: the instrument measures the wire call, not how
// the caller delivered its cancellation.
func (s *InstrumentedSource) TransactionContext(ctx context.Context, h ethtypes.Hash) (*chain.Transaction, error) {
	start := obs.Now()
	out, err := SourceTransaction(ctx, s.src, h)
	s.observe("Transaction", start, err)
	return out, err
}

// ReceiptContext implements ContextSource; see TransactionContext.
func (s *InstrumentedSource) ReceiptContext(ctx context.Context, h ethtypes.Hash) (*chain.Receipt, error) {
	start := obs.Now()
	out, err := SourceReceipt(ctx, s.src, h)
	s.observe("Receipt", start, err)
	return out, err
}

// IsContract implements ChainSource.
func (s *InstrumentedSource) IsContract(addr ethtypes.Address) (bool, error) {
	start := obs.Now()
	out, err := s.src.IsContract(addr)
	s.observe("IsContract", start, err)
	return out, err
}

// BatchTransactions implements BatchSource. When the wrapped source
// batches natively the call is forwarded whole and observed as one
// "BatchTransactions" request; otherwise it degrades to per-item
// fetches through the instrumented Transaction method, so the
// per-method counters keep reporting the calls that actually reach
// the source. Either way wrapping never hides a source's batching
// ability from the pipeline (which detects BatchSource by assertion).
func (s *InstrumentedSource) BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error) {
	if bs, ok := s.src.(BatchSource); ok {
		start := obs.Now()
		out, err := bs.BatchTransactions(hs)
		s.observe("BatchTransactions", start, err)
		return out, err
	}
	out := make([]*chain.Transaction, len(hs))
	for i, h := range hs {
		tx, err := s.Transaction(h)
		if err != nil {
			return nil, err
		}
		out[i] = tx
	}
	return out, nil
}

// BatchReceipts implements BatchSource; see BatchTransactions.
func (s *InstrumentedSource) BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error) {
	if bs, ok := s.src.(BatchSource); ok {
		start := obs.Now()
		out, err := bs.BatchReceipts(hs)
		s.observe("BatchReceipts", start, err)
		return out, err
	}
	out := make([]*chain.Receipt, len(hs))
	for i, h := range hs {
		rec, err := s.Receipt(h)
		if err != nil {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}

// Code implements CodeSource when the underlying source does; the
// static pre-filter treats the error as "keep the candidate".
func (s *InstrumentedSource) Code(addr ethtypes.Address) ([]byte, error) {
	cs, ok := s.src.(CodeSource)
	if !ok {
		return nil, fmt.Errorf("core: source %T does not serve bytecode", s.src)
	}
	start := obs.Now()
	out, err := cs.Code(addr)
	s.observe("Code", start, err)
	return out, err
}
