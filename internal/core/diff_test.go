package core_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ethtypes"
)

func mkDataset(contracts, operators, affiliates []string, txCounts map[string]int) *core.Dataset {
	ds := core.NewDataset()
	t0 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, c := range contracts {
		a := ethtypes.Addr(c)
		ds.Contracts[a] = &core.ContractRecord{Address: a, FirstSeen: t0, LastSeen: t0, TxCount: txCounts[c]}
	}
	for _, o := range operators {
		a := ethtypes.Addr(o)
		ds.Operators[a] = &core.AccountRecord{Address: a, FirstSeen: t0, LastSeen: t0}
	}
	for _, f := range affiliates {
		a := ethtypes.Addr(f)
		ds.Affiliates[a] = &core.AccountRecord{Address: a, FirstSeen: t0, LastSeen: t0}
	}
	return ds
}

const (
	c1 = "0xc100000000000000000000000000000000000001"
	c2 = "0xc200000000000000000000000000000000000002"
	o1 = "0x0e00000000000000000000000000000000000001"
	o2 = "0x0e00000000000000000000000000000000000002"
	a1 = "0xaf00000000000000000000000000000000000001"
)

func TestDiffDetectsGrowth(t *testing.T) {
	older := mkDataset([]string{c1}, []string{o1}, nil, map[string]int{c1: 5})
	newer := mkDataset([]string{c1, c2}, []string{o1, o2}, []string{a1}, map[string]int{c1: 9, c2: 3})
	newer.Splits[ethtypes.Hash{1}] = []core.Split{{}}

	d := core.Diff(older, newer)
	if d.Empty() {
		t.Fatal("growth diff reported empty")
	}
	if len(d.NewContracts) != 1 || d.NewContracts[0] != ethtypes.Addr(c2) {
		t.Errorf("new contracts = %v", d.NewContracts)
	}
	if len(d.NewOperators) != 1 || len(d.NewAffiliates) != 1 {
		t.Errorf("new accounts = %v / %v", d.NewOperators, d.NewAffiliates)
	}
	if d.NewSplitTxs != 1 {
		t.Errorf("new split txs = %d", d.NewSplitTxs)
	}
	if len(d.ContractActivity) != 1 || d.ContractActivity[0].After != 9 {
		t.Errorf("activity = %+v", d.ContractActivity)
	}
	var sb strings.Builder
	d.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "+1 contracts") || !strings.Contains(out, "5 -> 9") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := mkDataset([]string{c1}, []string{o1}, nil, map[string]int{c1: 5})
	b := mkDataset([]string{c1}, []string{o1}, nil, map[string]int{c1: 5})
	d := core.Diff(a, b)
	if !d.Empty() {
		t.Errorf("identical datasets diff: %+v", d)
	}
	var sb strings.Builder
	d.Render(&sb)
	if !strings.Contains(sb.String(), "no changes") {
		t.Error("empty diff render missing message")
	}
}

func TestDiffGoneContracts(t *testing.T) {
	older := mkDataset([]string{c1, c2}, nil, nil, map[string]int{})
	newer := mkDataset([]string{c1}, nil, nil, map[string]int{})
	d := core.Diff(older, newer)
	if len(d.GoneContracts) != 1 {
		t.Errorf("gone contracts = %v", d.GoneContracts)
	}
}

// TestDiffAcrossWorldGrowth diffs two builds of the same world at
// different points in time — the monitoring workflow.
func TestDiffAcrossWorldGrowth(t *testing.T) {
	// The shared fixture dataset versus a seed-only dataset emulates
	// "before expansion" vs "after expansion".
	full := buildDataset(t, sharedWorld)
	seedOnly := core.NewDataset()
	for a, rec := range full.Contracts {
		if rec.Found == core.DiscoverySeed {
			seedOnly.Contracts[a] = rec
		}
	}
	d := core.Diff(seedOnly, full)
	if len(d.NewContracts) != full.Stats().Contracts-len(seedOnly.Contracts) {
		t.Errorf("new contracts = %d", len(d.NewContracts))
	}
	if d.NewSplitTxs != len(full.Splits) {
		t.Errorf("new split txs = %d, want %d", d.NewSplitTxs, len(full.Splits))
	}
}
