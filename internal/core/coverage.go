package core

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/ethtypes"
)

// ErrQuarantined marks a record the integrity layer refused to admit
// after exhausting its re-fetch budget. The pipeline treats it as a
// graceful-degradation signal, not a failure: the hash is skipped, the
// account being scanned is marked degraded, and the gap is accounted
// for in the completeness manifest instead of aborting the build.
var ErrQuarantined = errors.New("core: record quarantined by the integrity layer")

// QuarantineState is the checkpointable face of a quarantine store.
// core cannot import internal/integrity (integrity wraps ChainSource),
// so the pipeline persists the store through this interface: Snapshot
// must be deterministic for identical contents, and Restore(Snapshot())
// must reproduce the store byte-identically.
type QuarantineState interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// Coverage is the pipeline's per-build completeness ledger: how many
// transaction records were fetched, how many the integrity layer
// refused permanently, and which accounts were therefore only
// partially scanned. A degraded account is NOT treated as fixpointed —
// its gap is recorded here so the manifest can state exactly what
// fraction of the history the dataset rests on.
type Coverage struct {
	mu          sync.Mutex
	txFetched   int64
	quarantined int64
	scanned     int64
	degraded    map[ethtypes.Address]int64
}

// NewCoverage returns an empty ledger.
func NewCoverage() *Coverage {
	return &Coverage{degraded: make(map[ethtypes.Address]int64)}
}

// NoteFetched records n admitted transaction+receipt pairs.
func (c *Coverage) NoteFetched(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.txFetched += n
	c.mu.Unlock()
}

// NoteScanned records n account histories walked to completion or
// degradation (the denominator for the manifest's coverage fraction).
func (c *Coverage) NoteScanned(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.scanned += n
	c.mu.Unlock()
}

// NoteQuarantined records n permanently quarantined records hit while
// scanning acct, marking the account degraded.
func (c *Coverage) NoteQuarantined(acct ethtypes.Address, n int64) {
	if c == nil || n == 0 {
		return
	}
	c.mu.Lock()
	c.quarantined += n
	c.degraded[acct] += n
	c.mu.Unlock()
}

// CoverageStats is an immutable snapshot of a Coverage ledger.
type CoverageStats struct {
	// TxFetched counts admitted transaction+receipt pairs.
	TxFetched int64
	// TxQuarantined counts records refused permanently.
	TxQuarantined int64
	// AccountsScanned counts account histories walked.
	AccountsScanned int64
	// Degraded maps each partially-scanned account to the number of
	// records missing from its history, sorted iteration via
	// DegradedAccounts.
	Degraded map[ethtypes.Address]int64
}

// DegradedAccounts lists the partially-scanned accounts in address
// order.
func (s CoverageStats) DegradedAccounts() []ethtypes.Address {
	out := make([]ethtypes.Address, 0, len(s.Degraded))
	for a := range s.Degraded {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return addrLess(out[i], out[j]) })
	return out
}

// Stats returns a copy of the current counters.
func (c *Coverage) Stats() CoverageStats {
	if c == nil {
		return CoverageStats{Degraded: map[ethtypes.Address]int64{}}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := CoverageStats{
		TxFetched:       c.txFetched,
		TxQuarantined:   c.quarantined,
		AccountsScanned: c.scanned,
		Degraded:        make(map[ethtypes.Address]int64, len(c.degraded)),
	}
	for a, n := range c.degraded {
		out.Degraded[a] = n
	}
	return out
}

// restore replaces the ledger contents with a checkpointed snapshot.
func (c *Coverage) restore(s CoverageStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txFetched = s.TxFetched
	c.quarantined = s.TxQuarantined
	c.scanned = s.AccountsScanned
	c.degraded = make(map[ethtypes.Address]int64, len(s.Degraded))
	for a, n := range s.Degraded {
		c.degraded[a] = n
	}
}
