package core

import (
	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
)

// CodeSource is an optional ChainSource extension: sources that can
// serve runtime bytecode enable the static pre-filter. Both LocalSource
// and the JSON-RPC client implement it.
type CodeSource interface {
	Code(addr ethtypes.Address) ([]byte, error)
}

// staticSkip decides whether the static pre-filter can rule a candidate
// contract out without touching its transaction history. It errs hard
// on the side of keeping: a contract is skipped only when its bytecode
// was fully analyzable and contains neither a profit-split shape nor
// any value-forwarding call — such code cannot produce the two-transfer
// ETH flow the classifier looks for, so scanning its history (the
// expensive part: one fetch per transaction) is wasted work.
func (p *Pipeline) staticSkip(addr ethtypes.Address) bool {
	if !p.StaticPreFilter {
		return false
	}
	cs, ok := p.Source.(CodeSource)
	if !ok {
		return false
	}
	code, err := cs.Code(addr)
	if err != nil || len(code) == 0 {
		// Unverifiable — keep the candidate, dynamic analysis decides.
		return false
	}
	st := evmstatic.AnalyzeRuntime(code, nil)
	if st.Incomplete || st.Truncated {
		return false
	}
	return !st.HasSplit && st.ValueCalls == 0
}
