package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/ethtypes"
)

// checkpointVersion guards the on-disk format; a mismatch refuses the
// resume rather than silently building on a different state shape.
// Version 2 added the integrity quarantine snapshot and the coverage
// ledger — without them a resumed build would re-admit records the
// interrupted run had already proven rotten and under-report its gaps.
const checkpointVersion = 2

// checkpointJSON is the serialized expansion state at an iteration
// boundary: the dataset so far plus exactly the loop-carried state of
// Build (scanned accounts, classified hashes, the frontier tracker's
// pending accounts, and the completed-iteration count). Restoring it
// and continuing the loop is byte-for-byte equivalent to never having
// stopped, because every admission decision depends only on this
// state and the (immutable) chain.
type checkpointJSON struct {
	Version    int             `json:"version"`
	Iterations int             `json:"iterations_done"`
	Dataset    json.RawMessage `json:"dataset"`
	Scanned    []string        `json:"scanned_accounts"`
	Classified []string        `json:"classified_txs"`
	// PendingOperators/PendingAffiliates are the frontier tracker's
	// not-yet-drained discoveries, preserved in the role split the
	// tracker's ordering contract requires.
	PendingOperators  []string `json:"pending_operators"`
	PendingAffiliates []string `json:"pending_affiliates"`
	// Quarantine is the integrity layer's store (QuarantineState
	// snapshot); empty when the build ran without one.
	Quarantine json.RawMessage `json:"quarantine,omitempty"`
	// Coverage is the completeness ledger at the checkpoint boundary.
	Coverage *coverageJSON `json:"coverage,omitempty"`
	// Head and Radar are the version-3 radar extension: the last block
	// number folded into the dataset, and the daemon's opaque state blob
	// (incremental cluster snapshot, pending retries, reorg ring). Both
	// absent in pipeline (version-2) checkpoints.
	Head  *uint64         `json:"head_cursor,omitempty"`
	Radar json.RawMessage `json:"radar,omitempty"`
}

// coverageJSON serializes a CoverageStats with hex-keyed degraded
// accounts (Go's JSON encoder sorts map keys, keeping the bytes
// deterministic).
type coverageJSON struct {
	TxFetched       int64            `json:"tx_fetched"`
	TxQuarantined   int64            `json:"tx_quarantined"`
	AccountsScanned int64            `json:"accounts_scanned"`
	Degraded        map[string]int64 `json:"degraded_accounts"`
}

// buildState is the restartable portion of one Build run.
type buildState struct {
	ds         *Dataset
	scanned    map[ethtypes.Address]bool
	classified map[ethtypes.Hash]bool
	tracker    *frontierTracker
	iterations int // completed expansion iterations (seed phase = 0)

	// quarantine and cov are the pipeline's live stores, serialized into
	// each checkpoint; on restore their decoded counterparts land in
	// quarantineBlob/coverage for the pipeline to re-apply.
	quarantine     QuarantineState
	cov            *Coverage
	quarantineBlob []byte
	coverage       CoverageStats
}

// writeCheckpoint serializes st to path atomically: the bytes are
// written to a temp file in the same directory and renamed into place,
// so a crash mid-write leaves either the previous checkpoint or none —
// never a torn file.
func writeCheckpoint(path string, st *buildState) (int64, error) {
	buf, err := marshalCheckpoint(st)
	if err != nil {
		return 0, err
	}
	return writeFileAtomic(path, buf)
}

// writeFileAtomic publishes buf at path via temp-file + fsync + rename.
func writeFileAtomic(path string, buf []byte) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("core: creating checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("core: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("core: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("core: publishing checkpoint: %w", err)
	}
	return int64(len(buf)), nil
}

func marshalCheckpoint(st *buildState) ([]byte, error) {
	var ds bytes.Buffer
	if err := st.ds.WriteJSON(&ds); err != nil {
		return nil, fmt.Errorf("core: serializing checkpoint dataset: %w", err)
	}
	cp := checkpointJSON{
		Version:           checkpointVersion,
		Iterations:        st.iterations,
		Dataset:           json.RawMessage(ds.Bytes()),
		Scanned:           sortedAddrHex(st.scanned),
		Classified:        sortedHashHex(st.classified),
		PendingOperators:  sortedAddrHex(st.tracker.ops),
		PendingAffiliates: sortedAddrHex(st.tracker.affs),
	}
	if st.quarantine != nil {
		blob, err := st.quarantine.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("core: serializing checkpoint quarantine: %w", err)
		}
		cp.Quarantine = json.RawMessage(blob)
	}
	if st.cov != nil {
		stats := st.cov.Stats()
		cov := &coverageJSON{
			TxFetched:       stats.TxFetched,
			TxQuarantined:   stats.TxQuarantined,
			AccountsScanned: stats.AccountsScanned,
			Degraded:        make(map[string]int64, len(stats.Degraded)),
		}
		for a, n := range stats.Degraded {
			cov.Degraded[a.Hex()] = n
		}
		cp.Coverage = cov
	}
	buf, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return nil, fmt.Errorf("core: serializing checkpoint: %w", err)
	}
	return buf, nil
}

// readCheckpoint loads and validates a checkpoint written by
// writeCheckpoint.
func readCheckpoint(r io.Reader) (*buildState, error) {
	var cp checkpointJSON
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	ds, err := ReadJSON(bytes.NewReader(cp.Dataset))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint dataset: %w", err)
	}
	st := &buildState{
		ds:         ds,
		scanned:    make(map[ethtypes.Address]bool, len(cp.Scanned)),
		classified: make(map[ethtypes.Hash]bool, len(cp.Classified)),
		tracker:    newFrontierTracker(),
		iterations: cp.Iterations,
	}
	for _, s := range cp.Scanned {
		a, err := ethtypes.HexToAddress(s)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint scanned account: %w", err)
		}
		st.scanned[a] = true
	}
	for _, s := range cp.Classified {
		h, err := ethtypes.HexToHash(s)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint classified tx: %w", err)
		}
		st.classified[h] = true
	}
	for _, s := range cp.PendingOperators {
		a, err := ethtypes.HexToAddress(s)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint pending operator: %w", err)
		}
		st.tracker.ops[a] = true
	}
	for _, s := range cp.PendingAffiliates {
		a, err := ethtypes.HexToAddress(s)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint pending affiliate: %w", err)
		}
		st.tracker.affs[a] = true
	}
	st.quarantineBlob = []byte(cp.Quarantine)
	st.coverage = CoverageStats{Degraded: make(map[ethtypes.Address]int64)}
	if cp.Coverage != nil {
		st.coverage.TxFetched = cp.Coverage.TxFetched
		st.coverage.TxQuarantined = cp.Coverage.TxQuarantined
		st.coverage.AccountsScanned = cp.Coverage.AccountsScanned
		for hex, n := range cp.Coverage.Degraded {
			a, err := ethtypes.HexToAddress(hex)
			if err != nil {
				return nil, fmt.Errorf("core: checkpoint degraded account: %w", err)
			}
			st.coverage.Degraded[a] = n
		}
	}
	return st, nil
}

// loadCheckpoint opens path and restores the state; a missing file
// returns (nil, nil) so a resume run with no checkpoint degrades to a
// fresh build.
func loadCheckpoint(path string) (*buildState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: opening checkpoint: %w", err)
	}
	defer f.Close()
	return readCheckpoint(f)
}

func sortedAddrHex(m map[ethtypes.Address]bool) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a.Hex())
	}
	sort.Strings(out)
	return out
}

func sortedHashHex(m map[ethtypes.Hash]bool) []string {
	out := make([]string, 0, len(m))
	for h := range m {
		out = append(out, h.Hex())
	}
	sort.Strings(out)
	return out
}
