package core

import (
	"sort"
	"time"

	"repro/internal/ethtypes"
)

// Discovery records how an account entered the dataset.
type Discovery string

// Discovery modes.
const (
	// DiscoverySeed marks accounts found from public labels (Step 1–3).
	DiscoverySeed Discovery = "seed"
	// DiscoveryExpansion marks accounts found by snowball expansion
	// (Step 4).
	DiscoveryExpansion Discovery = "expansion"
)

// ContractRecord is one profit-sharing contract in the dataset.
type ContractRecord struct {
	Address   ethtypes.Address
	Found     Discovery
	Sources   []string // label sources that reported it (seed only)
	FirstSeen time.Time
	LastSeen  time.Time
	TxCount   int
	// Fingerprints are the static engine's family names for the
	// contract's bytecode, set by Dataset.AnnotateFingerprints.
	Fingerprints []string
	// StaticFlagged is the screen's scam-shape verdict.
	StaticFlagged bool
}

// AccountRecord is one operator or affiliate account.
type AccountRecord struct {
	Address   ethtypes.Address
	Found     Discovery
	FirstSeen time.Time
	LastSeen  time.Time
}

// Lifecycle returns the active span of the account.
func (a *AccountRecord) Lifecycle() time.Duration {
	return a.LastSeen.Sub(a.FirstSeen)
}

// Dataset is the output of the pipeline: the paper's Table 1 artifact.
type Dataset struct {
	Contracts  map[ethtypes.Address]*ContractRecord
	Operators  map[ethtypes.Address]*AccountRecord
	Affiliates map[ethtypes.Address]*AccountRecord
	// Splits holds every detected profit share, keyed by transaction.
	Splits map[ethtypes.Hash][]Split
	// SeedStats freezes the dataset sizes after Step 3, before
	// expansion (the left column of Table 1).
	SeedStats Stats
}

// Stats summarizes dataset sizes.
type Stats struct {
	Contracts  int
	Operators  int
	Affiliates int
	ProfitTxs  int
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		Contracts:  make(map[ethtypes.Address]*ContractRecord),
		Operators:  make(map[ethtypes.Address]*AccountRecord),
		Affiliates: make(map[ethtypes.Address]*AccountRecord),
		Splits:     make(map[ethtypes.Hash][]Split),
	}
}

// Stats returns the current dataset sizes (the right column of
// Table 1).
func (d *Dataset) Stats() Stats {
	return Stats{
		Contracts:  len(d.Contracts),
		Operators:  len(d.Operators),
		Affiliates: len(d.Affiliates),
		ProfitTxs:  len(d.Splits),
	}
}

// IsDaaSAccount reports membership of any kind.
func (d *Dataset) IsDaaSAccount(a ethtypes.Address) bool {
	if _, ok := d.Contracts[a]; ok {
		return true
	}
	if _, ok := d.Operators[a]; ok {
		return true
	}
	_, ok := d.Affiliates[a]
	return ok
}

// AccountCount returns contracts + operators + affiliates.
func (d *Dataset) AccountCount() int {
	return len(d.Contracts) + len(d.Operators) + len(d.Affiliates)
}

// SortedContracts returns contract records ordered by address for
// deterministic iteration.
func (d *Dataset) SortedContracts() []*ContractRecord {
	out := make([]*ContractRecord, 0, len(d.Contracts))
	for _, c := range d.Contracts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return addrLess(out[i].Address, out[j].Address) })
	return out
}

// SortedOperators returns operator records ordered by address.
func (d *Dataset) SortedOperators() []*AccountRecord {
	return sortAccounts(d.Operators)
}

// SortedAffiliates returns affiliate records ordered by address.
func (d *Dataset) SortedAffiliates() []*AccountRecord {
	return sortAccounts(d.Affiliates)
}

// SortedSplitTxs returns split transaction hashes in time order.
func (d *Dataset) SortedSplitTxs() []ethtypes.Hash {
	out := make([]ethtypes.Hash, 0, len(d.Splits))
	for h := range d.Splits {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		ti := d.Splits[out[i]][0].Time
		tj := d.Splits[out[j]][0].Time
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return hashLess(out[i], out[j])
	})
	return out
}

func sortAccounts(m map[ethtypes.Address]*AccountRecord) []*AccountRecord {
	out := make([]*AccountRecord, 0, len(m))
	for _, a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return addrLess(out[i].Address, out[j].Address) })
	return out
}

func addrLess(a, b ethtypes.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func hashLess(a, b ethtypes.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// touchAccount updates or creates an account record with a sighting,
// reporting whether the account is new to the map (the pipeline's
// frontier tracker keys off creations).
func touchAccount(m map[ethtypes.Address]*AccountRecord, a ethtypes.Address, t time.Time, found Discovery) bool {
	rec, ok := m[a]
	if !ok {
		m[a] = &AccountRecord{Address: a, Found: found, FirstSeen: t, LastSeen: t}
		return true
	}
	if t.Before(rec.FirstSeen) {
		rec.FirstSeen = t
	}
	if t.After(rec.LastSeen) {
		rec.LastSeen = t
	}
	return false
}
