package core

import (
	"context"
	"math/big"
	"sort"

	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
)

// StorageSource is an optional ChainSource extension: sources that can
// serve contract storage let the static screen resolve slot-based
// proxies and read a clone's profit-sharing configuration. LocalSource
// implements it; screening without it still handles EIP-1167 proxies
// (their implementation lives in code, not storage).
type StorageSource interface {
	StorageAt(addr ethtypes.Address, key ethtypes.Hash) ethtypes.Hash
}

// ScreenVerdict is the static fingerprint engine's judgment of one
// contract.
type ScreenVerdict struct {
	Address ethtypes.Address
	// Families are the sorted fingerprint family names the engine
	// matched (approval-phishing, proxy, pyramid-payout).
	Families []string
	// Flagged is the scam-shape verdict: approval-phishing and
	// pyramid-payout fingerprints flag outright; a proxy flags only
	// when it resolves to an implementation that splits revenue at one
	// of the documented drainer ratios — a legitimate clone of a benign
	// implementation stays unflagged.
	Flagged bool
	// ProxyResolved/ProxyImpl record a followed proxy chain.
	ProxyResolved bool
	ProxyImpl     ethtypes.Address
	// RatioPM is the resolved operator share when a split was found
	// with a known constant ratio (already normalized to the smaller
	// share), 0 otherwise.
	RatioPM int64
	// Budgeted marks an analysis cut short by the abstract
	// interpreter's visit budget; its absence of findings is not
	// evidence of absence.
	Budgeted bool
}

// StaticScreen runs the multi-fingerprint static engine over contract
// bytecode served by a ChainSource. It is the screening complement of
// the classifier: the classifier judges transactions the contract
// already made, the screen judges the code itself — so it also catches
// planted scam shapes that never produced a split-shaped transaction.
type StaticScreen struct {
	// Source serves runtime bytecode.
	Source CodeSource
	// Storage optionally serves contract storage for proxy resolution
	// and clone-configuration reads.
	Storage StorageSource
	// RatiosPM is the drainer ratio set used for the proxy verdict;
	// defaults to DefaultRatiosPM.
	RatiosPM []int64
	// Concurrency bounds parallel screenings in Screen (0 or 1 runs
	// sequentially). Verdict order is deterministic either way.
	Concurrency int
}

func (s *StaticScreen) ratios() []int64 {
	if len(s.RatiosPM) > 0 {
		return s.RatiosPM
	}
	return DefaultRatiosPM
}

// storageOf adapts the screen's StorageSource to the analyzer's
// constant-storage environment for one contract.
func (s *StaticScreen) storageOf(addr ethtypes.Address) evmstatic.Storage {
	return func(slot *big.Int) (*big.Int, bool) {
		if s.Storage == nil {
			// No storage access: slots are unknown, not zero.
			return nil, false
		}
		if slot.BitLen() > 256 {
			return new(big.Int), true
		}
		var key ethtypes.Hash
		slot.FillBytes(key[:])
		v := s.Storage.StorageAt(addr, key)
		return new(big.Int).SetBytes(v[:]), true
	}
}

// ScreenContract analyzes one contract's bytecode, following proxy
// chains through Source.
func (s *StaticScreen) ScreenContract(addr ethtypes.Address) (ScreenVerdict, error) {
	v := ScreenVerdict{Address: addr}
	code, err := s.Source.Code(addr)
	if err != nil {
		return v, err
	}
	if len(code) == 0 {
		return v, nil
	}
	st := evmstatic.AnalyzeResolved(code, s.storageOf(addr), func(impl ethtypes.Address) ([]byte, error) {
		return s.Source.Code(impl)
	})
	v.Families = evmstatic.FamilyNames(st.Fingerprints)
	v.ProxyResolved = st.ProxyResolved
	v.ProxyImpl = st.ProxyImpl
	v.Budgeted = st.Budgeted
	if st.HasSplit && st.RatioKnown {
		v.RatioPM = st.OperatorPerMille
		if v.RatioPM > 500 {
			// The static pass names the share-call recipient the
			// operator; the dataset convention is the smaller share.
			v.RatioPM = 1000 - v.RatioPM
		}
	}
	v.Flagged = s.flagged(st, v.RatioPM)
	return v, nil
}

// flagged applies the verdict rule to a finished analysis.
func (s *StaticScreen) flagged(st *evmstatic.StaticAnalysis, ratioPM int64) bool {
	if evmstatic.HasFamily(st.Fingerprints, evmstatic.FamilyApprovalPhish) ||
		evmstatic.HasFamily(st.Fingerprints, evmstatic.FamilyPyramid) {
		return true
	}
	if !evmstatic.HasFamily(st.Fingerprints, evmstatic.FamilyProxy) {
		return false
	}
	if !st.HasSplit || !st.RatioKnown {
		return false
	}
	for _, r := range s.ratios() {
		if r == ratioPM {
			return true
		}
	}
	return false
}

// Screen analyzes every address, returning verdicts in input order.
// Screenings are independent, so they fan out over Concurrency
// workers; the result is identical to the sequential run.
func (s *StaticScreen) Screen(addrs []ethtypes.Address) ([]ScreenVerdict, error) {
	out := make([]ScreenVerdict, len(addrs))
	workers := s.Concurrency
	if workers < 1 {
		workers = 1
	}
	err := runWorkers(context.Background(), len(addrs), workers, func(i int) error {
		v, err := s.ScreenContract(addrs[i])
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnnotateFingerprints screens every contract in the dataset and
// stores the resulting family names and flag on its record, so exports
// carry the static engine's verdict alongside the transaction-level
// evidence.
func (d *Dataset) AnnotateFingerprints(s *StaticScreen) error {
	addrs := make([]ethtypes.Address, 0, len(d.Contracts))
	for a := range d.Contracts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrLess(addrs[i], addrs[j]) })
	verdicts, err := s.Screen(addrs)
	if err != nil {
		return err
	}
	for i, a := range addrs {
		rec := d.Contracts[a]
		rec.Fingerprints = verdicts[i].Families
		rec.StaticFlagged = verdicts[i].Flagged
	}
	return nil
}
