package core_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/worldgen"
)

// TestStaticScreenOnWorld is the end-to-end acceptance check for the
// fingerprint engine: every planted scam-shape contract in a generated
// world must be flagged under its own family, and none of the
// adversarial negatives — benign routers, allowance helpers, airdrops,
// clones of a benign implementation, honest splitters — may be
// flagged.
func TestStaticScreenOnWorld(t *testing.T) {
	w, err := worldgen.Generate(worldgen.TestConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	src := core.LocalSource{Chain: w.Chain}
	screen := &core.StaticScreen{Source: src, Storage: src, Concurrency: 4}

	if len(w.Truth.ScamContracts) == 0 || len(w.Truth.NegativeContracts) == 0 {
		t.Fatal("world planted no scam shapes")
	}
	for addr, fam := range w.Truth.ScamContracts {
		v, err := screen.ScreenContract(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !hasString(v.Families, fam) {
			t.Errorf("%s: planted %s, fingerprints %v", addr.Short(), fam, v.Families)
		}
		if !v.Flagged {
			t.Errorf("%s: planted %s not flagged (families %v, ratio %d)", addr.Short(), fam, v.Families, v.RatioPM)
		}
	}
	for addr, kind := range w.Truth.NegativeContracts {
		v, err := screen.ScreenContract(addr)
		if err != nil {
			t.Fatal(err)
		}
		if v.Flagged {
			t.Errorf("%s: %s negative flagged (families %v, ratio %d)", addr.Short(), kind, v.Families, v.RatioPM)
		}
		if kind == worldgen.NegativeBenignProxy && !v.ProxyResolved {
			t.Errorf("%s: benign proxy did not resolve", addr.Short())
		}
	}

	// Profit-sharing drainers and honest splitters are outside the
	// three families: neither may be flagged by the screen (they are
	// the classifier's domain).
	for _, fam := range w.Truth.ContractAddrs {
		for _, addr := range fam {
			v, err := screen.ScreenContract(addr)
			if err != nil {
				t.Fatal(err)
			}
			if v.Flagged {
				t.Errorf("profit-sharing contract %s flagged %v", addr.Short(), v.Families)
			}
		}
	}

	// Malicious clones must resolve to the shared drainer
	// implementation.
	for addr, fam := range w.Truth.ScamContracts {
		if fam != "proxy" {
			continue
		}
		v, _ := screen.ScreenContract(addr)
		if !v.ProxyResolved || v.ProxyImpl != w.Truth.DrainerImpl {
			t.Errorf("clone %s resolved to %s, want %s", addr.Short(), v.ProxyImpl.Short(), w.Truth.DrainerImpl.Short())
		}
	}
}

// TestAnnotateFingerprints screens a built dataset and checks the
// verdicts land on the contract records and survive a JSON round trip.
func TestAnnotateFingerprints(t *testing.T) {
	w, err := worldgen.Generate(worldgen.TestConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	src := core.LocalSource{Chain: w.Chain}
	p := &core.Pipeline{Source: src, Labels: w.Labels}
	ds, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Contracts) == 0 {
		t.Fatal("pipeline admitted no contracts")
	}
	screen := &core.StaticScreen{Source: src, Storage: src, Concurrency: 2}
	if err := ds.AnnotateFingerprints(screen); err != nil {
		t.Fatal(err)
	}
	for addr, rec := range ds.Contracts {
		if rec.StaticFlagged {
			t.Errorf("profit-sharing contract %s flagged %v", addr.Short(), rec.Fingerprints)
		}
	}

	// Round trip: fingerprint columns must survive export.
	var one *core.ContractRecord
	for _, rec := range ds.Contracts {
		one = rec
		break
	}
	one.Fingerprints = []string{"approval-phishing"}
	one.StaticFlagged = true
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Contracts[one.Address]
	if got == nil || !got.StaticFlagged || !hasString(got.Fingerprints, "approval-phishing") {
		t.Errorf("fingerprints lost in round trip: %+v", got)
	}
}

func hasString(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}
