package core_test

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
)

// mkSplitReceipt builds a synthetic two-transfer split through a
// contract with the given operator ratio applied to total.
func mkSplitReceipt(total ethtypes.Wei, ratioPM int64) (*chain.Transaction, *chain.Receipt) {
	contract := ethtypes.Addr("0xc000000000000000000000000000000000000001")
	op := ethtypes.Addr("0x0e00000000000000000000000000000000000002")
	aff := ethtypes.Addr("0xaf00000000000000000000000000000000000003")
	victim := ethtypes.Addr("0x1c00000000000000000000000000000000000004")
	opAmt := total.MulDiv(ratioPM, 1000)
	affAmt := total.Sub(opAmt)
	tx := &chain.Transaction{From: victim, To: &contract, Value: total}
	r := &chain.Receipt{
		Status: true, TxHash: ethtypes.Hash{1}, Timestamp: time.Unix(1700000000, 0),
		Transfers: []chain.Transfer{
			{Asset: chain.ETHAsset, From: victim, To: contract, Amount: total},
			{Asset: chain.ETHAsset, From: contract, To: op, Amount: opAmt, Depth: 1},
			{Asset: chain.ETHAsset, From: contract, To: aff, Amount: affAmt, Depth: 1},
		},
	}
	return tx, r
}

// Property: every documented ratio applied to any amount ≥ 1000 wei is
// classified, and the recovered ratio matches.
func TestQuickClassifierRecognizesAllRatios(t *testing.T) {
	cl := core.Classifier{}
	f := func(amount uint32, pick uint8) bool {
		total := ethtypes.NewWei(int64(amount)%1_000_000_000 + 1000)
		ratio := core.DefaultRatiosPM[int(pick)%len(core.DefaultRatiosPM)]
		tx, r := mkSplitReceipt(total, ratio)
		splits := cl.Classify(tx, r)
		if len(splits) != 1 {
			return false
		}
		sp := splits[0]
		return sp.RatioPM == ratio &&
			sp.OperatorAmount.Cmp(sp.AffiliateAmount) <= 0 &&
			sp.Total().Cmp(total) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ratios clearly outside the documented set never classify
// (choose the midpoint between neighbouring documented ratios, which
// is ≥ 9‰ away from both).
func TestQuickClassifierRejectsForeignRatios(t *testing.T) {
	cl := core.Classifier{}
	foreign := []int64{60, 113, 138, 163, 188, 225, 275, 315, 365, 450, 480}
	f := func(amount uint32, pick uint8) bool {
		total := ethtypes.NewWei(int64(amount)%1_000_000_000 + 1_000_000)
		ratio := foreign[int(pick)%len(foreign)]
		tx, r := mkSplitReceipt(total, ratio)
		return len(cl.Classify(tx, r)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: classification is invariant under transfer order within
// the receipt (trace ordering is an implementation detail of the
// node).
func TestQuickClassifierOrderInvariance(t *testing.T) {
	cl := core.Classifier{}
	f := func(amount uint32) bool {
		total := ethtypes.NewWei(int64(amount)%1_000_000_000 + 1000)
		tx, r := mkSplitReceipt(total, 200)
		// Reverse the transfer list.
		rev := &chain.Receipt{Status: true, TxHash: r.TxHash, Timestamp: r.Timestamp}
		for i := len(r.Transfers) - 1; i >= 0; i-- {
			rev.Transfers = append(rev.Transfers, r.Transfers[i])
		}
		a := cl.Classify(tx, r)
		b := cl.Classify(tx, rev)
		if len(a) != 1 || len(b) != 1 {
			return false
		}
		return a[0].Operator == b[0].Operator && a[0].RatioPM == b[0].RatioPM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
