package core_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/evm"
	"repro/internal/labels"
)

func ts() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }

// countingSource wraps a ChainSource+CodeSource and counts history
// scans per address.
type countingSource struct {
	core.LocalSource
	scans map[ethtypes.Address]int
}

func (s *countingSource) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	s.scans[addr]++
	return s.LocalSource.TransactionsOf(addr)
}

// TestStaticPreFilterSkipsInertContracts deploys a contract that can
// never forward value and labels it phishing; with the pre-filter on,
// its transaction history is never fetched.
func TestStaticPreFilterSkipsInertContracts(t *testing.T) {
	c := chain.New(ts())
	deployer := ethtypes.Addr("0xde00000000000000000000000000000000000001")
	c.Fund(deployer, ethtypes.Ether(1))

	// Runtime: JUMPDEST STOP — no calls, no split, trivially analyzable.
	runtime := []byte{evm.JUMPDEST, evm.STOP}
	initcode := []byte{
		evm.PUSH1, byte(len(runtime)), // size
		evm.PUSH1, 0x0c, // code offset (patched below)
		evm.PUSH1, 0x00, // mem offset
		evm.CODECOPY,
		evm.PUSH1, byte(len(runtime)),
		evm.PUSH1, 0x00,
		evm.RETURN,
	}
	initcode[3] = byte(len(initcode))
	initcode = append(initcode, runtime...)
	_, rs := c.Mine(ts(), &chain.Transaction{From: deployer, Data: initcode})
	if !rs[0].Status {
		t.Fatalf("deploy failed: %s", rs[0].Err)
	}
	inert := rs[0].ContractAddress

	dir := labels.New()
	dir.Add(labels.Label{
		Address: inert, Source: labels.SourceChainabuse,
		Category: labels.CategoryPhishing, Name: "reported",
	})

	src := &countingSource{
		LocalSource: core.LocalSource{Chain: c},
		scans:       make(map[ethtypes.Address]int),
	}
	p := &core.Pipeline{Source: src, Labels: dir, StaticPreFilter: true}
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
	if n := src.scans[inert]; n != 0 {
		t.Errorf("inert contract history scanned %d times despite pre-filter", n)
	}

	// Without the pre-filter the same contract is scanned.
	src.scans = make(map[ethtypes.Address]int)
	p = &core.Pipeline{Source: src, Labels: dir}
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
	if n := src.scans[inert]; n == 0 {
		t.Errorf("contract not scanned with pre-filter off; test contract broken")
	}
}

// TestStaticPreFilterPreservesDataset runs the full pipeline over the
// generated world with and without the pre-filter; the resulting
// datasets must be identical — the filter is an optimization, not a
// policy change.
func TestStaticPreFilterPreservesDataset(t *testing.T) {
	w := sharedWorld
	base := buildDataset(t, w)

	p := &core.Pipeline{
		Source:          core.LocalSource{Chain: w.Chain},
		Labels:          w.Labels,
		StaticPreFilter: true,
	}
	filtered, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := filtered.Stats(), base.Stats(); got != want {
		t.Fatalf("stats with pre-filter = %+v, without = %+v", got, want)
	}
	if !reflect.DeepEqual(keys(filtered.Contracts), keys(base.Contracts)) {
		t.Errorf("contract sets differ with pre-filter enabled")
	}
}

func keys[V any](m map[ethtypes.Address]V) map[ethtypes.Address]bool {
	out := make(map[ethtypes.Address]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
