package core

import (
	"math/big"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
)

// DefaultRatiosPM are the operator profit shares observed across
// profit-sharing transactions, in per-mille (§4.3: 10%, 12.5%, 15%,
// 17.5%, 20%, 25%, 30%, 33%, 40%). The canonical set lives in
// internal/evmstatic, which maps statically recovered split constants
// onto the same values.
var DefaultRatiosPM = append([]int64(nil), evmstatic.PaperRatiosPM...)

// Classifier decides whether a transaction is a profit-sharing
// transaction per §5.1 Step 2: the fund flow contains exactly two
// transfers of the same asset originating from one account, in one of
// the known fixed proportions, with the smaller share going first to
// the operator.
type Classifier struct {
	// RatiosPM is the accepted operator-share set; defaults to
	// DefaultRatiosPM when empty.
	RatiosPM []int64
	// TolerancePM absorbs integer-division dust (default 1‰). The
	// ablation bench sweeps this.
	TolerancePM int64
	// MaxGroupSize rejects payer/asset groups with more transfers than
	// this (default 2, the paper's "consists of two transfers"). The
	// flow-shape ablation relaxes it.
	MaxGroupSize int
}

// Split is one detected profit share inside a transaction.
type Split struct {
	TxHash          ethtypes.Hash
	Time            time.Time
	Contract        ethtypes.Address // invoked contract
	Payer           ethtypes.Address // account both transfers originate from
	Operator        ethtypes.Address // recipient of the smaller share
	Affiliate       ethtypes.Address // recipient of the larger share
	Asset           chain.Asset
	OperatorAmount  ethtypes.Wei
	AffiliateAmount ethtypes.Wei
	// RatioPM is the matched operator share in per-mille.
	RatioPM int64
}

// Total returns the combined transferred amount.
func (s Split) Total() ethtypes.Wei { return s.OperatorAmount.Add(s.AffiliateAmount) }

func (c *Classifier) ratios() []int64 {
	if len(c.RatiosPM) > 0 {
		return c.RatiosPM
	}
	return DefaultRatiosPM
}

func (c *Classifier) tolerance() int64 {
	if c.TolerancePM > 0 {
		return c.TolerancePM
	}
	return 1
}

func (c *Classifier) maxGroup() int {
	if c.MaxGroupSize > 0 {
		return c.MaxGroupSize
	}
	return 2
}

type groupKey struct {
	payer ethtypes.Address
	asset chain.Asset
}

// maxAmount is the largest transfer amount an EVM word can carry;
// anything above it is a corrupt record, not a payment.
var maxAmount = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))

// Classify inspects a transaction's fund flow and returns every
// detected split. A transaction with at least one split is a
// profit-sharing transaction.
func (c *Classifier) Classify(tx *chain.Transaction, r *chain.Receipt) []Split {
	if r == nil || !r.Status || len(r.Transfers) < 2 || tx == nil || tx.To == nil {
		return nil
	}
	groups := make(map[groupKey][]chain.Transfer)
	var order []groupKey
	for _, tr := range r.Transfers {
		k := groupKey{tr.From, tr.Asset}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], tr)
	}
	var out []Split
	for _, k := range order {
		g := groups[k]
		if len(g) != 2 {
			if len(g) < 2 || len(g) > c.maxGroup() {
				continue
			}
			// Flow-shape ablation: larger groups allowed; try every
			// adjacent pair.
			for i := 0; i+1 < len(g); i++ {
				if sp, ok := c.matchPair(tx, r, k, g[i], g[i+1]); ok {
					out = append(out, sp)
				}
			}
			continue
		}
		if sp, ok := c.matchPair(tx, r, k, g[0], g[1]); ok {
			out = append(out, sp)
		}
	}
	return out
}

// matchPair tests one candidate transfer pair against the ratio set.
func (c *Classifier) matchPair(tx *chain.Transaction, r *chain.Receipt, k groupKey, a, b chain.Transfer) (Split, bool) {
	// ERC-721 moves are indivisible and never ratio-split.
	if k.asset.Kind == chain.AssetERC721 {
		return Split{}, false
	}
	lo, hi := a, b
	if lo.Amount.Cmp(hi.Amount) > 0 {
		lo, hi = hi, lo
	}
	// Both shares must be real payments inside an EVM word. A zero
	// amount would let ratioPerMille produce 0‰ (admitted whenever an
	// ablation sweep puts 0 in the ratio set), and an overflowing one
	// can only come from a garbled record; neither is a profit share.
	if lo.Amount.Sign() <= 0 || hi.Amount.Big().Cmp(maxAmount) > 0 {
		return Split{}, false
	}
	total := lo.Amount.Add(hi.Amount)
	// Self-payments cannot be an operator/affiliate split.
	if lo.To == hi.To {
		return Split{}, false
	}
	ratioPM := ratioPerMille(lo.Amount, total)
	tol := c.tolerance()
	for _, want := range c.ratios() {
		if ratioPM >= want-tol && ratioPM <= want+tol {
			return Split{
				TxHash:          r.TxHash,
				Time:            r.Timestamp,
				Contract:        *tx.To,
				Payer:           k.payer,
				Operator:        lo.To,
				Affiliate:       hi.To,
				Asset:           k.asset,
				OperatorAmount:  lo.Amount,
				AffiliateAmount: hi.Amount,
				RatioPM:         want,
			}, true
		}
	}
	return Split{}, false
}

// ratioPerMille computes part/total in rounded per-mille.
func ratioPerMille(part, total ethtypes.Wei) int64 {
	n := new(big.Int).Mul(part.Big(), big.NewInt(1000))
	// Round to nearest: (n + total/2) / total.
	t := total.Big()
	n.Add(n, new(big.Int).Div(t, big.NewInt(2)))
	n.Div(n, t)
	return n.Int64()
}
