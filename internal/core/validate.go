package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ethtypes"
)

// ValidationReport summarizes the §5.2 sampling validation: for every
// dataset account, the most recent profit-sharing transactions are
// re-reviewed for the two-transfer split shape with the operator on
// the smaller share.
type ValidationReport struct {
	ContractsReviewed  int
	OperatorsReviewed  int
	AffiliatesReviewed int
	TxReviewed         int
	FalsePositives     []ethtypes.Hash
	// SkippedQuarantined counts sampled transactions that could not be
	// re-reviewed because the integrity layer refused their records;
	// they are neither confirmed nor false positives.
	SkippedQuarantined int
	// ReviewedFraction is TxReviewed over the dataset's split count,
	// matching the paper's 44.8% coverage statistic.
	ReviewedFraction float64
}

// Validator re-examines dataset entries the way the paper's analyst
// team did.
type Validator struct {
	Source ChainSource
	// SamplePerAccount is the number of most-recent transactions
	// reviewed per account (the paper used 10).
	SamplePerAccount int
}

// Validate reviews the dataset and returns the report. A false
// positive is any recorded split that fails independent re-derivation
// from the receipt.
func (v *Validator) Validate(ds *Dataset) (*ValidationReport, error) {
	if v.SamplePerAccount <= 0 {
		v.SamplePerAccount = 10
	}
	report := &ValidationReport{}
	reviewed := make(map[ethtypes.Hash]bool)
	strict := Classifier{} // default strict settings

	reviewAccount := func(addr ethtypes.Address) (int, error) {
		// Gather this account's recorded split transactions, newest
		// first.
		var hs []ethtypes.Hash
		for h, splits := range ds.Splits {
			for _, sp := range splits {
				if sp.Contract == addr || sp.Operator == addr || sp.Affiliate == addr {
					hs = append(hs, h)
					break
				}
			}
		}
		sort.Slice(hs, func(i, j int) bool {
			ti, tj := ds.Splits[hs[i]][0].Time, ds.Splits[hs[j]][0].Time
			if !ti.Equal(tj) {
				return ti.After(tj)
			}
			return hashLess(hs[i], hs[j])
		})
		count := 0
		for _, h := range hs {
			if count >= v.SamplePerAccount {
				break
			}
			if reviewed[h] {
				// Already cross-checked for another account: the paper
				// skips and samples further.
				continue
			}
			reviewed[h] = true
			count++
			tx, err := SourceTransaction(context.Background(), v.Source, h)
			if err != nil {
				if errors.Is(err, ErrQuarantined) {
					report.SkippedQuarantined++
					continue
				}
				return count, err
			}
			r, err := SourceReceipt(context.Background(), v.Source, h)
			if err != nil {
				if errors.Is(err, ErrQuarantined) {
					report.SkippedQuarantined++
					continue
				}
				return count, err
			}
			if tx == nil || r == nil {
				report.SkippedQuarantined++
				continue
			}
			rederived := strict.Classify(tx, r)
			if !splitsConfirm(ds.Splits[h], rederived) {
				report.FalsePositives = append(report.FalsePositives, h)
			}
		}
		return count, nil
	}

	for _, rec := range ds.SortedContracts() {
		n, err := reviewAccount(rec.Address)
		if err != nil {
			return nil, fmt.Errorf("core: validate contract %s: %w", rec.Address.Short(), err)
		}
		report.ContractsReviewed++
		report.TxReviewed += n
	}
	for _, rec := range ds.SortedOperators() {
		n, err := reviewAccount(rec.Address)
		if err != nil {
			return nil, err
		}
		report.OperatorsReviewed++
		report.TxReviewed += n
	}
	for _, rec := range ds.SortedAffiliates() {
		n, err := reviewAccount(rec.Address)
		if err != nil {
			return nil, err
		}
		report.AffiliatesReviewed++
		report.TxReviewed += n
	}
	if len(ds.Splits) > 0 {
		report.ReviewedFraction = float64(report.TxReviewed) / float64(len(ds.Splits))
	}
	return report, nil
}

// splitsConfirm checks that every recorded split re-derives: same
// contract, operator on the smaller share, matching ratio.
func splitsConfirm(recorded, rederived []Split) bool {
	if len(recorded) == 0 {
		return false
	}
	for _, rec := range recorded {
		ok := false
		for _, re := range rederived {
			if re.Contract == rec.Contract && re.Operator == rec.Operator &&
				re.Affiliate == rec.Affiliate && re.RatioPM == rec.RatioPM &&
				re.OperatorAmount.Cmp(re.AffiliateAmount) <= 0 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
