// Package core implements the paper's primary contribution: the
// profit-sharing transaction classifier (§4.3, §5.1 Step 2), the
// snowball-sampling dataset builder (§5.1), and the sampling-based
// validation harness (§5.2). It consumes chain data through the
// ChainSource interface, so the same pipeline runs in-process against
// a simulated chain or remotely over JSON-RPC.
package core

import (
	"context"

	"repro/internal/chain"
	"repro/internal/ethtypes"
)

// ChainSource is the read-only view of an Ethereum-like chain the
// pipeline needs. internal/chain satisfies it via LocalSource;
// internal/rpc's client satisfies it over HTTP.
type ChainSource interface {
	// TransactionsOf returns, in chronological order, the hashes of all
	// transactions touching an account.
	TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error)
	// Transaction fetches a transaction by hash.
	Transaction(h ethtypes.Hash) (*chain.Transaction, error)
	// Receipt fetches the execution receipt (with fund-flow transfers)
	// by transaction hash.
	Receipt(h ethtypes.Hash) (*chain.Receipt, error)
	// IsContract reports whether the address hosts code.
	IsContract(addr ethtypes.Address) (bool, error)
}

// ContextSource is an optional ChainSource extension: sources whose
// single-object fetches can be cancelled mid-flight. The pipeline's
// fetch workers call the context variants when available, so
// cancel-on-first-error aborts in-flight HTTP requests instead of
// letting them run to their transport timeout. Decorators (metrics,
// caches, retry, fault injection) forward it unconditionally, checking
// the wrapped source at call time, so the capability survives
// wrapping.
type ContextSource interface {
	TransactionContext(ctx context.Context, h ethtypes.Hash) (*chain.Transaction, error)
	ReceiptContext(ctx context.Context, h ethtypes.Hash) (*chain.Receipt, error)
}

// SourceTransaction fetches one transaction through src, using the
// context-aware path when src supports it.
func SourceTransaction(ctx context.Context, src ChainSource, h ethtypes.Hash) (*chain.Transaction, error) {
	if cs, ok := src.(ContextSource); ok {
		return cs.TransactionContext(ctx, h)
	}
	return src.Transaction(h)
}

// SourceReceipt fetches one receipt through src, using the
// context-aware path when src supports it.
func SourceReceipt(ctx context.Context, src ChainSource, h ethtypes.Hash) (*chain.Receipt, error) {
	if cs, ok := src.(ContextSource); ok {
		return cs.ReceiptContext(ctx, h)
	}
	return src.Receipt(h)
}

// BatchSource is an optional ChainSource extension: sources that can
// serve many transactions or receipts in one round trip (JSON-RPC
// array batching, bulk DB reads). The pipeline's fetchAll detects it
// and collapses a frontier scan's N fetches into a handful of calls.
//
// Implementations must return exactly one result per requested hash,
// in request order. Decorators (metrics, caches) implement it
// unconditionally and degrade to per-item calls when the source they
// wrap cannot batch, so detection composes through wrapping.
type BatchSource interface {
	BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error)
	BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error)
}

// LocalSource adapts an in-process chain to ChainSource.
type LocalSource struct {
	Chain *chain.Chain
}

// TransactionsOf implements ChainSource.
func (s LocalSource) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	return s.Chain.TransactionsOf(addr), nil
}

// Transaction implements ChainSource.
func (s LocalSource) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	return s.Chain.Transaction(h)
}

// Receipt implements ChainSource.
func (s LocalSource) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	return s.Chain.Receipt(h)
}

// IsContract implements ChainSource.
func (s LocalSource) IsContract(addr ethtypes.Address) (bool, error) {
	return s.Chain.IsContract(addr), nil
}

// Code implements CodeSource, enabling the static pre-filter.
func (s LocalSource) Code(addr ethtypes.Address) ([]byte, error) {
	return s.Chain.CodeAt(addr), nil
}

// StorageAt implements StorageSource, enabling proxy resolution and
// clone-configuration reads in the static screen.
func (s LocalSource) StorageAt(addr ethtypes.Address, key ethtypes.Hash) ethtypes.Hash {
	return s.Chain.StorageAt(addr, key)
}
