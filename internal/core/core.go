package core
