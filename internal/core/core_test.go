package core_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/fetchcache"
	"repro/internal/worldgen"
)

// buildWorld generates the shared small-scale test world once.
var sharedWorld = func() *worldgen.World {
	w, err := worldgen.Generate(worldgen.TestConfig(1910))
	if err != nil {
		panic(err)
	}
	return w
}()

func buildDataset(t *testing.T, w *worldgen.World) *core.Dataset {
	t.Helper()
	p := &core.Pipeline{
		Source: core.LocalSource{Chain: w.Chain},
		Labels: w.Labels,
	}
	ds, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPipelinePrecisionAndRecall(t *testing.T) {
	w := sharedWorld
	ds := buildDataset(t, w)

	// Precision: every dataset contract is a planted DaaS contract;
	// zero benign splitters admitted.
	for addr := range ds.Contracts {
		if _, ok := w.Truth.ContractFamily[addr]; !ok {
			t.Errorf("false positive contract %s", addr.Short())
		}
	}
	for _, neg := range w.Truth.CollidingSplitters {
		if _, ok := ds.Contracts[neg]; ok {
			t.Errorf("benign colliding splitter admitted: %s", neg.Short())
		}
	}
	// Precision on txs: no benign split tx recorded.
	for h := range ds.Splits {
		if w.Truth.BenignSplitTxs[h] {
			t.Errorf("benign splitter tx classified as profit-sharing")
		}
		if _, ok := w.Truth.ProfitTxs[h]; !ok {
			t.Errorf("tx %s in dataset but not planted", h)
		}
	}

	// Recall: the snowball should recover the overwhelming share of
	// planted contracts and profit txs (the paper's own coverage is
	// bounded by seed connectivity).
	stats := ds.Stats()
	plantedContracts := len(w.Truth.ContractFamily)
	if float64(stats.Contracts) < 0.9*float64(plantedContracts) {
		t.Errorf("contract recall %d/%d below 90%%", stats.Contracts, plantedContracts)
	}
	if float64(stats.ProfitTxs) < 0.9*float64(len(w.Truth.ProfitTxs)) {
		t.Errorf("tx recall %d/%d below 90%%", stats.ProfitTxs, len(w.Truth.ProfitTxs))
	}

	// Expansion grew the dataset beyond the seed (Table 1 shape).
	if stats.Contracts <= ds.SeedStats.Contracts {
		t.Errorf("expansion did not grow contracts: %d -> %d", ds.SeedStats.Contracts, stats.Contracts)
	}
	if stats.ProfitTxs <= ds.SeedStats.ProfitTxs {
		t.Errorf("expansion did not grow txs: %d -> %d", ds.SeedStats.ProfitTxs, stats.ProfitTxs)
	}
}

func TestPipelineOperatorAffiliateIdentification(t *testing.T) {
	w := sharedWorld
	ds := buildDataset(t, w)

	// Every recovered operator is a planted operator; same for
	// affiliates. (The split direction — smaller share to operator —
	// must sort the two roles correctly.)
	for addr := range ds.Operators {
		if _, ok := w.Truth.OperatorFamily[addr]; !ok {
			t.Errorf("recovered operator %s not planted as operator", addr.Short())
		}
	}
	misaff := 0
	for addr := range ds.Affiliates {
		if _, ok := w.Truth.AffiliateFamily[addr]; !ok {
			misaff++
		}
	}
	if misaff > 0 {
		t.Errorf("%d recovered affiliates not planted as affiliates", misaff)
	}
}

func TestClassifierOnPlantedTxs(t *testing.T) {
	w := sharedWorld
	cl := core.Classifier{}
	found := 0
	for h := range w.Truth.ProfitTxs {
		tx, err := w.Chain.Transaction(h)
		if err != nil {
			t.Fatal(err)
		}
		r, err := w.Chain.Receipt(h)
		if err != nil {
			t.Fatal(err)
		}
		splits := cl.Classify(tx, r)
		if len(splits) == 0 {
			t.Errorf("planted profit tx %s not classified", h)
			continue
		}
		found++
		sp := splits[0]
		if sp.OperatorAmount.Cmp(sp.AffiliateAmount) > 0 {
			t.Errorf("operator share larger than affiliate share in %s", h)
		}
	}
	if found == 0 {
		t.Fatal("no planted txs classified")
	}
}

func TestClassifierRejectsNonSplits(t *testing.T) {
	cl := core.Classifier{}
	// Plain transfer: one transfer only.
	to := ethtypes.Addr("0x1111111111111111111111111111111111111111")
	tx := &chain.Transaction{From: ethtypes.Addr("0x2222222222222222222222222222222222222222"), To: &to}
	r := &chain.Receipt{Status: true, Transfers: []chain.Transfer{
		{Asset: chain.ETHAsset, From: tx.From, To: to, Amount: ethtypes.Ether(1)},
	}}
	if got := cl.Classify(tx, r); len(got) != 0 {
		t.Errorf("single transfer classified: %+v", got)
	}
	// Failed tx.
	r2 := &chain.Receipt{Status: false}
	if got := cl.Classify(tx, r2); len(got) != 0 {
		t.Error("failed tx classified")
	}
	// Two transfers at a non-drainer ratio (50/50).
	c := ethtypes.Addr("0x3333333333333333333333333333333333333333")
	a := ethtypes.Addr("0x4444444444444444444444444444444444444444")
	b := ethtypes.Addr("0x5555555555555555555555555555555555555555")
	r3 := &chain.Receipt{Status: true, Transfers: []chain.Transfer{
		{Asset: chain.ETHAsset, From: c, To: a, Amount: ethtypes.Ether(5), Depth: 1},
		{Asset: chain.ETHAsset, From: c, To: b, Amount: ethtypes.Ether(5), Depth: 1},
	}}
	txc := &chain.Transaction{From: tx.From, To: &c}
	if got := cl.Classify(txc, r3); len(got) != 0 {
		t.Errorf("50/50 split classified: %+v", got)
	}
	// Same recipient twice is not an operator/affiliate split.
	r4 := &chain.Receipt{Status: true, Transfers: []chain.Transfer{
		{Asset: chain.ETHAsset, From: c, To: a, Amount: ethtypes.Ether(2), Depth: 1},
		{Asset: chain.ETHAsset, From: c, To: a, Amount: ethtypes.Ether(8), Depth: 1},
	}}
	if got := cl.Classify(txc, r4); len(got) != 0 {
		t.Errorf("self-pair classified: %+v", got)
	}
	// ERC-721 two-transfer flows are never ratio splits.
	nft := chain.Asset{Kind: chain.AssetERC721, Token: a, TokenID: 1}
	r5 := &chain.Receipt{Status: true, Transfers: []chain.Transfer{
		{Asset: nft, From: c, To: a, Amount: ethtypes.NewWei(1), Depth: 1},
		{Asset: nft, From: c, To: b, Amount: ethtypes.NewWei(1), Depth: 1},
	}}
	if got := cl.Classify(txc, r5); len(got) != 0 {
		t.Errorf("NFT pair classified: %+v", got)
	}
}

func TestClassifierRatioMatch(t *testing.T) {
	cl := core.Classifier{}
	c := ethtypes.Addr("0x3333333333333333333333333333333333333333")
	op := ethtypes.Addr("0x4444444444444444444444444444444444444444")
	aff := ethtypes.Addr("0x5555555555555555555555555555555555555555")
	victim := ethtypes.Addr("0x6666666666666666666666666666666666666666")

	mk := func(opAmt, affAmt ethtypes.Wei) []core.Split {
		tx := &chain.Transaction{From: victim, To: &c, Value: opAmt.Add(affAmt)}
		r := &chain.Receipt{Status: true, TxHash: ethtypes.Hash{9}, Timestamp: time.Now(), Transfers: []chain.Transfer{
			{Asset: chain.ETHAsset, From: victim, To: c, Amount: opAmt.Add(affAmt)},
			{Asset: chain.ETHAsset, From: c, To: op, Amount: opAmt, Depth: 1},
			{Asset: chain.ETHAsset, From: c, To: aff, Amount: affAmt, Depth: 1},
		}}
		return cl.Classify(tx, r)
	}
	// 17.5 / 82.5 matches.
	v := ethtypes.Ether(40)
	got := mk(v.MulDiv(175, 1000), v.MulDiv(825, 1000))
	if len(got) != 1 {
		t.Fatalf("17.5%% split not classified")
	}
	if got[0].RatioPM != 175 || got[0].Operator != op || got[0].Affiliate != aff || got[0].Payer != c {
		t.Errorf("split fields wrong: %+v", got[0])
	}
	// Dust from integer division still matches via tolerance.
	odd := ethtypes.NewWei(1_000_000_007)
	opAmt := odd.MulDiv(200, 1000)
	got = mk(opAmt, odd.Sub(opAmt))
	if len(got) != 1 || got[0].RatioPM != 200 {
		t.Errorf("dusty 20%% split not classified: %+v", got)
	}
	// 23% does not match any known ratio.
	got = mk(v.MulDiv(230, 1000), v.MulDiv(770, 1000))
	if len(got) != 0 {
		t.Errorf("23%% split classified: %+v", got)
	}
}

func TestValidationFindsNoFalsePositives(t *testing.T) {
	w := sharedWorld
	ds := buildDataset(t, w)
	v := core.Validator{Source: core.LocalSource{Chain: w.Chain}, SamplePerAccount: 10}
	report, err := v.Validate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.FalsePositives) != 0 {
		t.Errorf("validation flagged %d false positives", len(report.FalsePositives))
	}
	if report.TxReviewed == 0 || report.ReviewedFraction <= 0 {
		t.Error("validation reviewed nothing")
	}
	if report.ContractsReviewed != len(ds.Contracts) {
		t.Errorf("reviewed %d contracts of %d", report.ContractsReviewed, len(ds.Contracts))
	}
}

func TestExpansionGateAblation(t *testing.T) {
	w := sharedWorld
	// With the gate disabled AND a global contract scan, the colliding
	// benign splitters are misclassified — demonstrating why the
	// paper's expansion follows connectivity. We emulate the global
	// scan by feeding splitter addresses as extra "reports".
	cl := core.Classifier{}
	caught := 0
	for _, neg := range w.Truth.CollidingSplitters {
		for _, h := range w.Chain.TransactionsOf(neg) {
			tx, _ := w.Chain.Transaction(h)
			r, _ := w.Chain.Receipt(h)
			if len(cl.Classify(tx, r)) > 0 {
				caught++
				break
			}
		}
	}
	if caught == 0 {
		t.Fatal("colliding splitters produce no classifier hits; negatives are toothless")
	}
	// The real pipeline, however, never admits them (verified in
	// TestPipelinePrecisionAndRecall).
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	w := sharedWorld
	ds := buildDataset(t, w)
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != ds.Stats() {
		t.Errorf("round trip stats: %+v vs %+v", back.Stats(), ds.Stats())
	}
	if back.SeedStats != ds.SeedStats {
		t.Errorf("seed stats: %+v vs %+v", back.SeedStats, ds.SeedStats)
	}
	// Spot-check one split.
	for h, splits := range ds.Splits {
		got, ok := back.Splits[h]
		if !ok || len(got) != len(splits) {
			t.Fatalf("split tx %s lost in round trip", h)
		}
		if got[0].Operator != splits[0].Operator || got[0].RatioPM != splits[0].RatioPM {
			t.Fatalf("split fields changed: %+v vs %+v", got[0], splits[0])
		}
		break
	}
}

func TestPipelineDeterminism(t *testing.T) {
	w := sharedWorld
	ds1 := buildDataset(t, w)
	ds2 := buildDataset(t, w)
	if ds1.Stats() != ds2.Stats() || ds1.SeedStats != ds2.SeedStats {
		t.Errorf("pipeline runs differ: %+v vs %+v", ds1.Stats(), ds2.Stats())
	}
}

func TestDatasetCSVExport(t *testing.T) {
	ds := buildDataset(t, sharedWorld)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	sections := strings.Split(out, "\n\n")
	if len(sections) != 3 {
		t.Fatalf("CSV has %d sections, want 3", len(sections))
	}
	if !strings.HasPrefix(sections[0], "role,address,found_via") {
		t.Error("accounts header missing")
	}
	if !strings.HasPrefix(sections[1], "contract,found_via,sources") {
		t.Error("contracts header missing")
	}
	if !strings.HasPrefix(sections[2], "tx,time,contract") {
		t.Error("splits header missing")
	}
	// Row counts line up with the dataset (header + one line per row).
	countLines := func(section string) int {
		return len(strings.Split(strings.TrimSpace(section), "\n"))
	}
	if got, want := countLines(sections[0]), len(ds.Operators)+len(ds.Affiliates)+1; got != want {
		t.Errorf("account rows = %d, want %d", got, want)
	}
	if got, want := countLines(sections[1]), len(ds.Contracts)+1; got != want {
		t.Errorf("contract rows = %d, want %d", got, want)
	}
}

// exportJSON builds a dataset at the given concurrency (optionally
// behind a fetch cache) and returns its canonical JSON export.
func exportJSON(t *testing.T, w *worldgen.World, workers, cacheSize int) []byte {
	t.Helper()
	var src core.ChainSource = core.LocalSource{Chain: w.Chain}
	if cacheSize > 0 {
		src = fetchcache.New(src, cacheSize, nil)
	}
	p := &core.Pipeline{
		Source:      src,
		Labels:      w.Labels,
		Concurrency: workers,
	}
	ds, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConcurrentBuildIsByteIdentical is the tentpole guarantee: the
// parallel frontier scanner is speculative-but-deterministic, so the
// exported dataset must match the serial build byte for byte — with
// and without the fetch cache interposed.
func TestConcurrentBuildIsByteIdentical(t *testing.T) {
	w := sharedWorld
	serial := exportJSON(t, w, 1, 0)
	if len(serial) == 0 {
		t.Fatal("empty serial export")
	}
	for _, tc := range []struct {
		name             string
		workers, cacheSz int
	}{
		{"workers=8", 8, 0},
		{"workers=8+cache", 8, 1 << 12},
		{"workers=3", 3, 0},
		{"workers=1+cache", 1, 1 << 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := exportJSON(t, w, tc.workers, tc.cacheSz)
			if !bytes.Equal(got, serial) {
				t.Errorf("export differs from serial build (%d vs %d bytes)", len(got), len(serial))
			}
		})
	}
}
