package core_test

import (
	"math/big"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
)

// splitReceipt builds a two-transfer profit-sharing flow paying
// opAmount to the operator and affAmount to the affiliate.
func splitReceipt(opAmount, affAmount ethtypes.Wei) (*chain.Transaction, *chain.Receipt) {
	contract := ethtypes.Addr("0x00000000000000000000000000000000000000cc")
	payer := ethtypes.Addr("0x0000000000000000000000000000000000000001")
	operator := ethtypes.Addr("0x0000000000000000000000000000000000000002")
	affiliate := ethtypes.Addr("0x0000000000000000000000000000000000000003")
	tx := &chain.Transaction{From: payer, To: &contract}
	r := &chain.Receipt{Status: true, Transfers: []chain.Transfer{
		{Asset: chain.ETHAsset, From: payer, To: operator, Amount: opAmount, Depth: 1},
		{Asset: chain.ETHAsset, From: payer, To: affiliate, Amount: affAmount, Depth: 1},
	}}
	return tx, r
}

// TestClassifierMatchesEveryPaperRatio is the regression table over the
// §4.3 ratio set: for each paper per-mille share, an exact-proportion
// split must classify to exactly that ratio.
func TestClassifierMatchesEveryPaperRatio(t *testing.T) {
	cl := core.Classifier{}
	for _, pm := range evmstatic.PaperRatiosPM {
		total := ethtypes.Ether(1000) // divisible by every per-mille share
		op := total.MulDiv(pm, 1000)
		aff := total.Sub(op)
		tx, r := splitReceipt(op, aff)
		splits := cl.Classify(tx, r)
		if len(splits) != 1 {
			t.Errorf("ratio %d‰: got %d splits, want 1", pm, len(splits))
			continue
		}
		if splits[0].RatioPM != pm {
			t.Errorf("ratio %d‰: classified as %d‰", pm, splits[0].RatioPM)
		}
		if splits[0].OperatorAmount.Cmp(op) != 0 {
			t.Errorf("ratio %d‰: operator amount %s, want %s", pm, splits[0].OperatorAmount, op)
		}
	}
}

// TestClassifierRejectsZeroAmountShare guards the amount-bounds check:
// a zero transfer must never classify, even when an ablation sweep puts
// 0 in the accepted ratio set (where 0‰ would otherwise match it).
func TestClassifierRejectsZeroAmountShare(t *testing.T) {
	for _, cl := range []core.Classifier{
		{},
		{RatiosPM: []int64{0, 200}},
	} {
		tx, r := splitReceipt(ethtypes.NewWei(0), ethtypes.Ether(4))
		if got := cl.Classify(tx, r); len(got) != 0 {
			t.Errorf("RatiosPM=%v: zero-amount transfer classified: %+v", cl.RatiosPM, got)
		}
	}
}

// TestClassifierRejectsOverflowingAmount guards against garbled records
// whose amounts cannot fit an EVM word: the pair arithmetic must not
// admit them as a ratio match.
func TestClassifierRejectsOverflowingAmount(t *testing.T) {
	cl := core.Classifier{}
	over := ethtypes.WeiFromBig(new(big.Int).Lsh(big.NewInt(1), 257))
	// 2^257 against 2^255 * 4... construct a pair in exact 20/80 shape
	// but at overflowing magnitude.
	quarter := ethtypes.WeiFromBig(new(big.Int).Lsh(big.NewInt(1), 255))
	tx, r := splitReceipt(quarter, over.Sub(quarter))
	if got := cl.Classify(tx, r); len(got) != 0 {
		t.Errorf("overflowing transfer pair classified: %+v", got)
	}
}
