package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/ethtypes"
)

// radarCheckpointVersion is the on-disk format of a head-following
// radar checkpoint. Version 3 extends the pipeline's version-2 shape
// with a head cursor and an opaque daemon-state blob; the pipeline
// loader keeps refusing anything but version 2, so the two consumers
// can never resume from each other's files by accident.
const radarCheckpointVersion = 3

// RadarCheckpoint is the persisted state of a head-following radar at
// a block boundary: the dataset so far, the classified-transaction
// set, the last block number folded in, and the daemon's own extension
// blob (incremental cluster snapshot, pending retries, reorg ring) —
// opaque to core. Together with the (replayable) chain these determine
// the radar's entire future output, which is what makes resume
// byte-identical to an uninterrupted run.
type RadarCheckpoint struct {
	Dataset    *Dataset
	Classified map[ethtypes.Hash]bool
	Head       uint64
	Radar      json.RawMessage
}

// MarshalRadarCheckpoint serializes cp to its on-disk byte form. The
// radar also uses these bytes as in-memory rollback restore points, so
// restoring one must be equivalent to a resume from disk.
func MarshalRadarCheckpoint(cp *RadarCheckpoint) ([]byte, error) {
	var ds bytes.Buffer
	if err := cp.Dataset.WriteJSON(&ds); err != nil {
		return nil, fmt.Errorf("core: serializing radar checkpoint dataset: %w", err)
	}
	head := cp.Head
	out := checkpointJSON{
		Version:    radarCheckpointVersion,
		Dataset:    json.RawMessage(ds.Bytes()),
		Classified: sortedHashHex(cp.Classified),
		Head:       &head,
		Radar:      cp.Radar,
	}
	buf, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return nil, fmt.Errorf("core: serializing radar checkpoint: %w", err)
	}
	return buf, nil
}

// WriteRadarCheckpoint serializes cp to path atomically (temp file +
// fsync + rename, like the pipeline checkpoint writer) and returns the
// byte length written.
func WriteRadarCheckpoint(path string, cp *RadarCheckpoint) (int64, error) {
	buf, err := MarshalRadarCheckpoint(cp)
	if err != nil {
		return 0, err
	}
	return writeFileAtomic(path, buf)
}

// ReadRadarCheckpoint decodes a radar checkpoint from r.
func ReadRadarCheckpoint(r io.Reader) (*RadarCheckpoint, error) {
	var in checkpointJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding radar checkpoint: %w", err)
	}
	if in.Version != radarCheckpointVersion {
		return nil, fmt.Errorf("core: radar checkpoint version %d, want %d", in.Version, radarCheckpointVersion)
	}
	if in.Head == nil {
		return nil, fmt.Errorf("core: radar checkpoint missing head_cursor")
	}
	ds, err := ReadJSON(bytes.NewReader(in.Dataset))
	if err != nil {
		return nil, fmt.Errorf("core: radar checkpoint dataset: %w", err)
	}
	cp := &RadarCheckpoint{
		Dataset:    ds,
		Classified: make(map[ethtypes.Hash]bool, len(in.Classified)),
		Head:       *in.Head,
		Radar:      in.Radar,
	}
	for _, s := range in.Classified {
		h, err := ethtypes.HexToHash(s)
		if err != nil {
			return nil, fmt.Errorf("core: radar checkpoint classified tx: %w", err)
		}
		cp.Classified[h] = true
	}
	return cp, nil
}

// LoadRadarCheckpoint opens path and decodes it; a missing file
// returns (nil, nil) so a resume run with no checkpoint starts fresh.
func LoadRadarCheckpoint(path string) (*RadarCheckpoint, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: opening radar checkpoint: %w", err)
	}
	defer f.Close()
	return ReadRadarCheckpoint(f)
}
