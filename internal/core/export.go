package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
)

// The JSON shapes below are the release format of the dataset (the
// paper open-sources its dataset in a comparable layout).

type datasetJSON struct {
	Generated  time.Time         `json:"generated,omitempty"`
	SeedStats  Stats             `json:"seed_stats"`
	Contracts  []contractJSON    `json:"contracts"`
	Operators  []accountJSON     `json:"operators"`
	Affiliates []accountJSON     `json:"affiliates"`
	Splits     []splitRecordJSON `json:"profit_sharing_transactions"`
}

type contractJSON struct {
	Address      string   `json:"address"`
	Found        string   `json:"found_via"`
	Sources      []string `json:"sources,omitempty"`
	FirstSeen    string   `json:"first_seen"`
	LastSeen     string   `json:"last_seen"`
	TxCount      int      `json:"tx_count"`
	Fingerprints []string `json:"fingerprints,omitempty"`
	Flagged      bool     `json:"static_flagged,omitempty"`
}

type accountJSON struct {
	Address   string `json:"address"`
	Found     string `json:"found_via"`
	FirstSeen string `json:"first_seen"`
	LastSeen  string `json:"last_seen"`
}

type splitRecordJSON struct {
	Tx     string      `json:"tx"`
	Splits []splitJSON `json:"splits"`
}

type splitJSON struct {
	Time      string `json:"time"`
	Contract  string `json:"contract"`
	Payer     string `json:"payer"`
	Operator  string `json:"operator"`
	Affiliate string `json:"affiliate"`
	AssetKind string `json:"asset_kind"`
	Token     string `json:"token,omitempty"`
	OpAmount  string `json:"operator_amount"`
	AffAmount string `json:"affiliate_amount"`
	RatioPM   int64  `json:"operator_ratio_pm"`
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	out := datasetJSON{SeedStats: d.SeedStats}
	for _, c := range d.SortedContracts() {
		out.Contracts = append(out.Contracts, contractJSON{
			Address:      c.Address.Hex(),
			Found:        string(c.Found),
			Sources:      c.Sources,
			FirstSeen:    c.FirstSeen.Format(time.RFC3339),
			LastSeen:     c.LastSeen.Format(time.RFC3339),
			TxCount:      c.TxCount,
			Fingerprints: c.Fingerprints,
			Flagged:      c.StaticFlagged,
		})
	}
	for _, a := range d.SortedOperators() {
		out.Operators = append(out.Operators, toAccountJSON(a))
	}
	for _, a := range d.SortedAffiliates() {
		out.Affiliates = append(out.Affiliates, toAccountJSON(a))
	}
	for _, h := range d.SortedSplitTxs() {
		rec := splitRecordJSON{Tx: h.Hex()}
		for _, sp := range d.Splits[h] {
			sj := splitJSON{
				Time:      sp.Time.Format(time.RFC3339),
				Contract:  sp.Contract.Hex(),
				Payer:     sp.Payer.Hex(),
				Operator:  sp.Operator.Hex(),
				Affiliate: sp.Affiliate.Hex(),
				AssetKind: sp.Asset.Kind.String(),
				OpAmount:  sp.OperatorAmount.String(),
				AffAmount: sp.AffiliateAmount.String(),
				RatioPM:   sp.RatioPM,
			}
			if sp.Asset.Kind != chain.AssetETH {
				sj.Token = sp.Asset.Token.Hex()
			}
			rec.Splits = append(rec.Splits, sj)
		}
		out.Splits = append(out.Splits, rec)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a dataset written by WriteJSON. Split amounts
// and timestamps round-trip; receipts are not needed.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var in datasetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding dataset: %w", err)
	}
	ds := NewDataset()
	ds.SeedStats = in.SeedStats
	for _, c := range in.Contracts {
		addr, err := ethtypes.HexToAddress(c.Address)
		if err != nil {
			return nil, err
		}
		first, err := time.Parse(time.RFC3339, c.FirstSeen)
		if err != nil {
			return nil, err
		}
		last, err := time.Parse(time.RFC3339, c.LastSeen)
		if err != nil {
			return nil, err
		}
		ds.Contracts[addr] = &ContractRecord{
			Address: addr, Found: Discovery(c.Found), Sources: c.Sources,
			FirstSeen: first, LastSeen: last, TxCount: c.TxCount,
			Fingerprints: c.Fingerprints, StaticFlagged: c.Flagged,
		}
	}
	readAccounts := func(list []accountJSON, into map[ethtypes.Address]*AccountRecord) error {
		for _, a := range list {
			addr, err := ethtypes.HexToAddress(a.Address)
			if err != nil {
				return err
			}
			first, err := time.Parse(time.RFC3339, a.FirstSeen)
			if err != nil {
				return err
			}
			last, err := time.Parse(time.RFC3339, a.LastSeen)
			if err != nil {
				return err
			}
			into[addr] = &AccountRecord{Address: addr, Found: Discovery(a.Found), FirstSeen: first, LastSeen: last}
		}
		return nil
	}
	if err := readAccounts(in.Operators, ds.Operators); err != nil {
		return nil, err
	}
	if err := readAccounts(in.Affiliates, ds.Affiliates); err != nil {
		return nil, err
	}
	for _, rec := range in.Splits {
		h, err := ethtypes.HexToHash(rec.Tx)
		if err != nil {
			return nil, err
		}
		for _, sj := range rec.Splits {
			sp, err := fromSplitJSON(h, sj)
			if err != nil {
				return nil, err
			}
			ds.Splits[h] = append(ds.Splits[h], sp)
		}
	}
	return ds, nil
}

func toAccountJSON(a *AccountRecord) accountJSON {
	return accountJSON{
		Address:   a.Address.Hex(),
		Found:     string(a.Found),
		FirstSeen: a.FirstSeen.Format(time.RFC3339),
		LastSeen:  a.LastSeen.Format(time.RFC3339),
	}
}

func fromSplitJSON(h ethtypes.Hash, sj splitJSON) (Split, error) {
	sp := Split{TxHash: h, RatioPM: sj.RatioPM}
	var err error
	if sp.Time, err = time.Parse(time.RFC3339, sj.Time); err != nil {
		return sp, err
	}
	if sp.Contract, err = ethtypes.HexToAddress(sj.Contract); err != nil {
		return sp, err
	}
	if sp.Payer, err = ethtypes.HexToAddress(sj.Payer); err != nil {
		return sp, err
	}
	if sp.Operator, err = ethtypes.HexToAddress(sj.Operator); err != nil {
		return sp, err
	}
	if sp.Affiliate, err = ethtypes.HexToAddress(sj.Affiliate); err != nil {
		return sp, err
	}
	switch sj.AssetKind {
	case "ETH":
		sp.Asset = chain.ETHAsset
	case "ERC20", "ERC721":
		kind := chain.AssetERC20
		if sj.AssetKind == "ERC721" {
			kind = chain.AssetERC721
		}
		token, err := ethtypes.HexToAddress(sj.Token)
		if err != nil {
			return sp, err
		}
		sp.Asset = chain.Asset{Kind: kind, Token: token}
	default:
		return sp, fmt.Errorf("core: unknown asset kind %q", sj.AssetKind)
	}
	var opAmt, affAmt weiText
	if err := opAmt.parse(sj.OpAmount); err != nil {
		return sp, err
	}
	if err := affAmt.parse(sj.AffAmount); err != nil {
		return sp, err
	}
	sp.OperatorAmount = opAmt.wei
	sp.AffiliateAmount = affAmt.wei
	return sp, nil
}

// weiText parses decimal wei strings.
type weiText struct{ wei ethtypes.Wei }

func (w *weiText) parse(s string) error {
	var ok bool
	w.wei, ok = parseWei(s)
	if !ok {
		return fmt.Errorf("core: bad amount %q", s)
	}
	return nil
}

func parseWei(s string) (ethtypes.Wei, bool) {
	b, ok := newBigFromDecimal(s)
	if !ok {
		return ethtypes.Wei{}, false
	}
	return ethtypes.WeiFromBig(b), true
}

// newBigFromDecimal parses a base-10 integer.
func newBigFromDecimal(s string) (*big.Int, bool) {
	return new(big.Int).SetString(s, 10)
}
