package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/obs"
)

// Pipeline runs the four-step dataset construction of §5.1.
type Pipeline struct {
	Source     ChainSource
	Labels     *labels.Directory
	Classifier Classifier
	// MaxIterations bounds the expansion loop as a safety valve; the
	// loop normally reaches a fixpoint long before (default 50).
	MaxIterations int
	// DisableExpansionGate admits any contract whose transactions
	// match the split pattern, even when reached from nowhere — used
	// only by the ablation bench, where the pipeline additionally
	// scans unconnected contracts.
	DisableExpansionGate bool
	// StaticPreFilter statically analyzes candidate bytecode (when
	// Source implements CodeSource) and skips contracts that provably
	// cannot split value, saving their full history scan. Purely an
	// optimization: it never changes what the pipeline admits.
	StaticPreFilter bool
	// Concurrency sets the number of parallel transaction+receipt
	// fetches per account scan. It matters when Source is a remote
	// JSON-RPC endpoint (each fetch is a network round trip); 0 or 1
	// keeps everything sequential. Classification itself stays
	// deterministic regardless.
	Concurrency int
	// Logger receives structured progress events. When nil, the legacy
	// Trace callback (if any) is adapted into a logger, so existing
	// Trace users keep working unchanged.
	Logger *obs.Logger
	// Metrics, when set, receives per-stage counters, gauges, and
	// histograms (see the README's Observability section for names).
	Metrics *obs.Registry
	// Spans, when set, records hierarchical tracing spans for the build
	// and each expansion iteration.
	Spans *obs.Recorder
	// Trace, when set, receives progress lines. Deprecated shim: new
	// code should set Logger; Trace is wrapped in an obs.Logger adapter
	// when Logger is nil.
	Trace func(format string, args ...any)

	traceOnce sync.Once
	traceLog  *obs.Logger
	pm        pipelineMetrics
}

// pipelineMetrics caches the pipeline's instruments so hot loops touch
// only atomics. All fields are nil (no-op) when Metrics is unset.
type pipelineMetrics struct {
	iterations      *obs.Counter
	frontier        *obs.Gauge
	accountsScanned *obs.Counter
	txFetched       *obs.Counter
	txClassified    *obs.Counter
	prefilterSkips  *obs.Counter
	splits          *obs.CounterVec
	contracts       *obs.CounterVec
	fetchBatch      *obs.Histogram
	fetchWorkers    *obs.Gauge
}

func newPipelineMetrics(r *obs.Registry) pipelineMetrics {
	return pipelineMetrics{
		iterations:      r.Counter("daas_pipeline_iterations_total", "expansion iterations executed (§5.1 step 4)"),
		frontier:        r.Gauge("daas_pipeline_frontier_accounts", "accounts in the most recent expansion frontier"),
		accountsScanned: r.Counter("daas_pipeline_accounts_scanned_total", "operator/affiliate accounts whose histories were walked"),
		txFetched:       r.Counter("daas_pipeline_tx_fetched_total", "transactions (with receipts) fetched from the chain source"),
		txClassified:    r.Counter("daas_pipeline_tx_classified_total", "transactions run through the profit-sharing classifier"),
		prefilterSkips:  r.Counter("daas_pipeline_prefilter_skips_total", "candidate contracts skipped by the static pre-filter"),
		splits:          r.CounterVec("daas_classifier_splits_total", "profit-sharing splits matched per operator-share ratio (§4.3)", "ratio_pm"),
		contracts:       r.CounterVec("daas_pipeline_contracts_admitted_total", "profit-sharing contracts admitted to the dataset", "discovery"),
		fetchBatch:      r.Histogram("daas_pipeline_fetch_batch_size", "transactions per fetchAll batch", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}),
		fetchWorkers:    r.Gauge("daas_pipeline_fetch_workers", "parallel fetch workers used by the most recent batch"),
	}
}

// logger returns the structured logger, adapting the legacy Trace
// callback when no Logger is set. A nil result is safe to log to.
func (p *Pipeline) logger() *obs.Logger {
	if p.Logger != nil {
		return p.Logger
	}
	if p.Trace == nil {
		return nil
	}
	p.traceOnce.Do(func() { p.traceLog = obs.NewCallback(p.Trace) })
	return p.traceLog
}

// fetched pairs one transaction with its receipt.
type fetched struct {
	tx  *chain.Transaction
	rec *chain.Receipt
}

// fetchAll retrieves transactions and receipts for the given hashes,
// in order, using up to Concurrency parallel fetchers.
func (p *Pipeline) fetchAll(hashes []ethtypes.Hash) ([]fetched, error) {
	out := make([]fetched, len(hashes))
	if len(hashes) > 0 {
		p.pm.fetchBatch.Observe(float64(len(hashes)))
	}
	workers := p.Concurrency
	if workers <= 1 || len(hashes) < 2 {
		p.pm.fetchWorkers.Set(1)
		for i, h := range hashes {
			pair, err := p.fetchOne(h)
			if err != nil {
				return nil, err
			}
			out[i] = pair
		}
		return out, nil
	}
	if workers > len(hashes) {
		workers = len(hashes)
	}
	p.pm.fetchWorkers.Set(int64(workers))
	var wg sync.WaitGroup
	idx := make(chan int, len(hashes))
	for i := range hashes {
		idx <- i
	}
	close(idx)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				pair, err := p.fetchOne(hashes[i])
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = pair
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fetchOne retrieves one transaction+receipt pair, wrapping any failure
// with the hash and method so a failed worker is attributable.
func (p *Pipeline) fetchOne(h ethtypes.Hash) (fetched, error) {
	tx, err := p.Source.Transaction(h)
	if err != nil {
		return fetched{}, fmt.Errorf("core: fetching transaction %s: %w", h, err)
	}
	rec, err := p.Source.Receipt(h)
	if err != nil {
		return fetched{}, fmt.Errorf("core: fetching receipt %s: %w", h, err)
	}
	p.pm.txFetched.Inc()
	return fetched{tx, rec}, nil
}

// classify runs the classifier over one transaction, recording
// per-ratio match outcomes.
func (p *Pipeline) classify(tx *chain.Transaction, r *chain.Receipt) []Split {
	p.pm.txClassified.Inc()
	splits := p.Classifier.Classify(tx, r)
	for _, sp := range splits {
		p.pm.splits.With(strconv.FormatInt(sp.RatioPM, 10)).Inc()
	}
	return splits
}

// Build runs seed collection, seed dataset construction, and iterative
// expansion, returning the final dataset.
func (p *Pipeline) Build() (*Dataset, error) {
	if p.Source == nil || p.Labels == nil {
		return nil, fmt.Errorf("core: pipeline needs a Source and Labels")
	}
	p.pm = newPipelineMetrics(p.Metrics)
	ctx := context.Background()
	if p.Spans != nil {
		ctx = obs.WithRecorder(ctx, p.Spans)
	}
	ctx, root := obs.Start(ctx, "pipeline.build")
	defer root.End()

	ds := NewDataset()
	scannedAccounts := make(map[ethtypes.Address]bool)
	classified := make(map[ethtypes.Hash]bool)

	// Step 1: collect phishing reports from the public sources and keep
	// the contracts.
	_, collect := obs.Start(ctx, "pipeline.seed.collect")
	var seedContracts []ethtypes.Address
	for _, addr := range p.Labels.AllPhishing() {
		isContract, err := p.Source.IsContract(addr)
		if err != nil {
			collect.End()
			return nil, fmt.Errorf("core: step 1: %w", err)
		}
		if isContract {
			seedContracts = append(seedContracts, addr)
		}
	}
	collect.SetAttr("contracts", len(seedContracts))
	collect.End()
	p.logger().Info("step 1: labeled phishing contracts collected", "contracts", len(seedContracts))

	// Step 2 + 3: identify profit-sharing contracts among the reports
	// and extract operator/affiliate accounts — the seed dataset.
	_, absorb := obs.Start(ctx, "pipeline.seed.absorb")
	for _, addr := range seedContracts {
		if err := p.absorbContract(ds, addr, DiscoverySeed, classified); err != nil {
			absorb.End()
			return nil, fmt.Errorf("core: step 2: %w", err)
		}
	}
	ds.SeedStats = ds.Stats()
	absorb.SetAttr("contracts", ds.SeedStats.Contracts)
	absorb.SetAttr("profit_txs", ds.SeedStats.ProfitTxs)
	absorb.End()
	p.logger().Info("step 3: seed dataset built",
		"contracts", ds.SeedStats.Contracts,
		"operators", ds.SeedStats.Operators,
		"affiliates", ds.SeedStats.Affiliates,
		"profit_txs", ds.SeedStats.ProfitTxs)

	// Step 4: snowball expansion until fixpoint.
	for iter := 0; iter < p.maxIter(); iter++ {
		before := ds.Stats()
		// Scan the history of every not-yet-scanned operator and
		// affiliate account for profit-sharing transactions invoking
		// unknown contracts.
		frontier := p.unscannedAccounts(ds, scannedAccounts)
		p.pm.frontier.Set(int64(len(frontier)))
		if len(frontier) == 0 {
			break
		}
		p.pm.iterations.Inc()
		_, iterSpan := obs.Start(ctx, "pipeline.expand.iter")
		iterSpan.SetAttr("iter", iter+1)
		iterSpan.SetAttr("frontier", len(frontier))
		for _, acct := range frontier {
			scannedAccounts[acct] = true
			p.pm.accountsScanned.Inc()
			hashes, err := p.Source.TransactionsOf(acct)
			if err != nil {
				iterSpan.End()
				return nil, fmt.Errorf("core: step 4: %w", err)
			}
			fresh := hashes[:0:0]
			for _, h := range hashes {
				if !classified[h] {
					fresh = append(fresh, h)
				}
			}
			pairs, err := p.fetchAll(fresh)
			if err != nil {
				iterSpan.End()
				return nil, err
			}
			for pi, h := range fresh {
				if classified[h] {
					continue // classified by an earlier absorb this pass
				}
				tx, r := pairs[pi].tx, pairs[pi].rec
				splits := p.classify(tx, r)
				if len(splits) == 0 {
					continue
				}
				contract := splits[0].Contract
				if _, known := ds.Contracts[contract]; known {
					// Known contract, possibly new counterparties.
					p.recordSplits(ds, splits, DiscoveryExpansion)
					classified[h] = true
					continue
				}
				// Expansion gate: the invoked contract must have
				// interacted with an account already in the dataset —
				// here, the frontier account whose history surfaced it.
				if !p.DisableExpansionGate {
					if !p.interactsWithDataset(ds, splits, acct) {
						continue
					}
				}
				if err := p.absorbContract(ds, contract, DiscoveryExpansion, classified); err != nil {
					iterSpan.End()
					return nil, err
				}
			}
		}
		after := ds.Stats()
		iterSpan.SetAttr("contracts", after.Contracts)
		iterSpan.SetAttr("profit_txs", after.ProfitTxs)
		iterSpan.End()
		p.logger().Info("step 4: expansion iteration finished",
			"iter", iter+1,
			"frontier", len(frontier),
			"contracts", after.Contracts,
			"operators", after.Operators,
			"affiliates", after.Affiliates,
			"profit_txs", after.ProfitTxs)
		if after == before {
			break
		}
	}
	return ds, nil
}

// unscannedAccounts returns dataset operators and affiliates whose
// histories have not been walked yet, in deterministic order.
func (p *Pipeline) unscannedAccounts(ds *Dataset, scanned map[ethtypes.Address]bool) []ethtypes.Address {
	var out []ethtypes.Address
	for _, rec := range ds.SortedOperators() {
		if !scanned[rec.Address] {
			out = append(out, rec.Address)
		}
	}
	for _, rec := range ds.SortedAffiliates() {
		if !scanned[rec.Address] {
			out = append(out, rec.Address)
		}
	}
	return out
}

// interactsWithDataset checks the expansion gate: some party of the
// split transaction besides the invoked contract is already a DaaS
// account (the frontier account itself qualifies by construction; the
// check also accepts splits paying known accounts).
func (p *Pipeline) interactsWithDataset(ds *Dataset, splits []Split, frontier ethtypes.Address) bool {
	for _, sp := range splits {
		if sp.Operator == frontier || sp.Affiliate == frontier || sp.Payer == frontier {
			return true
		}
		if ds.IsDaaSAccount(sp.Operator) || ds.IsDaaSAccount(sp.Affiliate) {
			return true
		}
	}
	return false
}

// absorbContract classifies the full history of a candidate contract;
// if any profit-sharing transaction is found the contract and its
// split counterparties join the dataset.
func (p *Pipeline) absorbContract(ds *Dataset, addr ethtypes.Address, found Discovery, classified map[ethtypes.Hash]bool) error {
	if _, known := ds.Contracts[addr]; known {
		return nil
	}
	if p.staticSkip(addr) {
		p.pm.prefilterSkips.Inc()
		p.logger().Debug("static pre-filter: contract cannot split value, skipping history scan",
			"contract", addr.Short())
		return nil
	}
	hashes, err := p.Source.TransactionsOf(addr)
	if err != nil {
		return err
	}
	var rec *ContractRecord
	pairs, err := p.fetchAll(hashes)
	if err != nil {
		return err
	}
	for pi, h := range hashes {
		tx, r := pairs[pi].tx, pairs[pi].rec
		splits := p.classify(tx, r)
		// Only splits invoked through this contract count toward it.
		var own []Split
		for _, sp := range splits {
			if sp.Contract == addr {
				own = append(own, sp)
			}
		}
		if len(own) == 0 {
			continue
		}
		if rec == nil {
			rec = &ContractRecord{Address: addr, Found: found, FirstSeen: r.Timestamp, LastSeen: r.Timestamp}
			ds.Contracts[addr] = rec
			p.pm.contracts.With(string(found)).Inc()
			if found == DiscoverySeed {
				for _, l := range p.Labels.Of(addr) {
					rec.Sources = append(rec.Sources, string(l.Source))
				}
			}
		}
		if r.Timestamp.Before(rec.FirstSeen) {
			rec.FirstSeen = r.Timestamp
		}
		if r.Timestamp.After(rec.LastSeen) {
			rec.LastSeen = r.Timestamp
		}
		rec.TxCount++
		classified[h] = true
		p.recordSplits(ds, own, found)
	}
	return nil
}

// recordSplits stores splits and registers their operator and
// affiliate accounts.
func (p *Pipeline) recordSplits(ds *Dataset, splits []Split, found Discovery) {
	for _, sp := range splits {
		ds.Splits[sp.TxHash] = append(ds.Splits[sp.TxHash], sp)
		touchAccount(ds.Operators, sp.Operator, sp.Time, found)
		touchAccount(ds.Affiliates, sp.Affiliate, sp.Time, found)
	}
}

func (p *Pipeline) maxIter() int {
	if p.MaxIterations > 0 {
		return p.MaxIterations
	}
	return 50
}
