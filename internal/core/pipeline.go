package core

import (
	"fmt"
	"sync"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/labels"
)

// Pipeline runs the four-step dataset construction of §5.1.
type Pipeline struct {
	Source     ChainSource
	Labels     *labels.Directory
	Classifier Classifier
	// MaxIterations bounds the expansion loop as a safety valve; the
	// loop normally reaches a fixpoint long before (default 50).
	MaxIterations int
	// DisableExpansionGate admits any contract whose transactions
	// match the split pattern, even when reached from nowhere — used
	// only by the ablation bench, where the pipeline additionally
	// scans unconnected contracts.
	DisableExpansionGate bool
	// StaticPreFilter statically analyzes candidate bytecode (when
	// Source implements CodeSource) and skips contracts that provably
	// cannot split value, saving their full history scan. Purely an
	// optimization: it never changes what the pipeline admits.
	StaticPreFilter bool
	// Concurrency sets the number of parallel transaction+receipt
	// fetches per account scan. It matters when Source is a remote
	// JSON-RPC endpoint (each fetch is a network round trip); 0 or 1
	// keeps everything sequential. Classification itself stays
	// deterministic regardless.
	Concurrency int
	// Trace, when set, receives progress lines.
	Trace func(format string, args ...any)
}

// fetched pairs one transaction with its receipt.
type fetched struct {
	tx  *chain.Transaction
	rec *chain.Receipt
}

// fetchAll retrieves transactions and receipts for the given hashes,
// in order, using up to Concurrency parallel fetchers.
func (p *Pipeline) fetchAll(hashes []ethtypes.Hash) ([]fetched, error) {
	out := make([]fetched, len(hashes))
	workers := p.Concurrency
	if workers <= 1 || len(hashes) < 2 {
		for i, h := range hashes {
			tx, err := p.Source.Transaction(h)
			if err != nil {
				return nil, err
			}
			rec, err := p.Source.Receipt(h)
			if err != nil {
				return nil, err
			}
			out[i] = fetched{tx, rec}
		}
		return out, nil
	}
	if workers > len(hashes) {
		workers = len(hashes)
	}
	var wg sync.WaitGroup
	idx := make(chan int, len(hashes))
	for i := range hashes {
		idx <- i
	}
	close(idx)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				tx, err := p.Source.Transaction(hashes[i])
				if err != nil {
					errs[w] = err
					return
				}
				rec, err := p.Source.Receipt(hashes[i])
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = fetched{tx, rec}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Build runs seed collection, seed dataset construction, and iterative
// expansion, returning the final dataset.
func (p *Pipeline) Build() (*Dataset, error) {
	if p.Source == nil || p.Labels == nil {
		return nil, fmt.Errorf("core: pipeline needs a Source and Labels")
	}
	ds := NewDataset()
	scannedAccounts := make(map[ethtypes.Address]bool)
	classified := make(map[ethtypes.Hash]bool)

	// Step 1: collect phishing reports from the public sources and keep
	// the contracts.
	var seedContracts []ethtypes.Address
	for _, addr := range p.Labels.AllPhishing() {
		isContract, err := p.Source.IsContract(addr)
		if err != nil {
			return nil, fmt.Errorf("core: step 1: %w", err)
		}
		if isContract {
			seedContracts = append(seedContracts, addr)
		}
	}
	p.tracef("step 1: %d labeled phishing contracts", len(seedContracts))

	// Step 2 + 3: identify profit-sharing contracts among the reports
	// and extract operator/affiliate accounts — the seed dataset.
	for _, addr := range seedContracts {
		if err := p.absorbContract(ds, addr, DiscoverySeed, classified); err != nil {
			return nil, fmt.Errorf("core: step 2: %w", err)
		}
	}
	ds.SeedStats = ds.Stats()
	p.tracef("step 3: seed dataset: %+v", ds.SeedStats)

	// Step 4: snowball expansion until fixpoint.
	for iter := 0; iter < p.maxIter(); iter++ {
		before := ds.Stats()
		// Scan the history of every not-yet-scanned operator and
		// affiliate account for profit-sharing transactions invoking
		// unknown contracts.
		frontier := p.unscannedAccounts(ds, scannedAccounts)
		if len(frontier) == 0 {
			break
		}
		for _, acct := range frontier {
			scannedAccounts[acct] = true
			hashes, err := p.Source.TransactionsOf(acct)
			if err != nil {
				return nil, fmt.Errorf("core: step 4: %w", err)
			}
			fresh := hashes[:0:0]
			for _, h := range hashes {
				if !classified[h] {
					fresh = append(fresh, h)
				}
			}
			pairs, err := p.fetchAll(fresh)
			if err != nil {
				return nil, err
			}
			for pi, h := range fresh {
				if classified[h] {
					continue // classified by an earlier absorb this pass
				}
				tx, r := pairs[pi].tx, pairs[pi].rec
				splits := p.Classifier.Classify(tx, r)
				if len(splits) == 0 {
					continue
				}
				contract := splits[0].Contract
				if _, known := ds.Contracts[contract]; known {
					// Known contract, possibly new counterparties.
					p.recordSplits(ds, splits, DiscoveryExpansion)
					classified[h] = true
					continue
				}
				// Expansion gate: the invoked contract must have
				// interacted with an account already in the dataset —
				// here, the frontier account whose history surfaced it.
				if !p.DisableExpansionGate {
					if !p.interactsWithDataset(ds, splits, acct) {
						continue
					}
				}
				if err := p.absorbContract(ds, contract, DiscoveryExpansion, classified); err != nil {
					return nil, err
				}
			}
		}
		after := ds.Stats()
		p.tracef("step 4 iteration %d: %+v", iter+1, after)
		if after == before {
			break
		}
	}
	return ds, nil
}

// unscannedAccounts returns dataset operators and affiliates whose
// histories have not been walked yet, in deterministic order.
func (p *Pipeline) unscannedAccounts(ds *Dataset, scanned map[ethtypes.Address]bool) []ethtypes.Address {
	var out []ethtypes.Address
	for _, rec := range ds.SortedOperators() {
		if !scanned[rec.Address] {
			out = append(out, rec.Address)
		}
	}
	for _, rec := range ds.SortedAffiliates() {
		if !scanned[rec.Address] {
			out = append(out, rec.Address)
		}
	}
	return out
}

// interactsWithDataset checks the expansion gate: some party of the
// split transaction besides the invoked contract is already a DaaS
// account (the frontier account itself qualifies by construction; the
// check also accepts splits paying known accounts).
func (p *Pipeline) interactsWithDataset(ds *Dataset, splits []Split, frontier ethtypes.Address) bool {
	for _, sp := range splits {
		if sp.Operator == frontier || sp.Affiliate == frontier || sp.Payer == frontier {
			return true
		}
		if ds.IsDaaSAccount(sp.Operator) || ds.IsDaaSAccount(sp.Affiliate) {
			return true
		}
	}
	return false
}

// absorbContract classifies the full history of a candidate contract;
// if any profit-sharing transaction is found the contract and its
// split counterparties join the dataset.
func (p *Pipeline) absorbContract(ds *Dataset, addr ethtypes.Address, found Discovery, classified map[ethtypes.Hash]bool) error {
	if _, known := ds.Contracts[addr]; known {
		return nil
	}
	if p.staticSkip(addr) {
		p.tracef("static pre-filter: %s cannot split value, skipping history scan", addr.Short())
		return nil
	}
	hashes, err := p.Source.TransactionsOf(addr)
	if err != nil {
		return err
	}
	var rec *ContractRecord
	pairs, err := p.fetchAll(hashes)
	if err != nil {
		return err
	}
	for pi, h := range hashes {
		tx, r := pairs[pi].tx, pairs[pi].rec
		splits := p.Classifier.Classify(tx, r)
		// Only splits invoked through this contract count toward it.
		var own []Split
		for _, sp := range splits {
			if sp.Contract == addr {
				own = append(own, sp)
			}
		}
		if len(own) == 0 {
			continue
		}
		if rec == nil {
			rec = &ContractRecord{Address: addr, Found: found, FirstSeen: r.Timestamp, LastSeen: r.Timestamp}
			ds.Contracts[addr] = rec
			if found == DiscoverySeed {
				for _, l := range p.Labels.Of(addr) {
					rec.Sources = append(rec.Sources, string(l.Source))
				}
			}
		}
		if r.Timestamp.Before(rec.FirstSeen) {
			rec.FirstSeen = r.Timestamp
		}
		if r.Timestamp.After(rec.LastSeen) {
			rec.LastSeen = r.Timestamp
		}
		rec.TxCount++
		classified[h] = true
		p.recordSplits(ds, own, found)
	}
	return nil
}

// recordSplits stores splits and registers their operator and
// affiliate accounts.
func (p *Pipeline) recordSplits(ds *Dataset, splits []Split, found Discovery) {
	for _, sp := range splits {
		ds.Splits[sp.TxHash] = append(ds.Splits[sp.TxHash], sp)
		touchAccount(ds.Operators, sp.Operator, sp.Time, found)
		touchAccount(ds.Affiliates, sp.Affiliate, sp.Time, found)
	}
}

func (p *Pipeline) maxIter() int {
	if p.MaxIterations > 0 {
		return p.MaxIterations
	}
	return 50
}

func (p *Pipeline) tracef(format string, args ...any) {
	if p.Trace != nil {
		p.Trace(format, args...)
	}
}
