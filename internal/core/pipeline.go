package core

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"sort"
	"strconv"
	"sync"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/obs"
)

// Pipeline runs the four-step dataset construction of §5.1.
type Pipeline struct {
	Source     ChainSource
	Labels     *labels.Directory
	Classifier Classifier
	// MaxIterations bounds the expansion loop as a safety valve; the
	// loop normally reaches a fixpoint long before (default 50).
	MaxIterations int
	// DisableExpansionGate admits any contract whose transactions
	// match the split pattern, even when reached from nowhere — used
	// only by the ablation bench, where the pipeline additionally
	// scans unconnected contracts.
	DisableExpansionGate bool
	// StaticPreFilter statically analyzes candidate bytecode (when
	// Source implements CodeSource) and skips contracts that provably
	// cannot split value, saving their full history scan. Purely an
	// optimization: it never changes what the pipeline admits.
	StaticPreFilter bool
	// Concurrency sets the number of frontier accounts scanned in
	// parallel and the number of parallel transaction+receipt fetches
	// per scan. It matters when Source is a remote JSON-RPC endpoint
	// (each fetch is a network round trip); 0 or 1 keeps everything
	// sequential. The dataset is byte-identical either way: scans run
	// speculatively, but their results are merged by a single goroutine
	// in deterministic frontier order, so admission decisions and the
	// expansion gate see exactly the serial pipeline's state.
	Concurrency int
	// BatchSize caps the per-call batch when Source implements
	// BatchSource (default 128). Larger batches mean fewer round trips
	// but bigger responses.
	BatchSize int
	// CheckpointPath, when set, makes Build serialize its state
	// (dataset + expansion frontier) atomically to this file after the
	// seed phase and after expansion iterations, so an interrupted
	// multi-hour build — crash, SIGKILL, fatal source fault — can
	// continue with Resume instead of starting over. A resumed build
	// produces a byte-identical dataset.
	CheckpointPath string
	// CheckpointEvery writes a checkpoint every N completed expansion
	// iterations (default 1: every iteration). The seed-phase
	// checkpoint is always written.
	CheckpointEvery int
	// Resume makes Build restore CheckpointPath (when the file exists)
	// and continue from it instead of rebuilding from the seed. With no
	// checkpoint file present the build runs fresh.
	Resume bool
	// Quarantine, when set, is the integrity layer's store behind
	// Source. The pipeline itself never writes to it; holding the
	// reference lets checkpoints snapshot and restore it, so a resumed
	// build keeps the proven-rotten set instead of re-litigating it.
	Quarantine QuarantineState
	// Coverage is the completeness ledger Build maintains (auto-created
	// when nil): admitted pairs, permanently quarantined records, and
	// which accounts were only partially scanned. A degraded account is
	// still scanned and NOT fixpointed away silently — its gap count is
	// what the report manifest surfaces.
	Coverage *Coverage
	// Logger receives structured progress events. When nil, the legacy
	// Trace callback (if any) is adapted into a logger, so existing
	// Trace users keep working unchanged.
	Logger *obs.Logger
	// Metrics, when set, receives per-stage counters, gauges, and
	// histograms (see the README's Observability section for names).
	Metrics *obs.Registry
	// Spans, when set, records hierarchical tracing spans for the build
	// and each expansion iteration.
	Spans *obs.Recorder
	// Trace, when set, receives progress lines. Deprecated shim: new
	// code should set Logger; Trace is wrapped in an obs.Logger adapter
	// when Logger is nil.
	Trace func(format string, args ...any)

	traceOnce sync.Once
	traceLog  *obs.Logger
	pm        pipelineMetrics
}

// pipelineMetrics caches the pipeline's instruments so hot loops touch
// only atomics. All fields are nil (no-op) when Metrics is unset.
type pipelineMetrics struct {
	iterations      *obs.Counter
	frontier        *obs.Gauge
	accountsScanned *obs.Counter
	txFetched       *obs.Counter
	txClassified    *obs.Counter
	prefilterSkips  *obs.Counter
	splits          *obs.CounterVec
	contracts       *obs.CounterVec
	fetchBatch      *obs.Histogram
	fetchWorkers    *obs.Gauge
	scanWorkers     *obs.Gauge
	ckptWrites      *obs.Counter
	ckptBytes       *obs.Gauge
	ckptResumes     *obs.Counter
	ckptLastIter    *obs.Gauge
	txQuarantined   *obs.Counter
	degradedAccts   *obs.Gauge
}

func newPipelineMetrics(r *obs.Registry) pipelineMetrics {
	return pipelineMetrics{
		iterations:      r.Counter("daas_pipeline_iterations_total", "expansion iterations executed (§5.1 step 4)"),
		frontier:        r.Gauge("daas_pipeline_frontier_accounts", "accounts in the most recent expansion frontier"),
		accountsScanned: r.Counter("daas_pipeline_accounts_scanned_total", "operator/affiliate accounts whose histories were walked"),
		txFetched:       r.Counter("daas_pipeline_tx_fetched_total", "transactions (with receipts) fetched from the chain source"),
		txClassified:    r.Counter("daas_pipeline_tx_classified_total", "transactions run through the profit-sharing classifier"),
		prefilterSkips:  r.Counter("daas_pipeline_prefilter_skips_total", "candidate contracts skipped by the static pre-filter"),
		splits:          r.CounterVec("daas_classifier_splits_total", "profit-sharing splits matched per operator-share ratio (§4.3)", "ratio_pm"),
		contracts:       r.CounterVec("daas_pipeline_contracts_admitted_total", "profit-sharing contracts admitted to the dataset", "discovery"),
		fetchBatch:      r.Histogram("daas_pipeline_fetch_batch_size", "transactions per fetchAll batch", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}),
		fetchWorkers:    r.Gauge("daas_pipeline_fetch_workers", "parallel fetch workers used by the most recent batch"),
		scanWorkers:     r.Gauge("daas_pipeline_scan_workers", "parallel frontier scanners used by the most recent expansion iteration"),
		ckptWrites:      r.Counter("daas_checkpoint_writes_total", "pipeline checkpoints written to disk"),
		ckptBytes:       r.Gauge("daas_checkpoint_bytes", "size of the most recent checkpoint file"),
		ckptResumes:     r.Counter("daas_checkpoint_resumes_total", "builds resumed from an on-disk checkpoint"),
		ckptLastIter:    r.Gauge("daas_checkpoint_last_iteration", "expansion iterations completed at the most recent checkpoint"),
		txQuarantined:   r.Counter("daas_pipeline_tx_quarantined_total", "transaction+receipt pairs dropped because the integrity layer quarantined a record"),
		degradedAccts:   r.Gauge("daas_pipeline_degraded_accounts", "accounts whose histories are partially scanned due to quarantined records"),
	}
}

// logger returns the structured logger, adapting the legacy Trace
// callback when no Logger is set. A nil result is safe to log to.
func (p *Pipeline) logger() *obs.Logger {
	if p.Logger != nil {
		return p.Logger
	}
	if p.Trace == nil {
		return nil
	}
	p.traceOnce.Do(func() { p.traceLog = obs.NewCallback(p.Trace) })
	return p.traceLog
}

// fetched pairs one transaction with its receipt.
type fetched struct {
	tx  *chain.Transaction
	rec *chain.Receipt
}

// defaultBatchSize caps one BatchSource call when BatchSize is unset.
const defaultBatchSize = 128

func (p *Pipeline) batchSize() int {
	if p.BatchSize > 0 {
		return p.BatchSize
	}
	return defaultBatchSize
}

// runWorkers executes fn over n indexed jobs with up to workers
// goroutines, cancelling the remaining jobs as soon as one fails. It
// returns the first error in completion order (the caller's result
// slices keep per-index determinism regardless).
func runWorkers(ctx context.Context, n, workers int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	jobs := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// fetchAll retrieves transactions and receipts for the given hashes, in
// order. When Source can batch, the hashes collapse into a handful of
// round trips; otherwise up to Concurrency workers fetch in parallel.
// Outstanding work is cancelled as soon as any fetch fails.
func (p *Pipeline) fetchAll(ctx context.Context, hashes []ethtypes.Hash) ([]fetched, error) {
	out := make([]fetched, len(hashes))
	if len(hashes) == 0 {
		return out, nil
	}
	p.pm.fetchBatch.Observe(float64(len(hashes)))
	if bs, ok := p.Source.(BatchSource); ok {
		if err := p.fetchBatched(ctx, bs, hashes, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	workers := p.Concurrency
	if workers < 1 {
		workers = 1
	}
	if workers > len(hashes) {
		workers = len(hashes)
	}
	p.pm.fetchWorkers.Set(int64(workers))
	err := runWorkers(ctx, len(hashes), workers, func(i int) error {
		pair, err := p.fetchOne(ctx, hashes[i])
		if err != nil {
			return err
		}
		out[i] = pair
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fetchBatched fills out[i] for hashes[i] through a BatchSource,
// splitting the request into BatchSize chunks fetched by up to
// Concurrency workers.
func (p *Pipeline) fetchBatched(ctx context.Context, bs BatchSource, hashes []ethtypes.Hash, out []fetched) error {
	size := p.batchSize()
	chunks := (len(hashes) + size - 1) / size
	workers := p.Concurrency
	if workers < 1 {
		workers = 1
	}
	p.pm.fetchWorkers.Set(int64(min(workers, chunks)))
	return runWorkers(ctx, chunks, workers, func(c int) error {
		lo := c * size
		hi := min(lo+size, len(hashes))
		chunk := hashes[lo:hi]
		txs, err := bs.BatchTransactions(chunk)
		if err != nil {
			return fmt.Errorf("core: batch-fetching %d transactions: %w", len(chunk), err)
		}
		recs, err := bs.BatchReceipts(chunk)
		if err != nil {
			return fmt.Errorf("core: batch-fetching %d receipts: %w", len(chunk), err)
		}
		if len(txs) != len(chunk) || len(recs) != len(chunk) {
			return fmt.Errorf("core: batch source returned %d txs / %d receipts for %d hashes", len(txs), len(recs), len(chunk))
		}
		// A nil batch entry is a quarantined record (the integrity
		// layer's degradation contract); the pair is dropped, not fatal.
		var admitted int64
		for i := range chunk {
			if txs[i] == nil || recs[i] == nil {
				p.pm.txQuarantined.Inc()
				continue
			}
			out[lo+i] = fetched{txs[i], recs[i]}
			admitted++
		}
		p.pm.txFetched.Add(uint64(admitted))
		p.Coverage.NoteFetched(admitted)
		return nil
	})
}

// fetchOne retrieves one transaction+receipt pair, wrapping any failure
// with the hash and method so a failed worker is attributable. The
// context reaches the wire when Source implements ContextSource, so
// cancel-on-first-error aborts in-flight HTTP instead of waiting it out.
// A quarantined record (ErrQuarantined, or a nil entry replayed from a
// cache that stored a quarantined batch slot) degrades to an empty pair
// instead of failing the scan; callers skip empty pairs and account for
// them in Coverage.
func (p *Pipeline) fetchOne(ctx context.Context, h ethtypes.Hash) (fetched, error) {
	tx, err := SourceTransaction(ctx, p.Source, h)
	if err != nil {
		if errors.Is(err, ErrQuarantined) {
			p.pm.txQuarantined.Inc()
			return fetched{}, nil
		}
		return fetched{}, fmt.Errorf("core: fetching transaction %s: %w", h, err)
	}
	rec, err := SourceReceipt(ctx, p.Source, h)
	if err != nil {
		if errors.Is(err, ErrQuarantined) {
			p.pm.txQuarantined.Inc()
			return fetched{}, nil
		}
		return fetched{}, fmt.Errorf("core: fetching receipt %s: %w", h, err)
	}
	if tx == nil || rec == nil {
		p.pm.txQuarantined.Inc()
		return fetched{}, nil
	}
	p.pm.txFetched.Inc()
	p.Coverage.NoteFetched(1)
	return fetched{tx, rec}, nil
}

// classify runs the classifier over one transaction, recording
// per-ratio match outcomes. Safe for concurrent use: the classifier is
// read-only and the instruments are atomic.
func (p *Pipeline) classify(tx *chain.Transaction, r *chain.Receipt) []Split {
	p.pm.txClassified.Inc()
	splits := p.Classifier.Classify(tx, r)
	for _, sp := range splits {
		p.pm.splits.With(strconv.FormatInt(sp.RatioPM, 10)).Inc()
	}
	return splits
}

// frontierTracker records operator/affiliate accounts added to the
// dataset since the last frontier was computed, replacing the
// per-iteration full re-sort of both account maps with an incremental
// delta. The ordering contract matches the historical computation
// exactly: new operators sorted by address, then new affiliates sorted
// by address (an address added in both roles appears twice, as it did
// when both sorted maps were walked).
type frontierTracker struct {
	ops  map[ethtypes.Address]bool
	affs map[ethtypes.Address]bool
}

func newFrontierTracker() *frontierTracker {
	return &frontierTracker{
		ops:  make(map[ethtypes.Address]bool),
		affs: make(map[ethtypes.Address]bool),
	}
}

// next drains the pending accounts into the next frontier, dropping any
// already scanned (an account scanned under one role is never
// re-scanned under another, mirroring the address-keyed scanned set).
func (t *frontierTracker) next(scanned map[ethtypes.Address]bool) []ethtypes.Address {
	out := make([]ethtypes.Address, 0, len(t.ops)+len(t.affs))
	out = appendSortedUnscanned(out, t.ops, scanned)
	out = appendSortedUnscanned(out, t.affs, scanned)
	t.ops = make(map[ethtypes.Address]bool)
	t.affs = make(map[ethtypes.Address]bool)
	return out
}

func appendSortedUnscanned(dst []ethtypes.Address, pending, scanned map[ethtypes.Address]bool) []ethtypes.Address {
	start := len(dst)
	for a := range pending {
		if !scanned[a] {
			dst = append(dst, a)
		}
	}
	fresh := dst[start:]
	sort.Slice(fresh, func(i, j int) bool { return addrLess(fresh[i], fresh[j]) })
	return dst
}

// scanOutcome is one frontier account's speculative scan: its
// unclassified history and the classifier's verdict per hash. Scans
// touch no shared state, so any number can run concurrently; the
// merger decides what the results mean. quarantined counts records the
// integrity layer refused while walking this account — the merger
// books them against the account in the coverage ledger.
type scanOutcome struct {
	fresh       []ethtypes.Hash
	splits      [][]Split
	quarantined int64
	err         error
}

// Build runs seed collection, seed dataset construction, and iterative
// expansion, returning the final dataset. With CheckpointPath set, the
// state is persisted at iteration boundaries; with Resume, an existing
// checkpoint is restored and the build continues from it.
func (p *Pipeline) Build() (*Dataset, error) {
	if p.Source == nil || p.Labels == nil {
		return nil, fmt.Errorf("core: pipeline needs a Source and Labels")
	}
	if p.Coverage == nil {
		p.Coverage = NewCoverage()
	}
	p.pm = newPipelineMetrics(p.Metrics)
	ctx := context.Background()
	if p.Spans != nil {
		ctx = obs.WithRecorder(ctx, p.Spans)
	}
	ctx, root := obs.Start(ctx, "pipeline.build")
	defer root.End()

	st, err := p.restoreOrSeed(ctx)
	if err != nil {
		return nil, err
	}

	// Step 4: snowball expansion until fixpoint. On resume the loop
	// picks up at the checkpoint's completed-iteration count; the
	// frontier is the tracker's restored pending accounts.
	for iter := st.iterations; iter < p.maxIter(); iter++ {
		before := st.ds.Stats()
		// Scan the history of every not-yet-scanned operator and
		// affiliate account for profit-sharing transactions invoking
		// unknown contracts.
		frontier := st.tracker.next(st.scanned)
		p.pm.frontier.Set(int64(len(frontier)))
		if len(frontier) == 0 {
			break
		}
		p.pm.iterations.Inc()
		_, iterSpan := obs.Start(ctx, "pipeline.expand.iter")
		iterSpan.SetAttr("iter", iter+1)
		iterSpan.SetAttr("frontier", len(frontier))
		if err := p.expandIteration(ctx, st.ds, frontier, st.scanned, st.classified, st.tracker); err != nil {
			iterSpan.End()
			return nil, err
		}
		after := st.ds.Stats()
		iterSpan.SetAttr("contracts", after.Contracts)
		iterSpan.SetAttr("profit_txs", after.ProfitTxs)
		iterSpan.End()
		p.logger().Info("step 4: expansion iteration finished",
			"iter", iter+1,
			"frontier", len(frontier),
			"contracts", after.Contracts,
			"operators", after.Operators,
			"affiliates", after.Affiliates,
			"profit_txs", after.ProfitTxs)
		st.iterations = iter + 1
		if st.iterations%p.checkpointEvery() == 0 {
			if err := p.checkpoint(st); err != nil {
				return nil, err
			}
		}
		if after == before {
			break
		}
	}
	p.pm.degradedAccts.Set(int64(len(p.Coverage.Stats().Degraded)))
	return st.ds, nil
}

// restoreOrSeed produces the expansion loop's starting state: the
// checkpoint when resuming and one exists, otherwise a fresh seed
// build (steps 1–3), checkpointed before expansion begins.
func (p *Pipeline) restoreOrSeed(ctx context.Context) (*buildState, error) {
	if p.Resume && p.CheckpointPath != "" {
		st, err := loadCheckpoint(p.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if st != nil {
			p.pm.ckptResumes.Inc()
			p.pm.ckptLastIter.Set(int64(st.iterations))
			// Re-arm the live quarantine and coverage stores from the
			// checkpointed state, then hand them to the state so later
			// checkpoints keep snapshotting them.
			if p.Quarantine != nil && len(st.quarantineBlob) > 0 {
				if err := p.Quarantine.Restore(st.quarantineBlob); err != nil {
					return nil, fmt.Errorf("core: restoring checkpoint quarantine: %w", err)
				}
			}
			p.Coverage.restore(st.coverage)
			st.quarantine = p.Quarantine
			st.cov = p.Coverage
			stats := st.ds.Stats()
			p.logger().Info("resumed from checkpoint",
				"path", p.CheckpointPath,
				"iterations_done", st.iterations,
				"contracts", stats.Contracts,
				"pending_accounts", len(st.tracker.ops)+len(st.tracker.affs))
			return st, nil
		}
		p.logger().Info("no checkpoint on disk, building from seed", "path", p.CheckpointPath)
	}

	st := &buildState{
		ds:         NewDataset(),
		scanned:    make(map[ethtypes.Address]bool),
		classified: make(map[ethtypes.Hash]bool),
		tracker:    newFrontierTracker(),
		quarantine: p.Quarantine,
		cov:        p.Coverage,
	}

	// Step 1: collect phishing reports from the public sources and keep
	// the contracts.
	_, collect := obs.Start(ctx, "pipeline.seed.collect")
	var seedContracts []ethtypes.Address
	for _, addr := range p.Labels.AllPhishing() {
		isContract, err := p.Source.IsContract(addr)
		if err != nil {
			collect.End()
			return nil, fmt.Errorf("core: step 1: %w", err)
		}
		if isContract {
			seedContracts = append(seedContracts, addr)
		}
	}
	collect.SetAttr("contracts", len(seedContracts))
	collect.End()
	p.logger().Info("step 1: labeled phishing contracts collected", "contracts", len(seedContracts))

	// Step 2 + 3: identify profit-sharing contracts among the reports
	// and extract operator/affiliate accounts — the seed dataset.
	_, absorb := obs.Start(ctx, "pipeline.seed.absorb")
	for _, addr := range seedContracts {
		if err := p.absorbContract(ctx, st.ds, addr, DiscoverySeed, st.classified, st.tracker); err != nil {
			absorb.End()
			return nil, fmt.Errorf("core: step 2: %w", err)
		}
	}
	st.ds.SeedStats = st.ds.Stats()
	absorb.SetAttr("contracts", st.ds.SeedStats.Contracts)
	absorb.SetAttr("profit_txs", st.ds.SeedStats.ProfitTxs)
	absorb.End()
	p.logger().Info("step 3: seed dataset built",
		"contracts", st.ds.SeedStats.Contracts,
		"operators", st.ds.SeedStats.Operators,
		"affiliates", st.ds.SeedStats.Affiliates,
		"profit_txs", st.ds.SeedStats.ProfitTxs)

	// The seed checkpoint is always written: seeding is the longest
	// single uninterruptible stretch, so losing it hurts the most.
	if err := p.checkpoint(st); err != nil {
		return nil, err
	}
	return st, nil
}

// checkpoint persists st when checkpointing is enabled.
func (p *Pipeline) checkpoint(st *buildState) error {
	if p.CheckpointPath == "" {
		return nil
	}
	n, err := writeCheckpoint(p.CheckpointPath, st)
	if err != nil {
		return err
	}
	p.pm.ckptWrites.Inc()
	p.pm.ckptBytes.Set(n)
	p.pm.ckptLastIter.Set(int64(st.iterations))
	p.logger().Debug("checkpoint written",
		"path", p.CheckpointPath,
		"bytes", n,
		"iterations_done", st.iterations)
	return nil
}

func (p *Pipeline) checkpointEvery() int {
	if p.CheckpointEvery > 0 {
		return p.CheckpointEvery
	}
	return 1
}

// expandIteration scans one frontier. With Concurrency ≤ 1 each
// account is scanned and merged inline, exactly the historical serial
// walk. Otherwise a pool of scanners works ahead speculatively while a
// single merger applies outcomes in frontier order: scanning (fetch +
// classify) is pure, and every stateful decision — admission, the
// expansion gate, the classified set — happens only in the merger, so
// the dataset is identical to the serial build.
func (p *Pipeline) expandIteration(ctx context.Context, ds *Dataset, frontier []ethtypes.Address,
	scanned map[ethtypes.Address]bool, classified map[ethtypes.Hash]bool, tracker *frontierTracker) error {

	workers := p.Concurrency
	if workers > len(frontier) {
		workers = len(frontier)
	}
	if workers <= 1 {
		p.pm.scanWorkers.Set(1)
		for _, acct := range frontier {
			scanned[acct] = true
			p.pm.accountsScanned.Inc()
			p.Coverage.NoteScanned(1)
			out := p.scanAccount(ctx, acct, classified)
			if out.err != nil {
				return out.err
			}
			if err := p.mergeScan(ctx, ds, acct, out, classified, tracker); err != nil {
				return err
			}
		}
		return nil
	}

	p.pm.scanWorkers.Set(int64(workers))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Scanners filter against a snapshot of the classified set: the
	// live set advances as the merger absorbs contracts, so a snapshot
	// scan may fetch and classify a few hashes the serial walk would
	// have skipped. The merger re-checks the live set before using any
	// result, which is also what makes the speculation safe.
	snapshot := maps.Clone(classified)
	results := make([]chan scanOutcome, len(frontier))
	for i := range results {
		results[i] = make(chan scanOutcome, 1)
	}
	// The window keeps scanners at most 2×workers accounts ahead of
	// the merger, bounding buffered speculative results; slots are
	// released by the merger as it consumes.
	window := make(chan struct{}, 2*workers)
	sem := make(chan struct{}, workers)
	go func() {
		for i, acct := range frontier {
			select {
			case window <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			go func(i int, acct ethtypes.Address) {
				defer func() { <-sem }()
				results[i] <- p.scanAccount(ctx, acct, snapshot)
			}(i, acct)
		}
	}()

	for i, acct := range frontier {
		out := <-results[i]
		<-window
		if out.err != nil {
			return out.err
		}
		scanned[acct] = true
		p.pm.accountsScanned.Inc()
		p.Coverage.NoteScanned(1)
		if err := p.mergeScan(ctx, ds, acct, out, classified, tracker); err != nil {
			return err
		}
	}
	return nil
}

// scanAccount walks one frontier account's history: list, filter
// already-classified hashes, fetch, classify. It reads skip (which
// must not be mutated concurrently) and shared immutable state only.
func (p *Pipeline) scanAccount(ctx context.Context, acct ethtypes.Address, skip map[ethtypes.Hash]bool) scanOutcome {
	if err := ctx.Err(); err != nil {
		return scanOutcome{err: err}
	}
	hashes, err := p.Source.TransactionsOf(acct)
	if err != nil {
		return scanOutcome{err: fmt.Errorf("core: step 4: %w", err)}
	}
	fresh := hashes[:0:0]
	for _, h := range hashes {
		if !skip[h] {
			fresh = append(fresh, h)
		}
	}
	pairs, err := p.fetchAll(ctx, fresh)
	if err != nil {
		return scanOutcome{err: err}
	}
	// Quarantined hashes are dropped here — never classified and never
	// marked classified, so a later pass (or resumed build) may still
	// admit them if the source recovers.
	kept := fresh[:0:0]
	var quarantined int64
	splits := make([][]Split, 0, len(fresh))
	for i, h := range fresh {
		if pairs[i].tx == nil || pairs[i].rec == nil {
			quarantined++
			continue
		}
		kept = append(kept, h)
		splits = append(splits, p.classify(pairs[i].tx, pairs[i].rec))
	}
	return scanOutcome{fresh: kept, splits: splits, quarantined: quarantined}
}

// mergeScan applies one account's scan outcome to the dataset. Always
// called from a single goroutine, in frontier order.
func (p *Pipeline) mergeScan(ctx context.Context, ds *Dataset, acct ethtypes.Address, out scanOutcome,
	classified map[ethtypes.Hash]bool, tracker *frontierTracker) error {

	if out.quarantined > 0 {
		p.Coverage.NoteQuarantined(acct, out.quarantined)
		p.logger().Info("account degraded: quarantined records in history",
			"account", acct.Short(), "quarantined", out.quarantined)
	}
	for i, h := range out.fresh {
		if classified[h] {
			continue // classified by an earlier absorb this pass
		}
		splits := out.splits[i]
		if len(splits) == 0 {
			continue
		}
		contract := splits[0].Contract
		if _, known := ds.Contracts[contract]; known {
			// Known contract, possibly new counterparties.
			p.recordSplits(ds, splits, DiscoveryExpansion, tracker)
			classified[h] = true
			continue
		}
		// Expansion gate: the invoked contract must have interacted
		// with an account already in the dataset — here, the frontier
		// account whose history surfaced it.
		if !p.DisableExpansionGate {
			if !p.interactsWithDataset(ds, splits, acct) {
				continue
			}
		}
		if err := p.absorbContract(ctx, ds, contract, DiscoveryExpansion, classified, tracker); err != nil {
			return err
		}
	}
	return nil
}

// interactsWithDataset checks the expansion gate: some party of the
// split transaction besides the invoked contract is already a DaaS
// account (the frontier account itself qualifies by construction; the
// check also accepts splits paying known accounts).
func (p *Pipeline) interactsWithDataset(ds *Dataset, splits []Split, frontier ethtypes.Address) bool {
	for _, sp := range splits {
		if sp.Operator == frontier || sp.Affiliate == frontier || sp.Payer == frontier {
			return true
		}
		if ds.IsDaaSAccount(sp.Operator) || ds.IsDaaSAccount(sp.Affiliate) {
			return true
		}
	}
	return false
}

// absorbContract classifies the history of a candidate contract; if
// any profit-sharing transaction is found the contract and its split
// counterparties join the dataset. Hashes already classified in prior
// passes are skipped the same way the frontier walk skips them: their
// splits are on record, and re-classifying them would both waste
// fetches and duplicate split records.
func (p *Pipeline) absorbContract(ctx context.Context, ds *Dataset, addr ethtypes.Address, found Discovery,
	classified map[ethtypes.Hash]bool, tracker *frontierTracker) error {

	if _, known := ds.Contracts[addr]; known {
		return nil
	}
	if p.staticSkip(addr) {
		p.pm.prefilterSkips.Inc()
		p.logger().Debug("static pre-filter: contract cannot split value, skipping history scan",
			"contract", addr.Short())
		return nil
	}
	hashes, err := p.Source.TransactionsOf(addr)
	if err != nil {
		return err
	}
	fresh := hashes[:0:0]
	for _, h := range hashes {
		if !classified[h] {
			fresh = append(fresh, h)
		}
	}
	var rec *ContractRecord
	pairs, err := p.fetchAll(ctx, fresh)
	if err != nil {
		return err
	}
	var quarantined int64
	for pi, h := range fresh {
		tx, r := pairs[pi].tx, pairs[pi].rec
		if tx == nil || r == nil {
			// Quarantined: skip without marking classified, and book the
			// gap against the contract being absorbed.
			quarantined++
			continue
		}
		splits := p.classify(tx, r)
		// Only splits invoked through this contract count toward it.
		var own []Split
		for _, sp := range splits {
			if sp.Contract == addr {
				own = append(own, sp)
			}
		}
		if len(own) == 0 {
			continue
		}
		if rec == nil {
			rec = &ContractRecord{Address: addr, Found: found, FirstSeen: r.Timestamp, LastSeen: r.Timestamp}
			ds.Contracts[addr] = rec
			p.pm.contracts.With(string(found)).Inc()
			if found == DiscoverySeed {
				for _, l := range p.Labels.Of(addr) {
					rec.Sources = append(rec.Sources, string(l.Source))
				}
			}
		}
		if r.Timestamp.Before(rec.FirstSeen) {
			rec.FirstSeen = r.Timestamp
		}
		if r.Timestamp.After(rec.LastSeen) {
			rec.LastSeen = r.Timestamp
		}
		rec.TxCount++
		classified[h] = true
		p.recordSplits(ds, own, found, tracker)
	}
	p.Coverage.NoteQuarantined(addr, quarantined)
	return nil
}

// recordSplits stores splits and registers their operator and
// affiliate accounts, feeding newly created accounts to the frontier
// tracker.
func (p *Pipeline) recordSplits(ds *Dataset, splits []Split, found Discovery, tracker *frontierTracker) {
	for _, sp := range splits {
		ds.Splits[sp.TxHash] = append(ds.Splits[sp.TxHash], sp)
		if touchAccount(ds.Operators, sp.Operator, sp.Time, found) {
			tracker.ops[sp.Operator] = true
		}
		if touchAccount(ds.Affiliates, sp.Affiliate, sp.Time, found) {
			tracker.affs[sp.Affiliate] = true
		}
	}
}

func (p *Pipeline) maxIter() int {
	if p.MaxIterations > 0 {
		return p.MaxIterations
	}
	return 50
}
