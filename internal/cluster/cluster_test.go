package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/worldgen"
)

var world = func() *worldgen.World {
	w, err := worldgen.Generate(worldgen.TestConfig(77))
	if err != nil {
		panic(err)
	}
	return w
}()

var dataset = func() *core.Dataset {
	p := &core.Pipeline{Source: core.LocalSource{Chain: world.Chain}, Labels: world.Labels}
	ds, err := p.Build()
	if err != nil {
		panic(err)
	}
	return ds
}()

func runCluster(t *testing.T, c cluster.Clusterer) []*cluster.Family {
	t.Helper()
	c.Source = core.LocalSource{Chain: world.Chain}
	c.Labels = world.Labels
	fams, err := c.Cluster(dataset)
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

func TestClusterRecoversPlantedFamilies(t *testing.T) {
	fams := runCluster(t, cluster.Clusterer{})
	if len(fams) != len(world.Plan.Families) {
		t.Fatalf("recovered %d families, want %d", len(fams), len(world.Plan.Families))
	}

	// Every recovered family's operators must come from exactly one
	// planted family (purity), and all planted operators of that family
	// present in the dataset must land together (completeness).
	for _, fam := range fams {
		truthFam := -1
		for _, op := range fam.Operators {
			tf, ok := world.Truth.OperatorFamily[op]
			if !ok {
				t.Errorf("clustered unknown operator %s", op.Short())
				continue
			}
			if truthFam == -1 {
				truthFam = tf
			} else if tf != truthFam {
				t.Errorf("family %q mixes planted families %d and %d", fam.Name, truthFam, tf)
			}
		}
	}
}

func TestClusterContractAndAffiliatePurity(t *testing.T) {
	fams := runCluster(t, cluster.Clusterer{})
	for _, fam := range fams {
		if len(fam.Operators) == 0 {
			t.Fatal("family without operators")
		}
		want := world.Truth.OperatorFamily[fam.Operators[0]]
		for _, con := range fam.Contracts {
			if got := world.Truth.ContractFamily[con]; got != want {
				t.Errorf("contract %s assigned to family %d, want %d", con.Short(), got, want)
			}
		}
		for _, aff := range fam.Affiliates {
			if got := world.Truth.AffiliateFamily[aff]; got != want {
				t.Errorf("affiliate %s assigned to family %d, want %d", aff.Short(), got, want)
			}
		}
	}
}

func TestClusterNaming(t *testing.T) {
	fams := runCluster(t, cluster.Clusterer{})
	names := make(map[string]bool)
	for _, fam := range fams {
		names[fam.Name] = true
	}
	for _, fp := range world.Plan.Families {
		if fp.Params.EtherscanName != "" && !names[fp.Params.EtherscanName] {
			t.Errorf("named family %q not recovered by name", fp.Params.EtherscanName)
		}
	}
	// The unnamed family must be named by operator prefix 0x0000b6.
	if !names["0x0000b6"] {
		t.Errorf("unnamed family not prefix-named; names = %v", keys(names))
	}
}

func TestClusterDominantFamiliesLeadByActivity(t *testing.T) {
	fams := runCluster(t, cluster.Clusterer{})
	if len(fams) < 3 {
		t.Fatal("too few families")
	}
	lead := map[string]bool{fams[0].Name: true, fams[1].Name: true, fams[2].Name: true}
	for _, want := range []string{"Angel Drainer", "Inferno Drainer"} {
		if !lead[want] {
			t.Errorf("%s not among top families: %v", want, keys(lead))
		}
	}
}

func TestClusterEdgeAblation(t *testing.T) {
	full := runCluster(t, cluster.Clusterer{})
	noShared := runCluster(t, cluster.Clusterer{DisableSharedAccountEdges: true})
	noDirect := runCluster(t, cluster.Clusterer{DisableDirectEdges: true})
	noBoth := runCluster(t, cluster.Clusterer{DisableSharedAccountEdges: true, DisableDirectEdges: true})

	if len(noShared) < len(full) || len(noDirect) < len(full) {
		t.Error("removing edges cannot reduce the family count")
	}
	// With no edges at all, every operator is its own family.
	if len(noBoth) != len(dataset.Operators) {
		t.Errorf("edge-free clustering gave %d families, want %d singletons",
			len(noBoth), len(dataset.Operators))
	}
	// Both edge types must be load-bearing in a multi-operator world.
	multiOp := false
	for _, fam := range full {
		if len(fam.Operators) > 1 {
			multiOp = true
		}
	}
	if multiOp && len(noBoth) <= len(full) {
		t.Error("ablation shows edges carry no information")
	}
}

func TestClusterEmptyDataset(t *testing.T) {
	c := cluster.Clusterer{Source: core.LocalSource{Chain: world.Chain}, Labels: world.Labels}
	fams, err := c.Cluster(core.NewDataset())
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 0 {
		t.Errorf("empty dataset produced %d families", len(fams))
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

var _ = ethtypes.Address{}
