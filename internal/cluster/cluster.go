// Package cluster implements the DaaS family clustering of the paper's
// §7.1: operator accounts are unioned when they transact directly or
// share an Etherscan-labeled phishing counterparty; profit-sharing
// contracts and affiliate accounts then inherit the family of their
// operators. Families are named from Etherscan operator labels, falling
// back to the dominant operator's address prefix.
//
// Two entry points produce families: the batch Clusterer walks every
// operator history at once, while Incremental accumulates the same
// edges block-by-block (the radar daemon's path). Both roll up through
// the shared materialize step, so identical edge sets yield identical
// family lists.
package cluster

import (
	"errors"
	"fmt"
	"maps"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/obs"
)

// Family is one recovered DaaS family.
type Family struct {
	// Name is the Etherscan-derived family name, or the dominant
	// operator's address prefix for unnamed clusters.
	Name string
	// Named reports whether the name came from a public label.
	Named      bool
	Operators  []ethtypes.Address
	Contracts  []ethtypes.Address
	Affiliates []ethtypes.Address
	// SplitTxs counts the profit-sharing transactions attributed to the
	// family.
	SplitTxs int
	// Tainted reports that some evidence touching this family was
	// quarantined by the integrity layer (a clustering edge skipped, or
	// an operator whose build-time scan was degraded): the family's
	// membership is a lower bound, not a complete picture.
	Tainted bool
	// Fingerprints counts the family's contracts per static fingerprint
	// name (populated when the dataset was annotated by the static
	// screen; nil otherwise).
	Fingerprints map[string]int
}

// Clusterer groups a dataset into families.
type Clusterer struct {
	Source core.ChainSource
	Labels *labels.Directory
	// DisableSharedAccountEdges drops the second §7.1 edge type; used
	// by the ablation bench.
	DisableSharedAccountEdges bool
	// DisableDirectEdges drops direct operator-to-operator transfers;
	// used by the ablation bench.
	DisableDirectEdges bool
	// Metrics, when set, records union-find merge counts per §7.1 edge
	// kind and the resulting family count (daas_cluster_* names).
	Metrics *obs.Registry
	// Degraded marks accounts whose build-time scans were incomplete
	// (from the pipeline's coverage ledger); families containing one are
	// flagged Tainted even if clustering itself saw no quarantined
	// record.
	Degraded map[ethtypes.Address]bool
}

// Cluster runs the two clustering steps and returns families sorted by
// descending victim activity (split count).
func (c *Clusterer) Cluster(ds *core.Dataset) ([]*Family, error) {
	if c.Source == nil {
		return nil, fmt.Errorf("cluster: Source is required")
	}
	merges := c.Metrics.CounterVec("daas_cluster_union_merges_total", "operator union-find merges per §7.1 edge kind", "edge")
	ops := make([]ethtypes.Address, 0, len(ds.Operators))
	for _, rec := range ds.SortedOperators() {
		ops = append(ops, rec.Address)
	}
	uf := newUnionFind(ops)

	// Step 1: connect operators via their transaction histories. A
	// quarantined transaction cannot witness an edge; the operator is
	// marked tainted and the walk continues, so one rotten record
	// degrades a family flag instead of aborting the clustering.
	tainted := make(map[ethtypes.Address]bool)
	for a := range c.Degraded {
		tainted[a] = true
	}
	sharedOwner := make(map[ethtypes.Address]ethtypes.Address)
	for _, op := range ops {
		hashes, err := c.Source.TransactionsOf(op)
		if err != nil {
			return nil, fmt.Errorf("cluster: history of %s: %w", op.Short(), err)
		}
		for _, h := range hashes {
			tx, err := c.Source.Transaction(h)
			if err != nil {
				if errors.Is(err, core.ErrQuarantined) {
					tainted[op] = true
					continue
				}
				return nil, err
			}
			if tx == nil {
				tainted[op] = true
				continue
			}
			if tx.To == nil {
				continue
			}
			from, to := tx.From, *tx.To
			// Direct transfer between two dataset operators.
			if !c.DisableDirectEdges {
				_, fromOp := ds.Operators[from]
				_, toOp := ds.Operators[to]
				if fromOp && toOp {
					if uf.union(from, to) {
						merges.With("direct").Inc()
					}
					continue
				}
			}
			// Shared Etherscan-labeled phishing counterparty (plain
			// accounts only — dataset contracts belong to one operator
			// by construction and would not witness collaboration).
			if c.DisableSharedAccountEdges || c.Labels == nil {
				continue
			}
			counterparty, ok := counterpartyOf(op, from, to)
			if !ok {
				continue
			}
			if _, isContract := ds.Contracts[counterparty]; isContract {
				continue
			}
			if !isEtherscanPhishing(c.Labels, counterparty) {
				continue
			}
			if first, seen := sharedOwner[counterparty]; seen {
				if uf.union(first, op) {
					merges.With("shared_counterparty").Inc()
				}
			} else {
				sharedOwner[counterparty] = op
			}
		}
	}

	return materialize(ds, uf, tainted, c.Labels, c.Metrics), nil
}

// materialize turns a finished operator partition into the family
// list: §7.1 step 2 contract/affiliate attribution through split
// records, naming, taint and fingerprint rollups, and the activity
// sort. Set representatives are first canonicalized to each set's
// minimum member address, so the result depends only on the partition —
// never on union-find internals — and the batch and incremental paths
// agree byte-for-byte.
func materialize(ds *core.Dataset, uf *unionFind, tainted map[ethtypes.Address]bool, lbls *labels.Directory, reg *obs.Registry) []*Family {
	familyGauge := reg.Gauge("daas_cluster_families", "recovered DaaS families")

	ops := make([]ethtypes.Address, 0, len(ds.Operators))
	for _, rec := range ds.SortedOperators() {
		ops = append(ops, rec.Address)
	}
	// ops is sorted ascending, so the first member seen per root is the
	// set minimum — the canonical representative.
	canon := make(map[ethtypes.Address]ethtypes.Address, len(ops))
	for _, op := range ops {
		root, ok := uf.find(op)
		if !ok {
			continue
		}
		if _, seen := canon[root]; !seen {
			canon[root] = op
		}
	}
	findCanon := func(a ethtypes.Address) (ethtypes.Address, bool) {
		root, ok := uf.find(a)
		if !ok {
			return ethtypes.Address{}, false
		}
		return canon[root], true
	}

	// Step 2: attribute contracts and affiliates through split records.
	type attribution struct {
		votes map[ethtypes.Address]int // canonical operator root -> votes
	}
	newAttr := func() *attribution { return &attribution{votes: make(map[ethtypes.Address]int)} }
	contractAttr := make(map[ethtypes.Address]*attribution)
	affiliateAttr := make(map[ethtypes.Address]*attribution)
	rootSplits := make(map[ethtypes.Address]int)

	for _, splits := range ds.Splits {
		for _, sp := range splits {
			root, ok := findCanon(sp.Operator)
			if !ok {
				continue
			}
			if contractAttr[sp.Contract] == nil {
				contractAttr[sp.Contract] = newAttr()
			}
			contractAttr[sp.Contract].votes[root]++
			if affiliateAttr[sp.Affiliate] == nil {
				affiliateAttr[sp.Affiliate] = newAttr()
			}
			affiliateAttr[sp.Affiliate].votes[root]++
			rootSplits[root]++
		}
	}

	// Materialize families.
	byRoot := make(map[ethtypes.Address]*Family)
	for _, op := range ops {
		root, _ := findCanon(op)
		fam := byRoot[root]
		if fam == nil {
			fam = &Family{}
			byRoot[root] = fam
		}
		fam.Operators = append(fam.Operators, op)
	}
	assign := func(attrs map[ethtypes.Address]*attribution, into func(*Family, ethtypes.Address)) {
		addrs := make([]ethtypes.Address, 0, len(attrs))
		for a := range attrs {
			addrs = append(addrs, a)
		}
		sortAddrs(addrs)
		for _, a := range addrs {
			attr := attrs[a]
			var bestRoot ethtypes.Address
			best := -1
			for root, votes := range attr.votes {
				if votes > best || (votes == best && addrLess(root, bestRoot)) {
					best, bestRoot = votes, root
				}
			}
			if fam := byRoot[bestRoot]; fam != nil {
				into(fam, a)
			}
		}
	}
	assign(contractAttr, func(f *Family, a ethtypes.Address) { f.Contracts = append(f.Contracts, a) })
	assign(affiliateAttr, func(f *Family, a ethtypes.Address) { f.Affiliates = append(f.Affiliates, a) })
	for root, fam := range byRoot {
		fam.SplitTxs = rootSplits[root]
		nameFamily(fam, ds, lbls)
		for _, op := range fam.Operators {
			if tainted[op] {
				fam.Tainted = true
				break
			}
		}
		for _, con := range fam.Contracts {
			rec := ds.Contracts[con]
			if rec == nil {
				continue
			}
			for _, fp := range rec.Fingerprints {
				if fam.Fingerprints == nil {
					fam.Fingerprints = make(map[string]int)
				}
				fam.Fingerprints[fp]++
			}
		}
	}

	familyGauge.Set(int64(len(byRoot)))
	var taintedFams int64
	for _, fam := range byRoot {
		if fam.Tainted {
			taintedFams++
		}
	}
	reg.Gauge("daas_cluster_tainted_families", "families whose evidence touched quarantined records").Set(taintedFams)
	out := make([]*Family, 0, len(byRoot))
	for _, fam := range byRoot {
		out = append(out, fam)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SplitTxs != out[j].SplitTxs {
			return out[i].SplitTxs > out[j].SplitTxs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// counterpartyOf returns the other party of a transaction involving op.
func counterpartyOf(op, from, to ethtypes.Address) (ethtypes.Address, bool) {
	switch {
	case from == op:
		return to, true
	case to == op:
		return from, true
	default:
		return ethtypes.Address{}, false
	}
}

func isEtherscanPhishing(dir *labels.Directory, a ethtypes.Address) bool {
	for _, l := range dir.Of(a) {
		if l.Source == labels.SourceEtherscan && l.Category == labels.CategoryPhishing {
			return true
		}
	}
	return false
}

// nameFamily applies the §7.1 naming rule: an Etherscan family label on
// any operator, else the dominant operator's six-hex-character prefix.
func nameFamily(fam *Family, ds *core.Dataset, lbls *labels.Directory) {
	sortAddrs(fam.Operators)
	if lbls != nil {
		for _, op := range fam.Operators {
			if name, ok := lbls.EtherscanName(op); ok && !strings.HasPrefix(name, "Fake_Phishing") {
				fam.Name = name
				fam.Named = true
				return
			}
		}
	}
	// Dominant operator: most splits received.
	counts := make(map[ethtypes.Address]int)
	for _, splits := range ds.Splits {
		for _, sp := range splits {
			counts[sp.Operator]++
		}
	}
	var dom ethtypes.Address
	best := -1
	for _, op := range fam.Operators {
		if counts[op] > best {
			best, dom = counts[op], op
		}
	}
	fam.Name = dom.Short()
}

// unionFind is a plain disjoint-set over addresses.
type unionFind struct {
	parent map[ethtypes.Address]ethtypes.Address
	rank   map[ethtypes.Address]int
}

func newUnionFind(members []ethtypes.Address) *unionFind {
	uf := &unionFind{
		parent: make(map[ethtypes.Address]ethtypes.Address, len(members)),
		rank:   make(map[ethtypes.Address]int, len(members)),
	}
	for _, m := range members {
		uf.parent[m] = m
	}
	return uf
}

// add registers a as a singleton set; a no-op when already a member.
func (uf *unionFind) add(a ethtypes.Address) {
	if _, ok := uf.parent[a]; !ok {
		uf.parent[a] = a
	}
}

// clone returns an independent copy sharing no state with the
// original.
func (uf *unionFind) clone() *unionFind {
	return &unionFind{parent: maps.Clone(uf.parent), rank: maps.Clone(uf.rank)}
}

// find returns the set representative of a, compressing the walked
// path. Iterative two-pass (walk to the root, then re-parent the whole
// chain): a recursive implementation grows one stack frame per parent
// link, and merge chains at mainnet scale — or adversarial input — run
// long enough to overflow the goroutine stack.
func (uf *unionFind) find(a ethtypes.Address) (ethtypes.Address, bool) {
	root, ok := uf.parent[a]
	if !ok {
		return ethtypes.Address{}, false
	}
	for root != uf.parent[root] {
		root = uf.parent[root]
	}
	for a != root {
		a, uf.parent[a] = uf.parent[a], root
	}
	return root, true
}

// union merges the sets of a and b, reporting whether two distinct sets
// were actually joined; unknown members are ignored unless both are
// known.
func (uf *unionFind) union(a, b ethtypes.Address) bool {
	ra, okA := uf.find(a)
	rb, okB := uf.find(b)
	if !okA || !okB || ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

func sortAddrs(addrs []ethtypes.Address) {
	sort.Slice(addrs, func(i, j int) bool { return addrLess(addrs[i], addrs[j]) })
}

func addrLess(a, b ethtypes.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
