package cluster

import (
	"encoding/binary"
	"runtime/debug"
	"testing"

	"repro/internal/ethtypes"
)

// chainAddr derives a distinct address per chain position.
func chainAddr(i int) ethtypes.Address {
	var a ethtypes.Address
	binary.BigEndian.PutUint64(a[12:], uint64(i)+1)
	return a
}

// TestFindDeepChainIterative is the regression test for the recursive
// unionFind.find: it builds a one-million-link parent chain and
// resolves it from the deep end. The recursion this guards against
// grew one stack frame per link, so under the lowered stack ceiling it
// faulted ("goroutine stack exceeds ... limit") long before reaching
// the root; the iterative two-pass version needs constant stack at any
// chain length.
func TestFindDeepChainIterative(t *testing.T) {
	const links = 1_000_000
	uf := newUnionFind(nil)
	uf.add(chainAddr(0))
	for i := 1; i <= links; i++ {
		uf.parent[chainAddr(i)] = chainAddr(i - 1)
	}

	// 64 MiB is far more than the iterative find will ever touch and far
	// less than a million recursive frames need.
	old := debug.SetMaxStack(64 << 20)
	defer debug.SetMaxStack(old)

	root, ok := uf.find(chainAddr(links))
	if !ok {
		t.Fatalf("find(deep member) reported unknown")
	}
	if root != chainAddr(0) {
		t.Fatalf("find(deep member) = %s, want %s", root, chainAddr(0))
	}
	// The second pass must have compressed the entire walked chain.
	for _, i := range []int{1, links / 2, links - 1, links} {
		if got := uf.parent[chainAddr(i)]; got != chainAddr(0) {
			t.Fatalf("path not compressed at link %d: parent = %s, want %s", i, got, chainAddr(0))
		}
	}
	// A repeated lookup hits the compressed path.
	if root, ok := uf.find(chainAddr(links)); !ok || root != chainAddr(0) {
		t.Fatalf("second find = (%s, %v), want (%s, true)", root, ok, chainAddr(0))
	}
}

// TestUnionAfterDeepChain exercises union across two long chains — the
// shape an incremental radar feed produces when two large families
// merge.
func TestUnionAfterDeepChain(t *testing.T) {
	const links = 100_000
	uf := newUnionFind(nil)
	uf.add(chainAddr(0))
	for i := 1; i <= links; i++ {
		uf.parent[chainAddr(i)] = chainAddr(i - 1)
	}
	uf.add(chainAddr(links + 1))
	for i := links + 2; i <= 2*links; i++ {
		uf.parent[chainAddr(i)] = chainAddr(i - 1)
	}
	if !uf.union(chainAddr(links), chainAddr(2*links)) {
		t.Fatalf("union of two distinct chains reported no merge")
	}
	ra, _ := uf.find(chainAddr(links/2))
	rb, _ := uf.find(chainAddr(links+links/2))
	if ra != rb {
		t.Fatalf("roots differ after union: %s vs %s", ra, rb)
	}
}
