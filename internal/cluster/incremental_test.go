package cluster_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
)

// feedIncremental replays every dataset operator's history through an
// incremental clusterer, the way the radar daemon feeds it.
func feedIncremental(t *testing.T, inc *cluster.Incremental) {
	t.Helper()
	src := core.LocalSource{Chain: world.Chain}
	for _, rec := range dataset.SortedOperators() {
		inc.AddOperator(rec.Address)
	}
	for _, rec := range dataset.SortedOperators() {
		hashes, err := src.TransactionsOf(rec.Address)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hashes {
			tx, err := src.Transaction(h)
			if err != nil {
				t.Fatal(err)
			}
			inc.ObserveTx(rec.Address, tx)
		}
	}
}

// TestIncrementalMatchesBatch is the §7.1 equivalence contract: the
// incremental feed over the same histories must produce exactly the
// batch Clusterer's family list.
func TestIncrementalMatchesBatch(t *testing.T) {
	batch := runCluster(t, cluster.Clusterer{})

	inc := cluster.NewIncremental(world.Labels, nil)
	feedIncremental(t, inc)
	fams := inc.Families(dataset, nil)

	if !reflect.DeepEqual(fams, batch) {
		t.Fatalf("incremental families diverge from batch:\nincremental: %+v\nbatch: %+v", summarize(fams), summarize(batch))
	}
}

// TestIncrementalSnapshotRoundTrip checks that Snapshot/Restore is
// lossless and deterministic: the restored clusterer yields the same
// families, and re-snapshotting yields identical bytes.
func TestIncrementalSnapshotRoundTrip(t *testing.T) {
	inc := cluster.NewIncremental(world.Labels, nil)
	feedIncremental(t, inc)
	blob, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored := cluster.NewIncremental(world.Labels, nil)
	if err := restored.Restore(blob); err != nil {
		t.Fatal(err)
	}
	blob2, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("snapshot not stable across restore:\n%s\nvs\n%s", blob, blob2)
	}
	if got, want := restored.Families(dataset, nil), inc.Families(dataset, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored families diverge:\nrestored: %+v\noriginal: %+v", summarize(got), summarize(want))
	}
}

// TestIncrementalDegradedTaint mirrors the batch Degraded pass-through.
func TestIncrementalDegradedTaint(t *testing.T) {
	inc := cluster.NewIncremental(world.Labels, nil)
	feedIncremental(t, inc)
	clean := inc.Families(dataset, nil)
	for _, fam := range clean {
		if fam.Tainted {
			t.Fatalf("clean feed produced tainted family %q", fam.Name)
		}
	}
	degraded := map[ethtypes.Address]bool{clean[0].Operators[0]: true}
	fams := inc.Families(dataset, degraded)
	var found bool
	for _, fam := range fams {
		for _, op := range fam.Operators {
			if degraded[op] && fam.Tainted {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("degraded operator did not taint its family")
	}
}

func summarize(fams []*cluster.Family) []string {
	var out []string
	for _, f := range fams {
		out = append(out, f.Name)
	}
	return out
}
