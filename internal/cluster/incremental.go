package cluster

import (
	"encoding/json"
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/obs"
)

// Incremental accumulates §7.1 clustering evidence one transaction at
// a time — the radar daemon's path. Direct operator-to-operator edges
// are unioned the moment both parties are members; shared-counterparty
// evidence is only recorded, and the unions it implies are applied at
// rollup time against the final dataset (mirroring the batch walk,
// which checks counterparties against the finished contract set).
// Families(ds) therefore returns exactly what the batch Clusterer
// would compute over the same dataset and edge evidence.
type Incremental struct {
	// Labels gates the shared-counterparty edge kind, as in Clusterer.
	Labels *labels.Directory
	// DisableSharedAccountEdges / DisableDirectEdges mirror Clusterer.
	DisableSharedAccountEdges bool
	DisableDirectEdges        bool

	uf      *unionFind
	tainted map[ethtypes.Address]bool
	// counterparties records, per Etherscan-phishing counterparty, the
	// member operators seen transacting with it.
	counterparties map[ethtypes.Address]map[ethtypes.Address]bool

	reg    *obs.Registry
	merges *obs.CounterVec
}

// NewIncremental returns an empty incremental clusterer reporting
// through reg (nil disables instrumentation).
func NewIncremental(lbls *labels.Directory, reg *obs.Registry) *Incremental {
	return &Incremental{
		Labels:         lbls,
		uf:             newUnionFind(nil),
		tainted:        make(map[ethtypes.Address]bool),
		counterparties: make(map[ethtypes.Address]map[ethtypes.Address]bool),
		reg:            reg,
		merges:         reg.CounterVec("daas_cluster_union_merges_total", "operator union-find merges per §7.1 edge kind", "edge"),
	}
}

// AddOperator registers a dataset operator as a singleton set. The
// caller is expected to follow up with ObserveTx over the operator's
// transaction history, so feed-time membership checks converge to what
// the batch walk sees.
func (inc *Incremental) AddOperator(op ethtypes.Address) { inc.uf.add(op) }

// Contains reports whether op has been added.
func (inc *Incremental) Contains(op ethtypes.Address) bool {
	_, ok := inc.uf.parent[op]
	return ok
}

// ObserveQuarantined marks op tainted: a record in its history was
// refused by the integrity layer, so an edge may have been missed.
func (inc *Incremental) ObserveQuarantined(op ethtypes.Address) { inc.tainted[op] = true }

// ObserveTx feeds one transaction of member operator op — the body of
// the batch Clusterer's history walk. A nil tx counts as quarantined.
func (inc *Incremental) ObserveTx(op ethtypes.Address, tx *chain.Transaction) {
	if tx == nil {
		inc.tainted[op] = true
		return
	}
	if tx.To == nil {
		return
	}
	from, to := tx.From, *tx.To
	// Direct transfer between two member operators.
	if !inc.DisableDirectEdges {
		if inc.Contains(from) && inc.Contains(to) {
			if inc.uf.union(from, to) {
				inc.merges.With("direct").Inc()
			}
			return
		}
	}
	// Shared Etherscan-labeled phishing counterparty. Whether the
	// counterparty is a dataset contract is a property of the final
	// dataset, so that exclusion is applied at rollup, not here.
	if inc.DisableSharedAccountEdges || inc.Labels == nil {
		return
	}
	counterparty, ok := counterpartyOf(op, from, to)
	if !ok {
		return
	}
	if !isEtherscanPhishing(inc.Labels, counterparty) {
		return
	}
	set := inc.counterparties[counterparty]
	if set == nil {
		set = make(map[ethtypes.Address]bool)
		inc.counterparties[counterparty] = set
	}
	set[op] = true
}

// Families rolls the accumulated evidence up into the family list for
// ds. The union-find is cloned, the deferred shared-counterparty
// unions are applied (skipping counterparties that ended up in the
// dataset's contract set, exactly as the batch walk does), degraded
// accounts are merged into the taint set, and the shared materialize
// step produces the families. The receiver is not mutated, so rollups
// can run per update batch.
func (inc *Incremental) Families(ds *core.Dataset, degraded map[ethtypes.Address]bool) []*Family {
	uf := inc.uf.clone()
	cps := make([]ethtypes.Address, 0, len(inc.counterparties))
	for cp := range inc.counterparties {
		cps = append(cps, cp)
	}
	sortAddrs(cps)
	for _, cp := range cps {
		if _, isContract := ds.Contracts[cp]; isContract {
			continue
		}
		members := make([]ethtypes.Address, 0, len(inc.counterparties[cp]))
		for op := range inc.counterparties[cp] {
			members = append(members, op)
		}
		sortAddrs(members)
		for _, op := range members[1:] {
			if uf.union(members[0], op) {
				inc.merges.With("shared_counterparty").Inc()
			}
		}
	}
	tainted := make(map[ethtypes.Address]bool, len(inc.tainted)+len(degraded))
	for a := range inc.tainted {
		tainted[a] = true
	}
	for a := range degraded {
		tainted[a] = true
	}
	return materialize(ds, uf, tainted, inc.Labels, inc.reg)
}

// incrementalJSON is the deterministic wire form of an Incremental:
// sorted members, non-singleton groups (sorted by first member; only
// the partition matters, rollup canonicalizes representatives),
// counterparty evidence, and the taint set.
type incrementalJSON struct {
	Members        []string           `json:"members"`
	Groups         [][]string         `json:"groups,omitempty"`
	Counterparties []counterpartyJSON `json:"counterparties,omitempty"`
	Tainted        []string           `json:"tainted,omitempty"`
}

type counterpartyJSON struct {
	Counterparty string   `json:"counterparty"`
	Operators    []string `json:"operators"`
}

// Snapshot serializes the clusterer state; identical states produce
// identical bytes.
func (inc *Incremental) Snapshot() ([]byte, error) {
	out := incrementalJSON{}
	members := make([]ethtypes.Address, 0, len(inc.uf.parent))
	for a := range inc.uf.parent {
		members = append(members, a)
	}
	sortAddrs(members)
	groups := make(map[ethtypes.Address][]string)
	for _, a := range members {
		out.Members = append(out.Members, a.Hex())
		root, _ := inc.uf.find(a)
		groups[root] = append(groups[root], a.Hex())
	}
	roots := make([]ethtypes.Address, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sortAddrs(roots)
	for _, root := range roots {
		if g := groups[root]; len(g) > 1 {
			out.Groups = append(out.Groups, g) // members were walked sorted
		}
	}
	// Group order must not depend on union-find representatives: sort by
	// first (minimum) member.
	sortGroups(out.Groups)
	cps := make([]ethtypes.Address, 0, len(inc.counterparties))
	for cp := range inc.counterparties {
		cps = append(cps, cp)
	}
	sortAddrs(cps)
	for _, cp := range cps {
		ops := make([]ethtypes.Address, 0, len(inc.counterparties[cp]))
		for op := range inc.counterparties[cp] {
			ops = append(ops, op)
		}
		sortAddrs(ops)
		row := counterpartyJSON{Counterparty: cp.Hex()}
		for _, op := range ops {
			row.Operators = append(row.Operators, op.Hex())
		}
		out.Counterparties = append(out.Counterparties, row)
	}
	taintList := make([]ethtypes.Address, 0, len(inc.tainted))
	for a := range inc.tainted {
		taintList = append(taintList, a)
	}
	sortAddrs(taintList)
	for _, a := range taintList {
		out.Tainted = append(out.Tainted, a.Hex())
	}
	return json.Marshal(out)
}

func sortGroups(groups [][]string) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j][0] < groups[j-1][0]; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}

// Restore replaces the clusterer state with a Snapshot's contents.
func (inc *Incremental) Restore(blob []byte) error {
	var in incrementalJSON
	if err := json.Unmarshal(blob, &in); err != nil {
		return fmt.Errorf("cluster: decoding incremental snapshot: %w", err)
	}
	inc.uf = newUnionFind(nil)
	inc.tainted = make(map[ethtypes.Address]bool)
	inc.counterparties = make(map[ethtypes.Address]map[ethtypes.Address]bool)
	for _, s := range in.Members {
		a, err := ethtypes.HexToAddress(s)
		if err != nil {
			return fmt.Errorf("cluster: incremental member: %w", err)
		}
		inc.uf.add(a)
	}
	for _, g := range in.Groups {
		if len(g) == 0 {
			continue
		}
		first, err := ethtypes.HexToAddress(g[0])
		if err != nil {
			return fmt.Errorf("cluster: incremental group member: %w", err)
		}
		for _, s := range g[1:] {
			a, err := ethtypes.HexToAddress(s)
			if err != nil {
				return fmt.Errorf("cluster: incremental group member: %w", err)
			}
			inc.uf.union(first, a)
		}
	}
	for _, row := range in.Counterparties {
		cp, err := ethtypes.HexToAddress(row.Counterparty)
		if err != nil {
			return fmt.Errorf("cluster: incremental counterparty: %w", err)
		}
		set := make(map[ethtypes.Address]bool, len(row.Operators))
		for _, s := range row.Operators {
			a, err := ethtypes.HexToAddress(s)
			if err != nil {
				return fmt.Errorf("cluster: incremental counterparty operator: %w", err)
			}
			set[a] = true
		}
		inc.counterparties[cp] = set
	}
	for _, s := range in.Tainted {
		a, err := ethtypes.HexToAddress(s)
		if err != nil {
			return fmt.Errorf("cluster: incremental tainted account: %w", err)
		}
		inc.tainted[a] = true
	}
	return nil
}
