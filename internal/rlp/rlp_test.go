package rlp

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/big"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Canonical vectors from the Ethereum wiki RLP specification.
func TestEncodeKnownAnswers(t *testing.T) {
	cases := []struct {
		in   Item
		want string
	}{
		{[]byte("dog"), "83646f67"},
		{[]Item{[]byte("cat"), []byte("dog")}, "c88363617483646f67"},
		{[]byte{}, "80"},
		{uint64(0), "80"},
		{[]byte{0x00}, "00"},
		{uint64(15), "0f"},
		{uint64(1024), "820400"},
		{[]Item{}, "c0"},
		// Set-theoretic representation of three: [ [], [[]], [ [], [[]] ] ].
		{[]Item{[]Item{}, []Item{[]Item{}}, []Item{[]Item{}, []Item{[]Item{}}}}, "c7c0c1c0c3c0c1c0"},
		{[]byte("Lorem ipsum dolor sit amet, consectetur adipisicing elit"),
			"b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365637465747572206164697069736963696e6720656c6974"},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		if hex.EncodeToString(got) != c.want {
			t.Errorf("Encode(%v) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestEncodeBig(t *testing.T) {
	v, _ := new(big.Int).SetString("102030405060708090a0b0c0d0e0f2", 16)
	got, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	want := "8f102030405060708090a0b0c0d0e0f2"
	if hex.EncodeToString(got) != want {
		t.Errorf("got %x, want %s", got, want)
	}
	if _, err := Encode(big.NewInt(-1)); err == nil {
		t.Error("negative big.Int accepted")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	items := []Item{
		[]byte("hello"),
		[]Item{[]byte("a"), []Item{[]byte("nested"), []byte{}}, []byte(strings.Repeat("x", 100))},
		[]byte{},
	}
	for _, it := range items {
		enc, err := Encode(it)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%x): %v", enc, err)
		}
		if !reflect.DeepEqual(normalize(it), dec) {
			t.Errorf("round trip changed %#v to %#v", it, dec)
		}
	}
}

// normalize converts encoder-input shapes into the decoder's output shape.
func normalize(it Item) Item {
	switch x := it.(type) {
	case []byte:
		return append([]byte{}, x...)
	case []Item:
		out := make([]Item, len(x))
		for i := range x {
			out[i] = normalize(x[i])
		}
		return out
	default:
		return it
	}
}

func TestDecodeRejectsNonCanonical(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"single byte wrapped", "8100"},        // 0x00 must encode as 0x00
		{"long form short string", "b801ff"},   // 1-byte string in long form
		{"leading zero in length", "b90001ff"}, // length has leading zero
		{"truncated string", "83646f"},
		{"truncated list", "c883636174"},
		{"empty input", ""},
	}
	for _, c := range cases {
		in, _ := hex.DecodeString(c.in)
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: Decode(%s) succeeded, want error", c.name, c.in)
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	in, _ := hex.DecodeString("83646f6700")
	if _, err := Decode(in); !errors.Is(err, ErrTrailing) {
		t.Errorf("got %v, want ErrTrailing", err)
	}
}

func TestUintAccessors(t *testing.T) {
	enc, _ := Encode(uint64(1024))
	item, _ := Decode(enc)
	v, err := Uint(item)
	if err != nil || v != 1024 {
		t.Errorf("Uint = %d, %v; want 1024", v, err)
	}
	// Leading-zero integers are rejected.
	if _, err := Uint([]byte{0x00, 0x01}); err == nil {
		t.Error("Uint accepted leading zero")
	}
	if _, err := Uint([]Item{}); err == nil {
		t.Error("Uint accepted a list")
	}
	if _, err := Uint(bytes.Repeat([]byte{0xff}, 9)); err == nil {
		t.Error("Uint accepted 72-bit integer")
	}
}

func TestBigAccessor(t *testing.T) {
	want, _ := new(big.Int).SetString("ffffffffffffffffffffffff", 16)
	enc, _ := Encode(want)
	item, _ := Decode(enc)
	got, err := Big(item)
	if err != nil || got.Cmp(want) != 0 {
		t.Errorf("Big = %v, %v; want %v", got, err, want)
	}
}

func TestListAccessor(t *testing.T) {
	enc, _ := Encode([]Item{[]byte("a"), []byte("b")})
	item, _ := Decode(enc)
	l, err := List(item)
	if err != nil || len(l) != 2 {
		t.Fatalf("List = %v, %v", l, err)
	}
	if _, err := List([]byte("str")); err == nil {
		t.Error("List accepted a string item")
	}
	if _, err := Bytes([]Item{}); err == nil {
		t.Error("Bytes accepted a list item")
	}
}

func TestEncodeUnsupported(t *testing.T) {
	if _, err := Encode(3.14); !errors.Is(err, ErrType) {
		t.Errorf("got %v, want ErrType", err)
	}
	if _, err := Encode(-1); !errors.Is(err, ErrType) {
		t.Errorf("negative int: got %v, want ErrType", err)
	}
}

// Property: every byte string round-trips.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		enc, err := Encode(data)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		b, err := Bytes(dec)
		return err == nil && bytes.Equal(b, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every uint64 round-trips canonically.
func TestQuickUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := AppendUint(nil, v)
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		got, err := Uint(dec)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lists of strings round-trip with order preserved.
func TestQuickListRoundTrip(t *testing.T) {
	f := func(parts [][]byte) bool {
		enc, err := Encode(parts)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		l, err := List(dec)
		if err != nil || len(l) != len(parts) {
			return false
		}
		for i := range parts {
			b, err := Bytes(l[i])
			if err != nil || !bytes.Equal(b, parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeTxShape(b *testing.B) {
	payload := make([]byte, 68)
	tx := []Item{uint64(7), uint64(30_000_000_000), uint64(21000),
		bytes.Repeat([]byte{0xaa}, 20), big.NewInt(1e18), payload}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(tx); err != nil {
			b.Fatal(err)
		}
	}
}
