// Package rlp implements Ethereum's Recursive Length Prefix serialization.
//
// RLP is the wire format for transactions and block headers; the chain
// substrate hashes RLP encodings to derive transaction and block
// identities, and the dataset exporter uses it for compact on-disk
// snapshots. Only the two RLP kinds exist: byte strings and lists.
package rlp

import (
	"errors"
	"fmt"
	"math/big"
)

// Item is a decoded RLP value: either a byte string ([]byte) or a list
// ([]Item).
type Item interface{}

var (
	// ErrTruncated indicates the input ended before a complete item.
	ErrTruncated = errors.New("rlp: truncated input")
	// ErrCanonical indicates a non-minimal length or integer encoding.
	ErrCanonical = errors.New("rlp: non-canonical encoding")
	// ErrTrailing indicates extra bytes after the top-level item.
	ErrTrailing = errors.New("rlp: trailing bytes")
	// ErrType indicates an unsupported Go type passed to Encode.
	ErrType = errors.New("rlp: unsupported type")
)

// AppendString appends the RLP encoding of the byte string s to dst.
func AppendString(dst, s []byte) []byte {
	if len(s) == 1 && s[0] < 0x80 {
		return append(dst, s[0])
	}
	dst = appendLength(dst, len(s), 0x80)
	return append(dst, s...)
}

// AppendUint appends the canonical RLP encoding of v (big-endian,
// no leading zeros; zero encodes as the empty string).
func AppendUint(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, 0x80)
	}
	var buf [8]byte
	n := 0
	for x := v; x > 0; x >>= 8 {
		n++
	}
	for i := 0; i < n; i++ {
		buf[n-1-i] = byte(v >> (8 * i))
	}
	return AppendString(dst, buf[:n])
}

// AppendBig appends the canonical RLP encoding of a non-negative big
// integer. Nil encodes as zero.
func AppendBig(dst []byte, v *big.Int) []byte {
	if v == nil || v.Sign() == 0 {
		return append(dst, 0x80)
	}
	return AppendString(dst, v.Bytes())
}

// AppendList appends a list header for a payload of n bytes; the caller
// must append exactly n payload bytes afterwards. Most callers should
// prefer EncodeList, which measures automatically.
func AppendList(dst []byte, payloadLen int) []byte {
	return appendLength(dst, payloadLen, 0xc0)
}

func appendLength(dst []byte, n int, base byte) []byte {
	if n < 56 {
		return append(dst, base+byte(n))
	}
	var buf [8]byte
	k := 0
	for x := n; x > 0; x >>= 8 {
		k++
	}
	for i := 0; i < k; i++ {
		buf[k-1-i] = byte(n >> (8 * i))
	}
	dst = append(dst, base+55+byte(k))
	return append(dst, buf[:k]...)
}

// Encode encodes a Go value as RLP. Supported types: []byte, string,
// uint64, *big.Int, and []Item / []interface{} / [][]byte lists whose
// elements are themselves supported.
func Encode(v Item) ([]byte, error) {
	return encodeTo(nil, v)
}

func encodeTo(dst []byte, v Item) ([]byte, error) {
	switch x := v.(type) {
	case []byte:
		return AppendString(dst, x), nil
	case string:
		return AppendString(dst, []byte(x)), nil
	case uint64:
		return AppendUint(dst, x), nil
	case uint:
		return AppendUint(dst, uint64(x)), nil
	case int:
		if x < 0 {
			return nil, fmt.Errorf("%w: negative int", ErrType)
		}
		return AppendUint(dst, uint64(x)), nil
	case *big.Int:
		if x != nil && x.Sign() < 0 {
			return nil, fmt.Errorf("%w: negative big.Int", ErrType)
		}
		return AppendBig(dst, x), nil
	case []Item:
		return encodeList(dst, x)
	case [][]byte:
		items := make([]Item, len(x))
		for i := range x {
			items[i] = x[i]
		}
		return encodeList(dst, items)
	default:
		return nil, fmt.Errorf("%w: %T", ErrType, v)
	}
}

func encodeList(dst []byte, items []Item) ([]byte, error) {
	var payload []byte
	for _, it := range items {
		var err error
		payload, err = encodeTo(payload, it)
		if err != nil {
			return nil, err
		}
	}
	dst = AppendList(dst, len(payload))
	return append(dst, payload...), nil
}

// Decode parses a single top-level RLP item and requires the input to be
// fully consumed.
func Decode(data []byte) (Item, error) {
	item, rest, err := decodeItem(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailing
	}
	return item, nil
}

func decodeItem(data []byte) (Item, []byte, error) {
	if len(data) == 0 {
		return nil, nil, ErrTruncated
	}
	b := data[0]
	switch {
	case b < 0x80: // single byte
		return []byte{b}, data[1:], nil
	case b <= 0xb7: // short string
		n := int(b - 0x80)
		if len(data) < 1+n {
			return nil, nil, ErrTruncated
		}
		s := data[1 : 1+n]
		if n == 1 && s[0] < 0x80 {
			return nil, nil, fmt.Errorf("%w: single byte below 0x80 must be self-encoded", ErrCanonical)
		}
		return cloneBytes(s), data[1+n:], nil
	case b <= 0xbf: // long string
		n, rest, err := decodeLongLength(data, b-0xb7)
		if err != nil {
			return nil, nil, err
		}
		if n < 56 {
			return nil, nil, fmt.Errorf("%w: long form for short string", ErrCanonical)
		}
		if len(rest) < n {
			return nil, nil, ErrTruncated
		}
		return cloneBytes(rest[:n]), rest[n:], nil
	case b <= 0xf7: // short list
		n := int(b - 0xc0)
		if len(data) < 1+n {
			return nil, nil, ErrTruncated
		}
		items, err := decodeListPayload(data[1 : 1+n])
		return items, data[1+n:], err
	default: // long list
		n, rest, err := decodeLongLength(data, b-0xf7)
		if err != nil {
			return nil, nil, err
		}
		if n < 56 {
			return nil, nil, fmt.Errorf("%w: long form for short list", ErrCanonical)
		}
		if len(rest) < n {
			return nil, nil, ErrTruncated
		}
		items, err := decodeListPayload(rest[:n])
		return items, rest[n:], err
	}
}

func decodeLongLength(data []byte, lenOfLen byte) (int, []byte, error) {
	k := int(lenOfLen)
	if len(data) < 1+k {
		return 0, nil, ErrTruncated
	}
	if data[1] == 0 {
		return 0, nil, fmt.Errorf("%w: leading zero in length", ErrCanonical)
	}
	if k > 8 {
		return 0, nil, fmt.Errorf("%w: length of length %d", ErrCanonical, k)
	}
	n := 0
	for _, c := range data[1 : 1+k] {
		n = n<<8 | int(c)
		if n < 0 {
			return 0, nil, fmt.Errorf("%w: length overflow", ErrCanonical)
		}
	}
	return n, data[1+k:], nil
}

func decodeListPayload(payload []byte) ([]Item, error) {
	items := []Item{}
	for len(payload) > 0 {
		item, rest, err := decodeItem(payload)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		payload = rest
	}
	return items, nil
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Bytes extracts a byte-string item, failing on lists.
func Bytes(item Item) ([]byte, error) {
	b, ok := item.([]byte)
	if !ok {
		return nil, fmt.Errorf("%w: expected string item, got %T", ErrType, item)
	}
	return b, nil
}

// List extracts a list item, failing on byte strings.
func List(item Item) ([]Item, error) {
	l, ok := item.([]Item)
	if !ok {
		return nil, fmt.Errorf("%w: expected list item, got %T", ErrType, item)
	}
	return l, nil
}

// Uint extracts a canonical unsigned integer from a byte-string item.
func Uint(item Item) (uint64, error) {
	b, err := Bytes(item)
	if err != nil {
		return 0, err
	}
	if len(b) > 8 {
		return 0, fmt.Errorf("%w: integer wider than 64 bits", ErrCanonical)
	}
	if len(b) > 0 && b[0] == 0 {
		return 0, fmt.Errorf("%w: leading zero in integer", ErrCanonical)
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v, nil
}

// Big extracts an arbitrary-precision unsigned integer.
func Big(item Item) (*big.Int, error) {
	b, err := Bytes(item)
	if err != nil {
		return nil, err
	}
	if len(b) > 0 && b[0] == 0 {
		return nil, fmt.Errorf("%w: leading zero in integer", ErrCanonical)
	}
	return new(big.Int).SetBytes(b), nil
}
