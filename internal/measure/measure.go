// Package measure computes the paper's §6 analyses over a recovered
// dataset: victim loss distributions (Fig. 6), operator concentration
// and lifecycles (§6.2), affiliate earnings and associations (§6.3,
// Fig. 7), the §4.3 ratio mix, the §5.2 totals, and the per-family
// roll-up behind Table 2.
package measure

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/prices"
)

// Analyzer runs measurements against a dataset and its chain.
type Analyzer struct {
	Source core.ChainSource
	Oracle *prices.Oracle
	Labels *labels.Directory
}

// Corpus is the single-pass extraction of everything the analyses
// need: per-victim theft events, per-account profits, approval
// lifecycles.
type Corpus struct {
	Dataset *core.Dataset

	// VictimLossUSD is total stolen value per victim account.
	VictimLossUSD map[ethtypes.Address]float64
	// VictimEvents holds each victim's phishing signature events
	// (deposits into and approvals to dataset contracts).
	VictimEvents map[ethtypes.Address][]VictimEvent
	// OperatorProfitUSD and AffiliateProfitUSD aggregate split legs.
	OperatorProfitUSD  map[ethtypes.Address]float64
	AffiliateProfitUSD map[ethtypes.Address]float64
	// AffiliateVictims counts distinct attributable victims per
	// affiliate.
	AffiliateVictims map[ethtypes.Address]map[ethtypes.Address]bool
	// AffiliateOperators records the operators each affiliate shared
	// profits with.
	AffiliateOperators map[ethtypes.Address]map[ethtypes.Address]bool
	// Approvals tracks grant/revoke sequences per (owner, token,
	// spender).
	Approvals map[ApprovalKey]*ApprovalState
	// RatioTxCounts histograms split transactions by operator ratio.
	RatioTxCounts map[int64]int
	// SplitVictims maps each split tx to its attributed victim (zero
	// address when the depositor is itself a DaaS account, e.g. NFT
	// liquidation proceeds).
	SplitVictims map[ethtypes.Hash]ethtypes.Address
	// SkippedQuarantined counts corpus transactions the integrity layer
	// refused — their thefts and approvals are missing from the
	// measurements, making the reported losses a lower bound.
	SkippedQuarantined int64
}

// VictimEvent is one phishing transaction signed by a victim.
type VictimEvent struct {
	Tx    ethtypes.Hash
	Time  time.Time
	Block uint64
	// Deposit is true for direct ETH deposits, false for approvals.
	Deposit bool
	LossUSD float64
}

// ApprovalKey identifies an allowance relationship.
type ApprovalKey struct {
	Owner   ethtypes.Address
	Token   ethtypes.Address
	Spender ethtypes.Address
}

// ApprovalState tracks whether the latest grant was revoked.
type ApprovalState struct {
	Granted time.Time
	Revoked bool
}

// BuildCorpus walks every dataset contract's history once and extracts
// the measurement corpus.
func (a *Analyzer) BuildCorpus(ds *core.Dataset) (*Corpus, error) {
	if a.Source == nil || a.Oracle == nil {
		return nil, fmt.Errorf("measure: Analyzer needs Source and Oracle")
	}
	c := &Corpus{
		Dataset:            ds,
		VictimLossUSD:      make(map[ethtypes.Address]float64),
		VictimEvents:       make(map[ethtypes.Address][]VictimEvent),
		OperatorProfitUSD:  make(map[ethtypes.Address]float64),
		AffiliateProfitUSD: make(map[ethtypes.Address]float64),
		AffiliateVictims:   make(map[ethtypes.Address]map[ethtypes.Address]bool),
		AffiliateOperators: make(map[ethtypes.Address]map[ethtypes.Address]bool),
		Approvals:          make(map[ApprovalKey]*ApprovalState),
		RatioTxCounts:      make(map[int64]int),
		SplitVictims:       make(map[ethtypes.Hash]ethtypes.Address),
	}

	seenTx := make(map[ethtypes.Hash]bool)
	for _, rec := range ds.SortedContracts() {
		contract := rec.Address
		hashes, err := a.Source.TransactionsOf(contract)
		if err != nil {
			return nil, fmt.Errorf("measure: history of %s: %w", contract.Short(), err)
		}
		for _, h := range hashes {
			if seenTx[h] {
				continue
			}
			seenTx[h] = true
			tx, err := a.Source.Transaction(h)
			if err != nil {
				if errors.Is(err, core.ErrQuarantined) {
					c.SkippedQuarantined++
					continue
				}
				return nil, err
			}
			r, err := a.Source.Receipt(h)
			if err != nil {
				if errors.Is(err, core.ErrQuarantined) {
					c.SkippedQuarantined++
					continue
				}
				return nil, err
			}
			if tx == nil || r == nil {
				c.SkippedQuarantined++
				continue
			}
			if !r.Status {
				continue
			}
			a.absorbTransfers(c, ds, tx, r)
			a.absorbApprovals(c, ds, r)
		}
	}
	a.absorbSplits(c, ds)
	return c, nil
}

// absorbTransfers attributes thefts: any transfer whose source is not
// a DaaS account, flowing to a DaaS account, inside a transaction that
// touches a dataset contract, is stolen victim value.
func (a *Analyzer) absorbTransfers(c *Corpus, ds *core.Dataset, tx *chain.Transaction, r *chain.Receipt) {
	for _, tr := range r.Transfers {
		if ds.IsDaaSAccount(tr.From) {
			continue
		}
		if !ds.IsDaaSAccount(tr.To) {
			continue
		}
		usd := a.Oracle.ValueUSD(tr.Asset, tr.Amount, r.Timestamp)
		if usd <= 0 {
			continue
		}
		c.VictimLossUSD[tr.From] += usd
		if tr.Asset.Kind == chain.AssetETH && tx.From == tr.From {
			// A direct deposit is itself a phishing transaction signed
			// by the victim.
			c.VictimEvents[tr.From] = append(c.VictimEvents[tr.From], VictimEvent{
				Tx: r.TxHash, Time: r.Timestamp, Block: r.BlockNumber, Deposit: true, LossUSD: usd,
			})
		}
	}
}

// absorbApprovals tracks allowance grants to dataset contracts and
// their revocations — the §6.1 unrevoked-permission analysis.
func (a *Analyzer) absorbApprovals(c *Corpus, ds *core.Dataset, r *chain.Receipt) {
	for _, ap := range r.Approvals {
		if _, isContract := ds.Contracts[ap.Spender]; !isContract {
			continue
		}
		key := ApprovalKey{Owner: ap.Owner, Token: ap.Token, Spender: ap.Spender}
		// approve(0) and setApprovalForAll(false) both arrive with a
		// zero amount and All unset; everything else is a grant.
		revocation := ap.Amount.IsZero() && !ap.All
		if revocation {
			if st := c.Approvals[key]; st != nil {
				st.Revoked = true
			}
			continue
		}
		if st := c.Approvals[key]; st == nil {
			c.Approvals[key] = &ApprovalState{Granted: r.Timestamp}
		} else {
			st.Granted = r.Timestamp
			st.Revoked = false
		}
		c.VictimEvents[ap.Owner] = append(c.VictimEvents[ap.Owner], VictimEvent{
			Tx: r.TxHash, Time: r.Timestamp, Block: r.BlockNumber,
		})
	}
}

// absorbSplits aggregates profit legs, ratios, and victim
// attributions from the dataset's split records.
func (a *Analyzer) absorbSplits(c *Corpus, ds *core.Dataset) {
	for h, splits := range ds.Splits {
		ratioCounted := make(map[int64]bool)
		for _, sp := range splits {
			opUSD := a.assetUSD(sp.Asset, sp.OperatorAmount, sp.Time)
			affUSD := a.assetUSD(sp.Asset, sp.AffiliateAmount, sp.Time)
			c.OperatorProfitUSD[sp.Operator] += opUSD
			c.AffiliateProfitUSD[sp.Affiliate] += affUSD
			if !ratioCounted[sp.RatioPM] {
				ratioCounted[sp.RatioPM] = true
				c.RatioTxCounts[sp.RatioPM]++
			}
			if c.AffiliateOperators[sp.Affiliate] == nil {
				c.AffiliateOperators[sp.Affiliate] = make(map[ethtypes.Address]bool)
			}
			c.AffiliateOperators[sp.Affiliate][sp.Operator] = true

			victim := a.victimOfSplit(ds, sp)
			c.SplitVictims[h] = victim
			if !victim.IsZero() {
				if c.AffiliateVictims[sp.Affiliate] == nil {
					c.AffiliateVictims[sp.Affiliate] = make(map[ethtypes.Address]bool)
				}
				c.AffiliateVictims[sp.Affiliate][victim] = true
			}
		}
	}
}

// victimOfSplit attributes a split to the account that lost the
// tokens: the payer when it is not a DaaS account (ERC-20 pulls), else
// the non-DaaS depositor of the same transaction (ETH thefts). NFT
// liquidation splits have no victim in the split transaction itself.
func (a *Analyzer) victimOfSplit(ds *core.Dataset, sp core.Split) ethtypes.Address {
	if !ds.IsDaaSAccount(sp.Payer) {
		return sp.Payer
	}
	r, err := a.Source.Receipt(sp.TxHash)
	if err != nil || r == nil {
		return ethtypes.Address{}
	}
	for _, tr := range r.Transfers {
		if tr.To == sp.Contract && !ds.IsDaaSAccount(tr.From) {
			return tr.From
		}
	}
	return ethtypes.Address{}
}

func (a *Analyzer) assetUSD(asset chain.Asset, amount ethtypes.Wei, t time.Time) float64 {
	return a.Oracle.ValueUSD(asset, amount, t)
}

// Totals is the §5.2 headline: overall operator and affiliate takings
// and the victim population.
type Totals struct {
	OperatorUSD  float64
	AffiliateUSD float64
	Victims      int
	ProfitTxs    int
}

// Totals computes the headline numbers.
func (c *Corpus) Totals() Totals {
	t := Totals{ProfitTxs: len(c.Dataset.Splits)}
	for _, v := range c.OperatorProfitUSD {
		t.OperatorUSD += v
	}
	for _, v := range c.AffiliateProfitUSD {
		t.AffiliateUSD += v
	}
	t.Victims = len(c.VictimLossUSD)
	return t
}

// Bucket is one band of a distribution report.
type Bucket struct {
	Label    string
	Count    int
	Fraction float64
}

// bucketize builds distribution shares from thresholds.
func bucketize(values []float64, bounds []float64, labels []string) []Bucket {
	counts := make([]int, len(bounds)+1)
	for _, v := range values {
		idx := len(bounds)
		for i, b := range bounds {
			if v < b {
				idx = i
				break
			}
		}
		counts[idx]++
	}
	out := make([]Bucket, len(counts))
	total := len(values)
	for i, n := range counts {
		out[i] = Bucket{Label: labels[i], Count: n}
		if total > 0 {
			out[i].Fraction = float64(n) / float64(total)
		}
	}
	return out
}

// sortedUSD returns map values sorted descending.
func sortedUSD(m map[ethtypes.Address]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

func sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}
