package measure_test

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/measure"
	"repro/internal/worldgen"
)

type fixture struct {
	world  *worldgen.World
	ds     *core.Dataset
	corpus *measure.Corpus
	fams   []*cluster.Family
}

var fix = func() *fixture {
	w, err := worldgen.Generate(worldgen.TestConfig(2025))
	if err != nil {
		panic(err)
	}
	p := &core.Pipeline{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
	ds, err := p.Build()
	if err != nil {
		panic(err)
	}
	an := &measure.Analyzer{Source: core.LocalSource{Chain: w.Chain}, Oracle: w.Oracle, Labels: w.Labels}
	corpus, err := an.BuildCorpus(ds)
	if err != nil {
		panic(err)
	}
	cl := cluster.Clusterer{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
	fams, err := cl.Cluster(ds)
	if err != nil {
		panic(err)
	}
	return &fixture{world: w, ds: ds, corpus: corpus, fams: fams}
}()

func TestTotalsMatchGroundTruth(t *testing.T) {
	tot := fix.corpus.Totals()
	// Planted totals.
	var plantedLoss float64
	for _, v := range fix.world.Truth.VictimLossUSD {
		plantedLoss += v
	}
	measured := tot.OperatorUSD + tot.AffiliateUSD
	if relDiff(measured, plantedLoss) > 0.08 {
		t.Errorf("measured profits $%.0f vs planted losses $%.0f", measured, plantedLoss)
	}
	// Victim counts line up.
	if relDiffInt(tot.Victims, len(fix.world.Truth.VictimLossUSD)) > 0.05 {
		t.Errorf("victims %d vs planted %d", tot.Victims, len(fix.world.Truth.VictimLossUSD))
	}
	// Operators take the minority share (ratio set tops out at 40%).
	if tot.OperatorUSD >= tot.AffiliateUSD {
		t.Errorf("operator share $%.0f not below affiliate share $%.0f", tot.OperatorUSD, tot.AffiliateUSD)
	}
}

func TestVictimReportShape(t *testing.T) {
	rep := fix.corpus.Victims()
	if rep.Victims == 0 {
		t.Fatal("no victims measured")
	}
	// Fig. 6 shape: strong majority below $1,000.
	if rep.Under1000Fraction < 0.6 {
		t.Errorf("under-$1k fraction %.2f, want > 0.6", rep.Under1000Fraction)
	}
	var total float64
	for _, b := range rep.LossBuckets {
		total += b.Fraction
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("bucket fractions sum to %f", total)
	}
	if rep.MultiPhished == 0 {
		t.Error("no multi-phished victims found")
	}
	if rep.SimultaneousFraction <= 0.3 {
		t.Errorf("simultaneous fraction %.2f too low (paper: 0.78)", rep.SimultaneousFraction)
	}
	if rep.UnrevokedFraction <= 0.05 || rep.UnrevokedFraction >= 0.9 {
		t.Errorf("unrevoked fraction %.2f implausible (paper: 0.29)", rep.UnrevokedFraction)
	}
	if rep.ActiveDays == 0 || rep.AvgDailyVictims <= 0 {
		t.Error("daily victim series empty")
	}
}

func TestOperatorReportConcentration(t *testing.T) {
	rep := fix.corpus.Operators(worldgen.DatasetEnd)
	if rep.Operators == 0 || rep.TotalUSD <= 0 {
		t.Fatal("empty operator report")
	}
	// Power-law weighting concentrates profits in the top quartile
	// (paper: 75.7%).
	if rep.TopQuartileShare < 0.5 {
		t.Errorf("top quartile share %.2f, want > 0.5", rep.TopQuartileShare)
	}
	if rep.TopEarnerUSD <= 0 {
		t.Error("no top earner")
	}
	if rep.InactiveCount > 0 && rep.MaxLifecycleDays < rep.MinLifecycleDays {
		t.Error("lifecycle bounds inverted")
	}
}

func TestAffiliateReport(t *testing.T) {
	rep := fix.corpus.Affiliates()
	if rep.Affiliates == 0 {
		t.Fatal("no affiliates")
	}
	if rep.SingleOperatorFraction < 0.4 {
		t.Errorf("single-operator fraction %.2f, want ≳ 0.6", rep.SingleOperatorFraction)
	}
	if rep.UpToThreeFraction < rep.SingleOperatorFraction {
		t.Error("≤3 fraction below single fraction")
	}
	if rep.UpToThreeFraction < 0.8 {
		t.Errorf("≤3 operators fraction %.2f, want ≳ 0.9", rep.UpToThreeFraction)
	}
	if rep.Over10VictimsFraction <= 0 || rep.Over10VictimsFraction >= 1 {
		t.Errorf("traffic fraction degenerate: %.2f", rep.Over10VictimsFraction)
	}
	var total float64
	for _, b := range rep.ProfitBuckets {
		total += b.Fraction
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("profit buckets sum to %f", total)
	}
}

func TestRatioDistribution(t *testing.T) {
	dist := fix.corpus.RatioDistribution()
	if len(dist) == 0 {
		t.Fatal("empty ratio distribution")
	}
	// 20% must dominate (paper: 46.0%).
	if dist[0].PerMille != 200 {
		t.Errorf("dominant ratio %d‰, want 200", dist[0].PerMille)
	}
	if dist[0].Fraction < 0.3 {
		t.Errorf("20%% share %.2f, want ≈ 0.46", dist[0].Fraction)
	}
	var total float64
	for _, rs := range dist {
		total += rs.Fraction
		if rs.PerMille < 100 || rs.PerMille > 400 {
			t.Errorf("unexpected ratio %d‰", rs.PerMille)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("ratio fractions sum to %f", total)
	}
}

func TestFamilyTable(t *testing.T) {
	rows := fix.corpus.FamilyTable(fix.fams, 2)
	if len(rows) != 9 {
		t.Fatalf("family rows = %d, want 9", len(rows))
	}
	// Rows are sorted by victims descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Victims > rows[i-1].Victims {
			t.Error("family rows not sorted by victims")
		}
	}
	// Angel and Inferno lead.
	if rows[0].Name != "Angel Drainer" && rows[0].Name != "Inferno Drainer" {
		t.Errorf("leading family %q", rows[0].Name)
	}
	// Top-3 profit concentration (paper: 93.9%).
	share := measure.TopFamiliesProfitShare(rows, 3)
	if share < 0.85 {
		t.Errorf("top-3 profit share %.3f, want ≳ 0.9", share)
	}
	for _, row := range rows {
		if row.Contracts == 0 || row.Operators == 0 {
			t.Errorf("family %q has empty populations: %+v", row.Name, row)
		}
		if row.End.Before(row.Start) {
			t.Errorf("family %q window inverted", row.Name)
		}
	}
}

func TestLabelCoverage(t *testing.T) {
	cov := fix.corpus.LabelCoverage(func(a ethtypes.Address) bool {
		return fix.world.Labels.Has(a, labels.SourceEtherscan)
	})
	if cov <= 0.01 || cov >= 0.9 {
		t.Errorf("etherscan coverage %.3f implausible (paper: 0.108)", cov)
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func relDiffInt(a, b int) float64 { return relDiff(float64(a), float64(b)) }
