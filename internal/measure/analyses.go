package measure

import (
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/ethtypes"
)

// VictimReport reproduces §6.1 and Fig. 6.
type VictimReport struct {
	Victims      int
	TotalLossUSD float64
	// LossBuckets follows Fig. 6: <$100, $100–1k, $1k–5k, >$5k.
	LossBuckets []Bucket
	// Under1000Fraction is the headline 83.5% statistic.
	Under1000Fraction float64
	// MultiPhished counts victims with two or more phishing signature
	// events.
	MultiPhished int
	// SimultaneousFraction: among multi-phished victims, the share that
	// signed several phishing transactions in one block (paper: 78.1%).
	SimultaneousFraction float64
	// UnrevokedFraction: among multi-phished victims, the share with a
	// still-unrevoked approval to a profit-sharing contract (paper:
	// 28.6%).
	UnrevokedFraction float64
	// AvgDailyVictims and DaysOver100 quantify "more than 100 victims
	// per day".
	AvgDailyVictims float64
	DaysOver100     int
	ActiveDays      int
}

// Victims computes the victim-side report.
func (c *Corpus) Victims() VictimReport {
	rep := VictimReport{Victims: len(c.VictimLossUSD)}
	losses := make([]float64, 0, len(c.VictimLossUSD))
	for _, v := range c.VictimLossUSD {
		losses = append(losses, v)
		rep.TotalLossUSD += v
	}
	rep.LossBuckets = bucketize(losses,
		[]float64{100, 1000, 5000},
		[]string{"less than $100", "between $100 and $1,000", "between $1,000 and $5,000", "more than $5,000"})
	under := 0
	for _, v := range losses {
		if v < 1000 {
			under++
		}
	}
	if len(losses) > 0 {
		rep.Under1000Fraction = float64(under) / float64(len(losses))
	}

	// Multi-phish analysis over signature events.
	var simultaneous, unrevoked int
	victimsWithEvents := 0
	daily := make(map[string]map[ethtypes.Address]bool)
	for victim, events := range c.VictimEvents {
		victimsWithEvents++
		for _, ev := range events {
			day := ev.Time.UTC().Format("2006-01-02")
			if daily[day] == nil {
				daily[day] = make(map[ethtypes.Address]bool)
			}
			daily[day][victim] = true
		}
		if len(events) < 2 {
			continue
		}
		rep.MultiPhished++
		blocks := make(map[uint64]int)
		sameBlock := false
		for _, ev := range events {
			blocks[ev.Block]++
			if blocks[ev.Block] >= 2 {
				sameBlock = true
			}
		}
		// Our chain mines each event batch in its own block, so
		// same-timestamp events are the simultaneity witness as well.
		if !sameBlock {
			times := make(map[int64]int)
			for _, ev := range events {
				times[ev.Time.Unix()]++
				if times[ev.Time.Unix()] >= 2 {
					sameBlock = true
				}
			}
		}
		if sameBlock {
			simultaneous++
		}
		if c.victimHasUnrevoked(victim) {
			unrevoked++
		}
	}
	if rep.MultiPhished > 0 {
		rep.SimultaneousFraction = float64(simultaneous) / float64(rep.MultiPhished)
		rep.UnrevokedFraction = float64(unrevoked) / float64(rep.MultiPhished)
	}
	rep.ActiveDays = len(daily)
	totalDaily := 0
	for _, victims := range daily {
		totalDaily += len(victims)
		if len(victims) > 100 {
			rep.DaysOver100++
		}
	}
	if rep.ActiveDays > 0 {
		rep.AvgDailyVictims = float64(totalDaily) / float64(rep.ActiveDays)
	}
	return rep
}

func (c *Corpus) victimHasUnrevoked(victim ethtypes.Address) bool {
	for key, st := range c.Approvals {
		if key.Owner == victim && !st.Revoked {
			return true
		}
	}
	return false
}

// OperatorReport reproduces §6.2.
type OperatorReport struct {
	Operators int
	TotalUSD  float64
	// TopQuartileShare is the profit share of the top 25% of operator
	// accounts (paper: 25.0% of accounts take 75.7%).
	TopQuartileShare float64
	TopQuartileCount int
	// TopEarnerUSD is the single largest operator account's profit.
	TopEarnerUSD float64
	// Lifecycles of inactive operators, in days.
	MinLifecycleDays float64
	MaxLifecycleDays float64
	InactiveCount    int
	// DirectPairs counts operator pairs connected by direct transfers.
	DirectPairs int
}

// Operators computes the operator-side report. now is the dataset end
// used for the inactivity cutoff.
func (c *Corpus) Operators(now time.Time) OperatorReport {
	rep := OperatorReport{Operators: len(c.Dataset.Operators)}
	profits := sortedUSD(c.OperatorProfitUSD)
	rep.TotalUSD = sum(profits)
	if len(profits) > 0 {
		rep.TopEarnerUSD = profits[0]
		k := (len(profits) + 3) / 4
		rep.TopQuartileCount = k
		if rep.TotalUSD > 0 {
			rep.TopQuartileShare = sum(profits[:k]) / rep.TotalUSD
		}
	}
	first := true
	for _, recAddr := range c.Dataset.SortedOperators() {
		rec := recAddr
		if now.Sub(rec.LastSeen) < 30*24*time.Hour {
			continue // still active
		}
		rep.InactiveCount++
		days := rec.Lifecycle().Hours() / 24
		if first {
			rep.MinLifecycleDays, rep.MaxLifecycleDays = days, days
			first = false
			continue
		}
		if days < rep.MinLifecycleDays {
			rep.MinLifecycleDays = days
		}
		if days > rep.MaxLifecycleDays {
			rep.MaxLifecycleDays = days
		}
	}
	return rep
}

// AffiliateReport reproduces §6.3 and Fig. 7.
type AffiliateReport struct {
	Affiliates int
	TotalUSD   float64
	// ProfitBuckets follows Fig. 7: <$1k, $1k–10k, $10k–50k, >$50k.
	ProfitBuckets     []Bucket
	Over1000Fraction  float64
	Over10000Fraction float64
	// Over10VictimsFraction is the affiliate-traffic statistic (26.1%).
	Over10VictimsFraction float64
	// SingleOperatorFraction and UpToThreeFraction are the association
	// statistics (60.4% and 90.2%).
	SingleOperatorFraction float64
	UpToThreeFraction      float64
}

// Affiliates computes the affiliate-side report.
func (c *Corpus) Affiliates() AffiliateReport {
	rep := AffiliateReport{Affiliates: len(c.Dataset.Affiliates)}
	profits := make([]float64, 0, len(c.AffiliateProfitUSD))
	var over1k, over10k int
	for _, rec := range c.Dataset.SortedAffiliates() {
		v := c.AffiliateProfitUSD[rec.Address]
		profits = append(profits, v)
		rep.TotalUSD += v
		if v > 1000 {
			over1k++
		}
		if v > 10000 {
			over10k++
		}
	}
	rep.ProfitBuckets = bucketize(profits,
		[]float64{1000, 10000, 50000},
		[]string{"less than $1,000", "between $1,000 and $10,000", "between $10,000 and $50,000", "more than $50,000"})
	n := len(profits)
	if n > 0 {
		rep.Over1000Fraction = float64(over1k) / float64(n)
		rep.Over10000Fraction = float64(over10k) / float64(n)
	}
	var over10v, single, upTo3 int
	for _, rec := range c.Dataset.SortedAffiliates() {
		if len(c.AffiliateVictims[rec.Address]) > 10 {
			over10v++
		}
		switch ops := len(c.AffiliateOperators[rec.Address]); {
		case ops == 1:
			single++
			upTo3++
		case ops > 1 && ops <= 3:
			upTo3++
		}
	}
	if n > 0 {
		rep.Over10VictimsFraction = float64(over10v) / float64(n)
		rep.SingleOperatorFraction = float64(single) / float64(n)
		rep.UpToThreeFraction = float64(upTo3) / float64(n)
	}
	return rep
}

// RatioShare is one row of the §4.3 distribution.
type RatioShare struct {
	PerMille int64
	Count    int
	Fraction float64
}

// RatioDistribution histograms profit-sharing transactions by operator
// ratio, descending by share.
func (c *Corpus) RatioDistribution() []RatioShare {
	total := 0
	for _, n := range c.RatioTxCounts {
		total += n
	}
	out := make([]RatioShare, 0, len(c.RatioTxCounts))
	for pm, n := range c.RatioTxCounts {
		rs := RatioShare{PerMille: pm, Count: n}
		if total > 0 {
			rs.Fraction = float64(n) / float64(total)
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PerMille < out[j].PerMille
	})
	return out
}

// FamilyRow is one column of the paper's Table 2.
type FamilyRow struct {
	Name       string
	Contracts  int
	Operators  int
	Affiliates int
	Victims    int
	ProfitUSD  float64
	Start      time.Time
	End        time.Time
	// Primary contract mean lifecycle in days (§7.2), over contracts
	// with at least MinPrimaryTxs transactions.
	PrimaryLifecycleDays float64
	// Tainted carries the clustering-time flag: some of this family's
	// evidence was quarantined, so its figures are lower bounds.
	Tainted bool
	// Fingerprinted counts member contracts carrying at least one
	// static fingerprint; StaticFlagged counts those the screen's
	// scam-shape verdict flagged. Both are 0 when the dataset was not
	// annotated.
	Fingerprinted int
	StaticFlagged int
}

// MinPrimaryTxs is the paper's primary-contract threshold (>100
// profit-sharing transactions) at full scale.
const MinPrimaryTxs = 100

// FamilyTable rolls the clustering result up into Table 2 rows, sorted
// by victim count. primaryThreshold scales MinPrimaryTxs for small
// worlds (pass MinPrimaryTxs at paper scale).
func (c *Corpus) FamilyTable(fams []*cluster.Family, primaryThreshold int) []FamilyRow {
	rows := make([]FamilyRow, 0, len(fams))
	for _, fam := range fams {
		row := FamilyRow{
			Name:       fam.Name,
			Contracts:  len(fam.Contracts),
			Operators:  len(fam.Operators),
			Affiliates: len(fam.Affiliates),
			Tainted:    fam.Tainted,
		}
		victims := make(map[ethtypes.Address]bool)
		for _, op := range fam.Operators {
			row.ProfitUSD += c.OperatorProfitUSD[op]
		}
		for _, aff := range fam.Affiliates {
			row.ProfitUSD += c.AffiliateProfitUSD[aff]
			for v := range c.AffiliateVictims[aff] {
				victims[v] = true
			}
		}
		row.Victims = len(victims)

		var primDays float64
		var primCount int
		for _, con := range fam.Contracts {
			rec := c.Dataset.Contracts[con]
			if rec == nil {
				continue
			}
			if row.Start.IsZero() || rec.FirstSeen.Before(row.Start) {
				row.Start = rec.FirstSeen
			}
			if rec.LastSeen.After(row.End) {
				row.End = rec.LastSeen
			}
			if rec.TxCount >= primaryThreshold {
				primDays += rec.LastSeen.Sub(rec.FirstSeen).Hours() / 24
				primCount++
			}
			if len(rec.Fingerprints) > 0 {
				row.Fingerprinted++
			}
			if rec.StaticFlagged {
				row.StaticFlagged++
			}
		}
		if primCount > 0 {
			row.PrimaryLifecycleDays = primDays / float64(primCount)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Victims != rows[j].Victims {
			return rows[i].Victims > rows[j].Victims
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// TopFamiliesProfitShare returns the combined profit share of the k
// leading families (paper: top 3 take 93.9%).
func TopFamiliesProfitShare(rows []FamilyRow, k int) float64 {
	var total, top float64
	// Rank by profit for this statistic.
	byProfit := append([]FamilyRow{}, rows...)
	sort.Slice(byProfit, func(i, j int) bool { return byProfit[i].ProfitUSD > byProfit[j].ProfitUSD })
	for i, row := range byProfit {
		total += row.ProfitUSD
		if i < k {
			top += row.ProfitUSD
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// LabelCoverage computes the §8.1 statistic: the fraction of dataset
// accounts carrying an Etherscan label.
func (c *Corpus) LabelCoverage(has func(ethtypes.Address) bool) float64 {
	total, labeled := 0, 0
	count := func(a ethtypes.Address) {
		total++
		if has(a) {
			labeled++
		}
	}
	for _, rec := range c.Dataset.SortedContracts() {
		count(rec.Address)
	}
	for _, rec := range c.Dataset.SortedOperators() {
		count(rec.Address)
	}
	for _, rec := range c.Dataset.SortedAffiliates() {
		count(rec.Address)
	}
	if total == 0 {
		return 0
	}
	return float64(labeled) / float64(total)
}
