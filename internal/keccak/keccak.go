// Package keccak implements the Keccak-256 hash function as used by
// Ethereum (the original Keccak padding, not the FIPS-202 SHA3 padding).
//
// Keccak-256 is the workhorse of the Ethereum substrate in this repository:
// it derives contract addresses, transaction hashes, 4-byte function
// selectors, event topics, and EIP-55 checksummed address casing. The
// implementation is a from-scratch sponge over Keccak-f[1600] with a
// 1088-bit rate, written against the Keccak reference specification.
package keccak

import "hash"

const (
	// rate is the sponge rate in bytes for Keccak-256 (1088 bits).
	rate = 136
	// Size is the digest size in bytes.
	Size = 32
)

// roundConstants are the iota-step constants for the 24 rounds of
// Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotationOffsets holds the rho-step rotation amount for lane (x, y),
// indexed as rotationOffsets[x+5*y].
var rotationOffsets = [25]uint{
	0, 1, 62, 28, 27,
	36, 44, 6, 55, 20,
	3, 10, 43, 25, 39,
	41, 45, 15, 21, 8,
	18, 2, 61, 56, 14,
}

// state is the 5x5 lane matrix of Keccak-f[1600], flattened with lane
// (x, y) at index x+5*y.
type state [25]uint64

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// permute applies the full 24-round Keccak-f[1600] permutation in place.
func (a *state) permute() {
	var c, d [5]uint64
	var b state
	for round := 0; round < 24; round++ {
		// Theta.
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// Rho and pi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = rotl(a[x+5*y], rotationOffsets[x+5*y])
			}
		}
		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// Iota.
		a[0] ^= roundConstants[round]
	}
}

// digest is a streaming Keccak-256 state implementing hash.Hash.
type digest struct {
	a      state
	buf    [rate]byte
	buffed int
}

// New256 returns a new streaming Keccak-256 hash. The zero-cost way to
// hash a single buffer is Sum256.
func New256() hash.Hash { return &digest{} }

func (d *digest) Size() int      { return Size }
func (d *digest) BlockSize() int { return rate }

func (d *digest) Reset() {
	d.a = state{}
	d.buffed = 0
}

// absorb XORs one full rate block into the state and permutes.
func (d *digest) absorb(block []byte) {
	for i := 0; i < rate/8; i++ {
		var lane uint64
		for j := 7; j >= 0; j-- {
			lane = lane<<8 | uint64(block[i*8+j])
		}
		d.a[i] ^= lane
	}
	d.a.permute()
}

func (d *digest) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		space := rate - d.buffed
		take := len(p)
		if take > space {
			take = space
		}
		copy(d.buf[d.buffed:], p[:take])
		d.buffed += take
		p = p[take:]
		if d.buffed == rate {
			d.absorb(d.buf[:])
			d.buffed = 0
		}
	}
	return n, nil
}

func (d *digest) Sum(in []byte) []byte {
	// Clone so Sum does not disturb the streaming state, matching the
	// hash.Hash contract.
	dup := *d
	var out [Size]byte
	dup.finalize(&out)
	return append(in, out[:]...)
}

// finalize pads with the original Keccak domain bits (0x01 … 0x80) and
// squeezes a single 32-byte block.
func (d *digest) finalize(out *[Size]byte) {
	for i := d.buffed; i < rate; i++ {
		d.buf[i] = 0
	}
	d.buf[d.buffed] ^= 0x01
	d.buf[rate-1] ^= 0x80
	d.absorb(d.buf[:])
	for i := 0; i < Size/8; i++ {
		lane := d.a[i]
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(lane)
			lane >>= 8
		}
	}
}

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data ...[]byte) [Size]byte {
	var d digest
	for _, p := range data {
		d.Write(p)
	}
	var out [Size]byte
	d.finalize(&out)
	return out
}
