package keccak

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// Known-answer vectors. The selector and event-topic vectors pin the exact
// values the Ethereum ecosystem depends on, so any permutation bug would
// surface immediately.
var kats = []struct {
	in   string
	want string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
	{"Transfer(address,address,uint256)", "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"},
}

var selectorKATs = []struct {
	sig  string
	want string // first 4 bytes, hex
}{
	{"transfer(address,uint256)", "a9059cbb"},
	{"approve(address,uint256)", "095ea7b3"},
	{"balanceOf(address)", "70a08231"},
	{"transferFrom(address,address,uint256)", "23b872dd"},
}

func TestSum256KnownAnswers(t *testing.T) {
	for _, kat := range kats {
		got := Sum256([]byte(kat.in))
		if hex.EncodeToString(got[:]) != kat.want {
			t.Errorf("Sum256(%q) = %x, want %s", kat.in, got, kat.want)
		}
	}
}

func TestSelectorKnownAnswers(t *testing.T) {
	for _, kat := range selectorKATs {
		got := Sum256([]byte(kat.sig))
		if hex.EncodeToString(got[:4]) != kat.want {
			t.Errorf("selector(%q) = %x, want %s", kat.sig, got[:4], kat.want)
		}
	}
}

func TestStreamingMatchesOneShot(t *testing.T) {
	data := []byte(strings.Repeat("drainer-as-a-service profit sharing ", 40))
	want := Sum256(data)

	for _, chunk := range []int{1, 7, 135, 136, 137, 300} {
		h := New256()
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			h.Write(data[i:end])
		}
		if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Errorf("chunk size %d: got %x, want %x", chunk, got, want)
		}
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	h := New256()
	h.Write([]byte("part one "))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("consecutive Sum calls differ: %x vs %x", first, second)
	}
	h.Write([]byte("part two"))
	want := Sum256([]byte("part one part two"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("write after Sum: got %x, want %x", got, want)
	}
}

func TestReset(t *testing.T) {
	h := New256()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("after Reset: got %x, want %x", got, want)
	}
}

func TestMultiSliceSum256(t *testing.T) {
	joined := Sum256([]byte("hello world"))
	split := Sum256([]byte("hello "), []byte("world"))
	if joined != split {
		t.Errorf("multi-slice Sum256 mismatch: %x vs %x", joined, split)
	}
}

// Property: splitting the input at any point never changes the digest.
func TestQuickSplitInvariance(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		if len(data) == 0 {
			return true
		}
		at := int(split) % len(data)
		one := Sum256(data)
		two := Sum256(data[:at], data[at:])
		return one == two
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct single-byte extensions yield distinct digests
// (collision here would indicate a broken permutation).
func TestQuickExtensionChangesDigest(t *testing.T) {
	f := func(data []byte) bool {
		base := Sum256(data)
		ext := Sum256(append(append([]byte{}, data...), 0x42))
		return base != ext
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashInterfaceSizes(t *testing.T) {
	h := New256()
	if h.Size() != 32 {
		t.Errorf("Size() = %d, want 32", h.Size())
	}
	if h.BlockSize() != 136 {
		t.Errorf("BlockSize() = %d, want 136", h.BlockSize())
	}
}

func BenchmarkSum256_1KiB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
