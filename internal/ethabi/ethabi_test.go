package ethabi

import (
	"bytes"
	"encoding/hex"
	"math/big"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ethtypes"
)

func TestSelectorKnownAnswers(t *testing.T) {
	cases := []struct{ sig, want string }{
		{"transfer(address,uint256)", "a9059cbb"},
		{"transferFrom(address,address,uint256)", "23b872dd"},
		{"approve(address,uint256)", "095ea7b3"},
		{"balanceOf(address)", "70a08231"},
	}
	for _, c := range cases {
		sel := Selector(c.sig)
		if hex.EncodeToString(sel[:]) != c.want {
			t.Errorf("Selector(%q) = %x, want %s", c.sig, sel, c.want)
		}
	}
}

func TestEventTopicTransfer(t *testing.T) {
	got := EventTopic("Transfer(address,address,uint256)")
	want := "0xddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"
	if got.Hex() != want {
		t.Errorf("EventTopic = %s, want %s", got, want)
	}
}

func TestEncodeStaticArgs(t *testing.T) {
	to := ethtypes.Addr("0x00006deacd9ad19db3d81f8410ea2bd5ea570000")
	amount := big.NewInt(1_000_000)
	data, err := EncodeCall("transfer(address,uint256)",
		[]Type{AddressT, Uint256T}, []any{to, amount})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4+64 {
		t.Fatalf("calldata length = %d, want 68", len(data))
	}
	if hex.EncodeToString(data[:4]) != "a9059cbb" {
		t.Errorf("selector = %x", data[:4])
	}
	// Address right-aligned in word 1.
	if !bytes.Equal(data[4+12:4+32], to[:]) {
		t.Error("address not right-aligned")
	}
	// Amount right-aligned in word 2.
	if got := new(big.Int).SetBytes(data[4+32 : 4+64]); got.Cmp(amount) != 0 {
		t.Errorf("amount decoded as %v", got)
	}
}

func TestEncodeDecodeDynamicBytes(t *testing.T) {
	payload := []byte("phishing calldata body")
	enc, err := Encode([]Type{BytesT, Uint256T}, []any{payload, big.NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := Decode([]Type{BytesT, Uint256T}, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vals[0].([]byte), payload) {
		t.Errorf("bytes round trip = %q", vals[0])
	}
	if vals[1].(*big.Int).Int64() != 7 {
		t.Errorf("uint round trip = %v", vals[1])
	}
}

// The multicall shape drainers use: multicall((address,bytes)[]).
func TestEncodeDecodeMulticallArg(t *testing.T) {
	callT := TupleOf(AddressT, BytesT)
	argT := SliceOf(callT)

	tokenA := ethtypes.Addr("0x1111111111111111111111111111111111111111")
	tokenB := ethtypes.Addr("0x2222222222222222222222222222222222222222")
	calls := []any{
		[]any{tokenA, []byte{0xa9, 0x05, 0x9c, 0xbb, 0x01}},
		[]any{tokenB, []byte{0x23, 0xb8, 0x72, 0xdd}},
	}

	enc, err := Encode([]Type{argT}, []any{calls})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := Decode([]Type{argT}, enc)
	if err != nil {
		t.Fatal(err)
	}
	got := vals[0].([]any)
	if len(got) != 2 {
		t.Fatalf("decoded %d calls, want 2", len(got))
	}
	first := got[0].([]any)
	if first[0].(ethtypes.Address) != tokenA {
		t.Error("first call target mismatch")
	}
	if !bytes.Equal(first[1].([]byte), []byte{0xa9, 0x05, 0x9c, 0xbb, 0x01}) {
		t.Error("first call payload mismatch")
	}
	second := got[1].([]any)
	if second[0].(ethtypes.Address) != tokenB {
		t.Error("second call target mismatch")
	}
}

func TestDecodeCall(t *testing.T) {
	aff := ethtypes.Addr("0x71f1911911911911911911911911911911164677")
	data, err := EncodeCall("claimRewards(address)", []Type{AddressT}, []any{aff})
	if err != nil {
		t.Fatal(err)
	}
	sel, vals, err := DecodeCall([]Type{AddressT}, data)
	if err != nil {
		t.Fatal(err)
	}
	if sel != Selector("claimRewards(address)") {
		t.Error("selector mismatch")
	}
	if vals[0].(ethtypes.Address) != aff {
		t.Error("argument mismatch")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode([]Type{AddressT}, []any{}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := Encode([]Type{AddressT}, []any{"not an address"}); err == nil {
		t.Error("wrong value type accepted")
	}
	if _, err := Encode([]Type{Uint256T}, []any{big.NewInt(-1)}); err == nil {
		t.Error("negative uint accepted")
	}
	over := new(big.Int).Lsh(big.NewInt(1), 256)
	if _, err := Encode([]Type{Uint256T}, []any{over}); err == nil {
		t.Error("2^256 accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]Type{Uint256T}, make([]byte, 31)); err == nil {
		t.Error("short word accepted")
	}
	// Dirty address padding.
	word := make([]byte, 32)
	word[0] = 0xff
	if _, err := Decode([]Type{AddressT}, word); err == nil {
		t.Error("dirty address padding accepted")
	}
	// Bool with value 2.
	word = make([]byte, 32)
	word[31] = 2
	if _, err := Decode([]Type{BoolT}, word); err == nil {
		t.Error("bool byte 2 accepted")
	}
	// Bytes whose claimed length exceeds the buffer.
	word = make([]byte, 64)
	word[31] = 0xff
	if _, err := Decode([]Type{BytesT}, word); err == nil {
		t.Error("overlong bytes accepted")
	}
	if _, _, err := DecodeCall([]Type{}, []byte{1, 2}); err == nil {
		t.Error("3-byte calldata accepted")
	}
}

// Property: (address, uint256, bytes) triples round-trip.
func TestQuickTripleRoundTrip(t *testing.T) {
	types := []Type{AddressT, Uint256T, BytesT}
	f := func(addr [20]byte, amount uint64, blob []byte) bool {
		in := []any{ethtypes.Address(addr), new(big.Int).SetUint64(amount), blob}
		enc, err := Encode(types, in)
		if err != nil {
			return false
		}
		out, err := Decode(types, enc)
		if err != nil {
			return false
		}
		return out[0].(ethtypes.Address) == ethtypes.Address(addr) &&
			out[1].(*big.Int).Uint64() == amount &&
			bytes.Equal(out[2].([]byte), blob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encoding length is always a multiple of the word size.
func TestQuickWordAlignment(t *testing.T) {
	f := func(blob []byte, flag bool) bool {
		enc, err := Encode([]Type{BytesT, BoolT}, []any{blob, flag})
		return err == nil && len(enc)%Word == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNestedDynamicTupleRoundTrip(t *testing.T) {
	inner := TupleOf(Uint256T, BytesT)
	outer := TupleOf(AddressT, inner)
	addr := ethtypes.Addr("0x3333333333333333333333333333333333333333")
	in := []any{[]any{addr, []any{big.NewInt(5), []byte("xyz")}}}
	enc, err := Encode([]Type{outer}, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode([]Type{outer}, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("nested tuple round trip: got %#v", out)
	}
}
