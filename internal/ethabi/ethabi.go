// Package ethabi implements the subset of the Ethereum contract ABI used
// by the drainer substrate: 4-byte function selectors, and encoding /
// decoding of address, uint256, bool, dynamic bytes, tuples, and dynamic
// arrays (notably the CallData[] argument of drainer multicall
// functions).
package ethabi

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/ethtypes"
	"repro/internal/keccak"
)

// Word is the ABI word size in bytes.
const Word = 32

// Selector returns the 4-byte function selector for a canonical
// signature such as "claimRewards(address)".
func Selector(signature string) [4]byte {
	sum := keccak.Sum256([]byte(signature))
	var sel [4]byte
	copy(sel[:], sum[:4])
	return sel
}

// EventTopic returns the 32-byte topic hash for an event signature such
// as "Transfer(address,address,uint256)".
func EventTopic(signature string) ethtypes.Hash {
	return ethtypes.Hash(keccak.Sum256([]byte(signature)))
}

// Kind enumerates the supported ABI type kinds.
type Kind int

// Supported ABI kinds.
const (
	KindAddress Kind = iota
	KindUint256
	KindBool
	KindBytes // dynamic bytes
	KindTuple
	KindSlice // dynamic array
)

// Type describes an ABI type. Elem is set for KindSlice; Fields for
// KindTuple.
type Type struct {
	Kind   Kind
	Elem   *Type
	Fields []Type
}

// Convenience constructors.
var (
	// AddressT is the address type descriptor.
	AddressT = Type{Kind: KindAddress}
	// Uint256T is the uint256 type descriptor.
	Uint256T = Type{Kind: KindUint256}
	// BoolT is the bool type descriptor.
	BoolT = Type{Kind: KindBool}
	// BytesT is the dynamic bytes type descriptor.
	BytesT = Type{Kind: KindBytes}
)

// SliceOf returns the dynamic-array type of elem.
func SliceOf(elem Type) Type { return Type{Kind: KindSlice, Elem: &elem} }

// TupleOf returns a tuple type with the given field types.
func TupleOf(fields ...Type) Type { return Type{Kind: KindTuple, Fields: fields} }

// dynamic reports whether values of t use tail (offset) encoding.
func (t Type) dynamic() bool {
	switch t.Kind {
	case KindBytes, KindSlice:
		return true
	case KindTuple:
		for _, f := range t.Fields {
			if f.dynamic() {
				return true
			}
		}
	}
	return false
}

// headSize is the number of head bytes values of t occupy.
func (t Type) headSize() int {
	if t.dynamic() {
		return Word
	}
	if t.Kind == KindTuple {
		n := 0
		for _, f := range t.Fields {
			n += f.headSize()
		}
		return n
	}
	return Word
}

// Errors returned by the codec.
var (
	ErrArity = errors.New("ethabi: wrong number of values")
	ErrValue = errors.New("ethabi: value does not match type")
	ErrShort = errors.New("ethabi: calldata too short")
	ErrDirty = errors.New("ethabi: non-zero padding bytes")
)

// Encode ABI-encodes values against types using standard head/tail
// encoding. Values must be: ethtypes.Address, *big.Int (non-negative),
// bool, []byte, or []any for tuples and slices.
func Encode(types []Type, values []any) ([]byte, error) {
	if len(types) != len(values) {
		return nil, fmt.Errorf("%w: %d types, %d values", ErrArity, len(types), len(values))
	}
	return encodeTuple(types, values)
}

// EncodeCall returns selector || Encode(types, values) — complete
// calldata for a function invocation.
func EncodeCall(signature string, types []Type, values []any) ([]byte, error) {
	body, err := Encode(types, values)
	if err != nil {
		return nil, err
	}
	sel := Selector(signature)
	return append(sel[:], body...), nil
}

func encodeTuple(types []Type, values []any) ([]byte, error) {
	headSize := 0
	for _, t := range types {
		headSize += t.headSize()
	}
	head := make([]byte, 0, headSize)
	var tail []byte
	for i, t := range types {
		if t.dynamic() {
			var off [Word]byte
			putUint(off[:], uint64(headSize+len(tail)))
			head = append(head, off[:]...)
			enc, err := encodeValue(t, values[i])
			if err != nil {
				return nil, err
			}
			tail = append(tail, enc...)
		} else {
			enc, err := encodeValue(t, values[i])
			if err != nil {
				return nil, err
			}
			head = append(head, enc...)
		}
	}
	return append(head, tail...), nil
}

func encodeValue(t Type, v any) ([]byte, error) {
	switch t.Kind {
	case KindAddress:
		a, ok := v.(ethtypes.Address)
		if !ok {
			return nil, fmt.Errorf("%w: want Address, got %T", ErrValue, v)
		}
		out := make([]byte, Word)
		copy(out[Word-ethtypes.AddressLength:], a[:])
		return out, nil
	case KindUint256:
		b, ok := v.(*big.Int)
		if !ok {
			return nil, fmt.Errorf("%w: want *big.Int, got %T", ErrValue, v)
		}
		if b.Sign() < 0 || b.BitLen() > 256 {
			return nil, fmt.Errorf("%w: uint256 out of range", ErrValue)
		}
		out := make([]byte, Word)
		b.FillBytes(out)
		return out, nil
	case KindBool:
		x, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("%w: want bool, got %T", ErrValue, v)
		}
		out := make([]byte, Word)
		if x {
			out[Word-1] = 1
		}
		return out, nil
	case KindBytes:
		b, ok := v.([]byte)
		if !ok {
			return nil, fmt.Errorf("%w: want []byte, got %T", ErrValue, v)
		}
		out := make([]byte, Word+pad(len(b)))
		putUint(out[:Word], uint64(len(b)))
		copy(out[Word:], b)
		return out, nil
	case KindTuple:
		vals, ok := v.([]any)
		if !ok {
			return nil, fmt.Errorf("%w: want []any tuple, got %T", ErrValue, v)
		}
		if len(vals) != len(t.Fields) {
			return nil, fmt.Errorf("%w: tuple arity", ErrArity)
		}
		return encodeTuple(t.Fields, vals)
	case KindSlice:
		vals, ok := v.([]any)
		if !ok {
			return nil, fmt.Errorf("%w: want []any slice, got %T", ErrValue, v)
		}
		elemTypes := make([]Type, len(vals))
		for i := range elemTypes {
			elemTypes[i] = *t.Elem
		}
		body, err := encodeTuple(elemTypes, vals)
		if err != nil {
			return nil, err
		}
		out := make([]byte, Word, Word+len(body))
		putUint(out[:Word], uint64(len(vals)))
		return append(out, body...), nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrValue, t.Kind)
	}
}

// Decode parses ABI-encoded data against types, returning one Go value
// per type in the same representation Encode accepts.
func Decode(types []Type, data []byte) ([]any, error) {
	return decodeTuple(types, data, data)
}

// DecodeCall splits calldata into its selector and decoded arguments.
func DecodeCall(types []Type, calldata []byte) ([4]byte, []any, error) {
	var sel [4]byte
	if len(calldata) < 4 {
		return sel, nil, ErrShort
	}
	copy(sel[:], calldata[:4])
	vals, err := Decode(types, calldata[4:])
	return sel, vals, err
}

// decodeTuple decodes fields laid out at the start of head; dynamic
// offsets are relative to head's start, whole is the enclosing scope
// (identical to head for top-level calls).
func decodeTuple(types []Type, head, whole []byte) ([]any, error) {
	out := make([]any, len(types))
	pos := 0
	for i, t := range types {
		if t.dynamic() {
			if len(head) < pos+Word {
				return nil, ErrShort
			}
			off, err := getUint(head[pos : pos+Word])
			if err != nil {
				return nil, err
			}
			if off > uint64(len(whole)) {
				return nil, ErrShort
			}
			v, err := decodeValue(t, whole[off:])
			if err != nil {
				return nil, err
			}
			out[i] = v
			pos += Word
		} else {
			n := t.headSize()
			if len(head) < pos+n {
				return nil, ErrShort
			}
			v, err := decodeValue(t, head[pos:pos+n])
			if err != nil {
				return nil, err
			}
			out[i] = v
			pos += n
		}
	}
	return out, nil
}

func decodeValue(t Type, data []byte) (any, error) {
	switch t.Kind {
	case KindAddress:
		if len(data) < Word {
			return nil, ErrShort
		}
		for _, b := range data[:Word-ethtypes.AddressLength] {
			if b != 0 {
				return nil, ErrDirty
			}
		}
		return ethtypes.BytesToAddress(data[:Word]), nil
	case KindUint256:
		if len(data) < Word {
			return nil, ErrShort
		}
		return new(big.Int).SetBytes(data[:Word]), nil
	case KindBool:
		if len(data) < Word {
			return nil, ErrShort
		}
		for _, b := range data[:Word-1] {
			if b != 0 {
				return nil, ErrDirty
			}
		}
		switch data[Word-1] {
		case 0:
			return false, nil
		case 1:
			return true, nil
		default:
			return nil, fmt.Errorf("%w: bool byte %d", ErrValue, data[Word-1])
		}
	case KindBytes:
		if len(data) < Word {
			return nil, ErrShort
		}
		n, err := getUint(data[:Word])
		if err != nil {
			return nil, err
		}
		if uint64(len(data)-Word) < n {
			return nil, ErrShort
		}
		out := make([]byte, n)
		copy(out, data[Word:Word+n])
		return out, nil
	case KindTuple:
		return decodeTuple(t.Fields, data, data)
	case KindSlice:
		if len(data) < Word {
			return nil, ErrShort
		}
		n, err := getUint(data[:Word])
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)) { // coarse bound against hostile lengths
			return nil, ErrShort
		}
		elemTypes := make([]Type, n)
		for i := range elemTypes {
			elemTypes[i] = *t.Elem
		}
		body := data[Word:]
		return decodeTuple(elemTypes, body, body)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrValue, t.Kind)
	}
}

func pad(n int) int { return (n + Word - 1) / Word * Word }

func putUint(word []byte, v uint64) {
	for i := 0; i < 8; i++ {
		word[Word-1-i] = byte(v >> (8 * i))
	}
}

func getUint(word []byte) (uint64, error) {
	for _, b := range word[:Word-8] {
		if b != 0 {
			return 0, fmt.Errorf("%w: offset or length wider than 64 bits", ErrValue)
		}
	}
	var v uint64
	for _, b := range word[Word-8:] {
		v = v<<8 | uint64(b)
	}
	return v, nil
}
