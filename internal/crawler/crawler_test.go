package crawler_test

import (
	"errors"
	"math/rand/v2"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/toolkit"
	"repro/internal/website"
)

func newHostServer(t *testing.T, sites ...*website.Site) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(website.NewHost(sites))
	t.Cleanup(srv.Close)
	return srv
}

func TestFetchPhishingSite(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	site := website.BuildPhishing("opensea-reward.app", toolkit.FamilyAngel, 3, rng)
	srv := newHostServer(t, site)

	page, err := crawler.New(srv.URL).Fetch("opensea-reward.app")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := page.Files["index.html"]; !ok {
		t.Error("index.html missing")
	}
	if _, ok := page.Files["settings.js"]; !ok {
		t.Errorf("local script not fetched; files = %v", fileKeys(page.Files))
	}
	if !strings.Contains(string(page.Files["settings.js"]), "drainToken") {
		t.Error("script content corrupted")
	}
	// CDN refs recorded but not fetched.
	if len(page.RemoteRefs) == 0 {
		t.Error("no remote refs recorded")
	}
	for _, ref := range page.RemoteRefs {
		if !strings.HasPrefix(ref, "https://") {
			t.Errorf("remote ref %q not external", ref)
		}
	}
}

func TestFetchToleratesMissingAssets(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	site := website.BuildBenign("gardenbooks.net", rng)
	// Break a reference: index points at a script we delete.
	site.Files["index.html"] = strings.Replace(site.Files["index.html"],
		"./scripts/main.js", "./scripts/gone.js", 1)
	srv := newHostServer(t, site)

	page, err := crawler.New(srv.URL).Fetch("gardenbooks.net")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := page.Files["gone.js"]; ok {
		t.Error("missing asset fabricated")
	}
}

func TestFetchUnknownDomain(t *testing.T) {
	srv := newHostServer(t)
	if _, err := crawler.New(srv.URL).Fetch("nope.example"); err == nil {
		t.Error("fetch of unhosted domain succeeded")
	}
}

// TestFetchRespectsSizeLimit is the regression test for the silent
// truncation bug: get() used to clip a file at exactly MaxFileBytes
// and return the prefix as if it were the whole artifact, so an
// oversized drainer script would be fingerprinted against clipped
// bytes. An oversized script must now be reported in Page.Truncated,
// not clipped into Files.
func TestFetchRespectsSizeLimit(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	site := website.BuildBenign("coffeetravel.org", rng)
	site.Files["scripts/main.js"] = strings.Repeat("x", 4096)
	srv := newHostServer(t, site)

	c := crawler.New(srv.URL)
	c.MaxFileBytes = int64(len(site.Files["index.html"])) // index fits exactly; main.js does not
	page, err := c.Fetch("coffeetravel.org")
	if err != nil {
		t.Fatal(err)
	}
	if body, ok := page.Files["main.js"]; ok {
		t.Errorf("oversized script returned (%d bytes) instead of being skipped", len(body))
	}
	if len(page.Truncated) != 1 || page.Truncated[0] != "main.js" {
		t.Errorf("Truncated = %v, want [main.js]", page.Truncated)
	}
	// A file exactly at the limit is legitimate and kept whole.
	if got, want := len(page.Files["index.html"]), len(site.Files["index.html"]); got != want {
		t.Errorf("exact-limit file clipped: %d of %d bytes", got, want)
	}
}

// TestFetchOversizedIndexFails: a truncated index page cannot be
// trusted (script references past the cut are lost), so the whole
// fetch fails with ErrTruncated.
func TestFetchOversizedIndexFails(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	site := website.BuildBenign("coffeetravel.org", rng)
	srv := newHostServer(t, site)

	c := crawler.New(srv.URL)
	c.MaxFileBytes = 16
	_, err := c.Fetch("coffeetravel.org")
	if !errors.Is(err, crawler.ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func fileKeys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
