package crawler_test

import (
	"math/rand/v2"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/toolkit"
	"repro/internal/website"
)

func newHostServer(t *testing.T, sites ...*website.Site) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(website.NewHost(sites))
	t.Cleanup(srv.Close)
	return srv
}

func TestFetchPhishingSite(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	site := website.BuildPhishing("opensea-reward.app", toolkit.FamilyAngel, 3, rng)
	srv := newHostServer(t, site)

	page, err := crawler.New(srv.URL).Fetch("opensea-reward.app")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := page.Files["index.html"]; !ok {
		t.Error("index.html missing")
	}
	if _, ok := page.Files["settings.js"]; !ok {
		t.Errorf("local script not fetched; files = %v", fileKeys(page.Files))
	}
	if !strings.Contains(string(page.Files["settings.js"]), "drainToken") {
		t.Error("script content corrupted")
	}
	// CDN refs recorded but not fetched.
	if len(page.RemoteRefs) == 0 {
		t.Error("no remote refs recorded")
	}
	for _, ref := range page.RemoteRefs {
		if !strings.HasPrefix(ref, "https://") {
			t.Errorf("remote ref %q not external", ref)
		}
	}
}

func TestFetchToleratesMissingAssets(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	site := website.BuildBenign("gardenbooks.net", rng)
	// Break a reference: index points at a script we delete.
	site.Files["index.html"] = strings.Replace(site.Files["index.html"],
		"./scripts/main.js", "./scripts/gone.js", 1)
	srv := newHostServer(t, site)

	page, err := crawler.New(srv.URL).Fetch("gardenbooks.net")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := page.Files["gone.js"]; ok {
		t.Error("missing asset fabricated")
	}
}

func TestFetchUnknownDomain(t *testing.T) {
	srv := newHostServer(t)
	if _, err := crawler.New(srv.URL).Fetch("nope.example"); err == nil {
		t.Error("fetch of unhosted domain succeeded")
	}
}

func TestFetchRespectsSizeLimit(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	site := website.BuildBenign("coffeetravel.org", rng)
	site.Files["scripts/main.js"] = strings.Repeat("x", 4096)
	srv := newHostServer(t, site)

	c := crawler.New(srv.URL)
	c.MaxFileBytes = 100
	page, err := c.Fetch("coffeetravel.org")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Files["main.js"]) > 100 {
		t.Errorf("size limit ignored: %d bytes", len(page.Files["main.js"]))
	}
}

func fileKeys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
