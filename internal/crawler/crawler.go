// Package crawler fetches candidate websites and extracts their local
// script files — the urlscan-equivalent of the paper's §8.2 Step 2.
package crawler

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"time"
)

// Page is the crawl result for one domain.
type Page struct {
	Domain string
	// Files maps script file name (base name) to content; index.html is
	// included under "index.html".
	Files map[string][]byte
	// RemoteRefs lists external (CDN) script URLs that were not fetched.
	RemoteRefs []string
}

// Crawler fetches sites hosted under a path-virtual-hosted base URL
// (as served by website.Host): {base}/{domain}/{path}.
type Crawler struct {
	// BaseURL is the hosting endpoint.
	BaseURL string
	// HTTPClient defaults to a 15s-timeout client.
	HTTPClient *http.Client
	// MaxFileBytes caps each fetched file (default 1 MiB).
	MaxFileBytes int64
}

// New returns a crawler for the hosting endpoint.
func New(baseURL string) *Crawler {
	return &Crawler{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 15 * time.Second}}
}

var scriptSrcRE = regexp.MustCompile(`(?i)<script[^>]+src=["']([^"']+)["']`)

// Fetch crawls one domain: the index page plus every locally
// referenced script.
func (c *Crawler) Fetch(domain string) (*Page, error) {
	index, err := c.get(domain, "index.html")
	if err != nil {
		return nil, fmt.Errorf("crawler: %s: %w", domain, err)
	}
	page := &Page{Domain: domain, Files: map[string][]byte{"index.html": index}}
	for _, m := range scriptSrcRE.FindAllStringSubmatch(string(index), -1) {
		src := m[1]
		if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") || strings.HasPrefix(src, "//") {
			page.RemoteRefs = append(page.RemoteRefs, src)
			continue
		}
		path := strings.TrimPrefix(strings.TrimPrefix(src, "./"), "/")
		body, err := c.get(domain, path)
		if err != nil {
			// Missing assets are common in the wild; record nothing and
			// continue.
			continue
		}
		page.Files[baseName(path)] = body
	}
	return page, nil
}

func (c *Crawler) get(domain, path string) ([]byte, error) {
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 15 * time.Second}
	}
	u, err := url.JoinPath(c.BaseURL, domain, path)
	if err != nil {
		return nil, err
	}
	resp, err := httpClient.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d for %s", resp.StatusCode, u)
	}
	limit := c.MaxFileBytes
	if limit <= 0 {
		limit = 1 << 20
	}
	return io.ReadAll(io.LimitReader(resp.Body, limit))
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
