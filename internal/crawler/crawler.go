// Package crawler fetches candidate websites and extracts their local
// script files — the urlscan-equivalent of the paper's §8.2 Step 2.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"time"

	"repro/internal/retry"
)

// ErrTruncated reports a file larger than MaxFileBytes. The crawler
// refuses to return the clipped prefix: drainer detection fingerprints
// file contents, and a silently truncated file would hash and match as
// if it were the whole artifact.
var ErrTruncated = errors.New("crawler: file exceeds MaxFileBytes")

// Page is the crawl result for one domain.
type Page struct {
	Domain string
	// Files maps script file name (base name) to content; index.html is
	// included under "index.html".
	Files map[string][]byte
	// RemoteRefs lists external (CDN) script URLs that were not fetched.
	RemoteRefs []string
	// Truncated lists referenced local scripts skipped because they
	// exceed MaxFileBytes; their contents are NOT in Files.
	Truncated []string
}

// Crawler fetches sites hosted under a path-virtual-hosted base URL
// (as served by website.Host): {base}/{domain}/{path}.
type Crawler struct {
	// BaseURL is the hosting endpoint.
	BaseURL string
	// HTTPClient defaults to a 15s-timeout client.
	HTTPClient *http.Client
	// MaxFileBytes caps each fetched file (default 1 MiB). A file over
	// the cap fails with ErrTruncated rather than being clipped.
	MaxFileBytes int64
	// Retry, when set, retries transient fetch failures (timeouts, 5xx,
	// 429, connection resets) under the policy. Nil performs each
	// request exactly once.
	Retry *retry.Policy
}

// New returns a crawler for the hosting endpoint.
func New(baseURL string) *Crawler {
	return &Crawler{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 15 * time.Second}}
}

var scriptSrcRE = regexp.MustCompile(`(?i)<script[^>]+src=["']([^"']+)["']`)

// Fetch crawls one domain: the index page plus every locally
// referenced script. An oversized script is listed in Page.Truncated
// instead of Files; an oversized index fails the whole fetch, since
// script references past the cut would be silently lost.
func (c *Crawler) Fetch(domain string) (*Page, error) {
	index, err := c.get(domain, "index.html")
	if err != nil {
		return nil, fmt.Errorf("crawler: %s: %w", domain, err)
	}
	page := &Page{Domain: domain, Files: map[string][]byte{"index.html": index}}
	for _, m := range scriptSrcRE.FindAllStringSubmatch(string(index), -1) {
		src := m[1]
		if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") || strings.HasPrefix(src, "//") {
			page.RemoteRefs = append(page.RemoteRefs, src)
			continue
		}
		path := strings.TrimPrefix(strings.TrimPrefix(src, "./"), "/")
		body, err := c.get(domain, path)
		if errors.Is(err, ErrTruncated) {
			page.Truncated = append(page.Truncated, baseName(path))
			continue
		}
		if err != nil {
			// Missing assets are common in the wild; record nothing and
			// continue.
			continue
		}
		page.Files[baseName(path)] = body
	}
	return page, nil
}

func (c *Crawler) get(domain, path string) (body []byte, err error) {
	err = c.Retry.Do(context.Background(), "crawler.get", func() error {
		body, err = c.getOnce(domain, path)
		return err
	})
	return body, err
}

func (c *Crawler) getOnce(domain, path string) ([]byte, error) {
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 15 * time.Second}
	}
	u, err := url.JoinPath(c.BaseURL, domain, path)
	if err != nil {
		return nil, err
	}
	resp, err := httpClient.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %w", u, &retry.HTTPError{Status: resp.StatusCode})
	}
	limit := c.MaxFileBytes
	if limit <= 0 {
		limit = 1 << 20
	}
	// Read one byte past the cap: exactly-limit files are legitimate,
	// and the extra byte is what distinguishes them from clipped ones.
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("GET %s: %d+ of max %d bytes: %w", u, len(body), limit, ErrTruncated)
	}
	return body, nil
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
