// Package runreport assembles the machine-readable end-of-run
// artifact (RUNREPORT.json): per-stage wall times, latency quantiles
// for every duration histogram the run touched, the full metric
// registry snapshot, a span-tree summary, the data-integrity
// manifest, and build identification. One file answers "what did this
// run do and how fast" without re-running anything — the JSON twin of
// the human-readable observability summary.
package runreport

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// Schema identifies the artifact format; bump on breaking changes.
const Schema = "daas-runreport/v1"

// Stage is one named phase of the run with its wall time.
type Stage struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Latency condenses one duration histogram into its quantiles.
type Latency struct {
	Metric      string   `json:"metric"`
	LabelValues []string `json:"label_values,omitempty"`
	Count       uint64   `json:"count"`
	MeanSeconds float64  `json:"mean_seconds"`
	P50Seconds  float64  `json:"p50_seconds"`
	P95Seconds  float64  `json:"p95_seconds"`
	P99Seconds  float64  `json:"p99_seconds"`
}

// SpanNode is one node of the span-tree summary.
type SpanNode struct {
	Name     string     `json:"name"`
	Seconds  float64    `json:"seconds"`
	Children []SpanNode `json:"children,omitempty"`
}

// Report is the complete run-report artifact.
type Report struct {
	Schema      string           `json:"schema"`
	Tool        string           `json:"tool"`
	Seed        uint64           `json:"seed,omitempty"`
	GoVersion   string           `json:"go_version"`
	Module      string           `json:"module,omitempty"`
	Revision    string           `json:"revision,omitempty"`
	StartedAt   time.Time        `json:"started_at"`
	FinishedAt  time.Time        `json:"finished_at"`
	WallSeconds float64          `json:"wall_seconds"`
	Stages      []Stage          `json:"stages,omitempty"`
	Latencies   []Latency        `json:"latencies,omitempty"`
	Metrics     obs.Snapshot     `json:"metrics"`
	Spans       []SpanNode       `json:"spans,omitempty"`
	Manifest    *report.Manifest `json:"manifest,omitempty"`
}

// Builder accumulates a run's report. All methods are nil-safe so
// callers can wire it unconditionally and construct it only when the
// -run-report flag asks for one.
type Builder struct {
	tool    string
	reg     *obs.Registry
	spans   *obs.Recorder
	base    obs.Snapshot
	start   time.Time
	seed    uint64
	stages  []Stage
	maniSet bool
	mani    report.Manifest
}

// New starts a report for tool, snapshotting reg so the final metrics
// section is this run's delta even on a shared default registry.
func New(tool string, reg *obs.Registry, spans *obs.Recorder) *Builder {
	b := &Builder{tool: tool, reg: reg, spans: spans, start: time.Now()}
	if reg != nil {
		b.base = reg.Snapshot()
	}
	return b
}

// SetSeed records the world seed.
func (b *Builder) SetSeed(seed uint64) {
	if b == nil {
		return
	}
	b.seed = seed
}

// SetManifest attaches the data-integrity manifest.
func (b *Builder) SetManifest(m report.Manifest) {
	if b == nil {
		return
	}
	b.mani, b.maniSet = m, true
}

// Stage starts a named phase and returns its end function:
//
//	done := rep.Stage("worldgen")
//	… work …
//	done()
func (b *Builder) Stage(name string) func() {
	if b == nil {
		return func() {}
	}
	start := obs.Now()
	return func() {
		b.stages = append(b.stages, Stage{Name: name, Seconds: obs.Since(start).Seconds()})
	}
}

// Build assembles the report from everything recorded so far. Safe to
// call more than once; each call reflects the registry at that moment.
func (b *Builder) Build() *Report {
	if b == nil {
		return nil
	}
	now := time.Now()
	r := &Report{
		Schema:      Schema,
		Tool:        b.tool,
		Seed:        b.seed,
		GoVersion:   runtime.Version(),
		StartedAt:   b.start.UTC(),
		FinishedAt:  now.UTC(),
		WallSeconds: now.Sub(b.start).Seconds(),
		Stages:      append([]Stage(nil), b.stages...),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		r.Module = bi.Main.Path
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				r.Revision = s.Value
			}
		}
	}
	if b.reg != nil {
		r.Metrics = b.reg.Snapshot().Diff(b.base)
		r.Latencies = extractLatencies(r.Metrics)
	}
	if b.spans != nil {
		for _, root := range b.spans.Roots() {
			r.Spans = append(r.Spans, spanNode(root))
		}
	}
	if b.maniSet {
		m := b.mani
		r.Manifest = &m
	}
	return r
}

// WriteFile builds the report and writes it atomically (temp file +
// rename) so a collector never reads a torn artifact.
func (b *Builder) WriteFile(path string) error {
	if b == nil || path == "" {
		return nil
	}
	r := b.Build()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("runreport: marshal: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".runreport-*.json")
	if err != nil {
		return fmt.Errorf("runreport: temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runreport: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runreport: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runreport: rename: %w", err)
	}
	return nil
}

// extractLatencies pulls quantiles out of every non-empty duration
// histogram in the snapshot, in registration order.
func extractLatencies(s obs.Snapshot) []Latency {
	var out []Latency
	for _, f := range s.Families {
		if f.Kind != obs.KindHistogram.String() || !strings.HasSuffix(f.Name, "_duration_seconds") {
			continue
		}
		for _, smp := range f.Samples {
			h := smp.Hist
			if h == nil || h.Count == 0 {
				continue
			}
			out = append(out, Latency{
				Metric:      f.Name,
				LabelValues: smp.LabelValues,
				Count:       h.Count,
				MeanSeconds: h.Mean(),
				P50Seconds:  h.Quantile(0.50),
				P95Seconds:  h.Quantile(0.95),
				P99Seconds:  h.Quantile(0.99),
			})
		}
	}
	return out
}

func spanNode(s *obs.Span) SpanNode {
	n := SpanNode{Name: s.Name(), Seconds: s.Duration().Seconds()}
	for _, c := range s.Children() {
		n.Children = append(n.Children, spanNode(c))
	}
	return n
}
