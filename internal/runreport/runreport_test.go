package runreport

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

func TestBuilderNilSafe(t *testing.T) {
	var b *Builder
	b.SetSeed(1)
	b.SetManifest(report.Manifest{})
	b.Stage("x")()
	if b.Build() != nil {
		t.Error("nil builder built a report")
	}
	if err := b.WriteFile("unused"); err != nil {
		t.Errorf("nil builder WriteFile: %v", err)
	}
}

func TestReportAssembly(t *testing.T) {
	reg := obs.NewRegistry()
	// Pre-existing activity must not leak into the report's delta.
	pre := reg.Counter("daas_pre_total", "")
	pre.Inc()

	spans := obs.NewRecorder()
	b := New("testtool", reg, spans)
	b.SetSeed(1910)

	done := b.Stage("build")
	hist := reg.Histogram("daas_stage_duration_seconds", "", obs.DefDurationBuckets)
	for i := 0; i < 100; i++ {
		hist.Observe(0.001)
	}
	reg.Counter("daas_work_total", "").Add(5)
	done()

	ctx, sp := obs.Start(obs.WithRecorder(context.Background(), spans), "root")
	_, child := obs.Start(ctx, "child")
	child.End()
	sp.End()

	b.SetManifest(report.Manifest{TxFetched: 42})
	r := b.Build()

	if r.Schema != Schema || r.Tool != "testtool" || r.Seed != 1910 {
		t.Errorf("header wrong: %+v", r)
	}
	if r.GoVersion == "" {
		t.Error("missing go version")
	}
	if len(r.Stages) != 1 || r.Stages[0].Name != "build" || r.Stages[0].Seconds < 0 {
		t.Errorf("stages = %+v", r.Stages)
	}
	if r.WallSeconds <= 0 || r.FinishedAt.Before(r.StartedAt) {
		t.Errorf("timing wrong: wall=%g started=%v finished=%v", r.WallSeconds, r.StartedAt, r.FinishedAt)
	}

	// Latency extraction: only the non-empty *_duration_seconds family.
	if len(r.Latencies) != 1 {
		t.Fatalf("latencies = %+v, want exactly one", r.Latencies)
	}
	lat := r.Latencies[0]
	if lat.Metric != "daas_stage_duration_seconds" || lat.Count != 100 {
		t.Errorf("latency = %+v", lat)
	}
	// 1ms observations under log buckets: p50 within one bucket ratio.
	if lat.P50Seconds < 0.0005 || lat.P50Seconds > 0.002 {
		t.Errorf("p50 = %g, want ~0.001", lat.P50Seconds)
	}

	// Metrics are the delta: the pre-run counter must diff to zero.
	if smp := r.Metrics.Find("daas_pre_total"); smp != nil && smp.Counter != 0 {
		t.Errorf("pre-run counter leaked into delta: %d", smp.Counter)
	}
	if smp := r.Metrics.Find("daas_work_total"); smp == nil || smp.Counter != 5 {
		t.Errorf("work counter missing from delta: %+v", smp)
	}

	if len(r.Spans) != 1 || r.Spans[0].Name != "root" || len(r.Spans[0].Children) != 1 {
		t.Errorf("spans = %+v", r.Spans)
	}
	if r.Manifest == nil || r.Manifest.TxFetched != 42 {
		t.Errorf("manifest = %+v", r.Manifest)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "RUNREPORT.json")

	reg := obs.NewRegistry()
	b := New("tool", reg, nil)
	b.Stage("s")()
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if r.Schema != Schema {
		t.Errorf("schema = %q", r.Schema)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1 (temp file left behind?)", len(entries))
	}

	// Overwrite works (rename over existing).
	time.Sleep(time.Millisecond)
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
}
