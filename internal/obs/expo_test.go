package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one instrument of every shape
// and deterministic values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("daas_pipeline_iterations_total", "Snowball expansion iterations.")
	c.Add(4)
	v := r.CounterVec("daas_classifier_splits_total", "Profit-sharing splits by ratio.", "ratio_pm")
	v.With("200").Add(7)
	v.With("225").Add(3)
	g := r.Gauge("daas_pipeline_frontier_accounts", "Accounts in the current frontier.")
	g.Set(12)
	h := r.Histogram("daas_chain_request_duration_seconds", "Chain request latency.", []float64{0.5, 2})
	// Binary-exact values keep the golden sum stable.
	h.Observe(0.25)
	h.Observe(1.5)
	h.Observe(3.25)
	return r
}

const goldenText = `# HELP daas_pipeline_iterations_total Snowball expansion iterations.
# TYPE daas_pipeline_iterations_total counter
daas_pipeline_iterations_total 4
# HELP daas_classifier_splits_total Profit-sharing splits by ratio.
# TYPE daas_classifier_splits_total counter
daas_classifier_splits_total{ratio_pm="200"} 7
daas_classifier_splits_total{ratio_pm="225"} 3
# HELP daas_pipeline_frontier_accounts Accounts in the current frontier.
# TYPE daas_pipeline_frontier_accounts gauge
daas_pipeline_frontier_accounts 12
# HELP daas_chain_request_duration_seconds Chain request latency.
# TYPE daas_chain_request_duration_seconds histogram
daas_chain_request_duration_seconds_bucket{le="0.5"} 1
daas_chain_request_duration_seconds_bucket{le="2"} 2
daas_chain_request_duration_seconds_bucket{le="+Inf"} 3
daas_chain_request_duration_seconds_sum 5
daas_chain_request_duration_seconds_count 3
`

func TestWritePrometheusGolden(t *testing.T) {
	r := goldenRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != goldenText {
		t.Fatalf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, goldenText)
	}
	// Repeated scrapes of a quiescent registry are byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Fatal("second scrape differs from the first")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", `line1
line2 "quoted" back\slash`, "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantHelp := `# HELP esc_total line1\nline2 "quoted" back\\slash`
	wantSample := `esc_total{k="a\"b\\c\nd"} 1`
	for _, want := range []string{wantHelp, wantSample} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	r := goldenRegistry()
	// A zero-valued counter must not appear in the summary.
	r.Counter("daas_never_touched_total", "idle")
	var b strings.Builder
	if err := r.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "daas_never_touched_total") {
		t.Errorf("summary includes an untouched metric:\n%s", out)
	}
	for _, want := range []string{
		"daas_pipeline_iterations_total",
		`daas_classifier_splits_total{ratio_pm="200"}`,
		"count=3",
		"sum=5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Labeled children sort by value descending: 200 (7) before 225 (3).
	if strings.Index(out, `ratio_pm="200"`) > strings.Index(out, `ratio_pm="225"`) {
		t.Errorf("summary label order not value-descending:\n%s", out)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	r := goldenRegistry()
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != goldenText {
		t.Errorf("/metrics body mismatch\n--- got ---\n%s", body)
	}
}

func TestHTTPExpvarBridge(t *testing.T) {
	r := goldenRegistry()
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	raw, ok := vars["daas_metrics"]
	if !ok {
		t.Fatal("/debug/vars missing daas_metrics")
	}
	var flat map[string]any
	if err := json.Unmarshal(raw, &flat); err != nil {
		t.Fatal(err)
	}
	// The expvar bridge publishes once per process; when another test's
	// registry won the race, the snapshot legitimately reflects that
	// registry — only assert shape in that case.
	if v, ok := flat["daas_pipeline_iterations_total"]; ok {
		if n, _ := v.(float64); n != 4 {
			t.Errorf("expvar iterations = %v, want 4", v)
		}
	}
}

func TestServeEphemeralPort(t *testing.T) {
	r := goldenRegistry()
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(addr, "127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound address = %q, want a concrete ephemeral port", addr)
	}
}
