package obs

import (
	"math"
	"strings"
)

// Snapshot is a point-in-time copy of a registry: every family and
// every sample, in registration order, with histogram buckets read
// coherently (see child.histSnapshot). Snapshots are plain data — they
// marshal to JSON for run-report artifacts, diff against an earlier
// snapshot to isolate one phase of a run, and answer quantile queries
// without touching the live registry again.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one named metric family in a snapshot.
type FamilySnapshot struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Kind    string   `json:"kind"`
	Labels  []string `json:"labels,omitempty"`
	Samples []Sample `json:"samples"`
}

// Sample is one (label-values) child of a family at snapshot time.
type Sample struct {
	LabelValues []string      `json:"label_values,omitempty"`
	Counter     uint64        `json:"counter,omitempty"`
	Gauge       int64         `json:"gauge,omitempty"`
	Hist        *HistSnapshot `json:"histogram,omitempty"`
}

// HistSnapshot is a coherent copy of one histogram: per-bucket counts
// (last entry is the +Inf bucket), the total count derived from those
// buckets, and the value sum. The invariant sum(Counts) == Count holds
// by construction.
type HistSnapshot struct {
	// Upper holds the finite bucket upper bounds; Counts has one more
	// entry than Upper, the +Inf bucket.
	Upper  []float64 `json:"upper"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot captures every family and sample coherently. The result is
// independent of the live registry: subsequent observations do not
// mutate it. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	families := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		families = append(families, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range families {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind.String(),
			Labels: append([]string(nil), f.labels...),
		}
		for _, c := range f.snapshot() {
			smp := Sample{LabelValues: append([]string(nil), c.labelValues...)}
			switch f.kind {
			case KindCounter:
				smp.Counter = c.count.Load()
			case KindGauge:
				smp.Gauge = c.gauge.Load()
			case KindHistogram:
				smp.Hist = c.histSnapshot()
			}
			fs.Samples = append(fs.Samples, smp)
		}
		s.Families = append(s.Families, fs)
	}
	return s
}

// Diff returns the activity between base and s: counters and histogram
// buckets are subtracted per matching (family, label-values) sample,
// gauges keep their current (instantaneous) value. Samples and
// families that appeared after base pass through unchanged; a counter
// or bucket that ran backwards (instrument reset) keeps its current
// value rather than underflowing. Family and sample order is s's
// order, so diffing is deterministic.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	baseFams := make(map[string]*FamilySnapshot, len(base.Families))
	for i := range base.Families {
		baseFams[base.Families[i].Name] = &base.Families[i]
	}
	out := Snapshot{Families: make([]FamilySnapshot, 0, len(s.Families))}
	for _, f := range s.Families {
		df := FamilySnapshot{
			Name:    f.Name,
			Help:    f.Help,
			Kind:    f.Kind,
			Labels:  f.Labels,
			Samples: make([]Sample, 0, len(f.Samples)),
		}
		var baseSamples map[string]*Sample
		if bf := baseFams[f.Name]; bf != nil && bf.Kind == f.Kind {
			baseSamples = make(map[string]*Sample, len(bf.Samples))
			for i := range bf.Samples {
				baseSamples[strings.Join(bf.Samples[i].LabelValues, labelSep)] = &bf.Samples[i]
			}
		}
		for _, smp := range f.Samples {
			prev := baseSamples[strings.Join(smp.LabelValues, labelSep)]
			df.Samples = append(df.Samples, diffSample(smp, prev))
		}
		out.Families = append(out.Families, df)
	}
	return out
}

func diffSample(cur Sample, prev *Sample) Sample {
	if prev == nil {
		return cur
	}
	out := Sample{LabelValues: cur.LabelValues, Gauge: cur.Gauge}
	if cur.Counter >= prev.Counter {
		out.Counter = cur.Counter - prev.Counter
	} else {
		out.Counter = cur.Counter
	}
	if cur.Hist != nil {
		out.Hist = diffHist(cur.Hist, prev.Hist)
	}
	return out
}

// diffHist subtracts bucket-by-bucket, recomputing Count from the
// diffed buckets so the +Inf == Count invariant survives subtraction.
// A bucket-layout change between the snapshots makes subtraction
// meaningless, so the current histogram passes through whole.
func diffHist(cur, prev *HistSnapshot) *HistSnapshot {
	if prev == nil || len(prev.Counts) != len(cur.Counts) || !equalFloats(prev.Upper, cur.Upper) {
		return cur
	}
	out := &HistSnapshot{Upper: cur.Upper, Counts: make([]uint64, len(cur.Counts))}
	for i, c := range cur.Counts {
		if c >= prev.Counts[i] {
			out.Counts[i] = c - prev.Counts[i]
		} else {
			out.Counts[i] = c
		}
		out.Count += out.Counts[i]
	}
	out.Sum = cur.Sum - prev.Sum
	if out.Sum < 0 {
		out.Sum = cur.Sum
	}
	return out
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Find returns the sample for the given family name and label values,
// nil when absent.
func (s Snapshot) Find(name string, labelValues ...string) *Sample {
	for i := range s.Families {
		if s.Families[i].Name != name {
			continue
		}
		for j := range s.Families[i].Samples {
			if equalStrings(s.Families[i].Samples[j].LabelValues, labelValues) {
				return &s.Families[i].Samples[j]
			}
		}
		return nil
	}
	return nil
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by linear
// interpolation inside the bucket containing the rank — the classic
// fixed-bucket estimator (Prometheus histogram_quantile): exact at
// bucket boundaries, off by at most one bucket width inside. Values in
// the +Inf bucket have no upper bound, so quantiles landing there
// report the largest finite boundary. NaN on an empty or nil
// histogram.
func (h *HistSnapshot) Quantile(p float64) float64 {
	if h == nil || h.Count == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	var cum uint64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Upper) {
			// +Inf bucket.
			if len(h.Upper) == 0 {
				return math.Inf(1)
			}
			return h.Upper[len(h.Upper)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.Upper[i-1]
		}
		return lower + (h.Upper[i]-lower)*(rank-float64(prev))/float64(n)
	}
	// Unreachable while the Count invariant holds; report the largest
	// bound defensively.
	if len(h.Upper) == 0 {
		return math.Inf(1)
	}
	return h.Upper[len(h.Upper)-1]
}

// Mean returns the average observed value (NaN when empty).
func (h *HistSnapshot) Mean() float64 {
	if h == nil || h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}
