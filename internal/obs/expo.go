package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE headers followed
// by one sample line per child, with histogram children expanded into
// cumulative _bucket{le=…}, _sum, and _count series. Output order is
// registration order, so repeated scrapes of a quiescent registry are
// byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	families := make([]*family, 0, len(names))
	for _, name := range names {
		families = append(families, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range families {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writePrometheus(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, c := range f.snapshot() {
		if err := f.writeChild(w, c); err != nil {
			return err
		}
	}
	return nil
}

// snapshot returns children in creation order.
func (f *family) snapshot() []*child {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*child, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.children[key])
	}
	return out
}

func (f *family) writeChild(w io.Writer, c *child) error {
	labels := labelString(f.labels, c.labelValues, "", "")
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, c.count.Load())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, c.gauge.Load())
		return err
	case KindHistogram:
		// One coherent snapshot serves the whole expansion: _count is
		// derived from the same bucket loads as the cumulative series,
		// so _bucket{le="+Inf"} always equals _count — reading the
		// buckets, sum, and count as independent atomics mid-update
		// could publish a count the buckets had not caught up to yet.
		snap := c.histSnapshot()
		var cum uint64
		for i, upper := range snap.Upper {
			cum += snap.Counts[i]
			le := labelString(f.labels, c.labelValues, "le", formatFloat(upper))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
				return err
			}
		}
		cum += snap.Counts[len(snap.Upper)]
		le := labelString(f.labels, c.labelValues, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, snap.Count)
		return err
	}
	return nil
}

// labelString renders {k="v",…}, optionally appending one extra pair
// (the histogram le label). Empty when there are no labels at all.
func labelString(keys, values []string, extraKey, extraValue string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteSummary renders a human-readable end-of-run table: one row per
// sample, with histograms condensed to count, mean, and sum. Rows with
// zero activity are skipped so the table only shows what the run
// actually touched.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	families := make([]*family, 0, len(names))
	for _, name := range names {
		families = append(families, r.families[name])
	}
	r.mu.Unlock()

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\tvalue\n")
	for _, f := range families {
		children := f.snapshot()
		// Deterministic summary order: sort labeled children by value
		// descending, then label.
		if len(f.labels) > 0 {
			sort.SliceStable(children, func(i, j int) bool {
				a, b := summaryWeight(f, children[i]), summaryWeight(f, children[j])
				if a != b {
					return a > b
				}
				return strings.Join(children[i].labelValues, ",") < strings.Join(children[j].labelValues, ",")
			})
		}
		for _, c := range children {
			name := f.name + labelString(f.labels, c.labelValues, "", "")
			switch f.kind {
			case KindCounter:
				if v := c.count.Load(); v > 0 {
					fmt.Fprintf(tw, "%s\t%d\n", name, v)
				}
			case KindGauge:
				if v := c.gauge.Load(); v != 0 {
					fmt.Fprintf(tw, "%s\t%d\n", name, v)
				}
			case KindHistogram:
				snap := c.histSnapshot()
				if snap.Count == 0 {
					continue
				}
				fmt.Fprintf(tw, "%s\tcount=%d mean=%s p50=%s p95=%s p99=%s sum=%s\n",
					name, snap.Count, formatFloat(snap.Mean()),
					formatFloat(snap.Quantile(0.50)), formatFloat(snap.Quantile(0.95)),
					formatFloat(snap.Quantile(0.99)), formatFloat(snap.Sum))
			}
		}
	}
	return tw.Flush()
}

func summaryWeight(f *family, c *child) uint64 {
	if f.kind == KindGauge {
		v := c.gauge.Load()
		if v < 0 {
			return 0
		}
		return uint64(v)
	}
	return c.count.Load()
}
