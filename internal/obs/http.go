package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux returns the introspection mux: /metrics (Prometheus text),
// /debug/vars (expvar, with the registry bridged in as "daas_metrics"),
// and the /debug/pprof profiling endpoints.
func NewMux(r *Registry) *http.ServeMux {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

var expvarMu sync.Mutex

// publishExpvar bridges the registry into expvar exactly once per
// process (expvar.Publish rejects duplicate names). The first registry
// wired into a mux wins; in practice that is the Default registry.
func publishExpvar(r *Registry) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get("daas_metrics") != nil {
		return
	}
	expvar.Publish("daas_metrics", expvar.Func(func() any { return r.snapshotMap() }))
}

// snapshotMap flattens the registry into name{labels} -> value for the
// expvar JSON view. Histograms surface as count/sum pairs.
func (r *Registry) snapshotMap() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	families := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		families = append(families, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range families {
		for _, c := range f.snapshot() {
			name := f.name + labelString(f.labels, c.labelValues, "", "")
			switch f.kind {
			case KindCounter:
				out[name] = c.count.Load()
			case KindGauge:
				out[name] = c.gauge.Load()
			case KindHistogram:
				snap := c.histSnapshot()
				out[name+"_count"] = snap.Count
				out[name+"_sum"] = snap.Sum
			}
		}
	}
	return out
}

// Serve starts the introspection server on addr in a background
// goroutine and returns the server (for Shutdown/Close) and the bound
// address, which differs from addr when it asked for an ephemeral
// port.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// Shutdown drains an introspection server started with Serve: new
// connections stop being accepted, but a scrape already in flight —
// typically a collector grabbing the final end-of-run numbers — gets
// up to timeout to complete instead of being torn down with the run.
// Nil-safe.
func Shutdown(srv *http.Server, timeout time.Duration) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("obs: draining introspection server: %w", err)
	}
	return nil
}
