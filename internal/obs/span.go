package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Recorder collects finished root spans for end-of-run reporting. A nil
// *Recorder disables tracing: Start returns a nil span whose methods
// are no-ops, so instrumented code pays only a context lookup.
type Recorder struct {
	mu    sync.Mutex
	roots []*Span
	// MaxRoots caps retained root spans (default 256); older roots are
	// dropped first so a long-running watch loop cannot grow without
	// bound.
	MaxRoots int
}

// NewRecorder returns an empty span recorder.
func NewRecorder() *Recorder { return &Recorder{} }

type ctxKey int

const (
	recorderKey ctxKey = iota
	spanKey
)

// WithRecorder attaches a recorder to the context; spans started under
// it (and their descendants) are recorded.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, r)
}

// Start begins a span named name, parented to the span already in ctx
// if any. It returns a derived context carrying the new span. When ctx
// has neither a parent span nor a recorder, tracing is disabled and the
// returned span is nil (all span methods tolerate nil).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	var rec *Recorder
	if parent == nil {
		rec, _ = ctx.Value(recorderKey).(*Recorder)
		if rec == nil {
			return ctx, nil
		}
	}
	sp := &Span{name: name, start: time.Now(), parent: parent, rec: rec}
	return context.WithValue(ctx, spanKey, sp), sp
}

// Span is one timed region of work. Spans form a tree: children are
// attached to their parent when they End, and parentless spans register
// with the Recorder.
type Span struct {
	name   string
	start  time.Time
	parent *Span
	rec    *Recorder

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	ended    bool
}

// Name returns the span name ("" on a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End stops the span, records its duration, and attaches it to its
// parent (or recorder for roots). End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.parent != nil {
		s.parent.addChild(s)
		return
	}
	if s.rec != nil {
		s.rec.addRoot(s)
	}
}

// Duration returns the recorded duration (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the ended child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.children = append(s.children, c)
}

func (r *Recorder) addRoot(s *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.roots = append(r.roots, s)
	maxRoots := r.MaxRoots
	if maxRoots <= 0 {
		maxRoots = 256
	}
	if n := len(r.roots) - maxRoots; n > 0 {
		r.roots = append(r.roots[:0:0], r.roots[n:]...)
	}
}

// Roots returns the recorded root spans, oldest first.
func (r *Recorder) Roots() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.roots...)
}

// WriteTree renders every recorded root span and its descendants as an
// indented tree with durations and attributes.
func (r *Recorder) WriteTree(w io.Writer) error {
	for _, root := range r.Roots() {
		if err := writeSpan(w, root, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeSpan(w io.Writer, s *Span, depth int) error {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name())
	fmt.Fprintf(&b, "  %s", s.Duration().Round(time.Microsecond))
	for _, a := range s.Attrs() {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(formatValue(a.Value))
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := writeSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
