package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestLogBuckets pins the generator: five per decade from 1µs to 10s
// is 36 strictly increasing boundaries with a constant ratio.
func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 10, 5)
	if len(b) != 36 {
		t.Fatalf("len = %d, want 36", len(b))
	}
	if b[0] != 1e-6 || math.Abs(b[35]-10) > 1e-9 {
		t.Fatalf("range = [%g, %g], want [1e-06, 10]", b[0], b[35])
	}
	wantRatio := math.Pow(10, 0.2)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("boundaries not increasing at %d: %g <= %g", i, b[i], b[i-1])
		}
		if r := b[i] / b[i-1]; math.Abs(r-wantRatio) > 1e-9 {
			t.Fatalf("ratio at %d = %g, want %g", i, r, wantRatio)
		}
	}
	if DefDurationBuckets == nil || len(DefDurationBuckets) != 36 {
		t.Fatalf("DefDurationBuckets: %v", DefDurationBuckets)
	}
	for _, bad := range [][3]float64{{0, 1, 5}, {1, 1, 5}, {1, 10, 0}, {-1, 1, 3}} {
		if got := LogBuckets(bad[0], bad[1], int(bad[2])); got != nil {
			t.Fatalf("LogBuckets(%v) = %v, want nil", bad, got)
		}
	}
}

// TestQuantileUniform checks estimation accuracy against a uniform
// distribution under fine linear buckets: the estimator's error is
// bounded by one bucket width (0.01 here), and boundary quantiles are
// exact.
func TestQuantileUniform(t *testing.T) {
	var buckets []float64
	for v := 0.01; v <= 1.0001; v += 0.01 {
		buckets = append(buckets, v)
	}
	r := NewRegistry()
	h := r.Histogram("uniform", "", buckets)
	const n = 10000
	for i := 0; i < n; i++ {
		h.Observe((float64(i) + 0.5) / n) // uniform on (0, 1)
	}
	for _, p := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99} {
		got := h.Quantile(p)
		if math.Abs(got-p) > 0.01+1e-9 {
			t.Fatalf("Quantile(%v) = %v, want within one bucket width (0.01) of %v", p, got, p)
		}
	}
}

// TestQuantileLogBuckets checks the estimator under the log-spaced
// duration buckets against a two-mode latency distribution with known
// quantiles: estimates must land within one bucket ratio (×1.585) of
// the true value — the accuracy the HDR-style spacing promises at any
// magnitude.
func TestQuantileLogBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", "", DefDurationBuckets)
	// 90% fast mode at 100µs, 10% slow mode at 50ms: true p50 = 1e-4,
	// true p95 and p99 = 5e-2.
	for i := 0; i < 900; i++ {
		h.Observe(100e-6)
	}
	for i := 0; i < 100; i++ {
		h.Observe(50e-3)
	}
	ratio := math.Pow(10, 0.2)
	for _, tc := range []struct{ p, want float64 }{
		{0.50, 100e-6}, {0.95, 50e-3}, {0.99, 50e-3},
	} {
		got := h.Quantile(tc.p)
		if got < tc.want/ratio-1e-12 || got > tc.want*ratio+1e-12 {
			t.Fatalf("Quantile(%v) = %g, want within ×%.3f of %g", tc.p, got, ratio, tc.want)
		}
	}
}

// TestQuantileEdgeCases pins the contract at the boundaries: empty
// histograms answer NaN, overflow-bucket ranks report the largest
// finite bound, and p is clamped to [0, 1].
func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("empty", "", []float64{1, 2})
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty Quantile = %v, want NaN", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("nil Quantile = %v, want NaN", got)
	}
	over := r.Histogram("overflow", "", []float64{1, 2})
	over.Observe(100) // +Inf bucket only
	if got := over.Quantile(0.5); got != 2 {
		t.Fatalf("overflow Quantile = %v, want last finite bound 2", got)
	}
	clamped := r.Histogram("clamped", "", []float64{1, 2})
	clamped.Observe(0.5)
	if got := clamped.Quantile(7); math.IsNaN(got) || got > 1 {
		t.Fatalf("Quantile(7) = %v, want clamped into the first bucket", got)
	}
	if got := clamped.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}
}

// TestSnapshotDiff verifies that Diff isolates the activity between
// two snapshots: counters and histogram buckets subtract, gauges stay
// instantaneous, and the +Inf == Count invariant survives subtraction.
func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("dur_seconds", "", []float64{1, 10})
	c.Add(5)
	g.Set(3)
	h.Observe(0.5)
	h.Observe(5)
	base := r.Snapshot()

	c.Add(2)
	g.Set(9)
	h.Observe(20)
	diff := r.Snapshot().Diff(base)

	if got := diff.Find("reqs_total").Counter; got != 2 {
		t.Fatalf("diffed counter = %d, want 2", got)
	}
	if got := diff.Find("depth").Gauge; got != 9 {
		t.Fatalf("diffed gauge = %d, want instantaneous 9", got)
	}
	dh := diff.Find("dur_seconds").Hist
	if dh.Count != 1 || dh.Counts[2] != 1 || dh.Counts[0] != 0 {
		t.Fatalf("diffed histogram = %+v, want exactly the one new +Inf observation", dh)
	}
	var total uint64
	for _, n := range dh.Counts {
		total += n
	}
	if total != dh.Count {
		t.Fatalf("diff broke the bucket/count invariant: %d != %d", total, dh.Count)
	}
	if math.Abs(dh.Sum-20) > 1e-9 {
		t.Fatalf("diffed sum = %v, want 20", dh.Sum)
	}
}

// TestSnapshotDeterminism: snapshots of a quiescent registry are
// byte-identical when marshaled, diffing a snapshot against itself
// zeroes all activity, and the family order tracks registration order.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(4)
	r.Counter("a_total", "").Add(2)
	hv := r.HistogramVec("lat_seconds", "", nil, "op")
	hv.With("tx").Observe(0.01)
	hv.With("rcpt").Observe(0.2)

	s1, s2 := r.Snapshot(), r.Snapshot()
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("repeated snapshots differ:\n%s\n%s", j1, j2)
	}
	if got := []string{s1.Families[0].Name, s1.Families[1].Name}; got[0] != "b_total" || got[1] != "a_total" {
		t.Fatalf("family order = %v, want registration order [b_total a_total]", got)
	}
	zero := s2.Diff(s1)
	for _, f := range zero.Families {
		for _, smp := range f.Samples {
			if smp.Counter != 0 {
				t.Fatalf("self-diff left counter activity in %s: %d", f.Name, smp.Counter)
			}
			if smp.Hist != nil && smp.Hist.Count != 0 {
				t.Fatalf("self-diff left histogram activity in %s: %d", f.Name, smp.Hist.Count)
			}
		}
	}
	// Snapshots are copies: later observations must not leak in.
	r.Counter("a_total", "").Add(100)
	if got := s1.Find("a_total").Counter; got != 2 {
		t.Fatalf("snapshot mutated by later observation: %d", got)
	}
}

// TestPrometheusCoherentUnderConcurrentObserve scrapes the registry
// while observers hammer a histogram and asserts, on every scrape,
// that the cumulative +Inf bucket equals _count and that _bucket
// values are monotonically non-decreasing in le — the invariants that
// break when buckets, sum, and count are read as independent atomics
// mid-update. Run under -race this doubles as the data-race check for
// the snapshot path.
func TestPrometheusCoherentUnderConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("daas_coherence_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	const workers, perWorker, scrapes = 4, 20000, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%1000) / 500)
			}
		}(w)
	}
	for s := 0; s < scrapes; s++ {
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		assertHistogramCoherent(t, &b)
	}
	wg.Wait()
	// Final quiescent scrape must account for every observation.
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	inf, count := parseInfAndCount(t, &b)
	if want := uint64(workers * perWorker); inf != want || count != want {
		t.Fatalf("final scrape: +Inf=%d _count=%d, want both %d", inf, count, want)
	}
}

// TestSnapshotCoherentUnderConcurrentObserve asserts the same
// invariant on the Snapshot API itself.
func TestSnapshotCoherentUnderConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("snap_seconds", "", DefDurationBuckets)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
					h.Observe(float64(i%100) / 1e4)
				}
			}
		}()
	}
	for s := 0; s < 500; s++ {
		snap := h.Snapshot()
		var total uint64
		for _, n := range snap.Counts {
			total += n
		}
		if total != snap.Count {
			t.Fatalf("scrape %d: bucket total %d != count %d", s, total, snap.Count)
		}
	}
	close(done)
	wg.Wait()
}

// assertHistogramCoherent parses a Prometheus exposition and checks
// every histogram family's invariants.
func assertHistogramCoherent(t *testing.T, b *bytes.Buffer) {
	t.Helper()
	inf, count := parseInfAndCount(t, b)
	if inf != count {
		t.Fatalf("incoherent scrape: +Inf bucket %d != _count %d", inf, count)
	}
}

// parseInfAndCount extracts the +Inf cumulative bucket and _count of
// the single-histogram expositions these tests produce, asserting
// bucket monotonicity along the way.
func parseInfAndCount(t *testing.T, b *bytes.Buffer) (inf, count uint64) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(b.Bytes()))
	var prev uint64
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if strings.Contains(fields[0], "_sum") {
			continue // float-valued
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		switch {
		case strings.Contains(fields[0], `le="+Inf"`):
			inf = v
		case strings.Contains(fields[0], "_bucket"):
			if v < prev {
				t.Fatalf("bucket series not monotonic: %q after %d", line, prev)
			}
			prev = v
		case strings.Contains(fields[0], "_count"):
			count = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return inf, count
}

// TestWriteSummaryQuantiles checks the human summary now carries the
// per-histogram p50/p95/p99 columns.
func TestWriteSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sum_seconds", "", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	var b bytes.Buffer
	if err := r.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"p50=", "p95=", "p99=", "count=100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotJSONRoundTrip: the snapshot marshals and unmarshals
// without losing quantile capability — what the run-report artifact
// depends on.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	j, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(j, &back); err != nil {
		t.Fatal(err)
	}
	hb := back.Find("rt_seconds").Hist
	if hb == nil || hb.Count != 2 {
		t.Fatalf("round trip lost histogram: %+v", hb)
	}
	if q := hb.Quantile(0.5); math.IsNaN(q) || q > 1 {
		t.Fatalf("round-tripped Quantile(0.5) = %v", q)
	}
	_ = fmt.Sprintf("%v", hb)
}
