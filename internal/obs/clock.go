package obs

import "time"

// Now and Since are the sanctioned wall-clock accessors for packages
// whose exports must stay deterministic (internal/core, cluster,
// measure, report, evmstatic — see reprolint rule 6). Instrumentation
// in those packages may measure latency, but a bare time.Now() call is
// indistinguishable from one that leaks the wall clock into exported
// data, so the linter bans the direct call and the deterministic
// packages route timing through these helpers instead. Keeping them in
// obs marks the intent: the clock is observability-only.

// Now returns the current wall-clock time for instrumentation.
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall-clock time since start.
func Since(start time.Time) time.Duration { return time.Since(start) }
