package obs

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + itoa(int64(l)) + ")"
	}
}

func itoa(n int64) string {
	b := make([]byte, 0, 8)
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	var digits [20]byte
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(append(b, digits[i:]...))
}

// Logger emits structured key=value lines to a sink. Loggers derived
// with With share the sink; a nil *Logger discards everything, so
// callers never need to guard log sites.
type Logger struct {
	sink  *sink
	attrs []Attr
}

// sink is the shared output half of a logger family.
type sink struct {
	mu       sync.Mutex
	w        io.Writer
	level    atomic.Int32
	withTime bool
	now      func() time.Time
}

// New returns a logger writing key=value lines at or above level to w.
func New(w io.Writer, level Level) *Logger {
	s := &sink{w: w, withTime: true, now: time.Now}
	s.level.Store(int32(level))
	return &Logger{sink: s}
}

// NewCallback adapts a printf-style callback — the shape of the legacy
// Trace hooks — into a Logger: each line is rendered without a
// timestamp (the callback's own logger usually adds one) and handed to
// fn as a single pre-formatted string.
func NewCallback(fn func(format string, args ...any)) *Logger {
	if fn == nil {
		return nil
	}
	return &Logger{sink: &sink{w: callbackWriter{fn}, withTime: false, now: time.Now}}
}

// callbackWriter forwards complete lines to a printf-style callback.
type callbackWriter struct {
	fn func(format string, args ...any)
}

func (cw callbackWriter) Write(p []byte) (int, error) {
	cw.fn("%s", string(bytes.TrimRight(p, "\n")))
	return len(p), nil
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(level Level) {
	if l == nil || l.sink == nil {
		return
	}
	l.sink.level.Store(int32(level))
}

// Enabled reports whether a record at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.sink != nil && int32(level) >= l.sink.level.Load()
}

// With returns a logger that prepends the given key/value pairs to
// every record. The receiver is unchanged.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	attrs := make([]Attr, 0, len(l.attrs)+(len(kv)+1)/2)
	attrs = append(attrs, l.attrs...)
	attrs = append(attrs, attrsFromKV(kv)...)
	return &Logger{sink: l.sink, attrs: attrs}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.Log(LevelInfo, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.Log(LevelWarn, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

// Log emits one record: time=… level=… msg=… followed by With-attrs and
// the given key/value pairs.
func (l *Logger) Log(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	var b bytes.Buffer
	if l.sink.withTime {
		b.WriteString("time=")
		b.WriteString(l.sink.now().UTC().Format(time.RFC3339Nano))
		b.WriteByte(' ')
	}
	b.WriteString("level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(formatValue(msg))
	writeAttrs(&b, l.attrs)
	writeAttrs(&b, attrsFromKV(kv))
	b.WriteByte('\n')
	l.sink.mu.Lock()
	defer l.sink.mu.Unlock()
	_, _ = l.sink.w.Write(b.Bytes())
}

func writeAttrs(b *bytes.Buffer, attrs []Attr) {
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(formatValue(a.Value))
	}
}
