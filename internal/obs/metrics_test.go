package obs

import (
	"math"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this doubles as the data-race check for the hot path.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestCounterVecConcurrent exercises the labeled fast path (RLock
// lookup) concurrently with child creation.
func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_labeled_total", "t", "k")
	labels := []string{"a", "b", "c", "d"}
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v.With(labels[(w+i)%len(labels)]).Inc()
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, l := range labels {
		total += v.With(l).Value()
	}
	if total != workers*perWorker {
		t.Fatalf("sum over labels = %d, want %d", total, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "t")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

// TestHistogramConcurrent checks bucket assignment, count, and sum
// under concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "t", []float64{1, 10, 100})
	const workers, perWorker = 8, 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(5) // lands in the (1,10] bucket
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	want := float64(workers*perWorker) * 5
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestHistogramBucketBoundaries pins the upper-bound-inclusive bucket
// semantics Prometheus expects (le is <=).
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_bounds", "t", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	c := h.c
	got := []uint64{c.hist.buckets[0].Load(), c.hist.buckets[1].Load(), c.hist.buckets[2].Load()}
	want := []uint64{2, 2, 1} // le=1: {0.5,1}; le=2 adds {1.5,2}; +Inf adds {3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestNilSafety runs every instrument operation against nil receivers:
// a disabled registry must cost nothing and crash nothing.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.CounterVec("x", "", "k").With("v").Add(2)
	r.Gauge("x", "").Set(1)
	r.GaugeVec("x", "", "k").With("v").Add(1)
	r.Histogram("x", "", nil).Observe(1)
	r.HistogramVec("x", "", nil, "k").With("v").Observe(1)
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if err := r.WriteSummary(nil); err != nil {
		t.Fatalf("nil registry WriteSummary: %v", err)
	}
	var l *Logger
	l.Info("ignored", "k", "v")
	l.With("a", 1).Debug("ignored")
	var sp *Span
	sp.SetAttr("k", "v")
	sp.End()
}

// TestReRegistration verifies that asking for the same family twice
// returns the same sample, and that a kind collision yields a detached
// (but usable) instrument instead of corrupting the family.
func TestReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "t")
	b := r.Counter("same_total", "t")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("re-registered counter = %d, want shared value 2", got)
	}
	g := r.Gauge("same_total", "collides with the counter")
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("detached gauge = %d, want 7", got)
	}
	if got := a.Value(); got != 2 {
		t.Fatalf("counter corrupted by collision: %d", got)
	}
	// Label-arity mismatch on With: no-op, no panic.
	v := r.CounterVec("labeled_total", "t", "k")
	v.With("a", "b").Inc()
	if got := v.With("a").Value(); got != 0 {
		t.Fatalf("arity-mismatched Inc leaked into a real child: %d", got)
	}
}
