package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind distinguishes metric families.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefBuckets are the default histogram boundaries, in seconds, spanning
// in-process calls (sub-microsecond) through remote round trips.
var DefBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	1e-3, 5e-3, 25e-3, 100e-3, 500e-3,
	1, 5,
}

// DefDurationBuckets are the log-spaced (HDR-style) duration
// boundaries, in seconds: five boundaries per decade from 1µs to 10s.
// The constant ratio between adjacent bounds (10^(1/5) ≈ 1.58) bounds
// the relative error of a Quantile estimate by the bucket width at any
// magnitude, which fixed hand-picked boundaries cannot promise.
// Latency instruments (chain source, RPC wire, CT polls, loadgen)
// should use these.
var DefDurationBuckets = LogBuckets(1e-6, 10, 5)

// LogBuckets returns log-spaced histogram boundaries covering
// [min, max]: perDecade boundaries per factor of ten, computed in
// exponent form so the spacing does not accumulate floating-point
// drift. min and max must be positive with min < max; perDecade must
// be positive. Invalid arguments yield nil (the caller then falls back
// to DefBuckets).
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade <= 0 {
		return nil
	}
	var out []float64
	for i := 0; ; i++ {
		v := min * math.Pow(10, float64(i)/float64(perDecade))
		if v > max*(1+1e-12) {
			break
		}
		out = append(out, v)
	}
	return out
}

// Registry holds named metric families. The zero value is not usable;
// call NewRegistry. All methods tolerate a nil receiver, handing out
// nil instruments whose operations are no-ops, so instrumented code
// runs unchanged with observability disabled.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the commands.
func Default() *Registry { return defaultRegistry }

// family is one named metric with zero or more labeled children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64

	mu       sync.RWMutex
	children map[string]*child
	order    []string
}

// child is one (label-values) sample of a family.
type child struct {
	labelValues []string
	count       atomic.Uint64 // counter value / histogram observation count
	gauge       atomic.Int64
	hist        *histogramData
}

// histogramData holds the atomic histogram hot path: one bucket counter
// per boundary plus +Inf, and a CAS-updated float sum.
type histogramData struct {
	upper   []float64
	buckets []atomic.Uint64 // len(upper)+1; last is +Inf
	sumBits atomic.Uint64
}

func (h *histogramData) observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *histogramData) sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// family registers (or retrieves) a named family. Re-registering with a
// different kind or label set returns a detached family that records
// normally but is never exported, so a naming collision cannot corrupt
// the exposition — callers are expected to keep names unique.
func (r *Registry) family(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind == kind && equalStrings(f.labels, labels) {
			return f
		}
		return newFamily(name, help, kind, labels, buckets)
	}
	f := newFamily(name, help, kind, labels, buckets)
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func newFamily(name, help string, kind Kind, labels []string, buckets []float64) *family {
	return &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const labelSep = "\x1f"

// child finds or creates the sample for the given label values. A
// label-arity mismatch yields nil (a no-op instrument).
func (f *family) child(values []string) *child {
	if f == nil || len(values) != len(f.labels) {
		return nil
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[key]; c != nil {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		upper := f.buckets
		if len(upper) == 0 {
			upper = DefBuckets
		}
		c.hist = &histogramData{upper: upper}
		c.hist.buckets = make([]atomic.Uint64, len(upper)+1)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Counter is a monotonically increasing count. Nil-safe.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || c.c == nil {
		return
	}
	c.c.count.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil || c.c == nil {
		return 0
	}
	return c.c.count.Load()
}

// Gauge is a settable integer value. Nil-safe.
type Gauge struct{ c *child }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || g.c == nil {
		return
	}
	g.c.gauge.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil || g.c == nil {
		return
	}
	g.c.gauge.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil || g.c == nil {
		return 0
	}
	return g.c.gauge.Load()
}

// Histogram accumulates observations into fixed buckets. Nil-safe.
type Histogram struct{ c *child }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.c == nil || h.c.hist == nil {
		return
	}
	h.c.count.Add(1)
	h.c.hist.observe(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil || h.c == nil {
		return 0
	}
	return h.c.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil || h.c == nil || h.c.hist == nil {
		return 0
	}
	return h.c.hist.sum()
}

// Snapshot returns a coherent copy of the histogram's buckets: the
// total count is derived from the bucket counters themselves, so the
// cumulative +Inf bucket always equals the count even while observers
// are mid-flight. Nil on a no-op instrument.
func (h *Histogram) Snapshot() *HistSnapshot {
	if h == nil || h.c == nil || h.c.hist == nil {
		return nil
	}
	return h.c.histSnapshot()
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// rank, the same estimator Prometheus's histogram_quantile uses. NaN
// when the histogram is empty or the instrument is a no-op.
func (h *Histogram) Quantile(p float64) float64 {
	return h.Snapshot().Quantile(p)
}

// histSnapshot reads the histogram once: every bucket counter is
// loaded into a plain slice and the total observation count is the sum
// of those loads, never the separate observation counter (which an
// in-flight Observe may have bumped ahead of its bucket). This is what
// keeps _bucket{le="+Inf"} == _count in every export.
func (c *child) histSnapshot() *HistSnapshot {
	h := c.hist
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		v := h.buckets[i].Load()
		counts[i] = v
		total += v
	}
	return &HistSnapshot{
		Upper:  h.upper,
		Counts: counts,
		Count:  total,
		Sum:    h.sum(),
	}
}

// CounterVec is a counter family partitioned by labels. Nil-safe.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{c: v.f.child(values)}
}

// GaugeVec is a gauge family partitioned by labels. Nil-safe.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{c: v.f.child(values)}
}

// HistogramVec is a histogram family partitioned by labels. Nil-safe.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{c: v.f.child(values)}
}

// Counter registers (or retrieves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, KindCounter, nil, nil)
	return &Counter{c: f.child(nil)}
}

// CounterVec registers (or retrieves) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.family(name, help, KindCounter, labels, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// Gauge registers (or retrieves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, KindGauge, nil, nil)
	return &Gauge{c: f.child(nil)}
}

// GaugeVec registers (or retrieves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.family(name, help, KindGauge, labels, nil)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// Histogram registers (or retrieves) an unlabeled histogram with the
// given bucket upper bounds (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, KindHistogram, nil, buckets)
	return &Histogram{c: f.child(nil)}
}

// HistogramVec registers (or retrieves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.family(name, help, KindHistogram, labels, buckets)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}
