// Package obs is the repo's stdlib-only observability substrate: a
// structured leveled logger (key=value lines over a pluggable sink), a
// concurrent-safe metrics registry (counters, gauges, histograms with
// fixed bucket boundaries and atomic hot paths), and hierarchical
// tracing spans. A text exporter renders the registry in Prometheus
// exposition format, and an optional net/http mux serves /metrics,
// /debug/vars (expvar bridge), and /debug/pprof for runtime
// introspection.
//
// Every instrument tolerates a nil receiver: instrumented code can run
// with observability disabled at zero configuration cost, since a nil
// *Registry hands out nil instruments whose methods are no-ops.
//
// Metric names follow Prometheus conventions (snake_case, _total for
// counters, _seconds for durations) under the daas_ prefix; see the
// README's Observability section for the full name inventory and
// DESIGN.md for the mapping from metric to paper section.
package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Attr is one key/value attribute attached to a log line or span.
type Attr struct {
	Key   string
	Value any
}

// attrsFromKV pairs up a variadic key/value list. A trailing key
// without a value is kept with the placeholder "(MISSING)"; non-string
// keys are stringified.
func attrsFromKV(kv []any) []Attr {
	if len(kv) == 0 {
		return nil
	}
	out := make([]Attr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var val any = "(MISSING)"
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		out = append(out, Attr{Key: key, Value: val})
	}
	return out
}

// formatValue renders an attribute value for key=value output, quoting
// strings that would break the format.
func formatValue(v any) string {
	s, isString := v.(string)
	if !isString {
		if err, isErr := v.(error); isErr && err != nil {
			s, isString = err.Error(), true
		} else {
			s = fmt.Sprint(v)
		}
	}
	if needsQuoting(s) || (isString && s == "") {
		return strconv.Quote(s)
	}
	return s
}

func needsQuoting(s string) bool {
	return strings.ContainsAny(s, " \t\n\"=")
}
