package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// capture collects lines through the NewCallback adapter, which renders
// records without timestamps — convenient for exact-match assertions.
func capture() (*Logger, *[]string) {
	lines := new([]string)
	l := NewCallback(func(format string, args ...any) {
		*lines = append(*lines, fmt.Sprintf(format, args...))
	})
	return l, lines
}

func TestLoggerFormat(t *testing.T) {
	l, lines := capture()
	l.Info("pipeline started", "iter", 3, "frontier", 17)
	l.Error("fetch failed", "err", fmt.Errorf("boom"))
	want := []string{
		`level=info msg="pipeline started" iter=3 frontier=17`,
		`level=error msg="fetch failed" err=boom`,
	}
	if len(*lines) != len(want) {
		t.Fatalf("got %d lines, want %d: %q", len(*lines), len(want), *lines)
	}
	for i := range want {
		if (*lines)[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, (*lines)[i], want[i])
		}
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, lines := capture()
	l.Info("msg", "path", "/tmp/a b", "eq", "k=v", "plain", "bare")
	got := (*lines)[0]
	want := `level=info msg=msg path="/tmp/a b" eq="k=v" plain=bare`
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestLoggerOddKV(t *testing.T) {
	l, lines := capture()
	l.Info("m", "dangling")
	if got, want := (*lines)[0], `level=info msg=m dangling=(MISSING)`; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	l, lines := capture()
	l.SetLevel(LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	if len(*lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(*lines), *lines)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Fatal("Enabled disagrees with the configured level")
	}
}

func TestLoggerWith(t *testing.T) {
	l, lines := capture()
	child := l.With("component", "pipeline")
	child.Info("tick", "iter", 1)
	l.Info("bare")
	want := []string{
		`level=info msg=tick component=pipeline iter=1`,
		`level=info msg=bare`, // parent must not inherit the child's attrs
	}
	for i := range want {
		if (*lines)[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, (*lines)[i], want[i])
		}
	}
}

func TestLoggerTimestamp(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Info("hello")
	line := buf.String()
	if !strings.HasPrefix(line, "time=") {
		t.Fatalf("New logger line missing time= prefix: %q", line)
	}
	if !strings.Contains(line, `level=info msg=hello`) {
		t.Fatalf("unexpected line: %q", line)
	}
}

func TestNewCallbackNil(t *testing.T) {
	if l := NewCallback(nil); l != nil {
		t.Fatal("NewCallback(nil) should return a nil (no-op) logger")
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{
		LevelDebug: "debug", LevelInfo: "info", LevelWarn: "warn", LevelError: "error", Level(9): "level(9)",
	} {
		if got := lv.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", lv, got, want)
		}
	}
}
