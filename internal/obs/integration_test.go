// Integration test: run the real snowball pipeline over the
// deterministic worldgen dataset with a fresh registry and assert that
// the recorded metrics agree with the dataset the run produced.
package obs_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/worldgen"
)

func TestPipelineMetricsIntegration(t *testing.T) {
	w, err := worldgen.Generate(worldgen.TestConfig(1910))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	src := core.NewInstrumentedSource(core.LocalSource{Chain: w.Chain}, reg)
	p := &core.Pipeline{
		Source:  src,
		Labels:  w.Labels,
		Metrics: reg,
		Spans:   rec,
	}
	ds, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}

	counter := func(name string) uint64 {
		// Re-registering with the same kind and label set returns the
		// live family, so this reads the recorded value.
		return reg.Counter(name, "").Value()
	}
	method := func(name, m string) uint64 {
		return reg.CounterVec(name, "", "method").With(m).Value()
	}

	if counter("daas_pipeline_iterations_total") == 0 {
		t.Error("pipeline recorded zero expansion iterations")
	}
	txFetched := counter("daas_pipeline_tx_fetched_total")
	if txFetched == 0 {
		t.Error("pipeline recorded zero fetched transactions")
	}
	if scanned := counter("daas_pipeline_accounts_scanned_total"); scanned == 0 {
		t.Error("pipeline recorded zero scanned accounts")
	}

	// Every successful fetch is one Transaction plus one Receipt call on
	// the instrumented source; the local simulator never fails, so the
	// per-method counters must agree exactly with the pipeline's count.
	txCalls := method("daas_chain_requests_total", "Transaction")
	rcCalls := method("daas_chain_requests_total", "Receipt")
	if txCalls != txFetched || rcCalls != txFetched {
		t.Errorf("chain source calls (Transaction=%d, Receipt=%d) disagree with tx_fetched=%d",
			txCalls, rcCalls, txFetched)
	}
	if errs := method("daas_chain_request_errors_total", "Transaction"); errs != 0 {
		t.Errorf("local source recorded %d Transaction errors", errs)
	}
	if lat := reg.HistogramVec("daas_chain_request_duration_seconds", "", nil, "method").With("Transaction"); lat.Count() != txCalls {
		t.Errorf("latency histogram count=%d, want one sample per call (%d)", lat.Count(), txCalls)
	}

	// The classifier counter is keyed by per-mille ratio; every ratio
	// present in the dataset must have been counted at least as often as
	// it is stored (the expansion may classify a split more than once).
	splits := reg.CounterVec("daas_classifier_splits_total", "", "ratio_pm")
	stored := make(map[int64]uint64)
	for _, sps := range ds.Splits {
		for _, sp := range sps {
			stored[sp.RatioPM]++
		}
	}
	if len(stored) == 0 {
		t.Fatal("worldgen dataset has no profit-sharing splits; test world broken")
	}
	for pm, n := range stored {
		got := splits.With(strconv.FormatInt(pm, 10)).Value()
		if got < n {
			t.Errorf("ratio %d‰: counter=%d < %d splits stored in the dataset", pm, got, n)
		}
	}

	// The whole run hangs off one recorded root span with per-iteration
	// children.
	roots := rec.Roots()
	if len(roots) != 1 || roots[0].Name() != "pipeline.build" {
		t.Fatalf("recorded roots = %v, want exactly [pipeline.build]", roots)
	}
	var iters uint64
	for _, c := range roots[0].Children() {
		if c.Name() == "pipeline.expand.iter" {
			iters++
		}
	}
	if iters != counter("daas_pipeline_iterations_total") {
		t.Errorf("span tree has %d expand.iter children, counter says %d",
			iters, counter("daas_pipeline_iterations_total"))
	}

	// And the exposition carries the same numbers end to end.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	want := "daas_pipeline_tx_fetched_total " + strconv.FormatUint(txFetched, 10) + "\n"
	if !strings.Contains(expo, want) {
		t.Errorf("exposition missing %q", strings.TrimSpace(want))
	}
	if !strings.Contains(expo, `daas_chain_request_duration_seconds_bucket{method="Transaction",le="+Inf"} `) {
		t.Error("exposition missing the chain latency histogram")
	}
}
