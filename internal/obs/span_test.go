package obs

import (
	"context"
	"strings"
	"testing"
)

func TestSpanDisabledWithoutRecorder(t *testing.T) {
	ctx, sp := Start(context.Background(), "root")
	if sp != nil {
		t.Fatal("Start without a recorder should return a nil span")
	}
	// And nil spans must be inert through the whole API.
	sp.SetAttr("k", "v")
	sp.End()
	if _, child := Start(ctx, "child"); child != nil {
		t.Fatal("child of a disabled context should also be nil")
	}
}

func TestSpanNesting(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)

	ctx, root := Start(ctx, "pipeline.build")
	root.SetAttr("seed", 1910)
	ctx2, child := Start(ctx, "expand.iter")
	child.SetAttr("iter", 1)
	_, grand := Start(ctx2, "fetch")
	grand.End()
	child.End()
	// Sibling started from the root context, after the first child ended.
	_, sib := Start(ctx, "cluster")
	sib.End()
	root.End()

	roots := rec.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	r := roots[0]
	if r.Name() != "pipeline.build" {
		t.Fatalf("root name = %q", r.Name())
	}
	attrs := r.Attrs()
	if len(attrs) != 1 || attrs[0].Key != "seed" {
		t.Fatalf("root attrs = %v", attrs)
	}
	kids := r.Children()
	if len(kids) != 2 || kids[0].Name() != "expand.iter" || kids[1].Name() != "cluster" {
		names := make([]string, len(kids))
		for i, k := range kids {
			names[i] = k.Name()
		}
		t.Fatalf("children = %v, want [expand.iter cluster]", names)
	}
	gk := kids[0].Children()
	if len(gk) != 1 || gk[0].Name() != "fetch" {
		t.Fatalf("grandchildren = %v", gk)
	}
	if r.Duration() <= 0 {
		t.Fatal("ended root has zero duration")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	_, sp := Start(ctx, "once")
	sp.End()
	sp.End()
	if got := len(rec.Roots()); got != 1 {
		t.Fatalf("double End registered %d roots, want 1", got)
	}
}

func TestRecorderMaxRoots(t *testing.T) {
	rec := NewRecorder()
	rec.MaxRoots = 3
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "span"+string(rune('a'+i)))
		sp.End()
	}
	roots := rec.Roots()
	if len(roots) != 3 {
		t.Fatalf("got %d roots, want cap of 3", len(roots))
	}
	if roots[0].Name() != "spanc" || roots[2].Name() != "spane" {
		t.Fatalf("oldest roots not dropped: first=%q last=%q", roots[0].Name(), roots[2].Name())
	}
}

func TestWriteTree(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := Start(ctx, "study")
	_, child := Start(ctx, "study.cluster")
	child.SetAttr("families", 4)
	child.End()
	root.End()

	var b strings.Builder
	if err := rec.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "study ") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  study.cluster ") || !strings.Contains(lines[1], "families=4") {
		t.Errorf("child line = %q", lines[1])
	}
}
