// Package toolkit models drainer toolkits and their fingerprints
// (paper §7.2, §8.2): per-family JavaScript file layouts, an
// obfuscated-content generator, the fingerprint corpus assembled from
// Telegram-acquired kits and reported sites, and the matcher that
// decides whether a crawled website embeds a drainer toolkit.
package toolkit

import (
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"repro/internal/keccak"
)

// Family keys for the dominant drainer toolkits (paper Table 2/§7.2).
const (
	FamilyAngel   = "Angel Drainer"
	FamilyInferno = "Inferno Drainer"
	FamilyPink    = "Pink Drainer"
	FamilyAce     = "Ace Drainer"
	FamilyVenom   = "Venom Drainer"
)

// FileLayout returns the local JavaScript file names a family's
// toolkit ships (paper §7.2: settings.js/webchunk.js for Angel;
// contract.js/main.js/vendor.js for Pink; a UUID-named file plus
// seaport.js/wallet_connect.js for Inferno).
func FileLayout(family string, rng *rand.Rand) []string {
	switch family {
	case FamilyAngel:
		return []string{"settings.js", "webchunk.js"}
	case FamilyPink:
		return []string{"contract.js", "main.js", "vendor.js"}
	case FamilyInferno:
		return []string{"seaport.js", "wallet_connect.js", uuidName(rng)}
	case FamilyAce:
		return []string{"drainer.core.js", "ace.loader.js"}
	case FamilyVenom:
		return []string{"venom.bundle.js"}
	default:
		return []string{"app.js"}
	}
}

// uuidName builds the Inferno-style random UUID file name.
func uuidName(rng *rand.Rand) string {
	var b [16]byte
	for i := range b {
		b[i] = byte(rng.UintN(256))
	}
	return fmt.Sprintf("%x-%x-%x-%x-%x.js", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// Fingerprint identifies one toolkit file: its name and the hash of
// its contents. Matching on the name with novel content still flags a
// variant (the paper folds such variants back into the corpus).
type Fingerprint struct {
	Family      string
	FileName    string
	ContentHash string // hex keccak-256
}

// GenerateContent produces deterministic obfuscated-looking drainer
// JavaScript for a family variant. Distinct variants hash differently
// while sharing the family's structural markers.
func GenerateContent(family string, variant int) string {
	sum := keccak.Sum256([]byte(fmt.Sprintf("%s|%d", family, variant)))
	blob := hex.EncodeToString(sum[:])
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* %s build %d */\n", strings.ToLower(strings.ReplaceAll(family, " ", "")), variant)
	fmt.Fprintf(&sb, "var _0x%s=['connect','drain','approve','transferFrom','signTypedData'];\n", blob[:8])
	fmt.Fprintf(&sb, "(function(_k){window.__af='%s';", blob[8:24])
	sb.WriteString("async function sweep(w){const a=await w.request({method:'eth_requestAccounts'});")
	sb.WriteString("for(const t of _k)await drainToken(a[0],t);}")
	fmt.Fprintf(&sb, "const endpoint=atob('%s');", blob[24:44])
	sb.WriteString("})(window);\n")
	return sb.String()
}

// HashContent returns the corpus content hash of a file body.
func HashContent(content []byte) string {
	sum := keccak.Sum256(content)
	return hex.EncodeToString(sum[:])
}

// Corpus is the fingerprint database (867 fingerprints in the paper).
type Corpus struct {
	byName map[string][]Fingerprint
	count  int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byName: make(map[string][]Fingerprint)}
}

// Add inserts a fingerprint, deduplicating exact (name, hash) pairs.
func (c *Corpus) Add(fp Fingerprint) {
	for _, existing := range c.byName[fp.FileName] {
		if existing.ContentHash == fp.ContentHash {
			return
		}
	}
	c.byName[fp.FileName] = append(c.byName[fp.FileName], fp)
	c.count++
}

// Len returns the number of fingerprints.
func (c *Corpus) Len() int { return c.count }

// Families returns the distinct family names in the corpus, sorted.
func (c *Corpus) Families() []string {
	seen := make(map[string]bool)
	for _, fps := range c.byName {
		for _, fp := range fps {
			seen[fp.Family] = true
		}
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// MatchKind distinguishes exact fingerprint hits from name-only
// variant hits.
type MatchKind int

// Match kinds.
const (
	// MatchExact means name and content hash both known.
	MatchExact MatchKind = iota
	// MatchVariant means a known drainer file name with novel content —
	// a new toolkit build, which the detector also flags and folds into
	// the corpus (§8.2).
	MatchVariant
)

// Match is a detector verdict for one file.
type Match struct {
	Family   string
	FileName string
	Kind     MatchKind
}

// MatchFile tests one crawled file against the corpus. Generic file
// names shared with the broader web (main.js, vendor.js, app.js)
// require an exact content hit; distinctive drainer names also match
// as variants.
func (c *Corpus) MatchFile(name string, content []byte) (Match, bool) {
	fps := c.byName[name]
	if len(fps) == 0 {
		if looksUUIDjs(name) {
			// Inferno's per-affiliate UUID bundle: name shape + drainer
			// body markers.
			if containsDrainerMarkers(content) {
				return Match{Family: FamilyInferno, FileName: name, Kind: MatchVariant}, true
			}
		}
		return Match{}, false
	}
	hash := HashContent(content)
	for _, fp := range fps {
		if fp.ContentHash == hash {
			return Match{Family: fp.Family, FileName: name, Kind: MatchExact}, true
		}
	}
	if genericName(name) {
		return Match{}, false
	}
	if !containsDrainerMarkers(content) {
		return Match{}, false
	}
	return Match{Family: fps[0].Family, FileName: name, Kind: MatchVariant}, true
}

// MatchSite aggregates per-file verdicts: a site is drainer-deployed
// when any file matches; the family is the majority vote.
func (c *Corpus) MatchSite(files map[string][]byte) (Match, bool) {
	votes := make(map[string]int)
	var sample Match
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if m, ok := c.MatchFile(name, files[name]); ok {
			votes[m.Family]++
			if votes[m.Family] > votes[sample.Family] || sample.Family == "" {
				sample = m
			}
		}
	}
	if len(votes) == 0 {
		return Match{}, false
	}
	return sample, true
}

// genericName reports file names too common on the benign web to flag
// on name alone.
func genericName(name string) bool {
	switch name {
	case "main.js", "vendor.js", "app.js", "index.js", "bundle.js":
		return true
	}
	return false
}

// looksUUIDjs matches 8-4-4-4-12 hex UUID file names.
func looksUUIDjs(name string) bool {
	if !strings.HasSuffix(name, ".js") {
		return false
	}
	body := strings.TrimSuffix(name, ".js")
	parts := strings.Split(body, "-")
	if len(parts) != 5 {
		return false
	}
	lens := []int{8, 4, 4, 4, 12}
	for i, part := range parts {
		if len(part) != lens[i] {
			return false
		}
		for _, r := range part {
			if !strings.ContainsRune("0123456789abcdef", r) {
				return false
			}
		}
	}
	return true
}

// containsDrainerMarkers checks for the structural markers our
// generated toolkit bodies share (wallet-drain call sequences).
func containsDrainerMarkers(content []byte) bool {
	s := string(content)
	return strings.Contains(s, "drainToken") &&
		strings.Contains(s, "eth_requestAccounts")
}

// BuildCorpus assembles a corpus of approximately target fingerprints
// across the families, mimicking the paper's 867-fingerprint database
// collected from Telegram kits and reported sites.
func BuildCorpus(seed uint64, target int) *Corpus {
	rng := rand.New(rand.NewPCG(seed, seed^0x2545f491))
	c := NewCorpus()
	fams := []string{FamilyAngel, FamilyInferno, FamilyPink, FamilyAce, FamilyVenom}
	variant := 0
	for c.Len() < target {
		family := fams[variant%len(fams)]
		for _, name := range FileLayout(family, rng) {
			if c.Len() >= target {
				break
			}
			content := GenerateContent(family, variant)
			c.Add(Fingerprint{Family: family, FileName: name, ContentHash: HashContent([]byte(content))})
		}
		variant++
	}
	return c
}
