package toolkit

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestFileLayouts(t *testing.T) {
	r := rng()
	angel := FileLayout(FamilyAngel, r)
	if len(angel) != 2 || angel[0] != "settings.js" || angel[1] != "webchunk.js" {
		t.Errorf("angel layout = %v", angel)
	}
	pink := FileLayout(FamilyPink, r)
	if len(pink) != 3 || pink[0] != "contract.js" {
		t.Errorf("pink layout = %v", pink)
	}
	inferno := FileLayout(FamilyInferno, r)
	if len(inferno) != 3 {
		t.Fatalf("inferno layout = %v", inferno)
	}
	if !looksUUIDjs(inferno[2]) {
		t.Errorf("inferno bundle %q not UUID-shaped", inferno[2])
	}
}

func TestGenerateContentDeterministicAndDistinct(t *testing.T) {
	a := GenerateContent(FamilyAngel, 1)
	b := GenerateContent(FamilyAngel, 1)
	c := GenerateContent(FamilyAngel, 2)
	d := GenerateContent(FamilyPink, 1)
	if a != b {
		t.Error("content not deterministic")
	}
	if a == c || a == d {
		t.Error("variants or families collide")
	}
	if !containsDrainerMarkers([]byte(a)) {
		t.Error("generated content lacks drainer markers")
	}
}

func TestCorpusAddDedup(t *testing.T) {
	c := NewCorpus()
	fp := Fingerprint{Family: FamilyAngel, FileName: "settings.js", ContentHash: "aa"}
	c.Add(fp)
	c.Add(fp)
	if c.Len() != 1 {
		t.Errorf("len = %d after duplicate add", c.Len())
	}
	c.Add(Fingerprint{Family: FamilyAngel, FileName: "settings.js", ContentHash: "bb"})
	if c.Len() != 2 {
		t.Errorf("len = %d after variant add", c.Len())
	}
}

func TestBuildCorpusSize(t *testing.T) {
	c := BuildCorpus(5, 867)
	if c.Len() != 867 {
		t.Errorf("corpus size = %d, want 867", c.Len())
	}
	fams := c.Families()
	if len(fams) < 5 {
		t.Errorf("families = %v", fams)
	}
}

func TestMatchFileExactAndVariant(t *testing.T) {
	c := NewCorpus()
	content := GenerateContent(FamilyAngel, 7)
	c.Add(Fingerprint{Family: FamilyAngel, FileName: "settings.js", ContentHash: HashContent([]byte(content))})

	// Exact hit.
	m, ok := c.MatchFile("settings.js", []byte(content))
	if !ok || m.Kind != MatchExact || m.Family != FamilyAngel {
		t.Errorf("exact match = %+v, %v", m, ok)
	}
	// Variant: same distinctive name, new build.
	novel := GenerateContent(FamilyAngel, 99)
	m, ok = c.MatchFile("settings.js", []byte(novel))
	if !ok || m.Kind != MatchVariant {
		t.Errorf("variant match = %+v, %v", m, ok)
	}
	// Unknown name, benign content: no match.
	if _, ok := c.MatchFile("jquery.js", []byte("console.log(1)")); ok {
		t.Error("benign file matched")
	}
	// Distinctive name but benign content (no markers): no match.
	if _, ok := c.MatchFile("settings.js", []byte("var theme='dark';")); ok {
		t.Error("benign settings.js matched")
	}
}

func TestGenericNamesNeedExactHash(t *testing.T) {
	c := NewCorpus()
	content := GenerateContent(FamilyPink, 3)
	c.Add(Fingerprint{Family: FamilyPink, FileName: "main.js", ContentHash: HashContent([]byte(content))})
	// Exact generic-name hit works.
	if _, ok := c.MatchFile("main.js", []byte(content)); !ok {
		t.Error("exact generic match failed")
	}
	// Novel content under a generic name must NOT match even with
	// markers (too common on the benign web).
	novel := GenerateContent(FamilyPink, 55)
	if _, ok := c.MatchFile("main.js", []byte(novel)); ok {
		t.Error("generic-name variant matched")
	}
}

func TestInfernoUUIDHeuristic(t *testing.T) {
	c := NewCorpus()
	drainer := GenerateContent(FamilyInferno, 4)
	m, ok := c.MatchFile("8839a83b-968a-46d3-a3ee-96bbf497b662.js", []byte(drainer))
	if !ok || m.Family != FamilyInferno || m.Kind != MatchVariant {
		t.Errorf("UUID heuristic = %+v, %v", m, ok)
	}
	// UUID name with benign content: no match.
	if _, ok := c.MatchFile("8839a83b-968a-46d3-a3ee-96bbf497b662.js", []byte("alert(1)")); ok {
		t.Error("benign UUID file matched")
	}
	// Non-UUID shapes rejected.
	for _, name := range []string{"x.js", "8839a83b-968a-46d3-a3ee.js", "8839a83g-968a-46d3-a3ee-96bbf497b662.js"} {
		if looksUUIDjs(name) {
			t.Errorf("%q misidentified as UUID", name)
		}
	}
}

func TestMatchSiteMajority(t *testing.T) {
	c := BuildCorpus(5, 50)
	files := map[string][]byte{
		"index.html":  []byte("<html></html>"),
		"settings.js": []byte(GenerateContent(FamilyAngel, 500)),
		"webchunk.js": []byte(GenerateContent(FamilyAngel, 500)),
	}
	m, ok := c.MatchSite(files)
	if !ok || m.Family != FamilyAngel {
		t.Errorf("site match = %+v, %v", m, ok)
	}
	if _, ok := c.MatchSite(map[string][]byte{"index.html": []byte("<html/>")}); ok {
		t.Error("empty site matched")
	}
}

func TestHashContentStable(t *testing.T) {
	if HashContent([]byte("x")) != HashContent([]byte("x")) {
		t.Error("hash unstable")
	}
	if HashContent([]byte("x")) == HashContent([]byte("y")) {
		t.Error("hash collision on trivial input")
	}
	if got := len(HashContent(nil)); got != 64 {
		t.Errorf("hash hex length = %d", got)
	}
	if !strings.HasPrefix(HashContent(nil), "c5d24601") {
		t.Error("empty-input keccak mismatch")
	}
}
