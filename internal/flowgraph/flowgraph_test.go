package flowgraph_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/flowgraph"
	"repro/internal/labels"
	"repro/internal/worldgen"
)

var world = func() *worldgen.World {
	w, err := worldgen.Generate(worldgen.TestConfig(808))
	if err != nil {
		panic(err)
	}
	return w
}()

func newTracer() *flowgraph.Tracer {
	return &flowgraph.Tracer{
		Source: core.LocalSource{Chain: world.Chain},
		Labels: world.Labels,
	}
}

func TestTraceRecoversPlantedRoutes(t *testing.T) {
	tr := newTracer()
	if len(world.Truth.CashoutRoute) == 0 {
		t.Fatal("no cashouts planted")
	}
	// Dominant-sink recovery is exact up to commingling: traces also
	// follow inter-operator link transfers into peers' routes, so a
	// small minority of origins resolve to the other sink. Require a
	// strong majority.
	checked, agreed := 0, 0
	for origin, want := range world.Truth.CashoutRoute {
		trace, err := tr.Trace(origin)
		if err != nil {
			t.Fatal(err)
		}
		got := trace.DominantSink()
		if (want == "mixer" && got == flowgraph.SinkMixer) ||
			(want == "exchange" && got == flowgraph.SinkExchange) {
			agreed++
		}
		checked++
	}
	if agreed*10 < checked*8 {
		t.Errorf("dominant sink agreed for %d of %d planted routes", agreed, checked)
	}
}

func TestTracePathShape(t *testing.T) {
	tr := newTracer()
	// Find a mixer-routed origin: its path must have the two planted
	// intermediary hops plus the mixer edge.
	for origin, want := range world.Truth.CashoutRoute {
		if want != "mixer" {
			continue
		}
		trace, err := tr.Trace(origin)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range trace.Paths {
			if p.Kind == flowgraph.SinkMixer {
				found = true
				if len(p.Hops) != 3 {
					t.Errorf("mixer path has %d hops, want 3", len(p.Hops))
				}
				if p.Hops[0].From != origin {
					t.Error("path does not start at origin")
				}
				if p.Amount.IsZero() {
					t.Error("zero-value path recorded")
				}
			}
		}
		if !found {
			t.Errorf("no mixer path from %s", origin.Short())
		}
		return
	}
	t.Skip("no mixer routes in this world")
}

func TestTraceDepthLimit(t *testing.T) {
	tr := newTracer()
	tr.MaxDepth = 1
	for origin, want := range world.Truth.CashoutRoute {
		if want != "mixer" {
			continue
		}
		trace, err := tr.Trace(origin)
		if err != nil {
			t.Fatal(err)
		}
		// At depth 1 the mixer (3 hops away) is unreachable.
		if _, ok := trace.SinkTotals[flowgraph.SinkMixer]; ok {
			t.Error("depth-1 trace reached the 3-hop mixer")
		}
		if _, ok := trace.SinkTotals[flowgraph.SinkUnknown]; !ok {
			t.Error("depth-limited trace recorded no unknown sink")
		}
		return
	}
	t.Skip("no mixer routes in this world")
}

func TestSurveyReproducesSec81Claim(t *testing.T) {
	tr := newTracer()
	origins := make([]ethtypes.Address, 0, len(world.Truth.CashoutRoute))
	for origin := range world.Truth.CashoutRoute {
		origins = append(origins, origin)
	}
	rep, err := tr.Survey(origins)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Origins != len(origins) {
		t.Errorf("surveyed %d of %d", rep.Origins, len(origins))
	}
	if rep.ViaMixer == 0 || rep.ViaExchange == 0 {
		t.Errorf("degenerate survey: %+v", rep)
	}
	// §8.1: labeled (reported) accounts overwhelmingly launder via the
	// mixer. A small remainder leaks through inter-operator transfers
	// into peers' exchange routes — realistic commingling.
	if rep.LabeledViaMixerFraction < 0.75 {
		t.Errorf("labeled-via-mixer = %.2f, want ≥ 0.75", rep.LabeledViaMixerFraction)
	}
}

func TestTracerRequiresSource(t *testing.T) {
	tr := &flowgraph.Tracer{Labels: labels.New()}
	if _, err := tr.Trace(ethtypes.Address{1}); err == nil {
		t.Error("tracer without source ran")
	}
}
