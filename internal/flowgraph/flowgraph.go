// Package flowgraph traces stolen funds downstream from DaaS accounts
// — the paper's §8.1 observation that reported accounts "are unable to
// directly withdraw tokens through centralized exchanges [and] instead
// typically launder funds by routing them through cross-chain bridges
// and mixing services". The tracer follows outgoing ETH transfers hop
// by hop until they reach a labeled sink (exchange, mixer/bridge) or a
// depth limit, and aggregates value per sink class.
package flowgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/labels"
)

// SinkKind classifies where a traced flow terminated.
type SinkKind string

// Sink classes.
const (
	// SinkExchange is a labeled centralized-exchange deposit point.
	SinkExchange SinkKind = "exchange"
	// SinkMixer is a labeled mixing/bridging service.
	SinkMixer SinkKind = "mixer"
	// SinkHeld means the funds sat unspent within the traced horizon.
	SinkHeld SinkKind = "held"
	// SinkUnknown means the trace hit the depth limit mid-flight.
	SinkUnknown SinkKind = "unknown"
)

// Hop is one edge of a traced path.
type Hop struct {
	From   ethtypes.Address
	To     ethtypes.Address
	Amount ethtypes.Wei
}

// Path is one origin-to-sink route.
type Path struct {
	Origin ethtypes.Address
	Sink   ethtypes.Address
	Kind   SinkKind
	Hops   []Hop
	Amount ethtypes.Wei // value arriving at the sink (minimum along the path)
}

// Trace is the aggregate result for one origin account.
type Trace struct {
	Origin ethtypes.Address
	Paths  []Path
	// SinkTotals sums arriving value per sink class.
	SinkTotals map[SinkKind]ethtypes.Wei
}

// DominantSink returns the sink class receiving the most value.
func (t *Trace) DominantSink() SinkKind {
	best, kind := ethtypes.Wei{}, SinkHeld
	for _, k := range []SinkKind{SinkExchange, SinkMixer, SinkUnknown, SinkHeld} {
		if v, ok := t.SinkTotals[k]; ok && v.Cmp(best) > 0 {
			best, kind = v, k
		}
	}
	return kind
}

// Tracer walks fund flows over a chain source.
type Tracer struct {
	Source core.ChainSource
	Labels *labels.Directory
	// MaxDepth bounds hop chains (default 4).
	MaxDepth int
	// MinAmount prunes dust edges (default 0).
	MinAmount ethtypes.Wei
}

// classify maps a labeled account to a sink class, if any.
func (tr *Tracer) classify(a ethtypes.Address) (SinkKind, bool) {
	if tr.Labels == nil {
		return "", false
	}
	for _, l := range tr.Labels.Of(a) {
		name := strings.ToLower(l.Name)
		switch {
		case l.Category == labels.CategoryExchange:
			return SinkExchange, true
		case l.Category == labels.CategoryService &&
			(strings.Contains(name, "mixer") || strings.Contains(name, "tornado") || strings.Contains(name, "bridge")):
			return SinkMixer, true
		}
	}
	return "", false
}

// Trace follows the origin's outgoing ETH until labeled sinks, the
// depth limit, or quiescence.
func (tr *Tracer) Trace(origin ethtypes.Address) (*Trace, error) {
	if tr.Source == nil {
		return nil, fmt.Errorf("flowgraph: Tracer needs a Source")
	}
	maxDepth := tr.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 4
	}
	out := &Trace{Origin: origin, SinkTotals: make(map[SinkKind]ethtypes.Wei)}
	visited := map[ethtypes.Address]bool{origin: true}
	err := tr.walk(out, origin, nil, ethtypes.Wei{}, maxDepth, visited)
	if err != nil {
		return nil, err
	}
	sort.Slice(out.Paths, func(i, j int) bool { return out.Paths[i].Amount.Cmp(out.Paths[j].Amount) > 0 })
	return out, nil
}

// walk explores outgoing transfers of acct. carried is the value that
// reached acct along the current path (zero for the origin itself).
func (tr *Tracer) walk(out *Trace, acct ethtypes.Address, hops []Hop, carried ethtypes.Wei, depth int, visited map[ethtypes.Address]bool) error {
	hashes, err := tr.Source.TransactionsOf(acct)
	if err != nil {
		return fmt.Errorf("flowgraph: history of %s: %w", acct.Short(), err)
	}
	outgoing := 0
	for _, h := range hashes {
		r, err := tr.Source.Receipt(h)
		if err != nil {
			return err
		}
		if !r.Status {
			continue
		}
		for _, t := range r.Transfers {
			if t.From != acct || t.Asset.Kind != chain.AssetETH {
				continue
			}
			if t.Amount.Cmp(tr.MinAmount) <= 0 {
				continue
			}
			if visited[t.To] {
				continue
			}
			amount := t.Amount
			if carried.Sign() > 0 && carried.Cmp(amount) < 0 {
				amount = carried
			}
			hop := Hop{From: acct, To: t.To, Amount: t.Amount}
			path := append(append([]Hop{}, hops...), hop)
			outgoing++
			if kind, isSink := tr.classify(t.To); isSink {
				tr.record(out, path, t.To, kind, amount)
				continue
			}
			if depth <= 1 {
				tr.record(out, path, t.To, SinkUnknown, amount)
				continue
			}
			visited[t.To] = true
			if err := tr.walk(out, t.To, path, amount, depth-1, visited); err != nil {
				return err
			}
		}
	}
	if outgoing == 0 && len(hops) > 0 {
		// A quiescent intermediary: funds are held here.
		tr.record(out, hops, acct, SinkHeld, carried)
	}
	return nil
}

func (tr *Tracer) record(out *Trace, hops []Hop, sink ethtypes.Address, kind SinkKind, amount ethtypes.Wei) {
	out.Paths = append(out.Paths, Path{
		Origin: out.Origin, Sink: sink, Kind: kind, Hops: hops, Amount: amount,
	})
	out.SinkTotals[kind] = out.SinkTotals[kind].Add(amount)
}

// CashoutReport aggregates DominantSink over many origins — the §8.1
// claim quantified: labeled (reported) accounts route through mixers,
// unlabeled ones still reach exchanges.
type CashoutReport struct {
	Origins       int
	ViaMixer      int
	ViaExchange   int
	HeldOrUnknown int
	// LabeledViaMixerFraction is the share of Etherscan-labeled origins
	// whose dominant sink is a mixer.
	LabeledViaMixerFraction float64
}

// Survey traces every origin and aggregates dominant sinks.
func (tr *Tracer) Survey(origins []ethtypes.Address) (*CashoutReport, error) {
	rep := &CashoutReport{}
	labeledTotal, labeledMixer := 0, 0
	for _, origin := range origins {
		t, err := tr.Trace(origin)
		if err != nil {
			return nil, err
		}
		rep.Origins++
		labeled := tr.Labels != nil && tr.Labels.Has(origin, labels.SourceEtherscan)
		if labeled {
			labeledTotal++
		}
		switch t.DominantSink() {
		case SinkMixer:
			rep.ViaMixer++
			if labeled {
				labeledMixer++
			}
		case SinkExchange:
			rep.ViaExchange++
		default:
			rep.HeldOrUnknown++
		}
	}
	if labeledTotal > 0 {
		rep.LabeledViaMixerFraction = float64(labeledMixer) / float64(labeledTotal)
	}
	return rep, nil
}
