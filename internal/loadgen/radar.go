package loadgen

import (
	"sync"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/obs"
	"repro/internal/radar"
	"repro/internal/screen"
	"repro/internal/worldgen"
)

// RadarConfig tunes one streaming radar run: the generated chain is
// replayed block-by-block into the live detection daemon while a
// screening sidecar hammers the engine the daemon keeps hot-swapping.
type RadarConfig struct {
	// Seed drives the screening sidecar's batch schedule; the block
	// stream itself is fully determined by the world.
	Seed uint64
	// StepEvery is how many blocks arrive between radar steps
	// (default 4) — the arrival batching knob.
	StepEvery int
	// ScreenBatchSize is the addresses per sidecar screening batch
	// (default 64).
	ScreenBatchSize int
	// ScreenWorkers is the number of concurrent sidecar workers
	// (default 2).
	ScreenWorkers int
	// Registry receives the daas_loadgen_radar_* instruments; nil uses
	// a private registry.
	Registry *obs.Registry
}

// RadarRunResult is one streaming run's outcome. The dataset shape
// fields (Blocks through Swaps) are pure functions of the world and
// StepEvery — any drift between runs is a correctness regression. The
// latency and throughput fields measure the stream under concurrent
// screening load.
type RadarRunResult struct {
	Blocks     int    `json:"blocks"`
	Contracts  int    `json:"contracts"`
	Operators  int    `json:"operators"`
	Affiliates int    `json:"affiliates"`
	ProfitTxs  int    `json:"profit_txs"`
	Families   int    `json:"families"`
	Swaps      uint64 `json:"swaps"`

	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	BlocksPerSecond float64 `json:"blocks_s"`
	StepP50Seconds  float64 `json:"step_p50_seconds"`
	StepP99Seconds  float64 `json:"step_p99_seconds"`

	ScreenBatches    uint64  `json:"screen_batches"`
	Listed           uint64  `json:"listed"`
	ScreenP50Seconds float64 `json:"screen_p50_seconds"`
	ScreenP95Seconds float64 `json:"screen_p95_seconds"`
	ScreenP99Seconds float64 `json:"screen_p99_seconds"`
}

// RunRadar replays a generated world through the radar daemon while
// screening batches run against the engine it swaps — the streaming
// analogue of RunPipeline, and the workload behind BENCH_radar.json.
func RunRadar(w *worldgen.World, cfg RadarConfig) (*RadarRunResult, error) {
	if cfg.StepEvery <= 0 {
		cfg.StepEvery = 4
	}
	if cfg.ScreenBatchSize <= 0 {
		cfg.ScreenBatchSize = 64
	}
	if cfg.ScreenWorkers <= 0 {
		cfg.ScreenWorkers = 2
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	stepDur := reg.Histogram("daas_loadgen_radar_step_duration_seconds", "radar step latency during the stream", obs.DefDurationBuckets)
	screenDur := reg.Histogram("daas_loadgen_radar_screen_batch_duration_seconds", "sidecar screening batch latency under swap churn", obs.DefDurationBuckets)
	batches := reg.Counter("daas_loadgen_radar_screen_batches_total", "sidecar screening batches issued")
	listed := reg.Counter("daas_loadgen_radar_listed_total", "listed verdicts returned by the sidecar")
	base := reg.Snapshot()

	f := chain.NewFollower(w.Chain)
	dst := f.Chain()
	eng := screen.NewEngine(nil)
	r, err := radar.New(radar.Config{
		Source: core.LocalSource{Chain: dst},
		Blocks: radar.ChainBlocks{Chain: dst},
		Labels: w.Labels,
		Engine: eng,
	})
	if err != nil {
		return nil, err
	}

	// The sidecar's address universe: every publicly reported phishing
	// address (which the stream progressively lists) plus an equal share
	// of synthetic clean addresses.
	phish := w.Labels.AllPhishing()
	clean := len(phish)
	if clean < 64 {
		clean = 64
	}
	universe := append([]ethtypes.Address{}, phish...)
	for i := 0; i < clean; i++ {
		var a ethtypes.Address
		a[0] = 0xEE
		a[1] = byte(i >> 8)
		a[2] = byte(i)
		universe = append(universe, a)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.ScreenWorkers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rnd := &rng{state: cfg.Seed + uint64(wkr)*0x9E3779B9}
			batch := make([]ethtypes.Address, cfg.ScreenBatchSize)
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := range batch {
					batch[i] = universe[rnd.intn(len(universe))]
				}
				start := obs.Now()
				for _, a := range batch {
					if _, ok := eng.Screen(a); ok {
						listed.Inc()
					}
				}
				screenDur.ObserveDuration(obs.Since(start))
				batches.Inc()
			}
		}(wkr)
	}

	start := obs.Now()
	blocksSeen := 0
	for {
		advanced := 0
		for advanced < cfg.StepEvery {
			if _, ok := f.Advance(); !ok {
				break
			}
			advanced++
		}
		if advanced == 0 {
			break
		}
		blocksSeen += advanced
		s := obs.Now()
		if _, err := r.Step(); err != nil {
			close(done)
			wg.Wait()
			return nil, err
		}
		stepDur.ObserveDuration(obs.Since(s))
	}
	elapsed := obs.Since(start)
	close(done)
	wg.Wait()

	st := r.Status()
	snap := reg.Snapshot().Diff(base)
	res := &RadarRunResult{
		Blocks:         blocksSeen,
		Contracts:      st.Stats.Contracts,
		Operators:      st.Stats.Operators,
		Affiliates:     st.Stats.Affiliates,
		ProfitTxs:      st.Stats.ProfitTxs,
		Families:       st.Families,
		Swaps:          st.Swaps,
		ElapsedSeconds: elapsed.Seconds(),
	}
	if res.ElapsedSeconds > 0 {
		res.BlocksPerSecond = float64(blocksSeen) / res.ElapsedSeconds
	}
	if s := snap.Find("daas_loadgen_radar_step_duration_seconds"); s != nil && s.Hist != nil && s.Hist.Count > 0 {
		res.StepP50Seconds = s.Hist.Quantile(0.50)
		res.StepP99Seconds = s.Hist.Quantile(0.99)
	}
	if s := snap.Find("daas_loadgen_radar_screen_batches_total"); s != nil {
		res.ScreenBatches = s.Counter
	}
	if s := snap.Find("daas_loadgen_radar_listed_total"); s != nil {
		res.Listed = s.Counter
	}
	if s := snap.Find("daas_loadgen_radar_screen_batch_duration_seconds"); s != nil && s.Hist != nil && s.Hist.Count > 0 {
		res.ScreenP50Seconds = s.Hist.Quantile(0.50)
		res.ScreenP95Seconds = s.Hist.Quantile(0.95)
		res.ScreenP99Seconds = s.Hist.Quantile(0.99)
	}
	return res, nil
}
