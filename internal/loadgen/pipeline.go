package loadgen

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/fetchcache"
	"repro/internal/obs"
	"repro/internal/worldgen"
)

// PipelineConfig tunes RunPipeline.
type PipelineConfig struct {
	// Builds is how many complete §5.1 pipeline builds to run
	// back-to-back. Default 1.
	Builds int
	// Concurrency is the pipeline's fetch worker count (0 = the
	// pipeline default).
	Concurrency int
	// CacheSize, when positive, inserts a fetchcache of that capacity
	// between the pipeline and the instrumented source — the production
	// decorator stack instead of a bare simulator.
	CacheSize int
	// Registry receives the build-duration histogram and the
	// instrumented source's metrics. Private registry when nil.
	Registry *obs.Registry
}

// PipelineResult summarizes repeated full-pipeline builds under load:
// wall-time quantiles across builds, the dataset shape (a determinism
// check as much as a result), and the diffed metric snapshot the run
// produced.
type PipelineResult struct {
	Builds         int     `json:"builds"`
	ProfitTxs      int     `json:"profit_txs"`
	Contracts      int     `json:"contracts"`
	MeanSeconds    float64 `json:"mean_seconds"`
	P50Seconds     float64 `json:"p50_seconds"`
	P95Seconds     float64 `json:"p95_seconds"`
	P99Seconds     float64 `json:"p99_seconds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Identical reports whether every build exported byte-identical
	// JSON — the invariant that separates a load harness from a fuzzer.
	Identical bool `json:"identical"`
	// Export is the first build's dataset JSON, so callers can compare
	// against an unloaded baseline build.
	Export []byte `json:"-"`
	// Metrics is the run's registry delta.
	Metrics obs.Snapshot `json:"-"`
}

// RunPipeline runs cfg.Builds complete pipeline builds over the world
// through the instrumented (and optionally cached) source stack,
// timing each build into daas_loadgen_build_duration_seconds.
func RunPipeline(w *worldgen.World, cfg PipelineConfig) (*PipelineResult, error) {
	if w == nil {
		return nil, fmt.Errorf("loadgen: no world")
	}
	builds := cfg.Builds
	if builds <= 0 {
		builds = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	buildHist := reg.Histogram("daas_loadgen_build_duration_seconds", "full pipeline build wall time under loadgen", obs.DefDurationBuckets)
	base := reg.Snapshot()

	var src core.ChainSource = core.NewInstrumentedSource(core.LocalSource{Chain: w.Chain}, reg)
	if cfg.CacheSize > 0 {
		src = fetchcache.New(src, cfg.CacheSize, reg)
	}

	res := &PipelineResult{Builds: builds, Identical: true}
	start := obs.Now()
	for i := 0; i < builds; i++ {
		p := &core.Pipeline{
			Source:      src,
			Labels:      w.Labels,
			Concurrency: cfg.Concurrency,
			Metrics:     reg,
		}
		buildStart := obs.Now()
		ds, err := p.Build()
		buildHist.ObserveDuration(obs.Since(buildStart))
		if err != nil {
			return nil, fmt.Errorf("loadgen: build %d: %w", i+1, err)
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("loadgen: export build %d: %w", i+1, err)
		}
		if i == 0 {
			res.Export = buf.Bytes()
			stats := ds.Stats()
			res.ProfitTxs = stats.ProfitTxs
			res.Contracts = stats.Contracts
		} else if !bytes.Equal(res.Export, buf.Bytes()) {
			res.Identical = false
		}
	}
	res.ElapsedSeconds = obs.Since(start).Seconds()

	snap := reg.Snapshot().Diff(base)
	res.Metrics = snap
	if smp := snap.Find("daas_loadgen_build_duration_seconds"); smp != nil && smp.Hist != nil && smp.Hist.Count > 0 {
		res.MeanSeconds = smp.Hist.Mean()
		res.P50Seconds = smp.Hist.Quantile(0.50)
		res.P95Seconds = smp.Hist.Quantile(0.95)
		res.P99Seconds = smp.Hist.Quantile(0.99)
	}
	return res, nil
}
