package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ethtypes"
	"repro/internal/obs"
	"repro/internal/screen"
)

// ScreenFunc answers one batch of addresses with listed flags, one per
// address in input order. It abstracts the screening backend so the
// same schedule can drive an in-process screen.Engine or a remote
// daas_screenBatch endpoint.
type ScreenFunc func(addrs []ethtypes.Address) ([]bool, error)

// EngineScreener adapts a screen.Engine into a ScreenFunc.
func EngineScreener(eng *screen.Engine) ScreenFunc {
	return func(addrs []ethtypes.Address) ([]bool, error) {
		out := make([]bool, len(addrs))
		for i, a := range addrs {
			_, out[i] = eng.Screen(a)
		}
		return out, nil
	}
}

// ScreenConfig tunes one screening load run.
type ScreenConfig struct {
	// Seed fully determines the batch schedule.
	Seed uint64
	// Batches is the number of screenBatch calls to issue.
	Batches int
	// BatchSize is the addresses per call.
	BatchSize int
	// Concurrency is the worker count (default 1); semantics match
	// Config.Concurrency.
	Concurrency int
	// Rate, when positive, dispatches batches open-loop at Rate
	// batches/second; zero runs closed-loop.
	Rate float64
	// Registry receives the daas_loadgen_screen_* instruments; nil uses
	// a private registry.
	Registry *obs.Registry
}

// ScreenGenerator drives a screening backend with a deterministic
// batch schedule drawn from a fixed address universe.
type ScreenGenerator struct {
	// Screen is the backend under test.
	Screen ScreenFunc
	// Addresses is the target universe; schedule picks are indexes into
	// it, so the caller controls the listed/clean mix by construction.
	Addresses []ethtypes.Address
	Config    ScreenConfig
	// Swapper, when non-nil, runs in a background goroutine for the
	// duration of the run (e.g. rebuilding and swapping the engine
	// snapshot in a tight loop) — the swap-under-load scenario. The
	// result's SwapCount reports how many invocations completed.
	Swapper func()
}

// ScreenSchedule materializes the per-batch target indexes: a pure
// function of (Seed, Batches, BatchSize, len(Addresses)).
func (g *ScreenGenerator) ScreenSchedule() ([][]int, error) {
	if g.Config.Batches <= 0 || g.Config.BatchSize <= 0 {
		return nil, fmt.Errorf("loadgen: Batches and BatchSize must be positive")
	}
	if len(g.Addresses) == 0 {
		return nil, fmt.Errorf("loadgen: screening address universe is empty")
	}
	r := &rng{state: g.Config.Seed}
	out := make([][]int, g.Config.Batches)
	for i := range out {
		idxs := make([]int, g.Config.BatchSize)
		for j := range idxs {
			idxs[j] = r.intn(len(g.Addresses))
		}
		out[i] = idxs
	}
	return out, nil
}

// ScreenRunResult is one screening run's outcome. Verdicts holds every
// lookup's listed flag in schedule order (batch-major), regardless of
// the order batches actually executed — the byte-identical contract:
// a run under snapshot churn must produce exactly the verdicts of an
// unloaded run over the same logical blacklist.
type ScreenRunResult struct {
	Mode            string  `json:"mode"`
	Seed            uint64  `json:"seed"`
	Batches         int     `json:"batches"`
	BatchSize       int     `json:"batch_size"`
	Errors          int     `json:"errors"`
	Concurrency     int     `json:"concurrency"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	OfferedRate     float64 `json:"offered_rate,omitempty"`
	AchievedBatches float64 `json:"achieved_batches_s"`
	AchievedLookups float64 `json:"achieved_lookups_s"`
	Listed          uint64  `json:"listed"`
	BatchP50Seconds float64 `json:"batch_p50_seconds"`
	BatchP95Seconds float64 `json:"batch_p95_seconds"`
	BatchP99Seconds float64 `json:"batch_p99_seconds"`
	// DispatchLagP99Seconds mirrors Result's open-loop overload signal.
	DispatchLagP99Seconds float64 `json:"dispatch_lag_p99_seconds,omitempty"`
	// SwapCount reports completed Swapper invocations during the run.
	SwapCount int `json:"swap_count,omitempty"`

	Verdicts []bool `json:"-"`
}

// Run executes the configured schedule and reports the outcome.
func (g *ScreenGenerator) Run() (*ScreenRunResult, error) {
	if g.Screen == nil {
		return nil, fmt.Errorf("loadgen: no screening backend")
	}
	schedule, err := g.ScreenSchedule()
	if err != nil {
		return nil, err
	}
	workers := g.Config.Concurrency
	if workers <= 0 {
		workers = 1
	}
	reg := g.Config.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	batches := reg.Counter("daas_loadgen_screen_batches_total", "screening batches issued")
	batchErrors := reg.Counter("daas_loadgen_screen_batch_errors_total", "failed screening batches")
	listed := reg.Counter("daas_loadgen_screen_listed_total", "listed verdicts returned")
	duration := reg.Histogram("daas_loadgen_screen_batch_duration_seconds", "screening batch latency", obs.DefDurationBuckets)
	lag := reg.Histogram("daas_loadgen_screen_dispatch_lag_seconds", "open-loop dispatch lateness versus the offered schedule", obs.DefDurationBuckets)
	base := reg.Snapshot()

	verdicts := make([]bool, g.Config.Batches*g.Config.BatchSize)
	var errCount atomic.Int64
	runOne := func(bi int) {
		idxs := schedule[bi]
		addrs := make([]ethtypes.Address, len(idxs))
		for j, k := range idxs {
			addrs[j] = g.Addresses[k]
		}
		start := obs.Now()
		flags, err := g.Screen(addrs)
		duration.ObserveDuration(obs.Since(start))
		batches.Inc()
		if err == nil && len(flags) != len(addrs) {
			err = fmt.Errorf("loadgen: %d verdicts for %d addresses", len(flags), len(addrs))
		}
		if err != nil {
			batchErrors.Inc()
			errCount.Add(1)
			return
		}
		// Each batch owns its disjoint slice of the verdict vector, so
		// concurrent workers never write the same element.
		for j, f := range flags {
			verdicts[bi*g.Config.BatchSize+j] = f
			if f {
				listed.Inc()
			}
		}
	}

	var stopSwapper func() int
	if g.Swapper != nil {
		stop := make(chan struct{})
		counted := make(chan int, 1)
		go func() {
			n := 0
			for {
				select {
				case <-stop:
					counted <- n
					return
				default:
					g.Swapper()
					n++
				}
			}
		}()
		stopSwapper = func() int {
			close(stop)
			return <-counted
		}
	}

	start := obs.Now()
	mode := "closed"
	if g.Config.Rate > 0 {
		mode = "open"
		queue := make(chan int, len(schedule))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for bi := range queue {
					runOne(bi)
				}
			}()
		}
		interval := float64(time.Second) / g.Config.Rate
		for bi := range schedule {
			due := start.Add(time.Duration(float64(bi) * interval))
			now := obs.Now()
			if wait := due.Sub(now); wait > 0 {
				time.Sleep(wait)
			} else {
				lag.ObserveDuration(-due.Sub(now))
			}
			queue <- bi
		}
		close(queue)
		wg.Wait()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for bi := w; bi < len(schedule); bi += workers {
					runOne(bi)
				}
			}(w)
		}
		wg.Wait()
	}
	elapsed := obs.Since(start)
	var swapCount int
	if stopSwapper != nil {
		swapCount = stopSwapper()
	}

	snap := reg.Snapshot().Diff(base)
	res := &ScreenRunResult{
		Mode:           mode,
		Seed:           g.Config.Seed,
		Batches:        g.Config.Batches,
		BatchSize:      g.Config.BatchSize,
		Errors:         int(errCount.Load()),
		Concurrency:    workers,
		ElapsedSeconds: elapsed.Seconds(),
		OfferedRate:    g.Config.Rate,
		SwapCount:      swapCount,
		Verdicts:       verdicts,
	}
	if res.ElapsedSeconds > 0 {
		res.AchievedBatches = float64(res.Batches) / res.ElapsedSeconds
		res.AchievedLookups = float64(res.Batches*res.BatchSize) / res.ElapsedSeconds
	}
	if s := snap.Find("daas_loadgen_screen_listed_total"); s != nil {
		res.Listed = s.Counter
	}
	if s := snap.Find("daas_loadgen_screen_batch_duration_seconds"); s != nil && s.Hist != nil && s.Hist.Count > 0 {
		res.BatchP50Seconds = s.Hist.Quantile(0.50)
		res.BatchP95Seconds = s.Hist.Quantile(0.95)
		res.BatchP99Seconds = s.Hist.Quantile(0.99)
	}
	if mode == "open" {
		if s := snap.Find("daas_loadgen_screen_dispatch_lag_seconds"); s != nil && s.Hist != nil && s.Hist.Count > 0 {
			res.DispatchLagP99Seconds = s.Hist.Quantile(0.99)
		}
	}
	return res, nil
}
