package loadgen

import (
	"testing"

	"repro/internal/ethtypes"
	"repro/internal/obs"
	"repro/internal/screen"
)

// screenUniverse builds a snapshot listing the even addresses of a
// 64-address universe, so roughly half the schedule's draws are hits.
func screenUniverse() ([]ethtypes.Address, *screen.Snapshot) {
	addrs := make([]ethtypes.Address, 64)
	b := screen.NewBuilder()
	for i := range addrs {
		addrs[i][0] = byte(i)
		addrs[i][19] = 0xee
		if i%2 == 0 {
			b.Add(screen.Record{Address: addrs[i], Kind: screen.KindOperator, Reason: screen.ReasonOperator})
		}
	}
	return addrs, b.Build()
}

func TestScreenScheduleDeterministic(t *testing.T) {
	addrs, _ := screenUniverse()
	g := &ScreenGenerator{Addresses: addrs, Config: ScreenConfig{Seed: 42, Batches: 10, BatchSize: 16}}
	a, err := g.ScreenSchedule()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.ScreenSchedule()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("schedule differs at [%d][%d]", i, j)
			}
		}
	}
	g.Config.Seed = 43
	c, err := g.ScreenSchedule()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}

	bad := &ScreenGenerator{Config: ScreenConfig{Seed: 1, Batches: 1, BatchSize: 1}}
	if _, err := bad.ScreenSchedule(); err == nil {
		t.Error("empty universe accepted")
	}
}

// TestScreenSwapUnderLoadByteIdentical is the acceptance gate: a run
// with continuous snapshot churn returns exactly the verdict vector of
// an unloaded run over the same logical blacklist.
func TestScreenSwapUnderLoadByteIdentical(t *testing.T) {
	addrs, snap := screenUniverse()
	cfg := ScreenConfig{Seed: 42, Batches: 50, BatchSize: 32, Concurrency: 4}

	quiet := screen.NewEngine(nil)
	quiet.Swap(snap)
	gQuiet := &ScreenGenerator{Screen: EngineScreener(quiet), Addresses: addrs, Config: cfg}
	resQuiet, err := gQuiet.Run()
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	churned := screen.NewEngine(reg)
	churned.Swap(snap)
	cfg.Registry = reg
	gChurn := &ScreenGenerator{
		Screen:    EngineScreener(churned),
		Addresses: addrs,
		Config:    cfg,
		Swapper: func() {
			// Rebuild the same logical snapshot from scratch and swap it
			// in — different object, identical contents.
			_, rebuilt := screenUniverse()
			churned.Swap(rebuilt)
		},
	}
	resChurn, err := gChurn.Run()
	if err != nil {
		t.Fatal(err)
	}

	if resChurn.SwapCount == 0 {
		t.Error("swapper never ran during the load")
	}
	if resChurn.Errors != 0 || resQuiet.Errors != 0 {
		t.Fatalf("errors: churned %d, quiet %d", resChurn.Errors, resQuiet.Errors)
	}
	if len(resChurn.Verdicts) != len(resQuiet.Verdicts) {
		t.Fatalf("verdict counts differ: %d vs %d", len(resChurn.Verdicts), len(resQuiet.Verdicts))
	}
	for i := range resChurn.Verdicts {
		if resChurn.Verdicts[i] != resQuiet.Verdicts[i] {
			t.Fatalf("verdict %d differs under churn", i)
		}
	}
	if resChurn.Listed == 0 {
		t.Error("no listed verdicts in a half-listed universe")
	}

	rs := reg.Snapshot()
	if s := rs.Find("daas_loadgen_screen_batches_total"); s == nil || s.Counter != uint64(cfg.Batches) {
		t.Errorf("batch counter = %+v, want %d", s, cfg.Batches)
	}
	if s := rs.Find("daas_screen_snapshot_swaps_total"); s == nil || s.Counter < uint64(resChurn.SwapCount) {
		t.Errorf("engine swap counter = %+v, want >= %d", s, resChurn.SwapCount)
	}
}

// TestScreenOpenLoop drives the paced dispatcher: every batch still
// completes and the result carries rate and quantile fields.
func TestScreenOpenLoop(t *testing.T) {
	addrs, snap := screenUniverse()
	eng := screen.NewEngine(nil)
	eng.Swap(snap)
	g := &ScreenGenerator{
		Screen:    EngineScreener(eng),
		Addresses: addrs,
		Config:    ScreenConfig{Seed: 7, Batches: 20, BatchSize: 8, Concurrency: 2, Rate: 5000},
	}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" {
		t.Errorf("mode = %q, want open", res.Mode)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.AchievedLookups <= 0 || res.BatchP99Seconds <= 0 {
		t.Errorf("missing rate/quantiles: %+v", res)
	}
}

// TestScreenRunValidation covers the config error paths.
func TestScreenRunValidation(t *testing.T) {
	addrs, _ := screenUniverse()
	if _, err := (&ScreenGenerator{Addresses: addrs, Config: ScreenConfig{Batches: 1, BatchSize: 1}}).Run(); err == nil {
		t.Error("nil backend accepted")
	}
	eng := screen.NewEngine(nil)
	if _, err := (&ScreenGenerator{Screen: EngineScreener(eng), Addresses: addrs}).Run(); err == nil {
		t.Error("zero batches accepted")
	}
}
