package loadgen

import (
	"testing"

	"repro/internal/worldgen"
)

// TestChaosSoak is the soak gate: a hardened server under mixed
// good/hostile traffic with a mid-run upstream outage must shed
// instead of stall, keep answering stale-stamped verdicts, recover
// fresh on heal, and still export byte-identically to the batch
// pipeline. Run with -race in check.sh.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak sleeps through a >1s outage; skipped in -short")
	}
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunChaos(w, ChaosConfig{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos soak: %+v", res)

	if res.Panics != 0 {
		t.Errorf("server panicked %d times under chaos", res.Panics)
	}
	if res.BadEnvelopes != 0 {
		t.Errorf("good clients saw %d malformed/unexpected responses", res.BadEnvelopes)
	}
	if res.Accepted == 0 {
		t.Error("no good traffic was accepted")
	}
	if res.Shed == 0 {
		t.Error("overload gate never shed despite MaxInFlight 2 and concurrent workers")
	}
	if res.MaxStale == 0 {
		t.Error("no degraded-mode verdict carried a snapshotAge stamp during the outage")
	}
	if res.OutageErrors == 0 {
		t.Error("injected outage never failed a radar step")
	}
	if res.FinalStale != 0 {
		t.Errorf("snapshot still stale %ds after heal", res.FinalStale)
	}
	if !res.ExportIdentical {
		t.Error("post-recovery radar export diverged from the batch pipeline")
	}
	if !res.CleanShutdown {
		t.Error("server did not shut down gracefully")
	}
	if res.AcceptedP99 > 5 {
		t.Errorf("accepted p99 %.3fs: server stalled instead of shedding", res.AcceptedP99)
	}
}

// BenchmarkChaos feeds the chaos-soak gate in check.sh: the custom
// metrics land in BENCH_chaos.json and benchdiff gates the committed
// invariants (panics/bad-envelopes hard zero, shed/stale/export
// booleans, accepted latency with lower-better tolerance).
func BenchmarkChaos(b *testing.B) {
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunChaos(w, ChaosConfig{Seed: 41})
		if err != nil {
			b.Fatal(err)
		}
		asBool := func(v bool) float64 {
			if v {
				return 1
			}
			return 0
		}
		b.ReportMetric(res.AcceptedP50*1e6, "accepted-p50-us")
		b.ReportMetric(res.AcceptedP99*1e6, "accepted-p99-us")
		b.ReportMetric(float64(res.Panics), "panics")
		b.ReportMetric(float64(res.BadEnvelopes), "bad-envelopes")
		b.ReportMetric(asBool(res.Shed > 0), "shed-seen")
		b.ReportMetric(asBool(res.MaxStale > 0), "stale-seen")
		b.ReportMetric(asBool(res.FinalStale == 0), "recovered-fresh")
		b.ReportMetric(asBool(res.ExportIdentical), "export-identical")
		b.ReportMetric(float64(res.Accepted), "accepted")
		b.ReportMetric(res.ShedRate, "shed-rate")
	}
}
