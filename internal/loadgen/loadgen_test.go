package loadgen

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/obs"
	"repro/internal/worldgen"
)

func testWorld(t testing.TB) *worldgen.World {
	t.Helper()
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestScheduleDeterministic: the op schedule is a pure function of the
// seed — same seed same schedule, different seed different schedule.
func TestScheduleDeterministic(t *testing.T) {
	w := testWorld(t)
	g1 := FromWorld(w, Config{Seed: 42, Ops: 500})
	g2 := FromWorld(w, Config{Seed: 42, Ops: 500})
	s1, err := g1.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := g2.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 500 {
		t.Fatalf("schedule length = %d, want 500", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	g3 := FromWorld(w, Config{Seed: 43, Ops: 500})
	s3, err := g3.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical schedules")
	}
	// Every enabled op appears with the default mix at this size.
	seen := map[Op]bool{}
	for _, tk := range s1 {
		seen[tk.op] = true
	}
	for _, op := range allOps {
		if !seen[op] {
			t.Errorf("op %s never scheduled in 500 ops", op)
		}
	}
}

func TestScheduleRejectsEmptyMix(t *testing.T) {
	w := testWorld(t)
	g := FromWorld(w, Config{Seed: 1, Ops: 10, Mix: map[Op]int{OpTransaction: 0}})
	if _, err := g.Schedule(); err == nil {
		t.Fatal("expected error for all-zero mix")
	}
}

// TestClosedLoopRun: a closed-loop run completes every op, records
// per-op stats whose counts sum to Ops, and reports zero errors
// against a healthy local source.
func TestClosedLoopRun(t *testing.T) {
	w := testWorld(t)
	reg := obs.NewRegistry()
	g := FromWorld(w, Config{Seed: 9, Ops: 400, Concurrency: 4, Registry: reg})
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" {
		t.Errorf("mode = %q, want closed", res.Mode)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	var total uint64
	for _, st := range res.PerOp {
		total += st.Count
		if st.P50Seconds > st.P99Seconds {
			t.Errorf("op %s: p50 %g > p99 %g", st.Op, st.P50Seconds, st.P99Seconds)
		}
	}
	if total != 400 {
		t.Errorf("per-op counts sum to %d, want 400", total)
	}
	if res.AchievedRate <= 0 {
		t.Errorf("achieved rate = %g, want > 0", res.AchievedRate)
	}
	// Re-running on the same registry must diff cleanly, not
	// double-count the first run.
	res2, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, st := range res2.PerOp {
		total += st.Count
	}
	if total != 400 {
		t.Errorf("second run per-op counts sum to %d, want 400 (snapshot diff leaked)", total)
	}
}

// TestOpenLoopRun: open-loop mode paces dispatch at the offered rate
// and still completes every op.
func TestOpenLoopRun(t *testing.T) {
	w := testWorld(t)
	g := FromWorld(w, Config{Seed: 5, Ops: 100, Concurrency: 4, Rate: 5000})
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" {
		t.Errorf("mode = %q, want open", res.Mode)
	}
	if res.OfferedRate != 5000 {
		t.Errorf("offered rate = %g, want 5000", res.OfferedRate)
	}
	var total uint64
	for _, st := range res.PerOp {
		total += st.Count
	}
	if total != 100 {
		t.Errorf("per-op counts sum to %d, want 100", total)
	}
}

// TestErrorsCounted: a source that fails some calls shows up in both
// the result total and the per-op error counters.
type failingSource struct {
	core.ChainSource
}

func (failingSource) IsContract(_ ethtypes.Address) (bool, error) {
	return false, errFail
}

var errFail = errTest("injected failure")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestErrorsCounted(t *testing.T) {
	w := testWorld(t)
	g := FromWorld(w, Config{
		Seed: 3, Ops: 50,
		Mix: map[Op]int{OpIsContract: 1},
	})
	g.Source = failingSource{ChainSource: core.LocalSource{Chain: w.Chain}}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 50 {
		t.Fatalf("errors = %d, want 50", res.Errors)
	}
	if len(res.PerOp) != 1 || res.PerOp[0].Errors != 50 {
		t.Fatalf("per-op errors = %+v, want IsContract=50", res.PerOp)
	}
}

// TestPipelineByteIdentical: a loadgen-driven pipeline build through
// the full decorator stack exports byte-identical JSON to a bare
// unloaded build — the harness must never perturb the dataset.
func TestPipelineByteIdentical(t *testing.T) {
	w := testWorld(t)
	res, err := RunPipeline(w, PipelineConfig{Builds: 2, Concurrency: 4, CacheSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("repeated loadgen builds diverged")
	}
	if res.P50Seconds <= 0 || res.P99Seconds < res.P50Seconds {
		t.Errorf("build quantiles implausible: p50=%g p99=%g", res.P50Seconds, res.P99Seconds)
	}

	p := &core.Pipeline{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
	ds, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	var baseline bytes.Buffer
	if err := ds.WriteJSON(&baseline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Export, baseline.Bytes()) {
		t.Fatal("loadgen pipeline export differs from unloaded build")
	}
	if smp := res.Metrics.Find("daas_chain_requests_total", "Transaction"); smp == nil || smp.Counter == 0 {
		t.Error("instrumented source recorded no Transaction requests")
	}
}
