package loadgen

import (
	"net/http/httptest"
	"testing"

	"repro/internal/ethtypes"
	"repro/internal/rpc"
	"repro/internal/screen"
	"repro/internal/worldgen"
)

// reportQuantiles attaches an op-latency distribution to the benchmark
// line so benchdiff can gate on tail latency, not just ns/op.
func reportQuantiles(b *testing.B, res *Result) {
	b.Helper()
	var p50, p95, p99 float64
	var n uint64
	for _, st := range res.PerOp {
		// Weighted blend across ops keeps the metric scalar.
		w := float64(st.Count)
		p50 += st.P50Seconds * w
		p95 += st.P95Seconds * w
		p99 += st.P99Seconds * w
		n += st.Count
	}
	if n > 0 {
		f := 1e6 / float64(n)
		b.ReportMetric(p50*f, "p50-us")
		b.ReportMetric(p95*f, "p95-us")
		b.ReportMetric(p99*f, "p99-us")
	}
	b.ReportMetric(res.AchievedRate, "achieved-ops-s")
}

// BenchmarkLoadgenSource: closed-loop mixed ops against the bare
// in-process simulator — the floor every decorator stack is measured
// against.
func BenchmarkLoadgenSource(b *testing.B) {
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	var res *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromWorld(w, Config{Seed: 11, Ops: 2000, Concurrency: 4})
		res, err = g.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportQuantiles(b, res)
}

// BenchmarkLoadgenOpenLoop: open-loop arrivals at a fixed offered
// rate; the interesting numbers are tail latency and dispatch lag
// under a paced schedule.
func BenchmarkLoadgenOpenLoop(b *testing.B) {
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	var res *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromWorld(w, Config{Seed: 11, Ops: 1000, Concurrency: 4, Rate: 50000})
		res, err = g.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportQuantiles(b, res)
	b.ReportMetric(res.DispatchLagP99Seconds*1e6, "lag-p99-us")
}

// BenchmarkLoadgenPipeline: full §5.1 builds under the production
// decorator stack; gates the end-to-end build latency quantiles and
// the dataset shape (profit-txs is deterministic — any drift is a
// correctness regression, not noise).
func BenchmarkLoadgenPipeline(b *testing.B) {
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	var res *PipelineResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = RunPipeline(w, PipelineConfig{Builds: 1, Concurrency: 4, CacheSize: 4096})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.P50Seconds*1e3, "build-p50-ms")
	b.ReportMetric(res.P99Seconds*1e3, "build-p99-ms")
	b.ReportMetric(float64(res.ProfitTxs), "profit-txs")
}

// reportScreenQuantiles attaches the screening run's batch-latency
// distribution and throughput to the benchmark line. The listed count
// is a shape metric: the schedule and universe are seeded, so any
// drift means the screening verdicts themselves changed.
func reportScreenQuantiles(b *testing.B, res *ScreenRunResult) {
	b.Helper()
	b.ReportMetric(res.BatchP50Seconds*1e6, "p50-us")
	b.ReportMetric(res.BatchP95Seconds*1e6, "p95-us")
	b.ReportMetric(res.BatchP99Seconds*1e6, "p99-us")
	b.ReportMetric(res.AchievedLookups, "achieved-ops-s")
	b.ReportMetric(float64(res.Listed), "listed")
}

// BenchmarkScreenBatch: closed-loop screening batches against the
// in-process engine while a background swapper continuously rebuilds
// and installs fresh snapshots — the p99-gated swap-under-load
// scenario behind BENCH_screen.json.
func BenchmarkScreenBatch(b *testing.B) {
	addrs, snap := screenUniverse()
	eng := screen.NewEngine(nil)
	eng.Swap(snap)
	var res *ScreenRunResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &ScreenGenerator{
			Screen:    EngineScreener(eng),
			Addresses: addrs,
			Config:    ScreenConfig{Seed: 11, Batches: 500, BatchSize: 64, Concurrency: 4},
			Swapper: func() {
				_, rebuilt := screenUniverse()
				eng.Swap(rebuilt)
			},
		}
		res, err = g.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Errors != 0 {
			b.Fatalf("%d batch errors", res.Errors)
		}
	}
	b.StopTimer()
	reportScreenQuantiles(b, res)
}

// BenchmarkScreenBatchRPC: the same schedule over the wire —
// daas_screenBatch via httptest server + rpc client, the deployment
// shape of daasctl serve-screen.
func BenchmarkScreenBatchRPC(b *testing.B) {
	addrs, snap := screenUniverse()
	eng := screen.NewEngine(nil)
	eng.Swap(snap)
	srv := httptest.NewServer(&rpc.Server{Screen: eng})
	defer srv.Close()
	client := rpc.NewClient(srv.URL)
	remote := func(batch []ethtypes.Address) ([]bool, error) {
		results, err := client.ScreenBatch(batch)
		if err != nil {
			return nil, err
		}
		out := make([]bool, len(results))
		for i, r := range results {
			out[i] = r.Listed
		}
		return out, nil
	}
	var res *ScreenRunResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &ScreenGenerator{
			Screen:    remote,
			Addresses: addrs,
			Config:    ScreenConfig{Seed: 11, Batches: 100, BatchSize: 64, Concurrency: 8},
		}
		res, err = g.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportScreenQuantiles(b, res)
}

// BenchmarkRadarStream: the live-detection streaming workload behind
// BENCH_radar.json — replay the generated chain through the radar
// daemon while screening batches run against the engine it keeps
// hot-swapping. Gates step latency, screening tail latency under
// radar-driven swap churn, and the deterministic dataset shape
// (profit-txs, contracts, families, swaps).
func BenchmarkRadarStream(b *testing.B) {
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	var res *RadarRunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = RunRadar(w, RadarConfig{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.StepP50Seconds*1e3, "step-p50-ms")
	b.ReportMetric(res.StepP99Seconds*1e3, "step-p99-ms")
	b.ReportMetric(res.ScreenP50Seconds*1e6, "p50-us")
	b.ReportMetric(res.ScreenP95Seconds*1e6, "p95-us")
	b.ReportMetric(res.ScreenP99Seconds*1e6, "p99-us")
	b.ReportMetric(res.BlocksPerSecond, "blocks-s")
	b.ReportMetric(float64(res.ProfitTxs), "profit-txs")
	b.ReportMetric(float64(res.Contracts), "contracts")
	b.ReportMetric(float64(res.Families), "families")
	b.ReportMetric(float64(res.Swaps), "swaps")
}

// BenchmarkLoadgenRPC: the same mixed-op workload over a real HTTP
// JSON-RPC hop (httptest server + rpc client) — the wire-protocol
// suite behind BENCH_rpc.json.
func BenchmarkLoadgenRPC(b *testing.B) {
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(rpc.NewServer(w.Chain, w.Labels))
	defer srv.Close()
	client := rpc.NewClient(srv.URL)
	var res *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromWorld(w, Config{Seed: 11, Ops: 500, Concurrency: 8})
		g.Source = client
		res, err = g.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportQuantiles(b, res)
}
