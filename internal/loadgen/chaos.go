package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/radar"
	"repro/internal/retry"
	"repro/internal/rpc"
	"repro/internal/screen"
	"repro/internal/worldgen"
)

// ChaosConfig tunes one chaos soak: the hardened RPC server fronting a
// live radar + screening engine is driven with mixed good and hostile
// traffic while the radar's upstream suffers a full outage mid-run.
type ChaosConfig struct {
	// Seed drives the good-traffic address schedule.
	Seed uint64
	// Workers is the number of closed-loop good clients (default 12).
	Workers int
	// Hostiles is the number of concurrent hostile clients per flavor
	// (slowloris, disconnect, malformed, hung keep-alive; default 2).
	Hostiles int
	// ScreenBatchSize is addresses per daas_screenBatch (default 32).
	ScreenBatchSize int
	// StepEvery is blocks per radar step while healthy (default 4).
	StepEvery int
	// OutageBeats and OutagePause shape the injected upstream outage:
	// the source stack stays down for Beats×Pause (default 10×150ms,
	// comfortably past the 1s staleness floor so degraded-mode verdicts
	// are observable).
	OutageBeats int
	OutagePause time.Duration
	// Limits overrides the server's limits; the zero value applies
	// tight chaos defaults (MaxInFlight 2, RequestTimeout 2s) chosen so
	// overload shedding is actually exercised.
	Limits *rpc.Limits
	// Registry receives the chaos instruments; nil uses a private one.
	Registry *obs.Registry
}

// ChaosResult is one soak's outcome. The boolean-as-number fields
// (ShedSeen, StaleSeen, ExportIdentical) plus Panics and BadEnvelopes
// are the gated invariants; the rest is diagnostics.
type ChaosResult struct {
	Accepted      uint64  `json:"accepted"`
	Shed          uint64  `json:"shed"`
	Timeouts      uint64  `json:"timeouts"`
	ConnErrors    uint64  `json:"conn_errors"`
	BadEnvelopes  uint64  `json:"bad_envelopes"`
	ShedRate      float64 `json:"shed_rate"`
	AcceptedP50   float64 `json:"accepted_p50_seconds"`
	AcceptedP99   float64 `json:"accepted_p99_seconds"`
	Panics        uint64  `json:"panics"`
	WriteErrors   uint64  `json:"write_errors"`
	HostileRuns   uint64  `json:"hostile_runs"`
	HostileHeld   uint64  `json:"hostile_held_open"`
	MaxStale      uint64  `json:"max_stale_seconds"`
	FinalStale    uint64  `json:"final_stale_seconds"`
	OutageErrors  uint64  `json:"outage_step_errors"`
	Blocks        int     `json:"blocks"`
	Cursor        uint64  `json:"cursor"`
	CleanShutdown bool    `json:"clean_shutdown"`

	ExportIdentical bool `json:"export_identical"`
}

// outageSwitch flips the radar's whole source stack down and back up.
type outageSwitch struct{ down atomic.Bool }

var errOutage = fmt.Errorf("loadgen: injected upstream outage: %w", faults.ErrInjected)

// outageChain gates a ChainSource behind the switch; down reads fail
// with a transient error, exactly like a gateway melting down.
type outageChain struct {
	sw  *outageSwitch
	src core.ChainSource
}

func (o outageChain) TransactionsOf(a ethtypes.Address) ([]ethtypes.Hash, error) {
	if o.sw.down.Load() {
		return nil, retry.Transient(errOutage)
	}
	return o.src.TransactionsOf(a)
}

func (o outageChain) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	if o.sw.down.Load() {
		return nil, retry.Transient(errOutage)
	}
	return o.src.Transaction(h)
}

func (o outageChain) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	if o.sw.down.Load() {
		return nil, retry.Transient(errOutage)
	}
	return o.src.Receipt(h)
}

func (o outageChain) IsContract(a ethtypes.Address) (bool, error) {
	if o.sw.down.Load() {
		return false, retry.Transient(errOutage)
	}
	return o.src.IsContract(a)
}

// outageBlocks gates a BlockSource behind the same switch.
type outageBlocks struct {
	sw  *outageSwitch
	src radar.BlockSource
}

func (o outageBlocks) Head() (uint64, error) {
	if o.sw.down.Load() {
		return 0, retry.Transient(errOutage)
	}
	return o.src.Head()
}

func (o outageBlocks) BlockRef(n uint64) (radar.BlockRef, error) {
	if o.sw.down.Load() {
		return radar.BlockRef{}, retry.Transient(errOutage)
	}
	return o.src.BlockRef(n)
}

// chaosEnvelope decodes just enough of a JSON-RPC response for the
// good workers' verdict accounting.
type chaosEnvelope struct {
	JSONRPC string `json:"jsonrpc"`
	Result  []struct {
		Listed      bool   `json:"listed"`
		SnapshotAge uint64 `json:"snapshotAge"`
	} `json:"result"`
	Error *struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// RunChaos drives the hardened serving layer through a full bad day:
// honest screening traffic and four flavors of hostile clients hammer
// the server while the radar's upstream chain goes down mid-run and
// heals. It returns what happened; asserting on it is the caller's
// job (TestChaosSoak gates the invariants, BenchmarkChaos feeds
// BENCH_chaos.json).
func RunChaos(w *worldgen.World, cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 12
	}
	if cfg.Hostiles <= 0 {
		cfg.Hostiles = 2
	}
	if cfg.ScreenBatchSize <= 0 {
		cfg.ScreenBatchSize = 32
	}
	if cfg.StepEvery <= 0 {
		cfg.StepEvery = 4
	}
	if cfg.OutageBeats <= 0 {
		cfg.OutageBeats = 10
	}
	if cfg.OutagePause <= 0 {
		cfg.OutagePause = 150 * time.Millisecond
	}
	lim := rpc.Limits{MaxInFlight: 2, RequestTimeout: 2 * time.Second, RetryAfter: time.Second}
	if cfg.Limits != nil {
		lim = *cfg.Limits
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	acceptDur := reg.Histogram("daas_loadgen_chaos_accepted_duration_seconds", "latency of accepted screening requests under chaos", obs.DefDurationBuckets)
	base := reg.Snapshot()

	// Radar over an outage-gated source stack following the world.
	sw := &outageSwitch{}
	f := chain.NewFollower(w.Chain)
	dst := f.Chain()
	eng := screen.NewEngine(reg)
	r, err := radar.New(radar.Config{
		Source: outageChain{sw: sw, src: core.LocalSource{Chain: dst}},
		Blocks: outageBlocks{sw: sw, src: radar.ChainBlocks{Chain: dst}},
		Labels: w.Labels,
		Engine: eng,
	})
	if err != nil {
		return nil, err
	}

	// The hardened front door on a real socket: hostile clients need
	// actual TCP connections to abuse.
	server := &rpc.Server{Screen: eng, Radar: r, Metrics: reg, Limits: lim}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.HTTPServer(ln.Addr().String())
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(ln)
	}()
	url := "http://" + ln.Addr().String()

	// Good traffic: closed-loop daas_screenBatch workers speaking raw
	// HTTP so shed (503 + CodeOverloaded) and degraded (snapshotAge)
	// responses are visible at the wire level.
	phish := w.Labels.AllPhishing()
	universe := append([]ethtypes.Address{}, phish...)
	for i := 0; i < 64+len(phish); i++ {
		var a ethtypes.Address
		a[0] = 0xEE
		a[1] = byte(i >> 8)
		a[2] = byte(i)
		universe = append(universe, a)
	}
	var (
		accepted, shed, timeouts atomic.Uint64
		connErrors, badEnvelopes atomic.Uint64
		maxStale                 atomic.Uint64
		hostileRuns, hostileHeld atomic.Uint64
	)
	noteStale := func(v uint64) {
		for {
			cur := maxStale.Load()
			if v <= cur || maxStale.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	httpc := &http.Client{Timeout: 10 * time.Second}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rnd := &rng{state: cfg.Seed + uint64(wkr)*0x9E3779B9}
			addrs := make([]string, cfg.ScreenBatchSize)
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := range addrs {
					addrs[i] = universe[rnd.intn(len(universe))].Hex()
				}
				body, err := json.Marshal(struct {
					JSONRPC string   `json:"jsonrpc"`
					ID      int64    `json:"id"`
					Method  string   `json:"method"`
					Params  []string `json:"params"`
				}{"2.0", int64(wkr), "daas_screenBatch", addrs})
				if err != nil {
					badEnvelopes.Add(1)
					continue
				}
				start := obs.Now()
				resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					connErrors.Add(1)
					continue
				}
				var env chaosEnvelope
				decodeErr := json.NewDecoder(resp.Body).Decode(&env)
				resp.Body.Close()
				switch {
				case decodeErr != nil || env.JSONRPC != "2.0":
					badEnvelopes.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					if env.Error != nil && env.Error.Code == rpc.CodeOverloaded {
						shed.Add(1)
					} else {
						badEnvelopes.Add(1)
					}
				case resp.StatusCode != http.StatusOK:
					badEnvelopes.Add(1)
				case env.Error != nil:
					if env.Error.Code == rpc.CodeTimeout {
						timeouts.Add(1)
					} else {
						badEnvelopes.Add(1)
					}
				case len(env.Result) != len(addrs):
					badEnvelopes.Add(1)
				default:
					accepted.Add(1)
					acceptDur.ObserveDuration(obs.Since(start))
					for _, v := range env.Result {
						if v.SnapshotAge > 0 {
							noteStale(v.SnapshotAge)
						}
					}
				}
			}
		}(wkr)
	}

	// Hostile traffic: every flavor of client misbehavior, in parallel
	// with the honest load for the entire run.
	hostile := faults.Hostile{Addr: ln.Addr().String()}
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	var hwg sync.WaitGroup
	spawnHostile := func(run func() error) {
		for i := 0; i < cfg.Hostiles; i++ {
			hwg.Add(1)
			go func() {
				defer hwg.Done()
				for {
					select {
					case <-hctx.Done():
						return
					default:
					}
					hostileRuns.Add(1)
					if err := run(); err != nil && err != faults.ErrHeldOpen {
						// Dial failures etc. under load are expected noise.
						_ = err
					} else if err == faults.ErrHeldOpen {
						hostileHeld.Add(1)
					}
				}
			}()
		}
	}
	corpus := faults.MalformedCorpus()
	var corpusIdx atomic.Uint64
	spawnHostile(func() error {
		slctx, cancel := context.WithTimeout(hctx, 3*time.Second)
		defer cancel()
		return hostile.Slowloris(slctx, 20*time.Millisecond)
	})
	spawnHostile(hostile.MidRequestDisconnect)
	spawnHostile(func() error {
		return hostile.PostMalformed(corpus[corpusIdx.Add(1)%uint64(len(corpus))])
	})
	spawnHostile(func() error {
		kctx, cancel := context.WithTimeout(hctx, 500*time.Millisecond)
		defer cancel()
		return hostile.HungKeepAlive(kctx)
	})

	// Phase 1 — healthy stream: feed the first half of the chain.
	res := &ChaosResult{}
	total := int(w.Chain.BlockCount())
	step := func() {
		if _, err := r.Step(); err != nil {
			res.OutageErrors++
		}
	}
	advance := func(n int) int {
		moved := 0
		for moved < n {
			if _, ok := f.Advance(); !ok {
				break
			}
			moved++
			if moved%cfg.StepEvery == 0 {
				step()
			}
		}
		return moved
	}
	res.Blocks += advance(total / 2)
	step()

	// Phase 2 — outage: the source stack goes dark while new blocks
	// keep arriving. Screening must keep answering from the last good
	// snapshot, with the staleness stamp growing past the 1s floor.
	sw.down.Store(true)
	for beat := 0; beat < cfg.OutageBeats; beat++ {
		if _, ok := f.Advance(); ok {
			res.Blocks++
		}
		step() // fails: counted, never fatal
		time.Sleep(cfg.OutagePause)
	}

	// Before healing, prove degraded mode at the wire: the snapshot has
	// gone un-refreshed for the whole outage (past the 1s staleness
	// floor), so keep probing until one request squeezes through the
	// admission gate and carries the snapshotAge stamp. The racing
	// workers usually observe it first; the probe makes it guaranteed
	// rather than probabilistic.
	probeBody, err := json.Marshal(struct {
		JSONRPC string   `json:"jsonrpc"`
		ID      int64    `json:"id"`
		Method  string   `json:"method"`
		Params  []string `json:"params"`
	}{"2.0", -1, "daas_screenBatch", []string{universe[0].Hex()}})
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < 4000 && maxStale.Load() == 0; attempt++ {
		resp, err := httpc.Post(url, "application/json", bytes.NewReader(probeBody))
		if err != nil {
			continue
		}
		var env chaosEnvelope
		decodeErr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if decodeErr == nil && resp.StatusCode == http.StatusOK && env.Error == nil {
			for _, v := range env.Result {
				if v.SnapshotAge > 0 {
					noteStale(v.SnapshotAge)
				}
			}
		}
		time.Sleep(time.Millisecond)
	}

	// Phase 3 — heal: the radar catches up and re-freshens the
	// snapshot; remaining blocks stream through normally.
	sw.down.Store(false)
	res.Blocks += advance(total)
	step()
	// Sampled here, not after shutdown: staleness keeps growing with
	// wall time once stepping stops, and the winddown below (drain +
	// export replay) takes seconds under -race.
	res.FinalStale = uint64(eng.Age() / time.Second)

	// Wind down the clients, then drain the server gracefully.
	close(done)
	wg.Wait()
	hcancel()
	hwg.Wait()
	shctx, shcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shcancel()
	res.CleanShutdown = srv.Shutdown(shctx) == nil
	<-serveDone

	// The recovered radar must still export byte-identically to the
	// one-shot batch pipeline over the same finished chain.
	identical, err := exportsMatch(w, r)
	if err != nil {
		return nil, err
	}
	res.ExportIdentical = identical

	st := r.Status()
	res.Cursor = st.Cursor
	res.Accepted = accepted.Load()
	res.Shed = shed.Load()
	res.Timeouts = timeouts.Load()
	res.ConnErrors = connErrors.Load()
	res.BadEnvelopes = badEnvelopes.Load()
	res.MaxStale = maxStale.Load()
	res.HostileRuns = hostileRuns.Load()
	res.HostileHeld = hostileHeld.Load()
	if n := res.Accepted + res.Shed; n > 0 {
		res.ShedRate = float64(res.Shed) / float64(n)
	}
	snap := reg.Snapshot().Diff(base)
	if s := snap.Find("daas_loadgen_chaos_accepted_duration_seconds"); s != nil && s.Hist != nil && s.Hist.Count > 0 {
		res.AcceptedP50 = s.Hist.Quantile(0.50)
		res.AcceptedP99 = s.Hist.Quantile(0.99)
	}
	if s := snap.Find("daas_rpc_server_panics_total"); s != nil {
		res.Panics = s.Counter
	}
	if s := snap.Find("daas_rpc_server_write_errors_total"); s != nil {
		res.WriteErrors = s.Counter
	}
	return res, nil
}

// exportsMatch replays the batch pipeline + clusterer over the world's
// full chain and compares both exports byte-for-byte against the
// radar's incremental state — the replay-identity invariant must
// survive the outage and recovery.
func exportsMatch(w *worldgen.World, r *radar.Radar) (bool, error) {
	p := &core.Pipeline{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
	ds, err := p.Build()
	if err != nil {
		return false, err
	}
	cl := &cluster.Clusterer{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
	fams, err := cl.Cluster(ds)
	if err != nil {
		return false, err
	}
	var want bytes.Buffer
	if err := ds.WriteJSON(&want); err != nil {
		return false, err
	}
	wantFams, err := json.MarshalIndent(fams, "", " ")
	if err != nil {
		return false, err
	}
	var got bytes.Buffer
	if err := r.ExportJSON(&got); err != nil {
		return false, err
	}
	gotFams, err := json.MarshalIndent(r.Families(), "", " ")
	if err != nil {
		return false, err
	}
	return bytes.Equal(got.Bytes(), want.Bytes()) && bytes.Equal(gotFams, wantFams), nil
}
