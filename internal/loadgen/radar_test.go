package loadgen

import (
	"testing"

	"repro/internal/worldgen"
)

// TestRadarStreamDeterministic: the streaming run's dataset shape is a
// pure function of the world and the arrival batching — two runs (with
// the screening sidecar racing the swaps both times) land on identical
// contracts, profit-txs, families, and swap counts.
func TestRadarStreamDeterministic(t *testing.T) {
	w, err := worldgen.Generate(worldgen.TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	shape := func(r *RadarRunResult) [7]uint64 {
		return [7]uint64{
			uint64(r.Blocks), uint64(r.Contracts), uint64(r.Operators),
			uint64(r.Affiliates), uint64(r.ProfitTxs), uint64(r.Families), r.Swaps,
		}
	}
	a, err := RunRadar(w, RadarConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRadar(w, RadarConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if shape(a) != shape(b) {
		t.Errorf("stream shape diverged between runs:\n  %v\n  %v", shape(a), shape(b))
	}
	if a.Contracts == 0 || a.ProfitTxs == 0 || a.Families == 0 {
		t.Errorf("degenerate stream shape: %+v", a)
	}
	if a.Swaps == 0 {
		t.Error("stream produced no snapshot swaps")
	}
	if a.ScreenBatches == 0 {
		t.Error("screening sidecar issued no batches")
	}
}
