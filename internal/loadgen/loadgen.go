// Package loadgen is the deterministic load-generator/stresser harness
// for the measurement pipeline (ROADMAP item 2): it drives a
// ChainSource stack — the in-process simulator, the full decorator
// sandwich, or a remote JSON-RPC endpoint — with a seeded operation
// schedule at a configured rate or concurrency, and it drives complete
// §5.1 dataset builds (see RunPipeline), recording per-op latency
// histograms, error counts, and achieved-versus-offered throughput
// through internal/obs.
//
// Determinism contract: the operation schedule (which op hits which
// target, in which dispatch order) is a pure function of Config.Seed —
// no process PRNG, no wall-clock reads outside obs.Now/obs.Since
// instrumentation (reprolint rule 6 enforces this). Latencies vary
// with the hardware; everything the schedule controls does not, and a
// loadgen-driven pipeline build exports byte-identical datasets.
package loadgen

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/obs"
	"repro/internal/worldgen"
)

// Op names one chain-source operation the generator can issue.
type Op string

// The generatable operations, mirroring the pipeline's fetch mix.
const (
	OpTransaction    Op = "Transaction"
	OpReceipt        Op = "Receipt"
	OpTransactionsOf Op = "TransactionsOf"
	OpIsContract     Op = "IsContract"
)

// allOps fixes the op iteration order; map iteration over Config.Mix
// must never leak into the schedule.
var allOps = []Op{OpTransaction, OpReceipt, OpTransactionsOf, OpIsContract}

// DefaultMix weights ops the way a frontier scan does: record fetches
// dominate, account-level calls are the minority.
var DefaultMix = map[Op]int{
	OpTransaction:    4,
	OpReceipt:        4,
	OpTransactionsOf: 1,
	OpIsContract:     1,
}

// Config tunes one load-generation run.
type Config struct {
	// Seed fully determines the operation schedule.
	Seed uint64
	// Ops is the total number of operations to issue.
	Ops int
	// Concurrency is the worker count: the fixed in-flight ceiling in
	// closed-loop mode, the consumer pool in open-loop mode. Default 1.
	Concurrency int
	// Rate, when positive, switches to open-loop mode: operations are
	// dispatched on a fixed schedule of Rate ops/second regardless of
	// completion — the arrival process real traffic has — and the
	// dispatch lag histogram records how far the generator fell behind
	// the offered schedule. Zero means closed loop: each worker issues
	// its next op as soon as the previous one returns.
	Rate float64
	// Mix weights the op types (DefaultMix when nil). Ops with zero or
	// negative weight are never issued.
	Mix map[Op]int
	// Registry receives the loadgen instruments
	// (daas_loadgen_ops_total, daas_loadgen_op_errors_total,
	// daas_loadgen_op_duration_seconds{op}, and in open-loop mode
	// daas_loadgen_dispatch_lag_seconds). When nil a private registry
	// is used; either way Run reports through the Result.
	Registry *obs.Registry
}

// Generator drives a chain source with a deterministic op schedule.
type Generator struct {
	// Source is the stack under test.
	Source core.ChainSource
	// Hashes and Accounts are the target universes for record and
	// account operations respectively. Order matters: target picks are
	// indexes into these slices.
	Hashes   []ethtypes.Hash
	Accounts []ethtypes.Address
	Config   Config
}

// FromWorld builds a generator over a generated world's local chain:
// the account universe is the chain's sorted history index and the
// hash universe is every transaction in first-seen order, so the same
// seed always addresses the same targets.
func FromWorld(w *worldgen.World, cfg Config) *Generator {
	accounts := w.Chain.AccountsWithHistory()
	seen := make(map[ethtypes.Hash]bool)
	var hashes []ethtypes.Hash
	for _, a := range accounts {
		for _, h := range w.Chain.TransactionsOf(a) {
			if !seen[h] {
				seen[h] = true
				hashes = append(hashes, h)
			}
		}
	}
	return &Generator{
		Source:   core.LocalSource{Chain: w.Chain},
		Hashes:   hashes,
		Accounts: accounts,
		Config:   cfg,
	}
}

// task is one scheduled operation: the op and the index into its
// target universe.
type task struct {
	op     Op
	target int
}

// rng is splitmix64 — tiny, seedable, and outside math/rand, which
// reprolint bans here so process-PRNG state can never reach the
// schedule.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Schedule materializes the run's operation sequence from the seed: a
// pure function of (Seed, Ops, Mix, universe sizes). Exposed so tests
// and reports can assert determinism without executing anything.
func (g *Generator) Schedule() ([]task, error) {
	mix := g.Config.Mix
	if mix == nil {
		mix = DefaultMix
	}
	var total int
	for _, op := range allOps {
		if w := mix[op]; w > 0 {
			total += w
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("loadgen: op mix has no positive weights")
	}
	for _, op := range allOps {
		if mix[op] > 0 && len(g.universe(op)) == 0 {
			return nil, fmt.Errorf("loadgen: op %s enabled but its target universe is empty", op)
		}
	}
	r := &rng{state: g.Config.Seed}
	tasks := make([]task, g.Config.Ops)
	for i := range tasks {
		draw := r.intn(total)
		var op Op
		for _, candidate := range allOps {
			w := mix[candidate]
			if w <= 0 {
				continue
			}
			if draw < w {
				op = candidate
				break
			}
			draw -= w
		}
		tasks[i] = task{op: op, target: r.intn(len(g.universe(op)))}
	}
	return tasks, nil
}

// universe returns the target slice length-indexed by an op.
func (g *Generator) universe(op Op) []ethtypes.Hash {
	switch op {
	case OpTransaction, OpReceipt:
		return g.Hashes
	default:
		// Account ops: reuse the hash slice type for sizing only.
		return make([]ethtypes.Hash, len(g.Accounts))
	}
}

// execute issues one operation against the source.
func (g *Generator) execute(t task) error {
	var err error
	switch t.op {
	case OpTransaction:
		_, err = g.Source.Transaction(g.Hashes[t.target])
	case OpReceipt:
		_, err = g.Source.Receipt(g.Hashes[t.target])
	case OpTransactionsOf:
		_, err = g.Source.TransactionsOf(g.Accounts[t.target])
	case OpIsContract:
		_, err = g.Source.IsContract(g.Accounts[t.target])
	default:
		err = fmt.Errorf("loadgen: unknown op %q", t.op)
	}
	return err
}

// OpStats summarizes one op's latency distribution over a run.
type OpStats struct {
	Op          string  `json:"op"`
	Count       uint64  `json:"count"`
	Errors      uint64  `json:"errors,omitempty"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	SumSeconds  float64 `json:"sum_seconds"`
}

// Result is one run's outcome: counts, throughput, and per-op latency
// quantiles, all derived from a registry snapshot diff so a shared
// registry never double-counts across runs.
type Result struct {
	Mode           string    `json:"mode"` // "open" or "closed"
	Seed           uint64    `json:"seed"`
	Ops            int       `json:"ops"`
	Errors         int       `json:"errors"`
	Concurrency    int       `json:"concurrency"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	OfferedRate    float64   `json:"offered_rate,omitempty"`
	AchievedRate   float64   `json:"achieved_rate"`
	PerOp          []OpStats `json:"per_op"`
	// DispatchLagP99Seconds reports, in open-loop mode, the p99 of how
	// late operations left the dispatcher relative to their scheduled
	// instant — the overload signal an achieved-rate number alone
	// hides.
	DispatchLagP99Seconds float64 `json:"dispatch_lag_p99_seconds,omitempty"`
}

// Run executes the configured schedule and reports the outcome.
func (g *Generator) Run() (*Result, error) {
	if g.Source == nil {
		return nil, fmt.Errorf("loadgen: no source")
	}
	if g.Config.Ops <= 0 {
		return nil, fmt.Errorf("loadgen: Ops must be positive")
	}
	tasks, err := g.Schedule()
	if err != nil {
		return nil, err
	}
	workers := g.Config.Concurrency
	if workers <= 0 {
		workers = 1
	}
	reg := g.Config.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	opsTotal := reg.CounterVec("daas_loadgen_ops_total", "load-generator operations issued by op", "op")
	opErrors := reg.CounterVec("daas_loadgen_op_errors_total", "failed load-generator operations by op", "op")
	latency := reg.HistogramVec("daas_loadgen_op_duration_seconds", "load-generator operation latency by op", obs.DefDurationBuckets, "op")
	lag := reg.Histogram("daas_loadgen_dispatch_lag_seconds", "open-loop dispatch lateness versus the offered schedule", obs.DefDurationBuckets)
	base := reg.Snapshot()

	var errCount atomic.Int64
	runOne := func(t task) {
		start := obs.Now()
		err := g.execute(t)
		latency.With(string(t.op)).ObserveDuration(obs.Since(start))
		opsTotal.With(string(t.op)).Inc()
		if err != nil {
			opErrors.With(string(t.op)).Inc()
			errCount.Add(1)
		}
	}

	start := obs.Now()
	mode := "closed"
	if g.Config.Rate > 0 {
		mode = "open"
		// Open loop: the dispatcher releases tasks on the offered
		// schedule; a buffered channel holds the backlog so a slow
		// source delays completions, never arrivals.
		queue := make(chan task, len(tasks))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range queue {
					runOne(t)
				}
			}()
		}
		interval := float64(time.Second) / g.Config.Rate
		for i, t := range tasks {
			due := start.Add(time.Duration(float64(i) * interval))
			now := obs.Now()
			if wait := due.Sub(now); wait > 0 {
				time.Sleep(wait)
			} else {
				lag.ObserveDuration(-due.Sub(now))
			}
			queue <- t
		}
		close(queue)
		wg.Wait()
	} else {
		// Closed loop: each worker strides the schedule, issuing its
		// next op as soon as the previous returns — fixed concurrency,
		// offered rate implied by service time.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(tasks); i += workers {
					runOne(tasks[i])
				}
			}(w)
		}
		wg.Wait()
	}
	elapsed := obs.Since(start)

	snap := reg.Snapshot().Diff(base)
	res := &Result{
		Mode:           mode,
		Seed:           g.Config.Seed,
		Ops:            len(tasks),
		Errors:         int(errCount.Load()),
		Concurrency:    workers,
		ElapsedSeconds: elapsed.Seconds(),
		OfferedRate:    g.Config.Rate,
	}
	if res.ElapsedSeconds > 0 {
		res.AchievedRate = float64(res.Ops) / res.ElapsedSeconds
	}
	for _, op := range allOps {
		smp := snap.Find("daas_loadgen_op_duration_seconds", string(op))
		if smp == nil || smp.Hist == nil || smp.Hist.Count == 0 {
			continue
		}
		st := OpStats{
			Op:          string(op),
			Count:       smp.Hist.Count,
			MeanSeconds: smp.Hist.Mean(),
			P50Seconds:  smp.Hist.Quantile(0.50),
			P95Seconds:  smp.Hist.Quantile(0.95),
			P99Seconds:  smp.Hist.Quantile(0.99),
			SumSeconds:  smp.Hist.Sum,
		}
		if e := snap.Find("daas_loadgen_op_errors_total", string(op)); e != nil {
			st.Errors = e.Counter
		}
		res.PerOp = append(res.PerOp, st)
	}
	sort.Slice(res.PerOp, func(i, j int) bool { return res.PerOp[i].Op < res.PerOp[j].Op })
	if mode == "open" {
		if smp := snap.Find("daas_loadgen_dispatch_lag_seconds"); smp != nil && smp.Hist != nil && smp.Hist.Count > 0 {
			res.DispatchLagP99Seconds = smp.Hist.Quantile(0.99)
		}
	}
	return res, nil
}
