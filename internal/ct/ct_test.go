package ct

import (
	"net/http/httptest"
	"testing"
	"time"
)

func ts() time.Time { return time.Date(2024, 1, 15, 0, 0, 0, 0, time.UTC) }

func TestIssueAndParse(t *testing.T) {
	log, err := NewLog()
	if err != nil {
		t.Fatal(err)
	}
	entry, err := log.Issue([]string{"uniswap-claim.com", "www.uniswap-claim.com"}, ts())
	if err != nil {
		t.Fatal(err)
	}
	names, err := entry.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "uniswap-claim.com" {
		t.Errorf("domains = %v", names)
	}
	if log.Size() != 1 {
		t.Errorf("size = %d", log.Size())
	}
}

func TestEntriesWindowClamping(t *testing.T) {
	log, _ := NewLog()
	for i := 0; i < 5; i++ {
		if _, err := log.Issue([]string{"example.dev"}, ts()); err != nil {
			t.Fatal(err)
		}
	}
	if got := log.Entries(1, 3); len(got) != 3 || got[0].Index != 1 {
		t.Errorf("window [1,3] = %d entries starting %d", len(got), got[0].Index)
	}
	if got := log.Entries(3, 99); len(got) != 2 {
		t.Errorf("overrun window = %d entries", len(got))
	}
	if got := log.Entries(-5, 1); len(got) != 2 {
		t.Errorf("negative start = %d entries", len(got))
	}
	if got := log.Entries(9, 10); got != nil {
		t.Errorf("beyond-end window = %v", got)
	}
}

func TestClientPollPagination(t *testing.T) {
	log, _ := NewLog()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := log.Issue([]string{"site.example"}, ts()); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(log.Handler())
	defer srv.Close()

	client := NewClient(srv.URL)
	client.BatchSize = 3
	total := 0
	lastIdx := int64(-1)
	for {
		entries, err := client.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			break
		}
		if len(entries) > 3 {
			t.Errorf("batch of %d exceeds BatchSize", len(entries))
		}
		for _, e := range entries {
			if e.Index != lastIdx+1 {
				t.Errorf("entry gap: %d after %d", e.Index, lastIdx)
			}
			lastIdx = e.Index
			if _, err := e.Domains(); err != nil {
				t.Errorf("entry %d certificate unparseable: %v", e.Index, err)
			}
		}
		total += len(entries)
	}
	if total != n {
		t.Errorf("polled %d entries, want %d", total, n)
	}
	// New issuance resumes the stream.
	if _, err := log.Issue([]string{"late.example"}, ts()); err != nil {
		t.Fatal(err)
	}
	entries, err := client.Poll()
	if err != nil || len(entries) != 1 {
		t.Fatalf("resume poll = %d entries, %v", len(entries), err)
	}
	if names, _ := entries[0].Domains(); names[0] != "late.example" {
		t.Errorf("resumed entry = %v", names)
	}
}

func TestClientErrors(t *testing.T) {
	client := NewClient("http://127.0.0.1:1")
	if _, err := client.TreeSize(); err == nil {
		t.Error("unreachable log succeeded")
	}
	log, _ := NewLog()
	srv := httptest.NewServer(log.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/ct/v1/get-entries")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing params status = %d, want 400", resp.StatusCode)
	}
}
