// Package ct implements an RFC 6962-style Certificate Transparency log
// substrate: real self-signed X.509 certificates (ECDSA P-256) issued
// for generated domains, an HTTP log server exposing get-sth and
// get-entries, and a polling client. The paper's §8.2 Step 1 consumes
// newly issued certificates exactly this way.
package ct

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
)

// Entry is one log entry: a DER-encoded certificate and its index.
type Entry struct {
	Index  int64
	DER    []byte
	Issued time.Time
}

// Domains parses the certificate and returns its DNS names.
func (e Entry) Domains() ([]string, error) {
	cert, err := x509.ParseCertificate(e.DER)
	if err != nil {
		return nil, fmt.Errorf("ct: parsing entry %d: %w", e.Index, err)
	}
	return cert.DNSNames, nil
}

// Log is an append-only certificate log. The zero value is unusable;
// call NewLog.
type Log struct {
	mu      sync.RWMutex
	entries []Entry
	signer  *ecdsa.PrivateKey
	serial  int64
}

// NewLog creates an empty log with a fresh issuing key.
func NewLog() (*Log, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ct: generating log key: %w", err)
	}
	return &Log{signer: key}, nil
}

// Issue creates a self-signed certificate covering the given domains
// and appends it to the log, returning the entry.
func (l *Log) Issue(domainNames []string, notBefore time.Time) (Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.serial++
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(l.serial),
		Subject:               pkix.Name{CommonName: domainNames[0]},
		DNSNames:              domainNames,
		NotBefore:             notBefore,
		NotAfter:              notBefore.Add(90 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &l.signer.PublicKey, l.signer)
	if err != nil {
		return Entry{}, fmt.Errorf("ct: issuing cert for %v: %w", domainNames, err)
	}
	entry := Entry{Index: int64(len(l.entries)), DER: der, Issued: notBefore}
	l.entries = append(l.entries, entry)
	return entry, nil
}

// Size returns the current tree size.
func (l *Log) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int64(len(l.entries))
}

// Entries returns entries in [start, end] inclusive, clamped to the
// log, mirroring the RFC 6962 get-entries window semantics.
func (l *Log) Entries(start, end int64) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if start < 0 {
		start = 0
	}
	if end >= int64(len(l.entries)) {
		end = int64(len(l.entries)) - 1
	}
	if start > end {
		return nil
	}
	out := make([]Entry, 0, end-start+1)
	out = append(out, l.entries[start:end+1]...)
	return out
}

// HTTP wire shapes (RFC 6962 §4.3 / §4.6 flavored).

type sthJSON struct {
	TreeSize  int64 `json:"tree_size"`
	Timestamp int64 `json:"timestamp"`
}

type entriesJSON struct {
	Entries []wireEntry `json:"entries"`
}

type wireEntry struct {
	Index    int64  `json:"index"`
	LeafCert string `json:"leaf_cert"` // base64 DER
	Issued   int64  `json:"issued"`
}

// Handler serves the log over HTTP at /ct/v1/get-sth and
// /ct/v1/get-entries?start=&end=.
func (l *Log) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ct/v1/get-sth", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, sthJSON{TreeSize: l.Size(), Timestamp: time.Now().Unix()})
	})
	mux.HandleFunc("/ct/v1/get-entries", func(w http.ResponseWriter, r *http.Request) {
		start, err1 := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
		end, err2 := strconv.ParseInt(r.URL.Query().Get("end"), 10, 64)
		if err1 != nil || err2 != nil {
			http.Error(w, "start and end required", http.StatusBadRequest)
			return
		}
		var out entriesJSON
		for _, e := range l.Entries(start, end) {
			out.Entries = append(out.Entries, wireEntry{
				Index:    e.Index,
				LeafCert: base64.StdEncoding.EncodeToString(e.DER),
				Issued:   e.Issued.Unix(),
			})
		}
		writeJSON(w, out)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Client polls a CT log server.
type Client struct {
	// BaseURL is the log endpoint (no trailing slash).
	BaseURL string
	// HTTPClient defaults to a 30s-timeout client.
	HTTPClient *http.Client
	// BatchSize bounds one get-entries window (default 256).
	BatchSize int64
	// Metrics, when set, records poll counts, ingested entries, and
	// poll latency (daas_ct_* metric names).
	Metrics *obs.Registry
	// Retry, when set, retries transient poll failures (timeouts, 5xx,
	// 429, connection resets) under the policy. Nil performs each
	// request exactly once.
	Retry *retry.Policy

	next        int64
	metricsOnce sync.Once
	cm          clientMetrics
}

// clientMetrics caches the client's instruments; all nil (no-op) when
// Metrics is unset.
type clientMetrics struct {
	polls          *obs.Counter
	entries        *obs.Counter
	errors         *obs.Counter
	badLeaves      *obs.Counter
	windowsSkipped *obs.Counter
	duration       *obs.Histogram
}

// noopClientMetrics serves calls made before Metrics is assigned; nil
// instruments are no-ops.
var noopClientMetrics clientMetrics

func (c *Client) metrics() *clientMetrics {
	// The nil guard must precede the once: a client polled before
	// Metrics is assigned would otherwise latch no-op instruments
	// forever and record nothing for the rest of its life.
	if c.Metrics == nil {
		return &noopClientMetrics
	}
	c.metricsOnce.Do(func() {
		c.cm = clientMetrics{
			polls:          c.Metrics.Counter("daas_ct_polls_total", "CT log poll round trips (§8.2 step 1)"),
			entries:        c.Metrics.Counter("daas_ct_entries_total", "certificate entries ingested from the CT log"),
			errors:         c.Metrics.Counter("daas_ct_poll_errors_total", "failed CT log polls"),
			badLeaves:      c.Metrics.Counter("daas_ct_bad_leaves_total", "undecodable CT log entries skipped by the poller"),
			windowsSkipped: c.Metrics.Counter("daas_ct_windows_skipped_total", "get-entries windows skipped because every leaf was confirmed poison"),
			duration:       c.Metrics.Histogram("daas_ct_poll_duration_seconds", "CT poll latency", obs.DefDurationBuckets),
		}
	})
	return &c.cm
}

// NewClient returns a client starting at entry 0.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 30 * time.Second}, BatchSize: 256}
}

// TreeSize fetches the current signed tree head size.
func (c *Client) TreeSize() (int64, error) {
	var sth sthJSON
	if err := c.get("/ct/v1/get-sth", &sth); err != nil {
		return 0, err
	}
	return sth.TreeSize, nil
}

// Poll fetches entries the client has not seen yet, advancing its
// cursor. It returns nil when caught up.
//
// An undecodable entry can be one of two very different things: a
// genuine poison pill (logs do serve permanently mangled leaves) or a
// transient wire corruption that would decode fine on retry. The two
// demand opposite cursor behavior — advancing past a transient drop
// silently skips real certificates, while parking before a poison pill
// re-fetches and re-fails the same window forever. Poll disambiguates
// with one confirming re-fetch of the window: an entry is declared
// poison only when it is undecodable in both fetches (counted in
// daas_ct_bad_leaves_total and skipped); an entry that heals on the
// re-fetch is returned normally. If the confirming fetch itself fails,
// Poll returns the error with the cursor still parked before the
// window, so nothing is skipped. The cursor advances only past fully
// resolved windows; a window whose every leaf is confirmed poison is
// counted in daas_ct_windows_skipped_total and the poll moves on to
// the next window instead of reporting a false catch-up.
func (c *Client) Poll() (entries []Entry, err error) {
	cm := c.metrics()
	cm.polls.Inc()
	start := time.Now()
	defer func() {
		cm.duration.ObserveDuration(time.Since(start))
		if err != nil {
			cm.errors.Inc()
		} else {
			cm.entries.Add(uint64(len(entries)))
		}
	}()
	size, err := c.TreeSize()
	if err != nil {
		return nil, err
	}
	for c.next < size {
		end := c.next + c.batch() - 1
		if end >= size {
			end = size - 1
		}
		var out entriesJSON
		path := fmt.Sprintf("/ct/v1/get-entries?start=%d&end=%d", c.next, end)
		if err := c.get(path, &out); err != nil {
			return nil, err
		}
		if len(out.Entries) == 0 {
			return nil, nil
		}
		good := make(map[int64]Entry, len(out.Entries))
		decode := func(wire []wireEntry) (anyBad bool) {
			for _, we := range wire {
				if _, ok := good[we.Index]; ok {
					continue
				}
				der, err := base64.StdEncoding.DecodeString(we.LeafCert)
				if err != nil {
					anyBad = true
					continue
				}
				good[we.Index] = Entry{Index: we.Index, DER: der, Issued: time.Unix(we.Issued, 0).UTC()}
			}
			return anyBad
		}
		if decode(out.Entries) {
			// At least one leaf failed to decode: confirm poison with a
			// second fetch of the same window before giving up on it. A
			// fetch error here returns with the cursor still parked
			// before the window — transient failures skip nothing.
			var again entriesJSON
			if err := c.get(path, &again); err != nil {
				return nil, err
			}
			decode(again.Entries)
		}
		advanced := c.next
		for _, we := range out.Entries {
			if we.Index >= advanced {
				advanced = we.Index + 1
			}
			e, ok := good[we.Index]
			if !ok {
				// Undecodable in both fetches: confirmed poison pill.
				cm.badLeaves.Inc()
				continue
			}
			entries = append(entries, e)
		}
		c.next = advanced
		if len(entries) > 0 {
			return entries, nil
		}
		// Whole window was confirmed poison; keep going so an all-bad
		// stretch does not masquerade as "caught up".
		cm.windowsSkipped.Inc()
	}
	return nil, nil
}

func (c *Client) batch() int64 {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 256
}

func (c *Client) get(path string, v any) error {
	return c.Retry.Do(context.Background(), "ct.get", func() error {
		return c.getOnce(path, v)
	})
}

func (c *Client) getOnce(path string, v any) error {
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("ct: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ct: GET %s: %w", path, &retry.HTTPError{Status: resp.StatusCode})
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
