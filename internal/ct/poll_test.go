package ct

import (
	"encoding/base64"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/obs"
)

// poisonedServer serves a log but mangles the base64 of the entries
// whose indexes are in bad — the wire-level poison pill real CT log
// frontends occasionally emit.
func poisonedServer(t *testing.T, log *Log, bad map[int64]bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/ct/v1/get-sth", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, sthJSON{TreeSize: log.Size(), Timestamp: ts().Unix()})
	})
	mux.HandleFunc("/ct/v1/get-entries", func(w http.ResponseWriter, r *http.Request) {
		start, _ := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
		end, _ := strconv.ParseInt(r.URL.Query().Get("end"), 10, 64)
		var out entriesJSON
		for _, e := range log.Entries(start, end) {
			leaf := base64.StdEncoding.EncodeToString(e.DER)
			if bad[e.Index] {
				leaf = "!!!not-base64!!!"
			}
			out.Entries = append(out.Entries, wireEntry{Index: e.Index, LeafCert: leaf, Issued: e.Issued.Unix()})
		}
		writeJSON(w, out)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func issueN(t *testing.T, log *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := log.Issue([]string{"site.example"}, ts()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPollSkipsPoisonPill is the regression test for the poison-pill
// wedge: one undecodable leaf_cert used to fail the whole batch
// without advancing the cursor, so every subsequent poll re-fetched
// and re-failed the same window and ingestion never progressed again.
func TestPollSkipsPoisonPill(t *testing.T) {
	log, _ := NewLog()
	issueN(t, log, 5)
	srv := poisonedServer(t, log, map[int64]bool{2: true})

	reg := obs.NewRegistry()
	client := NewClient(srv.URL)
	client.Metrics = reg
	entries, err := client.Poll()
	if err != nil {
		t.Fatalf("poll with poison pill failed: %v", err)
	}
	var got []int64
	for _, e := range entries {
		got = append(got, e.Index)
		if _, derr := e.Domains(); derr != nil {
			t.Errorf("returned entry %d unparseable: %v", e.Index, derr)
		}
	}
	if len(got) != 4 || got[0] != 0 || got[3] != 4 {
		t.Errorf("entries = %v, want [0 1 3 4]", got)
	}
	if n := reg.Counter("daas_ct_bad_leaves_total", "").Value(); n != 1 {
		t.Errorf("bad_leaves_total = %d, want 1", n)
	}
	// Cursor advanced past the poison pill: the next poll is a clean
	// catch-up, not a re-fetch of the same wedged window.
	entries, err = client.Poll()
	if err != nil || len(entries) != 0 {
		t.Errorf("follow-up poll = %d entries, %v; want caught up", len(entries), err)
	}
}

// TestPollAllPoisonWindowAdvances: a window consisting entirely of bad
// leaves must not masquerade as "caught up" — the poller moves to the
// next window and returns its entries.
func TestPollAllPoisonWindowAdvances(t *testing.T) {
	log, _ := NewLog()
	issueN(t, log, 5)
	srv := poisonedServer(t, log, map[int64]bool{0: true, 1: true, 2: true})

	reg := obs.NewRegistry()
	client := NewClient(srv.URL)
	client.Metrics = reg
	client.BatchSize = 3
	entries, err := client.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Index != 3 || entries[1].Index != 4 {
		var got []int64
		for _, e := range entries {
			got = append(got, e.Index)
		}
		t.Errorf("entries = %v, want [3 4]", got)
	}
	if n := reg.Counter("daas_ct_bad_leaves_total", "").Value(); n != 3 {
		t.Errorf("bad_leaves_total = %d, want 3", n)
	}
	if n := reg.Counter("daas_ct_windows_skipped_total", "").Value(); n != 1 {
		t.Errorf("windows_skipped_total = %d, want 1", n)
	}
}

// transientServer serves a log whose get-entries responses are mangled
// or failed per call number — the transient wire corruption a
// continuously polling radar feed hits in the wild.
func transientServer(t *testing.T, log *Log, call func(n int) (mangle bool, status int)) *httptest.Server {
	t.Helper()
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc("/ct/v1/get-sth", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, sthJSON{TreeSize: log.Size(), Timestamp: ts().Unix()})
	})
	mux.HandleFunc("/ct/v1/get-entries", func(w http.ResponseWriter, r *http.Request) {
		calls++
		mangle, status := call(calls)
		if status != 0 {
			http.Error(w, "transient failure", status)
			return
		}
		start, _ := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
		end, _ := strconv.ParseInt(r.URL.Query().Get("end"), 10, 64)
		var out entriesJSON
		for _, e := range log.Entries(start, end) {
			leaf := base64.StdEncoding.EncodeToString(e.DER)
			if mangle {
				leaf = "!!!not-base64!!!"
			}
			out.Entries = append(out.Entries, wireEntry{Index: e.Index, LeafCert: leaf, Issued: e.Issued.Unix()})
		}
		writeJSON(w, out)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestPollTransientCorruptionNotSkipped is the regression test for the
// transient-vs-poison cursor bug: a get-entries response whose leaves
// are corrupted only once (they decode fine on re-fetch) used to be
// treated as poison, advancing the cursor past the whole window and
// silently dropping every certificate in it. The confirming re-fetch
// must heal the window and return all entries with nothing counted as
// a bad leaf.
func TestPollTransientCorruptionNotSkipped(t *testing.T) {
	log, _ := NewLog()
	issueN(t, log, 4)
	srv := transientServer(t, log, func(n int) (bool, int) {
		return n == 1, 0 // first response mangled, re-fetch clean
	})

	reg := obs.NewRegistry()
	client := NewClient(srv.URL)
	client.Metrics = reg
	entries, err := client.Poll()
	if err != nil {
		t.Fatalf("poll over transient corruption failed: %v", err)
	}
	if len(entries) != 4 {
		var got []int64
		for _, e := range entries {
			got = append(got, e.Index)
		}
		t.Errorf("entries = %v, want [0 1 2 3]", got)
	}
	for _, e := range entries {
		if _, derr := e.Domains(); derr != nil {
			t.Errorf("returned entry %d unparseable: %v", e.Index, derr)
		}
	}
	if n := reg.Counter("daas_ct_bad_leaves_total", "").Value(); n != 0 {
		t.Errorf("bad_leaves_total = %d, want 0 (corruption was transient)", n)
	}
	if n := reg.Counter("daas_ct_windows_skipped_total", "").Value(); n != 0 {
		t.Errorf("windows_skipped_total = %d, want 0", n)
	}
}

// TestPollConfirmFetchErrorKeepsCursor: when the confirming re-fetch
// itself fails, Poll must surface the error with the cursor still
// parked before the window, so the next poll re-fetches it and no
// entry is skipped.
func TestPollConfirmFetchErrorKeepsCursor(t *testing.T) {
	log, _ := NewLog()
	issueN(t, log, 3)
	srv := transientServer(t, log, func(n int) (bool, int) {
		switch n {
		case 1:
			return true, 0 // mangled: triggers the confirming re-fetch
		case 2:
			return false, http.StatusInternalServerError
		default:
			return false, 0
		}
	})

	reg := obs.NewRegistry()
	client := NewClient(srv.URL)
	client.Metrics = reg
	if entries, err := client.Poll(); err == nil {
		t.Fatalf("poll with failed confirm fetch returned %d entries, nil error; want error", len(entries))
	}
	entries, err := client.Poll()
	if err != nil {
		t.Fatalf("follow-up poll failed: %v", err)
	}
	if len(entries) != 3 || entries[0].Index != 0 || entries[2].Index != 2 {
		var got []int64
		for _, e := range entries {
			got = append(got, e.Index)
		}
		t.Errorf("entries = %v, want [0 1 2]: cursor moved past an unresolved window", got)
	}
	if n := reg.Counter("daas_ct_bad_leaves_total", "").Value(); n != 0 {
		t.Errorf("bad_leaves_total = %d, want 0", n)
	}
}

// TestMetricsAssignedAfterFirstPoll is the regression test for the
// instrument-latch bug (the same one fixed in rpc.Client): a client
// polled once before Metrics was assigned latched no-op instruments
// via metricsOnce and recorded nothing forever after.
func TestMetricsAssignedAfterFirstPoll(t *testing.T) {
	log, _ := NewLog()
	issueN(t, log, 2)
	srv := httptest.NewServer(log.Handler())
	defer srv.Close()

	client := NewClient(srv.URL)
	if _, err := client.Poll(); err != nil { // metrics-less probe poll
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	client.Metrics = reg
	issueN(t, log, 1)
	entries, err := client.Poll()
	if err != nil || len(entries) != 1 {
		t.Fatalf("instrumented poll = %d entries, %v", len(entries), err)
	}
	if n := reg.Counter("daas_ct_polls_total", "").Value(); n == 0 {
		t.Error("polls_total = 0 after an instrumented poll: no-op instruments were latched")
	}
	if n := reg.Counter("daas_ct_entries_total", "").Value(); n != 1 {
		t.Errorf("entries_total = %d, want 1", n)
	}
}
